(* Quickstart: the full Singe workflow on a small hydrogen/CO mechanism.

   1. write the four CHEMKIN-standard input files,
   2. load them back through the parsers,
   3. compile the viscosity kernel both ways (warp-specialized and
      data-parallel baseline),
   4. run both on the simulated Kepler K20c and check them against the
      host reference.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1-2: the file interface. A real user would ship their own CHEMKIN,
     THERMO and TRANSPORT files; here we emit them from the bundled
     hydrogen mechanism so the example is self-contained. *)
  let dir = Filename.temp_file "singe" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Chem.Mech_io.save_files (Chem.Mech_gen.hydrogen ()) ~dir;
  Printf.printf "wrote CHEMKIN inputs to %s\n" dir;
  let path suffix = Filename.concat dir ("hydrogen" ^ suffix) in
  let mech =
    match
      Chem.Mech_io.load_files ~species_sets_path:(path ".sets")
        ~chemkin_path:(path ".mech") ~thermo_path:(path ".therm")
        ~transport_path:(path ".tran") ~name:"hydrogen" ()
    with
    | Ok m -> m
    | Error e -> failwith (Chem.Srcloc.to_string e)
  in
  Format.printf "loaded %a@." Chem.Mechanism.pp mech;

  (* 3-4: compile and run. *)
  let arch = Gpusim.Arch.kepler_k20c in
  let options =
    { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = 4 }
  in
  List.iter
    (fun (version, label) ->
      let compiled =
        Singe.Compile.compile mech Singe.Kernel_abi.Viscosity version options
      in
      let r = Singe.Compile.run compiled ~total_points:32768 in
      Printf.printf
        "%-15s: %.3g points/s, %.0f GFLOPS, worst rel. error vs reference %.2g\n"
        label
        r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
        r.Singe.Compile.machine.Gpusim.Machine.gflops
        r.Singe.Compile.max_rel_err)
    [
      (Singe.Compile.Baseline, "data-parallel");
      (Singe.Compile.Warp_specialized, "warp-specialized");
    ]
