(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (pass a figure name, or nothing for all), then runs a few
   Bechamel microbenchmarks of the toolchain itself.

   `main.exe perf [--out FILE]` instead emits one machine-readable JSON
   document — per-kernel simulated throughput plus the compiler's per-pass
   wall-clock timings and host-side sweep metrics — so successive PRs can
   track a performance trajectory without scraping the human-readable
   tables.

   `--jobs N` (or SINGE_JOBS) bounds the domains used for the sweep
   fan-out; simulated results are identical at every job count. *)

let figures =
  [
    ("fig3", Experiments.Figures.fig3);
    ("fig9", Experiments.Figures.fig9);
    ("fig10", Experiments.Figures.fig10);
    ("fig11", Experiments.Figures.fig11);
    ("fig12", Experiments.Figures.fig12);
    ("fig13", Experiments.Figures.fig13);
    ("fig14", Experiments.Figures.fig14);
    ("fig15", Experiments.Figures.fig15);
    ("fig16", Experiments.Figures.fig16);
    ("stall-breakdown", Experiments.Figures.stall_breakdown);
    ("ablation-barriers", Experiments.Figures.ablation_barriers);
    ("ablation-exp-constants", Experiments.Figures.ablation_exp_constants);
    ("ablation-chem-comm", Experiments.Figures.ablation_chem_comm);
    ("ablation-weights", Experiments.Figures.ablation_weights);
    ("ablation-batches", Experiments.Figures.ablation_batches);
    ("ablation-exchange", Experiments.Figures.ablation_exchange);
    ("model-accuracy", Experiments.Figures.model_accuracy);
    ("chip-scaling", Experiments.Figures.chip_scaling);
    ("partition-search", Experiments.Figures.partition_search);
  ]

let microbenchmarks () =
  let open Bechamel in
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let opts = { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = 6 } in
  let grid = Chem.Grid.create mech ~points:32 ~seed:1L in
  let tests =
    [
      Test.make ~name:"compile-dme-viscosity-ws" (Staged.stage (fun () ->
          ignore (Singe.Compile.compile mech Singe.Kernel_abi.Viscosity
                    Singe.Compile.Warp_specialized opts)));
      Test.make ~name:"reference-viscosity-point" (Staged.stage (fun () ->
          ignore (Chem.Ref_kernels.viscosity_point mech
                    ~temp:(Chem.Grid.point_temperature grid 0)
                    ~mole_frac:(Chem.Grid.point_mole_fracs grid mech 0))));
      Test.make ~name:"qssa-graph-build" (Staged.stage (fun () ->
          ignore (Chem.Qssa.build mech)));
      Test.make ~name:"reference-chemistry-point" (Staged.stage (fun () ->
          ignore (Chem.Ref_kernels.chemistry_point mech
                    ~temp:(Chem.Grid.point_temperature grid 0)
                    ~pressure:(Chem.Grid.point_pressure grid 0)
                    ~mole_frac:(Chem.Grid.point_mole_fracs grid mech 0)
                    ~diffusion:(Chem.Grid.point_diffusion grid 0))));
      Test.make ~name:"chemkin-parse-dme" (
        let text = Chem.Mech_io.chemkin_of_mechanism mech in
        Staged.stage (fun () -> ignore (Chem.Chemkin_parser.parse text)));
      Test.make ~name:"transport-fit-dme" (Staged.stage (fun () ->
          ignore (Chem.Transport.fit mech.Chem.Mechanism.species)));
      (* Setup compiles below go through the memo cache — only the
         compile-dme-viscosity-ws benchmark above measures compilation
         itself, so it keeps calling the uncached entry point. *)
      Test.make ~name:"simulate-dme-viscosity-1batch" (
        let c = Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
                  Singe.Compile.Warp_specialized opts in
        Staged.stage (fun () ->
            ignore (Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32))));
      Test.make ~name:"simulate-dme-chemistry-ws" (
        let c = Singe.Compile.compile_cached mech Singe.Kernel_abi.Chemistry
                  Singe.Compile.Warp_specialized
                  { opts with Singe.Compile.n_warps = 4; max_barriers = 16;
                    ctas_per_sm_target = 1 } in
        Staged.stage (fun () ->
            ignore (Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32))));
      Test.make ~name:"isa-text-roundtrip" (
        let c = Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
                  Singe.Compile.Warp_specialized opts in
        let p = c.Singe.Compile.lowered.Singe.Lower.program in
        Staged.stage (fun () ->
            match Gpusim.Isa_text.parse (Gpusim.Isa_text.emit p) with
            | Ok _ -> ()
            | Error e -> failwith e));
      Test.make ~name:"cuda-emit-viscosity" (
        let c = Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
                  Singe.Compile.Warp_specialized opts in
        let p = c.Singe.Compile.lowered.Singe.Lower.program in
        Staged.stage (fun () -> ignore (Singe.Cuda_emit.emit ~arch p)));
      Test.make ~name:"roofline-analysis" (
        let c = Singe.Compile.compile_cached mech Singe.Kernel_abi.Chemistry
                  Singe.Compile.Warp_specialized
                  { opts with Singe.Compile.n_warps = 4; max_barriers = 16;
                    ctas_per_sm_target = 1 } in
        let p = c.Singe.Compile.lowered.Singe.Lower.program in
        Staged.stage (fun () -> ignore (Gpusim.Roofline.analyze arch p)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let results = Benchmark.all cfg [ instance ] test in
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance results
  in
  print_endline (String.make 78 '-');
  print_endline "Toolchain microbenchmarks (Bechamel, monotonic clock)";
  print_endline (String.make 78 '-');
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-32s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        results)
    tests

(* ---- machine-readable perf snapshot (the `perf` mode) ---- *)

let perf_configs () =
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let kernels =
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Conductivity;
      Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ]
  in
  List.concat_map
    (fun kernel ->
      List.map
        (fun version ->
          let options =
            { (Singe.Compile.default_options arch) with
              Singe.Compile.n_warps = 8;
              max_barriers =
                (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
              ctas_per_sm_target =
                (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2) }
          in
          (mech, kernel, version, options))
        [ Singe.Compile.Warp_specialized; Singe.Compile.Baseline ])
    kernels
  @ (* The stencil workload column (perf-v10): both bundled pipelines,
       warp-specialized and baseline. The mechanism is carried for the
       record's "mech" field only — stencil kernels never read it. *)
  List.concat_map
    (fun id ->
      List.map
        (fun version ->
          let options =
            { (Singe.Compile.default_options arch) with
              Singe.Compile.n_warps = 4 }
          in
          (mech, Singe.Kernel_abi.Stencil id, version, options))
        [ Singe.Compile.Warp_specialized; Singe.Compile.Baseline ])
    [ Singe.Stencil_pipe.Edge3; Singe.Stencil_pipe.Unsharp2 ]

(* One perf config's outcome: a JSON entry, a compile-stage skip, or a
   contained simulation fault (watchdog / deadlock); the latter two are
   counted separately in the document header. *)
type perf_outcome = P_entry of string | P_skip of string | P_fault of string

(* The chip scheduler's outcome as one JSON object — shared between the
   per-entry "chip" field, the scaling sweep and the chip-smoke gate so
   all three stay schema-identical. *)
let chip_json (ch : Gpusim.Chip.schedule) =
  Printf.sprintf
    "{\"n_sms\": %d, \"rounds_total\": %d, \"tail_ctas\": %d, \
     \"makespan_cycles\": %.0f, \"cycle_spread\": %.0f, \
     \"dispatch_imbalance\": %.4f, \"dram_util\": %.4f, \"throttle_max\": \
     %.4f, \"spill_in_l2\": %b}"
    ch.Gpusim.Chip.n_sms ch.Gpusim.Chip.rounds_total ch.Gpusim.Chip.tail_ctas
    ch.Gpusim.Chip.makespan_cycles
    (Gpusim.Chip.cycle_spread ch)
    (Gpusim.Chip.dispatch_imbalance ch)
    ch.Gpusim.Chip.contention.Gpusim.Chip.dram_util
    ch.Gpusim.Chip.contention.Gpusim.Chip.throttle_max
    ch.Gpusim.Chip.contention.Gpusim.Chip.spill_in_l2

let perf ~out ?max_cycles () =
  let points = 8192 in
  (* Arm the watchdog even when the caller does not: a regression that
     hangs the simulator must fail the perf gate, not wedge it. *)
  let max_cycles =
    match max_cycles with Some n -> n | None -> 200_000_000
  in
  let sweep_start = Unix.gettimeofday () in
  (* Each config is an independent compile+simulate job: fan them out and
     keep every print (stderr skips included) post-join so the output is
     byte-identical at any job count. Host-side wall-clock fields are the
     only thing allowed to vary across runs. *)
  let entry (mech, kernel, version, options) =
    let label =
      Printf.sprintf "%s %s"
        (Singe.Kernel_abi.kernel_name kernel)
        (Singe.Compile.version_name version)
    in
    let compile_t0 = Unix.gettimeofday () in
    match
      Singe.Compile.compile_checked ~validate:true mech kernel version options
    with
    | Error d ->
        P_skip
          (Printf.sprintf "perf: skipping %s: %s\n" label
             (Singe.Diagnostics.to_string d))
    | Ok (c, report) -> (
        let compile_wall_s = Unix.gettimeofday () -. compile_t0 in
        let pred = Singe.Perf_model.predict c ~total_points:points in
        let t0 = Unix.gettimeofday () in
        match
          Singe.Compile.run c ~total_points:points ~max_cycles
            ~profile:{ Gpusim.Sm.timeline_capacity = 0 }
        with
        | exception Gpusim.Sm.Simulation_fault f ->
            P_fault
              (Printf.sprintf "perf: simulation fault in %s: %s at cycle %d: %s\n"
                 label
                 (Gpusim.Sm.fault_kind_name f.Gpusim.Sm.fault_kind)
                 f.Gpusim.Sm.fault_cycle f.Gpusim.Sm.detail)
        | r ->
        (* Compile and simulate are timed separately: earlier schemas
           reported one `wall_s` covering only the simulate call, which
           made compiler-speed regressions invisible and (when a cached
           compile landed inside the timed region) skewed
           sim_cycles_per_host_sec. *)
        let sim_wall_s = Unix.gettimeofday () -. t0 in
        let sm_cycles = r.Singe.Compile.machine.Gpusim.Machine.sm_cycles in
        (* The exchange-rewrite delta: when the shuffle-exchange
           superoptimizer touched this entry, re-simulate with the rewrite
           forced off so the snapshot records the cycles it bought. *)
        let exchange_json =
          let ex = c.Singe.Compile.lowered.Singe.Lower.exchange in
          if ex.Singe.Shuffle_synth.sites_rewritten = 0 then "null"
          else
            let off_cycles =
              match
                Singe.Compile.compile_checked ~validate:false mech kernel
                  version
                  { options with Singe.Compile.synth_exchange = Some false }
              with
              | Error _ -> sm_cycles
              | Ok (c_off, _) ->
                  let r_off =
                    Singe.Compile.run ~check:false c_off ~total_points:points
                      ~max_cycles
                  in
                  r_off.Singe.Compile.machine.Gpusim.Machine.sm_cycles
            in
            Printf.sprintf
              "{\"sites_rewritten\": %d, \"round_trips_removed\": %d, \
               \"stores_removed\": %d, \"shuffle_steps\": %d, \
               \"shared_bytes_freed\": %d, \"cycle_delta\": %d}"
              ex.Singe.Shuffle_synth.sites_rewritten
              ex.Singe.Shuffle_synth.round_trips_removed
              ex.Singe.Shuffle_synth.stores_removed
              ex.Singe.Shuffle_synth.shuffle_steps
              ex.Singe.Shuffle_synth.shared_bytes_freed
              (off_cycles - sm_cycles)
        in
        let profile_json =
          match r.Singe.Compile.machine.Gpusim.Machine.sim.Gpusim.Sm.profile with
          | Some p -> Gpusim.Profile.to_json p
          | None -> "null"
        in
        (* The searched counterpart of this hand-partitioned entry: a
           model-only Partition_search pass (jobs pinned to 1 — the entry
           itself already runs inside the snapshot's fan-out) recording
           the candidate funnel and whether the analytic ranking would
           have picked a different split. Baseline has no partition to
           search. *)
        let partition_json =
          match version with
          | Singe.Compile.Baseline | Singe.Compile.Naive_warp_specialized ->
              "{\"mode\": \"hand\", \"search\": null}"
          | Singe.Compile.Warp_specialized -> (
              match
                Singe.Partition_search.search ~jobs:1 ~simulate:false mech
                  kernel version ~base:options ()
              with
              | Error _ -> "{\"mode\": \"hand\", \"search\": null}"
              | Ok o ->
                  let spec_json =
                    match o.Singe.Partition_search.winner_spec with
                    | None -> "null"
                    | Some s ->
                        Printf.sprintf
                          "{\"producer_warps\": %d, \"hub_threshold\": %d, \
                           \"chain_weight\": %.3g, \"strategy\": \"%s\", \
                           \"buffer_slots\": %d}"
                          s.Singe.Mapping.producer_warps
                          s.Singe.Mapping.hub_threshold
                          s.Singe.Mapping.chain_weight
                          (match s.Singe.Mapping.auto_strategy with
                          | Singe.Mapping.Store -> "store"
                          | Singe.Mapping.Buffer -> "buffer"
                          | Singe.Mapping.Mixed -> "mixed")
                          o.Singe.Partition_search.winner
                            .Singe.Compile.buffer_slots
                  in
                  Printf.sprintf
                    "{\"mode\": \"hand\", \"search\": {\"searched\": %d, \
                     \"gated\": %d, \"rejected\": %d, \"confirmed\": %b, \
                     \"model_hand_cycles\": %.0f, \"model_winner_cycles\": \
                     %.0f, \"winner\": %s}}"
                    o.Singe.Partition_search.searched
                    o.Singe.Partition_search.gated
                    (List.length o.Singe.Partition_search.rejections)
                    o.Singe.Partition_search.confirmed
                    o.Singe.Partition_search.hand_cycles
                    o.Singe.Partition_search.winner_cycles spec_json)
        in
        P_entry
          (Printf.sprintf
             "{\"mech\": \"%s\", \"workload\": \"%s\", \"kernel\": \
              \"%s\", \"version\": \"%s\", \"arch\": \"%s\", \"points\": \
              %d, \"points_per_sec\": %.6g, \
              \"gflops\": %.6g, \"dram_gbs\": %.6g, \"sm_cycles\": %d, \
              \"max_rel_err\": %.3g, \"host\": {\"compile_wall_s\": %.4f, \
              \"sim_wall_s\": %.4f, \"sim_cycles_per_host_sec\": %.6g}, \
              \"model\": {\"predicted_cycles\": %.0f, \"floor_cycles\": \
              %.0f, \"rel_err\": %.4f, \"binding\": \"%s\"}, \
              \"partition\": %s, \"chip\": %s, \"exchange\": %s, \
              \"profile\": %s, \"report\": %s}"
             mech.Chem.Mechanism.name
             (match kernel with
             | Singe.Kernel_abi.Stencil _ -> "stencil"
             | _ -> "combustion")
             (Singe.Kernel_abi.kernel_name kernel)
             (Singe.Compile.version_name version)
             c.Singe.Compile.options.Singe.Compile.arch.Gpusim.Arch.name
             points
             r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
             r.Singe.Compile.machine.Gpusim.Machine.gflops
             r.Singe.Compile.machine.Gpusim.Machine.dram_gbs
             sm_cycles
             r.Singe.Compile.max_rel_err
             compile_wall_s sim_wall_s
             (float_of_int sm_cycles /. Float.max 1e-9 sim_wall_s)
             pred.Singe.Perf_model.cycles
             pred.Singe.Perf_model.floor_cycles
             (Singe.Perf_model.rel_err
                ~predicted:pred.Singe.Perf_model.cycles
                ~measured:(float_of_int sm_cycles))
             pred.Singe.Perf_model.binding partition_json
             (chip_json r.Singe.Compile.machine.Gpusim.Machine.chip)
             exchange_json profile_json
             (Singe.Pass.report_to_json report)))
  in
  (* The autotune sweep benchmark: the same grid swept exhaustively and
     pruned by the performance model, with the wall-clock of each mode
     recorded so the snapshot tracks the pruning win. The compile cache
     is warmed for the whole grid outside both timed regions (both modes
     compile every candidate regardless), so the two walls compare
     exactly what pruning changes: how many candidates get simulated. *)
  let tune_sweeps =
    let mech = Chem.Mech_gen.dme () in
    let arch = Gpusim.Arch.kepler_k20c in
    let kernel = Singe.Kernel_abi.Chemistry in
    let version = Singe.Compile.Warp_specialized in
    ignore
      (Sutil.Domain_pool.parallel_map_result
         (fun options ->
           Singe.Compile.compile_cached mech kernel version options)
         (Singe.Autotune.candidate_options ~points:32768 kernel version arch
            (Singe.Autotune.default_warp_candidates mech kernel version)
            [ 1; 2 ]));
    let sweep mode =
      let t0 = Unix.gettimeofday () in
      let o = Singe.Autotune.tune ~mode ~max_cycles mech kernel version arch in
      let wall = Unix.gettimeofday () -. t0 in
      Printf.sprintf
        "{\"sweep_mode\": \"%s\", \"sweep_wall_s\": %.4f, \"tried\": %d, \
         \"skipped\": %d, \"candidates_pruned\": %d, \
         \"model_rank_of_winner\": %d, \"winner\": {\"n_warps\": %d, \
         \"ctas_per_sm_target\": %d, \"points_per_sec\": %.6g, \
         \"predicted_cycles\": %.0f}}"
        (match mode with
        | Singe.Autotune.Exhaustive -> "exhaustive"
        | Singe.Autotune.Pruned k -> Printf.sprintf "pruned-%d" k)
        wall o.Singe.Autotune.tried o.Singe.Autotune.skipped
        o.Singe.Autotune.candidates_pruned
        o.Singe.Autotune.model_rank_of_winner
        o.Singe.Autotune.best.Singe.Autotune.options.Singe.Compile.n_warps
        o.Singe.Autotune.best.Singe.Autotune.options
          .Singe.Compile.ctas_per_sm_target
        o.Singe.Autotune.best.Singe.Autotune.throughput
        o.Singe.Autotune.best.Singe.Autotune.predicted
          .Singe.Perf_model.cycles
    in
    let pruned =
      sweep (Singe.Autotune.Pruned Singe.Autotune.default_prune_keep)
    in
    let exhaustive = sweep Singe.Autotune.Exhaustive in
    [ pruned; exhaustive ]
  in
  (* SM-count scaling rows: the spill-heavy data-parallel baseline pushes
     the most bytes per cycle, so it is where the shared DRAM arbiter's
     sub-linear scaling (and the tail wave's imbalance) shows first. *)
  let chip_scaling_rows =
    let mech = Chem.Mech_gen.dme () in
    let arch = Gpusim.Arch.kepler_k20c in
    let options =
      { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = 8 }
    in
    let c =
      Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
        Singe.Compile.Baseline options
    in
    let row n_sms =
      let r =
        Singe.Compile.run ~check:false c ~total_points:points ~max_cycles
          ~n_sms
      in
      let m = r.Singe.Compile.machine in
      ( n_sms,
        m.Gpusim.Machine.points_per_sec,
        chip_json m.Gpusim.Machine.chip )
    in
    let sm_counts =
      List.sort_uniq compare
        (List.filter
           (fun n -> n <= arch.Gpusim.Arch.n_sms)
           [ 1; 2; 4; 8; arch.Gpusim.Arch.n_sms ])
    in
    let rows = Sutil.Domain_pool.parallel_map row sm_counts in
    let base =
      match rows with (_, t, _) :: _ -> t | [] -> assert false
    in
    List.map
      (fun (n_sms, pps, chip) ->
        Printf.sprintf
          "{\"n_sms\": %d, \"points_per_sec\": %.6g, \"speedup_vs_1\": \
           %.4f, \"chip\": %s}"
          n_sms pps (pps /. base) chip)
      rows
  in
  let outcomes = Sutil.Domain_pool.parallel_map entry (perf_configs ()) in
  let entries =
    List.filter_map
      (function
        | P_entry e -> Some e
        | P_skip msg | P_fault msg ->
            prerr_string msg;
            None)
      outcomes
  in
  let count p = List.length (List.filter p outcomes) in
  let faults_detected = count (function P_fault _ -> true | _ -> false) in
  let candidates_skipped = count (function P_entry _ -> false | _ -> true) in
  let cache_json =
    let ms = Singe.Compile.memo_stats () in
    Printf.sprintf
      "{\"size\": %d, \"limit\": %d, \"hits\": %d, \"misses\": %d, \
       \"evictions\": %d, \"corruptions\": %d}"
      ms.Singe.Compile.size ms.Singe.Compile.limit ms.Singe.Compile.hits
      ms.Singe.Compile.misses ms.Singe.Compile.evictions
      ms.Singe.Compile.corruptions
  in
  let json =
    Printf.sprintf
      "{\"schema\": \"singe-perf-v10\", \"jobs\": %d, \"max_cycles\": %d, \
       \"faults_detected\": %d, \"candidates_skipped\": %d, \
       \"sweep_wall_s\": %.4f, \"compile_cache\": %s, \"tune\": [\n\
       %s\n\
       ], \"chip_scaling\": [\n\
       %s\n\
       ], \"results\": [\n\
       %s\n\
       ]}\n"
      (Sutil.Domain_pool.default_jobs ())
      max_cycles faults_detected candidates_skipped
      (Unix.gettimeofday () -. sweep_start)
      cache_json
      (String.concat ",\n" tune_sweeps)
      (String.concat ",\n" chip_scaling_rows)
      (String.concat ",\n" entries)
  in
  match out with
  | None -> print_string json
  | Some file ->
      let oc = open_out file in
      output_string oc json;
      close_out oc;
      Printf.eprintf "perf snapshot written to %s\n" file

(* ---- chip smoke gate (the `chip-smoke` mode, wired into `make check`) ----

   A 4-SM DME viscosity run exercising the whole Chip layer end to end:
   the simulated snapshot (cycles, counters, chip schedule) must be
   byte-identical whether the run executes serially or on concurrent
   domains, and the perf-v10 "chip" JSON it emits must be well-formed. *)
let chip_smoke () =
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let opts =
    { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = 8 }
  in
  let c =
    Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
      Singe.Compile.Warp_specialized opts
  in
  let snapshot () =
    let r = Singe.Compile.run ~check:false c ~total_points:32768 ~n_sms:4 in
    let m = r.Singe.Compile.machine in
    let ch = m.Gpusim.Machine.chip in
    ( ch,
      Printf.sprintf
        "{\"schema\": \"singe-perf-v10\", \"kernel\": \"viscosity\", \
         \"sm_cycles\": %d, \"points_per_sec\": %.6g, \"chip\": %s}"
        m.Gpusim.Machine.sm_cycles m.Gpusim.Machine.points_per_sec
        (chip_json ch) )
  in
  let failed = ref false in
  let check name ok detail =
    if ok then Printf.printf "check %-32s ok\n" name
    else begin
      failed := true;
      Printf.printf "check %-32s FAILED%s\n" name
        (if detail = "" then "" else ": " ^ detail)
    end
  in
  Sutil.Domain_pool.set_jobs 1;
  let ch, serial = snapshot () in
  Sutil.Domain_pool.set_jobs 2;
  let concurrent =
    Sutil.Domain_pool.parallel_map (fun () -> snd (snapshot ())) [ (); () ]
  in
  check "determinism across --jobs"
    (List.for_all (String.equal serial) concurrent)
    "concurrent snapshot differs from the serial one";
  check "4 SMs dispatched" (ch.Gpusim.Chip.n_sms = 4) "";
  (* The warp-specialized launch grid at 32768 points is
     [min 1024 (points/32)] CTAs (Compile.default_ctas); the dispatcher
     must hand out exactly that many, no matter how the waves land. *)
  check "every CTA dispatched"
    (Array.fold_left
       (fun acc (s : Gpusim.Chip.sm_stat) -> acc + s.Gpusim.Chip.sm_ctas)
       0 ch.Gpusim.Chip.sms
    = 1024)
    "CTA conservation across SMs broke";
  check "makespan positive" (ch.Gpusim.Chip.makespan_cycles > 0.0) "";
  (match Sutil.Json_check.validate serial with
  | Ok () -> check "perf-v10 chip json" true ""
  | Error m -> check "perf-v10 chip json" false m);
  if !failed then exit 1

(* ---- exchange-rewrite smoke gate (`synth-smoke`, wired into `make check`)

   DME diffusion on Kepler with the shuffle-exchange superoptimizer forced
   on and off: the two programs must produce bit-identical outputs (the
   rewrite's verification oracle, end to end), the rewrite must actually
   fire and must not cost simulated cycles, and the perf-v10 "exchange"
   JSON it emits must be well-formed. *)
let synth_smoke () =
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let compile synth =
    Singe.Compile.compile_cached mech Singe.Kernel_abi.Diffusion
      Singe.Compile.Warp_specialized
      { (Singe.Compile.default_options arch) with
        Singe.Compile.n_warps = 8;
        synth_exchange = Some synth }
  in
  let c_on = compile true and c_off = compile false in
  let run c = Singe.Compile.run c ~total_points:8192 in
  let r_on = run c_on and r_off = run c_off in
  let failed = ref false in
  let check name ok detail =
    if ok then Printf.printf "check %-32s ok\n" name
    else begin
      failed := true;
      Printf.printf "check %-32s FAILED%s\n" name
        (if detail = "" then "" else ": " ^ detail)
    end
  in
  let ex = c_on.Singe.Compile.lowered.Singe.Lower.exchange in
  check "rewrite fired"
    (ex.Singe.Shuffle_synth.sites_rewritten > 0
    && ex.Singe.Shuffle_synth.round_trips_removed > 0)
    (Printf.sprintf "%d sites rewritten, %d round trips removed"
       ex.Singe.Shuffle_synth.sites_rewritten
       ex.Singe.Shuffle_synth.round_trips_removed);
  let bits (r : Singe.Compile.run_result) =
    Array.map (Array.map Int64.bits_of_float) r.Singe.Compile.outputs
  in
  check "outputs bit-identical"
    (bits r_on = bits r_off)
    "synth-on outputs differ from the shared-memory baseline";
  check "reference check passes"
    (r_on.Singe.Compile.max_rel_err < 1e-9)
    (Printf.sprintf "rel err %.2g" r_on.Singe.Compile.max_rel_err);
  let cyc (r : Singe.Compile.run_result) =
    r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
  in
  check "no cycle regression"
    (cyc r_on <= cyc r_off)
    (Printf.sprintf "on %d > off %d cycles" (cyc r_on) (cyc r_off));
  let payload =
    Printf.sprintf
      "{\"schema\": \"singe-perf-v10\", \"kernel\": \"diffusion\", \
       \"sm_cycles\": %d, \"exchange\": {\"sites_rewritten\": %d, \
       \"round_trips_removed\": %d, \"stores_removed\": %d, \
       \"shuffle_steps\": %d, \"shared_bytes_freed\": %d, \"cycle_delta\": \
       %d}}"
      (cyc r_on) ex.Singe.Shuffle_synth.sites_rewritten
      ex.Singe.Shuffle_synth.round_trips_removed
      ex.Singe.Shuffle_synth.stores_removed
      ex.Singe.Shuffle_synth.shuffle_steps
      ex.Singe.Shuffle_synth.shared_bytes_freed
      (cyc r_off - cyc r_on)
  in
  (match Sutil.Json_check.validate payload with
  | Ok () -> check "perf-v10 exchange json" true ""
  | Error m -> check "perf-v10 exchange json" false m);
  if !failed then exit 1

(* ---- partition search smoke gate (`partition-smoke`, in `make check`) ----

   The full three-phase search — propose, model-rank, deadlock-gate,
   simulate-confirm — on hydrogen viscosity: the searcher must rediscover
   or beat the hand partition (simulated cycles no worse), every gate
   rejection must carry a [partition-rejected] diagnostic, the winning
   options must themselves pass the safety gate when recompiled, and the
   perf-v10 "partition" JSON must be well-formed. Hydrogen keeps the
   candidate compiles cheap enough for `make check` (~a few seconds). *)
let partition_smoke () =
  let mech = Chem.Mech_gen.hydrogen () in
  let arch = Gpusim.Arch.kepler_k20c in
  let base =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = 8;
      max_barriers = 8;
      ctas_per_sm_target = 2
    }
  in
  let failed = ref false in
  let check name ok detail =
    if ok then Printf.printf "check %-32s ok\n" name
    else begin
      failed := true;
      Printf.printf "check %-32s FAILED%s\n" name
        (if detail = "" then "" else ": " ^ detail)
    end
  in
  let t0 = Unix.gettimeofday () in
  (match
     Singe.Partition_search.search ~points:8192 mech Singe.Kernel_abi.Viscosity
       Singe.Compile.Warp_specialized ~base ()
   with
  | Error d -> check "search completes" false (Singe.Diagnostics.to_string d)
  | Ok o ->
      check "search completes" true "";
      check "simulation confirmed" o.Singe.Partition_search.confirmed "";
      check "rediscovers or beats hand"
        (o.Singe.Partition_search.winner_cycles
        <= o.Singe.Partition_search.hand_cycles)
        (Printf.sprintf "winner %.0f > hand %.0f cycles"
           o.Singe.Partition_search.winner_cycles
           o.Singe.Partition_search.hand_cycles);
      check "rejections carry diagnostics"
        (List.for_all
           (fun (r : Singe.Partition_search.rejection) ->
             let msg = Singe.Diagnostics.to_string r.rej_diag in
             String.length msg > 0
             && r.rej_diag.Singe.Diagnostics.pass = Some "partition-search")
           o.Singe.Partition_search.rejections)
        "a rejection lost its partition-search diagnostic";
      (match
         Singe.Compile.compile_checked ~validate:false mech
           Singe.Kernel_abi.Viscosity Singe.Compile.Warp_specialized
           o.Singe.Partition_search.winner
       with
      | Error d ->
          check "winner recompiles" false (Singe.Diagnostics.to_string d)
      | Ok (c, _) -> (
          check "winner recompiles" true "";
          match Singe.Partition_search.gate c with
          | Ok () -> check "winner passes the safety gate" true ""
          | Error d ->
              check "winner passes the safety gate" false
                (Singe.Diagnostics.to_string d)));
      let spec_json =
        match o.Singe.Partition_search.winner_spec with
        | None -> "null"
        | Some s ->
            Printf.sprintf
              "{\"producer_warps\": %d, \"hub_threshold\": %d, \
               \"chain_weight\": %.3g, \"strategy\": \"%s\", \
               \"buffer_slots\": %d}"
              s.Singe.Mapping.producer_warps s.Singe.Mapping.hub_threshold
              s.Singe.Mapping.chain_weight
              (match s.Singe.Mapping.auto_strategy with
              | Singe.Mapping.Store -> "store"
              | Singe.Mapping.Buffer -> "buffer"
              | Singe.Mapping.Mixed -> "mixed")
              o.Singe.Partition_search.winner.Singe.Compile.buffer_slots
      in
      let payload =
        Printf.sprintf
          "{\"schema\": \"singe-perf-v10\", \"kernel\": \"viscosity\", \
           \"partition\": {\"mode\": \"hand\", \"search\": {\"searched\": %d, \
           \"gated\": %d, \"rejected\": %d, \"confirmed\": %b, \
           \"model_hand_cycles\": %.0f, \"model_winner_cycles\": %.0f, \
           \"winner\": %s}}}"
          o.Singe.Partition_search.searched o.Singe.Partition_search.gated
          (List.length o.Singe.Partition_search.rejections)
          o.Singe.Partition_search.confirmed
          o.Singe.Partition_search.hand_cycles
          o.Singe.Partition_search.winner_cycles spec_json
      in
      match Sutil.Json_check.validate payload with
      | Ok () -> check "perf-v10 partition json" true ""
      | Error m -> check "perf-v10 partition json" false m);
  let wall = Unix.gettimeofday () -. t0 in
  check "under the 30s budget" (wall < 30.0)
    (Printf.sprintf "search took %.1fs" wall);
  if !failed then exit 1

(* ---- stencil smoke gate (`stencil-smoke`, wired into `make check`) ----

   Both bundled stencil pipelines, warp-specialized on both
   architectures: the simulated outputs must match the host reference
   bit-for-bit (the fill and the oracle share the same source pixels and
   the same Sexpr trees, so any drift is a compiler bug), overlapped and
   non-overlapped tiling must agree bit-for-bit with each other, the
   overlapped default must not be slower, the model floor must hold, and
   the perf-v10 stencil JSON must be well-formed. *)
let stencil_smoke () =
  let mech = Chem.Mech_gen.hydrogen () in
  let points = 2048 in
  let failed = ref false in
  let check name ok detail =
    if ok then Printf.printf "check %-32s ok\n" name
    else begin
      failed := true;
      Printf.printf "check %-32s FAILED%s\n" name
        (if detail = "" then "" else ": " ^ detail)
    end
  in
  let rows =
    List.concat_map
      (fun id ->
        List.map
          (fun arch ->
            let compile overlap =
              Singe.Compile.compile_cached mech
                (Singe.Kernel_abi.Stencil id)
                Singe.Compile.Warp_specialized
                { (Singe.Compile.default_options arch) with
                  Singe.Compile.n_warps = 4;
                  stencil_overlap = overlap }
            in
            let c_on = compile true and c_off = compile false in
            let r_on = Singe.Compile.run c_on ~total_points:points in
            let r_off = Singe.Compile.run c_off ~total_points:points in
            let tag =
              Printf.sprintf "%s/%s" (Singe.Stencil_pipe.id_name id)
                arch.Gpusim.Arch.name
            in
            check (tag ^ " overlap bit-exact")
              (r_on.Singe.Compile.max_rel_err = 0.0)
              (Printf.sprintf "rel err %.3g" r_on.Singe.Compile.max_rel_err);
            check (tag ^ " exchange bit-exact")
              (r_off.Singe.Compile.max_rel_err = 0.0)
              (Printf.sprintf "rel err %.3g" r_off.Singe.Compile.max_rel_err);
            (* The two modes may extrapolate from different batch counts,
               so only the commonly-simulated prefix is comparable — on
               it they must agree bit-for-bit. (Which mode is faster is a
               per-pipeline tradeoff the `stencil-overlap` figure
               reports, not a gate: unsharp2's redundant sharpen
               recompute outweighs the halo exchange it saves.) *)
            let bits (r : Singe.Compile.run_result) n =
              Array.map
                (fun f -> Array.map Int64.bits_of_float (Array.sub f 0 n))
                r.Singe.Compile.outputs
            in
            let common =
              min
                (Array.length r_on.Singe.Compile.outputs.(0))
                (Array.length r_off.Singe.Compile.outputs.(0))
            in
            check (tag ^ " tiling modes agree")
              (bits r_on common = bits r_off common)
              "overlapped outputs differ from the exchange tiling";
            let cyc (r : Singe.Compile.run_result) =
              r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
            in
            let pred = Singe.Perf_model.predict c_on ~total_points:points in
            check (tag ^ " model floor holds")
              (pred.Singe.Perf_model.floor_cycles
              <= float_of_int (cyc r_on))
              (Printf.sprintf "floor %.0f > measured %d"
                 pred.Singe.Perf_model.floor_cycles (cyc r_on));
            Printf.sprintf
              "{\"workload\": \"stencil\", \"kernel\": \"%s\", \"arch\": \
               \"%s\", \"sm_cycles\": %d, \"exchange_sm_cycles\": %d, \
               \"max_rel_err\": %.3g, \"floor_cycles\": %.0f}"
              (Singe.Stencil_pipe.id_name id)
              arch.Gpusim.Arch.name (cyc r_on) (cyc r_off)
              r_on.Singe.Compile.max_rel_err
              pred.Singe.Perf_model.floor_cycles)
          [ Gpusim.Arch.kepler_k20c; Gpusim.Arch.fermi_c2070 ])
      [ Singe.Stencil_pipe.Edge3; Singe.Stencil_pipe.Unsharp2 ]
  in
  let payload =
    Printf.sprintf "{\"schema\": \"singe-perf-v10\", \"stencil\": [%s]}"
      (String.concat ", " rows)
  in
  (match Sutil.Json_check.validate payload with
  | Ok () -> check "perf-v10 stencil json" true ""
  | Error m -> check "perf-v10 stencil json" false m);
  if !failed then exit 1

(* ---- serve smoke/soak gates (`serve-smoke` is wired into `make check`) ----

   Both drive the REAL `singe serve` binary as a subprocess: requests are
   pre-written to a file and stdout is captured to a file (no interleaved
   pipe I/O, so the harness cannot deadlock against the server's own
   buffering), then every response line is re-validated — well-formed
   JSON, the expected status/class per request, bit-identical replays for
   idempotent ids, and a closing stats document showing zero internal
   errors, zero JSON self-check failures and a bounded compile cache. *)

let serve_cli () =
  match Sys.getenv_opt "SINGE_CLI" with
  | Some p -> p
  | None -> "_build/default/bin/singe_cli.exe"

(* Run one serve session over [lines]; returns (exit_code, responses). *)
let serve_session ?(flags = []) lines =
  let cli = serve_cli () in
  if not (Sys.file_exists cli) then begin
    Printf.eprintf "serve harness: CLI binary %s not found (run dune build)\n"
      cli;
    exit 1
  end;
  let in_file = Filename.temp_file "singe_serve_in" ".jsonl" in
  let out_file = Filename.temp_file "singe_serve_out" ".jsonl" in
  let oc = open_out in_file in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let fd_in = Unix.openfile in_file [ Unix.O_RDONLY ] 0 in
  let fd_out =
    Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let pid =
    Unix.create_process cli
      (Array.of_list ((cli :: "serve" :: flags) @ []))
      fd_in fd_out Unix.stderr
  in
  Unix.close fd_in;
  Unix.close fd_out;
  let _, status = Unix.waitpid [] pid in
  let ic = open_in out_file in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read [] in
  close_in ic;
  Sys.remove in_file;
  Sys.remove out_file;
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s | Unix.WSTOPPED s -> 128 + s
  in
  (code, responses)

(* Per-response expectation: status "ok"/"error" (+ class when error). *)
type serve_expect =
  | E_ok
  | E_degraded  (** ok with ["degraded"]: true *)
  | E_corrupt  (** ok with ["outputs_ok"]: false *)
  | E_err of string  (** error with this ["class"] *)

let serve_check_session name reqs code responses =
  let failed = ref false in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        failed := true;
        Printf.printf "check %-32s FAILED: %s\n" name m)
      fmt
  in
  if code <> 0 then fail "server exited %d" code;
  let n_req = List.length reqs and n_resp = List.length responses in
  if n_req <> n_resp then fail "%d requests but %d responses" n_req n_resp;
  let docs =
    List.mapi
      (fun i line ->
        (match Sutil.Json_check.validate line with
        | Ok () -> ()
        | Error m -> fail "response %d fails Json_check: %s" i m);
        match Sutil.Json.parse line with
        | Ok doc -> Some doc
        | Error m ->
            fail "response %d is not parseable JSON: %s" i m;
            None)
      responses
  in
  let field doc k = Option.bind doc (Sutil.Json.member k) in
  let sfield doc k = Option.bind (field doc k) Sutil.Json.str in
  List.iteri
    (fun i ((_, expect), doc) ->
      let status = sfield doc "status" in
      match expect with
      | E_ok ->
          if status <> Some "ok" then
            fail "response %d: expected ok, got %s"
              i (Option.value status ~default:"<none>")
      | E_degraded ->
          if status <> Some "ok" then fail "response %d: expected ok" i;
          if Option.bind (field doc "degraded") Sutil.Json.bool <> Some true
          then fail "response %d: expected degraded: true" i
      | E_corrupt ->
          if status <> Some "ok" then fail "response %d: expected ok" i;
          if Option.bind (field doc "outputs_ok") Sutil.Json.bool <> Some false
          then fail "response %d: expected outputs_ok: false" i
      | E_err cls ->
          if status <> Some "error" then fail "response %d: expected error" i;
          let got = sfield doc "class" in
          if got <> Some cls then
            fail "response %d: expected class %s, got %s" i cls
              (Option.value got ~default:"<none>"))
    (List.combine reqs docs);
  (* Internal errors are never expected from a well-formed or even a
     hostile request stream — that class means a containment bug. *)
  List.iteri
    (fun i doc ->
      if sfield doc "class" = Some "internal" then
        fail "response %d has class internal: %s" i (List.nth responses i))
    docs;
  (* Idempotent ids must replay bit-identically. *)
  let by_id = Hashtbl.create 16 in
  List.iteri
    (fun i doc ->
      match sfield doc "id" with
      | Some id when sfield doc "status" = Some "ok" -> (
          match Hashtbl.find_opt by_id id with
          | None -> Hashtbl.add by_id id (List.nth responses i)
          | Some prev ->
              if prev <> List.nth responses i then
                fail "id %S replay is not bit-identical" id)
      | _ -> ())
    docs;
  if !failed then exit 1
  else Printf.printf "check %-32s ok (%d requests)\n" name n_req

let serve_final_stats name responses =
  match
    List.find_opt
      (fun l ->
        match Sutil.Json.parse l with
        | Ok doc ->
            Option.bind (Sutil.Json.member "kind" doc) Sutil.Json.str
            = Some "stats"
        | Error _ -> false)
      (List.rev responses)
  with
  | None ->
      Printf.printf "check %-32s FAILED: no stats response\n" name;
      exit 1
  | Some line ->
      let doc = Result.get_ok (Sutil.Json.parse line) in
      let geti path =
        let rec go doc = function
          | [] -> Sutil.Json.int doc
          | k :: rest -> (
              match Sutil.Json.member k doc with
              | Some v -> go v rest
              | None -> None)
        in
        go doc path
      in
      let expect_zero what path =
        match geti path with
        | Some 0 -> ()
        | v ->
            Printf.printf "check %-32s FAILED: %s = %s\n" name what
              (match v with Some n -> string_of_int n | None -> "<missing>");
            exit 1
      in
      expect_zero "internal errors" [ "by_class"; "internal" ];
      expect_zero "json self-check failures" [ "json_check_failures" ];
      (* The stats request itself runs with the trailing shutdown line
         still admitted: anything beyond that one queued entry would mean
         requests piled up un-served. *)
      (match geti [ "queue_depth" ] with
      | Some d when d <= 1 -> ()
      | v ->
          Printf.printf "check %-32s FAILED: queue_depth = %s\n" name
            (match v with Some n -> string_of_int n | None -> "<missing>");
          exit 1);
      expect_zero "leaked domains" [ "domain_pool"; "live_domains" ];
      (match (geti [ "compile_cache"; "size" ], geti [ "compile_cache"; "limit" ]) with
      | Some size, Some limit when size <= limit -> ()
      | size, limit ->
          Printf.printf "check %-32s FAILED: cache size %s over limit %s\n"
            name
            (match size with Some n -> string_of_int n | None -> "?")
            (match limit with Some n -> string_of_int n | None -> "?");
          exit 1);
      Printf.printf "check %-32s ok\n" name

(* The hydrogen-only smoke set: one of every request family and every
   error class, fast enough to gate `make check`. *)
let serve_smoke_requests =
  [
    ({|{"kind":"health"}|}, E_ok);
    ({|this is not json|}, E_err "bad-request");
    ({|{"kind":"compile","mech":"hydrogen"}|}, E_ok);
    ( {|{"id":"r1","kind":"run","mech":"hydrogen","points":2048,"warps":4}|},
      E_ok );
    ( {|{"id":"r1","kind":"run","mech":"hydrogen","points":2048,"warps":4}|},
      E_ok );
    ({|{"id":"r1","kind":"predict"}|}, E_err "bad-request");
    ( {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"faults":["drop-arrive:warp=1,nth=0"]}|},
      E_err "simulation-fault" );
    ( {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"faults":["corrupt-shfl:warp=0,nth=0"]}|},
      E_corrupt );
    ( {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"max_cycles":5000}|},
      E_degraded );
    ({|{"kind":"run","mech":"hydrogen","warps":1}|}, E_err "compile-rejected");
    ({|{"kind":"frobnicate"}|}, E_err "bad-request");
    ({|{"kind":"run","bogus_field":1}|}, E_err "bad-request");
    ({|{"kind":"stats"}|}, E_ok);
    ({|{"kind":"shutdown"}|}, E_ok);
  ]

let serve_smoke () =
  let reqs = serve_smoke_requests in
  let code, responses = serve_session (List.map fst reqs) in
  serve_check_session "serve smoke session" reqs code responses;
  serve_final_stats "serve smoke final stats" responses;
  (* Backpressure: a queue bound of 1 against a burst arriving faster
     than it drains (file input arrives all at once) must answer every
     line — some with busy + retry_after_ms — and exit cleanly. *)
  let burst = List.init 5 (fun _ -> {|{"kind":"health"}|}) in
  let code, responses =
    serve_session ~flags:[ "--max-queue"; "1" ] burst
  in
  if code <> 0 then begin
    Printf.printf "check %-32s FAILED: exit %d\n" "serve busy burst" code;
    exit 1
  end;
  if List.length responses <> List.length burst then begin
    Printf.printf "check %-32s FAILED: %d responses to %d requests\n"
      "serve busy burst" (List.length responses) (List.length burst);
    exit 1
  end;
  let busy =
    List.filter
      (fun l ->
        match Sutil.Json.parse l with
        | Ok doc ->
            Option.bind (Sutil.Json.member "class" doc) Sutil.Json.str
              = Some "busy"
            && Option.bind (Sutil.Json.member "retry_after_ms" doc)
                 Sutil.Json.int
               <> None
        | Error _ -> false)
      responses
  in
  if busy = [] then begin
    Printf.printf "check %-32s FAILED: no busy responses in the burst\n"
      "serve busy burst";
    exit 1
  end;
  Printf.printf "check %-32s ok (%d busy of %d)\n" "serve busy burst"
    (List.length busy) (List.length burst)

(* The soak set: hundreds of mixed requests — valid work, malformed
   lines, rejected configurations, injected faults (deadlock and silent
   corruption), deadline-busting budgets, idempotent replays — one warm
   process, every request answered. Not wired into `make check` (it is
   a multi-minute run); `make serve-soak` runs it on demand. *)
let serve_soak () =
  let base = {|"mech":"hydrogen","points":2048,"warps":4|} in
  let template i =
    match i mod 10 with
    | 0 -> ({|{"kind":"health"}|}, E_ok)
    | 1 -> (Printf.sprintf {|{"kind":"run",%s}|} base, E_ok)
    | 2 ->
        ( Printf.sprintf
            {|{"kind":"run",%s,"faults":["corrupt-shfl:warp=0,nth=%d"]}|} base
            (i mod 2),
          E_corrupt )
    | 3 ->
        ( Printf.sprintf
            {|{"kind":"run",%s,"faults":["drop-arrive:warp=1,nth=0"]}|} base,
          E_err "simulation-fault" )
    | 4 -> (Printf.sprintf {|{"kind":"run",%s,"max_cycles":5000}|} base, E_degraded)
    | 5 ->
        (Printf.sprintf "{\"kind\":\"run\" garbage %d" i, E_err "bad-request")
    | 6 -> ({|{"kind":"run","mech":"nope"}|}, E_err "bad-request")
    | 7 -> ({|{"kind":"compile","mech":"hydrogen","warps":2}|}, E_ok)
    | 8 -> ({|{"kind":"predict","mech":"hydrogen","warps":4,"points":2048}|}, E_ok)
    | _ -> ({|{"kind":"tune","mech":"hydrogen","top_k":2,"points":2048}|}, E_ok)
  in
  let n = 110 in
  let body =
    List.concat_map
      (fun i ->
        let req = template i in
        if i mod 10 = 1 then
          (* idempotent pair: the request and its replay *)
          let tagged =
            ( Printf.sprintf {|{"id":"s%d","kind":"run",%s}|} i base,
              E_ok )
          in
          [ tagged; tagged ]
        else [ req ])
      (List.init n (fun i -> i))
  in
  let reqs =
    body @ [ ({|{"kind":"stats"}|}, E_ok); ({|{"kind":"shutdown"}|}, E_ok) ]
  in
  (* File input arrives in one burst; a queue bound above the request
     count keeps every line admitted so responses stay in request order
     (the backpressure path has its own dedicated burst check). *)
  let code, responses =
    serve_session ~flags:[ "--max-queue"; "1024" ] (List.map fst reqs)
  in
  serve_check_session "serve soak session" reqs code responses;
  serve_final_stats "serve soak final stats" responses;
  Printf.printf "serve soak: %d requests answered by one process\n"
    (List.length reqs)

(* Strip a leading-anywhere [--jobs N] pair from the argument list and
   install it as the process-wide domain budget before any figure runs. *)
let rec extract_jobs = function
  | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some jobs ->
          Sutil.Domain_pool.set_jobs jobs;
          extract_jobs rest
      | None ->
          prerr_endline "bench: --jobs expects an integer";
          exit 2)
  | [ "--jobs" ] ->
      prerr_endline "bench: --jobs expects an integer";
      exit 2
  | arg :: rest -> arg :: extract_jobs rest
  | [] -> []

(* Same for [--max-cycles N]: the perf watchdog budget. *)
let perf_max_cycles = ref None

let rec extract_max_cycles = function
  | "--max-cycles" :: n :: rest -> (
      match int_of_string_opt n with
      | Some c when c > 0 ->
          perf_max_cycles := Some c;
          extract_max_cycles rest
      | Some _ | None ->
          prerr_endline "bench: --max-cycles expects a positive integer";
          exit 2)
  | [ "--max-cycles" ] ->
      prerr_endline "bench: --max-cycles expects a positive integer";
      exit 2
  | arg :: rest -> arg :: extract_max_cycles rest
  | [] -> []

let () =
  let args =
    Array.to_list Sys.argv |> List.tl |> extract_jobs |> extract_max_cycles
  in
  (match args with
  | [] | [ "all" ] -> Experiments.Figures.all ()
  | [ "microbench" ] -> microbenchmarks ()
  | [ "chip-smoke" ] -> chip_smoke ()
  | [ "synth-smoke" ] -> synth_smoke ()
  | [ "partition-smoke" ] -> partition_smoke ()
  | [ "stencil-smoke" ] -> stencil_smoke ()
  | [ "serve-smoke" ] -> serve_smoke ()
  | [ "serve-soak" ] -> serve_soak ()
  | [ "perf" ] -> perf ~out:None ?max_cycles:!perf_max_cycles ()
  | [ "perf"; "--out"; file ] ->
      perf ~out:(Some file) ?max_cycles:!perf_max_cycles ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name figures with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown figure %S; available: %s\n" name
                (String.concat ", " (List.map fst figures));
              exit 1)
        names);
  if args = [] || args = [ "all" ] then microbenchmarks ()

