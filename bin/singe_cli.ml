(* The Singe command-line driver.

   singe info      --mech dme
   singe compile   --mech heptane --kernel chemistry --arch kepler --warps 16 [--dump]
   singe run       --mech dme --kernel viscosity --arch kepler --points 32768
   singe profile   --mech dme --kernel viscosity --chrome-trace trace.json
   singe tune      --mech dme --kernel diffusion --arch fermi
   singe figures   [fig3 fig9 ... | all]

   Mechanisms: the bundled synthetic dme / heptane / hydrogen, or external
   CHEMKIN inputs via --chemkin/--thermo/--transport[/--sets].

   Exit codes: 0 success; 1 unexpected error; 2 the compile pipeline
   rejected the configuration (options or a validation pass, including
   the static deadlock verifier); 3 the simulation was contained by the
   runtime watchdog (deadlock, livelock or cycle-budget exhaustion) and
   a structured fault report was printed. *)

open Cmdliner

let exit_compile_rejected = 2
let exit_simulation_fault = 3

let mech_term =
  let mech_name =
    Arg.(value & opt string "dme" & info [ "mech" ] ~docv:"NAME"
           ~doc:"Bundled mechanism: dme, heptane, methane or hydrogen.")
  in
  let file kind =
    Arg.(value & opt (some file) None & info [ kind ] ~docv:"FILE")
  in
  let build name chemkin thermo transport sets =
    match (chemkin, thermo, transport) with
    | Some c, Some th, Some tr -> (
        match
          Chem.Mech_io.load_files ?species_sets_path:sets ~chemkin_path:c
            ~thermo_path:th ~transport_path:tr ~name:"user" ()
        with
        | Ok m -> Ok m
        | Error e ->
            Error
              (`Msg
                (Singe.Diagnostics.to_string
                   (Singe.Diagnostics.of_srcloc ~pass:"parse" e))))
    | None, None, None -> (
        match String.lowercase_ascii name with
        | "dme" -> Ok (Chem.Mech_gen.dme ())
        | "heptane" -> Ok (Chem.Mech_gen.heptane ())
        | "methane" -> Ok (Chem.Mech_gen.methane ())
        | "hydrogen" -> Ok (Chem.Mech_gen.hydrogen ())
        | other -> Error (`Msg ("unknown mechanism " ^ other)))
    | _ ->
        Error (`Msg "--chemkin, --thermo and --transport must be given together")
  in
  Term.term_result
    Term.(const build $ mech_name $ file "chemkin" $ file "thermo"
          $ file "transport" $ file "sets")

let kernel_term =
  let parse s =
    match Singe.Kernel_abi.kernel_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg ("unknown kernel " ^ s))
  in
  let printer ppf k = Format.pp_print_string ppf (Singe.Kernel_abi.kernel_name k) in
  Arg.(value & opt (Arg.conv (parse, printer)) Singe.Kernel_abi.Viscosity
       & info [ "kernel" ] ~docv:"KERNEL"
           ~doc:"viscosity, conductivity, diffusion, chemistry, or a stencil \
                 pipeline: edge3, unsharp2.")

let arch_term =
  let parse s =
    match Gpusim.Arch.by_name s with
    | Some a -> Ok a
    | None -> Error (`Msg ("unknown architecture " ^ s))
  in
  let printer ppf (a : Gpusim.Arch.t) = Format.pp_print_string ppf a.Gpusim.Arch.name in
  Arg.(value & opt (Arg.conv (parse, printer)) Gpusim.Arch.kepler_k20c
       & info [ "arch" ] ~docv:"ARCH" ~doc:"fermi or kepler.")

let warps_term =
  Arg.(value & opt int 8 & info [ "warps" ] ~docv:"N" ~doc:"Warps per CTA.")

let version_term =
  let parse s =
    match Singe.Compile.version_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg ("unknown version " ^ s))
  in
  let printer ppf v =
    Format.pp_print_string ppf (Singe.Compile.version_name v)
  in
  Arg.(value & opt (Arg.conv (parse, printer)) Singe.Compile.Warp_specialized
       & info [ "version" ] ~docv:"V" ~doc:"ws, baseline or naive.")

(* Domain budget for the parallel sweep commands (tune, figures). The
   term's value is the side effect: it installs the override before the
   command body runs. *)
let jobs_term =
  let set = function
    | None -> ()
    | Some n -> Sutil.Domain_pool.set_jobs n
  in
  (* Strict: "--jobs 0", negatives and garbage are usage errors up front,
     not a pool that silently refuses to parallelize. *)
  let jobs_conv =
    let parse s =
      match Sutil.Domain_pool.jobs_of_string s with
      | Ok n -> Ok n
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Term.(
    const set
    $ Arg.(
        value
        & opt (some jobs_conv) None
        & info [ "jobs" ] ~docv:"N"
            ~doc:
              "Domains used for parallel sweeps (default: \\$(b,SINGE_JOBS) \
               or the machine's recommended domain count). Simulated \
               results are identical at every job count."))

(* Pipeline-introspection flags shared by the compile and run commands. *)
let timings_term =
  Arg.(value & flag & info [ "timings" ]
       ~doc:"Print per-pass wall-clock timings and artifact statistics.")

let validate_term =
  Arg.(value & flag & info [ "validate" ]
       ~doc:"Run the inter-pass validation passes (DFG well-formedness, \
             mapping invariants, schedule safety, lower consistency).")

(* Parse the stage name up front so a typo is rejected before the (possibly
   long) compile runs. *)
let ir_stage_conv =
  let parse s =
    match Singe.Compile.ir_stage_of_string s with
    | Some stage -> Ok stage
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown IR stage %s (expected dfg, mapping, schedule or lower)"
               s))
  in
  let print ppf stage =
    Format.pp_print_string ppf (Singe.Compile.ir_stage_name stage)
  in
  Arg.conv (parse, print)

let dump_ir_term =
  Arg.(value & opt (some ir_stage_conv) None & info [ "dump-ir" ] ~docv:"PASS"
       ~doc:"Dump the intermediate artifact after PASS: dfg, mapping, \
             schedule or lower.")

(* Typed pipeline entry: every user-reachable failure prints one readable
   diagnostic line instead of an exception backtrace. *)
let compile_or_die ~validate mech kernel version options =
  match Singe.Compile.compile_checked ~validate mech kernel version options with
  | Ok (c, report) -> (c, report)
  | Error d ->
      Printf.eprintf "singe: %s\n" (Singe.Diagnostics.to_string d);
      exit exit_compile_rejected

(* An occupancy rejection is a configuration error like any other compile
   rejection: render it as a diagnostic line and use the same exit code,
   keeping the 0/2/3 contract (it is neither unexpected nor a contained
   simulation fault). Positioned diagnostics raised after the compile
   boundary (e.g. the launch-grid divisibility check inside
   [Compile.run]) are configuration errors too — render them the same
   way instead of letting them escape as an uncaught exception. *)
let catch_occupancy f =
  try f () with
  | Gpusim.Chip.Occupancy_rejected r ->
      Printf.eprintf "singe: %s\n"
        (Singe.Diagnostics.to_string
           (Singe.Diagnostics.error ~pass:"occupancy"
              (Gpusim.Chip.reject_message r)));
      exit exit_compile_rejected
  | Singe.Diagnostics.Fail d ->
      Printf.eprintf "singe: %s\n" (Singe.Diagnostics.to_string d);
      exit exit_compile_rejected

(* Chip-scheduler flags shared by the simulating and predicting
   commands. *)
let sms_term =
  let sms_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some n -> Error (`Msg (Printf.sprintf "--sms must be >= 1, got %d" n))
      | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some sms_conv) None & info [ "sms" ] ~docv:"N"
       ~doc:"Dispatch the launch over N SMs (default: the architecture's \
             SM count). With 1 the CTAs run as back-to-back rounds on a \
             single SM; with more, the chip scheduler models tail waves \
             and shared L2/DRAM bandwidth contention.")

let skew_term =
  let skew_conv =
    let parse s =
      match float_of_string_opt s with
      | Some v when Float.abs v < 2.0 -> Ok v
      | Some v ->
          Error
            (`Msg (Printf.sprintf "--skew must satisfy |S| < 2, got %g" v))
      | None -> Error (`Msg (Printf.sprintf "%S is not a number" s))
    in
    Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)
  in
  Arg.(value & opt (some skew_conv) None & info [ "skew" ] ~docv:"S"
       ~doc:"Relative per-SM clock spread: SM clock factors ramp linearly \
             over [1-S/2, 1+S/2] (default: the architecture's, 0 on both \
             shipped machines).")

(* Fault-containment flags shared by the simulating commands. *)
let cycles_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n ->
        Error (`Msg (Printf.sprintf "cycle budget must be positive, got %d" n))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let max_cycles_term =
  Arg.(value & opt (some cycles_conv) None & info [ "max-cycles" ] ~docv:"N"
       ~doc:"Arm the simulator watchdog: a simulation still live after N \
             cycles is aborted with a structured fault report (exit code 3) \
             instead of running forever.")

let fault_conv =
  let parse s =
    match Gpusim.Fault.of_string s with Ok f -> Ok f | Error m -> Error (`Msg m)
  in
  let print ppf f = Format.pp_print_string ppf (Gpusim.Fault.to_string f) in
  Arg.conv (parse, print)

let faults_term =
  Arg.(value & opt_all fault_conv [] & info [ "fault" ] ~docv:"SPEC"
       ~doc:"Inject a trace-level fault before simulating (repeatable): \
             $(b,drop-arrive:warp=W,nth=K), \
             $(b,swap-bar:warp=W,nth=K,bar=B), \
             $(b,extra-arrive:warp=W,nth=K) or $(b,latency:warp=W,mult=M). \
             Used to exercise the watchdog and the containment paths.")

let print_report report =
  Format.printf "@[<v>%a@]@." Singe.Pass.pp_report report

let dump_ir c = function
  | None -> ()
  | Some stage -> Singe.Compile.dump_ir Format.std_formatter c stage

let info_cmd =
  let run mech =
    Format.printf "%a@." Chem.Mechanism.pp mech;
    let g = Chem.Qssa.build mech in
    Printf.printf "QSSA phase touches %d of %d reactions\n"
      (List.length (Chem.Qssa.reactions_touched g))
      (Chem.Mechanism.n_reactions mech);
    Printf.printf "viscosity pair constants: %.1f KB\n"
      (float_of_int
         (Chem.Transport.constant_bytes
            ~n:(Array.length (Chem.Mechanism.computed_species mech)))
      /. 1000.)
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe a mechanism.")
    Term.(const run $ mech_term)

let options_of ?synth ?(overlap = true) arch warps kernel =
  { (Singe.Compile.default_options arch) with
    Singe.Compile.n_warps = warps;
    max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
    ctas_per_sm_target = (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2);
    synth_exchange = synth;
    stencil_overlap = overlap }

(* The tiling mode for stencil kernels; ignored by the combustion ones. *)
let overlap_term =
  Arg.(value & opt bool true & info [ "stencil-overlap" ] ~docv:"BOOL"
       ~doc:"Warp-overlapped tiling for stencil pipelines: when on, upstream \
             bands compute halo-extended tiles (redundant recompute at the \
             seams) so every consumer warp reads from exactly one producer; \
             when off, each column is computed once and halo taps read \
             cross-warp through shared memory. Ignored by the combustion \
             kernels.")

(* The exchange-rewrite override shared by the compiling commands:
   unset = per-architecture auto (on exactly when the broadcast style is
   shuffle-based). *)
let synth_term =
  Arg.(value & opt (some bool) None & info [ "synth-exchange" ] ~docv:"BOOL"
       ~doc:"Force the shuffle-exchange superoptimizer on or off: same-warp \
             shared-memory round-trips are rewritten into register forwards \
             and lane-shuffle programs, and the freed exchange slots leave \
             the shared footprint. Default: on when the architecture \
             broadcasts through shuffles (Kepler), off otherwise.")

(* The partition mode shared by the compiling commands: hand keeps the
   paper's fixed producer/consumer split, auto derives one from the DFG
   with Partition_search (model-only resolution; [singe tune
   --partition auto] additionally confirms by simulation). *)
let partition_term =
  let mode_conv =
    let parse = function
      | "hand" -> Ok `Hand
      | "auto" -> Ok `Auto
      | s -> Error (`Msg ("unknown partition mode " ^ s ^ " (hand|auto)"))
    in
    let print ppf m =
      Format.pp_print_string ppf (match m with `Hand -> "hand" | `Auto -> "auto")
    in
    Arg.conv (parse, print)
  in
  Arg.(value & opt mode_conv `Hand & info [ "partition" ] ~docv:"MODE"
       ~doc:"Warp partition: $(b,hand) keeps the paper's fixed \
             producer/consumer split; $(b,auto) searches structure-derived \
             candidate partitions (fan-out hubs as producers, arithmetic \
             chains onto consumers) crossed with pipeline depths, ranked by \
             the analytic model and gated by the static deadlock verifier. \
             A candidate that fails the gate is reported as \
             partition-rejected and never simulated.")

(* Resolve --partition for the one-configuration commands: model-only
   search, hand base retained when nothing beats it. A search failure is
   a compile rejection like any other (exit code 2). *)
let resolve_partition partition mech kernel version options =
  match partition with
  | `Hand -> options
  | `Auto -> (
      match
        Singe.Partition_search.resolve_options mech kernel version
          ~base:options
      with
      | resolved ->
          (match resolved.Singe.Compile.partition with
          | Singe.Compile.Partition_auto spec ->
              Format.printf "partition auto: %a (slots %d)@."
                Singe.Mapping.pp_auto_spec spec
                resolved.Singe.Compile.buffer_slots
          | Singe.Compile.Partition_hand ->
              print_endline
                "partition auto: hand mapping retained (no candidate beat it)");
          resolved
      | exception Singe.Diagnostics.Fail d ->
          Printf.eprintf "singe: %s\n" (Singe.Diagnostics.to_string d);
          exit exit_compile_rejected)

let compile_cmd =
  let dump = Arg.(value & flag & info [ "dump" ] ~doc:"Print the generated code.") in
  let asm = Arg.(value & opt (some string) None & info [ "emit-asm" ] ~docv:"FILE"
                 ~doc:"Write the program's textual assembly to FILE ('-' for stdout).") in
  let cuda = Arg.(value & opt (some string) None & info [ "emit-cuda" ] ~docv:"FILE"
                  ~doc:"Write the kernel as CUDA C source to FILE ('-' for stdout).") in
  let run mech kernel arch warps version synth overlap partition dump asm cuda
      timings validate dump_ir_stage =
    catch_occupancy @@ fun () ->
    let options =
      resolve_partition partition mech kernel version
        (options_of ?synth ~overlap arch warps kernel)
    in
    let c, report = compile_or_die ~validate mech kernel version options in
    let p = c.Singe.Compile.lowered.Singe.Lower.program in
    Printf.printf
      "%s: %d instrs, %d double regs/thread (%d of them constant bank), %d \
       int regs, %.1f KB shared, %d named barriers, %d sync points, %d B \
       spilled per thread\n"
      p.Gpusim.Isa.name
      (Gpusim.Isa.static_instr_count p.Gpusim.Isa.body)
      p.Gpusim.Isa.n_fregs
      c.Singe.Compile.lowered.Singe.Lower.n_bank_regs
      p.Gpusim.Isa.n_iregs
      (float_of_int p.Gpusim.Isa.shared_doubles *. 8. /. 1024.)
      c.Singe.Compile.schedule.Singe.Schedule.barriers_used
      c.Singe.Compile.schedule.Singe.Schedule.n_sync_points
      c.Singe.Compile.lowered.Singe.Lower.spill_bytes_per_thread;
    let occ = Gpusim.Machine.occupancy arch p in
    Printf.printf "occupancy: %d CTAs/SM (limited by %s)\n"
      occ.Gpusim.Machine.resident_ctas occ.Gpusim.Machine.limited_by;
    if timings then print_report report;
    dump_ir c dump_ir_stage;
    if dump then Format.printf "@.== prologue ==@.%a== body ==@.%a@."
        Gpusim.Isa.pp_block p.Gpusim.Isa.prologue
        Gpusim.Isa.pp_block p.Gpusim.Isa.body;
    (match asm with
    | Some "-" -> print_string (Gpusim.Isa_text.emit p)
    | Some file ->
        let oc = open_out file in
        output_string oc (Gpusim.Isa_text.emit p);
        close_out oc;
        Printf.printf "assembly written to %s\n" file
    | None -> ());
    match cuda with
    | Some "-" -> print_string (Singe.Cuda_emit.emit ~arch p)
    | Some file ->
        let oc = open_out file in
        output_string oc (Singe.Cuda_emit.emit ~arch p);
        close_out oc;
        Printf.printf "CUDA source written to %s\n" file
    | None -> ()
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a kernel and report its resources.")
    Term.(const run $ mech_term $ kernel_term $ arch_term $ warps_term
          $ version_term $ synth_term $ overlap_term $ partition_term $ dump
          $ asm $ cuda $ timings_term $ validate_term $ dump_ir_term)

let run_cmd =
  let points = Arg.(value & opt int 32768 & info [ "points" ] ~docv:"N") in
  let run mech kernel arch warps version synth overlap partition points timings
      validate faults max_cycles n_sms skew =
    catch_occupancy @@ fun () ->
    let options =
      resolve_partition partition mech kernel version
        (options_of ?synth ~overlap arch warps kernel)
    in
    let c, report = compile_or_die ~validate mech kernel version options in
    let r =
      (* A contained simulation fault (injected or real) and a fault spec
         that matches nothing in the trace each get their own exit code,
         distinct from a compile-pipeline rejection. *)
      match
        Singe.Compile.run c ~total_points:points ~faults ?max_cycles ?n_sms
          ?skew
      with
      | r -> r
      | exception Gpusim.Sm.Simulation_fault report ->
          Format.eprintf "singe: simulation fault@.%a@." Gpusim.Sm.pp_fault
            report;
          exit exit_simulation_fault
      | exception Invalid_argument msg ->
          Printf.eprintf "singe: %s\n" msg;
          exit exit_compile_rejected
    in
    Printf.printf
      "%s on %s: %.4g points/s, %.1f GFLOPS, %.1f GB/s DRAM, worst rel. \
       error vs host reference %.2g\n"
      (Singe.Kernel_abi.kernel_name kernel)
      arch.Gpusim.Arch.name
      r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
      r.Singe.Compile.machine.Gpusim.Machine.gflops
      r.Singe.Compile.machine.Gpusim.Machine.dram_gbs
      r.Singe.Compile.max_rel_err;
    let ch = r.Singe.Compile.machine.Gpusim.Machine.chip in
    Printf.printf
      "chip: %d SM(s), %d round(s)%s, makespan %.0f cycles, dispatch \
       imbalance %.1f%%, DRAM util %.0f%% (throttle max %.2fx)%s\n"
      ch.Gpusim.Chip.n_sms ch.Gpusim.Chip.rounds_total
      (if ch.Gpusim.Chip.tail_ctas > 0 then
         Printf.sprintf " (tail wave of %d CTA(s))" ch.Gpusim.Chip.tail_ctas
       else "")
      ch.Gpusim.Chip.makespan_cycles
      (100.0 *. Gpusim.Chip.dispatch_imbalance ch)
      (100.0 *. ch.Gpusim.Chip.contention.Gpusim.Chip.dram_util)
      ch.Gpusim.Chip.contention.Gpusim.Chip.throttle_max
      (if ch.Gpusim.Chip.contention.Gpusim.Chip.spill_in_l2 then
         ", spills held in L2"
       else "");
    if timings then print_report report
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile, simulate and verify a kernel.")
    Term.(const run $ mech_term $ kernel_term $ arch_term $ warps_term
          $ version_term $ synth_term $ overlap_term $ partition_term $ points
          $ timings_term $ validate_term $ faults_term $ max_cycles_term
          $ sms_term $ skew_term)

let profile_cmd =
  let points = Arg.(value & opt int 32768 & info [ "points" ] ~docv:"N") in
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome-trace" ] ~docv:"FILE"
         ~doc:"Write the profiler timeline as Chrome trace-event JSON to FILE \
               ('-' for stdout); open it at $(b,chrome://tracing) or in \
               Perfetto.")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top-stalls" ] ~docv:"N"
         ~doc:"Print the N largest per-warp stall contributors (0 disables).")
  in
  let timeline =
    Arg.(value & opt int 65536 & info [ "timeline" ] ~docv:"SPANS"
         ~doc:"Timeline ring-buffer capacity in spans; when the simulation \
               produces more, the oldest are dropped (reported). 0 disables \
               the timeline but keeps buckets and histograms.")
  in
  let check_flag =
    Arg.(value & flag & info [ "check" ]
         ~doc:"Validate the profile: bucket conservation (sums equal cycles x \
               warps), Chrome-trace JSON well-formedness and timestamp \
               monotonicity. Exit nonzero on any failure.")
  in
  let run mech kernel arch warps version overlap points chrome top timeline
      check_it faults max_cycles n_sms skew =
    catch_occupancy @@ fun () ->
    let c, _ =
      compile_or_die ~validate:false mech kernel version
        (options_of ~overlap arch warps kernel)
    in
    let profile = { Gpusim.Sm.timeline_capacity = timeline } in
    let r =
      match
        Singe.Compile.run c ~check:false ~total_points:points ~faults
          ?max_cycles ~profile ?n_sms ?skew
      with
      | r -> r
      | exception Gpusim.Sm.Simulation_fault report ->
          Format.eprintf "singe: simulation fault@.%a@." Gpusim.Sm.pp_fault
            report;
          exit exit_simulation_fault
      | exception Invalid_argument msg ->
          Printf.eprintf "singe: %s\n" msg;
          exit exit_compile_rejected
    in
    let prof =
      match r.Singe.Compile.machine.Gpusim.Machine.sim.Gpusim.Sm.profile with
      | Some p -> p
      | None -> assert false
    in
    Format.printf "@[<v>%a@]@." Gpusim.Profile.pp_breakdown prof;
    if prof.Gpusim.Profile.bar_waits <> [] then begin
      print_endline "barrier waits:";
      Format.printf "@[<v>%a@]@." Gpusim.Profile.pp_bar_waits prof
    end;
    if top > 0 then begin
      Printf.printf "top stall contributors:\n";
      List.iter
        (fun (w, b, v) ->
          let cta, wid = prof.Gpusim.Profile.warps.(w) in
          Printf.printf "  cta%d/w%d %-11s %d cycles (%.1f%% of the warp's \
                         time)\n"
            cta wid
            Gpusim.Profile.bucket_names.(b)
            v
            (100.0 *. float_of_int v
            /. Float.max 1.0 (float_of_int prof.Gpusim.Profile.cycles)))
        (Gpusim.Profile.top_stalls ~n:top prof)
    end;
    let trace_json = Gpusim.Profile.to_chrome_trace prof in
    (match chrome with
    | Some "-" -> print_string trace_json
    | Some file ->
        let oc = open_out file in
        output_string oc trace_json;
        close_out oc;
        Printf.printf "Chrome trace (%d spans%s) written to %s\n"
          (Array.length prof.Gpusim.Profile.timeline)
          (if prof.Gpusim.Profile.timeline_dropped > 0 then
             Printf.sprintf ", %d dropped" prof.Gpusim.Profile.timeline_dropped
           else "")
          file
    | None -> ());
    if check_it then begin
      let failed = ref false in
      let check name ok detail =
        if ok then Printf.printf "check %-28s ok\n" name
        else begin
          failed := true;
          Printf.printf "check %-28s FAILED%s\n" name
            (if detail = "" then "" else ": " ^ detail)
        end
      in
      check "bucket conservation"
        (Gpusim.Profile.conservation_ok prof)
        (Printf.sprintf "residual %d warp-cycles"
           (Gpusim.Profile.conservation_residual prof));
      (match Sutil.Json_check.validate trace_json with
      | Ok () -> check "chrome-trace json" true ""
      | Error m -> check "chrome-trace json" false m);
      let monotone = ref true and last = ref min_int in
      Array.iter
        (fun (s : Gpusim.Profile.span) ->
          if s.Gpusim.Profile.sp_start < !last then monotone := false;
          last := s.Gpusim.Profile.sp_start)
        prof.Gpusim.Profile.timeline;
      (* The exported timeline is end-ordered; the trace emitter re-sorts
         by start. Verify on the emitter's own ordering. *)
      let spans = Array.copy prof.Gpusim.Profile.timeline in
      Array.sort
        (fun (a : Gpusim.Profile.span) b ->
          compare a.Gpusim.Profile.sp_start b.Gpusim.Profile.sp_start)
        spans;
      let sorted_ok = ref true and prev = ref min_int in
      Array.iter
        (fun (s : Gpusim.Profile.span) ->
          if s.Gpusim.Profile.sp_start < !prev then sorted_ok := false;
          prev := s.Gpusim.Profile.sp_start;
          if s.Gpusim.Profile.sp_stop < s.Gpusim.Profile.sp_start then
            sorted_ok := false)
        spans;
      check "trace timestamps monotone" !sorted_ok "";
      if !failed then exit 1
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Simulate a kernel with the per-warp cycle-attribution profiler \
             and print the stall breakdown.")
    Term.(const run $ mech_term $ kernel_term $ arch_term $ warps_term
          $ version_term $ overlap_term $ points $ chrome $ top $ timeline
          $ check_flag $ faults_term $ max_cycles_term $ sms_term $ skew_term)

let predict_cmd =
  let points = Arg.(value & opt int 32768 & info [ "points" ] ~docv:"N") in
  let kernel_conv =
    let parse s =
      match Singe.Kernel_abi.kernel_of_string s with
      | Some k -> Ok k
      | None -> Error (`Msg ("unknown kernel " ^ s))
    in
    Arg.conv
      (parse, fun ppf k ->
        Format.pp_print_string ppf (Singe.Kernel_abi.kernel_name k))
  in
  let kernel_opt =
    Arg.(value & opt (some kernel_conv) None & info [ "kernel" ] ~docv:"KERNEL"
         ~doc:"Restrict to one kernel (default: viscosity, diffusion, \
               chemistry, edge3 and unsharp2).")
  in
  let version_conv =
    let parse s =
      match Singe.Compile.version_of_string s with
      | Some v -> Ok v
      | None -> Error (`Msg ("unknown version " ^ s))
    in
    Arg.conv
      (parse, fun ppf v ->
        Format.pp_print_string ppf (Singe.Compile.version_name v))
  in
  let version_opt =
    Arg.(value & opt (some version_conv) None & info [ "version" ] ~docv:"V"
         ~doc:"Restrict to one code version (default: ws and baseline).")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write the predicted-vs-measured rows as JSON to FILE ('-' for \
               stdout).")
  in
  let check_flag =
    Arg.(value & flag & info [ "check" ]
         ~doc:"Validate the run: the JSON payload is well-formed and the \
               simulator never beats the model's throughput floor. Exit \
               nonzero on any failure.")
  in
  let run mech arch warps synth overlap partition points kernel_opt version_opt
      json check_it n_sms skew =
    catch_occupancy @@ fun () ->
    let kernels =
      match kernel_opt with
      | Some k -> [ k ]
      | None ->
          [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion;
            Singe.Kernel_abi.Chemistry;
            Singe.Kernel_abi.Stencil Singe.Stencil_pipe.Edge3;
            Singe.Kernel_abi.Stencil Singe.Stencil_pipe.Unsharp2 ]
    in
    let versions =
      match version_opt with
      | Some v -> [ v ]
      | None -> [ Singe.Compile.Warp_specialized; Singe.Compile.Baseline ]
    in
    let rows = ref [] in
    Printf.printf "%-13s %-9s %5s  %12s %12s %7s  %s\n" "kernel" "version"
      "warps" "predicted" "simulated" "err" "model binding";
    List.iter
      (fun kernel ->
        List.iter
          (fun version ->
            let name =
              Printf.sprintf "%s/%s"
                (Singe.Kernel_abi.kernel_name kernel)
                (Singe.Compile.version_name version)
            in
            if
              version = Singe.Compile.Baseline
              && points mod (warps * 32) <> 0
            then Printf.printf "%-13s skipped (points not divisible)\n" name
            else
              (* Resolve --partition auto per row (model-only); a base
                 compile failure skips the row like any other, keeping
                 predict's best-effort table semantics. *)
              let resolved =
                match partition with
                | `Hand -> Ok (options_of ?synth ~overlap arch warps kernel)
                | `Auto -> (
                    try
                      Ok
                        (Singe.Partition_search.resolve_options mech kernel
                           version
                           ~base:(options_of ?synth ~overlap arch warps kernel))
                    with Singe.Diagnostics.Fail d -> Error d)
              in
              match
                Result.bind resolved (fun options ->
                    Singe.Compile.compile_checked ~validate:false mech kernel
                      version options)
              with
              | Error d ->
                  Printf.printf "%-13s skipped: %s\n" name
                    (Singe.Diagnostics.to_string d)
              | Ok (c, _) ->
                  let pred =
                    Singe.Perf_model.predict ?n_sms ?skew c
                      ~total_points:points
                  in
                  let r =
                    match
                      Singe.Compile.run c ~check:false ~total_points:points
                        ?n_sms ?skew
                    with
                    | r -> r
                    | exception Gpusim.Sm.Simulation_fault report ->
                        Format.eprintf "singe: simulation fault@.%a@."
                          Gpusim.Sm.pp_fault report;
                        exit exit_simulation_fault
                  in
                  let measured =
                    float_of_int
                      r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
                  in
                  let err =
                    Singe.Perf_model.rel_err
                      ~predicted:pred.Singe.Perf_model.cycles ~measured
                  in
                  Printf.printf "%-13s %-9s %5d  %12.0f %12.0f %6.1f%%  %s\n"
                    (Singe.Kernel_abi.kernel_name kernel)
                    (Singe.Compile.version_name version)
                    warps pred.Singe.Perf_model.cycles measured (100.0 *. err)
                    pred.Singe.Perf_model.binding;
                  rows := (kernel, version, pred, r, err) :: !rows)
          versions)
      kernels;
    let rows = List.rev !rows in
    (match rows with
    | [] -> ()
    | _ ->
        let worst =
          List.fold_left (fun acc (_, _, _, _, e) -> Float.max acc e) 0.0 rows
        in
        Printf.printf "worst relative error: %.1f%%\n" (100.0 *. worst));
    let payload =
      let b = Buffer.create 1024 in
      Buffer.add_string b
        (Printf.sprintf
           "{\n  \"schema\": \"singe-predict-v1\",\n  \"mech\": \"%s\",\n  \
            \"arch\": \"%s\",\n  \"points\": %d,\n  \"rows\": ["
           mech.Chem.Mechanism.name arch.Gpusim.Arch.name points);
      List.iteri
        (fun i (kernel, version, (pred : Singe.Perf_model.prediction), r, err) ->
          if i > 0 then Buffer.add_string b ",";
          Buffer.add_string b
            (Printf.sprintf
               "\n    {\"kernel\": \"%s\", \"version\": \"%s\", \"warps\": %d, \
                \"predicted_cycles\": %.0f, \"measured_cycles\": %d, \
                \"rel_err\": %.4f, \"floor_cycles\": %.0f, \
                \"predicted_points_per_sec\": %.6g, \
                \"measured_points_per_sec\": %.6g, \"binding\": \"%s\"}"
               (Singe.Kernel_abi.kernel_name kernel)
               (Singe.Compile.version_name version)
               (options_of ?synth ~overlap arch warps kernel)
                 .Singe.Compile.n_warps
               pred.Singe.Perf_model.cycles
               r.Singe.Compile.machine.Gpusim.Machine.sm_cycles err
               pred.Singe.Perf_model.floor_cycles
               pred.Singe.Perf_model.points_per_sec
               r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
               pred.Singe.Perf_model.binding))
        rows;
      Buffer.add_string b "\n  ]\n}\n";
      Buffer.contents b
    in
    (match json with
    | Some "-" -> print_string payload
    | Some file ->
        let oc = open_out file in
        output_string oc payload;
        close_out oc;
        Printf.printf "prediction rows written to %s\n" file
    | None -> ());
    if check_it then begin
      let failed = ref false in
      let check name ok detail =
        if ok then Printf.printf "check %-28s ok\n" name
        else begin
          failed := true;
          Printf.printf "check %-28s FAILED%s\n" name
            (if detail = "" then "" else ": " ^ detail)
        end
      in
      (match Sutil.Json_check.validate payload with
      | Ok () -> check "predict json" true ""
      | Error m -> check "predict json" false m);
      List.iter
        (fun (kernel, version, (pred : Singe.Perf_model.prediction), r, _) ->
          let measured =
            float_of_int r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
          in
          check
            (Printf.sprintf "floor %s/%s"
               (Singe.Kernel_abi.kernel_name kernel)
               (Singe.Compile.version_name version))
            (measured >= pred.Singe.Perf_model.floor_cycles /. 1.02)
            (Printf.sprintf "simulated %.0f beats floor %.0f" measured
               pred.Singe.Perf_model.floor_cycles))
        rows;
      if !failed then exit 1
    end
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:"Predict kernel cycles with the analytic performance model and \
             compare against the simulator.")
    Term.(const run $ mech_term $ arch_term $ warps_term $ synth_term
          $ overlap_term $ partition_term $ points $ kernel_opt $ version_opt
          $ json $ check_flag $ sms_term $ skew_term)

let tune_mode_term =
  let mode_conv =
    let parse = function
      | "exhaustive" -> Ok `Exhaustive
      | "pruned" -> Ok `Pruned
      | s -> Error (`Msg ("unknown tune mode " ^ s ^ " (exhaustive|pruned)"))
    in
    let print ppf m =
      Format.pp_print_string ppf
        (match m with `Exhaustive -> "exhaustive" | `Pruned -> "pruned")
    in
    Arg.conv (parse, print)
  in
  Arg.(value & opt mode_conv `Exhaustive & info [ "tune-mode" ] ~docv:"MODE"
       ~doc:"Sweep strategy: $(b,exhaustive) simulates every candidate (the \
             paper's brute-force sweep); $(b,pruned) scores the grid with \
             the analytic performance model and simulates only the top \
             predicted candidates.")

let top_k_term =
  Arg.(value & opt int Singe.Autotune.default_prune_keep
       & info [ "top-k" ] ~docv:"K"
         ~doc:"With --tune-mode pruned: how many model-ranked candidates to \
               simulate.")

let tune_cmd =
  let run mech kernel arch warps version synth overlap partition max_cycles
      tune_mode top_k n_sms skew () =
    catch_occupancy @@ fun () ->
    match partition with
    | `Auto -> (
        (* Full three-phase partition search: model ranking, deadlock
           gate, then simulated confirmation through the autotuner with
           the hand mapping seeded into the grid. *)
        match
          Singe.Partition_search.search ~top_k ?max_cycles ?n_sms ?skew mech
            kernel version
            ~base:(options_of ?synth ~overlap arch warps kernel)
            ()
        with
        | Ok o ->
            Format.printf "%a@." Singe.Partition_search.pp_outcome o;
            List.iter
              (fun (r : Singe.Partition_search.rejection) ->
                Printf.printf "  rejected %s: %s\n"
                  (match r.Singe.Partition_search.rej_options
                           .Singe.Compile.partition with
                  | Singe.Compile.Partition_auto spec ->
                      Format.asprintf "%a" Singe.Mapping.pp_auto_spec spec
                  | Singe.Compile.Partition_hand -> "hand")
                  (Singe.Diagnostics.to_string
                     r.Singe.Partition_search.rej_diag))
              o.Singe.Partition_search.rejections
        | Error d ->
            Printf.eprintf "singe: %s\n" (Singe.Diagnostics.to_string d);
            exit exit_compile_rejected)
    | `Hand ->
    let mode =
      match tune_mode with
      | `Exhaustive -> Singe.Autotune.Exhaustive
      | `Pruned -> Singe.Autotune.Pruned top_k
    in
    let o =
      Singe.Autotune.tune ?max_cycles ~mode ?n_sms ?skew
        ?synth_exchange:synth ~stencil_overlap:overlap mech kernel version
        arch
    in
    Printf.printf "tried %d configurations (%d skipped, %d pruned by model)\n"
      o.Singe.Autotune.tried o.Singe.Autotune.skipped
      o.Singe.Autotune.candidates_pruned;
    List.iter
      (fun (f : Singe.Autotune.failure) ->
        Printf.printf "  skipped warps=%d ctas=%d: %s\n"
          f.Singe.Autotune.failed_options.Singe.Compile.n_warps
          f.Singe.Autotune.failed_options.Singe.Compile.ctas_per_sm_target
          f.Singe.Autotune.reason)
      o.Singe.Autotune.failures;
    Printf.printf "best: %d warps, %d CTAs/SM target -> %.4g points/s\n"
      o.Singe.Autotune.best.Singe.Autotune.options.Singe.Compile.n_warps
      o.Singe.Autotune.best.Singe.Autotune.options.Singe.Compile.ctas_per_sm_target
      o.Singe.Autotune.best.Singe.Autotune.throughput;
    Printf.printf
      "model ranked the winner #%d (predicted %.4g points/s, measured %.4g)\n"
      o.Singe.Autotune.model_rank_of_winner
      o.Singe.Autotune.best.Singe.Autotune.predicted
        .Singe.Perf_model.points_per_sec
      o.Singe.Autotune.best.Singe.Autotune.throughput
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Autotune a kernel configuration (brute-force, or pruned by the \
             analytic performance model).")
    Term.(const run $ mech_term $ kernel_term $ arch_term $ warps_term
          $ version_term $ synth_term $ overlap_term $ partition_term
          $ max_cycles_term $ tune_mode_term $ top_k_term $ sms_term
          $ skew_term $ jobs_term)

let stats_cmd =
  let run mech kernel arch warps version =
    let c = Singe.Compile.compile mech kernel version (options_of arch warps kernel) in
    let p = c.Singe.Compile.lowered.Singe.Lower.program in
    Format.printf "%s on %s@.%a@.%a@." p.Gpusim.Isa.name arch.Gpusim.Arch.name
      Gpusim.Isa_stats.pp
      (Gpusim.Isa_stats.of_program arch p)
      Gpusim.Roofline.pp
      (Gpusim.Roofline.analyze arch p)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Static instruction mix, code footprint and roofline bounds.")
    Term.(const run $ mech_term $ kernel_term $ arch_term $ warps_term
          $ version_term)

let partition_cmd =
  (* Dumps the paper's partition diagrams: Fig. 5 (diffusion columns) and
     Figs. 6/7 (chemistry reaction + QSSA warp assignment). *)
  let run mech kernel warps =
    match kernel with
    | Singe.Kernel_abi.Diffusion ->
        let n = Array.length (Chem.Mechanism.computed_species mech) in
        Printf.printf
          "diffusion column partition (Fig. 5), N=%d species, %d warps\n" n
          warps;
        for i = 0 to n - 1 do
          let rows = Singe.Diffusion_dfg.cells ~n i in
          Printf.printf "  column %2d -> warp %d, rows [%s]\n" i
            (Singe.Diffusion_dfg.column_warp ~n ~n_warps:warps i)
            (String.concat ";" (List.map string_of_int rows))
        done;
        Printf.printf "covers every unordered pair exactly once: %b\n"
          (Singe.Diffusion_dfg.covers_all_pairs ~n)
    | Singe.Kernel_abi.Viscosity | Singe.Kernel_abi.Conductivity ->
        let n = Array.length (Chem.Mechanism.computed_species mech) in
        Printf.printf "%s species partition, N=%d species, %d warps\n"
          (Singe.Kernel_abi.kernel_name kernel) n warps;
        for w = 0 to warps - 1 do
          let owned =
            List.filter
              (fun k -> Singe.Viscosity_dfg.species_warp ~n ~n_warps:warps k = w)
              (List.init n Fun.id)
          in
          Printf.printf "  warp %2d: %d species [%s]\n" w (List.length owned)
            (String.concat ";" (List.map string_of_int owned))
        done
    | Singe.Kernel_abi.Chemistry ->
        let part = Singe.Chemistry_dfg.partition mech ~n_warps:warps in
        let nr = Array.length part.Singe.Chemistry_dfg.reaction_warp in
        Printf.printf
          "chemistry warp partition (Fig. 6): %d reactions over %d warps, %d \
           QSSA warp(s)\n"
          nr warps part.Singe.Chemistry_dfg.n_qssa_warps;
        for w = 0 to warps - 1 do
          let owned =
            List.filter
              (fun r -> part.Singe.Chemistry_dfg.reaction_warp.(r) = w)
              (List.init nr Fun.id)
          in
          Printf.printf "  warp %2d: cost %5d, %3d reactions\n" w
            part.Singe.Chemistry_dfg.warp_cost.(w)
            (List.length owned)
        done;
        let g = Chem.Qssa.build mech in
        if Array.length g.Chem.Qssa.nodes > 0 then begin
          Printf.printf "QSSA node assignment (Fig. 7):\n";
          Array.iteri
            (fun k (node : Chem.Qssa.node) ->
              Printf.printf "  node %2d (species %s) -> warp %d, deps [%s]\n" k
                mech.Chem.Mechanism.species.(node.Chem.Qssa.species)
                  .Chem.Species.name
                part.Singe.Chemistry_dfg.qssa_node_warp.(k)
                (String.concat ";"
                   (List.map string_of_int node.Chem.Qssa.deps)))
            g.Chem.Qssa.nodes
        end
    | Singe.Kernel_abi.Stencil id ->
        let p = Singe.Stencil_pipe.get id in
        let n_stages = List.length p.Singe.Stencil_pipe.stages in
        Printf.printf
          "stencil band partition (warp-overlapped tiling): %s, %d stage(s) \
           + loads, %d warps\n"
          p.Singe.Stencil_pipe.pipe_name n_stages warps;
        for s = 1 to n_stages do
          let lo, hi = Singe.Stencil_dfg.band ~n_warps:warps ~n_stages s in
          let stage = List.nth p.Singe.Stencil_pipe.stages (s - 1) in
          Printf.printf "  stage %d (%s, radius %d) -> warps [%d, %d)\n" s
            stage.Singe.Stencil_pipe.stage_name stage.Singe.Stencil_pipe.radius
            lo hi;
          for col = 0 to p.Singe.Stencil_pipe.width - 1 do
            if col mod 8 = 0 then
              Printf.printf "    col %2d -> warp %d\n" col
                (Singe.Stencil_dfg.owner_warp ~n_warps:warps ~n_stages
                   ~width:p.Singe.Stencil_pipe.width ~stage:s ~col)
          done
        done
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Dump the kernel's warp partition (Figs. 5-7).")
    Term.(const run $ mech_term $ kernel_term $ warps_term)

let figures_cmd =
  let names = Arg.(value & pos_all string [ "all" ] & info [] ~docv:"FIGURE") in
  let run names () =
    List.iter
      (fun n ->
        match n with
        | "all" -> Experiments.Figures.all ()
        | "fig3" -> Experiments.Figures.fig3 ()
        | "fig9" -> Experiments.Figures.fig9 ()
        | "fig10" -> Experiments.Figures.fig10 ()
        | "fig11" -> Experiments.Figures.fig11 ()
        | "fig12" -> Experiments.Figures.fig12 ()
        | "fig13" -> Experiments.Figures.fig13 ()
        | "fig14" -> Experiments.Figures.fig14 ()
        | "fig15" -> Experiments.Figures.fig15 ()
        | "fig16" -> Experiments.Figures.fig16 ()
        | "stall-breakdown" -> Experiments.Figures.stall_breakdown ()
        | "ablation-barriers" -> Experiments.Figures.ablation_barriers ()
        | "ablation-exp-constants" -> Experiments.Figures.ablation_exp_constants ()
        | "ablation-chem-comm" -> Experiments.Figures.ablation_chem_comm ()
        | "ablation-weights" -> Experiments.Figures.ablation_weights ()
        | "ablation-batches" -> Experiments.Figures.ablation_batches ()
        | "ablation-exchange" -> Experiments.Figures.ablation_exchange ()
        | "model-accuracy" -> Experiments.Figures.model_accuracy ()
        | "chip-scaling" -> Experiments.Figures.chip_scaling ()
        | "partition-search" -> Experiments.Figures.partition_search ()
        | "stencil-overlap" -> Experiments.Figures.stencil_overlap ()
        | other -> failwith ("unknown figure " ^ other))
      names
  in
  Cmd.v (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ names $ jobs_term)

let serve_cmd =
  let pos_int_conv what =
    let parse s =
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Ok n
      | Some n -> Error (`Msg (Printf.sprintf "%s must be >= 1, got %d" what n))
      | None -> Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let opt_of name what dflt doc =
    Arg.(value & opt (pos_int_conv what) dflt & info [ name ] ~docv:"N" ~doc)
  in
  let d = Singe.Serve.default_config in
  let deadline =
    opt_of "deadline-ms" "deadline" d.Singe.Serve.deadline_ms
      "Default per-request wall budget in milliseconds; also derives the \
       simulator cycle budget. Requests may override it per line."
  in
  let cycles_per_ms =
    opt_of "cycles-per-ms" "rate" d.Singe.Serve.cycles_per_ms
      "Deadline-to-cycle-budget conversion rate."
  in
  let max_queue =
    opt_of "max-queue" "queue bound" d.Singe.Serve.max_queue
      "Admission queue bound; overflow requests get an immediate busy \
       response with a retry_after_ms hint."
  in
  let retry_after =
    opt_of "retry-after-ms" "retry hint" d.Singe.Serve.retry_after_ms
      "Retry hint attached to busy responses."
  in
  let cache_entries =
    opt_of "cache-entries" "cache bound" d.Singe.Serve.cache_entries
      "Bound on the shared compile cache (LRU eviction beyond it)."
  in
  let run deadline_ms cycles_per_ms max_queue retry_after_ms cache_entries () =
    let config =
      {
        Singe.Serve.deadline_ms;
        cycles_per_ms;
        max_queue;
        retry_after_ms;
        cache_entries;
        id_cache_entries = d.Singe.Serve.id_cache_entries;
      }
    in
    let st = Singe.Serve.create ~config () in
    Singe.Serve.serve_fds st Unix.stdin Unix.stdout
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve compile/run/predict/tune/health/stats requests as \
          newline-delimited JSON on stdin/stdout until EOF or a shutdown \
          request. Every request is answered: failures become typed error \
          responses and deadline overruns degrade to the analytic model.")
    Term.(
      const run $ deadline $ cycles_per_ms $ max_queue $ retry_after
      $ cache_entries $ jobs_term)

let () =
  let doc = "Singe: a warp-specializing DSL compiler for combustion chemistry" in
  let code =
    try
      (* catch:false so Invalid_jobs reaches the handler below instead of
         cmdliner's generic uncaught-exception report (exit 125). *)
      Cmd.eval ~catch:false
        (Cmd.group (Cmd.info "singe" ~doc)
           [ info_cmd; compile_cmd; run_cmd; profile_cmd; predict_cmd;
             tune_cmd; stats_cmd; partition_cmd; figures_cmd; serve_cmd ])
    with
    | Sutil.Domain_pool.Invalid_jobs msg ->
        (* A garbage SINGE_JOBS is a usage error, same class as a bad flag. *)
        Printf.eprintf "singe: %s\n%!" msg;
        124
    | e ->
        (* Preserve cmdliner's uncaught-exception exit so 2 stays reserved
           for compile rejections. *)
        Printf.eprintf "singe: internal error, uncaught exception:\n%s\n%s%!"
          (Printexc.to_string e)
          (Printexc.get_backtrace ());
        125
  in
  exit code
