(* The automatic partition searcher and the bugfix sweep that rode along
   with it: degenerate mapping inputs become positioned diagnostics
   instead of array faults, bad auto-specs are rejected before the
   pipeline runs, the deadlock gate kills every seeded mutant before the
   simulator sees it, the search is deterministic under any domain count
   and never loses to the hand partition, and the lowering satellites
   (register-file-derived live-range slack, striped-parameter temporary
   accounting) stay fixed. *)

let hydrogen = lazy (Chem.Mech_gen.hydrogen ())
let arch = Gpusim.Arch.kepler_k20c

let base_options kernel =
  { (Singe.Compile.default_options arch) with
    Singe.Compile.n_warps = 8;
    max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
    ctas_per_sm_target = (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2)
  }

let compiled kernel =
  Singe.Compile.compile_cached (Lazy.force hydrogen) kernel
    Singe.Compile.Warp_specialized (base_options kernel)

(* A four-op graph — two loads, one add, one store — small enough that
   every warp count above it exercises the degenerate surplus-warp path. *)
let tiny_dfg () =
  let b = Singe.Dfg.Builder.create "tiny" in
  let x = Singe.Dfg.Builder.load b ~name:"x" ~group:"in" ~field:0 () in
  let y = Singe.Dfg.Builder.load b ~name:"y" ~group:"in" ~field:1 () in
  let s =
    Singe.Dfg.Builder.compute b ~name:"sum" ~inputs:[| x; y |]
      (Singe.Sexpr.add (Singe.Sexpr.In 0) (Singe.Sexpr.In 1))
  in
  Singe.Dfg.Builder.store b ~name:"out" ~group:"out" ~field:0 s;
  Singe.Dfg.Builder.finish b

(* ---- satellite: degenerate mapping inputs ---- *)

(* Regression: [Mapping.map] with a non-positive warp count used to walk
   off its per-warp accumulators; it must raise a positioned diagnostic
   from the mapping pass instead. *)
let test_degenerate_warp_count_is_diagnosed () =
  let dfg = tiny_dfg () in
  List.iter
    (fun n_warps ->
      match
        Singe.Mapping.map dfg ~n_warps ~weights:Singe.Mapping.default_weights
          ~strategy:Singe.Mapping.Store ~respect_hints:true
      with
      | _ -> Alcotest.failf "map accepted n_warps = %d" n_warps
      | exception Singe.Diagnostics.Fail d ->
          Alcotest.(check (option string))
            "pass" (Some "mapping") d.Singe.Diagnostics.pass;
          Alcotest.(check (option string))
            "positioned at the graph" (Some "tiny") d.Singe.Diagnostics.loc)
    [ 0; -1; -8 ];
  match
    Singe.Mapping.map_auto dfg ~n_warps:0
      ~weights:Singe.Mapping.default_weights
      ~spec:
        {
          Singe.Mapping.producer_warps = 1;
          hub_threshold = 3;
          chain_weight = 1.0;
          auto_strategy = Singe.Mapping.Store;
        }
  with
  | _ -> Alcotest.fail "map_auto accepted n_warps = 0"
  | exception Singe.Diagnostics.Fail d ->
      Alcotest.(check (option string))
        "pass" (Some "mapping") d.Singe.Diagnostics.pass

(* More warps than operations is NOT degenerate: surplus warps simply
   stay empty, and the mapping still validates. *)
let test_surplus_warps_map_cleanly () =
  let dfg = tiny_dfg () in
  List.iter
    (fun n_warps ->
      let m =
        Singe.Mapping.map dfg ~n_warps ~weights:Singe.Mapping.default_weights
          ~strategy:Singe.Mapping.Store ~respect_hints:true
      in
      match Singe.Mapping.validate dfg m with
      | Ok () -> ()
      | Error p ->
          Alcotest.failf "n_warps = %d: %s" n_warps (String.concat "; " p))
    [ 1; 4; 16 ]

(* ---- auto-spec hygiene ---- *)

let test_bad_auto_spec_rejected () =
  let mech = Lazy.force hydrogen in
  let kernel = Singe.Kernel_abi.Viscosity in
  let with_spec spec =
    { (base_options kernel) with
      Singe.Compile.partition = Singe.Compile.Partition_auto spec
    }
  in
  let good =
    {
      Singe.Mapping.producer_warps = 2;
      hub_threshold = 3;
      chain_weight = 1.5;
      auto_strategy = Singe.Mapping.Store;
    }
  in
  (match
     Singe.Compile.check_options mech kernel Singe.Compile.Warp_specialized
       (with_spec good)
   with
  | Ok () -> ()
  | Error d ->
      Alcotest.failf "valid spec rejected: %s" (Singe.Diagnostics.to_string d));
  List.iter
    (fun (label, spec) ->
      match
        Singe.Compile.check_options mech kernel Singe.Compile.Warp_specialized
          (with_spec spec)
      with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s accepted" label)
    [
      ("producer_warps = 0", { good with Singe.Mapping.producer_warps = 0 });
      ( "producer_warps = n_warps",
        { good with Singe.Mapping.producer_warps = 8 } );
      ("hub_threshold = 1", { good with Singe.Mapping.hub_threshold = 1 });
      ("chain_weight = 0", { good with Singe.Mapping.chain_weight = 0.0 });
      ( "chain_weight < 0",
        { good with Singe.Mapping.chain_weight = -2.0 } );
    ]

(* Every spec the searcher proposes yields a mapping that passes the
   full inter-pass validation. *)
let test_proposed_specs_map_validly () =
  let c = compiled Singe.Kernel_abi.Viscosity in
  let dfg = c.Singe.Compile.dfg in
  let specs = Singe.Partition_search.propose dfg ~n_warps:8 in
  Alcotest.(check bool) "proposals exist" true (List.length specs > 0);
  List.iter
    (fun spec ->
      let m =
        Singe.Mapping.map_auto dfg ~n_warps:8
          ~weights:Singe.Mapping.default_weights ~spec
      in
      match Singe.Mapping.validate dfg m with
      | Ok () -> ()
      | Error p ->
          Alcotest.failf "%s: %s"
            (Format.asprintf "%a" Singe.Mapping.pp_auto_spec spec)
            (String.concat "; " p))
    specs

(* ---- the safety gate vs the 11 seeded mutation operators ---- *)

let test_gate_rejects_every_mutant () =
  List.iter
    (fun kernel ->
      let c = compiled kernel in
      let schedule = c.Singe.Compile.schedule in
      (match Singe.Partition_search.gate_schedule schedule with
      | Ok () -> ()
      | Error d ->
          Alcotest.failf "original gated: %s" (Singe.Diagnostics.to_string d));
      let muts = Singe.Deadlock_check.mutants ~seed:42 schedule in
      (* hydrogen viscosity is sync-rich enough that every one of the 11
         operators applies; diffusion's sparse schedule yields fewer *)
      Alcotest.(check int)
        (Singe.Kernel_abi.kernel_name kernel ^ " mutant count")
        (if kernel = Singe.Kernel_abi.Viscosity then 11 else 1)
        (List.length muts);
      List.iter
        (fun (m : Singe.Deadlock_check.mutant) ->
          match
            Singe.Partition_search.gate_schedule m.Singe.Deadlock_check.schedule
          with
          | Ok () ->
              Alcotest.failf "mutant %s slipped the gate"
                m.Singe.Deadlock_check.label
          | Error d ->
              let msg = Singe.Diagnostics.to_string d in
              let contains hay needle =
                let nh = String.length hay and nn = String.length needle in
                let rec go i =
                  i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool)
                (m.Singe.Deadlock_check.label ^ " tagged partition-rejected")
                true
                (contains msg "partition-rejected"))
        muts)
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion ]

(* ---- search determinism and the never-worse guarantee ---- *)

let outcome_fingerprint (o : Singe.Partition_search.outcome) =
  Format.asprintf "%s|%.3f|%.3f|%d|%d|%s"
    (match o.Singe.Partition_search.winner_spec with
    | None -> "hand"
    | Some s -> Format.asprintf "%a" Singe.Mapping.pp_auto_spec s)
    o.Singe.Partition_search.hand_cycles
    o.Singe.Partition_search.winner_cycles o.Singe.Partition_search.searched
    o.Singe.Partition_search.gated
    (String.concat ";"
       (List.map
          (fun (r : Singe.Partition_search.rejection) ->
            Singe.Diagnostics.to_string r.rej_diag)
          o.Singe.Partition_search.rejections))

let test_search_deterministic_across_jobs () =
  let mech = Lazy.force hydrogen in
  let kernel = Singe.Kernel_abi.Viscosity in
  let run jobs =
    match
      Singe.Partition_search.search ~jobs ~simulate:false mech kernel
        Singe.Compile.Warp_specialized ~base:(base_options kernel) ()
    with
    | Ok o -> outcome_fingerprint o
    | Error d -> Alcotest.failf "search failed: %s" (Singe.Diagnostics.to_string d)
  in
  Alcotest.(check string) "--jobs 1 vs --jobs 4" (run 1) (run 4)

let test_search_never_loses_to_hand () =
  let mech = Lazy.force hydrogen in
  List.iter
    (fun kernel ->
      match
        Singe.Partition_search.search ~simulate:false mech kernel
          Singe.Compile.Warp_specialized ~base:(base_options kernel) ()
      with
      | Error d ->
          Alcotest.failf "search failed: %s" (Singe.Diagnostics.to_string d)
      | Ok o ->
          Alcotest.(check bool)
            (Singe.Kernel_abi.kernel_name kernel ^ " winner <= hand")
            true
            (o.Singe.Partition_search.winner_cycles
            <= o.Singe.Partition_search.hand_cycles);
          (* whatever won must itself clear the safety gate *)
          let c =
            Singe.Compile.compile_cached mech kernel
              Singe.Compile.Warp_specialized o.Singe.Partition_search.winner
          in
          (match Singe.Partition_search.gate c with
          | Ok () -> ()
          | Error d ->
              Alcotest.failf "winner fails the gate: %s"
                (Singe.Diagnostics.to_string d)))
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion ]

(* ---- lowering satellites ---- *)

(* The live-range slack the exchange synthesizer may spend is derived
   from the register file: monotone in the budget, never negative, and
   positive as soon as the file has any real capacity. *)
let test_derived_live_slack_tracks_budget () =
  let c = compiled Singe.Kernel_abi.Viscosity in
  let dfg = c.Singe.Compile.dfg and mapping = c.Singe.Compile.mapping in
  let slack b = Singe.Lower.derived_live_slack ~freg_budget:b dfg mapping in
  let prev = ref (-1) in
  List.iter
    (fun b ->
      let s = slack b in
      Alcotest.(check bool)
        (Printf.sprintf "slack(%d) >= 0" b)
        true (s >= 0);
      Alcotest.(check bool)
        (Printf.sprintf "slack monotone at %d" b)
        true (s >= !prev);
      prev := s)
    [ 0; 8; 16; 24; 32; 48; 64 ];
  Alcotest.(check bool) "a real budget buys a real window" true (slack 24 > 0)

(* Regression: searched partitions can stripe parameters hard enough
   that one instruction needs more than the two resolver temporaries the
   lowering used to hardcode; the under-declared integer register file
   then faulted inside [Perf_model.walk_step]. Compile such a candidate
   and predict it — both used to throw. *)
let test_striped_param_temps_accounted () =
  let mech = Lazy.force hydrogen in
  let spec =
    {
      Singe.Mapping.producer_warps = 1;
      hub_threshold = 3;
      chain_weight = 2.5;
      auto_strategy = Singe.Mapping.Store;
    }
  in
  let o =
    { (base_options Singe.Kernel_abi.Diffusion) with
      Singe.Compile.partition = Singe.Compile.Partition_auto spec
    }
  in
  let c =
    Singe.Compile.compile mech Singe.Kernel_abi.Diffusion
      Singe.Compile.Warp_specialized o
  in
  let pred = Singe.Perf_model.predict c ~total_points:4096 in
  Alcotest.(check bool)
    "prediction is finite and positive" true
    (Float.is_finite pred.Singe.Perf_model.cycles
    && pred.Singe.Perf_model.cycles > 0.0)

let tests =
  [
    Alcotest.test_case "degenerate warp count diagnosed" `Quick
      test_degenerate_warp_count_is_diagnosed;
    Alcotest.test_case "surplus warps map cleanly" `Quick
      test_surplus_warps_map_cleanly;
    Alcotest.test_case "bad auto-spec rejected" `Quick
      test_bad_auto_spec_rejected;
    Alcotest.test_case "proposed specs map validly" `Quick
      test_proposed_specs_map_validly;
    Alcotest.test_case "gate rejects every mutant" `Quick
      test_gate_rejects_every_mutant;
    Alcotest.test_case "search deterministic across jobs" `Quick
      test_search_deterministic_across_jobs;
    Alcotest.test_case "search never loses to hand" `Quick
      test_search_never_loses_to_hand;
    Alcotest.test_case "derived live slack tracks budget" `Quick
      test_derived_live_slack_tracks_budget;
    Alcotest.test_case "striped param temps accounted" `Quick
      test_striped_param_temps_accounted;
  ]
