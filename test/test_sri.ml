(* The SRI falloff form: parsing, the rate law, CHEMKIN round-trip, and
   end-to-end code generation against the host reference. *)

let sp name f = Chem.Species.of_formula ~name f
let arr a b e = { Chem.Reaction.pre_exp = a; temp_exp = b; activation = e }

(* A toy H2/O2 mechanism whose falloff reaction uses the SRI form. *)
let toy_sri () =
  let species =
    [| sp "H2" "H2"; sp "H" "H"; sp "O2" "O2"; sp "O" "O"; sp "OH" "OH";
       sp "H2O" "H2O" |]
  in
  let sri = { Chem.Reaction.sa = 0.45; sb = 797.0; sc = 979.0; sd = 1.0; se = 0.0 } in
  let reactions =
    [|
      Chem.Reaction.make ~label:"h2+o=oh+h" ~reactants:[ (0, 1); (3, 1) ]
        ~products:[ (4, 1); (1, 1) ]
        (Chem.Reaction.Simple (arr 5.1e4 2.67 6290.0));
      Chem.Reaction.make ~label:"h+o2=oh+o" ~reactants:[ (1, 1); (2, 1) ]
        ~products:[ (4, 1); (3, 1) ]
        (Chem.Reaction.Simple (arr 1.9e11 0.0 16440.0));
      Chem.Reaction.make ~label:"h+oh(+m)=h2o(+m)" ~reactants:[ (1, 1); (4, 1) ]
        ~products:[ (5, 1) ]
        ~third_body:{ Chem.Reaction.enhanced = [ (5, 6.0); (0, 2.0) ] }
        (Chem.Reaction.Falloff
           { high = arr 1.0e12 0.2 0.0; low = arr 1.0e14 0.0 0.0;
             kind = Chem.Reaction.Sri sri });
      Chem.Reaction.make ~label:"oh+h2=h2o+h" ~reactants:[ (4, 1); (0, 1) ]
        ~products:[ (5, 1); (1, 1) ]
        (Chem.Reaction.Simple (arr 2.1e5 1.51 3430.0));
    |]
  in
  let rng = Sutil.Prng.create 47L in
  let thermo =
    Array.map
      (fun s ->
        let atoms = float_of_int (Chem.Species.total_atoms s) in
        let a1 = 2.5 +. (0.4 *. atoms) +. Sutil.Prng.range rng (-0.1) 0.1 in
        let a6 = Sutil.Prng.range rng (-2e4) 2e4 in
        let a7 = 3.0 +. atoms in
        let a = [| a1; 1e-4; 1e-8; 0.0; 0.0; a6; a7 |] in
        { Chem.Thermo.t_low = 300.0; t_mid = 1000.0; t_high = 5000.0;
          low = Array.copy a; high = a })
      species
  in
  Chem.Mechanism.make ~name:"toy-sri" ~species ~reactions ~thermo ()

let test_sri_blending_properties () =
  let p = { Chem.Reaction.sa = 0.45; sb = 797.0; sc = 979.0; sd = 1.1; se = 0.0 } in
  List.iter
    (fun (t, pr) ->
      let f = Chem.Rates.sri_blending p ~temp:t ~pr in
      Alcotest.(check bool) "finite positive" true (Float.is_finite f && f > 0.0);
      (* at the Pr extremes X -> 0 so F -> d * T^e *)
      let f_far = Chem.Rates.sri_blending p ~temp:t ~pr:1e30 in
      Alcotest.(check bool) "X->0 limit is d" true
        (Float.abs (f_far -. p.Chem.Reaction.sd) < 1e-2))
    [ (800.0, 0.01); (1500.0, 1.0); (2400.0, 100.0) ]

let test_parse_sri () =
  let text = {|
ELEMENTS
H O
END
SPECIES
H OH H2O
END
REACTIONS
h+oh(+m) = h2o(+m)   1.0E+12  0.20  0.0
  LOW / 1.0E+14 0.0 0.0 /
  SRI / 0.45 797.0 979.0 /
h+oh = h2o           1.0E+10  0.00  0.0
  REV / 5.0E+9 0.0 1.0E+4 /
END
|} in
  match Chem.Chemkin_parser.parse text with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok parsed -> (
      let r = List.hd parsed.Chem.Chemkin_parser.raw_reactions in
      match Chem.Chemkin_parser.rate_model_of_raw r with
      | Ok (Chem.Reaction.Falloff { kind = Chem.Reaction.Sri p; _ }) ->
          Alcotest.(check (float 1e-9)) "a" 0.45 p.Chem.Reaction.sa;
          Alcotest.(check (float 1e-9)) "b" 797.0 p.Chem.Reaction.sb;
          Alcotest.(check (float 1e-9)) "d defaults to 1" 1.0 p.Chem.Reaction.sd;
          Alcotest.(check (float 1e-9)) "e defaults to 0" 0.0 p.Chem.Reaction.se
      | Ok _ -> Alcotest.fail "expected SRI falloff"
      | Error e -> Alcotest.fail (Chem.Srcloc.to_string e))

let test_parse_sri_five_params () =
  let text =
    "ELEMENTS\nH\nEND\nSPECIES\nH H2\nEND\nREACTIONS\n\
     h+h(+m) = h2(+m) 1.0E+12 0.0 0.0\n\
    \  LOW / 1.0E+14 0.0 0.0 /\n\
    \  SRI / 0.5 100.0 1000.0 1.2 0.1 /\nEND"
  in
  match Chem.Chemkin_parser.parse text with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok parsed -> (
      match
        Chem.Chemkin_parser.rate_model_of_raw
          (List.hd parsed.Chem.Chemkin_parser.raw_reactions)
      with
      | Ok (Chem.Reaction.Falloff { kind = Chem.Reaction.Sri p; _ }) ->
          Alcotest.(check (float 1e-9)) "d" 1.2 p.Chem.Reaction.sd;
          Alcotest.(check (float 1e-9)) "e" 0.1 p.Chem.Reaction.se
      | _ -> Alcotest.fail "expected 5-parameter SRI")

let test_sri_troe_exclusive () =
  let text =
    "ELEMENTS\nH\nEND\nSPECIES\nH H2\nEND\nREACTIONS\n\
     h+h(+m) = h2(+m) 1.0E+12 0.0 0.0\n\
    \  LOW / 1.0E+14 0.0 0.0 /\n\
    \  TROE / 0.7 100.0 1000.0 /\n\
    \  SRI / 0.5 100.0 1000.0 /\nEND"
  in
  match Chem.Chemkin_parser.parse text with
  | Error _ -> ()
  | Ok parsed -> (
      match
        Chem.Chemkin_parser.rate_model_of_raw
          (List.hd parsed.Chem.Chemkin_parser.raw_reactions)
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "TROE+SRI should be rejected")

let test_sri_roundtrip () =
  let mech = toy_sri () in
  let text = Chem.Mech_io.chemkin_of_mechanism mech in
  match Chem.Chemkin_parser.parse text with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok parsed ->
      let raw =
        List.find
          (fun (r : Chem.Chemkin_parser.raw_reaction) ->
            r.Chem.Chemkin_parser.sri <> None)
          parsed.Chem.Chemkin_parser.raw_reactions
      in
      (match raw.Chem.Chemkin_parser.sri with
      | Some p ->
          Alcotest.(check (float 1e-3)) "a survives" 0.45 p.Chem.Reaction.sa;
          Alcotest.(check (float 1e-1)) "b survives" 797.0 p.Chem.Reaction.sb
      | None -> assert false)

let test_sri_end_to_end () =
  let mech = toy_sri () in
  List.iter
    (fun (version, arch) ->
      let opts =
        { (Singe.Compile.default_options arch) with
          Singe.Compile.n_warps = 2;
          max_barriers = 16;
          ctas_per_sm_target = 1 }
      in
      let c = Singe.Compile.compile mech Singe.Kernel_abi.Chemistry version opts in
      let r = Singe.Compile.run c ~total_points:(32 * 32) in
      Alcotest.(check bool)
        (Printf.sprintf "SRI kernel correct (%.2g)" r.Singe.Compile.max_rel_err)
        true
        (r.Singe.Compile.max_rel_err < 1e-9))
    [
      (Singe.Compile.Warp_specialized, Gpusim.Arch.kepler_k20c);
      (Singe.Compile.Baseline, Gpusim.Arch.kepler_k20c);
      (Singe.Compile.Warp_specialized, Gpusim.Arch.fermi_c2070);
    ]

let tests =
  [
    Alcotest.test_case "sri blending bounded" `Quick test_sri_blending_properties;
    Alcotest.test_case "parse SRI (3 params)" `Quick test_parse_sri;
    Alcotest.test_case "parse SRI (5 params)" `Quick test_parse_sri_five_params;
    Alcotest.test_case "TROE+SRI rejected" `Quick test_sri_troe_exclusive;
    Alcotest.test_case "SRI CHEMKIN round-trip" `Quick test_sri_roundtrip;
    Alcotest.test_case "SRI end-to-end" `Quick test_sri_end_to_end;
  ]
