(* Cycle-attribution profiler: the conservation invariant (every warp's
   buckets sum exactly to the run's cycle count) must hold on every
   shipped kernel; the Chrome trace export must be valid JSON with
   monotone timestamps; and turning the profiler on must not perturb the
   simulation in any observable way. *)

let dme = lazy (Chem.Mech_gen.dme ())
let heptane = lazy (Chem.Mech_gen.heptane ())
let arch = Gpusim.Arch.kepler_k20c
let points = 13 * 3 * 32

let options_for kernel =
  { (Singe.Compile.default_options arch) with
    Singe.Compile.n_warps =
      (if kernel = Singe.Kernel_abi.Chemistry then 4 else 6);
    max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
    ctas_per_sm_target = (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2)
  }

let compiled mech kernel =
  Singe.Compile.compile_cached mech kernel Singe.Compile.Warp_specialized
    (options_for kernel)

let run_profiled ?(timeline = 0) c =
  let r =
    Singe.Compile.run ~check:false c ~total_points:points
      ~profile:{ Gpusim.Sm.timeline_capacity = timeline }
  in
  match r.Singe.Compile.machine.Gpusim.Machine.sim.Gpusim.Sm.profile with
  | Some p -> (r, p)
  | None -> Alcotest.fail "profiled run returned no profile"

(* ---- conservation: buckets sum to cycles x warps, per warp ---- *)

let test_conservation_shipped () =
  List.iter
    (fun (mech_name, mech) ->
      List.iter
        (fun kernel ->
          let label =
            mech_name ^ " " ^ Singe.Kernel_abi.kernel_name kernel
          in
          let _, p = run_profiled (compiled (Lazy.force mech) kernel) in
          Alcotest.(check bool) (label ^ " has warps") true
            (Gpusim.Profile.n_warps p > 0);
          Array.iteri
            (fun w row ->
              Alcotest.(check int)
                (Printf.sprintf "%s warp %d sums to cycles" label w)
                p.Gpusim.Profile.cycles
                (Array.fold_left ( + ) 0 row))
            p.Gpusim.Profile.buckets;
          Alcotest.(check int) (label ^ " residual") 0
            (Gpusim.Profile.conservation_residual p);
          Alcotest.(check bool) (label ^ " conserved") true
            (Gpusim.Profile.conservation_ok p))
        [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion;
          Singe.Kernel_abi.Chemistry ])
    [ ("dme", dme); ("heptane", heptane) ]

(* ---- Chrome trace: valid JSON, monotone timestamps ---- *)

let check_json label s =
  match Sutil.Json_check.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.fail (label ^ ": " ^ e)

let test_chrome_trace_valid () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let _, p = run_profiled ~timeline:65536 c in
  Alcotest.(check bool) "spans recorded" true
    (Array.length p.Gpusim.Profile.timeline > 0);
  check_json "chrome trace" (Gpusim.Profile.to_chrome_trace p);
  check_json "profile json" (Gpusim.Profile.to_json p);
  (* The trace emits spans sorted by start; mirror that sort and require
     non-decreasing ts with non-negative durations. *)
  let spans = Array.copy p.Gpusim.Profile.timeline in
  Array.sort
    (fun a b ->
      if a.Gpusim.Profile.sp_start <> b.Gpusim.Profile.sp_start then
        compare a.Gpusim.Profile.sp_start b.Gpusim.Profile.sp_start
      else
        compare
          (a.Gpusim.Profile.sp_warp, a.Gpusim.Profile.sp_stop)
          (b.Gpusim.Profile.sp_warp, b.Gpusim.Profile.sp_stop))
    spans;
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "span %d duration non-negative" i)
        true
        (s.Gpusim.Profile.sp_stop >= s.Gpusim.Profile.sp_start);
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "span %d ts monotone" i)
          true
          (s.Gpusim.Profile.sp_start
          >= spans.(i - 1).Gpusim.Profile.sp_start))
    spans;
  Alcotest.(check int) "nothing dropped at full capacity" 0
    p.Gpusim.Profile.timeline_dropped

let test_ring_truncation () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let _, p = run_profiled ~timeline:64 c in
  Alcotest.(check int) "ring filled" 64
    (Array.length p.Gpusim.Profile.timeline);
  Alcotest.(check bool) "older spans evicted" true
    (p.Gpusim.Profile.timeline_dropped > 0);
  (* A truncated ring must still export a valid trace. *)
  check_json "truncated chrome trace" (Gpusim.Profile.to_chrome_trace p)

(* ---- barrier wait histograms ---- *)

let test_bar_hist_sums () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let _, p = run_profiled c in
  Alcotest.(check bool) "some barrier saw a wait" true
    (p.Gpusim.Profile.bar_waits <> []);
  List.iter
    (fun (b : Gpusim.Profile.bar_wait) ->
      let label = Printf.sprintf "bar %d" b.Gpusim.Profile.bw_bar in
      Alcotest.(check bool) (label ^ " counted") true
        (b.Gpusim.Profile.bw_count > 0);
      Alcotest.(check int) (label ^ " hist sums to count")
        b.Gpusim.Profile.bw_count
        (Array.fold_left ( + ) 0 b.Gpusim.Profile.bw_hist);
      Alcotest.(check bool) (label ^ " max bounded by total") true
        (b.Gpusim.Profile.bw_max <= b.Gpusim.Profile.bw_total))
    p.Gpusim.Profile.bar_waits

(* ---- profiling must not perturb the simulation ---- *)

let test_profile_no_perturb () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Diffusion in
  let plain = Singe.Compile.run ~check:false c ~total_points:points in
  let profiled, _ = run_profiled ~timeline:4096 c in
  let sim (r : Singe.Compile.run_result) =
    r.Singe.Compile.machine.Gpusim.Machine.sim
  in
  Alcotest.(check int) "cycles identical"
    (sim plain).Gpusim.Sm.cycles
    (sim profiled).Gpusim.Sm.cycles;
  let cp = (sim plain).Gpusim.Sm.counters
  and cq = (sim profiled).Gpusim.Sm.counters in
  Alcotest.(check int) "issued" cp.Gpusim.Sm.issued cq.Gpusim.Sm.issued;
  Alcotest.(check int) "flops" cp.Gpusim.Sm.flops cq.Gpusim.Sm.flops;
  Alcotest.(check int) "barrier stalls" cp.Gpusim.Sm.barrier_stalls
    cq.Gpusim.Sm.barrier_stalls;
  Alcotest.(check int) "cta barrier stalls" cp.Gpusim.Sm.cta_barrier_stalls
    cq.Gpusim.Sm.cta_barrier_stalls;
  Alcotest.(check int) "icache stall cycles" cp.Gpusim.Sm.icache_stall_cycles
    cq.Gpusim.Sm.icache_stall_cycles;
  Alcotest.(check int) "ccache stall cycles" cp.Gpusim.Sm.ccache_stall_cycles
    cq.Gpusim.Sm.ccache_stall_cycles

(* ---- the once-per-fill counters lower-bound the per-warp buckets ----

   Counters charge each cache fill once; the profiler charges every warp
   that waits on the fill for its own wait, so summed over warps the
   profile can only exceed the counter. *)

let test_fill_counters_bound_buckets () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let r, p = run_profiled c in
  let counters =
    r.Singe.Compile.machine.Gpusim.Machine.sim.Gpusim.Sm.counters
  in
  let tot = Gpusim.Profile.bucket_totals p in
  Alcotest.(check bool) "icache bucket >= once-per-fill counter" true
    (tot.(Gpusim.Profile.icache) >= counters.Gpusim.Sm.icache_stall_cycles);
  Alcotest.(check bool) "ccache bucket >= once-per-fill counter" true
    (tot.(Gpusim.Profile.ccache) >= counters.Gpusim.Sm.ccache_stall_cycles)

let tests =
  [
    Alcotest.test_case "buckets conserve on every shipped kernel" `Slow
      test_conservation_shipped;
    Alcotest.test_case "chrome trace is valid and monotone" `Quick
      test_chrome_trace_valid;
    Alcotest.test_case "timeline ring truncates safely" `Quick
      test_ring_truncation;
    Alcotest.test_case "barrier histograms sum to their counts" `Quick
      test_bar_hist_sums;
    Alcotest.test_case "profiling does not perturb the simulation" `Quick
      test_profile_no_perturb;
    Alcotest.test_case "fill counters lower-bound cache buckets" `Quick
      test_fill_counters_bound_buckets;
  ]
