(* GPU-simulator tests: architecture constants, ISA validation, functional
   execution, named barriers (including deadlock detection), cache models,
   and occupancy. *)

open Gpusim

let empty_banks n_warps = Array.init n_warps (fun _ -> Array.init 32 (fun _ -> [||]))
let empty_ibanks n_warps = Array.init n_warps (fun _ -> Array.init 32 (fun _ -> [||]))

let base_program ?(n_warps = 2) ?(barriers = 2) ~body () =
  {
    Isa.name = "test";
    n_warps;
    n_fregs = 8;
    n_iregs = 1;
    shared_doubles = 128;
    local_doubles = 0;
    barriers_used = barriers;
    point_map = Isa.Thread_per_point;
    prologue = Isa.Instrs [];
    body;
    const_bank = empty_banks n_warps;
    param_bank = empty_ibanks n_warps;
    const_mem = [| 3.5 |];
    groups =
      [|
        { Isa.group_name = "a"; fields = 1 };
        { Isa.group_name = "out"; fields = 1 };
      |];
    exp_consts_in_registers = false;
  }

let run_program ?(points = 128) p ~fill =
  let ctas = points / (p.Isa.n_warps * 32) in
  Machine.run ~fill_inputs:fill Arch.kepler_k20c
    { Machine.program = p; total_points = points; ctas }

let test_arch_peaks () =
  Alcotest.(check (float 1.0)) "fermi peak" 513.9
    (Arch.peak_dp_gflops Arch.fermi_c2070);
  Alcotest.(check (float 1.0)) "kepler peak" 1173.1
    (Arch.peak_dp_gflops Arch.kepler_k20c);
  Alcotest.(check bool) "by_name" true (Arch.by_name "fermi" <> None);
  Alcotest.(check bool) "16 barriers" true
    (Arch.fermi_c2070.Arch.named_barriers_per_sm = 16
    && Arch.kepler_k20c.Arch.named_barriers_per_sm = 16)

let test_isa_validation () =
  let bad =
    base_program
      ~body:
        (Isa.Instrs
           [ Isa.Arith { op = Isa.Add; dst = 99; srcs = [| Isa.Sreg 0; Isa.Sreg 1 |]; pred = None } ])
      ()
  in
  (match Isa.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted out-of-range register");
  let bad2 =
    base_program
      ~body:(Isa.Instrs [ Isa.Bar_sync { bar = 7; count = 2 } ])
      ~barriers:2 ()
  in
  match Isa.validate bad2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted out-of-range barrier"

let test_functional_fma () =
  let p =
    base_program
      ~body:
        (Isa.Instrs
           [
             Isa.Ld_global { dst = 0; group = 0; field = Isa.F_static 0; via_tex = true; pred = None };
             Isa.Arith { op = Isa.Fma; dst = 1; srcs = [| Isa.Sreg 0; Isa.Sconst 0; Isa.Simm 1.0 |]; pred = None };
             Isa.St_global { src = Isa.Sreg 1; group = 1; field = Isa.F_static 0; pred = None };
           ])
      ()
  in
  let r =
    run_program p ~fill:(fun mem n ->
        Memstate.set_field mem ~group:0 ~field:0
          (Array.init n (fun i -> float_of_int i)))
  in
  let out = Memstate.get_field r.Machine.mem ~group:1 ~field:0 in
  for i = 0 to r.Machine.simulated_points - 1 do
    Alcotest.(check (float 1e-12)) "fma" (Float.fma (float_of_int i) 3.5 1.0) out.(i)
  done

let test_barrier_producer_consumer () =
  (* Warp 0 produces through shared memory; warp 1 consumes after a named
     barrier. *)
  let p =
    base_program ~n_warps:2
      ~body:
        (Isa.Seq
           [
             Isa.If_warps
               { mask = 1;
                 body =
                   Isa.Instrs
                     [
                       Isa.Ld_global { dst = 0; group = 0; field = Isa.F_static 0; via_tex = true; pred = None };
                       Isa.St_shared { src = Isa.Sreg 0; addr = Isa.sh_lane 0; pred = None };
                       Isa.Bar_arrive { bar = 0; count = 2 };
                     ] };
             Isa.If_warps
               { mask = 2;
                 body =
                   Isa.Instrs
                     [
                       Isa.Bar_sync { bar = 0; count = 2 };
                       Isa.Ld_shared { dst = 1; addr = Isa.sh_lane 0; pred = None };
                       Isa.Arith { op = Isa.Mul; dst = 2; srcs = [| Isa.Sreg 1; Isa.Simm 2.0 |]; pred = None };
                       Isa.St_global { src = Isa.Sreg 2; group = 1; field = Isa.F_static 0; pred = None };
                     ] };
           ])
      ()
  in
  let p = { p with Isa.point_map = Isa.Coop } in
  let r =
    run_program ~points:64 p ~fill:(fun mem n ->
        Memstate.set_field mem ~group:0 ~field:0
          (Array.init n (fun i -> float_of_int (i + 1))))
  in
  let out = Memstate.get_field r.Machine.mem ~group:1 ~field:0 in
  for i = 0 to r.Machine.simulated_points - 1 do
    Alcotest.(check (float 1e-12)) "relayed" (2.0 *. float_of_int (i + 1)) out.(i)
  done

let test_deadlock_detected () =
  (* A sync with no matching arrival must be caught, not spin forever. *)
  let p =
    base_program ~n_warps:2
      ~body:
        (Isa.If_warps
           { mask = 2; body = Isa.Instrs [ Isa.Bar_sync { bar = 0; count = 2 } ] })
      ()
  in
  let p = { p with Isa.point_map = Isa.Coop } in
  match run_program ~points:64 p ~fill:(fun _ _ -> ()) with
  | exception Sm.Simulation_fault f ->
      Alcotest.(check string)
        "barrier deadlock kind" "barrier deadlock"
        (Sm.fault_kind_name f.Sm.fault_kind);
      Alcotest.(check bool) "dumps the stuck warps" true (f.Sm.warp_dumps <> [])
  | _ -> Alcotest.fail "deadlock not detected"

let test_icache_streams () =
  let ic = Caches.Icache.create Arch.kepler_k20c in
  (* A sequential stream: first touch misses, the rest ride prefetch. *)
  let cold = Caches.Icache.access ic ~now:0 ~line:1000 in
  Alcotest.(check bool) "cold miss" true (cold >= 100);
  let costs = List.init 20 (fun i -> Caches.Icache.access ic ~now:(i * 200) ~line:(1001 + i)) in
  List.iter (fun c -> Alcotest.(check bool) "stream cheap" true (c < 20)) costs;
  (* Many concurrent streams exceed the tracker and each miss is cold. *)
  let ic2 = Caches.Icache.create Arch.kepler_k20c in
  let miss_count = ref 0 in
  for round = 0 to 19 do
    for stream = 0 to 7 do
      let line = (stream * 100000) + (round * 17) in
      if Caches.Icache.access ic2 ~now:(round * 100) ~line >= 100 then incr miss_count
    done
  done;
  Alcotest.(check bool) "8 strided streams thrash" true (!miss_count > 100)

let test_ccache_capacity () =
  let cc = Caches.Ccache.create Arch.kepler_k20c in
  (* 8 KB = 1024 slots (128 lines); a 512-slot working set is resident
     after the cold pass... *)
  for pass = 0 to 2 do
    for s = 0 to 511 do
      ignore (Caches.Ccache.access cc ~now:(pass * 100000) ~slot:s)
    done
  done;
  let st = Caches.Ccache.stats cc in
  Alcotest.(check bool) "small set resident" true (st.Caches.Ccache.misses <= 64);
  (* ...but a 2048-slot cyclic sweep misses every line every pass. *)
  let cc2 = Caches.Ccache.create Arch.kepler_k20c in
  for pass = 0 to 2 do
    for s = 0 to 2047 do
      ignore (Caches.Ccache.access cc2 ~now:(pass * 1000000) ~slot:s)
    done
  done;
  let st2 = Caches.Ccache.stats cc2 in
  Alcotest.(check bool) "oversized set thrashes" true
    (st2.Caches.Ccache.misses > 700)

let test_occupancy_limits () =
  let p = base_program ~n_warps:8 ~body:(Isa.Instrs []) () in
  let p = { p with Isa.n_fregs = 100; shared_doubles = 128; barriers_used = 0 } in
  let occ = Machine.occupancy Arch.kepler_k20c p in
  (* 8 warps * 32 threads * (2*100+1+10) regs32 > 64K: register-limited. *)
  Alcotest.(check string) "limited by registers" "registers" occ.Machine.limited_by;
  let p2 = { p with Isa.n_fregs = 8; shared_doubles = 4096 } in
  let occ2 = Machine.occupancy Arch.kepler_k20c p2 in
  Alcotest.(check string) "limited by shared" "shared memory" occ2.Machine.limited_by;
  (* Named barriers divide occupancy (the paper's footnote). *)
  let p3 = { p with Isa.n_fregs = 8; shared_doubles = 16; barriers_used = 16 } in
  let occ3 = Machine.occupancy Arch.kepler_k20c p3 in
  Alcotest.(check int) "16 barriers = 1 CTA" 1 occ3.Machine.resident_ctas

let test_batch_extrapolation () =
  (* A long streaming launch must agree with simulating it outright. *)
  let p =
    base_program ~n_warps:2
      ~body:
        (Isa.Instrs
           [
             Isa.Ld_global { dst = 0; group = 0; field = Isa.F_static 0; via_tex = true; pred = None };
             Isa.Arith { op = Isa.Mul; dst = 1; srcs = [| Isa.Sreg 0; Isa.Simm 2.0 |]; pred = None };
             Isa.St_global { src = Isa.Sreg 1; group = 1; field = Isa.F_static 0; pred = None };
           ])
      ()
  in
  let fill mem n =
    Memstate.set_field mem ~group:0 ~field:0 (Array.init n float_of_int)
  in
  let launch = { Machine.program = p; total_points = 2048; ctas = 2 } in
  let full = Machine.run ~fill_inputs:fill ~max_sim_batches:1000 Arch.kepler_k20c launch in
  let extra = Machine.run ~fill_inputs:fill ~max_sim_batches:4 Arch.kepler_k20c launch in
  let rel =
    abs_float (full.Machine.time_s -. extra.Machine.time_s) /. full.Machine.time_s
  in
  Alcotest.(check bool) "within 15%" true (rel < 0.15)

let tests =
  [
    Alcotest.test_case "arch peaks" `Quick test_arch_peaks;
    Alcotest.test_case "isa validation" `Quick test_isa_validation;
    Alcotest.test_case "functional fma" `Quick test_functional_fma;
    Alcotest.test_case "named barrier producer/consumer" `Quick test_barrier_producer_consumer;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
    Alcotest.test_case "icache stream model" `Quick test_icache_streams;
    Alcotest.test_case "ccache capacity" `Quick test_ccache_capacity;
    Alcotest.test_case "occupancy limits" `Quick test_occupancy_limits;
    Alcotest.test_case "batch extrapolation" `Quick test_batch_extrapolation;
  ]
