(* Compiler-pipeline properties across configurations: schedule
   well-formedness and barrier budgets, spill monotonicity in the register
   budget, constant-bank caps, and sync grouping. *)

let hydrogen = Chem.Mech_gen.hydrogen

let compile ?(mech = hydrogen ()) ?(kernel = Singe.Kernel_abi.Chemistry)
    ?(arch = Gpusim.Arch.kepler_k20c) ?freg_budget ?(mb = 8) ?(gs = true) nw =
  let opts =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = nw;
      max_barriers = mb;
      group_syncs = gs;
      freg_budget;
      ctas_per_sm_target = 1 }
  in
  Singe.Compile.compile mech kernel Singe.Compile.Warp_specialized opts

let test_schedule_well_formed_everywhere () =
  List.iter
    (fun kernel ->
      List.iter
        (fun nw ->
          let c = compile ~kernel nw in
          match
            Singe.Schedule.well_formed c.Singe.Compile.schedule
              c.Singe.Compile.dfg c.Singe.Compile.mapping
          with
          | Ok () -> ()
          | Error e ->
              Alcotest.fail
                (Printf.sprintf "%s nw=%d: %s"
                   (Singe.Kernel_abi.kernel_name kernel)
                   nw e))
        [ 2; 3; 4; 6 ])
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Conductivity;
      Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ]

let test_barrier_budget_respected () =
  List.iter
    (fun mb ->
      let c = compile ~mb 4 in
      let used = c.Singe.Compile.schedule.Singe.Schedule.barriers_used in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d: used %d" mb used)
        true (used <= mb))
    [ 2; 4; 8; 16 ]

let test_spills_monotone_in_budget () =
  let spill b =
    (compile ?freg_budget:(Some b) 4).Singe.Compile.lowered
      .Singe.Lower.spill_bytes_per_thread
  in
  let s12 = spill 12 and s24 = spill 24 and s48 = spill 48 and s96 = spill 96 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %d >= %d >= %d >= %d" s12 s24 s48 s96)
    true
    (s12 >= s24 && s24 >= s48 && s48 >= s96);
  Alcotest.(check bool) "large budget eliminates spills" true (s96 = 0)

let test_bank_cap_respected () =
  List.iter
    (fun b ->
      let c = compile ~kernel:Singe.Kernel_abi.Viscosity ?freg_budget:(Some b) 4 in
      let bank = c.Singe.Compile.lowered.Singe.Lower.n_bank_regs in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d: %d bank regs" b bank)
        true
        (bank <= b * 11 / 20))
    [ 16; 24; 40; 80 ]

let test_grouping_reduces_sync_points () =
  let syncs gs =
    (compile ~kernel:Singe.Kernel_abi.Diffusion ~gs 4).Singe.Compile.schedule
      .Singe.Schedule.n_sync_points
  in
  Alcotest.(check bool) "grouped <= ungrouped" true (syncs true <= syncs false)

let test_regs_within_arch_cap () =
  List.iter
    (fun (arch : Gpusim.Arch.t) ->
      List.iter
        (fun kernel ->
          let c = compile ~arch ~kernel ~mb:16 4 in
          let p = c.Singe.Compile.lowered.Singe.Lower.program in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s: %d regs32"
               (Singe.Kernel_abi.kernel_name kernel)
               arch.Gpusim.Arch.name
               (Gpusim.Isa.regs32_per_thread p))
            true
            (Gpusim.Isa.regs32_per_thread p
            <= arch.Gpusim.Arch.max_regs_per_thread))
        [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Chemistry ])
    [ Gpusim.Arch.fermi_c2070; Gpusim.Arch.kepler_k20c ]

let test_shared_within_cap () =
  List.iter
    (fun kernel ->
      let c = compile ~kernel ~mb:16 6 in
      let p = c.Singe.Compile.lowered.Singe.Lower.program in
      Alcotest.(check bool)
        (Singe.Kernel_abi.kernel_name kernel)
        true
        (p.Gpusim.Isa.shared_doubles * 8
        <= Gpusim.Arch.kepler_k20c.Gpusim.Arch.shared_bytes_per_sm))
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Conductivity;
      Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ]

let test_generated_code_always_validates () =
  List.iter
    (fun (kernel, nw, budget) ->
      let c = compile ~kernel ?freg_budget:budget nw in
      match Gpusim.Isa.validate c.Singe.Compile.lowered.Singe.Lower.program with
      | Ok () -> ()
      | Error es ->
          Alcotest.fail
            (Printf.sprintf "%s nw=%d: %s"
               (Singe.Kernel_abi.kernel_name kernel)
               nw (String.concat "; " es)))
    [
      (Singe.Kernel_abi.Viscosity, 2, None);
      (Singe.Kernel_abi.Viscosity, 6, Some 12);
      (Singe.Kernel_abi.Conductivity, 4, None);
      (Singe.Kernel_abi.Diffusion, 3, Some 16);
      (Singe.Kernel_abi.Chemistry, 4, None);
      (Singe.Kernel_abi.Chemistry, 6, Some 14);
    ]

(* Every kernel x version x architecture the evaluation touches must go
   through the full pass pipeline with all four inter-pass validators
   clean — the compile-time equivalent of `singe compile --validate`. *)
let test_validation_clean_across_matrix () =
  List.iter
    (fun arch ->
      List.iter
        (fun version ->
          List.iter
            (fun kernel ->
              let opts =
                { (Singe.Compile.default_options arch) with
                  Singe.Compile.n_warps =
                    (if version = Singe.Compile.Baseline then 2 else 4);
                  max_barriers =
                    (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
                  ctas_per_sm_target = 1 }
              in
              match
                Singe.Compile.compile_checked ~validate:true (hydrogen ())
                  kernel version opts
              with
              | Ok _ -> ()
              | Error d ->
                  Alcotest.fail
                    (Printf.sprintf "%s %s on %s: %s"
                       (Singe.Compile.version_name version)
                       (Singe.Kernel_abi.kernel_name kernel)
                       arch.Gpusim.Arch.name
                       (Singe.Diagnostics.to_string d)))
            [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Conductivity;
              Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ])
        [ Singe.Compile.Warp_specialized; Singe.Compile.Baseline;
          Singe.Compile.Naive_warp_specialized ])
    [ Gpusim.Arch.fermi_c2070; Gpusim.Arch.kepler_k20c ]

let tests =
  [
    Alcotest.test_case "schedules well-formed" `Quick test_schedule_well_formed_everywhere;
    Alcotest.test_case "validators clean across the matrix" `Quick
      test_validation_clean_across_matrix;
    Alcotest.test_case "barrier budgets respected" `Quick test_barrier_budget_respected;
    Alcotest.test_case "spills monotone in budget" `Quick test_spills_monotone_in_budget;
    Alcotest.test_case "constant-bank cap" `Quick test_bank_cap_respected;
    Alcotest.test_case "grouping reduces syncs" `Quick test_grouping_reduces_sync_points;
    Alcotest.test_case "regs within arch cap" `Quick test_regs_within_arch_cap;
    Alcotest.test_case "shared within cap" `Quick test_shared_within_cap;
    Alcotest.test_case "generated code validates" `Quick test_generated_code_always_validates;
  ]
