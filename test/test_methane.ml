(* The methane (GRI-3.0-footprint) mechanism: structure, chemistry
   integrity, and end-to-end compilation of all four kernels. *)

let methane = Chem.Mech_gen.methane

let test_footprint () =
  let m = methane () in
  Alcotest.(check int) "species" 53 (Chem.Mechanism.n_species m);
  Alcotest.(check int) "reactions" 325 (Chem.Mechanism.n_reactions m);
  Alcotest.(check int) "qssa" 6 (Chem.Mechanism.n_qssa m);
  Alcotest.(check int) "stiff" 12 (Chem.Mechanism.n_stiff m)

let test_element_conservation () =
  let m = methane () in
  Array.iter
    (fun (r : Chem.Reaction.t) ->
      match Chem.Reaction.element_balance m.Chem.Mechanism.species r with
      | Ok () -> ()
      | Error e -> Alcotest.fail (r.Chem.Reaction.label ^ ": " ^ e))
    m.Chem.Mechanism.reactions

let test_nitrogen_species_react () =
  (* The nitrogen sub-mechanism must actually participate: at least a few
     N-containing species appear in reactions. *)
  let m = methane () in
  let nitrogenous = ref 0 in
  Array.iteri
    (fun i sp ->
      if
        Chem.Species.atom_count sp Chem.Species.N > 0
        && Chem.Species.atom_count sp Chem.Species.H
           + Chem.Species.atom_count sp Chem.Species.C
           + Chem.Species.atom_count sp Chem.Species.O
           > 0
        && Array.exists
             (fun r -> Chem.Reaction.involves r i)
             m.Chem.Mechanism.reactions
      then incr nitrogenous)
    m.Chem.Mechanism.species;
  Alcotest.(check bool)
    (Printf.sprintf "%d nitrogenous species react" !nitrogenous)
    true (!nitrogenous >= 5)

let test_roundtrip_files () =
  let m = methane () in
  let chemkin = Chem.Mech_io.chemkin_of_mechanism m in
  let thermo = Chem.Mech_io.thermo_of_mechanism m in
  let transport = Chem.Mech_io.transport_of_mechanism m in
  let sets = Chem.Mech_io.species_sets_of_mechanism m in
  match Chem.Mech_io.load_strings ~species_sets:sets ~chemkin ~thermo ~transport ~name:"methane" () with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok m2 ->
      Alcotest.(check int) "species survive" (Chem.Mechanism.n_species m)
        (Chem.Mechanism.n_species m2);
      Alcotest.(check int) "reactions survive" (Chem.Mechanism.n_reactions m)
        (Chem.Mechanism.n_reactions m2);
      Alcotest.(check int) "qssa survive" (Chem.Mechanism.n_qssa m)
        (Chem.Mechanism.n_qssa m2)

let test_all_kernels_slow () =
  let m = methane () in
  List.iter
    (fun (kernel, nw) ->
      let opts =
        { (Singe.Compile.default_options Gpusim.Arch.kepler_k20c) with
          Singe.Compile.n_warps = nw;
          max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
          ctas_per_sm_target = 1 }
      in
      let c =
        Singe.Compile.compile m kernel Singe.Compile.Warp_specialized opts
      in
      let r = Singe.Compile.run c ~total_points:(32 * 32) in
      Alcotest.(check bool)
        (Printf.sprintf "%s correct (%.2g)"
           (Singe.Kernel_abi.kernel_name kernel)
           r.Singe.Compile.max_rel_err)
        true
        (r.Singe.Compile.max_rel_err < 1e-8))
    [
      (Singe.Kernel_abi.Viscosity, 6);
      (Singe.Kernel_abi.Conductivity, 6);
      (Singe.Kernel_abi.Diffusion, 4);
      (Singe.Kernel_abi.Chemistry, 8);
    ]

let tests =
  [
    Alcotest.test_case "GRI-3.0 footprint" `Quick test_footprint;
    Alcotest.test_case "elements conserved" `Quick test_element_conservation;
    Alcotest.test_case "nitrogen chemistry present" `Quick test_nitrogen_species_react;
    Alcotest.test_case "file round-trip" `Quick test_roundtrip_files;
    Alcotest.test_case "all kernels (slow)" `Slow test_all_kernels_slow;
  ]
