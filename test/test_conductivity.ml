(* The thermal-conductivity extension kernel: reference behaviour, DFG
   correctness across versions and architectures, and its transport fits. *)

let hydrogen = Chem.Mech_gen.hydrogen
let dme = Chem.Mech_gen.dme
let heptane = Chem.Mech_gen.heptane

let run mech version arch nw =
  let opts =
    { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = nw }
  in
  let c =
    Singe.Compile.compile mech Singe.Kernel_abi.Conductivity version opts
  in
  Singe.Compile.run c ~total_points:(32 * 32)

let test_fit_tracks_kinetic () =
  (* The cubic log fit must track the kinetic-theory values within a few
     percent over the fit range. *)
  let mech = dme () in
  let sp = mech.Chem.Mechanism.species in
  Array.iteri
    (fun i s ->
      List.iter
        (fun t ->
          let exact = Chem.Transport.kinetic_conductivity s t in
          let fitted =
            Chem.Transport.conductivity mech.Chem.Mechanism.transport i t
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s at %.0fK: %.3g vs %.3g" s.Chem.Species.name t
               exact fitted)
            true
            (Float.abs (fitted -. exact) /. exact < 0.05))
        [ 400.0; 1000.0; 1800.0; 2600.0 ])
    sp

let test_pure_species_limit () =
  (* A mixture that is overwhelmingly one species has (approximately) that
     species' conductivity: both Mathur sums collapse to x lambda and
     x / lambda. *)
  let mech = hydrogen () in
  let computed = Chem.Mechanism.computed_species mech in
  let n_all = Chem.Mechanism.n_species mech in
  let x = Array.make n_all 1e-12 in
  let k0 = computed.(0) in
  x.(k0) <- 1.0;
  let lam_mix = Chem.Ref_kernels.conductivity_point mech ~temp:1500.0 ~mole_frac:x in
  let lam_pure =
    Chem.Transport.conductivity mech.Chem.Mechanism.transport k0 1500.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "mixture %.4g ~ pure %.4g" lam_mix lam_pure)
    true
    (Float.abs (lam_mix -. lam_pure) /. lam_pure < 0.05)

let test_conductivity_positive_monotone_t () =
  (* Gas conductivity grows with temperature. *)
  let mech = dme () in
  let computed = Chem.Mechanism.computed_species mech in
  let n_all = Chem.Mechanism.n_species mech in
  let x = Array.make n_all 0.0 in
  Array.iter (fun sp -> x.(sp) <- 1.0 /. float_of_int (Array.length computed)) computed;
  let v t = Chem.Ref_kernels.conductivity_point mech ~temp:t ~mole_frac:x in
  Alcotest.(check bool) "positive" true (v 1000.0 > 0.0);
  Alcotest.(check bool) "monotone in T" true (v 2200.0 > v 1200.0)

let test_end_to_end () =
  List.iter
    (fun (mech, nw, version, arch) ->
      let r = run (mech ()) version arch nw in
      Alcotest.(check bool)
        (Printf.sprintf "correct (%.2g)" r.Singe.Compile.max_rel_err)
        true
        (r.Singe.Compile.max_rel_err < 1e-12))
    [
      (hydrogen, 3, Singe.Compile.Warp_specialized, Gpusim.Arch.kepler_k20c);
      (hydrogen, 4, Singe.Compile.Baseline, Gpusim.Arch.kepler_k20c);
      (hydrogen, 3, Singe.Compile.Naive_warp_specialized, Gpusim.Arch.kepler_k20c);
      (dme, 6, Singe.Compile.Warp_specialized, Gpusim.Arch.kepler_k20c);
      (dme, 6, Singe.Compile.Warp_specialized, Gpusim.Arch.fermi_c2070);
      (heptane, 8, Singe.Compile.Warp_specialized, Gpusim.Arch.kepler_k20c);
    ]

let test_naive_equals_overlay () =
  (* Pin the launch to one CTA: the two versions have different register
     demand (the overlay deduplicates constants), so a free launch picks
     different occupancies and the simulated round covers different
     points — the outputs would be individually correct but not
     pointwise comparable. *)
  let run_pinned mech version arch nw =
    let opts =
      { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = nw }
    in
    let c =
      Singe.Compile.compile mech Singe.Kernel_abi.Conductivity version opts
    in
    Singe.Compile.run c ~ctas:1 ~total_points:(32 * 32)
  in
  let a =
    run_pinned (dme ()) Singe.Compile.Warp_specialized Gpusim.Arch.kepler_k20c 6
  in
  let b =
    run_pinned (dme ())
      Singe.Compile.Naive_warp_specialized Gpusim.Arch.kepler_k20c 6
  in
  Array.iteri
    (fun f fa ->
      Array.iteri
        (fun p v ->
          Alcotest.(check (float 0.0)) "bit-identical" v
            b.Singe.Compile.outputs.(f).(p))
        fa)
    a.Singe.Compile.outputs

let test_partition_covers_species () =
  let n = 52 and n_warps = 7 in
  let owned = Array.make n false in
  for k = 0 to n - 1 do
    let w = Singe.Conductivity_dfg.species_warp ~n ~n_warps k in
    Alcotest.(check bool) "warp in range" true (w >= 0 && w < n_warps);
    owned.(k) <- true
  done;
  Alcotest.(check bool) "every species owned" true (Array.for_all Fun.id owned)

let test_autotune_conductivity () =
  let o =
    Singe.Autotune.tune ~points:(32 * 32) ~warp_candidates:[ 2; 3 ]
      ~cta_targets:[ 1 ] (hydrogen ()) Singe.Kernel_abi.Conductivity
      Singe.Compile.Warp_specialized Gpusim.Arch.kepler_k20c
  in
  Alcotest.(check bool) "winner verified" true
    (o.Singe.Autotune.best.Singe.Autotune.result.Singe.Compile.max_rel_err < 1e-6)

let tests =
  [
    Alcotest.test_case "fit tracks kinetic theory" `Quick test_fit_tracks_kinetic;
    Alcotest.test_case "pure-species limit" `Quick test_pure_species_limit;
    Alcotest.test_case "positive, monotone in T" `Quick test_conductivity_positive_monotone_t;
    Alcotest.test_case "end-to-end" `Quick test_end_to_end;
    Alcotest.test_case "naive == overlay" `Quick test_naive_equals_overlay;
    Alcotest.test_case "partition covers species" `Quick test_partition_covers_species;
    Alcotest.test_case "autotune" `Quick test_autotune_conductivity;
  ]
