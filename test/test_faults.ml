(* Fault containment: the static deadlock verifier must accept every
   shipped schedule and reject seeded deadlocking mutants; an injected
   hang must terminate in a structured [Sm.Simulation_fault] within the
   watchdog budget; and a poisoned autotune sweep must skip the bad
   candidate and still return the clean sweep's winner. *)

let dme = lazy (Chem.Mech_gen.dme ())
let heptane = lazy (Chem.Mech_gen.heptane ())
let arch = Gpusim.Arch.kepler_k20c

let options_for kernel =
  { (Singe.Compile.default_options arch) with
    Singe.Compile.n_warps =
      (if kernel = Singe.Kernel_abi.Chemistry then 4 else 6);
    max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
    ctas_per_sm_target = (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2)
  }

let compiled mech kernel =
  Singe.Compile.compile_cached mech kernel Singe.Compile.Warp_specialized
    (options_for kernel)

(* ---- static verifier: positive on everything we ship ---- *)

let test_verifier_accepts_shipped () =
  List.iter
    (fun (mech_name, mech) ->
      List.iter
        (fun kernel ->
          let c = compiled (Lazy.force mech) kernel in
          match Singe.Deadlock_check.check c.Singe.Compile.schedule with
          | Ok () -> ()
          | Error problems ->
              Alcotest.fail
                (Printf.sprintf "%s %s rejected: %s" mech_name
                   (Singe.Kernel_abi.kernel_name kernel)
                   (String.concat "; " problems)))
        [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion;
          Singe.Kernel_abi.Chemistry ])
    [ ("dme", dme); ("heptane", heptane) ]

(* ---- static verifier: negative on every seeded mutant ---- *)

let test_verifier_rejects_mutants () =
  let rejected = ref [] in
  List.iter
    (fun kernel ->
      let c = compiled (Lazy.force dme) kernel in
      let schedule = c.Singe.Compile.schedule in
      (match Singe.Deadlock_check.check schedule with
      | Ok () -> ()
      | Error p -> Alcotest.fail ("original rejected: " ^ String.concat "; " p));
      let muts = Singe.Deadlock_check.mutants ~seed:7 schedule in
      Alcotest.(check bool)
        (Singe.Kernel_abi.kernel_name kernel ^ " has mutants")
        true
        (List.length muts >= 5);
      List.iter
        (fun (m : Singe.Deadlock_check.mutant) ->
          match Singe.Deadlock_check.check m.Singe.Deadlock_check.schedule with
          | Error _ ->
              rejected :=
                (Singe.Kernel_abi.kernel_name kernel ^ "/"
                ^ m.Singe.Deadlock_check.label)
                :: !rejected
          | Ok () ->
              Alcotest.fail
                (Printf.sprintf "mutant %s of %s accepted"
                   m.Singe.Deadlock_check.label
                   (Singe.Kernel_abi.kernel_name kernel)))
        muts;
      (* Mutation must not corrupt the input schedule. *)
      match Singe.Deadlock_check.check schedule with
      | Ok () -> ()
      | Error p ->
          Alcotest.fail ("original damaged by mutation: " ^ String.concat "; " p))
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Chemistry ];
  let distinct = List.sort_uniq compare !rejected in
  Alcotest.(check bool)
    (Printf.sprintf "at least 10 distinct rejected mutants (got %d)"
       (List.length distinct))
    true
    (List.length distinct >= 10)

(* ---- runtime watchdog: injected hangs terminate, structurally ---- *)

(* A warp of the compiled viscosity kernel that issues at least one named
   barrier arrival (warp-specialized schedules always have one). *)
let arriving_warp (c : Singe.Compile.t) =
  let per_warp = c.Singe.Compile.schedule.Singe.Schedule.per_warp in
  let has_arrive w =
    Array.exists
      (function Singe.Schedule.A_arrive _ -> true | _ -> false)
      per_warp.(w)
  in
  let rec find w =
    if w >= Array.length per_warp then Alcotest.fail "no warp ever arrives"
    else if has_arrive w then w
    else find (w + 1)
  in
  find 0

let test_drop_arrive_contained () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let warp = arriving_warp c in
  match
    Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32)
      ~faults:[ Gpusim.Fault.Drop_arrive { warp; nth = 0 } ]
      ~max_cycles:50_000_000
  with
  | _ -> Alcotest.fail "dropped arrival did not fault"
  | exception Gpusim.Sm.Simulation_fault f ->
      Alcotest.(check bool) "warp dumps present" true
        (f.Gpusim.Sm.warp_dumps <> []);
      Alcotest.(check bool) "cycle recorded" true (f.Gpusim.Sm.fault_cycle >= 0)

let test_swap_barrier_contained () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let warp = arriving_warp c in
  let unused = c.Singe.Compile.schedule.Singe.Schedule.barriers_used in
  Alcotest.(check bool) "an unused id exists" true (unused < 16);
  match
    Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32)
      ~faults:[ Gpusim.Fault.Swap_barrier { warp; nth = 0; bar = unused } ]
      ~max_cycles:50_000_000
  with
  | _ -> Alcotest.fail "swapped barrier did not fault"
  | exception Gpusim.Sm.Simulation_fault f ->
      Alcotest.(check bool) "barrier dumps present" true
        (f.Gpusim.Sm.barrier_dumps <> [])

let test_cycle_budget_trips () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  (* A tiny budget must abort even a healthy run, with the budget kind;
     a generous budget must not perturb the simulation at all. *)
  (match
     Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32)
       ~max_cycles:100
   with
  | _ -> Alcotest.fail "budget of 100 cycles did not trip"
  | exception Gpusim.Sm.Simulation_fault f ->
      Alcotest.(check string) "kind" "cycle budget exceeded"
        (Gpusim.Sm.fault_kind_name f.Gpusim.Sm.fault_kind));
  let clean = Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32) in
  let budgeted =
    Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32)
      ~max_cycles:200_000_000
  in
  Alcotest.(check int) "budget does not perturb the simulation"
    clean.Singe.Compile.machine.Gpusim.Machine.sm_cycles
    budgeted.Singe.Compile.machine.Gpusim.Machine.sm_cycles

let test_latency_fault_is_functional () =
  (* Barrier schedules are order-independent (§4.4): a latency
     perturbation may change the cycle count but never the outputs. *)
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let r =
    Singe.Compile.run c ~total_points:(13 * 3 * 32)
      ~faults:[ Gpusim.Fault.Latency { warp = 0; mult = 7 } ]
      ~max_cycles:200_000_000
  in
  Alcotest.(check bool) "outputs still correct" true
    (r.Singe.Compile.max_rel_err <= 1e-6)

let test_unmatchable_fault_rejected () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  match
    Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32)
      ~faults:[ Gpusim.Fault.Drop_arrive { warp = 0; nth = 100000 } ]
  with
  | _ -> Alcotest.fail "unmatchable fault accepted"
  | exception Invalid_argument _ -> ()

(* ---- fault specs round-trip (the CLI's --fault surface) ---- *)

let test_fault_spec_roundtrip () =
  List.iter
    (fun f ->
      match Gpusim.Fault.of_string (Gpusim.Fault.to_string f) with
      | Ok f' ->
          Alcotest.(check string) "round-trips" (Gpusim.Fault.to_string f)
            (Gpusim.Fault.to_string f')
      | Error e -> Alcotest.fail e)
    [
      Gpusim.Fault.Drop_arrive { warp = 1; nth = 0 };
      Gpusim.Fault.Swap_barrier { warp = 2; nth = 3; bar = 5 };
      Gpusim.Fault.Extra_arrive { warp = 0; nth = 2 };
      Gpusim.Fault.Latency { warp = 4; mult = 3 };
      Gpusim.Fault.Corrupt_shfl { warp = 0; nth = 1 };
    ];
  List.iter
    (fun bad ->
      match Gpusim.Fault.of_string bad with
      | Ok _ -> Alcotest.fail ("accepted bad spec " ^ bad)
      | Error _ -> ())
    [ "nonsense"; "drop-arrive:warp=1"; "latency:warp=x,mult=2"; "zap:a=1" ]

(* Strict parsing: trailing garbage, unknown or duplicated fields, and
   non-decimal values must all be rejected — silent truncation of a fault
   spec means injecting a different fault than the one asked for. *)
let test_fault_spec_strict () =
  List.iter
    (fun bad ->
      match Gpusim.Fault.of_string bad with
      | Ok f ->
          Alcotest.fail
            (Printf.sprintf "accepted %S as %s" bad (Gpusim.Fault.to_string f))
      | Error _ -> ())
    [
      (* trailing garbage after a complete spec *)
      "drop-arrive:warp=1,nth=0,";
      "drop-arrive:warp=1,nth=0,junk";
      "latency:warp=4,mult=3 trailing";
      (* unknown and duplicate fields *)
      "drop-arrive:warp=1,nth=0,bar=2";
      "latency:warp=1,warp=2,mult=3";
      (* values that int_of_string would happily take *)
      "latency:warp=0x10,mult=2";
      "drop-arrive:warp=+1,nth=0";
      "drop-arrive:warp=-1,nth=0";
      "swap-bar:warp=1,nth=0,bar=1_0";
      (* overlong digit strings (would overflow int_of_string) *)
      "latency:warp=9999999999999999999999,mult=2";
      (* missing field *)
      "swap-bar:warp=1,bar=0";
      (* corrupt-shfl: same strictness as the barrier faults *)
      "corrupt-shfl:warp=1";
      "corrupt-shfl:warp=1,nth=0,mult=2";
      "corrupt-shfl:warp=1,nth=0x2";
      "corrupt-shfl:nth=0";
    ]

let fault_spec_qcheck_roundtrip =
  let gen =
    QCheck.(
      make
        ~print:(fun f -> Gpusim.Fault.to_string f)
        Gen.(
          let nat = int_bound 1_000_000 in
          oneof
            [
              map2
                (fun warp nth -> Gpusim.Fault.Drop_arrive { warp; nth })
                nat nat;
              map3
                (fun warp nth bar ->
                  Gpusim.Fault.Swap_barrier { warp; nth; bar })
                nat nat (int_bound 63);
              map2
                (fun warp nth -> Gpusim.Fault.Extra_arrive { warp; nth })
                nat nat;
              map2
                (fun warp mult -> Gpusim.Fault.Latency { warp; mult })
                nat (int_range 1 64);
              map2
                (fun warp nth -> Gpusim.Fault.Corrupt_shfl { warp; nth })
                nat nat;
            ]))
  in
  QCheck_alcotest.to_alcotest ~verbose:false
    (QCheck.Test.make ~count:500 ~name:"fault spec to_string/of_string" gen
       (fun f ->
         match Gpusim.Fault.of_string (Gpusim.Fault.to_string f) with
         | Ok f' -> f = f'
         | Error e -> QCheck.Test.fail_report e))

(* An out-of-range barrier id in Swap_barrier is rejected up front by
   [Machine.run] (which knows the architecture's named-barrier file size)
   rather than silently simulating a barrier that cannot exist. *)
let test_swap_barrier_out_of_range_rejected () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let warp = arriving_warp c in
  match
    Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32)
      ~faults:[ Gpusim.Fault.Swap_barrier { warp; nth = 0; bar = 99 } ]
      ~max_cycles:50_000_000
  with
  | _ -> Alcotest.fail "out-of-range barrier id accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message names the id (%s)" msg)
        true
        (String.length msg > 0)

(* ---- sweep containment: one bad candidate cannot sink the sweep ---- *)

let test_poisoned_sweep_same_winner () =
  let mech = Lazy.force dme in
  let kernel = Singe.Kernel_abi.Conductivity in
  let version = Singe.Compile.Warp_specialized in
  let warp_candidates = [ 2; 4 ] and cta_targets = [ 1; 2 ] in
  let clean =
    Singe.Autotune.tune ~warp_candidates ~cta_targets ~jobs:2 mech kernel
      version arch
  in
  let grid =
    Singe.Autotune.candidate_options ~points:32768 kernel version arch
      warp_candidates cta_targets
  in
  (* Poison a candidate that is not the clean winner, with a dropped
     arrival targeted at a warp that provably arrives in that candidate's
     own schedule. *)
  let bad_idx =
    match
      List.find_index
        (fun o -> o <> clean.Singe.Autotune.best.Singe.Autotune.options)
        grid
    with
    | Some i -> i
    | None -> Alcotest.fail "grid has a single candidate"
  in
  let bad_options = List.nth grid bad_idx in
  let bad_c = Singe.Compile.compile_cached mech kernel version bad_options in
  let warp = arriving_warp bad_c in
  let inject i =
    if i = bad_idx then [ Gpusim.Fault.Drop_arrive { warp; nth = 0 } ] else []
  in
  let poisoned =
    Singe.Autotune.tune ~warp_candidates ~cta_targets ~jobs:2
      ~max_cycles:50_000_000 ~inject mech kernel version arch
  in
  Alcotest.(check bool) "same winner options" true
    (poisoned.Singe.Autotune.best.Singe.Autotune.options
    = clean.Singe.Autotune.best.Singe.Autotune.options);
  Alcotest.(check (float 1e-9)) "same winner throughput"
    clean.Singe.Autotune.best.Singe.Autotune.throughput
    poisoned.Singe.Autotune.best.Singe.Autotune.throughput;
  Alcotest.(check int) "exactly one extra skip"
    (clean.Singe.Autotune.skipped + 1)
    poisoned.Singe.Autotune.skipped;
  Alcotest.(check int) "failure recorded"
    (List.length clean.Singe.Autotune.failures + 1)
    (List.length poisoned.Singe.Autotune.failures);
  let injected_failures =
    List.filter
      (fun (f : Singe.Autotune.failure) ->
        f.Singe.Autotune.failed_options = bad_options)
      poisoned.Singe.Autotune.failures
  in
  match injected_failures with
  | [ f ] ->
      Alcotest.(check bool) "classified as a simulation fault" true
        (f.Singe.Autotune.fault <> None)
  | _ -> Alcotest.fail "poisoned candidate's failure not captured"

let test_parallel_map_result () =
  let f x = if x mod 3 = 0 then failwith (string_of_int x) else x * 2 in
  List.iter
    (fun jobs ->
      let got =
        Sutil.Domain_pool.parallel_map_result ~jobs f (List.init 7 Fun.id)
      in
      List.iteri
        (fun i outcome ->
          match outcome with
          | Ok v -> Alcotest.(check int) "value" (i * 2) v
          | Error (Failure msg) ->
              Alcotest.(check bool) "failing index" true (i mod 3 = 0);
              Alcotest.(check string) "message" (string_of_int i) msg
          | Error e -> raise e)
        got)
    [ 1; 4 ]

(* ---- positioned parser errors ---- *)

let test_parser_positions () =
  (match Chem.Chemkin_parser.parse ~file:"in.mech" "REACTIONS\n???\nEND" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e ->
      Alcotest.(check (option string)) "file" (Some "in.mech")
        e.Chem.Srcloc.loc.Chem.Srcloc.file;
      Alcotest.(check int) "line" 2 e.Chem.Srcloc.loc.Chem.Srcloc.line;
      Alcotest.(check bool) "rendered position" true
        (String.length (Chem.Srcloc.to_string e) > String.length "in.mech:2:"
        && String.sub (Chem.Srcloc.to_string e) 0 9 = "in.mech:2"));
  (match
     Chem.Transport_parser.parse ~file:"t.tran"
       "H2  1  38.000  2.920  0.000  0.790  XO\n"
   with
  | Ok _ -> Alcotest.fail "accepted bad number"
  | Error e ->
      Alcotest.(check (option string)) "token" (Some "XO")
        e.Chem.Srcloc.loc.Chem.Srcloc.token;
      Alcotest.(check int) "line" 1 e.Chem.Srcloc.loc.Chem.Srcloc.line);
  (match Chem.Thermo_parser.parse ~file:"x.therm" "JUSTONELINE\n" with
  | Ok _ -> Alcotest.fail "accepted incomplete entry"
  | Error e ->
      Alcotest.(check (option string)) "file" (Some "x.therm")
        e.Chem.Srcloc.loc.Chem.Srcloc.file);
  (* An unreadable input file is a positioned error, not an exception. *)
  match
    Chem.Mech_io.load_files ~chemkin_path:"/nonexistent/x.mech"
      ~thermo_path:"/nonexistent/x.therm" ~transport_path:"/nonexistent/x.tran"
      ~name:"ghost" ()
  with
  | Ok _ -> Alcotest.fail "loaded a ghost mechanism"
  | Error _ -> ()

let test_diagnostics_carry_loc () =
  match Chem.Chemkin_parser.parse ~file:"in.mech" "REACTIONS\n???\nEND" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e ->
      let d = Singe.Diagnostics.of_srcloc ~pass:"parse" e in
      Alcotest.(check (option string)) "loc" (Some "in.mech:2")
        d.Singe.Diagnostics.loc;
      let rendered = Singe.Diagnostics.to_string d in
      Alcotest.(check bool)
        (Printf.sprintf "renders position (%s)" rendered)
        true
        (String.sub rendered 0 23 = "error[parse]: in.mech:2")

(* ---- corrupt-shfl: silent data-movement corruption across the
   synthesized-exchange shuffles — the run completes (no deadlock, the
   lane selector is not a barrier), but the functional output check
   catches the wrong data movement. ---- *)

let test_corrupt_shfl_corrupts_outputs () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  let r =
    Singe.Compile.run c ~total_points:(13 * 3 * 32)
      ~faults:[ Gpusim.Fault.Corrupt_shfl { warp = 0; nth = 0 } ]
      ~max_cycles:50_000_000
  in
  Alcotest.(check bool)
    "outputs corrupted" true
    (r.Singe.Compile.max_rel_err > 1e-6);
  let clean = Singe.Compile.run c ~total_points:(13 * 3 * 32) ~max_cycles:50_000_000 in
  Alcotest.(check bool)
    "clean run stays clean" true
    (clean.Singe.Compile.max_rel_err < 1e-9)

let test_corrupt_shfl_unmatchable_rejected () =
  let c = compiled (Lazy.force dme) Singe.Kernel_abi.Viscosity in
  match
    Singe.Compile.run ~check:false c ~total_points:(13 * 3 * 32)
      ~faults:[ Gpusim.Fault.Corrupt_shfl { warp = 0; nth = 100_000 } ]
      ~max_cycles:50_000_000
  with
  | _ -> Alcotest.fail "unmatchable corrupt-shfl accepted"
  | exception Invalid_argument _ -> ()

let tests =
  [
    Alcotest.test_case "verifier accepts shipped schedules" `Slow
      test_verifier_accepts_shipped;
    Alcotest.test_case "verifier rejects seeded mutants" `Quick
      test_verifier_rejects_mutants;
    Alcotest.test_case "dropped arrival contained" `Quick
      test_drop_arrive_contained;
    Alcotest.test_case "swapped barrier contained" `Quick
      test_swap_barrier_contained;
    Alcotest.test_case "cycle budget trips and is exact" `Quick
      test_cycle_budget_trips;
    Alcotest.test_case "latency fault stays functional" `Quick
      test_latency_fault_is_functional;
    Alcotest.test_case "unmatchable fault rejected" `Quick
      test_unmatchable_fault_rejected;
    Alcotest.test_case "fault specs round-trip" `Quick test_fault_spec_roundtrip;
    Alcotest.test_case "fault specs parsed strictly" `Quick
      test_fault_spec_strict;
    fault_spec_qcheck_roundtrip;
    Alcotest.test_case "corrupt-shfl corrupts outputs" `Quick
      test_corrupt_shfl_corrupts_outputs;
    Alcotest.test_case "unmatchable corrupt-shfl rejected" `Quick
      test_corrupt_shfl_unmatchable_rejected;
    Alcotest.test_case "out-of-range barrier id rejected" `Quick
      test_swap_barrier_out_of_range_rejected;
    Alcotest.test_case "poisoned sweep keeps winner" `Slow
      test_poisoned_sweep_same_winner;
    Alcotest.test_case "parallel_map_result order" `Quick
      test_parallel_map_result;
    Alcotest.test_case "parser errors are positioned" `Quick
      test_parser_positions;
    Alcotest.test_case "diagnostics carry source locations" `Quick
      test_diagnostics_carry_loc;
  ]
