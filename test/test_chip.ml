(* The Chip layer: greedy CTA dispatch, the shared DRAM arbiter, per-SM
   clock skew, the pin-run batch extrapolation, and the structured
   occupancy rejections that replaced [Machine.occupancy]'s [failwith]. *)

let dme = Chem.Mech_gen.dme
let arch = Gpusim.Arch.kepler_k20c

let compile ?(kernel = Singe.Kernel_abi.Viscosity) () =
  Singe.Compile.compile_cached (dme ()) kernel
    Singe.Compile.Warp_specialized
    (Singe.Compile.default_options arch)

let program c = c.Singe.Compile.lowered.Singe.Lower.program

(* Synthetic round costs for the pure scheduler tests: every full round
   costs the same, the tail is proportionally cheaper. *)
let round_cycles k = 1000.0 *. float_of_int k /. 4.0
let no_bytes _ = 0.0

let sched ?(n_sms = 4) ?(skew = 0.0) ?(resident = 4) ?(ctas = 32)
    ?(round_dram_bytes = no_bytes) ?(dram_peak_bpc = 100.0)
    ?(spill_in_l2 = false) () =
  Gpusim.Chip.schedule ~n_sms ~skew ~resident ~ctas ~round_cycles
    ~round_dram_bytes ~dram_peak_bpc ~spill_in_l2

let total_ctas (s : Gpusim.Chip.schedule) =
  Array.fold_left
    (fun acc (st : Gpusim.Chip.sm_stat) -> acc + st.Gpusim.Chip.sm_ctas)
    0 s.Gpusim.Chip.sms

(* ---- pure scheduler: dispatch, conservation, determinism, skew ---- *)

let test_dispatch_conservation () =
  (* 32 CTAs at 4 resident = 8 rounds over 4 SMs: 2 rounds each, no
     tail, perfectly balanced. *)
  let s = sched () in
  Alcotest.(check int) "every CTA dispatched" 32 (total_ctas s);
  Alcotest.(check int) "rounds" 8 s.Gpusim.Chip.rounds_total;
  Alcotest.(check int) "no tail" 0 s.Gpusim.Chip.tail_ctas;
  Alcotest.(check (float 1e-9)) "balanced: zero imbalance" 0.0
    (Gpusim.Chip.dispatch_imbalance s);
  Alcotest.(check (float 1e-9)) "balanced: zero spread" 0.0
    (Gpusim.Chip.cycle_spread s);
  (* Two rounds of 1000 cycles back to back on every SM. *)
  Alcotest.(check (float 1e-6)) "makespan = 2 rounds" 2000.0
    s.Gpusim.Chip.makespan_cycles;
  (* A partial wave: 33 CTAs = 8 full rounds + a 1-CTA tail round. The
     tail is genuinely scheduled (9 rounds), not averaged away. *)
  let s = sched ~ctas:33 () in
  Alcotest.(check int) "tail CTAs" 1 s.Gpusim.Chip.tail_ctas;
  Alcotest.(check int) "rounds with tail" 9 s.Gpusim.Chip.rounds_total;
  Alcotest.(check int) "every CTA dispatched (tail)" 33 (total_ctas s);
  Alcotest.(check bool) "tail round extends the makespan" true
    (s.Gpusim.Chip.makespan_cycles > 2000.0);
  (* The old fractional-waves model would have charged
     33/16 waves x 1000 = 2062.5 cycles; the real dispatcher pays a
     whole extra (cheap) tail round on one SM. *)
  Alcotest.(check bool) "dispatcher >= fractional waves" true
    (s.Gpusim.Chip.makespan_cycles >= 33.0 /. 16.0 *. 1000.0)

let test_scheduler_determinism () =
  let a = sched ~ctas:37 ~skew:0.15 () in
  let b = sched ~ctas:37 ~skew:0.15 () in
  Alcotest.(check bool) "schedules identical" true (a = b)

let test_skew_imbalance () =
  let flat = sched () in
  let skewed = sched ~skew:0.2 () in
  Alcotest.(check bool) "skew stretches the makespan" true
    (skewed.Gpusim.Chip.makespan_cycles > flat.Gpusim.Chip.makespan_cycles);
  Alcotest.(check bool) "skew spreads SM finish times" true
    (Gpusim.Chip.cycle_spread skewed > 0.0);
  (* The slowest SM runs at factor 1 - skew/2; the makespan cannot
     exceed all rounds landing there. *)
  Alcotest.(check bool) "makespan below worst-case bound" true
    (skewed.Gpusim.Chip.makespan_cycles <= 8.0 *. 1000.0 /. 0.9 +. 1e-6);
  (* clock_factor is a linear ramp centred on 1. *)
  Alcotest.(check (float 1e-9)) "slowest factor" 0.9
    (Gpusim.Chip.clock_factor ~n_sms:4 ~skew:0.2 0);
  Alcotest.(check (float 1e-9)) "fastest factor" 1.1
    (Gpusim.Chip.clock_factor ~n_sms:4 ~skew:0.2 3);
  Alcotest.(check (float 1e-9)) "single SM never skews" 1.0
    (Gpusim.Chip.clock_factor ~n_sms:1 ~skew:0.2 0)

(* ---- the arbiter: bandwidth-bound scaling is sub-linear ---- *)

let test_bandwidth_throttle () =
  (* Each full round wants 60 bytes/cycle of a 100 bytes/cycle chip
     budget: one SM streams unthrottled, four SMs demand 240 and are
     stretched by 2.4x. *)
  let bytes k = 60.0 *. round_cycles k in
  let t1 =
    sched ~n_sms:1 ~round_dram_bytes:bytes ()
  in
  let t4 = sched ~n_sms:4 ~round_dram_bytes:bytes () in
  Alcotest.(check (float 1e-6)) "one SM unthrottled" 1.0
    t1.Gpusim.Chip.contention.Gpusim.Chip.throttle_max;
  Alcotest.(check (float 1e-6)) "four SMs throttled 2.4x" 2.4
    t4.Gpusim.Chip.contention.Gpusim.Chip.throttle_max;
  let speedup =
    t1.Gpusim.Chip.makespan_cycles /. t4.Gpusim.Chip.makespan_cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth-bound speedup %.2f sub-linear" speedup)
    true
    (speedup < 4.0 -. 1e-6);
  (* Saturated: the makespan is exactly total bytes over peak
     bandwidth (8 rounds x 60 B/cyc x 1000 cyc / 100 B/cyc). *)
  Alcotest.(check (float 1e-3)) "makespan = total bytes / peak" 4800.0
    t4.Gpusim.Chip.makespan_cycles;
  Alcotest.(check (float 1e-6)) "DRAM fully utilized" 1.0
    t4.Gpusim.Chip.contention.Gpusim.Chip.dram_util;
  (* Spill-in-L2 exemption: the same schedule with traffic declared
     L2-resident must not throttle (the bytes never reach DRAM). *)
  let exempt =
    sched ~n_sms:4 ~round_dram_bytes:no_bytes ~spill_in_l2:true ()
  in
  Alcotest.(check (float 1e-6)) "L2-served traffic unthrottled" 1.0
    exempt.Gpusim.Chip.contention.Gpusim.Chip.throttle_max

(* ---- whole-launch runs: bit-identity and extrapolation ---- *)

let test_single_sm_identity () =
  (* The per-SM core must be untouched by the chip layer: the same
     launch at 1 and 13 SMs simulates the identical SM-round (cycles,
     counters, outputs); only the chip-level aggregation differs. *)
  let c = compile () in
  let r1 = Singe.Compile.run c ~total_points:8192 ~n_sms:1 in
  let r13 = Singe.Compile.run c ~total_points:8192 ~n_sms:13 in
  let m1 = r1.Singe.Compile.machine and m13 = r13.Singe.Compile.machine in
  Alcotest.(check int) "sm_cycles identical" m1.Gpusim.Machine.sm_cycles
    m13.Gpusim.Machine.sm_cycles;
  Alcotest.(check bool) "sim counters identical" true
    (m1.Gpusim.Machine.sim.Gpusim.Sm.counters
    = m13.Gpusim.Machine.sim.Gpusim.Sm.counters);
  Alcotest.(check (float 1e-12)) "numerical outputs identical"
    r1.Singe.Compile.max_rel_err r13.Singe.Compile.max_rel_err;
  (* And the single-SM schedule is rounds run back to back: makespan =
     rounds x the full-round cycles (no tail here: 256 CTAs divide). *)
  let ch = m1.Gpusim.Machine.chip in
  Alcotest.(check int) "one SM" 1 ch.Gpusim.Chip.n_sms;
  Alcotest.(check int) "no tail" 0 ch.Gpusim.Chip.tail_ctas;
  Alcotest.(check (float 1e-6)) "serial makespan"
    (float_of_int
       (ch.Gpusim.Chip.rounds_total * m1.Gpusim.Machine.sm_cycles))
    ch.Gpusim.Chip.makespan_cycles;
  (* Determinism of the whole path. *)
  let r1' = Singe.Compile.run c ~total_points:8192 ~n_sms:1 in
  Alcotest.(check bool) "rerun bit-identical" true
    (r1.Singe.Compile.machine.Gpusim.Machine.chip
    = r1'.Singe.Compile.machine.Gpusim.Machine.chip)

let test_extrapolation_exact () =
  (* Pin-run extrapolation: for a launch streaming more batches than
     [max_sim_batches], the steady-state pin pair must reproduce the
     full simulation EXACTLY — diffusion's per-batch cost settles
     within the simulated window, so the extrapolation has no
     residual. *)
  let c = compile ~kernel:Singe.Kernel_abi.Diffusion () in
  let p = program c in
  let occ = Gpusim.Machine.occupancy arch p in
  let resident = occ.Gpusim.Machine.resident_ctas in
  let batches = 11 in
  let l =
    {
      Gpusim.Machine.program = p;
      total_points = resident * 32 * batches;
      ctas = resident;
    }
  in
  (* One round (ctas = resident), one SM: makespan IS the round cost. *)
  let extrapolated = Gpusim.Machine.run ~n_sms:1 arch l in
  let full = Gpusim.Machine.run ~max_sim_batches:batches ~n_sms:1 arch l in
  Alcotest.(check bool) "launch really extrapolates" true
    (extrapolated.Gpusim.Machine.sim.Gpusim.Sm.cycles
    < full.Gpusim.Machine.sim.Gpusim.Sm.cycles);
  Alcotest.(check (float 0.0)) "prologue + body x batches exact"
    (float_of_int full.Gpusim.Machine.sim.Gpusim.Sm.cycles)
    extrapolated.Gpusim.Machine.chip.Gpusim.Chip.makespan_cycles

let test_tail_wave_regression () =
  (* A grid of 4 full waves + 1 CTA on 4 SMs. The old model charged a
     fractional wave (ctas / (resident x n_sms)); the dispatcher pays a
     real tail round, so the new makespan is never below the old
     estimate (and the tail round is genuinely simulated). *)
  let c = compile () in
  let p = program c in
  let occ = Gpusim.Machine.occupancy arch p in
  let resident = occ.Gpusim.Machine.resident_ctas in
  let n_sms = 4 in
  let ctas = (resident * n_sms) + 1 in
  let batches = 2 in
  let l =
    {
      Gpusim.Machine.program = p;
      total_points = ctas * 32 * batches;
      ctas;
    }
  in
  let r = Gpusim.Machine.run ~n_sms arch l in
  let ch = r.Gpusim.Machine.chip in
  Alcotest.(check int) "tail of one CTA" 1 ch.Gpusim.Chip.tail_ctas;
  Alcotest.(check bool) "tail round simulated" true
    (r.Gpusim.Machine.tail_sim <> None);
  let old_waves =
    float_of_int ctas /. float_of_int (resident * n_sms)
  in
  let old_total = float_of_int r.Gpusim.Machine.sm_cycles *. old_waves in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.0f >= old fractional-waves %.0f"
       ch.Gpusim.Chip.makespan_cycles old_total)
    true
    (ch.Gpusim.Chip.makespan_cycles >= old_total -. 1e-6);
  (* Sanity ceiling: the tail can cost at most one extra full round. *)
  Alcotest.(check bool) "makespan <= 2 full rounds + tail" true
    (ch.Gpusim.Chip.makespan_cycles
    <= 2.0 *. float_of_int r.Gpusim.Machine.sm_cycles +. 1e-6)

(* ---- structured occupancy rejections (the old failwith paths) ---- *)

let test_occupancy_rejections () =
  let c = compile () in
  let p = program c in
  (* Per-thread register demand above the hardware maximum. *)
  let fat = { p with Gpusim.Isa.n_fregs = 400 } in
  (match Gpusim.Machine.occupancy arch fat with
  | _ -> Alcotest.fail "expected Occupancy_rejected (registers)"
  | exception Gpusim.Chip.Occupancy_rejected r -> (
      match r.Gpusim.Chip.kind with
      | Gpusim.Chip.Regs_per_thread { regs32; limit } ->
          Alcotest.(check bool) "demand above limit" true (regs32 > limit);
          Alcotest.(check bool) "message names the program" true
            (String.length (Gpusim.Chip.reject_message r) > 0)
      | Gpusim.Chip.Does_not_fit _ ->
          Alcotest.fail "wrong kind: expected Regs_per_thread"));
  (* Zero CTAs fit: shared memory exhausted. *)
  let hog =
    { p with Gpusim.Isa.shared_doubles = arch.Gpusim.Arch.shared_bytes_per_sm }
  in
  (match Gpusim.Machine.occupancy arch hog with
  | _ -> Alcotest.fail "expected Occupancy_rejected (shared)"
  | exception Gpusim.Chip.Occupancy_rejected r -> (
      match r.Gpusim.Chip.kind with
      | Gpusim.Chip.Does_not_fit { limited_by } ->
          Alcotest.(check string) "limited by shared memory" "shared memory"
            limited_by
      | Gpusim.Chip.Regs_per_thread _ ->
          Alcotest.fail "wrong kind: expected Does_not_fit"));
  (* The facade re-exports are the same exception. *)
  Alcotest.(check bool) "Machine.occupancy = Chip.occupancy" true
    (Gpusim.Machine.occupancy arch p = Gpusim.Chip.occupancy arch p)

let tests =
  [
    Alcotest.test_case "dispatch conservation + tail" `Quick
      test_dispatch_conservation;
    Alcotest.test_case "scheduler determinism" `Quick
      test_scheduler_determinism;
    Alcotest.test_case "clock skew" `Quick test_skew_imbalance;
    Alcotest.test_case "bandwidth throttle sub-linear" `Quick
      test_bandwidth_throttle;
    Alcotest.test_case "n_sms=1 bit-identity" `Quick test_single_sm_identity;
    Alcotest.test_case "pin-run extrapolation exact" `Quick
      test_extrapolation_exact;
    Alcotest.test_case "tail-wave vs fractional waves" `Quick
      test_tail_wave_regression;
    Alcotest.test_case "occupancy rejection kinds" `Quick
      test_occupancy_rejections;
  ]
