(* Stencil-pipeline frontend tests (ISSUE 10): the [Stencil_dfg]
   lowering against the [Stencil_pipe] host reference — bit-exact, since
   both sides evaluate the same [Sexpr] trees and lowering never
   reassociates — for every stage combination, both tiling modes and
   degenerate warp counts; full-simulation oracle runs on both
   architectures; the deadlock-mutant gate on stencil schedules; the
   partition search never losing to the hand band mapping (and staying
   deterministic under [jobs]); and regressions for the chemistry-only
   assumptions this frontend flushed out (positioned diagnostics where
   [assert]/[failwith]/hardcoded chem groups used to live). *)

module S = Singe.Sexpr
module SP = Singe.Stencil_pipe
module SD = Singe.Stencil_dfg

let hydrogen = Chem.Mech_gen.hydrogen
let kepler = Gpusim.Arch.kepler_k20c
let fermi = Gpusim.Arch.fermi_c2070

let options_for ?(overlap = true) arch =
  {
    (Singe.Compile.default_options arch) with
    Singe.Compile.n_warps = 4;
    stencil_overlap = overlap;
  }

(* ---- the stage shapes the bundled pipelines are built from, redeclared
   here so tests can chain them in arbitrary orders ---- *)

let blur =
  {
    SP.stage_name = "t-blur";
    radius = 1;
    uses_source = false;
    expr =
      S.(fma (C 0.25) (In 0) (fma (C 0.5) (In 1) (mul (C 0.25) (In 2))));
  }

and gradient =
  {
    SP.stage_name = "t-grad";
    radius = 1;
    uses_source = false;
    expr = S.(let_ (sub (In 2) (In 0)) (mul (Var 0) (Var 0)));
  }

and threshold =
  {
    SP.stage_name = "t-thresh";
    radius = 0;
    uses_source = false;
    expr = S.(max_ (sub (In 0) (C 0.125)) (Imm 0.0));
  }

and sharpen =
  {
    SP.stage_name = "t-sharp";
    radius = 1;
    uses_source = true;
    expr = S.(fma (C 1.5) (sub (In 3) (In 1)) (In 3));
  }

let pipe_of stages =
  {
    SP.pipe_name =
      String.concat "+" (List.map (fun s -> s.SP.stage_name) stages);
    width = SP.width;
    stages;
  }

let random_source st =
  Array.init SP.width (fun _ -> Random.State.float st 4.0 -. 2.0)

let check_bitexact ~what p dfg source =
  let want = SP.reference p ~source in
  let got = Singe.Dfg_interp.eval_stencil dfg ~source in
  Array.iteri
    (fun c w ->
      let g =
        match Hashtbl.find_opt got c with
        | Some v -> v
        | None -> Alcotest.failf "%s: column %d missing from interp" what c
      in
      if Int64.bits_of_float g <> Int64.bits_of_float w then
        Alcotest.failf "%s: column %d: got %.17g want %.17g" what c g w)
    want

(* Every ordered stage combination up to length 2, plus longer chains and
   the bundled pipelines, across degenerate and ordinary warp counts and
   both tiling modes — all bit-exact against the host reference. *)
let test_oracle_equivalence () =
  let singles = [ blur; gradient; threshold; sharpen ] in
  let pairs =
    List.concat_map (fun a -> List.map (fun b -> [ a; b ]) singles) singles
  in
  let chains =
    List.map (fun s -> [ s ]) singles
    @ pairs
    @ [
        [ blur; gradient; threshold ];
        [ threshold; sharpen; gradient ];
        [ blur; gradient; sharpen; threshold ];
      ]
  in
  let pipes =
    List.map pipe_of chains
    @ List.map (fun id -> SP.get id) SP.all_ids
  in
  let st = Random.State.make [| 0x57e9c11 |] in
  List.iter
    (fun p ->
      List.iter
        (fun n_warps ->
          List.iter
            (fun overlap ->
              let what =
                Printf.sprintf "%s w%d %s" p.SP.pipe_name n_warps
                  (if overlap then "overlap" else "exchange")
              in
              let dfg = SD.build p ~n_warps ~overlap in
              (match Singe.Dfg.validate dfg with
              | Ok () -> ()
              | Error l ->
                  Alcotest.failf "%s: invalid dfg: %s" what
                    (String.concat "; " l));
              check_bitexact ~what p dfg (random_source st);
              check_bitexact ~what p dfg (random_source st))
            [ true; false ])
        [ 1; 3; 4; 8 ])
    pipes

(* The device fill and the reference start from the same [source_value],
   so the full simulation must also be bit-exact (max_rel_err = 0). *)
let test_simulation_bitexact () =
  List.iter
    (fun id ->
      List.iter
        (fun arch ->
          List.iter
            (fun overlap ->
              let c =
                Singe.Compile.compile (hydrogen ())
                  (Singe.Kernel_abi.Stencil id)
                  Singe.Compile.Warp_specialized
                  (options_for ~overlap arch)
              in
              let r = Singe.Compile.run c ~total_points:2048 in
              Alcotest.(check (float 0.0))
                (Printf.sprintf "%s %s %s bit-exact" (SP.id_name id)
                   arch.Gpusim.Arch.name
                   (if overlap then "overlap" else "exchange"))
                0.0 r.Singe.Compile.max_rel_err)
            [ true; false ])
        [ kepler; fermi ])
    SP.all_ids

let test_baseline_bitexact () =
  let c =
    Singe.Compile.compile (hydrogen ())
      (Singe.Kernel_abi.Stencil SP.Edge3) Singe.Compile.Baseline
      (options_for kepler)
  in
  let r = Singe.Compile.run c ~total_points:8192 in
  Alcotest.(check (float 0.0)) "baseline bit-exact" 0.0
    r.Singe.Compile.max_rel_err

(* ---- deadlock gate: stencil schedules pass, seeded mutants do not ---- *)

let test_deadlock_mutants () =
  List.iter
    (fun id ->
      let c =
        Singe.Compile.compile (hydrogen ())
          (Singe.Kernel_abi.Stencil id) Singe.Compile.Warp_specialized
          (options_for kepler)
      in
      let schedule = c.Singe.Compile.schedule in
      (match Singe.Deadlock_check.check schedule with
      | Ok () -> ()
      | Error p ->
          Alcotest.failf "%s original rejected: %s" (SP.id_name id)
            (String.concat "; " p));
      let muts = Singe.Deadlock_check.mutants ~seed:42 schedule in
      Alcotest.(check bool)
        (SP.id_name id ^ " has mutants")
        true
        (List.length muts >= 5);
      List.iter
        (fun (m : Singe.Deadlock_check.mutant) ->
          match Singe.Deadlock_check.check m.Singe.Deadlock_check.schedule with
          | Error _ -> ()
          | Ok () ->
              Alcotest.failf "mutant %s of %s accepted"
                m.Singe.Deadlock_check.label (SP.id_name id))
        muts;
      match Singe.Deadlock_check.check schedule with
      | Ok () -> ()
      | Error p ->
          Alcotest.failf "%s damaged by mutation: %s" (SP.id_name id)
            (String.concat "; " p))
    SP.all_ids

(* ---- partition search: auto never loses to hand, identical under jobs ---- *)

let search_outcome ~jobs id =
  match
    Singe.Partition_search.search ~points:2048 ~jobs (hydrogen ())
      (Singe.Kernel_abi.Stencil id) Singe.Compile.Warp_specialized
      ~base:(options_for kepler) ()
  with
  | Ok o -> o
  | Error d ->
      Alcotest.failf "search %s failed: %s" (SP.id_name id)
        (Singe.Diagnostics.to_string d)

let test_search_never_loses () =
  List.iter
    (fun id ->
      let o = search_outcome ~jobs:1 id in
      Alcotest.(check bool)
        (SP.id_name id ^ " simulation-confirmed")
        true o.Singe.Partition_search.confirmed;
      Alcotest.(check bool)
        (Printf.sprintf "%s winner %.0f <= hand %.0f" (SP.id_name id)
           o.Singe.Partition_search.winner_cycles
           o.Singe.Partition_search.hand_cycles)
        true
        (o.Singe.Partition_search.winner_cycles
        <= o.Singe.Partition_search.hand_cycles))
    SP.all_ids

let test_search_jobs_deterministic () =
  let a = search_outcome ~jobs:1 SP.Edge3 in
  let b = search_outcome ~jobs:4 SP.Edge3 in
  let module P = Singe.Partition_search in
  Alcotest.(check bool) "same winner options" true (a.P.winner = b.P.winner);
  Alcotest.(check bool) "same winner spec" true
    (a.P.winner_spec = b.P.winner_spec);
  Alcotest.(check (float 0.0)) "same winner cycles" a.P.winner_cycles
    b.P.winner_cycles;
  Alcotest.(check (float 0.0)) "same hand cycles" a.P.hand_cycles
    b.P.hand_cycles;
  Alcotest.(check int) "same searched" a.P.searched b.P.searched;
  Alcotest.(check int) "same gated" a.P.gated b.P.gated;
  Alcotest.(check int) "same simulated" a.P.simulated b.P.simulated;
  Alcotest.(check int) "same rejections"
    (List.length a.P.rejections)
    (List.length b.P.rejections)

(* ---- regressions for the chemistry-only assumptions this PR fixed ---- *)

(* Dfg.topo_order used to [failwith "cycle"] with no position; it must now
   raise a [dfg-build] diagnostic naming the stuck operations, and
   [Dfg.validate] must fold it into its report instead of aborting. *)
let test_cycle_diagnostic () =
  let cyclic =
    {
      Singe.Dfg.graph_name = "cyclic";
      ops =
        [|
          {
            Singe.Dfg.id = 0;
            name = "a";
            kind = Singe.Dfg.Compute (Singe.Sexpr.In 0);
            inputs = [| 1 |];
            output = Some 0;
            hint = None;
            shared_hint = false;
            align = None;
          };
          {
            Singe.Dfg.id = 1;
            name = "b";
            kind = Singe.Dfg.Compute (Singe.Sexpr.In 0);
            inputs = [| 0 |];
            output = Some 1;
            hint = None;
            shared_hint = false;
            align = None;
          };
        |];
      values =
        [|
          { Singe.Dfg.vid = 0; vname = "a"; producer = 0; consumers = [ 1 ] };
          { Singe.Dfg.vid = 1; vname = "b"; producer = 1; consumers = [ 0 ] };
        |];
    }
  in
  (match Singe.Dfg.topo_order cyclic with
  | exception Singe.Diagnostics.Fail d ->
      Alcotest.(check (option string))
        "cycle diagnostic pass" (Some "dfg-build") d.Singe.Diagnostics.pass
  | _ -> Alcotest.fail "cycle accepted by topo_order");
  match Singe.Dfg.validate cyclic with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cycle accepted by validate"

(* The interpreter used to hardcode the chemistry input groups and
   [invalid_arg] on anything else; feeding a chemistry graph to the
   stencil environment must now be a positioned diagnostic. *)
let test_interp_group_diagnostic () =
  let dfg = Singe.Viscosity_dfg.build (hydrogen ()) ~n_warps:4 in
  match Singe.Dfg_interp.eval_stencil dfg ~source:(Array.make SP.width 1.0) with
  | exception Singe.Diagnostics.Fail _ -> ()
  | _ -> Alcotest.fail "chem graph accepted by stencil interp"

(* [Compile.default_ctas] used to [assert] the baseline launch divided
   evenly; a non-divisible point count must be a [launch] diagnostic. *)
let test_baseline_launch_diagnostic () =
  let c =
    Singe.Compile.compile (hydrogen ())
      (Singe.Kernel_abi.Stencil SP.Edge3) Singe.Compile.Baseline
      (options_for kepler)
  in
  match Singe.Compile.default_ctas c ~total_points:1000 with
  | exception Singe.Diagnostics.Fail d ->
      Alcotest.(check (option string))
        "launch diagnostic pass" (Some "launch") d.Singe.Diagnostics.pass
  | n -> Alcotest.failf "non-divisible baseline launch accepted (%d ctas)" n

let test_degenerate_warps_diagnostic () =
  match SD.build (SP.get SP.Edge3) ~n_warps:0 ~overlap:true with
  | exception Singe.Diagnostics.Fail _ -> ()
  | _ -> Alcotest.fail "n_warps=0 accepted"

(* The perf model's floor must stay a true floor on stencil graphs (the
   cross-CTA contention recalibration must not push it above the
   simulator), and the prediction itself must stay in range. *)
let test_model_floor_holds () =
  List.iter
    (fun id ->
      let c =
        Singe.Compile.compile (hydrogen ())
          (Singe.Kernel_abi.Stencil id) Singe.Compile.Warp_specialized
          (options_for kepler)
      in
      let points = 32768 in
      let p = Singe.Perf_model.predict c ~total_points:points in
      let r = Singe.Compile.run c ~total_points:points in
      let measured =
        float_of_int r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s floor %.0f <= measured %.0f" (SP.id_name id)
           p.Singe.Perf_model.floor_cycles measured)
        true
        (p.Singe.Perf_model.floor_cycles <= measured);
      let err =
        Singe.Perf_model.rel_err ~predicted:p.Singe.Perf_model.cycles ~measured
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s model error %.1f%% within 60%%" (SP.id_name id)
           (100.0 *. err))
        true (err <= 0.6))
    SP.all_ids

let tests =
  [
    Alcotest.test_case "oracle equivalence, all stage combinations" `Quick
      test_oracle_equivalence;
    Alcotest.test_case "simulation bit-exact on both arches" `Slow
      test_simulation_bitexact;
    Alcotest.test_case "baseline bit-exact" `Quick test_baseline_bitexact;
    Alcotest.test_case "deadlock mutants rejected" `Quick
      test_deadlock_mutants;
    Alcotest.test_case "partition auto never loses" `Slow
      test_search_never_loses;
    Alcotest.test_case "search deterministic under jobs" `Slow
      test_search_jobs_deterministic;
    Alcotest.test_case "dfg cycle is a positioned diagnostic" `Quick
      test_cycle_diagnostic;
    Alcotest.test_case "interp group mismatch is a diagnostic" `Quick
      test_interp_group_diagnostic;
    Alcotest.test_case "baseline launch mismatch is a diagnostic" `Quick
      test_baseline_launch_diagnostic;
    Alcotest.test_case "degenerate warp count is a diagnostic" `Quick
      test_degenerate_warps_diagnostic;
    Alcotest.test_case "model floor holds on stencil" `Slow
      test_model_floor_holds;
  ]
