(* The analytic performance model (Perf_model), the model-guided autotune
   pruning, and the diagnostics that replaced partial functions in
   lowering, expression evaluation and CHEMKIN parsing. *)

let hydrogen = Chem.Mech_gen.hydrogen
let dme = Chem.Mech_gen.dme
let arch = Gpusim.Arch.kepler_k20c

let compile mech kernel version =
  let o = Singe.Compile.default_options arch in
  let o =
    if kernel = Singe.Kernel_abi.Chemistry then
      { o with Singe.Compile.max_barriers = 16; ctas_per_sm_target = 1 }
    else o
  in
  Singe.Compile.compile_cached mech kernel version o

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let version_name = function
  | Singe.Compile.Baseline -> "base"
  | _ -> "ws"

let config_name mech kernel version =
  Printf.sprintf "%s %s %s" mech.Chem.Mechanism.name
    (Singe.Kernel_abi.kernel_name kernel)
    (version_name version)

(* Property: on every mechanism x kernel x version the simulator never
   beats either static bound — the Roofline binding ceiling (throughput)
   or Perf_model's provable floor (cycles). *)
let test_floor_and_roofline () =
  let mechs = [ hydrogen (); dme () ] in
  let kernels =
    [
      Singe.Kernel_abi.Viscosity;
      Singe.Kernel_abi.Diffusion;
      Singe.Kernel_abi.Chemistry;
    ]
  in
  let versions = [ Singe.Compile.Warp_specialized; Singe.Compile.Baseline ] in
  List.iter
    (fun mech ->
      List.iter
        (fun kernel ->
          List.iter
            (fun version ->
              let name = config_name mech kernel version in
              let c = compile mech kernel version in
              let points = 2048 in
              let pred = Singe.Perf_model.predict c ~total_points:points in
              let r = Singe.Compile.run c ~total_points:points in
              let measured =
                float_of_int r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: simulated %.0f >= model floor %.0f" name
                   measured pred.Singe.Perf_model.floor_cycles)
                true
                (measured >= pred.Singe.Perf_model.floor_cycles /. 1.02);
              let p = c.Singe.Compile.lowered.Singe.Lower.program in
              let roof = Gpusim.Roofline.analyze arch p in
              let achieved =
                r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
              in
              let ceiling =
                roof.Gpusim.Roofline.binding.Gpusim.Roofline.points_per_sec
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: achieved %.3e <= roofline %.3e" name
                   achieved ceiling)
                true
                (achieved <= ceiling *. 1.02))
            versions)
        kernels)
    mechs

(* Regression guard on the model's headline accuracy claim: predicted SM
   cycles stay within 35% of the simulator on representative configs at
   the calibration problem size. *)
let test_model_accuracy () =
  let configs =
    [
      (dme (), Singe.Kernel_abi.Viscosity, Singe.Compile.Warp_specialized);
      (dme (), Singe.Kernel_abi.Viscosity, Singe.Compile.Baseline);
      (dme (), Singe.Kernel_abi.Chemistry, Singe.Compile.Warp_specialized);
      (hydrogen (), Singe.Kernel_abi.Diffusion, Singe.Compile.Warp_specialized);
    ]
  in
  List.iter
    (fun (mech, kernel, version) ->
      let c = compile mech kernel version in
      let points = 32768 in
      let pred = Singe.Perf_model.predict c ~total_points:points in
      let r = Singe.Compile.run c ~total_points:points in
      let err =
        Singe.Perf_model.rel_err ~predicted:pred.Singe.Perf_model.cycles
          ~measured:
            (float_of_int r.Singe.Compile.machine.Gpusim.Machine.sm_cycles)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: model off by %.1f%% (limit 35%%)"
           (config_name mech kernel version)
           (100.0 *. err))
        true (err <= 0.35))
    configs

(* The model-pruned sweep must find the same winner as the exhaustive
   sweep once its keep-window covers the winner's model rank. *)
let test_pruned_matches_exhaustive () =
  let mech = hydrogen () in
  let ex =
    Singe.Autotune.tune ~jobs:2 mech Singe.Kernel_abi.Viscosity
      Singe.Compile.Warp_specialized arch
  in
  Alcotest.(check bool) "exhaustive winner is model-ranked" true
    (ex.Singe.Autotune.model_rank_of_winner >= 1);
  Alcotest.(check int) "exhaustive prunes nothing" 0
    ex.Singe.Autotune.candidates_pruned;
  let keep = max 2 ex.Singe.Autotune.model_rank_of_winner in
  let pr =
    Singe.Autotune.tune ~jobs:2 ~mode:(Singe.Autotune.Pruned keep) mech
      Singe.Kernel_abi.Viscosity Singe.Compile.Warp_specialized arch
  in
  Alcotest.(check bool) "same winner options" true
    (pr.Singe.Autotune.best.Singe.Autotune.options
    = ex.Singe.Autotune.best.Singe.Autotune.options);
  Alcotest.(check bool) "same winner throughput" true
    (pr.Singe.Autotune.best.Singe.Autotune.throughput
    = ex.Singe.Autotune.best.Singe.Autotune.throughput);
  Alcotest.(check int) "same grid" ex.Singe.Autotune.tried
    pr.Singe.Autotune.tried;
  (match pr.Singe.Autotune.mode with
  | Singe.Autotune.Pruned k -> Alcotest.(check int) "mode recorded" keep k
  | Singe.Autotune.Exhaustive -> Alcotest.fail "pruned sweep reported exhaustive");
  let compilable = ex.Singe.Autotune.tried - ex.Singe.Autotune.skipped in
  if compilable > keep then
    Alcotest.(check bool) "pruning actually excluded candidates" true
      (pr.Singe.Autotune.candidates_pruned > 0)

(* The sweep's winner (and its pinned lowest-index tie-break) must not
   depend on how many domains evaluate the grid. *)
let test_tune_jobs_deterministic () =
  let mech = hydrogen () in
  let run jobs =
    Singe.Autotune.tune ~jobs mech Singe.Kernel_abi.Viscosity
      Singe.Compile.Warp_specialized arch
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check bool) "same winner options" true
    (a.Singe.Autotune.best.Singe.Autotune.options
    = b.Singe.Autotune.best.Singe.Autotune.options);
  Alcotest.(check bool) "same winner throughput" true
    (a.Singe.Autotune.best.Singe.Autotune.throughput
    = b.Singe.Autotune.best.Singe.Autotune.throughput);
  Alcotest.(check int) "same tried" a.Singe.Autotune.tried
    b.Singe.Autotune.tried;
  Alcotest.(check int) "same skipped" a.Singe.Autotune.skipped
    b.Singe.Autotune.skipped;
  Alcotest.(check int) "same model rank" a.Singe.Autotune.model_rank_of_winner
    b.Singe.Autotune.model_rank_of_winner

(* Seeded mutation: injecting a send of a value no warp ever produces must
   surface as a positioned lowering diagnostic, not a Not_found crash. *)
let test_lower_unproduced_value () =
  let mech = hydrogen () in
  let dfg = Singe.Viscosity_dfg.build mech ~n_warps:2 in
  let m =
    Singe.Mapping.map dfg ~n_warps:2 ~weights:Singe.Mapping.default_weights
      ~strategy:Singe.Mapping.Store ~respect_hints:true
  in
  let s = Singe.Schedule.build dfg m in
  let mutate value =
    let per_warp = Array.map Array.copy s.Singe.Schedule.per_warp in
    let stamps = Array.map Array.copy s.Singe.Schedule.stamps in
    per_warp.(0) <-
      Array.append [| Singe.Schedule.A_send { value; slot = 0 } |] per_warp.(0);
    stamps.(0) <- Array.append [| -1 |] stamps.(0);
    { s with Singe.Schedule.per_warp; stamps }
  in
  let cfg =
    {
      Singe.Lower.arch;
      overlay = true;
      const_policy = Singe.Lower.Bank;
      exp_consts_in_registers = false;
      param_stripe_threshold = 8;
      freg_budget = 60;
      synth_exchange = false;
    }
  in
  let groups = Singe.Kernel_abi.groups mech Singe.Kernel_abi.Viscosity in
  let lower_mutated value =
    Singe.Lower.lower cfg ~name:"mutated" ~point_map:Gpusim.Isa.Coop
      ~out_warps:2 ~groups dfg m (mutate value)
  in
  (* a value id outside the graph entirely *)
  (match lower_mutated 987_654_321 with
  | _ -> Alcotest.fail "lowering accepted a send of an out-of-range value"
  | exception Singe.Diagnostics.Fail d ->
      Alcotest.(check (option string))
        "diagnostic names the pass" (Some "lower") d.Singe.Diagnostics.pass;
      Alcotest.(check bool) "diagnostic names the value" true
        (contains d.Singe.Diagnostics.message "987654321"));
  (* a real register-placed value no warp has produced yet at stream start *)
  let unproduced = ref (-1) in
  Array.iteri
    (fun v place ->
      if !unproduced < 0 && place = Singe.Mapping.P_reg then unproduced := v)
    m.Singe.Mapping.value_place;
  Alcotest.(check bool) "found a register-placed value" true (!unproduced >= 0);
  match lower_mutated !unproduced with
  | _ -> Alcotest.fail "lowering accepted a send of a never-produced value"
  | exception Singe.Diagnostics.Fail d ->
      Alcotest.(check (option string))
        "diagnostic names the pass" (Some "lower") d.Singe.Diagnostics.pass;
      Alcotest.(check bool) "diagnostic names the warp" true
        (contains d.Singe.Diagnostics.message "warp 0");
      Alcotest.(check bool) "diagnostic explains the cause" true
        (contains d.Singe.Diagnostics.message "no register copy")

(* An out-of-scope Var in an s-expression is a diagnostic, not a List.nth
   failure; bound vars still evaluate. *)
let test_sexpr_var_diagnostic () =
  (match
     Singe.Sexpr.eval (Singe.Sexpr.Var 0) ~consts:[||] ~input:(fun _ -> 0.0)
   with
  | _ -> Alcotest.fail "evaluated an unbound Var"
  | exception Singe.Diagnostics.Fail d ->
      Alcotest.(check (option string))
        "diagnostic names the pass" (Some "sexpr-eval")
        d.Singe.Diagnostics.pass);
  let v =
    Singe.Sexpr.(eval (Let (Imm 2.0, Var 0))) ~consts:[||]
      ~input:(fun _ -> 0.0)
  in
  Alcotest.(check (float 0.0)) "bound var evaluates" 2.0 v

(* A stoichiometric coefficient too large for an int is a positioned
   parse error (file/line/token), not an int_of_string exception. *)
let test_chemkin_coeff_overflow () =
  let text = "REACTIONS\n99999999999999999999h2 = h2 1.0 0.0 0.0\nEND" in
  match Chem.Chemkin_parser.parse text with
  | Ok _ -> Alcotest.fail "accepted an overflowing stoichiometric coefficient"
  | Error e ->
      Alcotest.(check bool) "message names the coefficient" true
        (contains e.Chem.Srcloc.msg "coefficient");
      Alcotest.(check int) "positioned at line 2" 2
        e.Chem.Srcloc.loc.Chem.Srcloc.line;
      Alcotest.(check (option string))
        "offending token isolated"
        (Some "99999999999999999999")
        e.Chem.Srcloc.loc.Chem.Srcloc.token

let tests =
  [
    Alcotest.test_case "sim never beats floor or roofline" `Quick
      test_floor_and_roofline;
    Alcotest.test_case "model accuracy within 35%" `Quick test_model_accuracy;
    Alcotest.test_case "pruned sweep finds exhaustive winner" `Quick
      test_pruned_matches_exhaustive;
    Alcotest.test_case "tune deterministic across jobs" `Quick
      test_tune_jobs_deterministic;
    Alcotest.test_case "lower rejects unproduced value" `Quick
      test_lower_unproduced_value;
    Alcotest.test_case "sexpr unbound var diagnostic" `Quick
      test_sexpr_var_diagnostic;
    Alcotest.test_case "chemkin coefficient overflow positioned" `Quick
      test_chemkin_coeff_overflow;
  ]
