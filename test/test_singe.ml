(* Compiler tests: expression language, dataflow graphs, the three kernel
   partitioners against the host reference, mapping, deadlock-free
   scheduling (including on random graphs), code generation across
   versions and architectures, and the register allocator under pressure. *)

module S = Singe.Sexpr

let hydrogen = Chem.Mech_gen.hydrogen
let dme = Chem.Mech_gen.dme

(* ---------- Sexpr ---------- *)

let test_sexpr_eval () =
  let e = S.let_ (S.add (S.In 0) (S.Imm 1.0)) (S.mul (S.Var 0) (S.Var 0)) in
  let v = S.eval e ~consts:[||] ~input:(fun _ -> 3.0) in
  Alcotest.(check (float 1e-12)) "let/var" 16.0 v

let test_sexpr_shape () =
  let e1 = S.fma (S.C 1.0) (S.In 0) (S.C 2.0) in
  let e2 = S.fma (S.C 9.0) (S.In 0) (S.C 7.0) in
  let e3 = S.fma (S.Imm 9.0) (S.In 0) (S.C 7.0) in
  Alcotest.(check string) "constants are wildcards" (S.shape e1) (S.shape e2);
  Alcotest.(check bool) "immediates are not" true (S.shape e1 <> S.shape e3)

let test_sexpr_constants_order () =
  let e = S.fma (S.C 1.0) (S.In 0) (S.add (S.C 2.0) (S.C 3.0)) in
  Alcotest.(check (list (float 0.0))) "traversal order" [ 1.0; 2.0; 3.0 ]
    (S.constants e)

(* A random well-formed expression over [n_in] inputs. *)
let gen_expr n_in =
  QCheck.Gen.(
    sized_size (int_bound 6) (fix (fun self n ->
        if n = 0 then
          oneof
            [ map (fun i -> S.In i) (int_bound (n_in - 1));
              map (fun v -> S.C v) (float_range 0.5 2.0);
              map (fun v -> S.Imm v) (float_range 0.5 2.0) ]
        else
          oneof
            [
              map2 (fun a b -> S.add a b) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> S.mul a b) (self (n / 2)) (self (n / 2));
              map3 (fun a b c -> S.fma a b c) (self (n / 2)) (self (n / 2)) (self (n / 2));
              map (fun a -> S.exp_ (S.mul (S.Imm 0.01) a)) (self (n - 1));
              map2 (fun d b -> S.Let (d, S.add b (S.Var 0))) (self (n / 2)) (self (n / 2));
            ])))

let qcheck_shape_const_count =
  QCheck.Test.make ~count:200 ~name:"equal shapes have equal constant counts"
    (QCheck.make (QCheck.Gen.pair (gen_expr 3) (gen_expr 3)))
    (fun (a, b) ->
      if S.shape a = S.shape b then S.n_constants a = S.n_constants b else true)

(* ---------- kernel partitioners vs host reference ---------- *)

let interp_matches mechf kernel warps tol () =
  let mech = mechf () in
  let dfg =
    match kernel with
    | Singe.Kernel_abi.Viscosity -> Singe.Viscosity_dfg.build mech ~n_warps:warps
    | Singe.Kernel_abi.Conductivity -> Singe.Conductivity_dfg.build mech ~n_warps:warps
    | Singe.Kernel_abi.Diffusion -> Singe.Diffusion_dfg.build mech ~n_warps:warps
    | Singe.Kernel_abi.Chemistry -> Singe.Chemistry_dfg.build mech ~n_warps:warps
    | Singe.Kernel_abi.Stencil id ->
        Singe.Stencil_dfg.build (Singe.Stencil_pipe.get id) ~n_warps:warps
          ~overlap:true
  in
  (match Singe.Dfg.validate dfg with
  | Ok () -> ()
  | Error l -> Alcotest.fail (String.concat "; " l));
  let grid = Chem.Grid.create mech ~points:4 ~seed:77L in
  for p = 0 to 3 do
    let inputs = Singe.Dfg_interp.point_inputs mech grid p in
    let expect =
      Singe.Kernel_abi.reference_outputs mech grid kernel ~points:4
    in
    let fmax =
      Array.fold_left
        (fun acc f -> Array.fold_left (fun a v -> Float.max a (abs_float v)) acc f)
        1e-300 expect
    in
    Array.iteri
      (fun f field ->
        let got = Singe.Dfg_interp.eval_field dfg inputs f in
        let want = field.(p) in
        let err = abs_float (got -. want) /. Float.max (abs_float want) (1e-9 *. fmax) in
        if err > tol then
          Alcotest.failf "field %d point %d: got %.12g want %.12g" f p got want)
      expect
  done

(* ---------- mapping ---------- *)

let test_mapping_hints_and_balance () =
  let mech = hydrogen () in
  let dfg = Singe.Viscosity_dfg.build mech ~n_warps:4 in
  let m =
    Singe.Mapping.map dfg ~n_warps:4 ~weights:Singe.Mapping.default_weights
      ~strategy:Singe.Mapping.Store ~respect_hints:true
  in
  (* hinted ops land on their hint *)
  Array.iter
    (fun (op : Singe.Dfg.op) ->
      match op.Singe.Dfg.hint with
      | Some h -> Alcotest.(check int) ("hint " ^ op.Singe.Dfg.name) h m.Singe.Mapping.op_warp.(op.Singe.Dfg.id)
      | None -> ())
    dfg.Singe.Dfg.ops;
  let flops = Singe.Mapping.warp_flops dfg m in
  let fmax = Array.fold_left max 0 flops and fmin = Array.fold_left min max_int flops in
  Alcotest.(check bool) "flops balanced within 3x" true (fmax <= 3 * max 1 fmin)

let test_mapping_greedy_balance () =
  (* Without hints the greedy pass must still balance. *)
  let mech = hydrogen () in
  let dfg = Singe.Viscosity_dfg.build mech ~n_warps:4 in
  let m =
    Singe.Mapping.map dfg ~n_warps:4 ~weights:Singe.Mapping.default_weights
      ~strategy:Singe.Mapping.Store ~respect_hints:false
  in
  let flops = Singe.Mapping.warp_flops dfg m in
  let fmax = Array.fold_left max 0 flops and fmin = Array.fold_left min max_int flops in
  Alcotest.(check bool) "greedy flops balanced" true (fmax <= 2 * max 1 fmin)

let test_placement_strategies () =
  let mech = hydrogen () in
  let dfg = Singe.Viscosity_dfg.build mech ~n_warps:4 in
  let place strategy =
    let m =
      Singe.Mapping.map dfg ~n_warps:4 ~weights:Singe.Mapping.default_weights
        ~strategy ~respect_hints:true
    in
    m.Singe.Mapping.store_slots
  in
  Alcotest.(check bool) "store uses shared" true (place Singe.Mapping.Store > 0);
  Alcotest.(check int) "buffer keeps registers (no hints here)" 0
    (place Singe.Mapping.Buffer)

(* ---------- scheduling ---------- *)

let test_schedule_well_formed () =
  List.iter
    (fun (kernel, warps) ->
      let mech = hydrogen () in
      let dfg =
        match kernel with
        | Singe.Kernel_abi.Viscosity -> Singe.Viscosity_dfg.build mech ~n_warps:warps
        | Singe.Kernel_abi.Conductivity -> Singe.Conductivity_dfg.build mech ~n_warps:warps
        | Singe.Kernel_abi.Diffusion -> Singe.Diffusion_dfg.build mech ~n_warps:warps
        | Singe.Kernel_abi.Chemistry -> Singe.Chemistry_dfg.build mech ~n_warps:warps
        | Singe.Kernel_abi.Stencil id ->
            Singe.Stencil_dfg.build (Singe.Stencil_pipe.get id) ~n_warps:warps
              ~overlap:true
      in
      let m =
        Singe.Mapping.map dfg ~n_warps:warps ~weights:Singe.Mapping.default_weights
          ~strategy:(Singe.Compile.default_strategy kernel) ~respect_hints:true
      in
      let sched = Singe.Schedule.build dfg m in
      match Singe.Schedule.well_formed sched dfg m with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [
      (Singe.Kernel_abi.Viscosity, 3);
      (Singe.Kernel_abi.Viscosity, 5);
      (Singe.Kernel_abi.Diffusion, 4);
      (Singe.Kernel_abi.Chemistry, 4);
    ]

let test_barrier_budget_respected () =
  let mech = hydrogen () in
  let dfg = Singe.Chemistry_dfg.build mech ~n_warps:4 in
  let m =
    Singe.Mapping.map dfg ~n_warps:4 ~weights:Singe.Mapping.default_weights
      ~strategy:Singe.Mapping.Buffer ~respect_hints:true
  in
  List.iter
    (fun budget ->
      let sched = Singe.Schedule.build ~max_barriers:budget dfg m in
      Alcotest.(check bool) "ids within budget" true
        (sched.Singe.Schedule.barriers_used <= budget))
    [ 2; 4; 8; 16 ]

(* Random DFGs: schedule + compile + simulate must terminate without
   deadlock and reproduce the interpreter exactly — Theorem 1 plus the
   epoch-based barrier allocation, end to end. *)
let gen_dfg =
  QCheck.Gen.(
    let* n_warps = int_range 2 5 in
    let* n_loads = int_range 1 4 in
    let* n_computes = int_range 3 25 in
    let* exprs = list_repeat n_computes (gen_expr 3) in
    let* input_picks = list_repeat n_computes (list_repeat 3 (float_range 0.0 1.0)) in
    let* hints = list_repeat n_computes (int_range 0 (n_warps - 1)) in
    let* n_stores = int_range 1 3 in
    return (n_warps, n_loads, exprs, input_picks, hints, n_stores))

let build_random_dfg (n_warps, n_loads, exprs, input_picks, hints, n_stores) =
  let b = Singe.Dfg.Builder.create "random" in
  let values = ref [] in
  for i = 0 to n_loads - 1 do
    values :=
      Singe.Dfg.Builder.load b ~hint:(i mod n_warps)
        ~name:(Printf.sprintf "in%d" i) ~group:"mole_frac" ~field:i ()
      :: !values
  done;
  List.iteri
    (fun i (expr, (picks, hint)) ->
      let avail = Array.of_list !values in
      let pick f = avail.(int_of_float (f *. float_of_int (Array.length avail - 1))) in
      let inputs = Array.of_list (List.map pick picks) in
      values :=
        Singe.Dfg.Builder.compute b ~hint ~name:(Printf.sprintf "c%d" i) ~inputs expr
        :: !values)
    (List.combine exprs (List.combine input_picks hints));
  let avail = Array.of_list !values in
  for f = 0 to n_stores - 1 do
    Singe.Dfg.Builder.store b ~name:(Printf.sprintf "st%d" f) ~group:"out"
      ~field:f avail.(f mod Array.length avail)
  done;
  (Singe.Dfg.Builder.finish b, n_warps, n_loads, n_stores)

let qcheck_random_dfg_end_to_end =
  QCheck.Test.make ~count:60 ~name:"random DFG: schedule+codegen+simulate = interpreter"
    (QCheck.make gen_dfg)
    (fun spec ->
      let dfg, n_warps, n_loads, n_stores = build_random_dfg spec in
      let groups =
        [|
          { Gpusim.Isa.group_name = "mole_frac"; fields = max 4 n_loads };
          { Gpusim.Isa.group_name = "out"; fields = n_stores };
        |]
      in
      List.for_all
        (fun strategy ->
          let m =
            Singe.Mapping.map dfg ~n_warps ~weights:Singe.Mapping.default_weights
              ~strategy ~respect_hints:true
          in
          let sched = Singe.Schedule.build ~max_barriers:4 ~buffer_slots:8 dfg m in
          let cfg =
            {
              Singe.Lower.arch = Gpusim.Arch.kepler_k20c;
              overlay = true;
              const_policy = Singe.Lower.Bank;
              exp_consts_in_registers = false;
              param_stripe_threshold = 4;
              freg_budget = 24;
              synth_exchange = false;
            }
          in
          let low =
            Singe.Lower.lower cfg ~name:"random" ~point_map:Gpusim.Isa.Coop
              ~out_warps:n_warps ~groups dfg m sched
          in
          (match Gpusim.Isa.validate low.Singe.Lower.program with
          | Ok () -> ()
          | Error l -> QCheck.Test.fail_report (String.concat "; " l));
          let inputs = Array.init (max 4 n_loads) (fun i -> 0.5 +. (0.25 *. float_of_int i)) in
          let fill mem n =
            Array.iteri
              (fun f v ->
                Gpusim.Memstate.set_field mem ~group:0 ~field:f (Array.make n v))
              inputs
          in
          let r =
            Gpusim.Machine.run ~fill_inputs:fill Gpusim.Arch.kepler_k20c
              { Gpusim.Machine.program = low.Singe.Lower.program;
                total_points = 64; ctas = 2 }
          in
          let interp =
            Singe.Dfg_interp.eval dfg
              { Singe.Dfg_interp.temp = 0.0; pressure = 0.0;
                mole_frac = inputs; diffusion = [||] }
          in
          Hashtbl.fold
            (fun f want acc ->
              let out = Gpusim.Memstate.get_field r.Gpusim.Machine.mem ~group:1 ~field:f in
              (* random expressions may overflow; agreement on non-finite
                 values is checked by classification *)
              acc
              && Array.for_all
                   (fun got ->
                     if Float.is_finite want then
                       abs_float (got -. want)
                       <= 1e-9 *. Float.max 1.0 (abs_float want)
                     else Float.is_finite got = false)
                   (Array.sub out 0 r.Gpusim.Machine.simulated_points))
            interp true)
        [ Singe.Mapping.Store; Singe.Mapping.Buffer; Singe.Mapping.Mixed ])

(* ---------- end-to-end kernels ---------- *)

let end_to_end mechf kernel version arch warps tol () =
  let mech = mechf () in
  let opts =
    { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = warps }
  in
  let c = Singe.Compile.compile mech kernel version opts in
  (match Gpusim.Isa.validate c.Singe.Compile.lowered.Singe.Lower.program with
  | Ok () -> ()
  | Error l -> Alcotest.fail (String.concat "; " l));
  let r = Singe.Compile.run c ~total_points:(32 * 64) in
  if r.Singe.Compile.max_rel_err > tol then
    Alcotest.failf "rel err %.3g > %.3g" r.Singe.Compile.max_rel_err tol

let test_regalloc_budget () =
  (* A deliberately tiny budget must still give correct results (through
     spilling) and respect the cap. *)
  let mech = hydrogen () in
  let arch = Gpusim.Arch.kepler_k20c in
  let opts =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = 4; freg_budget = Some 14 }
  in
  let c = Singe.Compile.compile mech Singe.Kernel_abi.Viscosity
      Singe.Compile.Warp_specialized opts in
  Alcotest.(check bool) "spilled" true
    (c.Singe.Compile.lowered.Singe.Lower.n_spill_slots > 0);
  Alcotest.(check bool) "within budget" true
    (c.Singe.Compile.lowered.Singe.Lower.program.Gpusim.Isa.n_fregs <= 14);
  let r = Singe.Compile.run c ~total_points:(32 * 32) in
  Alcotest.(check bool) "correct with spills" true (r.Singe.Compile.max_rel_err < 1e-9)

let test_diffusion_pairs () =
  for n = 3 to 40 do
    Alcotest.(check bool)
      (Printf.sprintf "pairs covered n=%d" n)
      true
      (Singe.Diffusion_dfg.covers_all_pairs ~n)
  done

let test_naive_equals_overlay () =
  let mech = hydrogen () in
  let arch = Gpusim.Arch.kepler_k20c in
  let opts = { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = 4 } in
  let out version =
    let c = Singe.Compile.compile mech Singe.Kernel_abi.Diffusion version opts in
    let r = Singe.Compile.run c ~total_points:(32 * 32) ~ctas:4 in
    r.Singe.Compile.outputs
  in
  let a = out Singe.Compile.Warp_specialized in
  let b = out Singe.Compile.Naive_warp_specialized in
  Array.iteri
    (fun f fa ->
      Array.iteri
        (fun p v ->
          let w = b.(f).(p) in
          Alcotest.(check bool) "overlay == naive" true
            (abs_float (v -. w) <= 1e-9 *. Float.max 1.0 (abs_float w)))
        fa)
    a

let test_autotune_smoke () =
  let mech = hydrogen () in
  let outcome =
    Singe.Autotune.tune ~points:2048 ~warp_candidates:[ 2; 4 ] ~cta_targets:[ 2 ]
      mech Singe.Kernel_abi.Viscosity Singe.Compile.Warp_specialized
      Gpusim.Arch.kepler_k20c
  in
  Alcotest.(check bool) "tried some" true (outcome.Singe.Autotune.tried >= 2);
  Alcotest.(check bool) "throughput positive" true
    (outcome.Singe.Autotune.best.Singe.Autotune.throughput > 0.0)

let e2e name mechf kernel tol =
  List.concat_map
    (fun (arch, aname) ->
      List.map
        (fun (version, vname, warps) ->
          Alcotest.test_case
            (Printf.sprintf "%s %s %s" name vname aname)
            `Quick
            (end_to_end mechf kernel version arch warps tol))
        [
          (Singe.Compile.Warp_specialized, "ws", 4);
          (Singe.Compile.Baseline, "base", 4);
          (Singe.Compile.Naive_warp_specialized, "naive", 4);
        ])
    [ (Gpusim.Arch.kepler_k20c, "kepler"); (Gpusim.Arch.fermi_c2070, "fermi") ]

let tests =
  [
    Alcotest.test_case "sexpr let/var eval" `Quick test_sexpr_eval;
    Alcotest.test_case "sexpr shapes" `Quick test_sexpr_shape;
    Alcotest.test_case "sexpr constant order" `Quick test_sexpr_constants_order;
    QCheck_alcotest.to_alcotest qcheck_shape_const_count;
    Alcotest.test_case "viscosity dfg vs reference (hydrogen)" `Quick
      (interp_matches hydrogen Singe.Kernel_abi.Viscosity 4 1e-10);
    Alcotest.test_case "diffusion dfg vs reference (hydrogen)" `Quick
      (interp_matches hydrogen Singe.Kernel_abi.Diffusion 4 1e-10);
    Alcotest.test_case "chemistry dfg vs reference (hydrogen)" `Quick
      (interp_matches hydrogen Singe.Kernel_abi.Chemistry 4 1e-8);
    Alcotest.test_case "viscosity dfg vs reference (dme)" `Quick
      (interp_matches dme Singe.Kernel_abi.Viscosity 6 1e-10);
    Alcotest.test_case "diffusion dfg vs reference (dme)" `Quick
      (interp_matches dme Singe.Kernel_abi.Diffusion 6 1e-10);
    Alcotest.test_case "chemistry dfg vs reference (dme)" `Quick
      (interp_matches dme Singe.Kernel_abi.Chemistry 8 1e-8);
    Alcotest.test_case "mapping hints & balance" `Quick test_mapping_hints_and_balance;
    Alcotest.test_case "mapping greedy balance" `Quick test_mapping_greedy_balance;
    Alcotest.test_case "placement strategies" `Quick test_placement_strategies;
    Alcotest.test_case "schedules well-formed" `Quick test_schedule_well_formed;
    Alcotest.test_case "barrier budget respected" `Quick test_barrier_budget_respected;
    QCheck_alcotest.to_alcotest qcheck_random_dfg_end_to_end;
    Alcotest.test_case "regalloc under pressure" `Quick test_regalloc_budget;
    Alcotest.test_case "diffusion pair coverage" `Quick test_diffusion_pairs;
    Alcotest.test_case "naive equals overlay" `Quick test_naive_equals_overlay;
    Alcotest.test_case "autotune smoke" `Quick test_autotune_smoke;
  ]
  @ e2e "viscosity" hydrogen Singe.Kernel_abi.Viscosity 1e-9
  @ e2e "diffusion" hydrogen Singe.Kernel_abi.Diffusion 1e-9
  @ e2e "chemistry" hydrogen Singe.Kernel_abi.Chemistry 1e-8
