(* The shuffle-exchange superoptimizer: the swizzle language's symbolic
   evaluator vs the Sm simulator, canonicalization and synthesis
   round-trips over the enumerated sketch space, validator range checks on
   the shuffle instructions, and end-to-end bit-identity of rewritten
   kernels against their shared-memory baselines. *)

open Gpusim
module Synth = Singe.Shuffle_synth

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest ~verbose:false
    (QCheck.Test.make ~count ~name gen prop)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------- a straight-line Sm program running one swizzle chain ---------- *)

let empty_banks n_warps =
  Array.init n_warps (fun _ -> Array.init 32 (fun _ -> [||]))

let step_instr = function
  | Synth.Rot d -> Isa.Shfl_rot { dst = 0; src = 0; delta = d }
  | Synth.Bfly m -> Isa.Shfl_bfly { dst = 0; src = 0; xor_mask = m }
  | Synth.Bcast k -> Isa.Shfl { dst = 0; src = 0; lane = k }

let swizzle_program prog =
  {
    Isa.name = "swizzle";
    n_warps = 2;
    n_fregs = 2;
    n_iregs = 1;
    shared_doubles = 0;
    local_doubles = 0;
    barriers_used = 0;
    point_map = Isa.Thread_per_point;
    prologue = Isa.Instrs [];
    body =
      Isa.Instrs
        ((Isa.Ld_global
            { dst = 0; group = 0; field = Isa.F_static 0; via_tex = false;
              pred = None }
         :: List.map step_instr prog)
        @ [ Isa.St_global
              { src = Isa.Sreg 0; group = 1; field = Isa.F_static 0;
                pred = None } ]);
    const_bank = empty_banks 2;
    param_bank = empty_banks 2;
    const_mem = [||];
    groups =
      [| { Isa.group_name = "a"; fields = 1 };
         { Isa.group_name = "out"; fields = 1 } |];
    exp_consts_in_registers = false;
  }

(* Seeded inputs: one distinct value per point, reproducible. *)
let input_values =
  let rng = Sutil.Prng.create 0x53594E54L in
  Array.init 64 (fun _ -> Sutil.Prng.range rng 0.5 2.0)

let run_swizzle arch prog =
  let p = swizzle_program prog in
  let points = Array.length input_values in
  let r =
    Machine.run
      ~fill_inputs:(fun mem _ ->
        Memstate.set_field mem
          ~group:(Memstate.group_index p "a")
          ~field:0 input_values)
      arch
      { Machine.program = p;
        total_points = points;
        ctas = points / (p.Isa.n_warps * 32) }
  in
  Memstate.get_field r.Machine.mem
    ~group:(Memstate.group_index p "out")
    ~field:0

(* The functional semantics, warp by warp. *)
let expected prog =
  let out = Array.make (Array.length input_values) 0.0 in
  for w = 0 to (Array.length input_values / 32) - 1 do
    let res = Synth.apply prog (Array.sub input_values (w * 32) 32) in
    Array.blit res 0 out (w * 32) 32
  done;
  out

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a b

let archs = [ Arch.kepler_k20c; Arch.fermi_c2070 ]

(* ---------- properties ---------- *)

let step_gen =
  QCheck.Gen.(
    oneof
      [ map (fun d -> Synth.Rot d) (int_range 0 31);
        map (fun m -> Synth.Bfly m) (int_range 0 31);
        map (fun k -> Synth.Bcast k) (int_range 0 31) ])

let prog_print p =
  String.concat ";"
    (List.map
       (function
         | Synth.Rot d -> Printf.sprintf "rot%d" d
         | Synth.Bfly m -> Printf.sprintf "bfly%d" m
         | Synth.Bcast k -> Printf.sprintf "bcast%d" k)
       p)

let prog_arb =
  QCheck.make ~print:prog_print
    QCheck.Gen.(list_size (int_range 0 3) step_gen)

let test_sim_matches_eval =
  qtest ~count:120 "random swizzle programs: Sm lanes = lane evaluator"
    prog_arb
    (fun prog ->
      List.for_all
        (fun arch -> bits_equal (run_swizzle arch prog) (expected prog))
        archs)

let test_signature_is_apply =
  qtest "signature agrees with apply on lane indices" prog_arb
    (fun prog ->
      let s = Synth.signature prog in
      let idx = Array.init 32 float_of_int in
      Synth.apply prog idx = Array.map (fun l -> idx.(l)) s)

let test_canonicalize_preserves =
  qtest "canonicalize preserves the signature" prog_arb
    (fun prog ->
      Synth.signature (Synth.canonicalize prog) = Synth.signature prog)

(* Every enumerated program round-trips: its signature re-synthesizes to an
   equivalent program no costlier than itself, and the Sm simulator agrees
   with the lane evaluator on both architectures (the whole space is
   simulated — it is small by construction). *)
let test_enumerated_roundtrip () =
  let progs = Synth.enumerate () in
  Alcotest.(check bool) "sketch space is non-trivial" true
    (List.length progs > 100);
  List.iter
    (fun p ->
      let s = Synth.signature p in
      (match Synth.synthesize s with
      | None -> Alcotest.fail ("not re-synthesizable: " ^ prog_print p)
      | Some q ->
          if Synth.signature q <> s then
            Alcotest.fail ("synthesis changed the signature: " ^ prog_print p);
          if
            Synth.cost Arch.kepler_k20c q
            > Synth.cost Arch.kepler_k20c p +. 1e-9
          then Alcotest.fail ("synthesis found a costlier program: " ^ prog_print p));
      List.iter
        (fun arch ->
          if not (bits_equal (run_swizzle arch p) (expected p)) then
            Alcotest.fail
              (Printf.sprintf "Sm disagrees with the evaluator on %s: %s"
                 arch.Arch.name (prog_print p)))
        archs)
    progs

let test_canonicalize_units () =
  Alcotest.(check bool) "rot 0 is identity" true
    (Synth.canonicalize [ Synth.Rot 0 ] = []);
  Alcotest.(check bool) "inverse rotations cancel" true
    (Synth.canonicalize [ Synth.Rot 3; Synth.Rot 29 ] = []);
  Alcotest.(check bool) "butterfly is an involution" true
    (Synth.canonicalize [ Synth.Bfly 5; Synth.Bfly 5 ] = []);
  match Synth.canonicalize [ Synth.Bcast 4; Synth.Rot 1 ] with
  | [ Synth.Bcast 4 ] -> ()
  | p ->
      Alcotest.fail
        ("constant signature should collapse to its broadcast: "
        ^ prog_print p)

let test_synthesize_units () =
  (match Synth.synthesize (Array.init 32 Fun.id) with
  | Some [] -> ()
  | _ -> Alcotest.fail "identity should synthesize to the empty program");
  (match Synth.synthesize (Array.init 32 (fun l -> (l + 5) land 31)) with
  | Some [ Synth.Rot 5 ] -> ()
  | _ -> Alcotest.fail "rotation pattern should synthesize to one rot");
  (match Synth.synthesize (Array.init 32 (fun l -> l lxor 31)) with
  | Some [ Synth.Bfly 31 ] -> ()
  | _ -> Alcotest.fail "lane reversal should synthesize to one butterfly");
  (match Synth.synthesize (Array.make 32 7) with
  | Some [ Synth.Bcast 7 ] -> ()
  | _ -> Alcotest.fail "constant pattern should synthesize to one bcast");
  (* A single-pair swap is not a rotate/butterfly/broadcast composition. *)
  let swap01 = Array.init 32 (fun l -> if l < 2 then 1 - l else l) in
  match Synth.synthesize swap01 with
  | None -> ()
  | Some p ->
      Alcotest.fail ("single-pair swap should be unsynthesizable, got "
                     ^ prog_print p)

(* ---------- validator range checks on the shuffle instructions ---------- *)

let expect_invalid name instr needle =
  let p = swizzle_program [] in
  let p =
    { p with
      Isa.body =
        Isa.Instrs
          [ Isa.Ld_global
              { dst = 0; group = 0; field = Isa.F_static 0; via_tex = false;
                pred = None };
            instr ] }
  in
  match Isa.validate p with
  | Ok () -> Alcotest.fail (name ^ ": validator accepted an invalid program")
  | Error msgs ->
      Alcotest.(check bool)
        (name ^ " diagnostic is positioned and specific")
        true
        (List.exists
           (fun m -> contains m "body[1]" && contains m needle)
           msgs)

let test_validate_shuffle_ranges () =
  expect_invalid "shfl lane 32"
    (Isa.Shfl { dst = 0; src = 0; lane = 32 })
    "outside [0, 32)";
  expect_invalid "ishfl lane -1"
    (Isa.Ishfl { dst_i = 0; src_i = 0; lane = -1 })
    "outside [0, 32)";
  expect_invalid "shfl.rot delta 32"
    (Isa.Shfl_rot { dst = 0; src = 0; delta = 32 })
    "outside [0, 32)";
  expect_invalid "shfl.bfly mask -1"
    (Isa.Shfl_bfly { dst = 0; src = 0; xor_mask = -1 })
    "outside [0, 32)"

(* ---------- end-to-end: the Lower rewrite is bit-exact ---------- *)

let compile_pair arch kernel =
  let mech = Chem.Mech_gen.dme () in
  let opts synth =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = 8;
      max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
      ctas_per_sm_target =
        (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2);
      synth_exchange = Some synth }
  in
  let c b =
    Singe.Compile.compile_cached mech kernel Singe.Compile.Warp_specialized
      (opts b)
  in
  (c true, c false)

let out_bits (r : Singe.Compile.run_result) =
  Array.map (Array.map Int64.bits_of_float) r.Singe.Compile.outputs

let test_bit_identity () =
  List.iter
    (fun arch ->
      List.iter
        (fun kernel ->
          let c_on, c_off = compile_pair arch kernel in
          let r_on = Singe.Compile.run c_on ~total_points:2048
          and r_off = Singe.Compile.run c_off ~total_points:2048 in
          let label =
            Printf.sprintf "%s on %s"
              (Singe.Kernel_abi.kernel_name kernel)
              arch.Arch.name
          in
          Alcotest.(check bool)
            (label ^ ": rewrite fired")
            true
            (c_on.Singe.Compile.lowered.Singe.Lower.exchange
               .Synth.sites_rewritten > 0);
          Alcotest.(check bool)
            (label ^ ": outputs bit-identical")
            true
            (out_bits r_on = out_bits r_off))
        [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion;
          Singe.Kernel_abi.Chemistry ])
    archs

(* The acceptance-level perf claim: diffusion on Kepler must not get
   slower with the rewrite on, and the rewrite must remove round trips. *)
let test_diffusion_cycle_reduction () =
  let c_on, c_off = compile_pair Arch.kepler_k20c Singe.Kernel_abi.Diffusion in
  let cyc c =
    let r = Singe.Compile.run c ~total_points:2048 in
    r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
  in
  let on = cyc c_on and off = cyc c_off in
  let ex = c_on.Singe.Compile.lowered.Singe.Lower.exchange in
  Alcotest.(check bool) "round trips removed" true
    (ex.Synth.round_trips_removed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "no cycle regression (on %d vs off %d)" on off)
    true (on <= off);
  (* The report is internally consistent and feeds the --timings row. *)
  Alcotest.(check bool) "rewrites bounded by sites" true
    (ex.Synth.sites_rewritten <= ex.Synth.sites_seen);
  let stats = Synth.report_stats ex in
  Alcotest.(check bool) "stats expose the rewrite counters" true
    (List.mem_assoc "exchanges-rewritten" stats
    || List.length stats >= 4)

(* The rewrite's static effect: fewer shared-traffic bytes per body pass
   (Isa_stats' counter), never more. *)
let test_shared_traffic_shrinks () =
  let c_on, c_off = compile_pair Arch.kepler_k20c Singe.Kernel_abi.Diffusion in
  let sb (c : Singe.Compile.t) =
    Isa_stats.shared_bytes_of_program
      c.Singe.Compile.lowered.Singe.Lower.program
  in
  let on = sb c_on and off = sb c_off in
  Alcotest.(check bool)
    (Printf.sprintf "shared traffic shrinks (on %d vs off %d B)" on off)
    true (on < off)

let tests =
  [
    test_sim_matches_eval;
    test_signature_is_apply;
    test_canonicalize_preserves;
    Alcotest.test_case "enumerated programs round-trip (symbolic + Sm)"
      `Slow test_enumerated_roundtrip;
    Alcotest.test_case "canonicalize units" `Quick test_canonicalize_units;
    Alcotest.test_case "synthesize units" `Quick test_synthesize_units;
    Alcotest.test_case "validator rejects out-of-range shuffles" `Quick
      test_validate_shuffle_ranges;
    Alcotest.test_case "rewritten kernels are bit-identical" `Slow
      test_bit_identity;
    Alcotest.test_case "diffusion cycle reduction" `Slow
      test_diffusion_cycle_reduction;
    Alcotest.test_case "shared-traffic bytes shrink" `Quick
      test_shared_traffic_shrinks;
  ]
