(* The serve loop's contract: the wire protocol round-trips, every
   failure mode at the request boundary maps to its documented error
   class, deadline overruns degrade to the analytic model instead of
   erroring, idempotent ids replay bit-identically, backpressure answers
   with busy + retry hint, and the shared compile memo stays bounded and
   re-verified. Every response asserted on here is also re-validated
   with Json_check — the loop's own self-check, exercised directly. *)

module Serve = Singe.Serve
module J = Sutil.Json

let parse_doc line =
  (match Sutil.Json_check.validate line with
  | Ok () -> ()
  | Error m -> Alcotest.failf "response fails Json_check: %s (%s)" m line);
  match J.parse line with
  | Ok doc -> doc
  | Error m -> Alcotest.failf "response not parseable: %s (%s)" m line

(* Answer one line on [st], asserting the response validates. *)
let handle st line =
  let resp, stop = Serve.handle_line st line in
  ignore (parse_doc resp);
  (resp, stop)

let sfield line key =
  Option.bind (J.member key (parse_doc line)) J.str

let bfield line key =
  Option.bind (J.member key (parse_doc line)) J.bool

let check_class line expect =
  Alcotest.(check (option string)) "status" (Some "error") (sfield line "status");
  Alcotest.(check (option string)) "class" (Some expect) (sfield line "class")

(* ---- wire protocol: qcheck round-trip ---- *)

let request_roundtrip_qcheck =
  let open QCheck in
  let str_gen =
    Gen.oneof
      [
        Gen.oneofl
          [
            "dme"; "hydrogen"; "viscosity"; "ws"; "";
            "a\"quote"; "back\\slash"; "tab\tnl\n"; "h\xc3\xa9llo";
          ];
        Gen.string_size ~gen:Gen.printable (Gen.int_bound 12);
      ]
  in
  let target_gen =
    Gen.map
      (fun ((((mech, kernel), (arch, version)), (warps, points, synth)),
            partition) ->
        {
          Serve.t_mech = mech;
          t_kernel = kernel;
          t_arch = arch;
          t_version = version;
          t_warps = warps;
          t_points = points;
          t_synth = synth;
          t_partition = partition;
        })
      Gen.(
        pair
          (pair
             (pair (pair str_gen str_gen) (pair str_gen str_gen))
             (triple (int_range 1 1024) (int_range 1 1_000_000)
                (opt Gen.bool)))
          (oneofl [ "hand"; "auto" ]))
  in
  let payload_gen =
    Gen.oneof
      [
        Gen.map (fun t -> Serve.Compile_req t) target_gen;
        Gen.map (fun t -> Serve.Predict_req t) target_gen;
        Gen.map
          (fun (t, faults, max_cycles) ->
            Serve.Run_req { target = t; faults; max_cycles })
          Gen.(
            triple target_gen
              (list_size (int_bound 3) str_gen)
              (opt (int_range 1 1_000_000_000)));
        Gen.map
          (fun (t, top_k) -> Serve.Tune_req { target = t; top_k })
          Gen.(pair target_gen (int_range 1 64));
        Gen.return Serve.Health_req;
        Gen.return Serve.Stats_req;
        Gen.return Serve.Shutdown_req;
      ]
  in
  let request_gen =
    Gen.map
      (fun ((id, deadline), payload) ->
        { Serve.req_id = id; req_deadline_ms = deadline; req = payload })
      Gen.(pair (pair (opt str_gen) (opt (int_range 1 1_000_000))) payload_gen)
  in
  let arb = make ~print:Serve.request_to_json request_gen in
  QCheck_alcotest.to_alcotest ~verbose:false
    (Test.make ~count:500 ~name:"serve request encode/decode round-trip" arb
       (fun r ->
         let line = Serve.request_to_json r in
         (match Sutil.Json_check.validate line with
         | Ok () -> ()
         | Error m -> Test.fail_reportf "encoded request invalid: %s" m);
         match Serve.parse_request line with
         | Ok r' -> r = r'
         | Error m -> Test.fail_reportf "decode failed: %s" m))

(* ---- one test per error class at the request boundary ---- *)

let test_bad_request_class () =
  let st = Serve.create () in
  let resp, stop = handle st "this is not json" in
  Alcotest.(check bool) "keeps serving" false stop;
  check_class resp "bad-request";
  let resp, _ = handle st {|{"kind":"frobnicate"}|} in
  check_class resp "bad-request";
  let resp, _ = handle st {|{"kind":"run","bogus":1}|} in
  check_class resp "bad-request";
  let resp, _ = handle st {|{"kind":"run","warps":0}|} in
  check_class resp "bad-request";
  let resp, _ = handle st {|{"kind":"run","mech":"unobtainium"}|} in
  check_class resp "bad-request";
  (* a fault spec that does not parse is a client error, not a server one *)
  let resp, _ =
    handle st {|{"kind":"run","mech":"hydrogen","faults":["zap:a=1"]}|}
  in
  check_class resp "bad-request";
  (* the id is echoed even on a rejected envelope *)
  let resp, _ = handle st {|{"id":"e1","kind":"run","bogus":1}|} in
  Alcotest.(check (option string)) "id echoed" (Some "e1") (sfield resp "id")

(* Regression: [deadline_ms <= 0] used to be clamped silently — on the
   wire it must be a bad-request, and in the config it must be rejected
   at [create] time, never defaulted into every request. *)
let test_nonpositive_deadline_rejected () =
  let st = Serve.create () in
  let resp, stop =
    handle st {|{"kind":"run","mech":"hydrogen","deadline_ms":0}|}
  in
  Alcotest.(check bool) "keeps serving" false stop;
  check_class resp "bad-request";
  let resp, _ =
    handle st {|{"kind":"run","mech":"hydrogen","deadline_ms":-5}|}
  in
  check_class resp "bad-request";
  (* a positive deadline on the same session still works *)
  let resp, _ =
    handle st
      {|{"kind":"predict","mech":"hydrogen","kernel":"viscosity","deadline_ms":2000}|}
  in
  Alcotest.(check (option string)) "status" (Some "ok") (sfield resp "status");
  List.iter
    (fun deadline_ms ->
      match
        Serve.create ~config:{ Serve.default_config with deadline_ms } ()
      with
      | exception Invalid_argument _ -> ()
      | _st ->
          Alcotest.failf "Serve.create accepted deadline_ms = %d" deadline_ms)
    [ 0; -1 ]

let test_compile_rejected_class () =
  let st = Serve.create () in
  (* warp specialization needs at least two warps: typed rejection *)
  let resp, _ = handle st {|{"kind":"run","mech":"hydrogen","warps":1}|} in
  check_class resp "compile-rejected";
  Alcotest.(check (option string))
    "exit analog" (Some "2")
    (Option.map string_of_int
       (Option.bind (J.member "exit_analog" (parse_doc resp)) J.int));
  (* a parseable fault spec that matches nothing in the trace *)
  let resp, _ =
    handle st
      {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"faults":["corrupt-shfl:warp=0,nth=100000"]}|}
  in
  check_class resp "compile-rejected";
  (* baseline divisibility is checked up front, not by an assert *)
  let resp, _ =
    handle st {|{"kind":"run","mech":"hydrogen","version":"baseline","points":100,"warps":4}|}
  in
  check_class resp "compile-rejected"

let test_simulation_fault_class () =
  let st = Serve.create () in
  let resp, _ =
    handle st
      {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"faults":["drop-arrive:warp=1,nth=0"]}|}
  in
  check_class resp "simulation-fault";
  let doc = parse_doc resp in
  (match J.member "fault" doc with
  | Some f ->
      Alcotest.(check (option string))
        "fault kind" (Some "barrier deadlock")
        (Option.bind (J.member "kind" f) J.str)
  | None -> Alcotest.fail "no fault object");
  Alcotest.(check (option string))
    "exit analog" (Some "3")
    (Option.map string_of_int (Option.bind (J.member "exit_analog" doc) J.int))

let test_busy_class () =
  let st = Serve.create () in
  let resp = Serve.busy_line st {|{"id":"b7","kind":"health"}|} in
  check_class resp "busy";
  Alcotest.(check (option string)) "id echoed" (Some "b7") (sfield resp "id");
  Alcotest.(check (option string))
    "retry hint" (Some "50")
    (Option.map string_of_int
       (Option.bind (J.member "retry_after_ms" (parse_doc resp)) J.int))

(* ---- corrupted outputs are reported, not hidden ---- *)

let test_corrupt_run_reported () =
  let st = Serve.create () in
  let resp, _ =
    handle st
      {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"faults":["corrupt-shfl:warp=0,nth=0"]}|}
  in
  Alcotest.(check (option string)) "status" (Some "ok") (sfield resp "status");
  Alcotest.(check (option bool))
    "outputs flagged" (Some false) (bfield resp "outputs_ok")

(* ---- deadline degradation ---- *)

(* cycles_per_ms = 1 pins any deadline at the 10k-cycle floor budget,
   which even the smallest kernel exceeds — the deterministic way to
   exercise the degraded paths. *)
let tight_config =
  { Serve.default_config with Serve.cycles_per_ms = 1 }

let test_run_degrades_to_model () =
  let st = Serve.create ~config:tight_config () in
  let resp, _ =
    handle st
      {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"deadline_ms":1}|}
  in
  Alcotest.(check (option string)) "status" (Some "ok") (sfield resp "status");
  Alcotest.(check (option bool)) "degraded" (Some true) (bfield resp "degraded");
  let doc = parse_doc resp in
  (match J.member "model" doc with
  | Some m ->
      let pos k =
        match Option.bind (J.member k m) J.num with
        | Some v when v > 0.0 -> ()
        | v ->
            Alcotest.failf "model.%s not positive: %s" k
              (match v with Some f -> string_of_float f | None -> "<missing>")
      in
      pos "predicted_cycles";
      pos "predicted_points_per_sec";
      pos "floor_cycles"
  | None -> Alcotest.fail "no model payload");
  match sfield resp "caveat" with
  | Some c ->
      Alcotest.(check bool)
        "caveat names the model" true
        (String.length c > 0)
  | None -> Alcotest.fail "no caveat on a degraded response"

let test_tune_degrades_to_model_ranking () =
  let st = Serve.create ~config:tight_config () in
  let resp, _ =
    handle st
      {|{"kind":"tune","mech":"hydrogen","kernel":"viscosity","points":2048,"top_k":2,"deadline_ms":1}|}
  in
  Alcotest.(check (option string)) "status" (Some "ok") (sfield resp "status");
  Alcotest.(check (option bool)) "degraded" (Some true) (bfield resp "degraded");
  let doc = parse_doc resp in
  (match Option.bind (J.member "candidates_ranked" doc) J.int with
  | Some n when n >= 1 -> ()
  | v ->
      Alcotest.failf "candidates_ranked = %s"
        (match v with Some n -> string_of_int n | None -> "<missing>"));
  match J.member "best" doc with
  | Some b ->
      (match Option.bind (J.member "warps" b) J.int with
      | Some w when w >= 2 -> ()
      | _ -> Alcotest.fail "degraded best has no warp count")
  | None -> Alcotest.fail "no best candidate"

(* hard deadlocks must NOT degrade — wrong is worse than slow *)
let test_deadlock_not_degraded () =
  let st = Serve.create ~config:tight_config () in
  let resp, _ =
    handle st
      {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"deadline_ms":100000,"faults":["drop-arrive:warp=1,nth=0"]}|}
  in
  check_class resp "simulation-fault"

(* ---- idempotent retries ---- *)

let test_idempotent_replay () =
  let st = Serve.create () in
  let line =
    {|{"id":"r9","kind":"run","mech":"hydrogen","points":2048,"warps":4,"deadline_ms":600000}|}
  in
  let first, _ = handle st line in
  let second, _ = handle st line in
  Alcotest.(check string) "bit-identical replay" first second;
  (* the same id with a different payload is a client bug, not a cache hit *)
  let resp, _ = handle st {|{"id":"r9","kind":"health"}|} in
  check_class resp "bad-request"

let test_identical_requests_deterministic () =
  (* Two cold processes (modeled as two fresh states) must produce the
     same bytes for the same request — nothing wall-clock-dependent in a
     normal response. *)
  let line =
    {|{"kind":"run","mech":"hydrogen","points":2048,"warps":4,"deadline_ms":600000}|}
  in
  let a, _ = handle (Serve.create ()) line in
  let b, _ = handle (Serve.create ()) line in
  Alcotest.(check string) "deterministic across states" a b

(* ---- lifecycle ---- *)

let test_shutdown_and_health () =
  let st = Serve.create () in
  let resp, _ = handle st {|{"kind":"health"}|} in
  Alcotest.(check (option bool)) "live" (Some true) (bfield resp "live");
  (match J.member "compile_cache" (parse_doc resp) with
  | Some _ -> ()
  | None -> Alcotest.fail "health has no compile_cache");
  let resp, stop = handle st {|{"kind":"shutdown"}|} in
  Alcotest.(check (option string)) "status" (Some "ok") (sfield resp "status");
  Alcotest.(check bool) "stops" true stop;
  Alcotest.(check int) "requests counted" 2 (Serve.requests_total st)

(* ---- the bounded compile memo ---- *)

let test_memo_lru_bound () =
  let prev_limit = Singe.Compile.memo_limit () in
  Fun.protect
    ~finally:(fun () -> Singe.Compile.set_memo_limit prev_limit)
    (fun () ->
      Singe.Compile.memo_clear ();
      Singe.Compile.set_memo_limit 2;
      let mech = Chem.Mech_gen.hydrogen () in
      let arch = Gpusim.Arch.kepler_k20c in
      let compile warps =
        ignore
          (Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
             Singe.Compile.Warp_specialized
             {
               (Singe.Compile.default_options arch) with
               Singe.Compile.n_warps = warps;
             })
      in
      let before = Singe.Compile.memo_stats () in
      compile 2;
      compile 3;
      compile 4;
      let after = Singe.Compile.memo_stats () in
      Alcotest.(check bool)
        "size bounded" true
        (after.Singe.Compile.size <= 2);
      Alcotest.(check bool)
        "eviction counted" true
        (after.Singe.Compile.evictions > before.Singe.Compile.evictions);
      (* LRU: warps=2 was evicted, warps=4 is still cached *)
      let h0 = after.Singe.Compile.hits in
      compile 4;
      Alcotest.(check int)
        "recent entry still hits" (h0 + 1)
        ((Singe.Compile.memo_stats ()).Singe.Compile.hits);
      let m0 = (Singe.Compile.memo_stats ()).Singe.Compile.misses in
      compile 2;
      Alcotest.(check int)
        "oldest entry was evicted" (m0 + 1)
        ((Singe.Compile.memo_stats ()).Singe.Compile.misses))

let test_memo_reverification () =
  let prev_limit = Singe.Compile.memo_limit () in
  Fun.protect
    ~finally:(fun () -> Singe.Compile.set_memo_limit prev_limit)
    (fun () ->
      Singe.Compile.memo_clear ();
      let mech = Chem.Mech_gen.hydrogen () in
      let arch = Gpusim.Arch.kepler_k20c in
      let compile () =
        Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
          Singe.Compile.Warp_specialized
          (Singe.Compile.default_options arch)
      in
      ignore (compile ());
      Alcotest.(check bool)
        "poison found an entry" true
        (Singe.Compile.memo_poison_for_test ());
      let before = Singe.Compile.memo_stats () in
      let c = compile () in
      let after = Singe.Compile.memo_stats () in
      Alcotest.(check int)
        "corruption detected" (before.Singe.Compile.corruptions + 1)
        after.Singe.Compile.corruptions;
      (* the recompiled artifact is sound: it simulates correctly *)
      let r = Singe.Compile.run c ~total_points:2048 ~max_cycles:50_000_000 in
      Alcotest.(check bool)
        "recompiled artifact verifies" true
        (r.Singe.Compile.max_rel_err < 1e-9))

let tests =
  [
    request_roundtrip_qcheck;
    Alcotest.test_case "bad-request class" `Quick test_bad_request_class;
    Alcotest.test_case "non-positive deadline rejected" `Quick
      test_nonpositive_deadline_rejected;
    Alcotest.test_case "compile-rejected class" `Quick
      test_compile_rejected_class;
    Alcotest.test_case "simulation-fault class" `Quick
      test_simulation_fault_class;
    Alcotest.test_case "busy class" `Quick test_busy_class;
    Alcotest.test_case "corrupted outputs reported" `Quick
      test_corrupt_run_reported;
    Alcotest.test_case "run degrades to model" `Quick
      test_run_degrades_to_model;
    Alcotest.test_case "tune degrades to model ranking" `Quick
      test_tune_degrades_to_model_ranking;
    Alcotest.test_case "deadlock is not degraded" `Quick
      test_deadlock_not_degraded;
    Alcotest.test_case "idempotent replay bit-identical" `Quick
      test_idempotent_replay;
    Alcotest.test_case "identical requests deterministic" `Quick
      test_identical_requests_deterministic;
    Alcotest.test_case "shutdown and health" `Quick test_shutdown_and_health;
    Alcotest.test_case "compile memo LRU bound" `Quick test_memo_lru_bound;
    Alcotest.test_case "compile memo re-verification" `Quick
      test_memo_reverification;
  ]
