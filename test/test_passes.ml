(* The pass-pipeline refactor: report structure (per-pass timings and
   artifact statistics), typed diagnostics for invalid options, and
   seeded-mutation negative tests proving each inter-pass validator catches
   the breakage it is responsible for — not a generic crash elsewhere. *)

let hydrogen = Chem.Mech_gen.hydrogen

let all_kernels =
  [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Conductivity;
    Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ]

let options ?(arch = Gpusim.Arch.kepler_k20c) ?(nw = 4) kernel =
  { (Singe.Compile.default_options arch) with
    Singe.Compile.n_warps = nw;
    max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
    ctas_per_sm_target = (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2)
  }

let compile ?arch ?nw ?(mech = hydrogen ())
    ?(version = Singe.Compile.Warp_specialized) kernel =
  Singe.Compile.compile_with_report ~validate:true mech kernel version
    (options ?arch ?nw kernel)

(* ---- report structure ---- *)

let expected_passes =
  [ "dfg-build"; "dfg-validate"; "mapping"; "mapping-validate"; "schedule";
    "schedule-validate"; "deadlock-check"; "lower"; "lower-validate" ]

let test_report_covers_pipeline () =
  let mech = Chem.Mech_gen.dme () in
  List.iter
    (fun kernel ->
      let _, report = compile ~mech kernel in
      let names =
        List.map
          (fun (r : Singe.Pass.record) -> r.Singe.Pass.pass_name)
          report.Singe.Pass.records
      in
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "%s has pass %s"
               (Singe.Kernel_abi.kernel_name kernel) n)
            true (List.mem n names))
        expected_passes;
      List.iter
        (fun (r : Singe.Pass.record) ->
          Alcotest.(check bool)
            (r.Singe.Pass.pass_name ^ " timing sane")
            true
            (r.Singe.Pass.wall_ns >= 0. && r.Singe.Pass.runs >= 1);
          Alcotest.(check bool) (r.Singe.Pass.pass_name ^ " ok") true
            r.Singe.Pass.ok;
          if r.Singe.Pass.kind = Singe.Pass.Transform then
            Alcotest.(check bool)
              (r.Singe.Pass.pass_name ^ " has artifact stats")
              true
              (r.Singe.Pass.stats <> []))
        report.Singe.Pass.records)
    all_kernels

let test_report_json () =
  let _, report = compile Singe.Kernel_abi.Viscosity in
  let json = Singe.Pass.report_to_json report in
  Alcotest.(check bool) "object" true
    (String.length json > 2 && json.[0] = '{');
  List.iter
    (fun needle ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) needle true (contains json needle))
    [ "\"passes\""; "\"dfg-build\""; "\"wall_ms\""; "\"stats\"" ]

(* ---- typed option diagnostics ---- *)

let check_rejected name opts kernel version =
  match
    Singe.Compile.compile_checked (hydrogen ()) kernel version opts
  with
  | Ok _ -> Alcotest.fail (name ^ ": accepted invalid options")
  | Error d ->
      Alcotest.(check (option string))
        (name ^ " provenance") (Some "options") d.Singe.Diagnostics.pass;
      Alcotest.(check bool)
        (name ^ " has a message") true
        (String.length d.Singe.Diagnostics.message > 0)

let test_invalid_options_are_typed () =
  let k = Singe.Kernel_abi.Viscosity in
  let base = options k in
  check_rejected "n_warps below ws minimum"
    { base with Singe.Compile.n_warps = 1 }
    k Singe.Compile.Warp_specialized;
  check_rejected "n_warps zero"
    { base with Singe.Compile.n_warps = 0 }
    k Singe.Compile.Baseline;
  check_rejected "n_warps beyond the architecture"
    { base with Singe.Compile.n_warps = 64 }
    k Singe.Compile.Warp_specialized;
  check_rejected "empty buffer ring"
    { base with Singe.Compile.buffer_slots = 0 }
    k Singe.Compile.Warp_specialized;
  check_rejected "max_barriers zero"
    { base with Singe.Compile.max_barriers = 0 }
    k Singe.Compile.Warp_specialized;
  check_rejected "max_barriers beyond hardware"
    { base with Singe.Compile.max_barriers = 17 }
    k Singe.Compile.Warp_specialized;
  check_rejected "zero occupancy target"
    { base with Singe.Compile.ctas_per_sm_target = 0 }
    k Singe.Compile.Warp_specialized;
  check_rejected "unloweable register budget"
    { base with Singe.Compile.freg_budget = Some 2 }
    k Singe.Compile.Warp_specialized;
  (* The same options go through as an exception on the thin wrapper... *)
  (match
     Singe.Compile.compile (hydrogen ()) k Singe.Compile.Warp_specialized
       { base with Singe.Compile.n_warps = 0 }
   with
  | _ -> Alcotest.fail "compile accepted n_warps = 0"
  | exception Singe.Diagnostics.Fail _ -> ());
  (* ...and valid options still compile. *)
  match
    Singe.Compile.compile_checked (hydrogen ()) k
      Singe.Compile.Warp_specialized base
  with
  | Ok _ -> ()
  | Error d -> Alcotest.fail (Singe.Diagnostics.to_string d)

(* ---- seeded-mutation negative tests ---- *)

let expect_rejected name = function
  | Ok () -> Alcotest.fail (name ^ ": validator accepted the mutation")
  | Error problems ->
      Alcotest.(check bool)
        (name ^ " reports problems") true (problems <> [])

(* Breaking a dependence edge so the graph cycles must be caught by the
   DFG well-formedness pass. *)
let test_dfg_cycle_is_caught () =
  let c, _ = compile Singe.Kernel_abi.Viscosity in
  let dfg = c.Singe.Compile.dfg in
  (* Find a compute op with an input and an output, and feed it its own
     result. *)
  let victim =
    Array.to_list dfg.Singe.Dfg.ops
    |> List.find (fun (op : Singe.Dfg.op) ->
           Array.length op.Singe.Dfg.inputs > 0
           && op.Singe.Dfg.output <> None)
  in
  let self = Option.get victim.Singe.Dfg.output in
  let ops =
    Array.map
      (fun (op : Singe.Dfg.op) ->
        if op.Singe.Dfg.id = victim.Singe.Dfg.id then
          { op with
            Singe.Dfg.inputs =
              Array.mapi
                (fun i v -> if i = 0 then self else v)
                op.Singe.Dfg.inputs }
        else op)
      dfg.Singe.Dfg.ops
  in
  let mutant = { dfg with Singe.Dfg.ops } in
  expect_rejected "self-cycle" (Singe.Dfg.validate mutant)

let test_dfg_broken_producer_is_caught () =
  let c, _ = compile Singe.Kernel_abi.Conductivity in
  let dfg = c.Singe.Compile.dfg in
  (* Rewire value 0 to claim a producer that defines a different value. *)
  let wrong =
    Array.to_list dfg.Singe.Dfg.ops
    |> List.find (fun (op : Singe.Dfg.op) ->
           match op.Singe.Dfg.output with
           | Some v -> v <> 0
           | None -> false)
  in
  let values =
    Array.map
      (fun (v : Singe.Dfg.value) ->
        if v.Singe.Dfg.vid = 0 then
          { v with Singe.Dfg.producer = wrong.Singe.Dfg.id }
        else v)
      dfg.Singe.Dfg.values
  in
  let mutant = { dfg with Singe.Dfg.values } in
  expect_rejected "broken producer edge" (Singe.Dfg.validate mutant)

let test_mapping_unmapped_op_is_caught () =
  let c, _ = compile Singe.Kernel_abi.Viscosity in
  let m = c.Singe.Compile.mapping in
  let op_warp = Array.copy m.Singe.Mapping.op_warp in
  op_warp.(Array.length op_warp / 2) <- m.Singe.Mapping.n_warps;
  expect_rejected "op mapped out of range"
    (Singe.Mapping.validate c.Singe.Compile.dfg
       { m with Singe.Mapping.op_warp })

(* Piling every operation onto one warp blows the FLOP and register-demand
   budgets the mapping validator enforces. *)
let test_mapping_overloaded_warp_is_caught () =
  let c, _ = compile ~nw:16 Singe.Kernel_abi.Viscosity in
  let m = c.Singe.Compile.mapping in
  let mutant =
    { m with
      Singe.Mapping.op_warp = Array.map (fun _ -> 0) m.Singe.Mapping.op_warp }
  in
  expect_rejected "all ops on one warp"
    (Singe.Mapping.validate c.Singe.Compile.dfg mutant)

(* Dropping a barrier wait from one warp's stream breaks the per-epoch
   producer/consumer pairing the schedule validator checks. *)
let test_schedule_dropped_barrier_is_caught () =
  let c, _ = compile Singe.Kernel_abi.Viscosity in
  let s = c.Singe.Compile.schedule in
  let victim = ref None in
  Array.iteri
    (fun w actions ->
      if !victim = None then
        Array.iteri
          (fun i a ->
            match a with
            | Singe.Schedule.A_wait _ when !victim = None ->
                victim := Some (w, i)
            | _ -> ())
          actions)
    s.Singe.Schedule.per_warp;
  match !victim with
  | None -> Alcotest.fail "schedule has no barrier wait to drop"
  | Some (w, i) ->
      let drop arr =
        Array.init
          (Array.length arr - 1)
          (fun j -> if j < i then arr.(j) else arr.(j + 1))
      in
      let per_warp = Array.copy s.Singe.Schedule.per_warp in
      let stamps = Array.copy s.Singe.Schedule.stamps in
      per_warp.(w) <- drop per_warp.(w);
      stamps.(w) <- drop stamps.(w);
      let mutant = { s with Singe.Schedule.per_warp; stamps } in
      expect_rejected "dropped barrier wait"
        (Singe.Schedule.validate mutant c.Singe.Compile.dfg
           c.Singe.Compile.mapping)

(* Over-assigning registers past the architectural cap must be caught by
   the lower-consistency pass. *)
let test_lower_overassigned_registers_is_caught () =
  let c, _ = compile Singe.Kernel_abi.Viscosity in
  let out = c.Singe.Compile.lowered in
  let program =
    { out.Singe.Lower.program with Gpusim.Isa.n_fregs = 200 }
  in
  expect_rejected "200 double registers per thread"
    (Singe.Lower.validate_output ~arch:Gpusim.Arch.kepler_k20c
       { out with Singe.Lower.program })

(* The pipeline surfaces a validator rejection as a diagnostic carrying the
   failing pass's name. *)
let test_validator_failure_has_provenance () =
  let pm = Singe.Pass.create "mutation-test" in
  match
    Singe.Pass.validate pm ~name:"dfg-validate" (fun () ->
        Error [ "synthetic breakage" ])
  with
  | () -> Alcotest.fail "validation pass accepted an Error result"
  | exception Singe.Diagnostics.Fail d ->
      Alcotest.(check (option string))
        "pass provenance" (Some "dfg-validate") d.Singe.Diagnostics.pass;
      let report = Singe.Pass.report pm in
      let rec_ =
        List.find
          (fun (r : Singe.Pass.record) ->
            r.Singe.Pass.pass_name = "dfg-validate")
          report.Singe.Pass.records
      in
      Alcotest.(check bool) "record marked failed" false rec_.Singe.Pass.ok

let tests =
  [
    Alcotest.test_case "report covers the pipeline" `Quick
      test_report_covers_pipeline;
    Alcotest.test_case "report serializes to JSON" `Quick test_report_json;
    Alcotest.test_case "invalid options are typed errors" `Quick
      test_invalid_options_are_typed;
    Alcotest.test_case "mutation: dfg cycle" `Quick test_dfg_cycle_is_caught;
    Alcotest.test_case "mutation: broken producer edge" `Quick
      test_dfg_broken_producer_is_caught;
    Alcotest.test_case "mutation: unmapped op" `Quick
      test_mapping_unmapped_op_is_caught;
    Alcotest.test_case "mutation: overloaded warp" `Quick
      test_mapping_overloaded_warp_is_caught;
    Alcotest.test_case "mutation: dropped barrier" `Quick
      test_schedule_dropped_barrier_is_caught;
    Alcotest.test_case "mutation: over-assigned registers" `Quick
      test_lower_overassigned_registers_is_caught;
    Alcotest.test_case "validator failures carry provenance" `Quick
      test_validator_failure_has_provenance;
  ]
