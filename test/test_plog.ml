(* PLOG pressure-log-interpolated rates: the rate law itself, parsing,
   CHEMKIN round-trip, and end-to-end code generation. *)

let arr a b e = { Chem.Reaction.pre_exp = a; temp_exp = b; activation = e }

let table =
  [ (0.1, arr 1.0e9 0.5 8000.0); (1.0, arr 5.0e10 0.2 10000.0);
    (10.0, arr 2.0e12 0.0 12000.0) ]

let test_plog_law () =
  let k p = Chem.Rates.plog_coeff table ~temp:1500.0 ~pressure:(p *. Chem.Rates.p_atm) in
  (* exact at the table's pressures *)
  List.iter
    (fun (p, a) ->
      let expect =
        Chem.Rates.arrhenius a 1500.0
      in
      let got = k p in
      Alcotest.(check bool)
        (Printf.sprintf "exact at %g atm (%.4g vs %.4g)" p got expect)
        true
        (Float.abs (got -. expect) /. expect < 1e-12))
    table;
  (* clamps outside the table *)
  Alcotest.(check (float 1e-6)) "clamps below" (k 0.1) (k 0.001);
  Alcotest.(check (float 1e-6)) "clamps above" (k 10.0) (k 1000.0);
  (* monotone between nodes when the fits are increasing in P *)
  Alcotest.(check bool) "interpolates between nodes" true
    (k 0.3 > k 0.1 && k 0.3 < k 1.0)

let toy_plog () =
  let sp name f = Chem.Species.of_formula ~name f in
  let species =
    [| sp "H2" "H2"; sp "H" "H"; sp "O2" "O2"; sp "O" "O"; sp "OH" "OH";
       sp "H2O" "H2O" |]
  in
  let reactions =
    [|
      Chem.Reaction.make ~label:"h2+o=oh+h" ~reactants:[ (0, 1); (3, 1) ]
        ~products:[ (4, 1); (1, 1) ]
        (Chem.Reaction.Simple (arr 5.1e4 2.67 6290.0));
      Chem.Reaction.make ~label:"h+o2=oh+o (plog)" ~reactants:[ (1, 1); (2, 1) ]
        ~products:[ (4, 1); (3, 1) ]
        (Chem.Reaction.Plog table);
      Chem.Reaction.make ~label:"oh+oh=h2o+o" ~reactants:[ (4, 2) ]
        ~products:[ (5, 1); (3, 1) ]
        (Chem.Reaction.Simple (arr 3.5e4 2.4 (-2110.0)));
    |]
  in
  let rng = Sutil.Prng.create 91L in
  let thermo =
    Array.map
      (fun s ->
        let atoms = float_of_int (Chem.Species.total_atoms s) in
        let a = [| 2.5 +. (0.4 *. atoms); 1e-4; 0.0; 0.0; 0.0;
                   Sutil.Prng.range rng (-2e4) 2e4; 3.0 +. atoms |] in
        { Chem.Thermo.t_low = 300.0; t_mid = 1000.0; t_high = 5000.0;
          low = Array.copy a; high = a })
      species
  in
  Chem.Mechanism.make ~name:"toy-plog" ~species ~reactions ~thermo ()

let test_parse_plog () =
  let text =
    "ELEMENTS\nH O\nEND\nSPECIES\nH O2 OH O\nEND\nREACTIONS\n\
     h+o2 = oh+o 1.0E+10 0.0 0.0\n\
    \  PLOG / 0.1 1.0E+9 0.5 8.0E+3 /\n\
    \  PLOG / 10.0 2.0E+12 0.0 1.2E+4 /\n\
    \  PLOG / 1.0 5.0E+10 0.2 1.0E+4 /\nEND"
  in
  match Chem.Chemkin_parser.parse text with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok parsed -> (
      match
        Chem.Chemkin_parser.rate_model_of_raw
          (List.hd parsed.Chem.Chemkin_parser.raw_reactions)
      with
      | Ok (Chem.Reaction.Plog t) ->
          Alcotest.(check int) "three entries" 3 (List.length t);
          Alcotest.(check bool) "sorted ascending" true
            (List.map fst t = [ 0.1; 1.0; 10.0 ])
      | Ok _ -> Alcotest.fail "expected PLOG"
      | Error e -> Alcotest.fail (Chem.Srcloc.to_string e))

let test_plog_falloff_conflict () =
  let text =
    "ELEMENTS\nH\nEND\nSPECIES\nH H2\nEND\nREACTIONS\n\
     h+h(+m) = h2(+m) 1.0E+12 0.0 0.0\n\
    \  LOW / 1.0E+14 0.0 0.0 /\n\
    \  PLOG / 1.0 1.0E+10 0.0 0.0 /\nEND"
  in
  match Chem.Chemkin_parser.parse text with
  | Error _ -> ()
  | Ok parsed -> (
      match
        Chem.Chemkin_parser.rate_model_of_raw
          (List.hd parsed.Chem.Chemkin_parser.raw_reactions)
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "PLOG+LOW should be rejected")

let test_plog_roundtrip () =
  let mech = toy_plog () in
  let text = Chem.Mech_io.chemkin_of_mechanism mech in
  match Chem.Chemkin_parser.parse text with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok parsed ->
      let raw =
        List.find
          (fun (r : Chem.Chemkin_parser.raw_reaction) ->
            r.Chem.Chemkin_parser.plog <> [])
          parsed.Chem.Chemkin_parser.raw_reactions
      in
      Alcotest.(check int) "entries survive" 3
        (List.length raw.Chem.Chemkin_parser.plog)

let test_plog_end_to_end () =
  let mech = toy_plog () in
  List.iter
    (fun (version, arch) ->
      let opts =
        { (Singe.Compile.default_options arch) with
          Singe.Compile.n_warps = 2;
          max_barriers = 16;
          ctas_per_sm_target = 1 }
      in
      let c = Singe.Compile.compile mech Singe.Kernel_abi.Chemistry version opts in
      let r = Singe.Compile.run c ~total_points:(32 * 32) in
      Alcotest.(check bool)
        (Printf.sprintf "PLOG kernel correct (%.2g)" r.Singe.Compile.max_rel_err)
        true
        (r.Singe.Compile.max_rel_err < 1e-9))
    [
      (Singe.Compile.Warp_specialized, Gpusim.Arch.kepler_k20c);
      (Singe.Compile.Baseline, Gpusim.Arch.kepler_k20c);
      (Singe.Compile.Warp_specialized, Gpusim.Arch.fermi_c2070);
    ]

let tests =
  [
    Alcotest.test_case "plog law: exact/clamp/interp" `Quick test_plog_law;
    Alcotest.test_case "parse PLOG" `Quick test_parse_plog;
    Alcotest.test_case "PLOG+LOW rejected" `Quick test_plog_falloff_conflict;
    Alcotest.test_case "PLOG round-trip" `Quick test_plog_roundtrip;
    Alcotest.test_case "PLOG end-to-end" `Quick test_plog_end_to_end;
  ]
