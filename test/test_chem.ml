(* Chemistry-substrate tests: species, thermo, transport fits, rate
   models, mechanisms, parsers, QSSA/stiffness structure, and reference
   kernels. *)

let hydrogen = Chem.Mech_gen.hydrogen
let dme = Chem.Mech_gen.dme
let heptane = Chem.Mech_gen.heptane

let test_formula_parse () =
  match Chem.Species.parse_formula "C2H5O2" with
  | Ok comp ->
      let sp = Chem.Species.make ~name:"t" comp in
      Alcotest.(check int) "C" 2 (Chem.Species.atom_count sp Chem.Species.C);
      Alcotest.(check int) "H" 5 (Chem.Species.atom_count sp Chem.Species.H);
      Alcotest.(check int) "O" 2 (Chem.Species.atom_count sp Chem.Species.O)
  | Error e -> Alcotest.fail e

let test_formula_reject () =
  match Chem.Species.parse_formula "C2Q5" with
  | Ok _ -> Alcotest.fail "accepted bad formula"
  | Error _ -> ()

let test_molecular_mass () =
  let water = Chem.Species.of_formula ~name:"H2O" "H2O" in
  Alcotest.(check (float 1e-3)) "water mass" 18.015
    (Chem.Species.molecular_mass water)

let test_thermo_consistency () =
  (* g = h - T s must hold by construction at every temperature. *)
  let mech = dme () in
  Array.iter
    (fun e ->
      List.iter
        (fun t ->
          let g = Chem.Thermo.gibbs_over_rt e t in
          let h = Chem.Thermo.h_over_rt e t in
          let s = Chem.Thermo.s_over_r e t in
          Alcotest.(check (float 1e-9)) "g = h - s" (h -. s) g)
        [ 400.0; 1000.0; 1500.0; 2500.0 ])
    mech.Chem.Mechanism.thermo

let test_transport_fit_quality () =
  (* The cubic log-space fit tracks the kinetic-theory curve within a few
     percent across the fitted range. *)
  let mech = hydrogen () in
  Array.iteri
    (fun i sp ->
      List.iter
        (fun t ->
          let exact = Chem.Transport.kinetic_viscosity sp t in
          let fitted = Chem.Transport.viscosity mech.Chem.Mechanism.transport i t in
          let rel = abs_float (fitted -. exact) /. exact in
          Alcotest.(check bool)
            (Printf.sprintf "viscosity fit %s at %g" sp.Chem.Species.name t)
            true (rel < 0.05))
        [ 400.0; 800.0; 1600.0; 2800.0 ])
    mech.Chem.Mechanism.species

let test_diffusion_fit_symmetric () =
  let mech = hydrogen () in
  let tr = mech.Chem.Mechanism.transport in
  let n = Array.length mech.Chem.Mechanism.species in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        Alcotest.(check (float 1e-12))
          "d_ij = d_ji"
          (Chem.Transport.diffusion tr i j 1500.0)
          (Chem.Transport.diffusion tr j i 1500.0)
    done
  done

let test_constant_bytes () =
  (* The paper's Fig. for constant footprints: 13.9 KB (DME) and 42.4 KB
     (heptane), decimal kilobytes. *)
  let n mech = Array.length (Chem.Mechanism.computed_species mech) in
  Alcotest.(check int) "dme viscosity constants" 13920
    (Chem.Transport.constant_bytes ~n:(n (dme ())));
  Alcotest.(check int) "heptane viscosity constants" 42432
    (Chem.Transport.constant_bytes ~n:(n (heptane ())))

let test_arrhenius_monotone () =
  let a = { Chem.Reaction.pre_exp = 1e10; temp_exp = 0.0; activation = 20000.0 } in
  let k1 = Chem.Rates.arrhenius a 1000.0 and k2 = Chem.Rates.arrhenius a 2000.0 in
  Alcotest.(check bool) "activated rate grows with T" true (k2 > k1)

let test_third_body_default () =
  let mech = hydrogen () in
  let r = Chem.Reaction.make ~reactants:[ (0, 1) ] ~products:[ (1, 2) ]
      (Chem.Reaction.Simple { Chem.Reaction.pre_exp = 1.0; temp_exp = 0.0; activation = 0.0 }) in
  ignore mech;
  let conc = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (float 1e-12)) "[M] = total" 6.0
    (Chem.Rates.third_body_conc r conc)

let test_irreversible_reverse_zero () =
  let mech = hydrogen () in
  let r = Chem.Reaction.make ~reverse:Chem.Reaction.Irreversible
      ~reactants:[ (0, 1) ] ~products:[ (1, 1) ]
      (Chem.Reaction.Simple { Chem.Reaction.pre_exp = 1e5; temp_exp = 0.0; activation = 0.0 }) in
  let kr = Chem.Rates.reverse_coeff mech.Chem.Mechanism.thermo r ~temp:1500.0
      ~forward:1.0 ~conc:[| 1.0; 1.0 |] in
  Alcotest.(check (float 0.0)) "kr = 0" 0.0 kr

let test_element_conservation () =
  (* Net production rates conserve every element exactly (balanced
     reactions), up to floating-point cancellation noise. *)
  let mech = hydrogen () in
  let n = Chem.Mechanism.n_species mech in
  let conc = Array.init n (fun i -> 0.1 +. (0.05 *. float_of_int i)) in
  let wdot =
    Chem.Rates.production_rates mech.Chem.Mechanism.thermo
      mech.Chem.Mechanism.reactions ~temp:1400.0 ~conc ~n
  in
  let wmax = Array.fold_left (fun a v -> Float.max a (abs_float v)) 0.0 wdot in
  for e = 0 to 5 do
    let total = ref 0.0 in
    Array.iteri
      (fun i w ->
        let comp = Chem.Species.composition_vector mech.Chem.Mechanism.species.(i) in
        total := !total +. (w *. float_of_int comp.(e)))
      wdot;
    Alcotest.(check bool) "element conserved" true
      (abs_float !total <= 1e-10 *. wmax)
  done

let test_mech_counts () =
  let check mech (nr, ns, nq, nst) =
    Alcotest.(check int) "reactions" nr (Chem.Mechanism.n_reactions mech);
    Alcotest.(check int) "species" ns (Chem.Mechanism.n_species mech);
    Alcotest.(check int) "qssa" nq (Chem.Mechanism.n_qssa mech);
    Alcotest.(check int) "stiff" nst (Chem.Mechanism.n_stiff mech)
  in
  check (dme ()) (175, 39, 9, 22);
  check (heptane ()) (283, 68, 16, 27)

let test_mech_validate () =
  List.iter
    (fun mech ->
      match Chem.Mechanism.validate mech with
      | Ok () -> ()
      | Error l -> Alcotest.fail (String.concat "; " l))
    [ hydrogen (); dme (); heptane () ]

let test_computed_species () =
  Alcotest.(check int) "heptane computes 52 species" 52
    (Array.length (Chem.Mechanism.computed_species (heptane ())));
  Alcotest.(check int) "dme computes 30 species" 30
    (Array.length (Chem.Mechanism.computed_species (dme ())))

let test_roundtrip mechf () =
  (* Write the four input files and load them back: structure must
     survive. *)
  let mech = mechf () in
  let chemkin = Chem.Mech_io.chemkin_of_mechanism mech in
  let thermo = Chem.Mech_io.thermo_of_mechanism mech in
  let transport = Chem.Mech_io.transport_of_mechanism mech in
  let sets = Chem.Mech_io.species_sets_of_mechanism mech in
  match
    Chem.Mech_io.load_strings ~species_sets:sets ~chemkin ~thermo ~transport
      ~name:mech.Chem.Mechanism.name ()
  with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok m2 ->
      Alcotest.(check int) "species" (Chem.Mechanism.n_species mech)
        (Chem.Mechanism.n_species m2);
      Alcotest.(check int) "reactions" (Chem.Mechanism.n_reactions mech)
        (Chem.Mechanism.n_reactions m2);
      Alcotest.(check int) "qssa" (Chem.Mechanism.n_qssa mech)
        (Chem.Mechanism.n_qssa m2);
      Alcotest.(check int) "stiff" (Chem.Mechanism.n_stiff mech)
        (Chem.Mechanism.n_stiff m2);
      (* a couple of random spot checks of parsed rate data *)
      Array.iteri
        (fun i (r : Chem.Reaction.t) ->
          let r2 = m2.Chem.Mechanism.reactions.(i) in
          Alcotest.(check bool) "same reactants" true
            (r.Chem.Reaction.reactants = r2.Chem.Reaction.reactants);
          Alcotest.(check bool) "same falloffness" true
            (Chem.Reaction.is_falloff r = Chem.Reaction.is_falloff r2))
        mech.Chem.Mechanism.reactions

let test_parse_figure4 () =
  (* The paper's Fig. 4 sample, lightly completed. *)
  let text = {|
ELEMENTS
H C O N
END
SPECIES
CH3 H CH4 H2 OH H2O H2 M2
END
REACTIONS
!1
ch3+h(+m) = ch4(+m)   2.138e+15  -0.40  0.000E+00
  low / 3.310E+30 -4.00 2108. /
  troe/0.0 1.E-15 1.E-15 40./
  h2/2/ h2o/5/
!2
ch4+h = ch3+h2        1.727E+04  3.00   8.224E+03
  rev / 6.610E+02 3.00 7.744E+03 /
!3
ch4+oh = ch3+h2o      1.930E+05  2.40   2.106E+03
  rev / 3.199E+04 2.40 1.678E+04 /
END
|} in
  match Chem.Chemkin_parser.parse text with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok parsed ->
      Alcotest.(check int) "3 reactions" 3
        (List.length parsed.Chem.Chemkin_parser.raw_reactions);
      let r1 = List.hd parsed.Chem.Chemkin_parser.raw_reactions in
      Alcotest.(check bool) "falloff" true r1.Chem.Chemkin_parser.falloff;
      Alcotest.(check bool) "troe present" true (r1.Chem.Chemkin_parser.troe <> None);
      Alcotest.(check int) "efficiencies" 2
        (List.length r1.Chem.Chemkin_parser.efficiencies);
      (match Chem.Chemkin_parser.rate_model_of_raw r1 with
      | Ok (Chem.Reaction.Falloff { kind = Chem.Reaction.Troe _; _ }) -> ()
      | Ok _ -> Alcotest.fail "expected troe falloff"
      | Error e -> Alcotest.fail (Chem.Srcloc.to_string e));
      let r2 = List.nth parsed.Chem.Chemkin_parser.raw_reactions 1 in
      Alcotest.(check bool) "rev" true (r2.Chem.Chemkin_parser.rev <> None)

let test_parser_errors () =
  (match Chem.Chemkin_parser.parse "REACTIONS\n???\nEND" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Chem.Chemkin_parser.parse "REACTIONS\n  low / 1 2 3 /\nEND" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted auxiliary before reaction"

let test_qssa_structure () =
  List.iter
    (fun mechf ->
      let mech = mechf () in
      let g = Chem.Qssa.build mech in
      Alcotest.(check bool) "well ordered" true (Chem.Qssa.well_ordered g);
      let frac =
        float_of_int (List.length (Chem.Qssa.reactions_touched g))
        /. float_of_int (Chem.Mechanism.n_reactions mech)
      in
      (* the paper: QSSA needs between half and two-thirds of the rates *)
      Alcotest.(check bool) "touched fraction plausible" true
        (frac > 0.3 && frac < 0.85))
    [ dme; heptane ]

let test_ref_kernels_sane () =
  let mech = hydrogen () in
  let grid = Chem.Grid.create mech ~points:8 ~seed:3L in
  for p = 0 to 7 do
    let temp = Chem.Grid.point_temperature grid p in
    let x = Chem.Grid.point_mole_fracs grid mech p in
    let visc = Chem.Ref_kernels.viscosity_point mech ~temp ~mole_frac:x in
    Alcotest.(check bool) "viscosity positive" true (visc > 0.0 && Float.is_finite visc);
    let d =
      Chem.Ref_kernels.diffusion_point mech ~temp
        ~pressure:(Chem.Grid.point_pressure grid p) ~mole_frac:x
    in
    Array.iter
      (fun v -> Alcotest.(check bool) "diffusion positive" true (v > 0.0 && Float.is_finite v))
      d;
    let r =
      Chem.Ref_kernels.chemistry_point mech ~temp
        ~pressure:(Chem.Grid.point_pressure grid p) ~mole_frac:x
        ~diffusion:(Chem.Grid.point_diffusion grid p)
    in
    Array.iter
      (fun v -> Alcotest.(check bool) "wdot finite" true (Float.is_finite v))
      r.Chem.Ref_kernels.wdot;
    Array.iter
      (fun g -> Alcotest.(check bool) "gamma in (0,1]" true (g > 0.0 && g <= 1.0))
      r.Chem.Ref_kernels.stiff_gammas
  done

let test_grid_normalized () =
  let mech = dme () in
  let grid = Chem.Grid.create mech ~points:16 ~seed:5L in
  for p = 0 to 15 do
    let x = Chem.Grid.point_mole_fracs grid mech p in
    let total = Array.fold_left ( +. ) 0.0 x in
    Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0 total;
    Array.iter (fun sp -> Alcotest.(check (float 0.0)) "qssa zero" 0.0 x.(sp))
      mech.Chem.Mechanism.qssa;
    Alcotest.(check bool) "T in thermo high range" true
      (Chem.Grid.point_temperature grid p >= 1000.0)
  done

let qcheck_troe_positive =
  QCheck.Test.make ~count:300 ~name:"troe blending positive and finite"
    QCheck.(
      quad (float_range 0.01 0.99) (float_range 50.0 3000.0)
        (float_range 50.0 3000.0) (float_range 1e-6 1e6))
    (fun (alpha, t3, t1, pr) ->
      let p = { Chem.Reaction.alpha; t3; t1; t2 = 0.0 } in
      let f = Chem.Rates.troe_blending p ~temp:1500.0 ~pr in
      Float.is_finite f && f > 0.0)

let tests =
  [
    Alcotest.test_case "formula parse" `Quick test_formula_parse;
    Alcotest.test_case "formula reject" `Quick test_formula_reject;
    Alcotest.test_case "molecular mass" `Quick test_molecular_mass;
    Alcotest.test_case "thermo g=h-Ts" `Quick test_thermo_consistency;
    Alcotest.test_case "transport fit quality" `Quick test_transport_fit_quality;
    Alcotest.test_case "diffusion fit symmetric" `Quick test_diffusion_fit_symmetric;
    Alcotest.test_case "constant footprints (13.9/42.4 KB)" `Quick test_constant_bytes;
    Alcotest.test_case "arrhenius monotone" `Quick test_arrhenius_monotone;
    Alcotest.test_case "third body default" `Quick test_third_body_default;
    Alcotest.test_case "irreversible kr=0" `Quick test_irreversible_reverse_zero;
    Alcotest.test_case "element conservation" `Quick test_element_conservation;
    Alcotest.test_case "mechanism counts (Fig 3)" `Quick test_mech_counts;
    Alcotest.test_case "mechanism validation" `Quick test_mech_validate;
    Alcotest.test_case "computed species counts" `Quick test_computed_species;
    Alcotest.test_case "round trip hydrogen" `Quick (test_roundtrip hydrogen);
    Alcotest.test_case "round trip dme" `Quick (test_roundtrip dme);
    Alcotest.test_case "round trip heptane" `Quick (test_roundtrip heptane);
    Alcotest.test_case "parse Fig 4 sample" `Quick test_parse_figure4;
    Alcotest.test_case "parser rejects garbage" `Quick test_parser_errors;
    Alcotest.test_case "qssa structure" `Quick test_qssa_structure;
    Alcotest.test_case "reference kernels sane" `Quick test_ref_kernels_sane;
    Alcotest.test_case "grid fields" `Quick test_grid_normalized;
    QCheck_alcotest.to_alcotest qcheck_troe_positive;
  ]
