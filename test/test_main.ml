let () =
  Alcotest.run "singe"
    [
      ("util", Test_util.tests);
      ("chem", Test_chem.tests);
      ("gpusim", Test_gpusim.tests);
      ("singe", Test_singe.tests);
      ("codegen", Test_codegen.tests);
      ("chem-comm", Test_chem_comm.tests);
      ("stats", Test_stats.tests);
      ("full-range", Test_full_range.tests);
      ("properties", Test_properties.tests);
      ("sri", Test_sri.tests);
      ("conductivity", Test_conductivity.tests);
      ("isa-text", Test_isa_text.tests);
      ("methane", Test_methane.tests);
      ("gpusim2", Test_gpusim2.tests);
      ("cuda-emit", Test_cuda_emit.tests);
      ("plog", Test_plog.tests);
      ("compiler-props", Test_compiler_props.tests);
      ("passes", Test_passes.tests);
      ("parallel", Test_parallel.tests);
      ("faults", Test_faults.tests);
      ("profile", Test_profile.tests);
      ("perf-model", Test_perf_model.tests);
      ("chip", Test_chip.tests);
      ("synth", Test_synth.tests);
      ("partition", Test_partition.tests);
      ("serve", Test_serve.tests);
      ("stencil", Test_stencil.tests);
    ]
