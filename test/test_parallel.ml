(* Multicore determinism: the Domain_pool fan-out must be observably
   identical to the serial sweep (result order, exception choice,
   simulated cycles, autotune winners), and the SM scheduler's
   event-queue fast paths must preserve the original cycle-stepping
   semantics (exact fast-forward, live deadlock detection). *)

open Gpusim

(* ---- Domain_pool ---- *)

let test_map_order () =
  let xs = List.init 100 Fun.id in
  let f x = (x * 7) mod 31 in
  let serial = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d equals serial" jobs)
        serial
        (Sutil.Domain_pool.parallel_map ~jobs f xs))
    [ 1; 2; 4 ]

exception Boom of int

let test_map_exception_order () =
  (* Items 3 and 7 fail; whichever worker hits its failure first, the
     caller must see the input-order-first one (3). *)
  let f x = if x = 3 || x = 7 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Sutil.Domain_pool.parallel_map ~jobs f (List.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d raises first failure" jobs)
            3 n)
    [ 1; 2; 4 ]

let test_map_nested_serial () =
  (* A parallel_map from inside a worker degrades to List.map, so the
     domain count stays bounded and the result is still in order. The
     degradation is counted, so a long-lived driver can see sweeps that
     accidentally stack parallelism. *)
  let before = Sutil.Domain_pool.nested_serial_calls () in
  let inner x = Sutil.Domain_pool.parallel_map ~jobs:4 (fun y -> x + y) [ 1; 2; 3 ] in
  let got = Sutil.Domain_pool.parallel_map ~jobs:2 inner [ 10; 20 ] in
  Alcotest.(check (list (list int))) "nested" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] got;
  Alcotest.(check int)
    "nested degradations counted" (before + 2)
    (Sutil.Domain_pool.nested_serial_calls ());
  Alcotest.(check int) "no leaked domains" 0 (Sutil.Domain_pool.live_domains ())

(* ---- strict job-count validation (--jobs / SINGE_JOBS) ---- *)

let test_jobs_of_string () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "%S parses" s)
        expect
        (match Sutil.Domain_pool.jobs_of_string s with
        | Ok n -> n
        | Error m -> Alcotest.failf "%S rejected: %s" s m))
    [ ("1", 1); ("4", 4); (" 8 ", 8); ("32", 32) ];
  List.iter
    (fun s ->
      match Sutil.Domain_pool.jobs_of_string s with
      | Ok n -> Alcotest.failf "%S accepted as %d" s n
      | Error _ -> ())
    [
      "0"; "-2"; "+3"; ""; "  "; "0x10"; "2_0"; "two"; "4.0";
      "99999999999999999999999999";
    ]

let test_env_jobs_rejected () =
  (* SINGE_JOBS garbage must raise the typed error, not silently fall
     back to some other parallelism. *)
  let orig = Sys.getenv_opt "SINGE_JOBS" in
  let restore () =
    (* There is no unsetenv in stdlib Unix: restore the original value,
       or pin the documented unset-default explicitly. *)
    Unix.putenv "SINGE_JOBS"
      (match orig with
      | Some v -> v
      | None -> string_of_int (Domain.recommended_domain_count ()))
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "SINGE_JOBS" "O2";
      (match Sutil.Domain_pool.default_jobs () with
      | n -> Alcotest.failf "SINGE_JOBS=O2 accepted as %d" n
      | exception Sutil.Domain_pool.Invalid_jobs msg ->
          Alcotest.(check bool)
            "message names the variable" true
            (String.length msg >= 10 && String.sub msg 0 10 = "SINGE_JOBS"));
      Unix.putenv "SINGE_JOBS" "0";
      match Sutil.Domain_pool.default_jobs () with
      | n -> Alcotest.failf "SINGE_JOBS=0 accepted as %d" n
      | exception Sutil.Domain_pool.Invalid_jobs _ -> ())

(* ---- simulated results across job counts ---- *)

let dme = lazy (Chem.Mech_gen.dme ())

let conductivity_result n_warps =
  let mech = Lazy.force dme in
  let arch = Arch.kepler_k20c in
  let options =
    { (Singe.Compile.default_options arch) with Singe.Compile.n_warps }
  in
  let c =
    Singe.Compile.compile_cached mech Singe.Kernel_abi.Conductivity
      Singe.Compile.Warp_specialized options
  in
  let r = Singe.Compile.run ~check:false c ~total_points:8192 in
  let s = r.Singe.Compile.machine.Machine.sim in
  ( r.Singe.Compile.machine.Machine.sm_cycles,
    s.Sm.counters.Sm.issued,
    s.Sm.counters.Sm.flops,
    s.Sm.counters.Sm.barrier_stalls,
    s.Sm.counters.Sm.icache_stall_cycles )

let test_sim_identical_across_jobs () =
  let warps = [ 2; 4; 8 ] in
  let serial = List.map conductivity_result warps in
  let parallel =
    Sutil.Domain_pool.parallel_map ~jobs:4 conductivity_result warps
  in
  List.iter2
    (fun (c1, i1, f1, b1, ic1) (c2, i2, f2, b2, ic2) ->
      Alcotest.(check int) "cycles" c1 c2;
      Alcotest.(check int) "issued" i1 i2;
      Alcotest.(check int) "flops" f1 f2;
      Alcotest.(check int) "barrier stalls" b1 b2;
      Alcotest.(check int) "icache stalls" ic1 ic2)
    serial parallel

let test_autotune_winner_across_jobs () =
  let mech = Lazy.force dme in
  let tune jobs =
    Singe.Autotune.tune ~warp_candidates:[ 2; 4 ] ~jobs mech
      Singe.Kernel_abi.Conductivity Singe.Compile.Warp_specialized
      Arch.kepler_k20c
  in
  let a = tune 1 and b = tune 4 in
  Alcotest.(check int) "tried" a.Singe.Autotune.tried b.Singe.Autotune.tried;
  Alcotest.(check int) "skipped" a.Singe.Autotune.skipped
    b.Singe.Autotune.skipped;
  Alcotest.(check int) "winner warps"
    a.Singe.Autotune.best.Singe.Autotune.options.Singe.Compile.n_warps
    b.Singe.Autotune.best.Singe.Autotune.options.Singe.Compile.n_warps;
  Alcotest.(check int) "winner ctas"
    a.Singe.Autotune.best.Singe.Autotune.options.Singe.Compile.ctas_per_sm_target
    b.Singe.Autotune.best.Singe.Autotune.options.Singe.Compile.ctas_per_sm_target;
  Alcotest.(check (float 0.0)) "winner throughput"
    a.Singe.Autotune.best.Singe.Autotune.throughput
    b.Singe.Autotune.best.Singe.Autotune.throughput

(* ---- SM event-queue fast paths ---- *)

let empty_banks n_warps = Array.init n_warps (fun _ -> Array.init 32 (fun _ -> [||]))
let empty_ibanks n_warps = Array.init n_warps (fun _ -> Array.init 32 (fun _ -> [||]))

let base_program ?(n_warps = 2) ?(barriers = 2) ~body () =
  {
    Isa.name = "test";
    n_warps;
    n_fregs = 8;
    n_iregs = 1;
    shared_doubles = 128;
    local_doubles = 0;
    barriers_used = barriers;
    point_map = Isa.Thread_per_point;
    prologue = Isa.Instrs [];
    body;
    const_bank = empty_banks n_warps;
    param_bank = empty_ibanks n_warps;
    const_mem = [| 3.5 |];
    groups =
      [|
        { Isa.group_name = "a"; fields = 1 };
        { Isa.group_name = "out"; fields = 1 };
      |];
    exp_consts_in_registers = false;
  }

let run_program ?(points = 128) p ~fill =
  let ctas = points / (p.Isa.n_warps * 32) in
  Machine.run ~fill_inputs:fill Arch.kepler_k20c
    { Machine.program = p; total_points = points; ctas }

(* A single warp whose whole body is one long-latency dependence chain:
   after each issue every warp is stalled, so the scheduler spends almost
   all its time in the idle fast-forward. The fast-forward must land
   exactly on the wake-up cycle: issuing the dependent instruction late
   would inflate the total, waking early would deflate it below the chain
   latency. *)
let test_fast_forward_exact () =
  let chain =
    Isa.Ld_global { dst = 0; group = 0; field = Isa.F_static 0; via_tex = true; pred = None }
    :: List.concat
         (List.init 8 (fun i ->
              [
                Isa.Arith
                  { op = Isa.Div;
                    dst = (i + 1) mod 2;
                    srcs = [| Isa.Sreg (i mod 2); Isa.Simm 1.5 |];
                    pred = None };
              ]))
    @ [ Isa.St_global { src = Isa.Sreg 0; group = 1; field = Isa.F_static 0; pred = None } ]
  in
  let p = base_program ~n_warps:1 ~body:(Isa.Instrs chain) () in
  let r = run_program ~points:32 p ~fill:(fun _ _ -> ()) in
  let cycles = r.Machine.sm_cycles in
  (* Eight dependent double-precision divides dominate: each costs
     [3 * dp_latency] (the Div latency multiplier) before its consumer
     may issue, so the total must be at least that and — fast-forward
     being exact — not meaningfully more than the chain plus fetch and
     memory overheads. *)
  let a = Arch.kepler_k20c in
  let chain_lower = 8 * 3 * a.Arch.arith_latency in
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d >= dependence chain %d" cycles chain_lower)
    true (cycles >= chain_lower);
  let upper =
    chain_lower + a.Arch.global_latency + (2 * a.Arch.icache_miss_latency) + 200
  in
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d <= %d (no overshoot)" cycles upper)
    true (cycles <= upper);
  (* Deterministic: a second identical run reproduces the count. *)
  let r2 = run_program ~points:32 p ~fill:(fun _ _ -> ()) in
  Alcotest.(check int) "rerun identical" cycles r2.Machine.sm_cycles

let test_deadlock_still_fires () =
  (* With the ready-bitset + event-queue loop, a cycle where no warp is
     ready and no stall event is pending must still be diagnosed, not
     fast-forwarded past. *)
  let p =
    base_program ~n_warps:2
      ~body:
        (Isa.If_warps
           { mask = 2; body = Isa.Instrs [ Isa.Bar_sync { bar = 0; count = 2 } ] })
      ()
  in
  let p = { p with Isa.point_map = Isa.Coop } in
  match run_program ~points:64 p ~fill:(fun _ _ -> ()) with
  | exception Sm.Simulation_fault _ -> ()
  | _ -> Alcotest.fail "deadlock not detected"

let tests =
  [
    Alcotest.test_case "parallel_map order" `Quick test_map_order;
    Alcotest.test_case "parallel_map exception order" `Quick
      test_map_exception_order;
    Alcotest.test_case "parallel_map nested" `Quick test_map_nested_serial;
    Alcotest.test_case "jobs_of_string strict" `Quick test_jobs_of_string;
    Alcotest.test_case "SINGE_JOBS garbage rejected" `Quick
      test_env_jobs_rejected;
    Alcotest.test_case "sim identical across jobs" `Slow
      test_sim_identical_across_jobs;
    Alcotest.test_case "autotune winner across jobs" `Slow
      test_autotune_winner_across_jobs;
    Alcotest.test_case "fast-forward exact" `Quick test_fast_forward_exact;
    Alcotest.test_case "deadlock still fires" `Quick test_deadlock_still_fires;
  ]
