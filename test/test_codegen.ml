(* Code-generation-focused tests: broadcast styles, the list scheduler,
   constant-bank overflow, warp indexing, parser corner cases, and the
   instruction-cache divergence property behind Fig. 9. *)

let hydrogen = Chem.Mech_gen.hydrogen
let dme = Chem.Mech_gen.dme

let run_with mech kernel version arch opts_f points =
  let opts = opts_f (Singe.Compile.default_options arch) in
  let c = Singe.Compile.compile mech kernel version opts in
  (c, Singe.Compile.run c ~total_points:points)

let test_broadcast_styles_agree () =
  (* The shared-memory mirror (Fermi) and shuffle (Kepler) broadcasts must
     produce identical values. *)
  let kepler_mirror =
    { Gpusim.Arch.kepler_k20c with
      Gpusim.Arch.broadcast = Gpusim.Arch.Shared_mirror; name = "kepler-mirror" }
  in
  let out arch =
    let _, r =
      run_with (hydrogen ()) Singe.Kernel_abi.Chemistry
        Singe.Compile.Warp_specialized arch
        (fun o -> { o with Singe.Compile.n_warps = 4 })
        (32 * 32)
    in
    r.Singe.Compile.outputs
  in
  let a = out Gpusim.Arch.kepler_k20c and b = out kepler_mirror in
  Array.iteri
    (fun f fa ->
      Array.iteri
        (fun p v ->
          Alcotest.(check (float 1e-12)) "same value" v b.(f).(p))
        fa)
    a

let test_list_scheduler_preserves_values () =
  (* The static scheduler only reorders independent instructions: results
     are bit-identical with it disabled. *)
  let out () =
    let _, r =
      run_with (hydrogen ()) Singe.Kernel_abi.Diffusion
        Singe.Compile.Warp_specialized Gpusim.Arch.kepler_k20c
        (fun o -> { o with Singe.Compile.n_warps = 4 })
        (32 * 32)
    in
    r.Singe.Compile.outputs
  in
  let a = out () in
  Unix.putenv "SINGE_NO_SCHED" "1";
  let b = (try out () with e -> Unix.putenv "SINGE_NO_SCHED" ""; raise e) in
  Unix.putenv "SINGE_NO_SCHED" "";
  Array.iteri
    (fun f fa ->
      Array.iteri
        (fun p v -> Alcotest.(check (float 0.0)) "bit-identical" v b.(f).(p))
        fa)
    a

let test_bank_overflow_correct () =
  (* A tiny register budget forces constants into warp-strided constant
     memory; values must be unaffected. *)
  let c, r =
    run_with (dme ()) Singe.Kernel_abi.Viscosity Singe.Compile.Warp_specialized
      Gpusim.Arch.kepler_k20c
      (fun o -> { o with Singe.Compile.n_warps = 6; freg_budget = Some 16 })
      (32 * 32)
  in
  let p = c.Singe.Compile.lowered.Singe.Lower.program in
  Alcotest.(check bool) "overflow region in use" true
    (Array.length p.Gpusim.Isa.const_mem > 0);
  Alcotest.(check bool) "correct" true (r.Singe.Compile.max_rel_err < 1e-9)

let test_warp_indexing_emitted () =
  (* Chemistry's stiffness loads select their diffusion field per warp:
     F_ireg selectors (Listing 4) must appear. *)
  let c, r =
    run_with (hydrogen ()) Singe.Kernel_abi.Chemistry
      Singe.Compile.Warp_specialized Gpusim.Arch.kepler_k20c
      (fun o -> { o with Singe.Compile.n_warps = 4 })
      (32 * 32)
  in
  let p = c.Singe.Compile.lowered.Singe.Lower.program in
  let indexed = ref false in
  Gpusim.Isa.iter_instrs p.Gpusim.Isa.body (fun i ->
      match i with
      | Gpusim.Isa.Ld_global { field = Gpusim.Isa.F_ireg _; _ }
      | Gpusim.Isa.St_global { field = Gpusim.Isa.F_ireg _; _ } ->
          indexed := true
      | _ -> ());
  Alcotest.(check bool) "warp-indexed access present" true !indexed;
  Alcotest.(check bool) "correct" true (r.Singe.Compile.max_rel_err < 1e-9)

let test_icache_divergence_property () =
  (* Fig. 9's mechanism: at 8 warps the naive switch fetches 8 divergent
     streams and misses far more than the overlaid version. *)
  let misses version =
    let _, r =
      run_with (dme ()) Singe.Kernel_abi.Viscosity version
        Gpusim.Arch.kepler_k20c
        (fun o -> { o with Singe.Compile.n_warps = 8 })
        32768
    in
    r.Singe.Compile.machine.Gpusim.Machine.sim.Gpusim.Sm.icache
      .Gpusim.Caches.Icache.misses
  in
  let naive = misses Singe.Compile.Naive_warp_specialized in
  let singe = misses Singe.Compile.Warp_specialized in
  Alcotest.(check bool)
    (Printf.sprintf "naive misses (%d) >> overlaid (%d)" naive singe)
    true
    (naive > 10 * max 1 singe)

let test_exp_register_ablation_faster () =
  let gf flag =
    let _, r =
      run_with (dme ()) Singe.Kernel_abi.Viscosity Singe.Compile.Warp_specialized
        Gpusim.Arch.kepler_k20c
        (fun o -> { o with Singe.Compile.n_warps = 6; exp_consts_in_registers = flag })
        32768
    in
    r.Singe.Compile.machine.Gpusim.Machine.gflops
  in
  Alcotest.(check bool) "register-fed exp is faster on Kepler" true
    (gf true > gf false)

let test_parser_lt_and_irreversible () =
  let text = {|
ELEMENTS
H O
END
SPECIES
H2 H O2 HO2
END
REACTIONS
h+o2 => ho2         1.0E+10  0.50  1.000E+03
h2+o2 = ho2+h       2.0E+08  0.00  2.400E+04
  LT / 100.0 -200.0 /
  DUPLICATE
END
|} in
  match Chem.Chemkin_parser.parse text with
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)
  | Ok parsed ->
      let r1 = List.hd parsed.Chem.Chemkin_parser.raw_reactions in
      Alcotest.(check bool) "irreversible" false r1.Chem.Chemkin_parser.reversible;
      let r2 = List.nth parsed.Chem.Chemkin_parser.raw_reactions 1 in
      Alcotest.(check bool) "LT parsed" true
        (r2.Chem.Chemkin_parser.landau_teller = Some (100.0, -200.0));
      Alcotest.(check bool) "duplicate" true r2.Chem.Chemkin_parser.duplicate;
      (match Chem.Chemkin_parser.rate_model_of_raw r2 with
      | Ok (Chem.Reaction.Landau_teller _) -> ()
      | _ -> Alcotest.fail "expected Landau-Teller")

let test_parser_d_exponent () =
  match Chem.Chemkin_parser.parse
          "ELEMENTS\nH\nEND\nSPECIES\nH H2\nEND\nREACTIONS\nh+h = h2 1.0D+10 0.0 0.0D0\nEND"
  with
  | Ok p ->
      let r = List.hd p.Chem.Chemkin_parser.raw_reactions in
      Alcotest.(check (float 1.0)) "D exponent" 1e10
        r.Chem.Chemkin_parser.arrhenius.Chem.Reaction.pre_exp
  | Error e -> Alcotest.fail (Chem.Srcloc.to_string e)

let test_dfg_fence_ordering () =
  (* Fences sequence after their inputs in the priority topological walk. *)
  let b = Singe.Dfg.Builder.create "f" in
  let a = Singe.Dfg.Builder.load b ~name:"a" ~group:"mole_frac" ~field:0 () in
  Singe.Dfg.Builder.fence b ~inputs:[| a |];
  let c = Singe.Dfg.Builder.compute b ~name:"c" ~inputs:[| a |]
      (Singe.Sexpr.mul (Singe.Sexpr.In 0) (Singe.Sexpr.Imm 2.0)) in
  Singe.Dfg.Builder.store b ~name:"s" ~group:"out" ~field:0 c;
  let dfg = Singe.Dfg.Builder.finish b in
  let order = Singe.Dfg.topo_order dfg in
  let pos x = ref 0 |> fun r -> Array.iteri (fun i o -> if o = x then r := i) order; !r in
  Alcotest.(check bool) "load < fence < compute" true
    (pos 0 < pos 1 && pos 1 < pos 2)

let test_spill_roundtrip_under_interleave () =
  (* Heavy pressure plus the list scheduler: spill/reload must still be
     exact on all three kernels. *)
  List.iter
    (fun kernel ->
      let _, r =
        run_with (hydrogen ()) kernel Singe.Compile.Warp_specialized
          Gpusim.Arch.fermi_c2070
          (fun o -> { o with Singe.Compile.n_warps = 4; freg_budget = Some 12 })
          (32 * 32)
      in
      Alcotest.(check bool)
        (Singe.Kernel_abi.kernel_name kernel ^ " exact under spills")
        true
        (r.Singe.Compile.max_rel_err < 1e-8))
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ]

let test_dme_end_to_end_slow () =
  (* The headline mechanism, all kernels, both versions, on Kepler. *)
  List.iter
    (fun (kernel, nw) ->
      List.iter
        (fun version ->
          let nw = if version = Singe.Compile.Baseline then 8 else nw in
          let _, r =
            run_with (dme ()) kernel version Gpusim.Arch.kepler_k20c
              (fun o ->
                { o with Singe.Compile.n_warps = nw;
                  max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
                  ctas_per_sm_target = (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2) })
              32768
          in
          Alcotest.(check bool) "correct" true (r.Singe.Compile.max_rel_err < 1e-8))
        [ Singe.Compile.Warp_specialized; Singe.Compile.Baseline ])
    [ (Singe.Kernel_abi.Viscosity, 6); (Singe.Kernel_abi.Diffusion, 6);
      (Singe.Kernel_abi.Chemistry, 8) ]

let tests =
  [
    Alcotest.test_case "broadcast styles agree" `Quick test_broadcast_styles_agree;
    Alcotest.test_case "list scheduler value-preserving" `Quick test_list_scheduler_preserves_values;
    Alcotest.test_case "constant-bank overflow" `Quick test_bank_overflow_correct;
    Alcotest.test_case "warp indexing emitted" `Quick test_warp_indexing_emitted;
    Alcotest.test_case "icache divergence (Fig 9 property)" `Quick test_icache_divergence_property;
    Alcotest.test_case "exp-constants ablation direction" `Quick test_exp_register_ablation_faster;
    Alcotest.test_case "parser: LT, =>, DUPLICATE" `Quick test_parser_lt_and_irreversible;
    Alcotest.test_case "parser: D exponents" `Quick test_parser_d_exponent;
    Alcotest.test_case "fence ordering" `Quick test_dfg_fence_ordering;
    Alcotest.test_case "spills exact under pressure" `Quick test_spill_roundtrip_under_interleave;
    Alcotest.test_case "dme end-to-end (slow)" `Slow test_dme_end_to_end_slow;
  ]
