test/test_chem_comm.ml: Alcotest Array Chem Float Gpusim List Printf Singe
