test/test_cuda_emit.ml: Alcotest Chem Gpusim List Singe String
