test/test_singe.ml: Alcotest Array Chem Float Gpusim Hashtbl List Printf QCheck QCheck_alcotest Singe String
