test/test_properties.ml: Array Chem Float Format Fun Gpusim Int64 List QCheck QCheck_alcotest Singe Sutil
