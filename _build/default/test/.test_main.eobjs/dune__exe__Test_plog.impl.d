test/test_plog.ml: Alcotest Array Chem Float Gpusim List Printf Singe Sutil
