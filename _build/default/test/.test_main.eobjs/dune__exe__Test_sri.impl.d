test/test_sri.ml: Alcotest Array Chem Float Gpusim List Printf Singe Sutil
