test/test_chem.ml: Alcotest Array Chem Float List Printf QCheck QCheck_alcotest String
