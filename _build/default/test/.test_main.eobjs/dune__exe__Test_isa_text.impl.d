test/test_isa_text.ml: Alcotest Chem Gpusim List Printf Singe String
