test/test_gpusim2.ml: Alcotest Arch Array Gpusim Isa Machine Memstate Printf Sm Trace
