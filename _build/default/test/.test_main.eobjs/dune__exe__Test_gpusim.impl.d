test/test_gpusim.ml: Alcotest Arch Array Caches Float Gpusim Isa List Machine Memstate Sm
