test/test_full_range.ml: Alcotest Array Chem Float Gpusim Printf Singe
