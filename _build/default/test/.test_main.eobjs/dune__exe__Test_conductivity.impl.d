test/test_conductivity.ml: Alcotest Array Chem Float Fun Gpusim List Printf Singe
