test/test_stats.ml: Alcotest Array Chem Gpusim List Printf Singe
