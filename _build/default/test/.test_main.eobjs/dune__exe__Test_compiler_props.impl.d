test/test_compiler_props.ml: Alcotest Chem Gpusim List Printf Singe String
