test/test_methane.ml: Alcotest Array Chem Gpusim List Printf Singe
