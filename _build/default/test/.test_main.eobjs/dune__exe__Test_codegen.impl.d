test/test_codegen.ml: Alcotest Array Chem Gpusim List Printf Singe Unix
