test/test_util.ml: Alcotest Array Fun Gen List Printf QCheck QCheck_alcotest Sutil
