(* The textual assembly: exact round-trips of every compiled kernel shape,
   and hand-written programs through the parser and validator. *)

let compile mech kernel version arch nw =
  let opts =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = nw;
      max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
      ctas_per_sm_target = 1 }
  in
  (Singe.Compile.compile mech kernel version opts).Singe.Compile.lowered
    .Singe.Lower.program

let test_roundtrip_exact () =
  let mech = Chem.Mech_gen.hydrogen () in
  List.iter
    (fun (kernel, version, arch, nw) ->
      let p = compile mech kernel version arch nw in
      match Gpusim.Isa_text.parse (Gpusim.Isa_text.emit p) with
      | Error e -> Alcotest.fail e
      | Ok q ->
          (* Emission canonicalizes Seq nesting, so compare canonical
             forms: emit (parse (emit p)) must equal emit p, and the
             parsed program must still validate. *)
          Alcotest.(check string)
            (Printf.sprintf "%s round-trips canonically" p.Gpusim.Isa.name)
            (Gpusim.Isa_text.emit p) (Gpusim.Isa_text.emit q);
          Alcotest.(check bool) "parsed program validates" true
            (Gpusim.Isa.validate q = Ok ()))
    [
      (Singe.Kernel_abi.Viscosity, Singe.Compile.Warp_specialized,
       Gpusim.Arch.kepler_k20c, 4);
      (Singe.Kernel_abi.Viscosity, Singe.Compile.Warp_specialized,
       Gpusim.Arch.fermi_c2070, 4);
      (Singe.Kernel_abi.Conductivity, Singe.Compile.Warp_specialized,
       Gpusim.Arch.kepler_k20c, 3);
      (Singe.Kernel_abi.Diffusion, Singe.Compile.Warp_specialized,
       Gpusim.Arch.kepler_k20c, 4);
      (Singe.Kernel_abi.Chemistry, Singe.Compile.Warp_specialized,
       Gpusim.Arch.kepler_k20c, 4);
      (Singe.Kernel_abi.Chemistry, Singe.Compile.Baseline,
       Gpusim.Arch.kepler_k20c, 4);
      (Singe.Kernel_abi.Viscosity, Singe.Compile.Naive_warp_specialized,
       Gpusim.Arch.kepler_k20c, 4);
    ]

let test_roundtrip_dme_slow () =
  let mech = Chem.Mech_gen.dme () in
  let p =
    compile mech Singe.Kernel_abi.Chemistry Singe.Compile.Warp_specialized
      Gpusim.Arch.kepler_k20c 8
  in
  match Gpusim.Isa_text.parse (Gpusim.Isa_text.emit p) with
  | Error e -> Alcotest.fail e
  | Ok q ->
      Alcotest.(check string) "dme chemistry round-trips"
        (Gpusim.Isa_text.emit p) (Gpusim.Isa_text.emit q)

let test_hand_written () =
  let text = {|
.program tiny
.warps 2 .fregs 4 .iregs 1 .shared 64 .local 2 .barriers 1
.pointmap coop
.expconsts false
.group temperature 1
.group out 1
.param w0 l0 = 5
.param w1 l0 = 9
.prologue {
  ld.p i0, 0
}
.body {
  ld.g f0, g0.f0
  fma f1, f0, imm(0x4000000000000000), imm(0x3ff0000000000000)
  if 0x1 {
    st.s f1, [0+1l]
    bar.arr 0, 2
  }
  if 0x2 {
    bar.sync 0, 2
    ld.s f2, [0+1l]
    st.l f2, 1
    ld.l f3, 1
    st.g f3, g1.f0 @l<31
  }
  switch {
    warp 0 {
      mov f2, f1
    }
    warp 1 {
      neg f2, f1
    }
  }
  bar.cta
}
|} in
  match Gpusim.Isa_text.parse text with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check string) "name" "tiny" p.Gpusim.Isa.name;
      Alcotest.(check int) "warps" 2 p.Gpusim.Isa.n_warps;
      (match Gpusim.Isa.validate p with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es));
      (* second round-trip is the identity *)
      let t2 = Gpusim.Isa_text.emit p in
      (match Gpusim.Isa_text.parse t2 with
      | Ok q ->
          Alcotest.(check string) "re-emission stable" t2
            (Gpusim.Isa_text.emit q)
      | Error e -> Alcotest.fail e)

let test_parse_errors () =
  List.iter
    (fun (fragment, why) ->
      let text =
        ".program x\n.warps 1 .fregs 2 .iregs 0 .shared 0 .local 0 .barriers \
         0\n.pointmap coop\n.expconsts false\n.group out 1\n.prologue {\n}\n\
         .body {\n" ^ fragment ^ "\n}\n"
      in
      match Gpusim.Isa_text.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("parser accepted " ^ why))
    [
      ("frobnicate f0, f1", "an unknown mnemonic");
      ("add f0", "a wrong arity");
      ("mov f0, q9", "a bad operand");
      ("ld.g f0, nonsense", "a bad global reference");
      ("if 0x1 {", "an unterminated block");
    ]

let tests =
  [
    Alcotest.test_case "compiled kernels round-trip" `Quick test_roundtrip_exact;
    Alcotest.test_case "dme chemistry round-trip (slow)" `Slow test_roundtrip_dme_slow;
    Alcotest.test_case "hand-written program" `Quick test_hand_written;
    Alcotest.test_case "parse errors rejected" `Quick test_parse_errors;
  ]
