(* CUDA source emission: structural invariants of the generated .cu text
   (we cannot compile CUDA here, so assert the constructs the paper's
   listings show are present and the text is well-formed). *)

let emit mech kernel version arch nw =
  let opts =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = nw;
      max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
      ctas_per_sm_target = 1 }
  in
  let c = Singe.Compile.compile mech kernel version opts in
  Singe.Cuda_emit.emit ~arch c.Singe.Compile.lowered.Singe.Lower.program

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let balanced text =
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '{' then incr depth
      else if c = '}' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    text;
  !ok && !depth = 0

let test_ws_kernel_constructs () =
  let cu =
    emit (Chem.Mech_gen.hydrogen ()) Singe.Kernel_abi.Chemistry
      Singe.Compile.Warp_specialized Gpusim.Arch.kepler_k20c 4
  in
  Alcotest.(check bool) "braces balanced" true (balanced cu);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains cu needle))
    [
      "bar.arrive";  (* Listing 2's named-barrier PTX *)
      "bar.sync";
      "named_barrier_sync";
      "shfl_double";  (* Listing 3's double shuffle on Kepler *)
      "__constant__ double const_bank";  (* striped constants, §5.2 *)
      "(1u << warp) &";  (* §5.1 warp bit-masks *)
      "extern \"C\" __global__";
      "for (int base = blockIdx.x * 32";  (* Coop batch loop *)
      "__shared__ double smem";
    ]

let test_baseline_constructs () =
  let cu =
    emit (Chem.Mech_gen.hydrogen ()) Singe.Kernel_abi.Viscosity
      Singe.Compile.Baseline Gpusim.Arch.kepler_k20c 4
  in
  Alcotest.(check bool) "braces balanced" true (balanced cu);
  Alcotest.(check bool) "grid-stride loop" true
    (contains cu "for (int idx = blockIdx.x * blockDim.x");
  Alcotest.(check bool) "LDG texture loads on Kepler" true (contains cu "__ldg(");
  Alcotest.(check bool) "constants via constant memory" true
    (contains cu "const_mem[");
  Alcotest.(check bool) "no named barriers in the baseline" false
    (contains cu "named_barrier_sync(");
  Alcotest.(check bool) "spill array when it spills" true
    (not (contains cu "lmem[") || contains cu "double lmem[")

let test_naive_switch () =
  let cu =
    emit (Chem.Mech_gen.hydrogen ()) Singe.Kernel_abi.Viscosity
      Singe.Compile.Naive_warp_specialized Gpusim.Arch.kepler_k20c 4
  in
  Alcotest.(check bool) "naive mode emits a warp switch" true
    (contains cu "switch (warp)")

let test_fermi_mirror () =
  let cu =
    emit (Chem.Mech_gen.hydrogen ()) Singe.Kernel_abi.Viscosity
      Singe.Compile.Warp_specialized Gpusim.Arch.fermi_c2070 4
  in
  Alcotest.(check bool) "no shuffle intrinsics on Fermi" false
    (contains cu "__shfl_sync");
  Alcotest.(check bool) "no LDG on Fermi" false (contains cu "__ldg(")

let test_all_kernels_emit () =
  List.iter
    (fun kernel ->
      let cu =
        emit (Chem.Mech_gen.hydrogen ()) kernel Singe.Compile.Warp_specialized
          Gpusim.Arch.kepler_k20c 4
      in
      Alcotest.(check bool)
        (Singe.Kernel_abi.kernel_name kernel ^ " balanced")
        true (balanced cu);
      Alcotest.(check bool) "nonempty" true (String.length cu > 1000))
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Conductivity;
      Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ]

let tests =
  [
    Alcotest.test_case "warp-specialized constructs" `Quick test_ws_kernel_constructs;
    Alcotest.test_case "baseline constructs" `Quick test_baseline_constructs;
    Alcotest.test_case "naive warp switch" `Quick test_naive_switch;
    Alcotest.test_case "fermi mirror broadcast" `Quick test_fermi_mirror;
    Alcotest.test_case "all kernels emit" `Quick test_all_kernels_emit;
  ]
