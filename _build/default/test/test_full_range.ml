(* Full-range NASA-7 thermodynamics: the branchless two-range Gibbs
   selection must match the (branching) host reference on grids spanning
   the polynomial mid temperature. *)

let hydrogen = Chem.Mech_gen.hydrogen
let dme = Chem.Mech_gen.dme

let run ?(full = true) ?(t_range = (300.0, 2500.0)) mech version nw arch =
  let opts =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = nw;
      max_barriers = 16;
      ctas_per_sm_target = 1;
      full_range_thermo = full }
  in
  let c = Singe.Compile.compile mech Singe.Kernel_abi.Chemistry version opts in
  Singe.Compile.run c ~t_range ~total_points:(32 * 32)

let test_cold_grid_matches_reference () =
  let r = run (hydrogen ()) Singe.Compile.Warp_specialized 4 Gpusim.Arch.kepler_k20c in
  Alcotest.(check bool)
    (Printf.sprintf "full-range matches reference (%.2g)" r.Singe.Compile.max_rel_err)
    true
    (r.Singe.Compile.max_rel_err < 1e-9)

let test_single_range_fails_cold () =
  (* The guard rail: with full_range_thermo off, a grid below t_mid must
     NOT match — otherwise the feature tests nothing. *)
  let r =
    run ~full:false (hydrogen ()) Singe.Compile.Warp_specialized 4
      Gpusim.Arch.kepler_k20c
  in
  Alcotest.(check bool)
    (Printf.sprintf "high-range-only is wrong below t_mid (%.2g)"
       r.Singe.Compile.max_rel_err)
    true
    (r.Singe.Compile.max_rel_err > 1e-9)

let test_hot_grid_agrees_both_ways () =
  (* Above t_mid the two compilations select the same polynomial; the
     select is exact at sel=1, so outputs are bit-identical. *)
  let a =
    run ~full:true ~t_range:(1000.0, 2500.0) (hydrogen ())
      Singe.Compile.Warp_specialized 4 Gpusim.Arch.kepler_k20c
  in
  let b =
    run ~full:false ~t_range:(1000.0, 2500.0) (hydrogen ())
      Singe.Compile.Warp_specialized 4 Gpusim.Arch.kepler_k20c
  in
  Array.iteri
    (fun f fa ->
      Array.iteri
        (fun p v ->
          Alcotest.(check (float 0.0)) "bit-identical above t_mid" v
            b.Singe.Compile.outputs.(f).(p))
        fa)
    a.Singe.Compile.outputs

let test_full_range_baseline () =
  let r = run (hydrogen ()) Singe.Compile.Baseline 4 Gpusim.Arch.kepler_k20c in
  Alcotest.(check bool) "baseline full-range correct" true
    (r.Singe.Compile.max_rel_err < 1e-9)

let test_full_range_fermi () =
  let r = run (hydrogen ()) Singe.Compile.Warp_specialized 4 Gpusim.Arch.fermi_c2070 in
  Alcotest.(check bool) "fermi full-range correct" true
    (r.Singe.Compile.max_rel_err < 1e-9)

let test_thermo_reference_continuity () =
  (* The NASA tables themselves: cp and g are (by construction of the
     generated mechanisms) continuous at t_mid to a loose tolerance. *)
  let mech = dme () in
  Array.iter
    (fun (e : Chem.Thermo.entry) ->
      let below = Chem.Thermo.gibbs_over_rt e (e.Chem.Thermo.t_mid -. 1e-9) in
      let above = Chem.Thermo.gibbs_over_rt e (e.Chem.Thermo.t_mid +. 1e-9) in
      Alcotest.(check bool) "gibbs continuous at t_mid" true
        (Float.abs (below -. above) /. Float.max 1.0 (Float.abs above) < 1e-3))
    mech.Chem.Mechanism.thermo

let test_full_range_dme_slow () =
  let r = run (dme ()) Singe.Compile.Warp_specialized 8 Gpusim.Arch.kepler_k20c in
  Alcotest.(check bool) "dme full-range correct" true
    (r.Singe.Compile.max_rel_err < 1e-8)

let tests =
  [
    Alcotest.test_case "cold grid matches reference" `Quick test_cold_grid_matches_reference;
    Alcotest.test_case "single-range wrong below t_mid" `Quick test_single_range_fails_cold;
    Alcotest.test_case "bit-identical above t_mid" `Quick test_hot_grid_agrees_both_ways;
    Alcotest.test_case "baseline full-range" `Quick test_full_range_baseline;
    Alcotest.test_case "fermi full-range" `Quick test_full_range_fermi;
    Alcotest.test_case "tables continuous at t_mid" `Quick test_thermo_reference_continuity;
    Alcotest.test_case "dme full-range (slow)" `Slow test_full_range_dme_slow;
  ]
