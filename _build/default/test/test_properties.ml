(* Property-based tests (QCheck) over the foundations: the PRNG, scalar
   expressions, thermodynamics, rate laws, QSSA structure, the grid
   generator, and ISA validation. *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest ~verbose:false
    (QCheck.Test.make ~count ~name gen prop)

(* ---------- PRNG ---------- *)

let test_prng_determinism =
  qtest "prng: same seed, same stream"
    QCheck.(int64)
    (fun seed ->
      let a = Sutil.Prng.create seed and b = Sutil.Prng.create seed in
      List.for_all
        (fun _ -> Sutil.Prng.int64 a = Sutil.Prng.int64 b)
        (List.init 16 Fun.id))

let test_prng_range =
  qtest "prng: range stays in bounds"
    QCheck.(pair int64 (pair (float_bound_exclusive 1000.0) pos_float))
    (fun (seed, (lo, w)) ->
      QCheck.assume (Float.is_finite (lo +. w) && w > 0.0);
      let rng = Sutil.Prng.create seed in
      let v = Sutil.Prng.range rng lo (lo +. w) in
      v >= lo && v <= lo +. w)

let test_prng_int_bounds =
  qtest "prng: int in [0, n)"
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Sutil.Prng.create seed in
      let v = Sutil.Prng.int rng n in
      v >= 0 && v < n)

let test_prng_split_independent =
  qtest "prng: split streams differ from parent"
    QCheck.(int64)
    (fun seed ->
      let rng = Sutil.Prng.create seed in
      let s = Sutil.Prng.split rng "child" in
      (* not a strong statistical claim — just that the derived stream is
         not the identical stream *)
      List.exists
        (fun _ -> Sutil.Prng.int64 s <> Sutil.Prng.int64 rng)
        (List.init 4 Fun.id))

(* ---------- Sexpr ---------- *)

let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun f -> Singe.Sexpr.Imm f) (float_range (-4.0) 4.0);
        map (fun f -> Singe.Sexpr.C f) (float_range (-4.0) 4.0);
        map (fun i -> Singe.Sexpr.In i) (int_range 0 3);
      ]
  in
  let rec go n =
    if n <= 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map2
              (fun op (a, b) -> Singe.Sexpr.Bin (op, a, b))
              (oneofl Gpusim.Isa.[ Add; Sub; Mul; Max; Min ])
              (pair (go (n - 1)) (go (n - 1))) );
          ( 1,
            map
              (fun (a, (b, c)) -> Singe.Sexpr.Fma3 (a, b, c))
              (pair (go (n - 1)) (pair (go (n - 1)) (go (n - 1)))) );
          ( 1,
            map
              (fun (d, b) -> Singe.Sexpr.Let (d, b))
              (pair (go (n - 1)) (go (n - 1))) );
          (1, map (fun a -> Singe.Sexpr.Un (Gpusim.Isa.Neg, a)) (go (n - 1)));
        ]
  in
  QCheck.make ~print:(Format.asprintf "%a" Singe.Sexpr.pp) (go 4)

let test_shape_blind_to_constants =
  qtest "sexpr: shape ignores C values only"
    (QCheck.pair gen_expr (QCheck.float_range (-9.0) 9.0))
    (fun (e, delta) ->
      let rec bump = function
        | Singe.Sexpr.C v -> Singe.Sexpr.C (v +. delta)
        | Singe.Sexpr.Imm v -> Singe.Sexpr.Imm v
        | Singe.Sexpr.In i -> Singe.Sexpr.In i
        | Singe.Sexpr.Var i -> Singe.Sexpr.Var i
        | Singe.Sexpr.Un (op, a) -> Singe.Sexpr.Un (op, bump a)
        | Singe.Sexpr.Bin (op, a, b) -> Singe.Sexpr.Bin (op, bump a, bump b)
        | Singe.Sexpr.Fma3 (a, b, c) -> Singe.Sexpr.Fma3 (bump a, bump b, bump c)
        | Singe.Sexpr.Let (d, b) -> Singe.Sexpr.Let (bump d, bump b)
      in
      Singe.Sexpr.shape e = Singe.Sexpr.shape (bump e))

let test_constants_count =
  qtest "sexpr: n_constants = length (constants)" gen_expr (fun e ->
      Singe.Sexpr.n_constants e = List.length (Singe.Sexpr.constants e))

let test_eval_matches_naive =
  qtest "sexpr: eval equals a naive interpreter" gen_expr (fun e ->
      let input i = float_of_int (i + 1) *. 0.37 in
      let rec naive env = function
        | Singe.Sexpr.Imm v | Singe.Sexpr.C v -> v
        | Singe.Sexpr.In i -> input i
        | Singe.Sexpr.Var i -> List.nth env i
        | Singe.Sexpr.Un (Gpusim.Isa.Neg, a) -> -.naive env a
        | Singe.Sexpr.Un (Gpusim.Isa.Sqrt, a) -> Float.sqrt (naive env a)
        | Singe.Sexpr.Un (Gpusim.Isa.Exp, a) -> Float.exp (naive env a)
        | Singe.Sexpr.Un (Gpusim.Isa.Log, a) -> Float.log (naive env a)
        | Singe.Sexpr.Un (_, _) -> assert false
        | Singe.Sexpr.Bin (op, a, b) -> (
            let x = naive env a and y = naive env b in
            match op with
            | Gpusim.Isa.Add -> x +. y
            | Gpusim.Isa.Sub -> x -. y
            | Gpusim.Isa.Mul -> x *. y
            | Gpusim.Isa.Div -> x /. y
            | Gpusim.Isa.Max -> Float.max x y
            | Gpusim.Isa.Min -> Float.min x y
            | _ -> assert false)
        | Singe.Sexpr.Fma3 (a, b, c) ->
            Float.fma (naive env a) (naive env b) (naive env c)
        | Singe.Sexpr.Let (d, b) -> naive (naive env d :: env) b
      in
      let consts = Array.of_list (Singe.Sexpr.constants e) in
      let got = Singe.Sexpr.eval e ~consts ~input in
      let want = naive [] e in
      (Float.is_nan got && Float.is_nan want) || got = want)

let test_flops_positive_on_ops =
  qtest "sexpr: flops consistent with depth" gen_expr (fun e ->
      Singe.Sexpr.flops e >= 0 && Singe.Sexpr.depth e >= 0)

(* ---------- thermodynamics ---------- *)

let gen_entry =
  QCheck.make
    QCheck.Gen.(
      map
        (fun seed ->
          let rng = Sutil.Prng.create (Int64.of_int seed) in
          let arr () =
            [|
              Sutil.Prng.range rng 1.0 5.0;
              Sutil.Prng.range rng (-1e-3) 1e-3;
              Sutil.Prng.range rng (-1e-6) 1e-6;
              Sutil.Prng.range rng (-1e-9) 1e-9;
              Sutil.Prng.range rng (-1e-13) 1e-13;
              Sutil.Prng.range rng (-5e4) 5e4;
              Sutil.Prng.range rng (-5.0) 15.0;
            |]
          in
          {
            Chem.Thermo.t_low = 300.0;
            t_mid = 1000.0;
            t_high = 5000.0;
            low = arr ();
            high = arr ();
          })
        (int_range 0 100000))

let test_gibbs_is_h_minus_s =
  qtest "thermo: g = h - s at any T"
    (QCheck.pair gen_entry (QCheck.float_range 300.0 4500.0))
    (fun (e, t) ->
      Float.abs
        (Chem.Thermo.gibbs_over_rt e t
        -. (Chem.Thermo.h_over_rt e t -. Chem.Thermo.s_over_r e t))
      < 1e-9)

let test_generated_tables_continuous =
  QCheck_alcotest.to_alcotest ~verbose:false
    (QCheck.Test.make ~count:1 ~name:"thermo: generated tables continuous"
       QCheck.unit
       (fun () ->
         List.for_all
           (fun mech ->
             Array.for_all
               (fun (e : Chem.Thermo.entry) ->
                 let tm = e.Chem.Thermo.t_mid in
                 Float.abs
                   (Chem.Thermo.gibbs_over_rt e (tm -. 1e-9)
                   -. Chem.Thermo.gibbs_over_rt e (tm +. 1e-9))
                 < 1e-6
                 && Float.abs
                      (Chem.Thermo.h_over_rt e (tm -. 1e-9)
                      -. Chem.Thermo.h_over_rt e (tm +. 1e-9))
                    < 1e-6)
               mech.Chem.Mechanism.thermo)
           [ Chem.Mech_gen.hydrogen (); Chem.Mech_gen.dme (); Chem.Mech_gen.heptane () ]))

(* ---------- rate laws ---------- *)

let test_arrhenius_positive =
  qtest "rates: arrhenius positive and increasing in A"
    QCheck.(pair (float_range 500.0 3000.0) (float_range 0.1 10.0))
    (fun (t, scale) ->
      let a =
        { Chem.Reaction.pre_exp = 1e10; temp_exp = 0.5; activation = 15000.0 }
      in
      let a2 = { a with Chem.Reaction.pre_exp = a.Chem.Reaction.pre_exp *. scale } in
      let k1 = Chem.Rates.arrhenius a t and k2 = Chem.Rates.arrhenius a2 t in
      k1 > 0.0 && Float.abs ((k2 /. k1) -. scale) < 1e-9 *. scale)

let test_troe_blending_bounded =
  qtest "rates: Troe blending factor in (0, 1]"
    QCheck.(pair (float_range 600.0 2500.0) (float_range (-6.0) 6.0))
    (fun (t, logpr) ->
      let p =
        { Chem.Reaction.alpha = 0.7; t3 = 100.0; t1 = 1500.0; t2 = 5000.0 }
      in
      let f = Chem.Rates.troe_blending p ~temp:t ~pr:(10.0 ** logpr) in
      f > 0.0 && f <= 1.0)

let test_equilibrium_detailed_balance =
  qtest "rates: kr = kf / Kc for equilibrium reverses"
    QCheck.(float_range 1000.0 2400.0)
    (fun t ->
      let mech = Chem.Mech_gen.hydrogen () in
      let n = Chem.Mechanism.n_species mech in
      let conc = Array.make n 1e-5 in
      Array.for_all
        (fun (r : Chem.Reaction.t) ->
          match r.Chem.Reaction.reverse with
          | Chem.Reaction.From_equilibrium ->
              let kf = Chem.Rates.forward_coeff r ~temp:t ~conc in
              let kc =
                Chem.Rates.equilibrium_constant mech.Chem.Mechanism.thermo r t
              in
              let kr =
                Chem.Rates.reverse_coeff mech.Chem.Mechanism.thermo r ~temp:t
                  ~forward:kf ~conc
              in
              kr = 0.0 || Float.abs ((kr *. kc /. kf) -. 1.0) < 1e-9
          | _ -> true)
        mech.Chem.Mechanism.reactions)

(* ---------- QSSA / stiffness structure ---------- *)

let test_qssa_well_ordered =
  QCheck_alcotest.to_alcotest ~verbose:false
    (QCheck.Test.make ~count:1 ~name:"qssa: dependency DAG is well ordered"
       QCheck.unit
       (fun () ->
         List.for_all
           (fun mech -> Chem.Qssa.well_ordered (Chem.Qssa.build mech))
           [ Chem.Mech_gen.hydrogen (); Chem.Mech_gen.dme (); Chem.Mech_gen.heptane () ]))

let test_qssa_eval_scales_bounded =
  qtest "qssa: eval produces finite nonnegative scalings" ~count:50
    QCheck.(int_range 0 10000)
    (fun seed ->
      let mech = Chem.Mech_gen.dme () in
      let g = Chem.Qssa.build mech in
      let rng = Sutil.Prng.create (Int64.of_int seed) in
      let nr = Chem.Mechanism.n_reactions mech in
      let rr_f = Array.init nr (fun _ -> Sutil.Prng.log_range rng 1e-12 1e3) in
      let rr_r = Array.init nr (fun _ -> Sutil.Prng.log_range rng 1e-12 1e3) in
      let scales = Chem.Qssa.eval g ~rr_f ~rr_r in
      Array.for_all (fun s -> Float.is_finite s && s >= 0.0) scales
      && Array.for_all (fun v -> Float.is_finite v && v >= 0.0) rr_f)

(* ---------- grid ---------- *)

let test_grid_mole_fractions_normalized =
  qtest "grid: computed mole fractions sum to 1" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let mech = Chem.Mech_gen.hydrogen () in
      let g = Chem.Grid.create mech ~points:32 ~seed:(Int64.of_int seed) in
      List.for_all
        (fun p ->
          let x = Chem.Grid.point_mole_fracs g mech p in
          Float.abs (Array.fold_left ( +. ) 0.0 x -. 1.0) < 1e-9)
        (List.init 32 Fun.id))

let test_grid_range_respected =
  qtest "grid: temperatures stay in the requested range" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let mech = Chem.Mech_gen.hydrogen () in
      let g =
        Chem.Grid.create ~t_range:(500.0, 800.0) mech ~points:64
          ~seed:(Int64.of_int seed)
      in
      List.for_all
        (fun p ->
          let t = Chem.Grid.point_temperature g p in
          t >= 500.0 && t <= 800.0)
        (List.init 64 Fun.id))

(* ---------- ISA validation ---------- *)

let valid_base_program () =
  let c =
    Singe.Compile.compile (Chem.Mech_gen.hydrogen ()) Singe.Kernel_abi.Viscosity
      Singe.Compile.Warp_specialized
      { (Singe.Compile.default_options Gpusim.Arch.kepler_k20c) with
        Singe.Compile.n_warps = 4 }
  in
  c.Singe.Compile.lowered.Singe.Lower.program

let test_validate_accepts_generated =
  QCheck_alcotest.to_alcotest ~verbose:false
    (QCheck.Test.make ~count:1 ~name:"isa: validate accepts generated code"
       QCheck.unit
       (fun () -> Gpusim.Isa.validate (valid_base_program ()) = Ok ()))

let test_validate_rejects_corruption =
  qtest "isa: validate rejects corrupted programs" ~count:20
    QCheck.(int_range 0 3)
    (fun kind ->
      let p = valid_base_program () in
      let bad_instr =
        match kind with
        | 0 -> Gpusim.Isa.Arith { op = Gpusim.Isa.Add; dst = p.Gpusim.Isa.n_fregs + 7;
                                  srcs = [| Gpusim.Isa.Simm 1.0; Gpusim.Isa.Simm 2.0 |]; pred = None }
        | 1 -> Gpusim.Isa.Bar_sync { bar = 99; count = 2 }
        | 2 -> Gpusim.Isa.Ld_local { dst = 0; slot = p.Gpusim.Isa.local_doubles + 5 }
        | _ -> Gpusim.Isa.St_shared { src = Gpusim.Isa.Sreg 0;
                                      addr = Gpusim.Isa.sh (p.Gpusim.Isa.shared_doubles + 3);
                                      pred = None }
      in
      let corrupted =
        { p with Gpusim.Isa.body =
            Gpusim.Isa.Seq [ p.Gpusim.Isa.body; Gpusim.Isa.Instrs [ bad_instr ] ] }
      in
      match Gpusim.Isa.validate corrupted with Ok () -> false | Error _ -> true)

let tests =
  [
    test_prng_determinism;
    test_prng_range;
    test_prng_int_bounds;
    test_prng_split_independent;
    test_shape_blind_to_constants;
    test_constants_count;
    test_eval_matches_naive;
    test_flops_positive_on_ops;
    test_gibbs_is_h_minus_s;
    test_generated_tables_continuous;
    test_arrhenius_positive;
    test_troe_blending_bounded;
    test_equilibrium_detailed_balance;
    test_qssa_well_ordered;
    test_qssa_eval_scales_bounded;
    test_grid_mole_fractions_normalized;
    test_grid_range_respected;
    test_validate_accepts_generated;
    test_validate_rejects_corruption;
  ]
