(* Second gpusim batch: memory state, predication, shuffles, shared-memory
   bank conflicts, local-memory spill path, warp-strided constants, the
   trace cursor, and per-lane functional semantics. *)

open Gpusim

let empty_banks n_warps = Array.init n_warps (fun _ -> Array.init 32 (fun _ -> [||]))

let base_program ?(n_warps = 2) ?(fregs = 8) ?(iregs = 1) ?(shared = 128)
    ?(local = 0) ?(barriers = 2) ?(const_mem = [| 3.5 |])
    ?(param_bank = None) ~body () =
  {
    Isa.name = "test2";
    n_warps;
    n_fregs = fregs;
    n_iregs = iregs;
    shared_doubles = shared;
    local_doubles = local;
    barriers_used = barriers;
    point_map = Isa.Thread_per_point;
    prologue = Isa.Instrs [];
    body;
    const_bank = empty_banks n_warps;
    param_bank =
      (match param_bank with
      | Some b -> b
      | None -> Array.init n_warps (fun _ -> Array.init 32 (fun _ -> [||])));
    const_mem;
    groups =
      [|
        { Isa.group_name = "a"; fields = 2 };
        { Isa.group_name = "out"; fields = 2 };
      |];
    exp_consts_in_registers = false;
  }

(* Returns (Sm counters-bearing result, memory). [fill] takes the memory
   only; the point count is fixed by the caller. *)
let run_program ?(points = 128) p ~fill =
  let ctas = points / (p.Isa.n_warps * 32) in
  let r =
    Machine.run
      ~fill_inputs:(fun mem _n -> fill mem)
      Arch.kepler_k20c
      { Machine.program = p; total_points = points; ctas }
  in
  (r.Machine.sim, r.Machine.mem)

let input_a = Array.init 128 (fun i -> float_of_int i)

let fill p mem =
  Memstate.set_field mem ~group:(Memstate.group_index p "a") ~field:0 input_a

let out p mem field =
  Memstate.get_field mem ~group:(Memstate.group_index p "out") ~field

let test_predicated_store () =
  (* @l==3: only lane 3 of each warp writes; other points stay zero. *)
  let p =
    base_program
      ~body:
        (Isa.Instrs
           [
             Isa.Ld_global { dst = 0; group = 0; field = Isa.F_static 0; via_tex = false; pred = None };
             Isa.St_global { src = Isa.Sreg 0; group = 1; field = Isa.F_static 0;
                             pred = Some (Isa.Lane_eq 3) };
           ])
      ()
  in
  let _, mem = run_program p ~fill:(fill p) in
  let o = out p mem 0 in
  Array.iteri
    (fun i v ->
      if i mod 32 = 3 then Alcotest.(check (float 0.0)) "lane 3 wrote" (float_of_int i) v
      else Alcotest.(check (float 0.0)) "others zero" 0.0 v)
    o

let test_shuffle_broadcast () =
  (* Lane 5's value broadcast to the whole warp. *)
  let p =
    base_program
      ~body:
        (Isa.Instrs
           [
             Isa.Ld_global { dst = 0; group = 0; field = Isa.F_static 0; via_tex = false; pred = None };
             Isa.Shfl { dst = 1; src = 0; lane = 5 };
             Isa.St_global { src = Isa.Sreg 1; group = 1; field = Isa.F_static 0; pred = None };
           ])
      ()
  in
  let _, mem = run_program p ~fill:(fill p) in
  let o = out p mem 0 in
  Array.iteri
    (fun i v ->
      let base = i / 32 * 32 in
      Alcotest.(check (float 0.0)) "broadcast of lane 5" (float_of_int (base + 5)) v)
    o

let test_local_spill_roundtrip_and_traffic () =
  let p =
    base_program ~local:2
      ~body:
        (Isa.Instrs
           [
             Isa.Ld_global { dst = 0; group = 0; field = Isa.F_static 0; via_tex = false; pred = None };
             Isa.St_local { src = 0; slot = 1 };
             Isa.Arith { op = Isa.Add; dst = 0; srcs = [| Isa.Simm 0.0; Isa.Simm 0.0 |]; pred = None };
             Isa.Ld_local { dst = 2; slot = 1 };
             Isa.St_global { src = Isa.Sreg 2; group = 1; field = Isa.F_static 0; pred = None };
           ])
      ()
  in
  let r, mem = run_program p ~fill:(fill p) in
  let o = out p mem 0 in
  Array.iteri
    (fun i v -> Alcotest.(check (float 0.0)) "spill round-trip" (float_of_int i) v)
    o;
  (* 2 local accesses x 128 threads x 8 bytes *)
  Alcotest.(check int) "local traffic counted" (2 * 128 * 8)
    r.Sm.counters.Sm.local_bytes

let test_bank_conflicts_charged () =
  (* lane stride 2 in doubles = two lanes per 8-byte-pair bank group ->
     serialization slots appear; stride 1 has none. *)
  let mk stride =
    base_program ~shared:2048
      ~body:
        (Isa.Instrs
           [
             Isa.St_shared { src = Isa.Simm 1.0; addr = Isa.sh_lane ~mul:stride 0; pred = None };
           ])
      ()
  in
  let conflicts stride =
    let r, _ = run_program (mk stride) ~fill:(fun _ -> ()) in
    r.Sm.counters.Sm.bank_conflict_slots
  in
  Alcotest.(check int) "stride 1 conflict-free" 0 (conflicts 1);
  Alcotest.(check bool) "stride 4 serializes" true (conflicts 4 > 0)

let test_warp_strided_constant () =
  (* cw[base]: warp w reads const_mem.(base + w). *)
  let p =
    base_program ~const_mem:[| 10.0; 20.0; 30.0 |]
      ~body:
        (Isa.Instrs
           [
             Isa.Mov { dst = 0; src = Isa.Sconst_warp 1; pred = None };
             Isa.St_global { src = Isa.Sreg 0; group = 1; field = Isa.F_static 0; pred = None };
           ])
      ()
  in
  let _, mem = run_program p ~fill:(fun _ -> ()) in
  let o = out p mem 0 in
  Array.iteri
    (fun i v ->
      let w = i / 32 mod 2 in
      Alcotest.(check (float 0.0)) "per-warp slot"
        (if w = 0 then 20.0 else 30.0)
        v)
    o

let test_param_bank_striping () =
  (* ld.p loads per-(warp,lane) integers; use as field selector. *)
  let n_warps = 2 in
  let param_bank =
    Array.init n_warps (fun w -> Array.init 32 (fun _ -> [| w |]))
  in
  let p =
    base_program ~param_bank:(Some param_bank)
      ~body:
        (Isa.Instrs
           [
             Isa.Ld_param { dst_i = 0; slot = 0 };
             Isa.Ld_global { dst = 0; group = 0; field = Isa.F_ireg 0; via_tex = false; pred = None };
             Isa.St_global { src = Isa.Sreg 0; group = 1; field = Isa.F_ireg 0; pred = None };
           ])
      ()
  in
  let fill mem =
    Memstate.set_field mem ~group:(Memstate.group_index p "a") ~field:0 input_a;
    Memstate.set_field mem ~group:(Memstate.group_index p "a") ~field:1
      (Array.map (fun v -> v +. 1000.0) input_a)
  in
  let _, mem = run_program p ~fill in
  let o0 = out p mem 0 and o1 = out p mem 1 in
  (* warp 0 (points 0-31, 64-95) copies field 0; warp 1 copies field 1 *)
  Alcotest.(check (float 0.0)) "w0 field0" 5.0 o0.(5);
  Alcotest.(check (float 0.0)) "w1 field1" 1037.0 o1.(37);
  Alcotest.(check (float 0.0)) "w0 leaves field1 alone" 0.0 o1.(5)

let test_memstate_isolation () =
  (* Two resident CTAs must have isolated shared memory. *)
  let p =
    base_program ~n_warps:2
      ~body:
        (Isa.Instrs
           [
             Isa.Ld_global { dst = 0; group = 0; field = Isa.F_static 0; via_tex = false; pred = None };
             Isa.St_shared { src = Isa.Sreg 0; addr = Isa.sh_lane 0; pred = None };
             Isa.Ld_shared { dst = 1; addr = Isa.sh_lane 0; pred = None };
             Isa.St_global { src = Isa.Sreg 1; group = 1; field = Isa.F_static 0; pred = None };
           ])
      ()
  in
  let _, mem = run_program ~points:256 p ~fill:(fun mem ->
      Memstate.set_field mem ~group:(Memstate.group_index p "a") ~field:0
        (Array.init 256 float_of_int))
  in
  let o = out p mem 0 in
  (* both warps of each CTA write the same shared slots; the LAST writer in
     warp order wins within a CTA, but CTA 1's points must see CTA 1 data,
     not CTA 0's. *)
  Alcotest.(check bool) "cta isolation" true (o.(128 + 5) >= 128.0)

let test_trace_cursor () =
  let p =
    base_program
      ~body:
        (Isa.Seq
           [
             Isa.Instrs
               [ Isa.Arith { op = Isa.Add; dst = 0; srcs = [| Isa.Simm 1.0; Isa.Simm 2.0 |]; pred = None } ];
             Isa.If_warps
               { mask = 1;
                 body = Isa.Instrs
                     [ Isa.Arith { op = Isa.Mul; dst = 1; srcs = [| Isa.Sreg 0; Isa.Sreg 0 |]; pred = None } ] };
           ])
      ()
  in
  let t = Trace.flatten Arch.kepler_k20c p in
  (* warp 1 skips the If body: fewer executed slots than warp 0 *)
  let count w =
    let cur = Trace.cursor () in
    let n = ref 0 in
    let rec go () =
      match Trace.peek t ~warp:w ~batches:1 cur with
      | Some _ ->
          incr n;
          Trace.advance t ~warp:w ~batches:1 cur;
          go ()
      | None -> ()
    in
    go ();
    !n
  in
  Alcotest.(check bool)
    (Printf.sprintf "warp 0 executes more (%d vs %d)" (count 0) (count 1))
    true
    (count 0 > count 1);
  Alcotest.(check bool) "footprints positive" true
    (Trace.body_footprint_bytes t ~warp:0 > 0)

let tests =
  [
    Alcotest.test_case "predicated store" `Quick test_predicated_store;
    Alcotest.test_case "shuffle broadcast" `Quick test_shuffle_broadcast;
    Alcotest.test_case "local spill path" `Quick test_local_spill_roundtrip_and_traffic;
    Alcotest.test_case "bank conflicts" `Quick test_bank_conflicts_charged;
    Alcotest.test_case "warp-strided constants" `Quick test_warp_strided_constant;
    Alcotest.test_case "param-bank striping" `Quick test_param_bank_striping;
    Alcotest.test_case "memstate CTA isolation" `Quick test_memstate_isolation;
    Alcotest.test_case "trace cursor" `Quick test_trace_cursor;
  ]
