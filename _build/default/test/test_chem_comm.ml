(* The three chemistry communication policies (staged / mixed / recompute)
   must agree with the host reference and with each other; single-consumer
   placement must eliminate those values from shared memory. *)

let hydrogen = Chem.Mech_gen.hydrogen
let dme = Chem.Mech_gen.dme

let policies =
  [
    ("staged", Singe.Compile.Chem_staged);
    ("recompute", Singe.Compile.Chem_recompute);
    ("mixed", Singe.Compile.Chem_mixed);
  ]

let run mech arch version nw comm =
  let opts =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = nw;
      max_barriers = 16;
      ctas_per_sm_target = 1;
      chem_comm = Some comm }
  in
  let c = Singe.Compile.compile mech Singe.Kernel_abi.Chemistry version opts in
  (c, Singe.Compile.run c ~total_points:(32 * 32))

let test_policies_match_reference () =
  List.iter
    (fun (name, comm) ->
      let _, r =
        run (hydrogen ()) Gpusim.Arch.kepler_k20c
          Singe.Compile.Warp_specialized 4 comm
      in
      Alcotest.(check bool)
        (name ^ " matches reference")
        true
        (r.Singe.Compile.max_rel_err < 1e-9))
    policies

let test_policies_match_each_other () =
  (* Policies reassociate a few sums, so outputs agree to rounding, not
     bitwise. *)
  let outs =
    List.map
      (fun (_, comm) ->
        let _, r =
          run (hydrogen ()) Gpusim.Arch.kepler_k20c
            Singe.Compile.Warp_specialized 4 comm
        in
        r.Singe.Compile.outputs)
      policies
  in
  match outs with
  | a :: rest ->
      List.iter
        (fun b ->
          Array.iteri
            (fun f fa ->
              Array.iteri
                (fun p v ->
                  let w = b.(f).(p) in
                  let scale = Float.max 1e-300 (Float.max (Float.abs v) (Float.abs w)) in
                  Alcotest.(check bool) "policies agree" true
                    (Float.abs (v -. w) /. scale < 1e-9 || Float.abs (v -. w) < 1e-280))
                fa)
            a)
        rest
  | [] -> assert false

let test_recompute_reduces_shared () =
  let shared comm =
    let c, _ = run (dme ()) Gpusim.Arch.kepler_k20c Singe.Compile.Warp_specialized 6 comm in
    c.Singe.Compile.lowered.Singe.Lower.program.Gpusim.Isa.shared_doubles
  in
  let st = shared Singe.Compile.Chem_staged in
  let rc = shared Singe.Compile.Chem_recompute in
  let mx = shared Singe.Compile.Chem_mixed in
  Alcotest.(check bool)
    (Printf.sprintf "recompute (%d) < staged (%d)" rc st)
    true (rc < st);
  Alcotest.(check bool)
    (Printf.sprintf "mixed (%d) <= staged (%d)" mx st)
    true (mx <= st)

let test_policies_on_fermi () =
  List.iter
    (fun (name, comm) ->
      let _, r =
        run (hydrogen ()) Gpusim.Arch.fermi_c2070
          Singe.Compile.Warp_specialized 4 comm
      in
      Alcotest.(check bool) (name ^ " on fermi") true
        (r.Singe.Compile.max_rel_err < 1e-9))
    policies

let test_naive_agrees_under_policies () =
  List.iter
    (fun (name, comm) ->
      let _, a =
        run (hydrogen ()) Gpusim.Arch.kepler_k20c
          Singe.Compile.Warp_specialized 4 comm
      in
      let _, b =
        run (hydrogen ()) Gpusim.Arch.kepler_k20c
          Singe.Compile.Naive_warp_specialized 4 comm
      in
      Array.iteri
        (fun f fa ->
          Array.iteri
            (fun p v ->
              Alcotest.(check (float 0.0))
                (name ^ ": overlay == naive")
                v
                b.Singe.Compile.outputs.(f).(p))
            fa)
        a.Singe.Compile.outputs)
    policies

let test_autotune_explores_policies () =
  (* The tuner must consider both staged and mixed for chemistry and return
     a numerically verified winner. *)
  let o =
    Singe.Autotune.tune ~points:(32 * 32)
      ~warp_candidates:[ 4 ] ~cta_targets:[ 1 ]
      (hydrogen ()) Singe.Kernel_abi.Chemistry
      Singe.Compile.Warp_specialized Gpusim.Arch.kepler_k20c
  in
  Alcotest.(check bool) "tried both policies" true (o.Singe.Autotune.tried >= 2);
  Alcotest.(check bool) "winner verified" true
    (o.Singe.Autotune.best.Singe.Autotune.result.Singe.Compile.max_rel_err < 1e-6)

let test_dme_policies_slow () =
  List.iter
    (fun (name, comm) ->
      let _, r =
        run (dme ()) Gpusim.Arch.kepler_k20c Singe.Compile.Warp_specialized 8 comm
      in
      Alcotest.(check bool) (name ^ " dme") true
        (r.Singe.Compile.max_rel_err < 1e-8))
    policies

let tests =
  [
    Alcotest.test_case "policies match reference" `Quick test_policies_match_reference;
    Alcotest.test_case "policies agree pairwise" `Quick test_policies_match_each_other;
    Alcotest.test_case "recompute shrinks shared" `Quick test_recompute_reduces_shared;
    Alcotest.test_case "policies on fermi" `Quick test_policies_on_fermi;
    Alcotest.test_case "naive agrees under policies" `Quick test_naive_agrees_under_policies;
    Alcotest.test_case "autotune explores policies" `Quick test_autotune_explores_policies;
    Alcotest.test_case "dme policies (slow)" `Slow test_dme_policies_slow;
  ]
