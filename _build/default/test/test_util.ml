(* Utility-library tests: deterministic PRNG and small dense linear
   algebra. *)

let test_prng_determinism () =
  let a = Sutil.Prng.create 42L and b = Sutil.Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sutil.Prng.int64 a) (Sutil.Prng.int64 b)
  done

let test_prng_bounds () =
  let t = Sutil.Prng.create 7L in
  for _ = 1 to 1000 do
    let v = Sutil.Prng.int t 17 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 17);
    let f = Sutil.Prng.range t 2.0 3.0 in
    Alcotest.(check bool) "float in range" true (f >= 2.0 && f < 3.0);
    let g = Sutil.Prng.log_range t 1e-3 1e3 in
    Alcotest.(check bool) "log range" true (g >= 1e-3 && g < 1e3)
  done

let test_prng_sample () =
  let t = Sutil.Prng.create 9L in
  let s = Sutil.Prng.sample t 5 10 in
  Alcotest.(check int) "sample size" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 10)) s

let test_prng_split_independent () =
  let t = Sutil.Prng.create 1L in
  let a = Sutil.Prng.split t "a" and b = Sutil.Prng.split t "b" in
  Alcotest.(check bool) "different streams" true
    (Sutil.Prng.int64 a <> Sutil.Prng.int64 b)

let test_solve_exact () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Sutil.Linalg.solve a [| 5.0; 10.0 |] in
  Alcotest.(check (float 1e-12)) "x0" 1.0 x.(0);
  Alcotest.(check (float 1e-12)) "x1" 3.0 x.(1)

let test_solve_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Sutil.Linalg.Singular (fun () ->
      ignore (Sutil.Linalg.solve a [| 1.0; 2.0 |]))

let test_polyfit_exact () =
  (* A cubic is recovered exactly from its own samples. *)
  let coeffs = [| 1.5; -2.0; 0.25; 0.125 |] in
  let pts =
    List.init 10 (fun i ->
        let x = float_of_int i in
        (x, Sutil.Linalg.polyval coeffs x))
  in
  let fit = Sutil.Linalg.polyfit ~degree:3 pts in
  Array.iteri
    (fun i c -> Alcotest.(check (float 1e-8)) (Printf.sprintf "c%d" i) c fit.(i))
    coeffs

let qcheck_solve =
  QCheck.Test.make ~count:200 ~name:"solve satisfies a*x = b"
    QCheck.(
      pair
        (array_of_size (Gen.return 3) (float_range (-10.) 10.))
        (array_of_size (Gen.return 9) (float_range (-10.) 10.)))
    (fun (b, flat) ->
      let a = Array.init 3 (fun i -> Array.sub flat (3 * i) 3) in
      (* make it diagonally dominant so it is well conditioned *)
      Array.iteri (fun i row -> row.(i) <- row.(i) +. 50.0) a;
      let x = Sutil.Linalg.solve a b in
      Array.for_all Fun.id
        (Array.init 3 (fun i ->
             let s = ref 0.0 in
             for j = 0 to 2 do
               s := !s +. (a.(i).(j) *. x.(j))
             done;
             abs_float (!s -. b.(i)) < 1e-6)))

let tests =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng sample" `Quick test_prng_sample;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "solve exact" `Quick test_solve_exact;
    Alcotest.test_case "solve singular" `Quick test_solve_singular;
    Alcotest.test_case "polyfit exact" `Quick test_polyfit_exact;
    QCheck_alcotest.to_alcotest qcheck_solve;
  ]
