(* Static analysis (Isa_stats) and roofline bounds: internal consistency,
   and the simulator must never beat a static ceiling. *)

let hydrogen = Chem.Mech_gen.hydrogen
let dme = Chem.Mech_gen.dme

let compile mech kernel version arch nw =
  let opts =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps = nw;
      max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
      ctas_per_sm_target = 1 }
  in
  Singe.Compile.compile mech kernel version opts

let test_mix_totals () =
  let c =
    compile (hydrogen ()) Singe.Kernel_abi.Viscosity
      Singe.Compile.Warp_specialized Gpusim.Arch.kepler_k20c 4
  in
  let p = c.Singe.Compile.lowered.Singe.Lower.program in
  let m = Gpusim.Isa_stats.mix_of_block p.Gpusim.Isa.body in
  Alcotest.(check int) "mix total = static count"
    (Gpusim.Isa.static_instr_count p.Gpusim.Isa.body)
    m.Gpusim.Isa_stats.total;
  let parts =
    m.Gpusim.Isa_stats.dp_arith + m.Gpusim.Isa_stats.dp_special
    + m.Gpusim.Isa_stats.global_mem + m.Gpusim.Isa_stats.shared_mem
    + m.Gpusim.Isa_stats.local_mem + m.Gpusim.Isa_stats.const_loads
    + m.Gpusim.Isa_stats.shuffles + m.Gpusim.Isa_stats.barriers
    + m.Gpusim.Isa_stats.moves
  in
  Alcotest.(check int) "categories partition the total" m.Gpusim.Isa_stats.total parts

let test_per_warp_sane () =
  let c =
    compile (dme ()) Singe.Kernel_abi.Chemistry Singe.Compile.Warp_specialized
      Gpusim.Arch.kepler_k20c 4
  in
  let p = c.Singe.Compile.lowered.Singe.Lower.program in
  let s = Gpusim.Isa_stats.of_program Gpusim.Arch.kepler_k20c p in
  Alcotest.(check int) "one row per warp" 4 (Array.length s.Gpusim.Isa_stats.warps);
  Array.iter
    (fun w ->
      Alcotest.(check bool) "warp executes instructions" true
        (w.Gpusim.Isa_stats.instrs > 0);
      Alcotest.(check bool) "warp contributes flops" true
        (w.Gpusim.Isa_stats.flops > 0))
    s.Gpusim.Isa_stats.warps;
  Alcotest.(check bool) "imbalance >= 1" true (s.Gpusim.Isa_stats.imbalance >= 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "mapping keeps warps balanced (%.2f)" s.Gpusim.Isa_stats.imbalance)
    true
    (s.Gpusim.Isa_stats.imbalance < 2.0);
  Alcotest.(check bool) "flops/point positive" true
    (s.Gpusim.Isa_stats.flops_per_point > 0.0)

let test_baseline_has_no_named_barriers () =
  (* The data-parallel baseline never synchronizes producer-consumer style;
     only the batch-end CTA barrier may appear. *)
  let c =
    compile (hydrogen ()) Singe.Kernel_abi.Viscosity Singe.Compile.Baseline
      Gpusim.Arch.kepler_k20c 4
  in
  let p = c.Singe.Compile.lowered.Singe.Lower.program in
  let named = ref 0 in
  Gpusim.Isa.iter_instrs p.Gpusim.Isa.body (fun i ->
      match i with
      | Gpusim.Isa.Bar_arrive _ | Gpusim.Isa.Bar_sync _ -> incr named
      | _ -> ());
  Alcotest.(check int) "no named barriers" 0 !named;
  let m = Gpusim.Isa_stats.mix_of_block p.Gpusim.Isa.body in
  Alcotest.(check bool) "at most the batch-end CTA barrier" true
    (m.Gpusim.Isa_stats.barriers <= 1);
  Alcotest.(check int) "no shuffles" 0 m.Gpusim.Isa_stats.shuffles

let test_roofline_bounds_simulation () =
  (* The binding static ceiling must dominate the simulated throughput. *)
  List.iter
    (fun (kernel, version, arch) ->
      let c = compile (hydrogen ()) kernel version arch 4 in
      let p = c.Singe.Compile.lowered.Singe.Lower.program in
      let roof = Gpusim.Roofline.analyze arch p in
      let r = Singe.Compile.run c ~total_points:(32 * 32) in
      let achieved = r.Singe.Compile.machine.Gpusim.Machine.points_per_sec in
      let ceiling = roof.Gpusim.Roofline.binding.Gpusim.Roofline.points_per_sec in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s on %s: %.3e <= %.3e (%s)"
           (Singe.Kernel_abi.kernel_name kernel)
           (match version with
           | Singe.Compile.Baseline -> "base"
           | _ -> "ws")
           arch.Gpusim.Arch.name achieved ceiling
           roof.Gpusim.Roofline.binding.Gpusim.Roofline.resource)
        true
        (achieved <= ceiling *. 1.02))
    [
      (Singe.Kernel_abi.Viscosity, Singe.Compile.Warp_specialized, Gpusim.Arch.kepler_k20c);
      (Singe.Kernel_abi.Viscosity, Singe.Compile.Baseline, Gpusim.Arch.kepler_k20c);
      (Singe.Kernel_abi.Diffusion, Singe.Compile.Warp_specialized, Gpusim.Arch.fermi_c2070);
      (Singe.Kernel_abi.Chemistry, Singe.Compile.Warp_specialized, Gpusim.Arch.kepler_k20c);
      (Singe.Kernel_abi.Chemistry, Singe.Compile.Baseline, Gpusim.Arch.fermi_c2070);
    ]

let test_roofline_bounds_all_sane () =
  let c =
    compile (hydrogen ()) Singe.Kernel_abi.Diffusion
      Singe.Compile.Warp_specialized Gpusim.Arch.kepler_k20c 4
  in
  let p = c.Singe.Compile.lowered.Singe.Lower.program in
  let roof = Gpusim.Roofline.analyze Gpusim.Arch.kepler_k20c p in
  Alcotest.(check bool) "at least issue+dp bounds" true
    (List.length roof.Gpusim.Roofline.bounds >= 2);
  let sorted =
    List.for_all2
      (fun a b ->
        a.Gpusim.Roofline.points_per_sec <= b.Gpusim.Roofline.points_per_sec)
      (List.filteri (fun i _ -> i < List.length roof.Gpusim.Roofline.bounds - 1)
         roof.Gpusim.Roofline.bounds)
      (List.tl roof.Gpusim.Roofline.bounds)
  in
  Alcotest.(check bool) "sorted tightest-first" true sorted

let test_ws_cuts_local_traffic () =
  (* §6.3's claim, statically: warp specialization reduces spill
     instructions relative to the data-parallel baseline. *)
  let local version =
    let c =
      compile (dme ()) Singe.Kernel_abi.Chemistry version
        Gpusim.Arch.kepler_k20c 8
    in
    (Gpusim.Isa_stats.mix_of_block
       c.Singe.Compile.lowered.Singe.Lower.program.Gpusim.Isa.body)
      .Gpusim.Isa_stats.local_mem
  in
  let base = local Singe.Compile.Baseline in
  let ws = local Singe.Compile.Warp_specialized in
  Alcotest.(check bool)
    (Printf.sprintf "ws spill instrs (%d) < baseline (%d)" ws base)
    true (ws < base)

let tests =
  [
    Alcotest.test_case "mix totals partition" `Quick test_mix_totals;
    Alcotest.test_case "per-warp stats sane" `Quick test_per_warp_sane;
    Alcotest.test_case "baseline barrier-free" `Quick test_baseline_has_no_named_barriers;
    Alcotest.test_case "roofline dominates simulation" `Quick test_roofline_bounds_simulation;
    Alcotest.test_case "roofline bounds sorted" `Quick test_roofline_bounds_all_sane;
    Alcotest.test_case "ws cuts spill instructions" `Quick test_ws_cuts_local_traffic;
  ]
