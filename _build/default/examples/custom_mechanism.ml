(* Building a mechanism programmatically — the API a downstream user
   would script against instead of CHEMKIN files — and running all three
   kernels on it.

   Run with: dune exec examples/custom_mechanism.exe *)

let () =
  (* A toy H2/O2 system. *)
  let sp name f = Chem.Species.of_formula ~name f in
  let species = [| sp "H2" "H2"; sp "H" "H"; sp "O2" "O2"; sp "O" "O";
                   sp "OH" "OH"; sp "H2O" "H2O" |] in
  let arr a b e = { Chem.Reaction.pre_exp = a; temp_exp = b; activation = e } in
  let reactions =
    [|
      Chem.Reaction.make ~label:"h2+o=oh+h" ~reactants:[ (0, 1); (3, 1) ]
        ~products:[ (4, 1); (1, 1) ]
        (Chem.Reaction.Simple (arr 5.1e4 2.67 6290.0));
      Chem.Reaction.make ~label:"h+o2=oh+o" ~reactants:[ (1, 1); (2, 1) ]
        ~products:[ (4, 1); (3, 1) ]
        (Chem.Reaction.Simple (arr 1.9e11 0.0 16440.0));
      Chem.Reaction.make ~label:"oh+h2=h2o+h" ~reactants:[ (4, 1); (0, 1) ]
        ~products:[ (5, 1); (1, 1) ]
        (Chem.Reaction.Simple (arr 2.1e5 1.51 3430.0));
      Chem.Reaction.make ~label:"h+oh(+m)=h2o(+m)" ~reactants:[ (1, 1); (4, 1) ]
        ~products:[ (5, 1) ]
        ~third_body:{ Chem.Reaction.enhanced = [ (5, 6.0) ] }
        (Chem.Reaction.Falloff
           { high = arr 1.0e12 0.2 0.0; low = arr 1.0e14 0.0 0.0;
             kind = Chem.Reaction.Lindemann });
    |]
  in
  (* Synthetic thermodynamics for the example (a real user parses a THERMO
     file instead). *)
  let rng = Sutil.Prng.create 11L in
  let thermo =
    Array.map
      (fun s ->
        let atoms = float_of_int (Chem.Species.total_atoms s) in
        let a1 = 2.5 +. (0.4 *. atoms) in
        let low = [| a1; 1e-4; 0.0; 0.0; 0.0;
                     -2000.0 *. atoms +. Sutil.Prng.range rng (-500.) 500.;
                     3.0 +. atoms |] in
        { Chem.Thermo.t_low = 300.0; t_mid = 1000.0; t_high = 5000.0;
          low; high = Array.copy low })
      species
  in
  let mech =
    Chem.Mechanism.make ~name:"toy-h2" ~species ~reactions ~thermo
      ~qssa:[| 3 |] ~stiff:[| 1 |] ()
  in
  (match Chem.Mechanism.validate mech with
  | Ok () -> Format.printf "built %a@." Chem.Mechanism.pp mech
  | Error l -> failwith (String.concat "; " l));
  let arch = Gpusim.Arch.fermi_c2070 in
  let options =
    { (Singe.Compile.default_options arch) with Singe.Compile.n_warps = 2 }
  in
  List.iter
    (fun kernel ->
      let c = Singe.Compile.compile mech kernel Singe.Compile.Warp_specialized options in
      let r = Singe.Compile.run c ~total_points:8192 in
      Printf.printf "%-10s: %.3g points/s, rel. error %.2g\n"
        (Singe.Kernel_abi.kernel_name kernel)
        r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
        r.Singe.Compile.max_rel_err)
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ]
