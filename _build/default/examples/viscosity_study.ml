(* Fig. 9 in miniature: how warp count and code-generation strategy affect
   the DME viscosity kernel. Naive per-warp code thrashes the instruction
   cache once enough divergent paths exist; Singe's overlaid code keeps
   one shared instruction stream and peaks at warp counts that divide the
   30 computed species.

   Run with: dune exec examples/viscosity_study.exe *)

let () =
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  Printf.printf "%-10s %14s %14s %12s\n" "warps/CTA" "naive pts/s" "singe pts/s"
    "icache miss";
  List.iter
    (fun n_warps ->
      let run version =
        let options =
          { (Singe.Compile.default_options arch) with Singe.Compile.n_warps }
        in
        let c =
          Singe.Compile.compile mech Singe.Kernel_abi.Viscosity version options
        in
        Singe.Compile.run c ~total_points:32768 ~ctas:128
      in
      match (run Singe.Compile.Naive_warp_specialized, run Singe.Compile.Warp_specialized) with
      | naive, singe ->
          Printf.printf "%-10d %14.3g %14.3g %12d\n%!" n_warps
            naive.Singe.Compile.machine.Gpusim.Machine.points_per_sec
            singe.Singe.Compile.machine.Gpusim.Machine.points_per_sec
            naive.Singe.Compile.machine.Gpusim.Machine.sim.Gpusim.Sm.icache
              .Gpusim.Caches.Icache.misses
      | exception Failure msg -> Printf.printf "%-10d (%s)\n%!" n_warps msg)
    [ 2; 3; 5; 6; 10; 15 ]
