examples/quickstart.mli:
