examples/transport_suite.mli:
