examples/full_range_combustion.mli:
