examples/quickstart.ml: Chem Filename Format Gpusim List Printf Singe Sys Unix
