examples/custom_mechanism.ml: Array Chem Format Gpusim List Printf Singe String Sutil
