examples/full_range_combustion.ml: Chem Gpusim Printf Singe
