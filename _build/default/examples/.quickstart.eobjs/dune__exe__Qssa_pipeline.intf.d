examples/qssa_pipeline.mli:
