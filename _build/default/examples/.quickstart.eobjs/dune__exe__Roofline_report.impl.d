examples/roofline_report.ml: Chem Gpusim List Printf Singe
