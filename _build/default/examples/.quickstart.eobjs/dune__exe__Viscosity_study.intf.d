examples/viscosity_study.mli:
