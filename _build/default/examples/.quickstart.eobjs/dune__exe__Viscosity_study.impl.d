examples/viscosity_study.ml: Chem Gpusim List Printf Singe
