examples/qssa_pipeline.ml: Array Chem Gpusim List Printf Singe String
