examples/autotune_demo.ml: Chem Gpusim Printf Singe
