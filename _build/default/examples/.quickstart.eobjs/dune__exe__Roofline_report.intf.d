examples/roofline_report.mli:
