examples/transport_suite.ml: Array Chem Gpusim List Printf Singe
