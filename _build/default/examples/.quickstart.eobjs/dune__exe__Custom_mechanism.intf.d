examples/custom_mechanism.mli:
