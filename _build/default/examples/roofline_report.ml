(* Bound analysis across the whole evaluation matrix.

   For every kernel x version x architecture, prints the static roofline
   ceiling, the binding resource, and the simulated throughput — the §6
   narrative in one table: viscosity is math-throughput-bound, the
   data-parallel baselines are local-memory (spill) bound, and the
   warp-specialized chemistry kernels run far below their static ceiling
   because synchronization (which a roofline cannot see) dominates.

   Run with: dune exec examples/roofline_report.exe *)

let () =
  let mech = Chem.Mech_gen.dme () in
  Printf.printf "%-10s %-5s %-7s %-28s %12s %12s %5s\n" "kernel" "ver"
    "arch" "binding resource" "ceiling" "achieved" "eff";
  List.iter
    (fun kernel ->
      List.iter
        (fun (version, vname) ->
          List.iter
            (fun (arch : Gpusim.Arch.t) ->
              let opts =
                { (Singe.Compile.default_options arch) with
                  Singe.Compile.n_warps =
                    (if version = Singe.Compile.Baseline then 4 else 8);
                  max_barriers =
                    (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
                  ctas_per_sm_target = 1 }
              in
              match Singe.Compile.compile mech kernel version opts with
              | c ->
                  let p = c.Singe.Compile.lowered.Singe.Lower.program in
                  let roof = Gpusim.Roofline.analyze arch p in
                  let r = Singe.Compile.run c ~total_points:32768 in
                  let achieved =
                    r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
                  in
                  let b = roof.Gpusim.Roofline.binding in
                  Printf.printf "%-10s %-5s %-7s %-28s %12.3e %12.3e %4.0f%%\n%!"
                    (Singe.Kernel_abi.kernel_name kernel)
                    vname
                    (if arch == Gpusim.Arch.fermi_c2070 then "fermi" else "kepler")
                    b.Gpusim.Roofline.resource
                    b.Gpusim.Roofline.points_per_sec achieved
                    (100.0 *. achieved /. b.Gpusim.Roofline.points_per_sec)
              | exception Failure msg ->
                  Printf.printf "%-10s %-5s: %s\n%!"
                    (Singe.Kernel_abi.kernel_name kernel)
                    vname msg)
            [ Gpusim.Arch.fermi_c2070; Gpusim.Arch.kepler_k20c ])
        [ (Singe.Compile.Baseline, "base"); (Singe.Compile.Warp_specialized, "ws") ])
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion; Singe.Kernel_abi.Chemistry ]
