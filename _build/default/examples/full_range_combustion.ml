(* Full-range thermodynamics: chemistry on a grid spanning 300-2500 K.

   The NASA-7 standard fits two polynomial ranges per species split at
   t_mid (1000 K). The default kernels evaluate only the high range — the
   combustion-relevant regime — but with
   [Compile.options.full_range_thermo] the compiler emits both ranges and
   a branchless select (the ISA has no data-dependent branches), so cold
   inflow regions of a simulation domain are handled too.

   Run with: dune exec examples/full_range_combustion.exe *)

let () =
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let compile ~full =
    Singe.Compile.compile mech Singe.Kernel_abi.Chemistry
      Singe.Compile.Warp_specialized
      { (Singe.Compile.default_options arch) with
        Singe.Compile.n_warps = 4;
        max_barriers = 16;
        ctas_per_sm_target = 1;
        full_range_thermo = full }
  in
  let hot = (1000.0, 2500.0) and cold = (300.0, 2500.0) in
  let show label c t_range =
    match Singe.Compile.run c ~t_range ~total_points:(32 * 32) with
    | r ->
        Printf.printf "  %-34s rel. error vs reference %.2e  (%.3e points/s)\n"
          label r.Singe.Compile.max_rel_err
          r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
    | exception Failure msg -> Printf.printf "  %-34s %s\n" label msg
  in
  let single = compile ~full:false in
  let full = compile ~full:true in
  Printf.printf "grid T in [1000, 2500] K (all points above t_mid):\n";
  show "single-range kernel" single hot;
  show "full-range kernel" full hot;
  Printf.printf "grid T in [300, 2500] K (cold inflow present):\n";
  show "single-range kernel (wrong!)" single cold;
  show "full-range kernel" full cold;
  let instrs c =
    Gpusim.Isa.static_instr_count
      c.Singe.Compile.lowered.Singe.Lower.program.Gpusim.Isa.body
  in
  Printf.printf "code size: %d instructions single-range, %d full-range\n"
    (instrs single) (instrs full)
