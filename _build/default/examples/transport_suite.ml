(* The full transport-coefficient suite: viscosity, thermal conductivity,
   and species diffusion — S3D's getcoeffs in miniature. Autotunes each
   kernel, runs it, and prints the resulting coefficient magnitudes for a
   sample point alongside throughput.

   (Conductivity is the repository's extension kernel: the paper evaluates
   viscosity and diffusion; the production code computes all three.)

   Run with: dune exec examples/transport_suite.exe *)

let () =
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  Printf.printf "%s on %s\n\n" mech.Chem.Mechanism.name arch.Gpusim.Arch.name;
  let sample_grid = Chem.Grid.create mech ~points:1 ~seed:7L in
  let temp = Chem.Grid.point_temperature sample_grid 0 in
  let x = Chem.Grid.point_mole_fracs sample_grid mech 0 in
  Printf.printf "sample point: T = %.0f K\n" temp;
  Printf.printf "  mixture viscosity     nu     = %.6g\n"
    (Chem.Ref_kernels.viscosity_point mech ~temp ~mole_frac:x);
  Printf.printf "  mixture conductivity  lambda = %.6g\n"
    (Chem.Ref_kernels.conductivity_point mech ~temp ~mole_frac:x);
  let d =
    Chem.Ref_kernels.diffusion_point mech ~temp
      ~pressure:(Chem.Grid.point_pressure sample_grid 0)
      ~mole_frac:x
  in
  Printf.printf "  diffusion Delta_0     D      = %.6g  (of %d species)\n\n"
    d.(0) (Array.length d);
  List.iter
    (fun kernel ->
      let o =
        Singe.Autotune.tune mech kernel Singe.Compile.Warp_specialized arch
      in
      let best = o.Singe.Autotune.best in
      Printf.printf
        "%-13s autotuned to %2d warps/CTA: %.3e points/s, %.1f GFLOPS \
         (rel err %.1e)\n%!"
        (Singe.Kernel_abi.kernel_name kernel)
        best.Singe.Autotune.options.Singe.Compile.n_warps
        best.Singe.Autotune.throughput
        best.Singe.Autotune.result.Singe.Compile.machine.Gpusim.Machine.gflops
        best.Singe.Autotune.result.Singe.Compile.max_rel_err)
    [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Conductivity;
      Singe.Kernel_abi.Diffusion ]
