(* Autotuning (§4): brute-force exhaustive search over the coarse design
   dimensions Singe exposes, exactly like the paper's tuning script.

   Run with: dune exec examples/autotune_demo.exe *)

let () =
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let outcome =
    Singe.Autotune.tune mech Singe.Kernel_abi.Diffusion
      Singe.Compile.Warp_specialized arch
  in
  Printf.printf "tried %d configurations (%d skipped as unbuildable)\n"
    outcome.Singe.Autotune.tried outcome.Singe.Autotune.skipped;
  let best = outcome.Singe.Autotune.best in
  Printf.printf "best: %d warps/CTA, %d target CTAs/SM -> %.3g points/s (%.0f GFLOPS)\n"
    best.Singe.Autotune.options.Singe.Compile.n_warps
    best.Singe.Autotune.options.Singe.Compile.ctas_per_sm_target
    best.Singe.Autotune.throughput
    best.Singe.Autotune.result.Singe.Compile.machine.Gpusim.Machine.gflops
