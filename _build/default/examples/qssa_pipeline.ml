(* The heptane chemistry kernel: QSSA warp siphoning (Fig. 6/7).

   Shows the partitioning Singe chooses — which warps run reaction rates,
   which are siphoned off for the quasi-steady-state computation, how much
   of the rate work the QSSA phase consumes — then compiles and verifies
   the kernel.

   Run with: dune exec examples/qssa_pipeline.exe *)

let () =
  let mech = Chem.Mech_gen.heptane () in
  let g = Chem.Qssa.build mech in
  Printf.printf "heptane: %d QSSA species; the QSSA phase reads %d of %d reactions (%.0f%%)\n"
    (Array.length g.Chem.Qssa.nodes)
    (List.length (Chem.Qssa.reactions_touched g))
    (Chem.Mechanism.n_reactions mech)
    (100.
    *. float_of_int (List.length (Chem.Qssa.reactions_touched g))
    /. float_of_int (Chem.Mechanism.n_reactions mech));
  Array.iteri
    (fun k (node : Chem.Qssa.node) ->
      if k < 5 then
        Printf.printf "  QSSA node %-12s: %3d rate terms, depends on nodes [%s]\n"
          mech.Chem.Mechanism.species.(node.Chem.Qssa.species).Chem.Species.name
          (List.length node.Chem.Qssa.produced_by + List.length node.Chem.Qssa.consumed_by)
          (String.concat "," (List.map string_of_int node.Chem.Qssa.deps)))
    g.Chem.Qssa.nodes;
  let n_warps = 16 in
  Printf.printf "\nwith %d warps per CTA, %d are siphoned off for QSSA\n" n_warps
    (Singe.Chemistry_dfg.n_qssa_warps ~n_warps ~n_qssa:(Array.length g.Chem.Qssa.nodes));
  let arch = Gpusim.Arch.kepler_k20c in
  let options =
    { (Singe.Compile.default_options arch) with
      Singe.Compile.n_warps; max_barriers = 16; ctas_per_sm_target = 1 }
  in
  let c = Singe.Compile.compile mech Singe.Kernel_abi.Chemistry
      Singe.Compile.Warp_specialized options in
  Printf.printf "compiled: %d named barriers, %d sync points, %d buffer slots, %d B spilled/thread\n"
    c.Singe.Compile.schedule.Singe.Schedule.barriers_used
    c.Singe.Compile.schedule.Singe.Schedule.n_sync_points
    c.Singe.Compile.schedule.Singe.Schedule.buffer_slots
    c.Singe.Compile.lowered.Singe.Lower.spill_bytes_per_thread;
  let r = Singe.Compile.run c ~total_points:32768 in
  Printf.printf "ran: %.3g points/s, %.0f GFLOPS, worst rel. error %.2g\n"
    r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
    r.Singe.Compile.machine.Gpusim.Machine.gflops
    r.Singe.Compile.max_rel_err
