(** Small dense linear algebra used for transport-coefficient fitting.

    Sizes here are tiny (order 4-10), so numerical sophistication beyond
    partial pivoting is unnecessary. *)

exception Singular
(** Raised when a solve encounters a (numerically) singular matrix. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting. [a] and [b] are not modified. Raises {!Singular} if no pivot
    exceeds 1e-300 in magnitude. *)

val polyfit : degree:int -> (float * float) list -> float array
(** [polyfit ~degree pts] least-squares fits a polynomial
    [c0 + c1 x + ... + c_degree x^degree] to the sample points and returns
    the coefficients lowest order first. Requires at least [degree + 1]
    points. *)

val polyval : float array -> float -> float
(** [polyval coeffs x] evaluates a polynomial given coefficients lowest order
    first (Horner). *)

val max_abs_residual : float array -> (float * float) list -> float
(** Largest absolute error of the fitted polynomial over the sample points. *)
