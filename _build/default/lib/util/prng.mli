(** Deterministic pseudo-random number generation.

    All synthetic data in this repository (mechanism generation, test inputs,
    workload fields) is derived from this splitmix64 generator so that every
    run of every experiment is bit-reproducible from a seed.  We deliberately
    avoid [Stdlib.Random] whose sequence may change across compiler
    versions. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [\[lo, hi)]. *)

val log_range : t -> float -> float -> float
(** [log_range t lo hi] is log-uniform in [\[lo, hi)]; [lo], [hi] must be
    positive. Suitable for pre-exponential factors spanning decades. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> int -> int list
(** [sample t k n] draws [k] distinct integers from [\[0, n)], in random
    order. Requires [k <= n]. *)

val split : t -> string -> t
(** [split t label] derives an independent generator from [t]'s current state
    and [label]; used to give each synthetic-data consumer its own stream. *)
