type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 step: advance by the 64-bit golden ratio, then mix. *)
let int64 t =
  let open Int64 in
  t.state <- add t.state golden;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int without wrapping. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod n

let float t x =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. x

let range t lo hi = lo +. float t (hi -. lo)

let log_range t lo hi =
  assert (lo > 0.0 && hi > lo);
  exp (range t (log lo) (log hi))

let bool t = Int64.logand (int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k n =
  assert (k <= n);
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.to_list (Array.sub arr 0 k)

let split t label =
  let h = ref (int64 t) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    label;
  create !h
