lib/util/linalg.mli:
