lib/util/prng.mli:
