exception Singular

let solve a b =
  let n = Array.length b in
  assert (Array.length a = n);
  let m = Array.map Array.copy a in
  let v = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry into the pivot row. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if abs_float m.(row).(col) > abs_float m.(!pivot).(col) then pivot := row
    done;
    if abs_float m.(!pivot).(col) < 1e-300 then raise Singular;
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tv = v.(col) in
      v.(col) <- v.(!pivot);
      v.(!pivot) <- tv
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0.0 then begin
        for k = col to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done;
        v.(row) <- v.(row) -. (factor *. v.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let s = ref v.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. m.(row).(row)
  done;
  x

let polyfit ~degree pts =
  let n = degree + 1 in
  assert (List.length pts >= n);
  (* Normal equations: (V^T V) c = V^T y with V the Vandermonde matrix. *)
  let ata = Array.make_matrix n n 0.0 in
  let atb = Array.make n 0.0 in
  let add_point (x, y) =
    let powers = Array.make n 1.0 in
    for i = 1 to n - 1 do
      powers.(i) <- powers.(i - 1) *. x
    done;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        ata.(i).(j) <- ata.(i).(j) +. (powers.(i) *. powers.(j))
      done;
      atb.(i) <- atb.(i) +. (powers.(i) *. y)
    done
  in
  List.iter add_point pts;
  solve ata atb

let polyval coeffs x =
  let acc = ref 0.0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := (!acc *. x) +. coeffs.(i)
  done;
  !acc

let max_abs_residual coeffs pts =
  List.fold_left
    (fun acc (x, y) -> Float.max acc (abs_float (polyval coeffs x -. y)))
    0.0 pts
