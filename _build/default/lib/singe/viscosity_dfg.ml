let species_warp ~n ~n_warps k = min (n_warps - 1) (k * n_warps / n)

let tile_size = 8

let build (mech : Chem.Mechanism.t) ~n_warps =
  let computed = Chem.Mechanism.computed_species mech in
  let n = Array.length computed in
  let b = Dfg.Builder.create "viscosity" in
  let warp_of = species_warp ~n ~n_warps in
  let mine =
    Array.init n_warps (fun w ->
        List.filter (fun k -> warp_of k = w) (List.init n Fun.id))
  in
  let max_mine = Array.fold_left (fun a l -> max a (List.length l)) 0 mine in
  let nth_mine w o = List.nth_opt mine.(w) o in
  (* Operations are emitted in round-robin warp order throughout, so the
     scheduler's walk advances all warps together and epoch boundaries land
     between symmetric rounds (keeping the overlaid streams aligned). *)
  let temp_of =
    Array.init n_warps (fun w ->
        Dfg.Builder.load b ~hint:w ~align:"T" ~name:(Printf.sprintf "T_w%d" w)
          ~group:"temperature" ~field:0 ())
  in
  let x = Array.make n (-1) in
  let lvis = Array.make n (-1) in
  for o = 0 to max_mine - 1 do
    for w = 0 to n_warps - 1 do
      match nth_mine w o with
      | None -> ()
      | Some k ->
          x.(k) <-
            Dfg.Builder.load b ~hint:w
              ~align:(Printf.sprintf "x:%d" o)
              ~name:(Printf.sprintf "x%d" k) ~group:"mole_frac" ~field:k ()
    done
  done;
  for o = 0 to max_mine - 1 do
    for w = 0 to n_warps - 1 do
      match nth_mine w o with
      | None -> ()
      | Some k ->
          let c = mech.Chem.Mechanism.transport.Chem.Transport.visc_fit.(computed.(k)) in
          lvis.(k) <-
            Dfg.Builder.compute b ~hint:w
              ~align:(Printf.sprintf "lv:%d" o)
              ~name:(Printf.sprintf "lvis%d" k)
              ~inputs:[| temp_of.(w) |]
              (Sexpr.poly3 (Sexpr.In 0) ~c0:c.(0) ~c1:c.(1) ~c2:c.(2) ~c3:c.(3))
    done
  done;
  let a_const, b_const = Chem.Ref_kernels.pair_constants mech in
  (* Phase boundary: the species vectors are now staged in shared memory;
     one CTA barrier makes them visible everywhere. *)
  Dfg.Builder.fence b ~inputs:(Array.append x lvis);
  (* Exact register copy of a shared value: shared traffic happens once per
     warp per batch instead of once per pair — the restructuring that makes
     the double sum math-limited rather than shared-memory-limited. *)
  let local w align name v =
    Dfg.Builder.compute b ~hint:w ~align ~name ~inputs:[| v |]
      (Sexpr.mul (Sexpr.In 0) (Sexpr.Imm 1.0))
  in
  (* This warp's own log-viscosities stay register resident. *)
  let clk = Array.make_matrix n_warps max_mine (-1) in
  for o = 0 to max_mine - 1 do
    for w = 0 to n_warps - 1 do
      match nth_mine w o with
      | None -> ()
      | Some k ->
          clk.(w).(o) <-
            local w (Printf.sprintf "lk:%d" o)
              (Printf.sprintf "lk%d_w%d" k w)
              lvis.(k)
    done
  done;
  let acc = Array.make n (-1) in
  let j0 = ref 0 in
  while !j0 < n do
    let jend = min n (!j0 + tile_size) in
    (* Tile of cross-species values, staged through registers per warp. *)
    let tile_x = Array.make_matrix n_warps (jend - !j0) (-1) in
    let tile_l = Array.make_matrix n_warps (jend - !j0) (-1) in
    for t = 0 to jend - !j0 - 1 do
      let j = !j0 + t in
      for w = 0 to n_warps - 1 do
        tile_x.(w).(t) <-
          local w (Printf.sprintf "tx:%d" j) (Printf.sprintf "lx%d_w%d" j w) x.(j);
        tile_l.(w).(t) <-
          local w (Printf.sprintf "tl:%d" j) (Printf.sprintf "ll%d_w%d" j w) lvis.(j)
      done
    done;
    for t = 0 to jend - !j0 - 1 do
      let j = !j0 + t in
      for o = 0 to max_mine - 1 do
        for w = 0 to n_warps - 1 do
          match nth_mine w o with
          | None -> ()
          | Some k ->
              let lk = clk.(w).(o) in
              let xj = tile_x.(w).(t) and lj = tile_l.(w).(t) in
              (* contribution = (1 + t)^2 * b_kj * x_j,
                 t = exp((lk - lj)/2 + a_kj) *)
              let t_expr lk lj =
                Sexpr.exp_
                  (Sexpr.fma (Sexpr.sub lk lj) (Sexpr.Imm 0.5)
                     (Sexpr.C a_const.(k).(j)))
              in
              let contrib u xj =
                Sexpr.mul (Sexpr.mul u u)
                  (Sexpr.mul (Sexpr.C b_const.(k).(j)) xj)
              in
              acc.(k) <-
                (if acc.(k) < 0 then
                   Dfg.Builder.compute b ~hint:w
                     ~align:(Printf.sprintf "ch:%d:%d" o j)
                     ~name:(Printf.sprintf "inner%d@%d" k j)
                     ~inputs:[| lk; lj; xj |]
                     (Sexpr.let_
                        (t_expr (Sexpr.In 0) (Sexpr.In 1))
                        (Sexpr.let_
                           (Sexpr.add (Sexpr.Imm 1.0) (Sexpr.Var 0))
                           (contrib (Sexpr.Var 0) (Sexpr.In 2))))
                 else
                   Dfg.Builder.compute b ~hint:w
                     ~align:(Printf.sprintf "ch:%d:%d" o j)
                     ~name:(Printf.sprintf "inner%d@%d" k j)
                     ~inputs:[| lk; lj; xj; acc.(k) |]
                     (Sexpr.let_
                        (t_expr (Sexpr.In 0) (Sexpr.In 1))
                        (Sexpr.let_
                           (Sexpr.add (Sexpr.Imm 1.0) (Sexpr.Var 0))
                           (Sexpr.add
                              (contrib (Sexpr.Var 0) (Sexpr.In 2))
                              (Sexpr.In 3)))))
        done
      done
    done;
    j0 := jend
  done;
  (* term_k = x_k e^{lvis_k} / inner_k *)
  let terms = Array.make n (-1) in
  for o = 0 to max_mine - 1 do
    for w = 0 to n_warps - 1 do
      match nth_mine w o with
      | None -> ()
      | Some k ->
          let xk =
            local w (Printf.sprintf "xk:%d" o) (Printf.sprintf "xk%d_w%d" k w) x.(k)
          in
          terms.(k) <-
            Dfg.Builder.compute b ~hint:w
              ~align:(Printf.sprintf "tm:%d" o)
              ~name:(Printf.sprintf "term%d" k)
              ~inputs:[| xk; clk.(w).(o); acc.(k) |]
              (Sexpr.div
                 (Sexpr.mul (Sexpr.In 0) (Sexpr.exp_ (Sexpr.In 1)))
                 (Sexpr.In 2))
    done
  done;
  (* Each warp pre-reduces its own terms in registers; only the per-warp
     partials go through shared memory ("all the warps reduce their values
     through shared memory and the threads in warp 0 perform the write"). *)
  let partials =
    Array.init n_warps (fun w ->
        let mine_terms = List.map (fun k -> terms.(k)) mine.(w) in
        match mine_terms with
        | [] -> None
        | _ ->
            Some
              (Dfg.Builder.compute b ~hint:w ~align:"wpart"
                 ~name:(Printf.sprintf "partial_w%d" w)
                 ~inputs:(Array.of_list mine_terms)
                 (Sexpr.sum
                    (List.init (List.length mine_terms) (fun t -> Sexpr.In t)))))
  in
  let parts = Array.to_list partials |> List.filter_map Fun.id in
  let nu =
    Dfg.Builder.compute b ~hint:0 ~name:"nu"
      ~inputs:(Array.of_list parts)
      (Sexpr.mul (Sexpr.Imm (sqrt 8.0))
         (Sexpr.sum (List.init (List.length parts) (fun t -> Sexpr.In t))))
  in
  Dfg.Builder.store b ~hint:0 ~name:"store_nu" ~group:"out" ~field:0 nu;
  Dfg.Builder.finish b
