(** Dataflow graph of the thermal-conductivity kernel (transport-suite
    extension — S3D's getcoeffs computes it alongside viscosity and
    diffusion; the paper's evaluation does not include it).

    Mathur's combination-averaging formula
    [lambda = 1/2 (sum_k x_k lambda_k + 1 / sum_k x_k / lambda_k)] is
    per-species-local: unlike viscosity's Wilke double sum there is no
    cross-species pair term, so each warp reduces its own contiguous
    species range in registers and only the two per-warp partial sums cross
    warps. The per-species [lambda_k(T)] are cubic log-space fits like the
    viscosities (§3.2's constant-heavy pattern, at 4 constants per
    species). *)

val species_warp : n:int -> n_warps:int -> int -> int
(** Owning warp of a species: contiguous ranges (same scheme as
    viscosity). *)

val build : Chem.Mechanism.t -> n_warps:int -> Dfg.t
