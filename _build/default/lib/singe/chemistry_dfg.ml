module S = Sexpr

let n_qssa_warps ~n_warps ~n_qssa =
  if n_qssa = 0 || n_warps < 2 then 0
  else max 1 (min (n_warps - 1) (n_warps / 4))

(* Cost proxy for balancing reaction assignments across warps. *)
let reaction_cost (r : Chem.Reaction.t) =
  let exp_cost = 24 in
  (match r.Chem.Reaction.rate with
  | Chem.Reaction.Simple _ -> 6 + exp_cost
  | Chem.Reaction.Landau_teller _ -> 10 + exp_cost
  | Chem.Reaction.Falloff { kind = Chem.Reaction.Lindemann; _ } ->
      (2 * exp_cost) + 20
  | Chem.Reaction.Falloff { kind = Chem.Reaction.Troe _; _ } ->
      (5 * exp_cost) + 40
  | Chem.Reaction.Falloff { kind = Chem.Reaction.Sri _; _ } ->
      (6 * exp_cost) + 30
  | Chem.Reaction.Plog table -> (10 * List.length table) + exp_cost + 8)
  +
  match r.Chem.Reaction.reverse with
  | Chem.Reaction.Irreversible -> 0
  | Chem.Reaction.Explicit _ -> 6 + exp_cost
  | Chem.Reaction.From_equilibrium -> 16 + exp_cost

type partition = {
  n_qssa_warps : int;
  reaction_warp : int array;  (* reaction index -> owning warp *)
  qssa_node_warp : int array;  (* QSSA graph node -> owning warp *)
  warp_cost : int array;  (* per-warp FLOP-proxy load *)
}

(* Warp partitioning (Fig. 6): reactions needed by QSSA go first, over all
   warps; the rest over the non-QSSA ("rate") warps only; QSSA nodes across
   the trailing warps by greedy flop balance with a locality bonus toward
   the warp holding dependences (Fig. 7). *)
let partition (mech : Chem.Mechanism.t) ~n_warps =
  let reactions = mech.Chem.Mechanism.reactions in
  let nr = Array.length reactions in
  let qssa_graph = Chem.Qssa.build mech in
  let qssa_touched = Chem.Qssa.reactions_touched qssa_graph in
  let nq = n_qssa_warps ~n_warps ~n_qssa:(Array.length qssa_graph.Chem.Qssa.nodes) in
  let rate_warps = n_warps - nq in
  let all_warp_load = Array.make n_warps 0 in
  let pick_warp ~among_first cost =
    let best = ref 0 in
    for w = 1 to among_first - 1 do
      if all_warp_load.(w) < all_warp_load.(!best) then best := w
    done;
    all_warp_load.(!best) <- all_warp_load.(!best) + cost;
    !best
  in
  let reaction_warp = Array.make nr (-1) in
  List.iter
    (fun r ->
      reaction_warp.(r) <-
        pick_warp ~among_first:n_warps (reaction_cost reactions.(r)))
    qssa_touched;
  for r = 0 to nr - 1 do
    if reaction_warp.(r) < 0 then
      reaction_warp.(r) <-
        pick_warp ~among_first:(max 1 rate_warps) (reaction_cost reactions.(r))
  done;
  let qssa_node_warp =
    Array.make (max 1 (Array.length qssa_graph.Chem.Qssa.nodes)) 0
  in
  (if nq > 0 then begin
     let load = Array.make nq 0 in
     Array.iteri
       (fun k (node : Chem.Qssa.node) ->
         let bonus = Array.make nq 0 in
         List.iter
           (fun d ->
             let dw = qssa_node_warp.(d) - (n_warps - nq) in
             if dw >= 0 then bonus.(dw) <- bonus.(dw) + 20)
           node.Chem.Qssa.deps;
         let best = ref 0 in
         for w = 1 to nq - 1 do
           if load.(w) - bonus.(w) < load.(!best) - bonus.(!best) then best := w
         done;
         load.(!best) <- load.(!best) + node.Chem.Qssa.flops;
         all_warp_load.(n_warps - nq + !best) <-
           all_warp_load.(n_warps - nq + !best) + node.Chem.Qssa.flops;
         qssa_node_warp.(k) <- n_warps - nq + !best)
       qssa_graph.Chem.Qssa.nodes
   end);
  {
    n_qssa_warps = nq;
    reaction_warp;
    qssa_node_warp;
    warp_cost = all_warp_load;
  }

let build ?(recompute_conc = true) ?(recompute_gibbs = true)
    ?(full_range_thermo = false) (mech : Chem.Mechanism.t) ~n_warps =
  let reactions = mech.Chem.Mechanism.reactions in
  let nr = Array.length reactions in
  let n_species = Chem.Mechanism.n_species mech in
  let computed = Chem.Mechanism.computed_species mech in
  let n = Array.length computed in
  let pos_of = Array.make n_species (-1) in
  Array.iteri (fun k sp -> pos_of.(sp) <- k) computed;
  let is_qssa sp = Chem.Mechanism.is_qssa mech sp in
  let qssa_graph = Chem.Qssa.build mech in
  let stiff_nodes = Chem.Stiffness.build mech in
  let b = Dfg.Builder.create "chemistry" in

  (* ---- warp partitioning (Fig. 6) ---- *)
  let part = partition mech ~n_warps in
  let reaction_warp = part.reaction_warp in
  let qssa_node_warp = part.qssa_node_warp in
  (* Per-warp reaction lists in source order: emission is round-robin by
     ordinal so the per-warp streams advance together. *)
  let warp_reactions = Array.make n_warps [] in
  for ri = nr - 1 downto 0 do
    let w = reaction_warp.(ri) in
    warp_reactions.(w) <- ri :: warp_reactions.(w)
  done;
  let max_rxn = Array.fold_left (fun a l -> max a (List.length l)) 0 warp_reactions in
  let stiff_node_warp = Array.mapi (fun k _ -> k mod n_warps) stiff_nodes in

  (* ---- per-warp scalar loads and helper values ---- *)
  let temp_of =
    Array.init n_warps (fun w ->
        Dfg.Builder.load b ~hint:w ~align:"T" ~name:(Printf.sprintf "T_w%d" w)
          ~group:"temperature" ~field:0 ())
  in
  let pres_of =
    Array.init n_warps (fun w ->
        Dfg.Builder.load b ~hint:w ~align:"P" ~name:(Printf.sprintf "P_w%d" w)
          ~group:"pressure" ~field:0 ())
  in
  let helper align name expr inputs =
    Array.init n_warps (fun w ->
        Dfg.Builder.compute b ~hint:w ~align
          ~name:(Printf.sprintf "%s_w%d" name w)
          ~inputs:(inputs w) expr)
  in
  let vlntemp_of =
    helper "vlnt" "vlntemp" (S.log_ (S.In 0)) (fun w -> [| temp_of.(w) |])
  in
  (* ortc = 1 / (R_cal T): caloric activation-energy scaling. *)
  let ortc_of =
    helper "ortc" "ortc"
      (S.div (S.Imm 1.0) (S.mul (S.Imm Chem.Rates.r_cal) (S.In 0)))
      (fun w -> [| temp_of.(w) |])
  in
  (* c0 = P_atm / (R T): equilibrium pressure scaling. *)
  let c0_of =
    helper "c0" "c0"
      (S.div (S.Imm Chem.Rates.p_atm)
         (S.mul (S.Imm Chem.Thermo.gas_constant) (S.In 0)))
      (fun w -> [| temp_of.(w) |])
  in
  let cfac_of =
    helper "cfac" "cfac"
      (S.div (S.In 0) (S.mul (S.Imm Chem.Thermo.gas_constant) (S.In 1)))
      (fun w -> [| pres_of.(w); temp_of.(w) |])
  in
  let rcp_t_of =
    helper "rcpt" "rcp_t" (S.div (S.Imm 1.0) (S.In 0))
      (fun w -> [| temp_of.(w) |])
  in
  (* ln(P / P_atm), needed only by PLOG interpolation; emitted lazily so
     mechanisms without PLOG reactions compile to identical code. *)
  let has_plog =
    Array.exists
      (fun (r : Chem.Reaction.t) ->
        match r.Chem.Reaction.rate with Chem.Reaction.Plog _ -> true | _ -> false)
      reactions
  in
  let lnp_of =
    if not has_plog then [||]
    else
      helper "lnp" "lnp"
        (S.log_ (S.mul (S.Imm (1.0 /. Chem.Rates.p_atm)) (S.In 0)))
        (fun w -> [| pres_of.(w) |])
  in
  (* Consumer warps of each computed species' effective concentration:
     the reaction warps that read it in a rate product or third-body sum,
     plus (in staged mode) the stiffness warps that read it through gamma. *)
  let conc_consumers = Array.make_matrix n n_warps false in
  Array.iteri
    (fun ri (r : Chem.Reaction.t) ->
      let w = reaction_warp.(ri) in
      let mark sp = if not (is_qssa sp) then conc_consumers.(pos_of.(sp)).(w) <- true in
      List.iter (fun (sp, _) -> mark sp) r.Chem.Reaction.reactants;
      List.iter (fun (sp, _) -> mark sp) r.Chem.Reaction.products;
      match r.Chem.Reaction.third_body with
      | Some tb -> List.iter (fun (sp, _) -> mark sp) tb.Chem.Reaction.enhanced
      | None -> ())
    reactions;
  if not recompute_conc then
    Array.iteri
      (fun knode (node : Chem.Stiffness.node) ->
        let sp = node.Chem.Stiffness.species in
        conc_consumers.(pos_of.(sp)).(stiff_node_warp.(knode)) <- true)
      stiff_nodes;
  let conc_consumer_list k =
    List.filter (fun w -> conc_consumers.(k).(w)) (List.init n_warps Fun.id)
  in
  (* Home warp of each species: with staging, a value consumed by exactly
     one warp is loaded and computed there and never crosses warps — only
     genuinely multi-consumer values cost a shared slot and a sync. *)
  let home =
    Array.init n (fun k ->
        if recompute_conc then k mod n_warps
        else match conc_consumer_list k with [ w ] -> w | _ -> k mod n_warps)
  in
  (* Species loads; QSSA species enter rate products with effective
     concentration 1. *)
  let x = Array.make n (-1) in
  for k = 0 to n - 1 do
    x.(k) <-
      Dfg.Builder.load b ~hint:home.(k) ~shared_hint:recompute_conc
        ~align:(Printf.sprintf "x:%d" (k / n_warps))
        ~name:(Printf.sprintf "x%d" k) ~group:"mole_frac" ~field:k ()
  done;
  let conc_at = Array.make_matrix n_warps n (-1) in
  if recompute_conc then begin
    (* Every consumer warp recomputes conc_k = x_k * P/(RT) from the shared
       mole fractions (redundant FLOPs for zero communication). *)
    for k = 0 to n - 1 do
      List.iter
        (fun w ->
          conc_at.(w).(k) <-
            Dfg.Builder.compute b ~hint:w
              ~align:(Printf.sprintf "conc:%d" k)
              ~name:(Printf.sprintf "conc%d_w%d" k w)
              ~inputs:[| x.(k); cfac_of.(w) |]
              (S.mul (S.In 0) (S.In 1)))
        (conc_consumer_list k)
    done
  end
  else
    (* One copy in the home warp; the shared hint stages it if (and only
       if) some consumer lives elsewhere. *)
    for k = 0 to n - 1 do
      let hw = home.(k) in
      let v =
        Dfg.Builder.compute b ~hint:hw ~shared_hint:true
          ~align:(Printf.sprintf "conc:%d" (k / n_warps))
          ~name:(Printf.sprintf "conc%d_w%d" k hw)
          ~inputs:[| x.(k); cfac_of.(hw) |]
          (S.mul (S.In 0) (S.In 1))
      in
      for w' = 0 to n_warps - 1 do
        conc_at.(w').(k) <- v
      done
    done;
  let conc_of_species ~w sp =
    if is_qssa sp then None else Some conc_at.(w).(pos_of.(sp))
  in
  let n_qssa_species = Chem.Mechanism.n_qssa mech in
  (* Total concentration, per warp (QSSA species contribute their
     effective 1.0 like the reference). With staging the mole fractions are
     warp-local, so each warp stages one partial sum and every warp folds
     the n_warps partials — n_warps shared slots instead of n. *)
  let staged_xsums =
    if recompute_conc then [||]
    else begin
      let groups = Array.make n_warps [] in
      for k = n - 1 downto 0 do
        groups.(home.(k)) <- x.(k) :: groups.(home.(k))
      done;
      Array.init n_warps (fun w ->
          let g = groups.(w) in
          Dfg.Builder.compute b ~hint:w ~shared_hint:true ~align:"xsum"
            ~name:(Printf.sprintf "xsum_w%d" w)
            ~inputs:(Array.of_list g)
            (if g = [] then S.Imm 0.0
             else S.sum (List.init (List.length g) (fun i -> S.In i))))
    end
  in
  let total_conc_of =
    Array.init n_warps (fun w ->
        if recompute_conc then
          Dfg.Builder.compute b ~hint:w ~align:"mtot"
            ~name:(Printf.sprintf "total_conc_w%d" w)
            ~inputs:(Array.append x [| cfac_of.(w) |])
            (S.add
               (S.mul (S.In n) (S.sum (List.init n (fun k -> S.In k))))
               (S.Imm (float_of_int n_qssa_species)))
        else
          Dfg.Builder.compute b ~hint:w ~align:"mtot"
            ~name:(Printf.sprintf "total_conc_w%d" w)
            ~inputs:(Array.append staged_xsums [| cfac_of.(w) |])
            (S.add
               (S.mul (S.In n_warps)
                  (S.sum (List.init n_warps (fun i -> S.In i))))
               (S.Imm (float_of_int n_qssa_species))))
  in
  (* Per-species Gibbs energies (high-range NASA polynomial). The
     polynomial reads only a warp's own temperature helpers, so a
     single-consumer (or recomputed) copy costs FLOPs but no shared slots
     or synchronization. *)
  let gibbs_consumers = Array.make_matrix n_species n_warps false in
  Array.iteri
    (fun ri (r : Chem.Reaction.t) ->
      if r.Chem.Reaction.reverse = Chem.Reaction.From_equilibrium then
        List.iter
          (fun sp -> gibbs_consumers.(sp).(reaction_warp.(ri)) <- true)
          (Chem.Reaction.species_involved r))
    reactions;
  let gibbs_consumer_list sp =
    List.filter (fun w -> gibbs_consumers.(sp).(w)) (List.init n_warps Fun.id)
  in
  let gibbs_species =
    List.filter
      (fun sp -> gibbs_consumer_list sp <> [])
      (List.init n_species Fun.id)
  in
  let gibbs_at = Array.make_matrix n_warps n_species (-1) in
  let emit_gibbs ~hw ~align ~shared sp =
    (* g/RT = h/RT - s/R, in the reference's two polynomial forms. *)
    let t = S.In 0 and lnt = S.In 1 and rcpt = S.In 2 in
    let gibbs_expr a =
      let h_over_rt =
        S.add
          (S.add (S.C a.(0))
             (S.mul t
                (S.add (S.C (a.(1) /. 2.0))
                   (S.mul t
                      (S.add (S.C (a.(2) /. 3.0))
                         (S.mul t
                            (S.add (S.C (a.(3) /. 4.0))
                               (S.mul t (S.C (a.(4) /. 5.0))))))))))
          (S.mul (S.C a.(5)) rcpt)
      in
      let s_over_r =
        S.add
          (S.add (S.mul (S.C a.(0)) lnt)
             (S.mul t
                (S.add (S.C a.(1))
                   (S.mul t
                      (S.add (S.C (a.(2) /. 2.0))
                         (S.mul t
                            (S.add (S.C (a.(3) /. 3.0))
                               (S.mul t (S.C (a.(4) /. 4.0))))))))))
          (S.C a.(6))
      in
      S.sub h_over_rt s_over_r
    in
    let entry = mech.Chem.Mechanism.thermo.(sp) in
    let expr =
      if not full_range_thermo then gibbs_expr entry.Chem.Thermo.high
      else
        (* Branchless range selection: sel = 1 when T >= t_mid, else 0;
           g = sel*g_high + (1-sel)*g_low is exact at both ends (no
           blend error where one side's weight is zero). *)
        let sel =
          S.min_ (S.Imm 1.0)
            (S.max_ (S.Imm 0.0)
               (S.fma
                  (S.sub t (S.C entry.Chem.Thermo.t_mid))
                  (S.Imm 1e30) (S.Imm 1.0)))
        in
        S.let_ sel
          (S.fma (S.Var 0)
             (gibbs_expr entry.Chem.Thermo.high)
             (S.mul
                (S.sub (S.Imm 1.0) (S.Var 0))
                (gibbs_expr entry.Chem.Thermo.low)))
    in
    Dfg.Builder.compute b ~hint:hw ~shared_hint:shared ~align
      ~name:(Printf.sprintf "g%d_w%d" sp hw)
      ~inputs:[| temp_of.(hw); vlntemp_of.(hw); rcp_t_of.(hw) |]
      expr
  in
  List.iteri
    (fun ordinal sp ->
      if recompute_gibbs then
        List.iter
          (fun w ->
            gibbs_at.(w).(sp) <-
              emit_gibbs ~hw:w ~align:(Printf.sprintf "g:%d" sp) ~shared:false
                sp)
          (gibbs_consumer_list sp)
      else begin
        let hw =
          match gibbs_consumer_list sp with
          | [ w ] -> w
          | _ -> ordinal mod n_warps
        in
        let v =
          emit_gibbs ~hw
            ~align:(Printf.sprintf "g:%d" (ordinal / n_warps))
            ~shared:true sp
        in
        for w' = 0 to n_warps - 1 do
          gibbs_at.(w').(sp) <- v
        done
      end)
    gibbs_species;
  (* Staged values become visible to every warp past this barrier; anything
     warp-local (recomputed or single-consumer) needs no fence. *)
  let multi k = match conc_consumer_list k with [] | [ _ ] -> false | _ -> true in
  let gibbs_multi sp =
    match gibbs_consumer_list sp with [] | [ _ ] -> false | _ -> true
  in
  let staged = ref [] in
  if recompute_conc then staged := Array.to_list x
  else begin
    Array.iter (fun v -> staged := v :: !staged) staged_xsums;
    for k = 0 to n - 1 do
      if multi k then staged := conc_at.(0).(k) :: !staged
    done
  end;
  if not recompute_gibbs then
    List.iter
      (fun sp -> if gibbs_multi sp then staged := gibbs_at.(0).(sp) :: !staged)
      gibbs_species;
  Dfg.Builder.fence b ~inputs:(Array.of_list (List.rev !staged));

  (* ---- phase 1: rates of progress (Listing 1) ---- *)
  let third_body_value ri (r : Chem.Reaction.t) =
    let w = reaction_warp.(ri) in
    match r.Chem.Reaction.third_body with
    | None -> None
    | Some tb ->
        let terms =
          List.filter_map
            (fun (sp, eff) ->
              match conc_of_species ~w sp with
              | Some v -> Some (eff -. 1.0, v)
              | None -> None)
            tb.Chem.Reaction.enhanced
        in
        let qssa_extra =
          List.fold_left
            (fun acc (sp, eff) -> if is_qssa sp then acc +. (eff -. 1.0) else acc)
            0.0 tb.Chem.Reaction.enhanced
        in
        let inputs = Array.of_list (total_conc_of.(w) :: List.map snd terms) in
        let expr =
          let base = S.In 0 in
          let with_terms =
            List.fold_left
              (fun acc (k, (eff1, _)) -> S.fma (S.C eff1) (S.In (k + 1)) acc)
              base
              (List.mapi (fun k t -> (k, t)) terms)
          in
          if qssa_extra = 0.0 then with_terms
          else S.add with_terms (S.C qssa_extra)
        in
        Some
          (Dfg.Builder.compute b ~hint:w
             ~name:(Printf.sprintf "m%d" ri)
             ~inputs expr)
  in
  let arrhenius_expr (a : Chem.Reaction.arrhenius) ~lnt ~ortc_in =
    S.exp_
      (S.fma (S.C a.Chem.Reaction.temp_exp) lnt
         (S.fma (S.C (-.a.Chem.Reaction.activation)) ortc_in
            (S.C (log a.Chem.Reaction.pre_exp))))
  in
  let kf = Array.make nr (-1) in
  let tb = Array.make nr None in
  let emit_kf ri =
    let r = reactions.(ri) in
    let w = reaction_warp.(ri) in
    tb.(ri) <- third_body_value ri r;
    let lnt = S.In 0 and ortc_in = S.In 1 in
    match r.Chem.Reaction.rate with
    | Chem.Reaction.Simple a ->
        kf.(ri) <-
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "kf%d" ri)
            ~inputs:[| vlntemp_of.(w); ortc_of.(w) |]
            (arrhenius_expr a ~lnt ~ortc_in)
    | Chem.Reaction.Landau_teller { arr; b = bb; c = cc } ->
        (* k = exp(lnA + beta lnT - E ortc) * exp(b T^-1/3 + c T^-2/3) *)
        kf.(ri) <-
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "kf%d" ri)
            ~inputs:[| vlntemp_of.(w); ortc_of.(w); temp_of.(w) |]
            (S.let_
               (S.exp_ (S.mul (S.Imm (-1.0 /. 3.0)) (S.log_ (S.In 2))))
               (S.mul
                  (arrhenius_expr arr ~lnt:(S.In 0) ~ortc_in:(S.In 1))
                  (S.exp_
                     (S.fma (S.C bb) (S.Var 0)
                        (S.mul (S.C cc) (S.mul (S.Var 0) (S.Var 0)))))))
    | Chem.Reaction.Plog table ->
        (* ln k interpolates linearly in ln P between the table entries and
           clamps outside (telescoping-clamp identity — branch-free, exactly
           the reference's arithmetic). Inputs: lnT, ortc, ln(P/Patm). *)
        let lnt = S.In 0 and ortc_in = S.In 1 and lnp = S.In 2 in
        let lnk (a : Chem.Reaction.arrhenius) =
          S.fma (S.C a.Chem.Reaction.temp_exp) lnt
            (S.fma
               (S.C (-.a.Chem.Reaction.activation))
               ortc_in
               (S.C (log a.Chem.Reaction.pre_exp)))
        in
        let expr =
          match table with
          | [] -> invalid_arg "PLOG table empty"
          | (p0, a0) :: rest ->
              let acc = ref (lnk a0) in
              let prev = ref (log p0, a0) in
              List.iter
                (fun (p, a) ->
                  let lp = log p in
                  let lp0, a_prev = !prev in
                  if lp > lp0 then begin
                    let w =
                      S.min_ (S.Imm 1.0)
                        (S.max_ (S.Imm 0.0)
                           (S.div (S.sub lnp (S.C lp0)) (S.C (lp -. lp0))))
                    in
                    acc := S.fma w (S.sub (lnk a) (lnk a_prev)) !acc;
                    prev := (lp, a)
                  end)
                rest;
              S.exp_ !acc
        in
        kf.(ri) <-
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "kf%d" ri)
            ~inputs:[| vlntemp_of.(w); ortc_of.(w); lnp_of.(w) |]
            expr
    | Chem.Reaction.Falloff { high; low; kind } ->
        (* Listing 1's temporaries as dataflow values. *)
        let m = match tb.(ri) with Some v -> v | None -> total_conc_of.(w) in
        let kinf_v =
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "kinf%d" ri)
            ~inputs:[| vlntemp_of.(w); ortc_of.(w) |]
            (arrhenius_expr high ~lnt ~ortc_in)
        in
        let pr_v =
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "pr%d" ri)
            ~inputs:[| vlntemp_of.(w); ortc_of.(w); m; kinf_v |]
            (S.div
               (S.mul (arrhenius_expr low ~lnt ~ortc_in) (S.In 2))
               (S.max_ (S.In 3) (S.Imm 1e-300)))
        in
        let kinf_in = S.In 0 and pr_in = S.In 1 and t_in = S.In 2 in
        let base = S.mul kinf_in (S.div pr_in (S.add (S.Imm 1.0) pr_in)) in
        let expr =
          match kind with
          | Chem.Reaction.Lindemann -> base
          | Chem.Reaction.Troe p ->
              let fcent =
                S.max_
                  (S.add
                     (S.add
                        (S.mul
                           (S.C (1.0 -. p.Chem.Reaction.alpha))
                           (S.exp_ (S.mul (S.C (-1.0 /. p.Chem.Reaction.t3)) t_in)))
                        (S.mul (S.C p.Chem.Reaction.alpha)
                           (S.exp_ (S.mul (S.C (-1.0 /. p.Chem.Reaction.t1)) t_in))))
                     (if p.Chem.Reaction.t2 = 0.0 then S.Imm 0.0
                      else
                        S.exp_
                          (S.mul (S.C (-.p.Chem.Reaction.t2))
                             (S.div (S.Imm 1.0) t_in))))
                  (S.Imm 1e-30)
              in
              let ln10inv = 1.0 /. log 10.0 in
              S.let_ (S.mul (S.Imm ln10inv) (S.log_ fcent)) (* v0 = lfc *)
                (S.let_
                   (S.mul (S.Imm ln10inv)
                      (S.log_ (S.max_ pr_in (S.Imm 1e-300))))
                   (* v0 = lpr, v1 = lfc *)
                   (S.let_
                      (S.add (S.Var 0)
                         (S.fma (S.Imm (-0.67)) (S.Var 1) (S.Imm (-0.4))))
                      (* v0 = lpr + c, v1 = lpr, v2 = lfc *)
                      (S.let_
                         (S.div (S.Var 0)
                            (S.sub
                               (S.fma (S.Imm (-1.27)) (S.Var 2) (S.Imm 0.75))
                               (S.mul (S.Imm 0.14) (S.Var 0))))
                         (* v0 = f1, v3 = lfc *)
                         (S.mul base
                            (S.exp_
                               (S.mul (S.Imm (log 10.0))
                                  (S.div (S.Var 3)
                                     (S.add (S.Imm 1.0)
                                        (S.mul (S.Var 0) (S.Var 0))))))))))
          | Chem.Reaction.Sri p ->
              (* F = d (a exp(-b/T) + exp(-T/c))^X T^e,
                 X = 1/(1 + log10(Pr)^2); the power goes through
                 exp(X log inner) like the reference. *)
              let ln10inv = 1.0 /. log 10.0 in
              S.let_
                (S.mul (S.Imm ln10inv)
                   (S.log_ (S.max_ pr_in (S.Imm 1e-300))))
                (* v0 = lpr *)
                (S.let_
                   (S.div (S.Imm 1.0)
                      (S.fma (S.Var 0) (S.Var 0) (S.Imm 1.0)))
                   (* v0 = X, v1 = lpr *)
                   (let inner =
                      S.max_
                        (S.add
                           (S.mul (S.C p.Chem.Reaction.sa)
                              (S.exp_
                                 (S.div (S.C (-.p.Chem.Reaction.sb)) t_in)))
                           (S.exp_
                              (S.mul (S.Imm (-1.0 /. p.Chem.Reaction.sc)) t_in)))
                        (S.Imm 1e-300)
                    in
                    let pow = S.exp_ (S.mul (S.Var 0) (S.log_ inner)) in
                    let f =
                      if p.Chem.Reaction.se = 0.0 then
                        S.mul (S.C p.Chem.Reaction.sd) pow
                      else
                        S.mul (S.C p.Chem.Reaction.sd)
                          (S.mul pow
                             (S.exp_
                                (S.mul (S.C p.Chem.Reaction.se) (S.log_ t_in))))
                    in
                    S.mul base f))
        in
        kf.(ri) <-
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "kf%d" ri)
            ~inputs:[| kinf_v; pr_v; temp_of.(w) |]
            expr
  in
  (* Rate of progress: concentration product mirrors the reference's
     left-fold from 1.0 (exact under multiplication by one). *)
  let progress_op ~name ~w ~coeff_value ~side ~tb_value =
    let factors =
      List.concat_map
        (fun (sp, nu) ->
          match conc_of_species ~w sp with
          | Some v -> List.init nu (fun _ -> v)
          | None -> [])
        side
    in
    let inputs =
      Array.of_list
        ((coeff_value :: factors) @ match tb_value with Some v -> [ v ] | None -> [])
    in
    let prod_expr =
      match List.length factors with
      | 0 -> S.Imm 1.0
      | nf ->
          List.fold_left
            (fun acc k -> S.mul acc (S.In (1 + k)))
            (S.In 1)
            (List.init (nf - 1) (fun k -> k + 1))
    in
    let expr =
      let base = S.mul (S.In 0) prod_expr in
      match tb_value with
      | Some _ -> S.mul base (S.In (Array.length inputs - 1))
      | None -> base
    in
    Dfg.Builder.compute b ~hint:w ~name ~inputs expr
  in
  let rr_f = Array.make nr (-1) in
  let rr_r = Array.make nr None in
  let emit_rates ri =
    let r = reactions.(ri) in
    let w = reaction_warp.(ri) in
    let tbv =
      match (r.Chem.Reaction.rate, tb.(ri)) with
      | (Chem.Reaction.Simple _ | Chem.Reaction.Landau_teller _), Some v -> Some v
      | _ -> None
    in
    rr_f.(ri) <-
      progress_op
        ~name:(Printf.sprintf "rrf%d" ri)
        ~w ~coeff_value:kf.(ri) ~side:r.Chem.Reaction.reactants ~tb_value:tbv;
    match r.Chem.Reaction.reverse with
    | Chem.Reaction.Irreversible -> ()
    | Chem.Reaction.Explicit a ->
        let kr =
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "kr%d" ri)
            ~inputs:[| vlntemp_of.(w); ortc_of.(w) |]
            (arrhenius_expr a ~lnt:(S.In 0) ~ortc_in:(S.In 1))
        in
        rr_r.(ri) <-
          Some
            (progress_op
               ~name:(Printf.sprintf "rrr%d" ri)
               ~w ~coeff_value:kr ~side:r.Chem.Reaction.products ~tb_value:tbv)
    | Chem.Reaction.From_equilibrium ->
        (* Kc = exp(clamp(-dG)) * c0^dnu; kr = kf / max(Kc, tiny). *)
        let participants = Chem.Reaction.species_involved r in
        let g_inputs = List.map (fun sp -> gibbs_at.(w).(sp)) participants in
        let g_index sp =
          let rec go k = function
            | [] -> assert false
            | s :: rest -> if s = sp then k else go (k + 1) rest
          in
          go 0 participants
        in
        let side_sum side =
          S.sum
            (List.map
               (fun (sp, nu) ->
                 let g = S.In (2 + g_index sp) in
                 if nu = 1 then g else S.mul (S.Imm (float_of_int nu)) g)
               side)
        in
        let delta_g =
          S.sub (side_sum r.Chem.Reaction.products) (side_sum r.Chem.Reaction.reactants)
        in
        let dnu = Chem.Reaction.net_molecularity r in
        let c0_in = S.In 1 in
        let rec c0_pow k = if k = 1 then c0_in else S.mul (c0_pow (k - 1)) c0_in in
        let kc_expr =
          let e =
            S.exp_ (S.max_ (S.Imm (-250.0)) (S.min_ (S.Imm 250.0) (S.neg delta_g)))
          in
          if dnu = 0 then e
          else if dnu > 0 then S.mul e (c0_pow dnu)
          else S.div e (c0_pow (-dnu))
        in
        let kr =
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "kr%d" ri)
            ~inputs:(Array.of_list (kf.(ri) :: c0_of.(w) :: g_inputs))
            (S.div (S.In 0) (S.max_ kc_expr (S.Imm 1e-300)))
        in
        rr_r.(ri) <-
          Some
            (progress_op
               ~name:(Printf.sprintf "rrr%d" ri)
               ~w ~coeff_value:kr ~side:r.Chem.Reaction.products ~tb_value:tbv)
  in
  (* Accumulation chain: one term consumed per link so received copies die
     immediately (the paper's exchange-in-passes through the buffer). *)
  let chain ~w ~name_prefix terms =
    match terms with
    | [] ->
        Dfg.Builder.compute b ~hint:w ~name:(name_prefix ^ "_0") ~inputs:[||]
          (S.Imm 0.0)
    | _ ->
        let acc = ref (-1) in
        List.iteri
          (fun t (nu, v) ->
            let name = Printf.sprintf "%s_%d" name_prefix t in
            acc :=
              (if !acc < 0 then
                 Dfg.Builder.compute b ~hint:w ~name ~inputs:[| v |]
                   (S.fma (S.Imm (float_of_int nu)) (S.In 0) (S.Imm 0.0))
               else
                 Dfg.Builder.compute b ~hint:w ~name
                   ~inputs:[| v; !acc |]
                   (S.fma (S.Imm (float_of_int nu)) (S.In 0) (S.In 1))))
          terms;
        !acc
  in

  (* Early folding (the paper's accumulation in passes): a reaction's
     contribution enters each affected species' wdot accumulator as soon as
     its rates are final — right at production for untouched reactions,
     otherwise at its last QSSA/stiffness rescale. Rates then die at their
     last use instead of staying live across every later phase, which is
     what keeps warp-specialized spills near zero (Â§6.3). *)
  let pending = Array.make nr 0 in
  let has_rev ri =
    reactions.(ri).Chem.Reaction.reverse <> Chem.Reaction.Irreversible
  in
  Array.iter
    (fun (node : Chem.Qssa.node) ->
      List.iter (fun (r, _) -> pending.(r) <- pending.(r) + 1) node.Chem.Qssa.consumed_by;
      List.iter
        (fun (r, _) -> if has_rev r then pending.(r) <- pending.(r) + 1)
        node.Chem.Qssa.produced_by)
    qssa_graph.Chem.Qssa.nodes;
  Array.iter
    (fun (node : Chem.Stiffness.node) ->
      List.iter (fun (r, _) -> pending.(r) <- pending.(r) + 1) node.Chem.Stiffness.consumed_by;
      List.iter
        (fun (r, _) -> if has_rev r then pending.(r) <- pending.(r) + 1)
        node.Chem.Stiffness.produced_by)
    stiff_nodes;
  let wdot_acc = Array.make n (-1) in
  let wdot_terms = Array.make n 0 in
  let fold_reaction ri =
    let r = reactions.(ri) in
    List.iter
      (fun sp ->
        if not (is_qssa sp) then begin
          let k = pos_of.(sp) in
          let dnu = Chem.Reaction.delta_stoich r sp in
          if dnu <> 0 then begin
            let w = k mod n_warps in
            let t = wdot_terms.(k) in
            wdot_terms.(k) <- t + 1;
            let name = Printf.sprintf "wd%d_%d" k t in
            let diff_inputs, diff_expr =
              match rr_r.(ri) with
              | Some rv -> ([ rr_f.(ri); rv ], S.sub (S.In 0) (S.In 1))
              | None -> ([ rr_f.(ri) ], S.In 0)
            in
            let inputs, term_expr =
              if wdot_acc.(k) < 0 then
                (diff_inputs, S.fma (S.Imm (float_of_int dnu)) diff_expr (S.Imm 0.0))
              else
                ( diff_inputs @ [ wdot_acc.(k) ],
                  S.fma
                    (S.Imm (float_of_int dnu))
                    diff_expr
                    (S.In (List.length diff_inputs)) )
            in
            wdot_acc.(k) <-
              Dfg.Builder.compute b ~hint:w ~name
                ~inputs:(Array.of_list inputs)
                term_expr
          end
        end)
      (Chem.Reaction.species_involved r)
  in
  let maybe_fold ri = if pending.(ri) = 0 then fold_reaction ri in
  let rescaled ri =
    pending.(ri) <- pending.(ri) - 1;
    maybe_fold ri
  in
  (* Emission is round-robin by per-warp reaction ordinal. *)
  for o = 0 to max_rxn - 1 do
    for w = 0 to n_warps - 1 do
      match List.nth_opt warp_reactions.(w) o with
      | Some ri ->
          emit_kf ri;
          emit_rates ri;
          maybe_fold ri
      | None -> ()
    done
  done;

  (* ---- phase 2: QSSA scaling (SSA versions thread Fig. 7's DAG) ---- *)
  Array.iteri
    (fun k (node : Chem.Qssa.node) ->
      let w = qssa_node_warp.(k) in
      let sp = node.Chem.Qssa.species in
      let fwd_terms side = List.map (fun (r, nu) -> (nu, rr_f.(r))) side in
      let rev_terms side =
        List.filter_map
          (fun (r, nu) -> Option.map (fun v -> (nu, v)) rr_r.(r))
          side
      in
      let prod_v =
        chain ~w
          ~name_prefix:(Printf.sprintf "qp%d" sp)
          (fwd_terms node.Chem.Qssa.produced_by
          @ rev_terms node.Chem.Qssa.consumed_by)
      in
      let cons_v =
        chain ~w
          ~name_prefix:(Printf.sprintf "qc%d" sp)
          (fwd_terms node.Chem.Qssa.consumed_by
          @ rev_terms node.Chem.Qssa.produced_by)
      in
      let scale =
        Dfg.Builder.compute b ~hint:w
          ~name:(Printf.sprintf "qssa_scale%d" sp)
          ~inputs:[| prod_v; cons_v |]
          (S.div (S.In 0) (S.add (S.In 1) (S.Imm Chem.Qssa.eps)))
      in
      List.iter
        (fun (r, _) ->
          rr_f.(r) <-
            Dfg.Builder.compute b ~hint:w
              ~name:(Printf.sprintf "rrf%d_q%d" r sp)
              ~inputs:[| rr_f.(r); scale |]
              (S.mul (S.In 0) (S.In 1));
          rescaled r)
        node.Chem.Qssa.consumed_by;
      List.iter
        (fun (r, _) ->
          match rr_r.(r) with
          | Some v ->
              rr_r.(r) <-
                Some
                  (Dfg.Builder.compute b ~hint:w
                     ~name:(Printf.sprintf "rrr%d_q%d" r sp)
                     ~inputs:[| v; scale |]
                     (S.mul (S.In 0) (S.In 1)));
              rescaled r
          | None -> ())
        node.Chem.Qssa.produced_by)
    qssa_graph.Chem.Qssa.nodes;

  (* ---- phase 3: stiffness damping (Listing 4's indexed loads) ---- *)
  let gammas =
    Array.mapi
      (fun k (node : Chem.Stiffness.node) ->
        let w = stiff_node_warp.(k) in
        let sp = node.Chem.Stiffness.species in
        let d =
          Dfg.Builder.load b ~hint:w
            ~align:(Printf.sprintf "D:%d" (k / n_warps))
            ~name:(Printf.sprintf "D%d" sp)
            ~group:"diffusion_in" ~field:pos_of.(sp) ()
        in
        let cons_v =
          chain ~w
            ~name_prefix:(Printf.sprintf "sc%d" sp)
            (List.map (fun (r, nu) -> (nu, rr_f.(r))) node.Chem.Stiffness.consumed_by)
        in
        (* gamma = x / (x + tau (cons + d)); in staged mode x is warp-local,
           so read the staged concentration instead — multiplying numerator
           and denominator by cfac leaves gamma unchanged. *)
        if recompute_conc then
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "gamma%d" sp)
            ~inputs:[| x.(pos_of.(sp)); cons_v; d |]
            (S.div (S.In 0)
               (S.fma (S.Imm Chem.Stiffness.tau)
                  (S.add (S.In 1) (S.In 2))
                  (S.In 0)))
        else
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "gamma%d" sp)
            ~inputs:[| conc_at.(w).(pos_of.(sp)); cons_v; d; cfac_of.(w) |]
            (S.div (S.In 0)
               (S.fma
                  (S.mul (S.Imm Chem.Stiffness.tau) (S.In 3))
                  (S.add (S.In 1) (S.In 2))
                  (S.In 0))))
      stiff_nodes
  in
  Array.iteri
    (fun k (node : Chem.Stiffness.node) ->
      let w = stiff_node_warp.(k) in
      let sp = node.Chem.Stiffness.species in
      List.iter
        (fun (r, _) ->
          rr_f.(r) <-
            Dfg.Builder.compute b ~hint:w
              ~name:(Printf.sprintf "rrf%d_s%d" r sp)
              ~inputs:[| rr_f.(r); gammas.(k) |]
              (S.mul (S.In 0) (S.In 1));
          rescaled r)
        node.Chem.Stiffness.consumed_by;
      List.iter
        (fun (r, _) ->
          match rr_r.(r) with
          | Some v ->
              rr_r.(r) <-
                Some
                  (Dfg.Builder.compute b ~hint:w
                     ~name:(Printf.sprintf "rrr%d_s%d" r sp)
                     ~inputs:[| v; gammas.(k) |]
                     (S.mul (S.In 0) (S.In 1)));
              rescaled r
          | None -> ())
        node.Chem.Stiffness.produced_by)
    stiff_nodes;

  (* ---- output phase: the accumulators already hold
     wdot_k = sum_r dnu (rr_f - rr_r); just store them ---- *)
  Array.iteri
    (fun k _sp ->
      let w = k mod n_warps in
      let wdot =
        if wdot_acc.(k) >= 0 then wdot_acc.(k)
        else
          Dfg.Builder.compute b ~hint:w
            ~name:(Printf.sprintf "wd%d_none" k)
            ~inputs:[||] (S.Imm 0.0)
      in
      Dfg.Builder.store b ~hint:w
        ~name:(Printf.sprintf "store%d" k)
        ~group:"out" ~field:k wdot)
    computed;
  Dfg.Builder.finish b
