(** End-to-end compilation driver: mechanism x kernel x architecture x
    options -> executable program (Fig. 8's pipeline), plus launch and
    verification helpers.

    Three code-generation versions reproduce the paper's comparisons:
    {ul
    {- [Warp_specialized]: the full Singe pipeline — domain partitioning,
       greedy mapping, named-barrier scheduling, overlaid code with
       constant banks;}
    {- [Baseline]: the optimized data-parallel version of §6 — one thread
       per point, constants through the constant cache, LDG texture loads
       on Kepler, spilling to local memory;}
    {- [Naive_warp_specialized]: warp specialization without overlaying
       (top-level warp switch, inline constants) — Fig. 9's strawman.}} *)

type version = Warp_specialized | Baseline | Naive_warp_specialized

type chem_comm = Chem_staged | Chem_recompute | Chem_mixed
(** How chemistry's species vectors reach their consumer warps: staged
    through shared memory ([Chem_staged]), redundantly recomputed per warp
    ([Chem_recompute]), or concentrations staged with Gibbs energies
    recomputed ([Chem_mixed]). *)

type options = {
  arch : Gpusim.Arch.t;
  n_warps : int;  (** warps per CTA *)
  weights : Mapping.weights;
  strategy : Mapping.strategy option;  (** [None]: the kernel's default *)
  respect_hints : bool;
  group_syncs : bool;
  buffer_slots : int;
  exp_consts_in_registers : bool;  (** §6.1 ablation *)
  freg_budget : int option;
      (** double registers per thread; [None]: the architecture maximum *)
  param_stripe_threshold : int;
  max_barriers : int;
      (** named-barrier ids per CTA (16 / target CTAs-per-SM, §4.2
          footnote) *)
  ctas_per_sm_target : int;
      (** desired occupancy; bounds the default register budget (§4.1's
          "command line flag specifies the target number of CTAs per SM") *)
  chem_comm : chem_comm option;
      (** chemistry only — communication policy for the species vectors;
          [None] (default) stages everything through shared memory, which
          measured fastest end-to-end (kept as a knob for the ablation
          benchmark) *)
  full_range_thermo : bool;
      (** chemistry only — evaluate both NASA-7 ranges with branchless
          selection on T vs t_mid, so grids below the polynomial mid
          temperature are handled (default [false]: single high range, the
          combustion regime) *)
}

val default_options : Gpusim.Arch.t -> options

val default_strategy : Kernel_abi.kernel -> Mapping.strategy
(** Store for viscosity, Mixed for diffusion, Buffer for chemistry: its
    reaction rates stay in registers and exchange through the shared
    buffer; only the explicitly staged species vectors (Listing 4's
    [scratch]) live in shared memory (§4.1). *)

type t = {
  mech : Chem.Mechanism.t;
  kernel : Kernel_abi.kernel;
  version : version;
  options : options;
  dfg : Dfg.t;
  mapping : Mapping.t;
  schedule : Schedule.t;
  lowered : Lower.output;
}

val compile :
  Chem.Mechanism.t -> Kernel_abi.kernel -> version -> options -> t

val default_ctas : t -> total_points:int -> int
(** Launch-grid size: warp-specialized kernels use a fixed CTA grid (1024,
    capped so each CTA gets at least one 32-point batch) so larger problems
    amortize the constant-loading prologue over more batches (§6.2);
    the baseline launches one thread per point. *)

type run_result = {
  machine : Gpusim.Machine.result;
  max_rel_err : float;
      (** worst relative error of the simulated points' outputs against the
          host reference *)
  outputs : float array array;
}

val run :
  ?ctas:int ->
  ?check:bool ->
  ?seed:int64 ->
  ?t_range:float * float ->
  t ->
  total_points:int ->
  run_result
(** Simulates the kernel on a reproducible random grid; when [check] (the
    default) the functional outputs of all simulated points are compared
    against {!Chem.Ref_kernels}. [t_range] overrides the grid's temperature
    interval (pair it with {!options.full_range_thermo} when going below
    the NASA mid temperature). *)
