(** Dataflow graph of the chemistry kernel (§3.4): four phases —

    {ol
    {- forward and reverse rates of progress for every reaction
       (Arrhenius / Lindemann / Troe / Landau-Teller models, evaluated in
       log space; reverse rates from explicit REV lines or from the
       equilibrium constant via per-species Gibbs energies);}
    {- QSSA scaling ({!Chem.Qssa}'s graph, threaded through SSA value
       versions so the species dependence DAG of Fig. 7 appears as real
       dataflow);}
    {- stiffness damping ({!Chem.Stiffness}; the per-species diffusion
       inputs are the warp-indexed loads of Listing 4);}
    {- per-species net production rates (the output sums).}}

    Warp partitioning follows Fig. 6: reactions the QSSA phase needs are
    assigned first, across {e all} warps; a trailing group of warps is then
    siphoned off for the QSSA computation (its nodes partitioned by a
    greedy balance/locality heuristic) while the remaining warps complete
    the rest of the reactions. The Buffer strategy keeps every rate in its
    producer's registers, exchanged through shared memory in passes. *)

val n_qssa_warps : n_warps:int -> n_qssa:int -> int
(** Warps siphoned off for QSSA: ~a quarter of the CTA, at least 1 when
    QSSA species exist, never all warps. *)

type partition = {
  n_qssa_warps : int;
  reaction_warp : int array;  (** reaction index -> owning warp *)
  qssa_node_warp : int array;  (** QSSA graph node -> owning warp *)
  warp_cost : int array;  (** per-warp FLOP-proxy load *)
}

val partition : Chem.Mechanism.t -> n_warps:int -> partition
(** The Fig. 6 warp assignment by itself (used by [singe_cli partition]
    and the balance tests). *)

val build :
  ?recompute_conc:bool ->
  ?recompute_gibbs:bool ->
  ?full_range_thermo:bool ->
  Chem.Mechanism.t ->
  n_warps:int ->
  Dfg.t
(** [recompute_conc]/[recompute_gibbs] choose redundant per-consumer-warp
    recomputation over shared-memory staging for the effective
    concentrations and Gibbs energies ({!Compile.chem_comm} picks them).
    Recomputation trades registers and FLOPs for shared-memory slots and
    synchronization; with staging, values consumed by a single warp are
    still computed directly in that warp and never touch shared memory.

    [full_range_thermo] (default [false]) evaluates both NASA-7 coefficient
    ranges and selects branchlessly on T vs t_mid, supporting grids below
    the polynomial mid temperature at roughly twice the Gibbs-polynomial
    cost; the default single-range form assumes T >= t_mid everywhere (the
    combustion-relevant regime the evaluation grids use). *)
