lib/singe/kernel_abi.ml: Array Chem Gpusim List String
