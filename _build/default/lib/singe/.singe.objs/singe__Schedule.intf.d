lib/singe/schedule.mli: Dfg Mapping
