lib/singe/cuda_emit.ml: Array Buffer Float Gpusim List Printf String
