lib/singe/autotune.mli: Chem Compile Gpusim Kernel_abi
