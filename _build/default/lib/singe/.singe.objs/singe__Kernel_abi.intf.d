lib/singe/kernel_abi.mli: Chem Gpusim
