lib/singe/autotune.ml: Array Chem Compile Gpusim Kernel_abi List Printf
