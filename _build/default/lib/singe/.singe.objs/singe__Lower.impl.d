lib/singe/lower.ml: Array Dfg Fun Gpusim Hashtbl List Mapping Option Printf Schedule Set Sexpr String Sys
