lib/singe/dfg_interp.ml: Array Chem Dfg Hashtbl Option Sexpr
