lib/singe/conductivity_dfg.ml: Array Chem Dfg Fun List Printf Sexpr Viscosity_dfg
