lib/singe/viscosity_dfg.ml: Array Chem Dfg Fun List Printf Sexpr
