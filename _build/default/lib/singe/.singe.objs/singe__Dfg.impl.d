lib/singe/dfg.ml: Array Format Int List Printf Set Sexpr
