lib/singe/chemistry_dfg.ml: Array Chem Dfg Fun List Option Printf Sexpr
