lib/singe/schedule.ml: Array Dfg Hashtbl List Mapping Printf String Sys
