lib/singe/mapping.ml: Array Dfg List
