lib/singe/mapping.mli: Dfg
