lib/singe/chemistry_dfg.mli: Chem Dfg
