lib/singe/sexpr.mli: Format Gpusim
