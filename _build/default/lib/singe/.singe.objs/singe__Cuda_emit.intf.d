lib/singe/cuda_emit.mli: Gpusim
