lib/singe/lower.mli: Dfg Gpusim Mapping Schedule
