lib/singe/dfg.mli: Format Sexpr
