lib/singe/compile.mli: Chem Dfg Gpusim Kernel_abi Lower Mapping Schedule
