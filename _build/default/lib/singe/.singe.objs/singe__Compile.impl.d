lib/singe/compile.ml: Array Chem Chemistry_dfg Conductivity_dfg Dfg Diffusion_dfg Float Gpusim Kernel_abi Lower Mapping Option Printf Schedule Viscosity_dfg
