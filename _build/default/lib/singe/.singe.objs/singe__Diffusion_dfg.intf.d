lib/singe/diffusion_dfg.mli: Chem Dfg
