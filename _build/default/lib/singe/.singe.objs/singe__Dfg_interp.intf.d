lib/singe/dfg_interp.mli: Chem Dfg Hashtbl
