lib/singe/sexpr.ml: Array Buffer Float Format Gpusim List Printf
