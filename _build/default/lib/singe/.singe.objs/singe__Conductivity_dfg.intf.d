lib/singe/conductivity_dfg.mli: Chem Dfg
