lib/singe/viscosity_dfg.mli: Chem Dfg
