lib/singe/diffusion_dfg.ml: Array Chem Dfg Fun Hashtbl List Printf Sexpr
