(** Dataflow graph of the diffusion kernel with the column partitioning of
    §3.3 / Fig. 5.

    The symmetric NxN pair matrix is covered exactly once by assigning each
    column [i] the rows [i+1 .. i+floor(N/2)] (mod N); for even N the second
    half of the columns computes one row fewer. Warps own contiguous column
    ranges (locality), encoded as mapping hints.

    Each warp traverses its columns {e by row}: a cell [d_ij] is computed
    once and folded into two accumulators — the column partial sum (a
    register chain private to the warp) and the per-row partial sum, which
    crosses warps and is reduced through shared memory under named-barrier
    protection. This is the register/shared {e hybrid} working set the
    paper calls the Mixed strategy. *)

val cells : n:int -> int -> int list
(** [cells ~n i]: rows assigned to column [i] (Fig. 5 scheme). *)

val column_warp : n:int -> n_warps:int -> int -> int
(** Owning warp of a column: contiguous ranges. *)

val covers_all_pairs : n:int -> bool
(** Every unordered pair appears in exactly one column's cell list (used by
    property tests). *)

val build : Chem.Mechanism.t -> n_warps:int -> Dfg.t
