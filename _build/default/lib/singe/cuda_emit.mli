(** CUDA C source emission — what the real Singe compiler produced.

    The simulator executes {!Gpusim.Isa} programs directly, but the paper's
    compiler emitted CUDA source with inline-PTX named barriers (Listing 2)
    and shuffle-based broadcasts (Listing 3). This module renders a lowered
    program as equivalent, human-readable CUDA C:

    {ul
    {- one kernel per program, one grid-stride batch loop per CTA;}
    {- [bar.arrive]/[bar.sync] named barriers via [asm volatile];}
    {- striped constants as [__constant__] banks indexed by warp and lane,
       with the warp-strided overflow region;}
    {- double-precision shuffles via two 32-bit [__shfl_sync]s (Kepler) or
       the shared-memory mirror (Fermi-era devices without shuffle);}
    {- warp-masked regions as mask tests, naive mode as a warp switch;}
    {- explicit per-thread spill arrays for local memory.}}

    The output cannot be compiled here (no CUDA toolchain in this
    repository), but it is valid CUDA C by construction and the emission
    tests check its structural invariants. *)

val emit : arch:Gpusim.Arch.t -> Gpusim.Isa.program -> string
(** Render the program as a self-contained [.cu] translation unit. *)
