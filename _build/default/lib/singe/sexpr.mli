(** Scalar expressions: the bodies of dataflow operations.

    An expression computes one double per grid point from the operation's
    input values ([In i] is the i-th input), compile-time constants, and
    literal immediates. The distinction between [C] and [Imm] matters for
    code generation: [C] constants are {e bankable} — different warps
    executing overlaid code may hold different values for the same constant
    position (§5.2) — while [Imm] immediates are part of the instruction
    encoding and must be identical for two expressions to share shape. *)

type t =
  | Imm of float
  | C of float  (** symbolic constant, materialized per §5.2's policies *)
  | In of int  (** operation input by position *)
  | Un of Gpusim.Isa.fop * t
  | Bin of Gpusim.Isa.fop * t * t
  | Fma3 of t * t * t  (** a*b + c *)
  | Let of t * t
      (** [Let (def, body)]: evaluate [def] once; [Var 0] in [body] refers
          to it (de Bruijn indexing, [Var (i+1)] reaches enclosing lets).
          The only sharing mechanism — expressions are trees, so common
          subexpressions must be bound explicitly. *)
  | Var of int

val let_ : t -> t -> t
(** [let_ def body] binds [def] as [Var 0] within [body]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val fma : t -> t -> t -> t
val div : t -> t -> t
val sqrt_ : t -> t
val exp_ : t -> t
val log_ : t -> t
val max_ : t -> t -> t
val min_ : t -> t -> t
val neg : t -> t

val poly3 : t -> c0:float -> c1:float -> c2:float -> c3:float -> t
(** Horner-form cubic with bankable coefficients (the transport fits). *)

val sum : t list -> t
(** Balanced-tree sum; [Imm 0.] for the empty list. *)

val dot : (float * t) list -> t
(** FMA chain [sum_i c_i * x_i] with bankable coefficients. *)

val n_inputs : t -> int
(** 1 + the largest input index mentioned (0 if none). *)

val constants : t -> float list
(** The [C] values in a canonical (left-to-right) traversal order — the
    order in which code generation assigns constant-array slots, identical
    for two expressions of equal shape. *)

val n_constants : t -> int

val shape : t -> string
(** Structural fingerprint: equal shapes mean the expressions lower to
    identical instruction sequences up to constant values, and can be
    overlaid across warps (§5.1). [C] nodes are wildcards; [Imm], [In] and
    operators must match exactly. *)

val flops : t -> int
(** Per-point FLOPs, counted like {!Gpusim.Isa.fop_flops}. *)

val depth : t -> int

val eval : t -> consts:float array -> input:(int -> float) -> float
(** Reference evaluation; [consts] must be [constants e] (used by tests to
    validate lowering). *)

val pp : Format.formatter -> t -> unit
