module S = Sexpr

let species_warp ~n ~n_warps k = Viscosity_dfg.species_warp ~n ~n_warps k

let build (mech : Chem.Mechanism.t) ~n_warps =
  let computed = Chem.Mechanism.computed_species mech in
  let n = Array.length computed in
  let b = Dfg.Builder.create "conductivity" in
  let warp_of = species_warp ~n ~n_warps in
  let mine =
    Array.init n_warps (fun w ->
        List.filter (fun k -> warp_of k = w) (List.init n Fun.id))
  in
  let max_mine = Array.fold_left (fun a l -> max a (List.length l)) 0 mine in
  let nth_mine w o = List.nth_opt mine.(w) o in
  (* Round-robin emission keeps the per-warp streams aligned (same
     discipline as the other kernels). *)
  let temp_of =
    Array.init n_warps (fun w ->
        Dfg.Builder.load b ~hint:w ~align:"T" ~name:(Printf.sprintf "T_w%d" w)
          ~group:"temperature" ~field:0 ())
  in
  (* Per-species work is entirely warp-local: load x_k, evaluate the fitted
     log conductivity, and fold x*lambda and x/lambda into two running
     accumulators per warp. Nothing crosses warps until the partials. *)
  let acc1 = Array.make n_warps (-1) in
  let acc2 = Array.make n_warps (-1) in
  for o = 0 to max_mine - 1 do
    for w = 0 to n_warps - 1 do
      match nth_mine w o with
      | None -> ()
      | Some k ->
          let xk =
            Dfg.Builder.load b ~hint:w
              ~align:(Printf.sprintf "x:%d" o)
              ~name:(Printf.sprintf "x%d" k) ~group:"mole_frac" ~field:k ()
          in
          let c =
            mech.Chem.Mechanism.transport.Chem.Transport.cond_fit.(computed.(k))
          in
          let lam =
            Dfg.Builder.compute b ~hint:w
              ~align:(Printf.sprintf "lam:%d" o)
              ~name:(Printf.sprintf "lam%d" k)
              ~inputs:[| temp_of.(w) |]
              (S.exp_
                 (S.poly3 (S.In 0) ~c0:c.(0) ~c1:c.(1) ~c2:c.(2) ~c3:c.(3)))
          in
          acc1.(w) <-
            (if acc1.(w) < 0 then
               Dfg.Builder.compute b ~hint:w
                 ~align:(Printf.sprintf "s1:%d" o)
                 ~name:(Printf.sprintf "s1_%d" k)
                 ~inputs:[| xk; lam |]
                 (S.mul (S.In 0) (S.In 1))
             else
               Dfg.Builder.compute b ~hint:w
                 ~align:(Printf.sprintf "s1:%d" o)
                 ~name:(Printf.sprintf "s1_%d" k)
                 ~inputs:[| xk; lam; acc1.(w) |]
                 (S.fma (S.In 0) (S.In 1) (S.In 2)));
          acc2.(w) <-
            (if acc2.(w) < 0 then
               Dfg.Builder.compute b ~hint:w
                 ~align:(Printf.sprintf "s2:%d" o)
                 ~name:(Printf.sprintf "s2_%d" k)
                 ~inputs:[| xk; lam |]
                 (S.div (S.In 0) (S.In 1))
             else
               Dfg.Builder.compute b ~hint:w
                 ~align:(Printf.sprintf "s2:%d" o)
                 ~name:(Printf.sprintf "s2_%d" k)
                 ~inputs:[| xk; lam; acc2.(w) |]
                 (S.add (S.div (S.In 0) (S.In 1)) (S.In 2)))
    done
  done;
  (* Cross-warp combination: each warp's two partials travel once; warp 0
     folds them and stores. A warp with no species contributes zeros. *)
  let zero w name =
    Dfg.Builder.compute b ~hint:w ~name ~inputs:[||] (S.Imm 0.0)
  in
  for w = 0 to n_warps - 1 do
    if acc1.(w) < 0 then begin
      acc1.(w) <- zero w (Printf.sprintf "s1_none_w%d" w);
      acc2.(w) <- zero w (Printf.sprintf "s2_none_w%d" w)
    end
  done;
  let s1 =
    Dfg.Builder.compute b ~hint:0 ~name:"sum_xlam" ~inputs:acc1
      (S.sum (List.init n_warps (fun i -> S.In i)))
  in
  let s2 =
    Dfg.Builder.compute b ~hint:0 ~name:"sum_xinv" ~inputs:acc2
      (S.sum (List.init n_warps (fun i -> S.In i)))
  in
  let out =
    Dfg.Builder.compute b ~hint:0 ~name:"lambda_mix" ~inputs:[| s1; s2 |]
      (S.mul (S.Imm 0.5) (S.add (S.In 0) (S.div (S.Imm 1.0) (S.In 1))))
  in
  Dfg.Builder.store b ~hint:0 ~name:"store" ~group:"out" ~field:0 out;
  Dfg.Builder.finish b
