(** Dataflow graph of the viscosity kernel (§3.2).

    The outer Wilke sum is partitioned by species across warps (Fig. 9's
    peaks at warp counts dividing the species count come from this
    contiguous assignment). Cross-species molar fractions and
    log-viscosities live in shared memory (the Store strategy), but the
    inner pair loop stages them through registers one tile at a time, so
    shared traffic is O(N) per warp per batch instead of O(N^2) — making
    the kernel math-throughput-limited as in §6.1.

    Pair constants [a_kj = 0.25 (ln m_j - ln m_k)] and
    [b_kj = 1/sqrt(1 + m_k/m_j)] are the paper's "2 double precision
    constants" per pair, frozen in {!Chem.Ref_kernels}. *)

val species_warp : n:int -> n_warps:int -> int -> int
(** Owning warp of a species: contiguous ranges. *)

val tile_size : int
(** Cross-species values staged through registers at a time (8). *)

val build : Chem.Mechanism.t -> n_warps:int -> Dfg.t
