(** The memory interface shared by all generated kernels.

    Global field groups (SoA, §3.1):
    {ul
    {- ["temperature"], ["pressure"]: one field each;}
    {- ["mole_frac"]: one field per {e computed} species, indexed by
       position in [Mechanism.computed_species];}
    {- ["diffusion_in"]: per computed species, the diffusion outputs
       consumed by the chemistry stiffness phase (Listing 4);}
    {- ["out"]: kernel outputs — 1 field for viscosity and conductivity,
       N for diffusion (Delta_i), N for chemistry (wdot).}} *)

type kernel = Viscosity | Conductivity | Diffusion | Chemistry
(** [Conductivity] is the transport-suite extension kernel (Mathur mixture
    conductivity) — not one of the paper's three evaluation kernels, but
    S3D's getcoeffs computes it alongside viscosity and diffusion. *)

val kernel_name : kernel -> string
val kernel_of_string : string -> kernel option

val out_fields : Chem.Mechanism.t -> kernel -> int

val groups : Chem.Mechanism.t -> kernel -> Gpusim.Isa.group_info array

val fill_inputs :
  Chem.Mechanism.t -> Chem.Grid.t -> Gpusim.Isa.program ->
  Gpusim.Memstate.t -> int -> unit
(** Copies the first [n] points of the grid into the input groups.
    Requires the grid to hold at least [n] points. *)

val read_outputs : Gpusim.Isa.program -> Gpusim.Memstate.t -> float array array
(** [out] group contents, one array per field. *)

val reference_outputs :
  Chem.Mechanism.t -> Chem.Grid.t -> kernel -> points:int -> float array array
(** Host-reference results in the same field layout, for comparison. *)
