let n_cells ~n i =
  if n mod 2 = 1 then n / 2
  else if i < n / 2 then n / 2
  else (n / 2) - 1

let cells ~n i = List.init (n_cells ~n i) (fun t -> (i + t + 1) mod n)

let in_cells ~n i r =
  let d = (((r - i) mod n) + n) mod n in
  d >= 1 && d <= n_cells ~n i

let column_warp ~n ~n_warps i = min (n_warps - 1) (i * n_warps / n)

let covers_all_pairs ~n =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  for i = 0 to n - 1 do
    List.iter
      (fun j ->
        let key = (min i j, max i j) in
        if i = j || Hashtbl.mem seen key then ok := false
        else Hashtbl.add seen key ())
      (cells ~n i)
  done;
  !ok && Hashtbl.length seen = n * (n - 1) / 2

let build (mech : Chem.Mechanism.t) ~n_warps =
  let computed = Chem.Mechanism.computed_species mech in
  let n = Array.length computed in
  let masses = Chem.Mechanism.molecular_masses mech in
  let m k = masses.(computed.(k)) in
  let b = Dfg.Builder.create "diffusion" in
  let warp_of = column_warp ~n ~n_warps in
  let mine =
    Array.init n_warps (fun w ->
        List.filter (fun k -> warp_of k = w) (List.init n Fun.id))
  in
  let max_mine = Array.fold_left (fun a l -> max a (List.length l)) 0 mine in
  let nth_mine w o = List.nth_opt mine.(w) o in
  (* Round-robin warp emission throughout keeps the streams symmetric (see
     Viscosity_dfg); scalar inputs are loaded redundantly per warp. *)
  let temp_of =
    Array.init n_warps (fun w ->
        Dfg.Builder.load b ~hint:w ~align:"T" ~name:(Printf.sprintf "T_w%d" w)
          ~group:"temperature" ~field:0 ())
  in
  let pres_of =
    Array.init n_warps (fun w ->
        Dfg.Builder.load b ~hint:w ~align:"P" ~name:(Printf.sprintf "P_w%d" w)
          ~group:"pressure" ~field:0 ())
  in
  let x = Array.make n (-1) in
  for o = 0 to max_mine - 1 do
    for w = 0 to n_warps - 1 do
      match nth_mine w o with
      | None -> ()
      | Some k ->
          x.(k) <-
            Dfg.Builder.load b ~hint:w
              ~align:(Printf.sprintf "x:%d" o)
              ~name:(Printf.sprintf "x%d" k) ~group:"mole_frac" ~field:k ()
    done
  done;
  (* The mole fractions are staged in shared memory past this barrier.
     Clamps are recomputed wherever needed ([max] is exact), which halves
     the shared store region. *)
  Dfg.Builder.fence b ~inputs:x;
  let clamp_expr e = Sexpr.max_ (Sexpr.Imm Chem.Ref_kernels.eps_mole_frac) e in
  (* The three whole-mixture sums are cheap; every warp computes its own
     copies rather than synchronizing on a single producer. *)
  let mass_of = Array.make n_warps (-1) in
  let clamped_mass_of = Array.make n_warps (-1) in
  let pscale_of = Array.make n_warps (-1) in
  for w = 0 to n_warps - 1 do
    mass_of.(w) <-
      Dfg.Builder.compute b ~hint:w ~align:"mass"
        ~name:(Printf.sprintf "mass_w%d" w)
        ~inputs:x
        (Sexpr.dot (List.init n (fun k -> (m k, Sexpr.In k))))
  done;
  for w = 0 to n_warps - 1 do
    clamped_mass_of.(w) <-
      Dfg.Builder.compute b ~hint:w ~align:"cmass"
        ~name:(Printf.sprintf "cmass_w%d" w)
        ~inputs:x
        (match List.init n (fun k -> k) with
        | [] -> Sexpr.Imm 0.0
        | k0 :: rest ->
            List.fold_left
              (fun acc k ->
                Sexpr.fma (Sexpr.C (m k)) (clamp_expr (Sexpr.In k)) acc)
              (Sexpr.mul (Sexpr.C (m k0)) (clamp_expr (Sexpr.In k0)))
              rest)
  done;
  for w = 0 to n_warps - 1 do
    pscale_of.(w) <-
      Dfg.Builder.compute b ~hint:w ~align:"pscale"
        ~name:(Printf.sprintf "pscale_w%d" w)
        ~inputs:[| pres_of.(w) |]
        (Sexpr.div (Sexpr.Imm Chem.Rates.p_atm) (Sexpr.In 0))
  done;
  (* Each warp keeps its own columns' clamps register resident. *)
  let col_clamp = Array.make_matrix n_warps max_mine (-1) in
  for o = 0 to max_mine - 1 do
    for w = 0 to n_warps - 1 do
      match nth_mine w o with
      | None -> ()
      | Some i ->
          col_clamp.(w).(o) <-
            Dfg.Builder.compute b ~hint:w
              ~align:(Printf.sprintf "cc:%d" o)
              ~name:(Printf.sprintf "cc%d_w%d" i w)
              ~inputs:[| x.(i) |]
              (clamp_expr (Sexpr.In 0))
    done
  done;
  (* Row-major traversal (Fig. 5): a cell d_ir is computed once and folded
     into the column partial (kept in the owning warp's registers) and the
     warp's row partial. Row partials are reduced every few rows so they
     stay register-resident only briefly; the reductions ship through the
     shared-memory buffer under named barriers — the paper's
     barrier-protected shared partial sums. *)
  (* Large mechanisms shrink the tile so two epochs of shared row partials stay within shared memory. *)
  let row_tile = if n > 40 then 2 else 4 in
  let colsum = Array.make n (-1) in
  let rowsum = Array.make n (-1) in
  let rowpart_final : int option array array =
    Array.init n (fun _ -> Array.make n_warps None)
  in
  let emit_rowsums r_lo r_hi =
    (* A fence publishes the tile's shared row partials; the reductions
       after it need no further synchronization, and the slots recycle for
       the next tile. *)
    let tile_parts =
      List.concat
        (List.init (r_hi - r_lo + 1) (fun t ->
             Array.to_list rowpart_final.(r_lo + t) |> List.filter_map Fun.id))
    in
    if tile_parts <> [] then Dfg.Builder.fence b ~inputs:(Array.of_list tile_parts);
    for r = r_lo to r_hi do
      let parts =
        Array.to_list rowpart_final.(r) |> List.filter_map Fun.id
      in
      if parts <> [] then
        rowsum.(r) <-
          Dfg.Builder.compute b ~hint:(warp_of r)
            ~align:(Printf.sprintf "rs:%d" (r - r_lo))
            ~name:(Printf.sprintf "rowsum%d" r)
            ~inputs:(Array.of_list parts)
            (Sexpr.sum (List.init (List.length parts) (fun t -> Sexpr.In t)))
    done
  in
  for r = 0 to n - 1 do
    (* Stage clamp_r into each participating warp's registers. *)
    let row_clamp = Array.make n_warps (-1) in
    for w = 0 to n_warps - 1 do
      let participates =
        List.exists (fun i -> in_cells ~n i r) mine.(w)
      in
      if participates then
        row_clamp.(w) <-
          Dfg.Builder.compute b ~hint:w
            ~align:(Printf.sprintf "cr:%d" r)
            ~name:(Printf.sprintf "cr%d_w%d" r w)
            ~inputs:[| x.(r) |]
            (clamp_expr (Sexpr.In 0))
    done;
    let rowacc = Array.make n_warps (-1) in
    for o = 0 to max_mine - 1 do
      for w = 0 to n_warps - 1 do
        match nth_mine w o with
        | Some i when in_cells ~n i r ->
            let d =
              mech.Chem.Mechanism.transport.Chem.Transport.diff_fit.(computed.(i)).(computed.(r))
            in
            let cell =
              Dfg.Builder.compute b ~hint:w
                ~align:(Printf.sprintf "d:%d:%d" o r)
                ~name:(Printf.sprintf "d_%d_%d" i r)
                ~inputs:[| temp_of.(w) |]
                (Sexpr.exp_
                   (Sexpr.poly3 (Sexpr.In 0) ~c0:d.(0) ~c1:d.(1) ~c2:d.(2)
                      ~c3:d.(3)))
            in
            colsum.(i) <-
              (if colsum.(i) < 0 then
                 Dfg.Builder.compute b ~hint:w
                   ~align:(Printf.sprintf "col:%d:%d" o r)
                   ~name:(Printf.sprintf "col%d@%d" i r)
                   ~inputs:[| row_clamp.(w); cell |]
                   (Sexpr.mul (Sexpr.In 0) (Sexpr.In 1))
               else
                 Dfg.Builder.compute b ~hint:w
                   ~align:(Printf.sprintf "col:%d:%d" o r)
                   ~name:(Printf.sprintf "col%d@%d" i r)
                   ~inputs:[| row_clamp.(w); cell; colsum.(i) |]
                   (Sexpr.fma (Sexpr.In 0) (Sexpr.In 1) (Sexpr.In 2)));
            let is_last =
              not (List.exists (fun i' -> i' > i && in_cells ~n i' r) mine.(w))
            in
            rowacc.(w) <-
              (if rowacc.(w) < 0 then
                 Dfg.Builder.compute b ~hint:w ~shared_hint:is_last
                   ~align:(Printf.sprintf "rp:%d:%d" o r)
                   ~name:(Printf.sprintf "rp%d_w%d@%d" r w i)
                   ~inputs:[| col_clamp.(w).(o); cell |]
                   (Sexpr.mul (Sexpr.In 0) (Sexpr.In 1))
               else
                 Dfg.Builder.compute b ~hint:w ~shared_hint:is_last
                   ~align:(Printf.sprintf "rp:%d:%d" o r)
                   ~name:(Printf.sprintf "rp%d_w%d@%d" r w i)
                   ~inputs:[| col_clamp.(w).(o); cell; rowacc.(w) |]
                   (Sexpr.fma (Sexpr.In 0) (Sexpr.In 1) (Sexpr.In 2)))
        | Some _ | None -> ()
      done
    done;
    for w = 0 to n_warps - 1 do
      if rowacc.(w) >= 0 then
        rowpart_final.(r).(w) <- Some rowacc.(w)
    done;
    if (r + 1) mod row_tile = 0 then emit_rowsums (r + 1 - row_tile) r
  done;
  emit_rowsums (n / row_tile * row_tile) (n - 1);
  (* Per-species outputs, round-robin by column ordinal. *)
  for o = 0 to max_mine - 1 do
    for w = 0 to n_warps - 1 do
      match nth_mine w o with
      | None -> ()
      | Some i ->
          let denom_parts =
            (if colsum.(i) >= 0 then [ colsum.(i) ] else [])
            @ (if rowsum.(i) >= 0 then [ rowsum.(i) ] else [])
          in
          assert (denom_parts <> []);
          let fixed =
            [| pscale_of.(w); clamped_mass_of.(w); x.(i); mass_of.(w) |]
          in
          let inputs = Array.append fixed (Array.of_list denom_parts) in
          let denom_expr =
            Sexpr.sum
              (List.init (List.length denom_parts) (fun t -> Sexpr.In (4 + t)))
          in
          let delta =
            Dfg.Builder.compute b ~hint:w
              ~align:(Printf.sprintf "delta:%d" o)
              ~name:(Printf.sprintf "delta%d" i)
              ~inputs
              (Sexpr.div
                 (Sexpr.mul (Sexpr.In 0)
                    (Sexpr.sub (Sexpr.In 1)
                       (Sexpr.mul (clamp_expr (Sexpr.In 2)) (Sexpr.C (m i)))))
                 (Sexpr.mul (Sexpr.In 3) denom_expr))
          in
          Dfg.Builder.store b ~hint:w
            ~align:(Printf.sprintf "stor:%d" o)
            ~name:(Printf.sprintf "store%d" i)
            ~group:"out" ~field:i delta
    done
  done;
  Dfg.Builder.finish b
