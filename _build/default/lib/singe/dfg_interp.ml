type inputs = {
  temp : float;
  pressure : float;
  mole_frac : float array;
  diffusion : float array;
}

let point_inputs mech grid p =
  let computed = Chem.Mechanism.computed_species mech in
  let full = Chem.Grid.point_mole_fracs grid mech p in
  let diff = Chem.Grid.point_diffusion grid p in
  {
    temp = Chem.Grid.point_temperature grid p;
    pressure = Chem.Grid.point_pressure grid p;
    mole_frac = Array.map (fun sp -> full.(sp)) computed;
    diffusion = Array.map (fun sp -> diff.(sp)) computed;
  }

let eval (dfg : Dfg.t) inputs =
  let values = Array.make (max 1 (Array.length dfg.Dfg.values)) 0.0 in
  let out = Hashtbl.create 8 in
  Array.iter
    (fun op_id ->
      let op = dfg.Dfg.ops.(op_id) in
      match op.Dfg.kind with
      | Dfg.Load { group; field; _ } ->
          let v =
            match group with
            | "temperature" -> inputs.temp
            | "pressure" -> inputs.pressure
            | "mole_frac" -> inputs.mole_frac.(field)
            | "diffusion_in" -> inputs.diffusion.(field)
            | other -> invalid_arg ("dfg_interp: unknown input group " ^ other)
          in
          values.(Option.get op.Dfg.output) <- v
      | Dfg.Compute e ->
          let consts = Array.of_list (Sexpr.constants e) in
          let v =
            Sexpr.eval e ~consts ~input:(fun i -> values.(op.Dfg.inputs.(i)))
          in
          values.(Option.get op.Dfg.output) <- v
      | Dfg.Fence -> ()
      | Dfg.Store { group; field } ->
          if group = "out" then Hashtbl.replace out field values.(op.Dfg.inputs.(0))
          else invalid_arg ("dfg_interp: store to unknown group " ^ group))
    (Dfg.topo_order dfg);
  out

let eval_field dfg inputs f =
  let out = eval dfg inputs in
  match Hashtbl.find_opt out f with
  | Some v -> v
  | None -> raise Not_found
