(** Direct (scalar, host-side) interpretation of a dataflow graph for one
    grid point. This gives a third, independent evaluation of every kernel
    — used by tests to pin the DFG-construction stage against
    {!Chem.Ref_kernels}, separating partitioning bugs from code-generation
    bugs. *)

type inputs = {
  temp : float;
  pressure : float;
  mole_frac : float array;  (** indexed by computed-species position *)
  diffusion : float array;  (** indexed by computed-species position *)
}

val point_inputs : Chem.Mechanism.t -> Chem.Grid.t -> int -> inputs

val eval : Dfg.t -> inputs -> (int, float) Hashtbl.t
(** Evaluates every operation in topological order; the result maps the
    [out] group's field index to the stored value. *)

val eval_field : Dfg.t -> inputs -> int -> float
(** Value stored to [out] field [f]. Raises [Not_found] if the graph never
    stores it. *)
