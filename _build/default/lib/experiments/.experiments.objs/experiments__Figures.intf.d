lib/experiments/figures.mli: Chem Singe
