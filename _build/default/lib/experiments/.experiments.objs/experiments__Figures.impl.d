lib/experiments/figures.ml: Array Chem Gpusim Hashtbl List Printf Singe String Sys
