type t = {
  visc_fit : float array array;
  cond_fit : float array array;
  diff_fit : float array array array;
}

let t_fit_low = 300.0
let t_fit_high = 3000.0
let n_fit_points = 20

(* Neufeld's empirical approximations to the reduced collision integrals. *)
let omega22 t_star =
  (1.16145 *. (t_star ** -0.14874))
  +. (0.52487 *. exp (-0.7732 *. t_star))
  +. (2.16178 *. exp (-2.43787 *. t_star))

let omega11 t_star =
  (1.06036 *. (t_star ** -0.15610))
  +. (0.19300 *. exp (-0.47635 *. t_star))
  +. (1.03587 *. exp (-1.52996 *. t_star))
  +. (1.76474 *. exp (-3.89411 *. t_star))

let kinetic_viscosity (sp : Species.t) temp =
  let p = sp.Species.transport in
  let t_star = temp /. p.Species.well_depth in
  let mass = Species.molecular_mass sp in
  (* 5/16 sqrt(pi m k T) / (pi sigma^2 Omega22); constants folded since only
     relative magnitudes matter for the kernels. *)
  2.6693e-6 *. sqrt (mass *. temp)
  /. (p.Species.diameter *. p.Species.diameter *. omega22 t_star)

(* Modified Eucken correction: lambda = eta (cp/W + 5/4 R/W); cp/R is
   approximated by the translational+rotational value for the species'
   atom count (monatomic 5/2, otherwise 7/2), which keeps the fit
   independent of the thermodynamic tables. *)
let kinetic_conductivity (sp : Species.t) temp =
  let eta = kinetic_viscosity sp temp in
  let mass = Species.molecular_mass sp in
  let cp_over_r = if Species.total_atoms sp <= 1 then 2.5 else 3.5 in
  eta /. mass *. (cp_over_r +. 1.25)

let kinetic_diffusion (a : Species.t) (b : Species.t) temp =
  let pa = a.Species.transport and pb = b.Species.transport in
  let sigma = 0.5 *. (pa.Species.diameter +. pb.Species.diameter) in
  let eps = sqrt (pa.Species.well_depth *. pb.Species.well_depth) in
  let t_star = temp /. eps in
  let ma = Species.molecular_mass a and mb = Species.molecular_mass b in
  let reduced_mass = ma *. mb /. (ma +. mb) in
  0.00266 *. (temp ** 1.5)
  /. (sqrt reduced_mass *. sigma *. sigma *. omega11 t_star)

let sample_points f =
  let pts = ref [] in
  for k = n_fit_points - 1 downto 0 do
    let temp =
      t_fit_low
      +. (float_of_int k /. float_of_int (n_fit_points - 1))
         *. (t_fit_high -. t_fit_low)
    in
    pts := (temp, log (f temp)) :: !pts
  done;
  !pts

let fit species =
  let n = Array.length species in
  let visc_fit =
    Array.map
      (fun sp -> Sutil.Linalg.polyfit ~degree:3 (sample_points (kinetic_viscosity sp)))
      species
  in
  let cond_fit =
    Array.map
      (fun sp ->
        Sutil.Linalg.polyfit ~degree:3 (sample_points (kinetic_conductivity sp)))
      species
  in
  let diff_fit =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then Array.make 4 0.0
            else if j < i then Array.make 4 0.0 (* filled below by symmetry *)
            else
              Sutil.Linalg.polyfit ~degree:3
                (sample_points (kinetic_diffusion species.(i) species.(j)))))
  in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      diff_fit.(i).(j) <- diff_fit.(j).(i)
    done
  done;
  { visc_fit; cond_fit; diff_fit }

let eval_fit c temp =
  exp (c.(0) +. (temp *. (c.(1) +. (temp *. (c.(2) +. (temp *. c.(3)))))))

let viscosity t i temp = eval_fit t.visc_fit.(i) temp
let conductivity t i temp = eval_fit t.cond_fit.(i) temp

let diffusion t i j temp =
  assert (i <> j);
  eval_fit t.diff_fit.(i).(j) temp

let constant_bytes ~n =
  (* Two combination constants for each of the N(N-1) off-diagonal pairs
     (the k=j pair needs none: both fold to known values). This reproduces
     the paper's 13.9 KB (N=30) and 42.4 KB (N=52) exactly, in decimal KB. *)
  n * (n - 1) * 2 * 8

let diffusion_constant_bytes ~n =
  (* Four delta coefficients per strict-upper-triangle pair. *)
  n * (n - 1) / 2 * 4 * 8
