type t = {
  points : int;
  temperature : float array;
  pressure : float array;
  mole_frac : float array array;
  diffusion_in : float array array;
}

let create ?(t_range = (1000.0, 2500.0)) mech ~points ~seed =
  let t_lo, t_hi = t_range in
  let rng = Sutil.Prng.create seed in
  let n = Mechanism.n_species mech in
  let computed = Mechanism.computed_species mech in
  let temperature =
    Array.init points (fun _ -> Sutil.Prng.range rng t_lo t_hi)
  in
  let pressure =
    Array.init points (fun _ -> Rates.p_atm *. Sutil.Prng.range rng 0.8 1.2)
  in
  let mole_frac = Array.init n (fun _ -> Array.make points 0.0) in
  for p = 0 to points - 1 do
    let raw =
      Array.map (fun _ -> 1e-6 +. Sutil.Prng.float rng 1.0) computed
    in
    let total = Array.fold_left ( +. ) 0.0 raw in
    Array.iteri (fun k sp -> mole_frac.(sp).(p) <- raw.(k) /. total) computed
  done;
  let diffusion_in =
    Array.init n (fun _ ->
        Array.init points (fun _ -> Sutil.Prng.log_range rng 1e-6 1e-2))
  in
  { points; temperature; pressure; mole_frac; diffusion_in }

let point_temperature t p = t.temperature.(p)
let point_pressure t p = t.pressure.(p)

let point_mole_fracs t mech p =
  Array.init (Mechanism.n_species mech) (fun sp -> t.mole_frac.(sp).(p))

let point_diffusion t p =
  Array.map (fun row -> row.(p)) t.diffusion_in
