(** Scalar host implementations of the three combustion kernels (§3.2-3.4).

    These are the numerical ground truth: the warp-specialized and baseline
    GPU programs emitted by the compiler must reproduce these outputs (up to
    floating-point reassociation) when executed functionally on the
    simulator. All per-species loops range over the mechanism's *computed*
    (non-QSSA) species, the N of the paper's formulas (52 for heptane).

    Conventions frozen here and mirrored by the DFG builders:
    {ul
    {- viscosity pair constants: [a_kj = 0.25 (ln m_j - ln m_k)] and
       [b_kj = 1 / sqrt (1 + m_k/m_j)] (the paper's "2 double precision
       constants" per pair);}
    {- diffusion mole-fraction clamp epsilon {!eps_mole_frac};}
    {- chemistry: QSSA species enter rate products with effective
       concentration 1.0 (their magnitude is restored by the QSSA scaling
       phase).}} *)

val eps_mole_frac : float
(** Minimum molar fraction used by the diffusion clamp, 1e-12. *)

val pair_constants : Mechanism.t -> float array array * float array array
(** [(a, b)] where [a.(k).(j) = 0.25 (ln m_j - ln m_k)] and
    [b.(k).(j) = 1/sqrt(1 + m_k/m_j)], indexed by computed-species
    position — the per-pair constants the viscosity kernel banks. *)

val log_viscosities : Mechanism.t -> temp:float -> float array
(** Fitted log viscosity of each computed species. *)

val log_conductivities : Mechanism.t -> temp:float -> float array
(** Fitted log thermal conductivity of each computed species. *)

val conductivity_point :
  Mechanism.t -> temp:float -> mole_frac:float array -> float
(** Mixture thermal conductivity of one grid point (Mathur's
    combination-averaging formula — the transport-suite extension kernel,
    not one of the paper's three). *)

val viscosity_point :
  Mechanism.t -> temp:float -> mole_frac:float array -> float
(** Mixture viscosity nu of one grid point (the paper's Wilke-form double
    sum, evaluated in log space). [mole_frac] is indexed by full species
    index. *)

val diffusion_point :
  Mechanism.t ->
  temp:float ->
  pressure:float ->
  mole_frac:float array ->
  float array
(** Per-computed-species diffusion outputs Delta_i, indexed like
    [Mechanism.computed_species]. *)

type chemistry_result = {
  rr_f : float array;  (** forward rate of progress per reaction, post-scaling *)
  rr_r : float array;
  qssa_scales : float array;  (** per QSSA node *)
  stiff_gammas : float array;  (** per stiff node *)
  wdot : float array;  (** net production rate per computed species *)
}

val chemistry_point :
  Mechanism.t ->
  temp:float ->
  pressure:float ->
  mole_frac:float array ->
  diffusion:float array ->
  chemistry_result
(** All four chemistry phases of §3.4: rates, QSSA, stiffness, output.
    [diffusion] is the full per-species diffusion input vector. *)

val flop_counts : Mechanism.t -> (string * int) list
(** Rough per-point FLOP counts of the three kernels, used by experiment
    reporting; keys are ["viscosity"], ["diffusion"], ["chemistry"]. *)
