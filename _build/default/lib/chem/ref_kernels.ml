let eps_mole_frac = 1e-12

(* Log-viscosity of computed species k at temperature t: the cubic fit is of
   log viscosity, so no exp is needed until the pair interactions. *)
let log_viscosities mech ~temp =
  let computed = Mechanism.computed_species mech in
  Array.map
    (fun sp ->
      let c = mech.Mechanism.transport.Transport.visc_fit.(sp) in
      c.(0) +. (temp *. (c.(1) +. (temp *. (c.(2) +. (temp *. c.(3)))))))
    computed

let pair_constants mech =
  let computed = Mechanism.computed_species mech in
  let masses = Mechanism.molecular_masses mech in
  let n = Array.length computed in
  let a = Array.make_matrix n n 0.0 and b = Array.make_matrix n n 0.0 in
  for k = 0 to n - 1 do
    for j = 0 to n - 1 do
      let mk = masses.(computed.(k)) and mj = masses.(computed.(j)) in
      a.(k).(j) <- 0.25 *. (log mj -. log mk);
      b.(k).(j) <- 1.0 /. sqrt (1.0 +. (mk /. mj))
    done
  done;
  (a, b)

let log_conductivities mech ~temp =
  let computed = Mechanism.computed_species mech in
  Array.map
    (fun sp ->
      let c = mech.Mechanism.transport.Transport.cond_fit.(sp) in
      c.(0) +. (temp *. (c.(1) +. (temp *. (c.(2) +. (temp *. c.(3)))))))
    computed

let conductivity_point mech ~temp ~mole_frac =
  (* Mathur's combination-averaging formula:
     lambda = 1/2 (sum_k x_k lambda_k + 1 / sum_k (x_k / lambda_k)). *)
  let computed = Mechanism.computed_species mech in
  let n = Array.length computed in
  let lam = Array.map exp (log_conductivities mech ~temp) in
  let x = Array.map (fun sp -> mole_frac.(sp)) computed in
  let s1 = ref 0.0 and s2 = ref 0.0 in
  for k = 0 to n - 1 do
    s1 := !s1 +. (x.(k) *. lam.(k));
    s2 := !s2 +. (x.(k) /. lam.(k))
  done;
  0.5 *. (!s1 +. (1.0 /. !s2))

let viscosity_point mech ~temp ~mole_frac =
  let computed = Mechanism.computed_species mech in
  let n = Array.length computed in
  let lvis = log_viscosities mech ~temp in
  let vis = Array.map exp lvis in
  let a, b = pair_constants mech in
  let x = Array.map (fun sp -> mole_frac.(sp)) computed in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    let inner = ref 0.0 in
    for j = 0 to n - 1 do
      let t = exp ((0.5 *. (lvis.(k) -. lvis.(j))) +. a.(k).(j)) in
      let phi = (1.0 +. t) *. (1.0 +. t) *. b.(k).(j) in
      inner := !inner +. (x.(j) *. phi)
    done;
    total := !total +. (x.(k) *. vis.(k) /. !inner)
  done;
  sqrt 8.0 *. !total

let diffusion_point mech ~temp ~pressure ~mole_frac =
  let computed = Mechanism.computed_species mech in
  let n = Array.length computed in
  let masses = Mechanism.molecular_masses mech in
  let x = Array.map (fun sp -> mole_frac.(sp)) computed in
  let m = Array.map (fun sp -> masses.(sp)) computed in
  let clamp = Array.map (fun xi -> Float.max eps_mole_frac xi) x in
  let mass = ref 0.0 and clamped_mass = ref 0.0 in
  for j = 0 to n - 1 do
    mass := !mass +. (m.(j) *. x.(j));
    clamped_mass := !clamped_mass +. (clamp.(j) *. m.(j))
  done;
  let scale = Rates.p_atm /. pressure in
  Array.init n (fun i ->
      let denom_sum = ref 0.0 in
      for j = 0 to n - 1 do
        if j <> i then begin
          let d =
            Transport.diffusion mech.Mechanism.transport computed.(i)
              computed.(j) temp
          in
          denom_sum := !denom_sum +. (clamp.(j) *. d)
        end
      done;
      let numer = (-.clamp.(i) *. m.(i)) +. !clamped_mass in
      scale *. numer /. (!mass *. !denom_sum))

type chemistry_result = {
  rr_f : float array;
  rr_r : float array;
  qssa_scales : float array;
  stiff_gammas : float array;
  wdot : float array;
}

let effective_concentrations mech ~temp ~pressure ~mole_frac =
  let n = Mechanism.n_species mech in
  let ctot = pressure /. (Thermo.gas_constant *. temp) in
  Array.init n (fun sp ->
      if Mechanism.is_qssa mech sp then 1.0 else mole_frac.(sp) *. ctot)

let chemistry_point mech ~temp ~pressure ~mole_frac ~diffusion =
  let reactions = mech.Mechanism.reactions in
  let nr = Array.length reactions in
  let conc = effective_concentrations mech ~temp ~pressure ~mole_frac in
  (* Phase 1: forward and reverse rates of progress for every reaction. *)
  let rr_f = Array.make nr 0.0 and rr_r = Array.make nr 0.0 in
  Array.iteri
    (fun ri r ->
      let qf, qr = Rates.progress ~pressure mech.Mechanism.thermo r ~temp ~conc in
      rr_f.(ri) <- qf;
      rr_r.(ri) <- qr)
    reactions;
  (* Phase 2: QSSA scaling. *)
  let qssa_graph = Qssa.build mech in
  let qssa_scales = Qssa.eval qssa_graph ~rr_f ~rr_r in
  (* Phase 3: stiffness damping. *)
  let stiff_nodes = Stiffness.build mech in
  let stiff_gammas =
    Stiffness.eval stiff_nodes ~mole_frac ~diffusion ~rr_f ~rr_r
  in
  (* Output phase: per-computed-species net production rates. *)
  let computed = Mechanism.computed_species mech in
  let wdot =
    Array.map
      (fun sp ->
        let acc = ref 0.0 in
        Array.iteri
          (fun ri r ->
            let d = Reaction.delta_stoich r sp in
            if d <> 0 then
              acc := !acc +. (float_of_int d *. (rr_f.(ri) -. rr_r.(ri))))
          reactions;
        !acc)
      computed
  in
  { rr_f; rr_r; qssa_scales; stiff_gammas; wdot }

let flop_counts mech =
  let n = Array.length (Mechanism.computed_species mech) in
  let nr = Mechanism.n_reactions mech in
  let exp_cost = 14 (* ~12 DFMA Taylor + range reduction *) in
  let viscosity =
    (* per species: cubic poly (6) + exp; per pair: exp + 2 add + 2 mul +
       fma; per species: divide (~8) + fma. *)
    (n * (6 + exp_cost)) + (n * n * (exp_cost + 6)) + (n * 10)
  in
  let diffusion =
    (* pair fits on the strict upper triangle + per-species divide and
       scaling + the three shared sums. *)
    (n * (n - 1) / 2 * (6 + exp_cost)) + (n * (n + 20)) + (6 * n)
  in
  let chemistry =
    let rate_cost r =
      (match r.Reaction.rate with
      | Reaction.Simple _ -> 6 + exp_cost
      | Reaction.Landau_teller _ -> 10 + (2 * exp_cost)
      | Reaction.Falloff { kind = Reaction.Lindemann; _ } ->
          (2 * (6 + exp_cost)) + 12
      | Reaction.Falloff { kind = Reaction.Troe _; _ } ->
          (2 * (6 + exp_cost)) + (3 * exp_cost) + 24
      | Reaction.Falloff { kind = Reaction.Sri _; _ } ->
          (2 * (6 + exp_cost)) + (4 * exp_cost) + 20
      | Reaction.Plog table -> (List.length table * 10) + exp_cost + 8)
      +
      match r.Reaction.reverse with
      | Reaction.Irreversible -> 0
      | Reaction.Explicit _ -> 6 + exp_cost
      | Reaction.From_equilibrium ->
          (* Gibbs for each participant (two 7-coeff polys + log) + exp. *)
          (List.length (Reaction.species_involved r) * 16) + exp_cost
    in
    let rates = Array.fold_left (fun acc r -> acc + rate_cost r) 0 mech.Mechanism.reactions in
    let qssa =
      Array.fold_left
        (fun acc node -> acc + node.Qssa.flops)
        0 (Qssa.build mech).Qssa.nodes
    in
    let stiff =
      Array.fold_left (fun acc node -> acc + node.Stiffness.flops) 0
        (Stiffness.build mech)
    in
    let output = 2 * 4 * nr (* ~4 species touched per reaction *) in
    rates + qssa + stiff + output
  in
  let conductivity =
    (* per species: cubic poly + exp + a multiply, a divide and two adds. *)
    n * (6 + exp_cost + 12)
  in
  [
    ("viscosity", viscosity);
    ("conductivity", conductivity);
    ("diffusion", diffusion);
    ("chemistry", chemistry);
  ]
