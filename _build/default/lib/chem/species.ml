type element = H | C | O | N | Ar | He

let all_elements = [| H; C; O; N; Ar; He |]

let element_of_string s =
  match String.uppercase_ascii s with
  | "H" -> Some H
  | "C" -> Some C
  | "O" -> Some O
  | "N" -> Some N
  | "AR" -> Some Ar
  | "HE" -> Some He
  | _ -> None

let element_symbol = function
  | H -> "H"
  | C -> "C"
  | O -> "O"
  | N -> "N"
  | Ar -> "AR"
  | He -> "HE"

let atomic_mass = function
  | H -> 1.00794
  | C -> 12.0107
  | O -> 15.9994
  | N -> 14.0067
  | Ar -> 39.948
  | He -> 4.002602

type transport_params = {
  geometry : int;
  well_depth : float;
  diameter : float;
  dipole : float;
  polarizability : float;
  rot_relax : float;
}

let default_transport =
  {
    geometry = 2;
    well_depth = 250.0;
    diameter = 4.0;
    dipole = 0.0;
    polarizability = 1.5;
    rot_relax = 1.0;
  }

type t = {
  name : string;
  composition : (element * int) list;
  transport : transport_params;
}

let element_index = function
  | H -> 0
  | C -> 1
  | O -> 2
  | N -> 3
  | Ar -> 4
  | He -> 5

let make ?(transport = default_transport) ~name comp =
  let counts = Array.make (Array.length all_elements) 0 in
  List.iter (fun (e, n) -> counts.(element_index e) <- counts.(element_index e) + n) comp;
  let composition =
    Array.to_list all_elements
    |> List.filter_map (fun e ->
           let n = counts.(element_index e) in
           if n > 0 then Some (e, n) else None)
  in
  { name; composition; transport }

let parse_formula s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else begin
      (* Longest-match element symbol: try two characters, then one. *)
      let two =
        if i + 2 <= n then element_of_string (String.sub s i 2) else None
      in
      let sym, next =
        match two with
        | Some e -> (Some e, i + 2)
        | None -> (element_of_string (String.sub s i 1), i + 1)
      in
      match sym with
      | None -> Error (Printf.sprintf "bad element at position %d in %S" i s)
      | Some e ->
          let j = ref next in
          while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
            incr j
          done;
          let count =
            if !j = next then 1
            else int_of_string (String.sub s next (!j - next))
          in
          go !j ((e, count) :: acc)
    end
  in
  go 0 []

let of_formula ?transport ~name f =
  match parse_formula f with
  | Ok comp -> make ?transport ~name comp
  | Error msg -> invalid_arg msg

let molecular_mass t =
  List.fold_left
    (fun acc (e, n) -> acc +. (float_of_int n *. atomic_mass e))
    0.0 t.composition

let atom_count t e =
  match List.assoc_opt e t.composition with Some n -> n | None -> 0

let total_atoms t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.composition

let composition_vector t =
  Array.map (fun e -> atom_count t e) all_elements

let formula t =
  (* Hill-ish ordering: C first, then H, then the rest alphabetically. *)
  let order = [ C; H; O; N; Ar; He ] in
  let buf = Buffer.create 16 in
  let emit e =
    match atom_count t e with
    | 0 -> ()
    | 1 -> Buffer.add_string buf (element_symbol e)
    | n ->
        Buffer.add_string buf (element_symbol e);
        Buffer.add_string buf (string_of_int n)
  in
  List.iter emit order;
  if Buffer.length buf = 0 then "(none)" else Buffer.contents buf

let equal_composition a b = composition_vector a = composition_vector b

let pp ppf t =
  Format.fprintf ppf "%s(%s, M=%.3f)" t.name (formula t) (molecular_mass t)
