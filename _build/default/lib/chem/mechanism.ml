type t = {
  name : string;
  species : Species.t array;
  reactions : Reaction.t array;
  thermo : Thermo.table;
  transport : Transport.t;
  qssa : int array;
  stiff : int array;
}

let make ~name ~species ~reactions ~thermo ?(qssa = [||]) ?(stiff = [||]) () =
  let n = Array.length species in
  let clean tag arr =
    let l = Array.to_list arr |> List.sort_uniq compare in
    List.iter
      (fun i ->
        if i < 0 || i >= n then
          invalid_arg (Printf.sprintf "%s species index %d out of range" tag i))
      l;
    Array.of_list l
  in
  let qssa = clean "QSSA" qssa and stiff = clean "stiff" stiff in
  Array.iter
    (fun i ->
      if Array.exists (( = ) i) stiff then
        invalid_arg "QSSA and stiff species sets must be disjoint")
    qssa;
  let transport = Transport.fit species in
  { name; species; reactions; thermo; transport; qssa; stiff }

let n_species t = Array.length t.species
let n_reactions t = Array.length t.reactions
let n_qssa t = Array.length t.qssa
let n_stiff t = Array.length t.stiff

let is_qssa t i = Array.exists (( = ) i) t.qssa
let is_stiff t i = Array.exists (( = ) i) t.stiff

let computed_species t =
  Array.init (n_species t) (fun i -> i)
  |> Array.to_list
  |> List.filter (fun i -> not (is_qssa t i))
  |> Array.of_list

let molecular_masses t = Array.map Species.molecular_mass t.species

let species_index t name =
  let target = String.uppercase_ascii name in
  let found = ref (-1) in
  Array.iteri
    (fun i sp ->
      if !found < 0 && String.uppercase_ascii sp.Species.name = target then
        found := i)
    t.species;
  if !found < 0 then raise Not_found else !found

let validate t =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let n = n_species t in
  if Array.length t.thermo <> n then
    err "thermo table has %d entries for %d species" (Array.length t.thermo) n;
  Array.iteri
    (fun i e ->
      match Thermo.validate e with
      | Ok () -> ()
      | Error msg -> err "thermo entry %d: %s" i msg)
    t.thermo;
  if Array.length t.transport.Transport.visc_fit <> n then
    err "transport viscosity table size mismatch";
  Array.iteri
    (fun ri r ->
      List.iter
        (fun (sp, coeff) ->
          if sp < 0 || sp >= n then
            err "reaction %d references species %d out of range" ri sp;
          if coeff <= 0 then err "reaction %d has non-positive coefficient" ri)
        (r.Reaction.reactants @ r.Reaction.products);
      if r.Reaction.reactants = [] || r.Reaction.products = [] then
        err "reaction %d has an empty side" ri;
      match Reaction.element_balance t.species r with
      | Ok () -> ()
      | Error msg -> err "reaction %d: %s" ri msg)
    t.reactions;
  match !problems with [] -> Ok () | l -> Error (List.rev l)

let summary t =
  Printf.sprintf "%-10s %9d %8d %5d %6d" t.name (n_reactions t) (n_species t)
    (n_qssa t) (n_stiff t)

let pp ppf t =
  Format.fprintf ppf "mechanism %s: %d species, %d reactions, %d QSSA, %d stiff"
    t.name (n_species t) (n_reactions t) (n_qssa t) (n_stiff t)
