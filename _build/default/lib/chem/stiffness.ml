type node = {
  species : int;
  produced_by : (int * int) list;
  consumed_by : (int * int) list;
  flops : int;
}

let tau = 1e-3

let build (mech : Mechanism.t) =
  let side_coeff side sp =
    match List.assoc_opt sp side with Some c -> c | None -> 0
  in
  Array.map
    (fun sp ->
      let produced_by = ref [] and consumed_by = ref [] in
      Array.iteri
        (fun ri r ->
          let p = side_coeff r.Reaction.products sp in
          let c = side_coeff r.Reaction.reactants sp in
          if p > 0 then produced_by := (ri, p) :: !produced_by;
          if c > 0 then consumed_by := (ri, c) :: !consumed_by)
        mech.Mechanism.reactions;
      let produced_by = List.rev !produced_by in
      let consumed_by = List.rev !consumed_by in
      let n_terms = List.length consumed_by in
      {
        species = sp;
        produced_by;
        consumed_by;
        flops = (2 * n_terms) + 8 + (2 * (n_terms + List.length produced_by));
      })
    mech.Mechanism.stiff

let eval nodes ~mole_frac ~diffusion ~rr_f ~rr_r =
  let gammas =
    Array.map
      (fun node ->
        let cons =
          List.fold_left
            (fun acc (r, nu) -> acc +. (float_of_int nu *. rr_f.(r)))
            0.0 node.consumed_by
        in
        let x = mole_frac.(node.species) in
        x /. (x +. (tau *. (cons +. diffusion.(node.species)))))
      nodes
  in
  Array.iteri
    (fun k node ->
      let gamma = gammas.(k) in
      List.iter (fun (r, _) -> rr_f.(r) <- rr_f.(r) *. gamma) node.consumed_by;
      List.iter (fun (r, _) -> rr_r.(r) <- rr_r.(r) *. gamma) node.produced_by)
    nodes;
  gammas
