(** A chemical mechanism: the complete input to the Singe compiler
    (CHEMKIN + THERMO + TRANSPORT (+ QSSA/stiff) files, Fig. 3). *)

type t = {
  name : string;
  species : Species.t array;
  reactions : Reaction.t array;
  thermo : Thermo.table;
  transport : Transport.t;
  qssa : int array;  (** indices of quasi-steady-state species, sorted *)
  stiff : int array;  (** indices of stiffness-corrected species, sorted *)
}

val make :
  name:string ->
  species:Species.t array ->
  reactions:Reaction.t array ->
  thermo:Thermo.table ->
  ?qssa:int array ->
  ?stiff:int array ->
  unit ->
  t
(** Sorts and deduplicates the QSSA/stiff sets. Raises [Invalid_argument] on
    out-of-range indices or QSSA/stiff overlap. *)

val n_species : t -> int
val n_reactions : t -> int
val n_qssa : t -> int
val n_stiff : t -> int

val is_qssa : t -> int -> bool
val is_stiff : t -> int -> bool

val computed_species : t -> int array
(** Species actually carried by the simulation, i.e. all species minus the
    QSSA set (52 for heptane in the paper). *)

val molecular_masses : t -> float array

val species_index : t -> string -> int
(** Index by (case-insensitive) name. Raises [Not_found]. *)

val validate : t -> (unit, string list) result
(** Structural validation: table sizes, index ranges, thermo ranges,
    element balance of every reaction. Returns all problems found. *)

val summary : t -> string
(** One-line "Fig. 3 row": reactions / species / QSSA / stiff counts. *)

val pp : Format.formatter -> t -> unit
