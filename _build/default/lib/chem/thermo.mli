(** NASA-7 polynomial thermodynamics (the THERMO-file standard).

    Each species carries two coefficient sets of seven, one for the low
    temperature range [\[t_low, t_mid\]] and one for the high range
    [\[t_mid, t_high\]]. Nondimensional properties:
    {ul
    {- [cp/R  = a1 + a2 T + a3 T^2 + a4 T^3 + a5 T^4]}
    {- [h/RT  = a1 + a2/2 T + a3/3 T^2 + a4/4 T^3 + a5/5 T^4 + a6/T]}
    {- [s/R   = a1 ln T + a2 T + a3/2 T^2 + a4/3 T^3 + a5/4 T^4 + a7]}} *)

type entry = {
  t_low : float;
  t_mid : float;
  t_high : float;
  low : float array;  (** 7 coefficients for T in [t_low, t_mid] *)
  high : float array;  (** 7 coefficients for T in [t_mid, t_high] *)
}

val gas_constant : float
(** Universal gas constant, 8.31446 J/(mol K). *)

val validate : entry -> (unit, string) result
(** Checks range ordering and coefficient-array lengths. *)

val cp_over_r : entry -> float -> float
val h_over_rt : entry -> float -> float
val s_over_r : entry -> float -> float

val gibbs_over_rt : entry -> float -> float
(** [g/RT = h/RT - s/R]; used when computing equilibrium constants for
    reverse reaction rates. *)

type table = entry array
(** One entry per species, indexed like the mechanism's species array. *)
