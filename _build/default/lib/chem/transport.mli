(** Transport-coefficient fits.

    CHEMKIN-style preprocessing: from each species' Lennard-Jones parameters
    we evaluate kinetic-theory viscosities and binary diffusion coefficients
    over a temperature range and least-squares fit cubic polynomials of the
    *logarithm*, exactly the form consumed by the paper's kernels:

    {ul
    {- [vis_i(T)  = exp (eta_i0  + eta_i1 T  + eta_i2 T^2  + eta_i3 T^3)]}
    {- [d_ij(T)   = exp (delta_ij0 + delta_ij1 T + delta_ij2 T^2 + delta_ij3 T^3)]}}

    The [d] matrix is symmetric with zeros on the diagonal (§3.3). *)

type t = {
  visc_fit : float array array;  (** N x 4: per-species eta coefficients *)
  cond_fit : float array array;  (** N x 4: per-species log-conductivity fits *)
  diff_fit : float array array array;
      (** N x N x 4: per-pair delta coefficients; [diff_fit.(i).(i)] is all
          zeros and never evaluated *)
}

val t_fit_low : float
val t_fit_high : float
(** Temperature range of the fit sample points (300 K .. 3000 K). *)

val kinetic_viscosity : Species.t -> float -> float
(** Chapman-Enskog pure-species viscosity (with Neufeld's Omega(2,2)
    collision-integral approximation), arbitrary consistent units. *)

val kinetic_conductivity : Species.t -> float -> float
(** Modified-Eucken thermal conductivity from the kinetic viscosity. *)

val kinetic_diffusion : Species.t -> Species.t -> float -> float
(** Chapman-Enskog binary diffusion coefficient at 1 atm (Neufeld
    Omega(1,1)). *)

val fit : Species.t array -> t
(** Build the fit tables for a species set. O(N^2) cubic fits. *)

val viscosity : t -> int -> float -> float
(** [viscosity t i temp] evaluates the fitted per-species viscosity. *)

val conductivity : t -> int -> float -> float
(** Fitted per-species thermal conductivity. *)

val diffusion : t -> int -> int -> float -> float
(** [diffusion t i j temp] evaluates the fitted pair coefficient; requires
    [i <> j]. *)

val constant_bytes : n:int -> int
(** Bytes of double-precision pair constants the *viscosity* kernel loads
    for [n] computed species: 2 per off-diagonal pair. Reproduces the
    paper's 13.9 KB (DME, N=30) and 42.4 KB (heptane, N=52) figures
    exactly (decimal KB). *)

val diffusion_constant_bytes : n:int -> int
(** Bytes of delta fit constants the *diffusion* kernel loads (4 per
    strict-upper-triangle pair). *)
