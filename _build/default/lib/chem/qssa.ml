type node = {
  species : int;
  produced_by : (int * int) list;
  consumed_by : (int * int) list;
  deps : int list;
  flops : int;
}

type graph = { nodes : node array }

let eps = 1e-30

let build (mech : Mechanism.t) =
  let reactions = mech.Mechanism.reactions in
  let qssa = mech.Mechanism.qssa in
  let side_coeff side sp =
    match List.assoc_opt sp side with Some c -> c | None -> 0
  in
  (* For each node, the reactions it reads (for sums) or writes (applies its
     scale to). Read and write sets coincide here, which is what creates the
     dependence edges. *)
  let touched = Array.make (Array.length qssa) [] in
  let nodes =
    Array.mapi
      (fun k sp ->
        let produced_by = ref [] and consumed_by = ref [] in
        Array.iteri
          (fun ri r ->
            let p = side_coeff r.Reaction.products sp in
            let c = side_coeff r.Reaction.reactants sp in
            if p > 0 then produced_by := (ri, p) :: !produced_by;
            if c > 0 then consumed_by := (ri, c) :: !consumed_by)
          reactions;
        let produced_by = List.rev !produced_by in
        let consumed_by = List.rev !consumed_by in
        touched.(k) <- List.map fst produced_by @ List.map fst consumed_by;
        let n_terms = List.length produced_by + List.length consumed_by in
        {
          species = sp;
          produced_by;
          consumed_by;
          deps = [];
          (* 2 FMA per term in each of the two sums, one divide (~8 flops),
             2 multiplies per applied reaction. *)
          flops = (4 * n_terms) + 8 + (2 * n_terms);
        })
      qssa
  in
  (* deps: node k depends on every earlier node sharing a touched reaction. *)
  let nodes =
    Array.mapi
      (fun k node ->
        let deps = ref [] in
        for k' = 0 to k - 1 do
          let shares =
            List.exists (fun r -> List.mem r touched.(k')) touched.(k)
          in
          if shares then deps := k' :: !deps
        done;
        { node with deps = List.rev !deps })
      nodes
  in
  { nodes }

let well_ordered g =
  Array.to_list g.nodes
  |> List.mapi (fun k node -> List.for_all (fun d -> d < k) node.deps)
  |> List.for_all Fun.id

let reactions_touched g =
  Array.to_list g.nodes
  |> List.concat_map (fun n ->
         List.map fst n.produced_by @ List.map fst n.consumed_by)
  |> List.sort_uniq compare

let eval g ~rr_f ~rr_r =
  let scales = Array.make (Array.length g.nodes) 1.0 in
  Array.iteri
    (fun k node ->
      let prod =
        List.fold_left
          (fun acc (r, nu) -> acc +. (float_of_int nu *. rr_f.(r)))
          0.0 node.produced_by
        +. List.fold_left
             (fun acc (r, nu) -> acc +. (float_of_int nu *. rr_r.(r)))
             0.0 node.consumed_by
      in
      let cons =
        List.fold_left
          (fun acc (r, nu) -> acc +. (float_of_int nu *. rr_f.(r)))
          0.0 node.consumed_by
        +. List.fold_left
             (fun acc (r, nu) -> acc +. (float_of_int nu *. rr_r.(r)))
             0.0 node.produced_by
      in
      let scale = prod /. (cons +. eps) in
      scales.(k) <- scale;
      List.iter (fun (r, _) -> rr_f.(r) <- rr_f.(r) *. scale) node.consumed_by;
      List.iter (fun (r, _) -> rr_r.(r) <- rr_r.(r) *. scale) node.produced_by)
    g.nodes;
  scales
