(** Deterministic synthetic mechanisms.

    The paper's real DME and n-heptane CHEMKIN inputs are not
    redistributable, so we generate mechanisms that reproduce their published
    statistics (Fig. 3):

    {v
      mechanism   reactions  species  QSSA  stiff
      DME            175        39      9     22
      Heptane        283        68     16     27
    v}

    Kernel cost and working-set structure depend only on these statistics
    (species count fixes the N^2 pair loops and constant footprints;
    reaction count and rate-model mix fix the chemistry phases), not on the
    physical constants' values — see DESIGN.md.

    Species carry real names and element-balanced compositions; reactions
    are drawn from four templates (H-abstraction, decomposition/
    recombination, radical-radical exchange, O2-association), all atom
    conserving by construction. All randomness flows from a fixed seed, so
    the mechanisms are identical across runs and machines. *)

val dme : unit -> Mechanism.t
(** 39 species / 175 reactions / 9 QSSA / 22 stiff. Memoized. *)

val heptane : unit -> Mechanism.t
(** 68 species / 283 reactions / 16 QSSA / 27 stiff. Memoized. *)

val methane : unit -> Mechanism.t
(** GRI-3.0's footprint: 53 species (nitrogen sub-mechanism and argon
    included), 325 reactions — a size point between DME and heptane with a
    very different element mix. *)

val hydrogen : unit -> Mechanism.t
(** A small handwritten H2/O2/CO system (13 species, ~20 reactions, 2 QSSA,
    3 stiff): fast enough for unit tests and the quickstart example. *)

val generate :
  name:string ->
  species:(string * string) array ->
  qssa:string list ->
  stiff:string list ->
  n_reactions:int ->
  seed:int64 ->
  Mechanism.t
(** General entry point: [species] is an array of (name, formula) pairs.
    Raises [Failure] if the templates cannot produce [n_reactions] distinct
    balanced reactions covering every species. *)
