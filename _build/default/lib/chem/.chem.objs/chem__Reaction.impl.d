lib/chem/reaction.ml: Array Format Hashtbl List Printf Species
