lib/chem/transport_parser.ml: Buffer List Printf Species String
