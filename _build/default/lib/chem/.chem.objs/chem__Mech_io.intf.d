lib/chem/mech_io.mli: Mechanism
