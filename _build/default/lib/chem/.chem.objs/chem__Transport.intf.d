lib/chem/transport.mli: Species
