lib/chem/mechanism.mli: Format Reaction Species Thermo Transport
