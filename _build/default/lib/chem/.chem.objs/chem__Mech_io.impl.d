lib/chem/mech_io.ml: Array Buffer Chemkin_parser Filename List Mechanism Option Printf Reaction Result Species String Thermo_parser Transport_parser
