lib/chem/thermo.ml: Array
