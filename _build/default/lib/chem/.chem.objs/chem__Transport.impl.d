lib/chem/transport.ml: Array Species Sutil
