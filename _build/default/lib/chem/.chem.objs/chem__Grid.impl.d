lib/chem/grid.ml: Array Mechanism Rates Sutil
