lib/chem/thermo.mli:
