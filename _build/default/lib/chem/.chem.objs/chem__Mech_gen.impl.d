lib/chem/mech_gen.ml: Array Float Hashtbl List Mechanism Option Printf Reaction Species String Sutil Thermo
