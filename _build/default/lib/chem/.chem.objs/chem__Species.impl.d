lib/chem/species.ml: Array Buffer Format List Printf String
