lib/chem/chemkin_parser.mli: Reaction
