lib/chem/qssa.ml: Array Fun List Mechanism Reaction
