lib/chem/reaction.mli: Format Species
