lib/chem/ref_kernels.ml: Array Float List Mechanism Qssa Rates Reaction Stiffness Thermo Transport
