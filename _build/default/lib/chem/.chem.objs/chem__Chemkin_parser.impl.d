lib/chem/chemkin_parser.ml: Buffer List Printf Reaction String
