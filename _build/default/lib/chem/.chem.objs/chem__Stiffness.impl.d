lib/chem/stiffness.ml: Array List Mechanism Reaction
