lib/chem/mech_gen.mli: Mechanism
