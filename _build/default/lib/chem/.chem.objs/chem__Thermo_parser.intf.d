lib/chem/thermo_parser.mli: Species Thermo
