lib/chem/thermo_parser.ml: Array Buffer List Printf Species String Thermo
