lib/chem/rates.ml: Array Float List Reaction Thermo
