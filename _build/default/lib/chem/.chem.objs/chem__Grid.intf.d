lib/chem/grid.mli: Mechanism
