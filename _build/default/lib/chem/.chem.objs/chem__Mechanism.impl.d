lib/chem/mechanism.ml: Array Format List Printf Reaction Species String Thermo Transport
