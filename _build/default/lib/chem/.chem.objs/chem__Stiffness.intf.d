lib/chem/stiffness.mli: Mechanism
