lib/chem/rates.mli: Reaction Thermo
