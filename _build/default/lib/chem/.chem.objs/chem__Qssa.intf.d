lib/chem/qssa.mli: Mechanism
