lib/chem/species.mli: Format
