lib/chem/transport_parser.mli: Species
