lib/chem/ref_kernels.mli: Mechanism
