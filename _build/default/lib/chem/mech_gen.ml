(* Reaction candidates are generated from balanced templates, then sampled
   to hit the target count while covering every species. *)

type candidate = {
  lhs : (int * int) list;
  rhs : (int * int) list;
  kind : [ `Abstraction | `Decomposition | `Exchange | `Association | `Isomerization ];
}

let comp_key v = String.concat "," (Array.to_list (Array.map string_of_int v))

let vec_add a b = Array.mapi (fun i x -> x + b.(i)) a

let vec_sub a b = Array.mapi (fun i x -> x - b.(i)) a

let side_key side =
  List.sort compare side
  |> List.map (fun (s, c) -> Printf.sprintf "%d*%d" c s)
  |> String.concat "+"

let candidate_key c =
  (* Canonical: unordered pair of sides so A=B and B=A collide. *)
  let a = side_key c.lhs and b = side_key c.rhs in
  if a < b then a ^ "=" ^ b else b ^ "=" ^ a

let spectator_free c =
  let l = List.map fst c.lhs and r = List.map fst c.rhs in
  not (List.exists (fun s -> List.mem s r) l)

(* The hydrogen-atom composition vector, in Species.composition_vector
   order. *)
let h_vec species =
  let v = Array.map (fun _ -> 0) (Species.composition_vector species.(0)) in
  v.(0) <- 1;
  v

let enumerate_candidates (species : Species.t array) =
  let n = Array.length species in
  let comp = Array.map Species.composition_vector species in
  let by_comp = Hashtbl.create 64 in
  Array.iteri
    (fun i v ->
      let k = comp_key v in
      Hashtbl.replace by_comp k (i :: (Option.value ~default:[] (Hashtbl.find_opt by_comp k))))
    comp;
  let species_with v = Option.value ~default:[] (Hashtbl.find_opt by_comp (comp_key v)) in
  let candidates = ref [] in
  let add c = if spectator_free c then candidates := c :: !candidates in
  let hv = h_vec species in
  (* H-abstraction: RH + X = R + XH for every H-pair on both sides. *)
  let h_pairs =
    (* (heavy, light) with comp heavy = comp light + H *)
    List.concat
      (List.init n (fun rh ->
           species_with (vec_sub comp.(rh) hv)
           |> List.filter_map (fun r ->
                  if r <> rh then Some (rh, r) else None)))
  in
  List.iter
    (fun (rh, r) ->
      List.iter
        (fun (xh, x) ->
          if rh <> xh && r <> x then
            add
              {
                lhs = [ (rh, 1); (x, 1) ];
                rhs = [ (r, 1); (xh, 1) ];
                kind = `Abstraction;
              })
        h_pairs)
    h_pairs;
  (* Decomposition: A = B + C (including B = C). *)
  for b = 0 to n - 1 do
    for c = b to n - 1 do
      let total = vec_add comp.(b) comp.(c) in
      List.iter
        (fun a ->
          if a <> b && a <> c then
            add
              {
                lhs = [ (a, 1) ];
                rhs = (if b = c then [ (b, 2) ] else [ (b, 1); (c, 1) ]);
                kind = `Decomposition;
              })
        (species_with total)
    done
  done;
  (* Association: A + B = C, the reverse orientation (kept separate so the
     sampler can bias the falloff mix). *)
  for a = 0 to n - 1 do
    for b = a to n - 1 do
      let total = vec_add comp.(a) comp.(b) in
      List.iter
        (fun c ->
          if c <> a && c <> b then
            add
              {
                lhs = (if a = b then [ (a, 2) ] else [ (a, 1); (b, 1) ]);
                rhs = [ (c, 1) ];
                kind = `Association;
              })
        (species_with total)
    done
  done;
  (* Isomerization: A = B with equal compositions. *)
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if comp.(a) = comp.(b) then
        add { lhs = [ (a, 1) ]; rhs = [ (b, 1) ]; kind = `Isomerization }
    done
  done;
  (* Exchange: A + B = C + D via composition-sum buckets. *)
  let buckets = Hashtbl.create 256 in
  for a = 0 to n - 1 do
    for b = a to n - 1 do
      let k = comp_key (vec_add comp.(a) comp.(b)) in
      Hashtbl.replace buckets k
        ((a, b) :: Option.value ~default:[] (Hashtbl.find_opt buckets k))
    done
  done;
  Hashtbl.iter
    (fun _ pairs ->
      let pairs = Array.of_list pairs in
      let np = Array.length pairs in
      for i = 0 to np - 1 do
        for j = i + 1 to np - 1 do
          let a, b = pairs.(i) and c, d = pairs.(j) in
          let mk x y = if x = y then [ (x, 2) ] else [ (x, 1); (y, 1) ] in
          add { lhs = mk a b; rhs = mk c d; kind = `Exchange }
        done
      done)
    buckets;
  !candidates

(* Synthetic but physically plausible parameter draws. *)

let heavy_atoms sp =
  Species.atom_count sp Species.C
  + Species.atom_count sp Species.O
  + Species.atom_count sp Species.N
  + Species.atom_count sp Species.Ar
  + Species.atom_count sp Species.He

let gen_transport rng sp =
  let heavy = float_of_int (heavy_atoms sp) in
  {
    Species.geometry = (if Species.total_atoms sp = 1 then 0 else if heavy <= 1.0 then 1 else 2);
    well_depth = 60.0 +. (40.0 *. heavy) +. Sutil.Prng.range rng (-15.0) 15.0;
    diameter = 2.4 +. (0.35 *. heavy) +. Sutil.Prng.range rng (-0.2) 0.2;
    dipole = (if Sutil.Prng.chance rng 0.3 then Sutil.Prng.range rng 0.1 2.0 else 0.0);
    polarizability = 0.5 +. (0.4 *. heavy);
    rot_relax = Sutil.Prng.range rng 0.5 4.0;
  }

let gen_thermo rng sp =
  (* Group-additive formation enthalpy so reaction delta-G stays modest. *)
  let contrib = function
    | Species.H -> -2000.0
    | Species.C -> 1000.0
    | Species.O -> -12000.0
    | Species.N -> 500.0
    | Species.Ar | Species.He -> 0.0
  in
  let a6 =
    List.fold_left
      (fun acc (e, n) -> acc +. (float_of_int n *. contrib e))
      0.0 sp.Species.composition
    +. Sutil.Prng.range rng (-3000.0) 3000.0
  in
  let atoms = float_of_int (Species.total_atoms sp) in
  let a1 = 2.5 +. (0.45 *. atoms) +. Sutil.Prng.range rng (-0.3) 0.3 in
  let a2 = Sutil.Prng.range rng 0.0 1e-3 in
  let a3 = Sutil.Prng.range rng (-1e-6) 1e-6 in
  let a4 = Sutil.Prng.range rng (-1e-9) 1e-9 in
  let a5 = Sutil.Prng.range rng (-1e-13) 1e-13 in
  let a7 = 2.0 +. (0.8 *. atoms) +. Sutil.Prng.range rng (-2.0) 2.0 in
  let high = [| a1; a2; a3; a4; a5; a6; a7 |] in
  (* The low range perturbs the polynomial part, then its a6/a7 are solved
     so h/RT and s/R (hence g/RT) are continuous at t_mid — the defining
     property of real THERMO fits. *)
  let t_mid = 1000.0 in
  let perturb v scale = v *. (1.0 +. Sutil.Prng.range rng (-.scale) scale) in
  let b1 = perturb a1 0.05
  and b2 = perturb a2 0.1
  and b3 = perturb a3 0.1
  and b4 = perturb a4 0.1
  and b5 = perturb a5 0.1 in
  let h_poly c1 c2 c3 c4 c5 t =
    c1
    +. (t
       *. ((c2 /. 2.0)
          +. (t *. ((c3 /. 3.0) +. (t *. ((c4 /. 4.0) +. (t *. (c5 /. 5.0))))))))
  in
  let s_poly c1 c2 c3 c4 c5 t =
    (c1 *. log t)
    +. (t
       *. (c2 +. (t *. ((c3 /. 2.0) +. (t *. ((c4 /. 3.0) +. (t *. (c5 /. 4.0))))))))
  in
  let b6 =
    t_mid
    *. (h_poly a1 a2 a3 a4 a5 t_mid +. (a6 /. t_mid)
       -. h_poly b1 b2 b3 b4 b5 t_mid)
  in
  let b7 = s_poly a1 a2 a3 a4 a5 t_mid +. a7 -. s_poly b1 b2 b3 b4 b5 t_mid in
  let low = [| b1; b2; b3; b4; b5; b6; b7 |] in
  { Thermo.t_low = 300.0; t_mid; t_high = 5000.0; low; high }

let gen_arrhenius rng =
  {
    Reaction.pre_exp = Sutil.Prng.log_range rng 1e6 1e13;
    temp_exp = Float.round (100.0 *. Sutil.Prng.range rng (-1.0) 2.0) /. 100.0;
    activation = Float.round (Sutil.Prng.range rng 0.0 30000.0);
  }

let gen_efficiencies rng species_index_of =
  let base =
    [ ("H2", 2.0); ("H2O", 6.0); ("CO", 1.75); ("CO2", 3.6); ("CH4", 2.0);
      ("N2", 1.4) ]
  in
  List.filter_map
    (fun (name, eff) ->
      match species_index_of name with
      | Some i when Sutil.Prng.chance rng 0.7 ->
          Some (i, eff *. Sutil.Prng.range rng 0.8 1.2)
      | _ -> None)
    base

let reaction_of_candidate rng ~species_index_of ~lt_budget c =
  let arr = gen_arrhenius rng in
  let reversible = not (Sutil.Prng.chance rng 0.15) in
  let reverse =
    if not reversible then Reaction.Irreversible
    else if Sutil.Prng.chance rng 0.3 then
      Reaction.Explicit
        {
          Reaction.pre_exp = arr.Reaction.pre_exp *. Sutil.Prng.range rng 0.01 0.5;
          temp_exp = arr.Reaction.temp_exp;
          activation = arr.Reaction.activation +. Sutil.Prng.range rng 1000.0 15000.0;
        }
    else Reaction.From_equilibrium
  in
  let unimolecular =
    match c.kind with
    | `Decomposition | `Association -> true
    | `Abstraction | `Exchange | `Isomerization -> false
  in
  let rate, third_body =
    if unimolecular && Sutil.Prng.chance rng 0.5 then begin
      (* Falloff "(+M)": Lindemann or Troe blending. *)
      let low =
        {
          Reaction.pre_exp = arr.Reaction.pre_exp *. Sutil.Prng.log_range rng 1.0 1e4;
          temp_exp = arr.Reaction.temp_exp -. Sutil.Prng.range rng 0.0 2.0;
          activation = Float.max 0.0 (arr.Reaction.activation -. Sutil.Prng.range rng 0.0 5000.0);
        }
      in
      let kind =
        if Sutil.Prng.chance rng 0.6 then
          Reaction.Troe
            {
              Reaction.alpha = Sutil.Prng.range rng 0.2 0.95;
              t3 = Sutil.Prng.range rng 50.0 3000.0;
              t1 = Sutil.Prng.range rng 50.0 3000.0;
              t2 = (if Sutil.Prng.chance rng 0.5 then Sutil.Prng.range rng 1000.0 5000.0 else 0.0);
            }
        else Reaction.Lindemann
      in
      ( Reaction.Falloff { high = arr; low; kind },
        Some { Reaction.enhanced = gen_efficiencies rng species_index_of } )
    end
    else if unimolecular && Sutil.Prng.chance rng 0.3 then
      (* Plain "+M" third body. *)
      ( Reaction.Simple arr,
        Some { Reaction.enhanced = gen_efficiencies rng species_index_of } )
    else if !lt_budget > 0 && Sutil.Prng.chance rng 0.05 then begin
      decr lt_budget;
      ( Reaction.Landau_teller
          {
            arr;
            b = Sutil.Prng.range rng (-30.0) 30.0;
            c = Sutil.Prng.range rng (-300.0) 300.0;
          },
        None )
    end
    else (Reaction.Simple arr, None)
  in
  Reaction.make ~reverse ?third_body ~reactants:c.lhs ~products:c.rhs rate

let generate ~name ~species:species_table ~qssa ~stiff ~n_reactions ~seed =
  let rng = Sutil.Prng.create seed in
  let species =
    Array.map
      (fun (sp_name, formula) ->
        let sp = Species.of_formula ~name:sp_name formula in
        let transport = gen_transport (Sutil.Prng.split rng sp_name) sp in
        Species.make ~transport ~name:sp_name sp.Species.composition)
      species_table
  in
  let thermo =
    Array.map
      (fun sp -> gen_thermo (Sutil.Prng.split rng ("th:" ^ sp.Species.name)) sp)
      species
  in
  let index_of n =
    let target = String.uppercase_ascii n in
    let found = ref None in
    Array.iteri
      (fun i sp ->
        if !found = None && String.uppercase_ascii sp.Species.name = target then
          found := Some i)
      species;
    !found
  in
  let index_of_exn n =
    match index_of n with
    | Some i -> i
    | None -> failwith (Printf.sprintf "mech_gen: unknown species %S" n)
  in
  (* Enumerate, dedup, and shuffle the balanced candidates. *)
  let seen = Hashtbl.create 1024 in
  let candidates =
    enumerate_candidates species
    |> List.filter (fun c ->
           let k = candidate_key c in
           if Hashtbl.mem seen k then false
           else begin
             Hashtbl.add seen k ();
             true
           end)
    |> Array.of_list
  in
  Sutil.Prng.shuffle rng candidates;
  if Array.length candidates < n_reactions then
    failwith
      (Printf.sprintf
         "mech_gen %s: only %d candidate reactions for a target of %d" name
         (Array.length candidates) n_reactions);
  (* Selection: first cover every species, then fill to the target. *)
  let n = Array.length species in
  let covered = Array.make n false in
  let selected = ref [] in
  let n_selected = ref 0 in
  let select c =
    selected := c :: !selected;
    incr n_selected;
    List.iter (fun (s, _) -> covered.(s) <- true) (c.lhs @ c.rhs)
  in
  Array.iter
    (fun c ->
      if
        !n_selected < n_reactions
        && List.exists (fun (s, _) -> not covered.(s)) (c.lhs @ c.rhs)
      then select c)
    candidates;
  Array.iter
    (fun c ->
      if !n_selected < n_reactions && not (List.memq c !selected) then select c)
    candidates;
  (* Inert species (no H/C/O content: N2, AR, HE) participate only as third
     bodies, like in real mechanisms; they are exempt from coverage. *)
  let inert i =
    let sp = species.(i) in
    Species.atom_count sp Species.H = 0
    && Species.atom_count sp Species.C = 0
    && Species.atom_count sp Species.O = 0
  in
  Array.iteri
    (fun i c ->
      if not (c || inert i) then
        failwith
          (Printf.sprintf "mech_gen %s: species %s appears in no reaction" name
             species.(i).Species.name))
    covered;
  let lt_budget = ref 3 in
  let reactions =
    List.rev !selected
    |> List.mapi (fun i c ->
           let r =
             reaction_of_candidate
               (Sutil.Prng.split rng (Printf.sprintf "rxn:%d" i))
               ~species_index_of:index_of ~lt_budget c
           in
           { r with Reaction.label = Printf.sprintf "R%d" (i + 1) })
    |> Array.of_list
  in
  let qssa = Array.of_list (List.map index_of_exn qssa) in
  let stiff = Array.of_list (List.map index_of_exn stiff) in
  let mech = Mechanism.make ~name ~species ~reactions ~thermo ~qssa ~stiff () in
  (match Mechanism.validate mech with
  | Ok () -> ()
  | Error problems ->
      failwith ("mech_gen " ^ name ^ ": " ^ String.concat "; " problems));
  mech

(* Species tables. Formulas are given explicitly because names like
   "C7H15-1" are not themselves parseable formulas. *)

let core_species =
  [|
    ("H2", "H2"); ("H", "H"); ("O", "O"); ("O2", "O2"); ("OH", "OH");
    ("H2O", "H2O"); ("HO2", "HO2"); ("H2O2", "H2O2"); ("N2", "N2");
    ("CO", "CO"); ("CO2", "CO2"); ("HCO", "CHO"); ("CH2O", "CH2O");
    ("CH3", "CH3"); ("CH4", "CH4"); ("CH3O", "CH3O"); ("CH2OH", "CH3O");
    ("CH3OH", "CH4O"); ("C2H6", "C2H6"); ("C2H5", "C2H5"); ("C2H4", "C2H4");
  |]

let dme_extra =
  [|
    ("CH2", "CH2"); ("C2H3", "C2H3"); ("C2H2", "C2H2");
    ("CH3O2", "CH3O2"); ("CH3O2H", "CH4O2"); ("HOCH2O", "CH3O2");
    ("HCOOH", "CH2O2"); ("OCHO", "CHO2");
    ("CH3OCH3", "C2H6O"); ("CH3OCH2", "C2H5O"); ("CH3OCH2O", "C2H5O2");
    ("CH3OCHO", "C2H4O2"); ("CH3OCO", "C2H3O2"); ("CH3OCH2O2", "C2H5O3");
    ("CH2OCH2O2H", "C2H5O3"); ("HO2CH2OCHO", "C2H4O4");
    ("OCH2OCHO", "C2H3O3"); ("HOCH2OCO", "C2H3O3");
  |]

let dme_qssa =
  [ "CH2"; "C2H3"; "CH3O"; "CH2OH"; "OCHO"; "CH3OCO"; "OCH2OCHO";
    "HOCH2OCO"; "HOCH2O" ]

let dme_stiff =
  [ "H"; "O"; "OH"; "HO2"; "H2O2"; "HCO"; "CH2O"; "CH3"; "CH3O2"; "CH3O2H";
    "CH3OH"; "C2H2"; "C2H4"; "C2H5"; "C2H6"; "CH3OCH3"; "CH3OCH2";
    "CH3OCH2O"; "CH3OCHO"; "CH3OCH2O2"; "CH2OCH2O2H"; "HO2CH2OCHO" ]

let heptane_extra =
  [|
    ("CH2", "CH2"); ("C2H3", "C2H3"); ("C2H2", "C2H2");
    ("CH3CHO", "C2H4O"); ("CH3CO", "C2H3O"); ("CH2CHO", "C2H3O");
    ("CH2CO", "C2H2O"); ("HCCO", "C2HO");
    ("C2H5O", "C2H5O"); ("C2H5O2", "C2H5O2"); ("C2H5O2H", "C2H6O2");
    ("C3H8", "C3H8"); ("NC3H7", "C3H7"); ("IC3H7", "C3H7");
    ("C3H6", "C3H6"); ("C3H5", "C3H5"); ("C3H4", "C3H4"); ("C3H3", "C3H3");
    ("C3H7O2", "C3H7O2");
    ("C4H8", "C4H8"); ("PC4H9", "C4H9"); ("SC4H9", "C4H9"); ("C4H7", "C4H7");
    ("C4H9O2", "C4H9O2"); ("C4H6", "C4H6");
    ("C5H10", "C5H10"); ("C5H11", "C5H11"); ("C5H11O2", "C5H11O2");
    ("C6H12", "C6H12"); ("C6H13", "C6H13"); ("C6H13O2", "C6H13O2");
    ("NC7H16", "C7H16"); ("C7H15-1", "C7H15"); ("C7H15-2", "C7H15");
    ("C7H15O2", "C7H15O2"); ("C7H14", "C7H14"); ("C7H14OOH", "C7H15O2");
    ("O2C7H14OOH", "C7H15O4"); ("NC7KET", "C7H14O3"); ("C7H15O", "C7H15O");
    ("CH3O2", "CH3O2"); ("CH3O2H", "CH4O2"); ("CH3CO3", "C2H3O3");
    ("CH3CO3H", "C2H4O3"); ("C2H4O1-2", "C2H4O"); ("C2H3CHO", "C3H4O");
    ("C2H5CHO", "C3H6O");
  |]

let heptane_qssa =
  [ "CH2"; "C2H3"; "HCCO"; "CH3CO"; "CH2CHO"; "C2H5O"; "C3H3"; "C3H5";
    "IC3H7"; "C4H7"; "SC4H9"; "C5H11"; "C6H13"; "C7H15O"; "CH3O"; "CH2OH" ]

let heptane_stiff =
  [ "H"; "O"; "OH"; "HO2"; "H2O2"; "HCO"; "CH3"; "CH2O"; "CH3O2"; "CH3O2H";
    "CH3CO3"; "CH3CO3H"; "C2H5O2"; "C2H5O2H"; "C3H7O2"; "C4H9O2"; "C5H11O2";
    "C6H13O2"; "C7H15O2"; "C7H14OOH"; "O2C7H14OOH"; "NC7KET"; "NC7H16";
    "C7H15-1"; "C7H15-2"; "C7H14"; "C2H2" ]

(* GRI-3.0's footprint: 53 species (with the nitrogen sub-mechanism and
   argon), 325 reactions. *)
let methane_extra =
  [|
    ("C", "C"); ("CH", "CH"); ("CH2", "CH2"); ("CH2S", "CH2");
    ("C2H", "C2H"); ("C2H2", "C2H2"); ("C2H3", "C2H3");
    ("HCCO", "C2HO"); ("HCCOH", "C2H2O"); ("CH2CO", "C2H2O");
    ("CH2CHO", "C2H3O"); ("CH3CHO", "C2H4O"); ("C3H7", "C3H7");
    ("C3H8", "C3H8");
    ("N", "N"); ("NH", "HN"); ("NH2", "H2N"); ("NH3", "H3N");
    ("NNH", "HN2"); ("NO", "NO"); ("NO2", "NO2"); ("N2O", "N2O");
    ("HNO", "HNO"); ("CN", "CN"); ("HCN", "CHN"); ("H2CN", "CH2N");
    ("HCNN", "CHN2"); ("HCNO", "CHNO"); ("HOCN", "CHNO"); ("HNCO", "CHNO");
    ("NCO", "CNO"); ("AR", "Ar");
  |]

let methane_qssa = [ "CH2S"; "CH"; "C2H"; "HCCO"; "H2CN"; "NCO" ]

let methane_stiff =
  [ "H"; "O"; "OH"; "HO2"; "H2O2"; "HCO"; "CH3"; "CH2O"; "NO2"; "HNO";
    "N2O"; "CH2CHO" ]

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
        let v = f () in
        cache := Some v;
        v

let dme =
  memo (fun () ->
      generate ~name:"dme"
        ~species:(Array.append core_species dme_extra)
        ~qssa:dme_qssa ~stiff:dme_stiff ~n_reactions:175 ~seed:0x1D4E5EEDL)

let heptane =
  memo (fun () ->
      generate ~name:"heptane"
        ~species:(Array.append core_species heptane_extra)
        ~qssa:heptane_qssa ~stiff:heptane_stiff ~n_reactions:283
        ~seed:0x4E7EF7A4EL)

let methane =
  memo (fun () ->
      generate ~name:"methane"
        ~species:(Array.append core_species methane_extra)
        ~qssa:methane_qssa ~stiff:methane_stiff ~n_reactions:325
        ~seed:0x63A130L)

let hydrogen =
  memo (fun () ->
      generate ~name:"hydrogen"
        ~species:
          [|
            ("H2", "H2"); ("H", "H"); ("O", "O"); ("O2", "O2"); ("OH", "OH");
            ("H2O", "H2O"); ("HO2", "HO2"); ("H2O2", "H2O2"); ("N2", "N2");
            ("CO", "CO"); ("CO2", "CO2"); ("HCO", "CHO"); ("CH2O", "CH2O");
          |]
        ~qssa:[ "HCO"; "HO2" ]
        ~stiff:[ "H"; "OH"; "H2O2" ]
        ~n_reactions:20 ~seed:0x42L)
