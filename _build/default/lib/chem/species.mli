(** Chemical species: name, elemental composition, molecular mass, and the
    Lennard-Jones-style transport parameters carried by CHEMKIN TRANSPORT
    files. *)

type element = H | C | O | N | Ar | He

val element_of_string : string -> element option
(** Case-insensitive element symbol parser. *)

val element_symbol : element -> string

val atomic_mass : element -> float
(** Atomic mass in g/mol. *)

type transport_params = {
  geometry : int;  (** 0 atom, 1 linear, 2 non-linear (CHEMKIN convention) *)
  well_depth : float;  (** Lennard-Jones epsilon/k_B, Kelvin *)
  diameter : float;  (** Lennard-Jones collision diameter, Angstrom *)
  dipole : float;  (** dipole moment, Debye *)
  polarizability : float;  (** Angstrom^3 *)
  rot_relax : float;  (** rotational relaxation collision number at 298 K *)
}

val default_transport : transport_params
(** Placeholder parameters used when a TRANSPORT entry is missing; chosen in
    the middle of typical small-hydrocarbon ranges. *)

type t = {
  name : string;
  composition : (element * int) list;  (** each element listed once, count > 0 *)
  transport : transport_params;
}

val make :
  ?transport:transport_params -> name:string -> (element * int) list -> t
(** [make ~name comp] builds a species; duplicate elements in [comp] are
    merged and zero counts dropped. *)

val parse_formula : string -> ((element * int) list, string) result
(** [parse_formula "C2H5O2"] is [Ok [(H, 5); (C, 2); (O, 2)]]. Element
    symbols may be upper or lower case; counts default to 1. *)

val of_formula :
  ?transport:transport_params -> name:string -> string -> t
(** [of_formula ~name f] builds a species from a formula string. Raises
    [Invalid_argument] on a malformed formula. *)

val molecular_mass : t -> float
(** Molecular mass in g/mol, from composition. *)

val atom_count : t -> element -> int

val total_atoms : t -> int

val composition_vector : t -> int array
(** Counts indexed in the fixed order [H; C; O; N; Ar; He]. *)

val formula : t -> string
(** Conventional formula string, e.g. ["C2H6O"]. *)

val equal_composition : t -> t -> bool

val pp : Format.formatter -> t -> unit
