(** Stiffness correction (third chemistry phase, §3.4).

    For each stiff species [i] a damping factor

    {[ gamma_i = x_i / (x_i + tau * (cons_i + d_i)) ]}

    is computed from the molar fraction [x_i], the species' forward
    consumption rate [cons_i], and the per-species diffusion output [d_i]
    loaded from global memory (this is the load Listing 4 performs with warp
    indexing). The factor damps the reactions consuming [i] (forward) and
    producing [i] (reverse), allowing longer stable time steps.

    Unlike QSSA, stiffness nodes are mutually independent: they read rates
    produced by earlier phases and each scales a disjoint "ownership" of its
    own factor, applied after all factors are computed. *)

type node = {
  species : int;
  produced_by : (int * int) list;
  consumed_by : (int * int) list;
  flops : int;
}

val tau : float
(** Pseudo-time-step constant, 1e-3. *)

val build : Mechanism.t -> node array

val eval :
  node array ->
  mole_frac:float array ->
  diffusion:float array ->
  rr_f:float array ->
  rr_r:float array ->
  float array
(** Computes all gammas first (reading unmodified rates), then applies them;
    returns the factors in node order. *)
