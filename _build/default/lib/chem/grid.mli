(** Cartesian-grid state in structure-of-arrays layout (§3.1): every field
    of every point lives in its own contiguous array so that global-memory
    accesses coalesce.

    Functional GPU simulation only ever touches the points of a few resident
    CTAs, so a grid materializes exactly [points] entries; experiments pass
    the *logical* problem size (32^3 .. 128^3) separately to the timing
    model, which scales by wave count. *)

type t = {
  points : int;
  temperature : float array;  (** K *)
  pressure : float array;  (** Pa *)
  mole_frac : float array array;
      (** [mole_frac.(sp).(p)]: one array per species (SoA); QSSA species
          rows are zero *)
  diffusion_in : float array array;
      (** per-species diffusion outputs consumed by the chemistry kernel's
          stiffness phase (Listing 4) *)
}

val create :
  ?t_range:float * float -> Mechanism.t -> points:int -> seed:int64 -> t
(** Random but reproducible combustion-like state: T in 1000-2500 K (at or
    above the NASA-polynomial mid temperature (override with [t_range],
    e.g. [(300., 2500.)], when compiling with full-range thermodynamics),
    so the generated kernels'
    single-range thermodynamic evaluation matches the host reference
    exactly), P within 20% of 1 atm, strictly positive mole fractions normalized over the
    computed (non-QSSA) species. *)

val point_temperature : t -> int -> float
val point_pressure : t -> int -> float

val point_mole_fracs : t -> Mechanism.t -> int -> float array
(** Full per-species mole-fraction vector of one point (QSSA entries 0). *)

val point_diffusion : t -> int -> float array
(** Per-species diffusion input vector of one point. *)
