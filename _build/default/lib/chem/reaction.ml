type arrhenius = { pre_exp : float; temp_exp : float; activation : float }

type troe_params = { alpha : float; t3 : float; t1 : float; t2 : float }

type sri_params = { sa : float; sb : float; sc : float; sd : float; se : float }

type falloff_kind = Lindemann | Troe of troe_params | Sri of sri_params

type rate_model =
  | Simple of arrhenius
  | Falloff of { high : arrhenius; low : arrhenius; kind : falloff_kind }
  | Landau_teller of { arr : arrhenius; b : float; c : float }
  | Plog of (float * arrhenius) list

type reverse_spec =
  | Irreversible
  | From_equilibrium
  | Explicit of arrhenius

type third_body = { enhanced : (int * float) list }

type t = {
  label : string;
  reactants : (int * int) list;
  products : (int * int) list;
  rate : rate_model;
  reverse : reverse_spec;
  third_body : third_body option;
}

let merge_side side =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (sp, coeff) ->
      match Hashtbl.find_opt tbl sp with
      | Some c -> Hashtbl.replace tbl sp (c + coeff)
      | None ->
          Hashtbl.add tbl sp coeff;
          order := sp :: !order)
    side;
  List.rev_map (fun sp -> (sp, Hashtbl.find tbl sp)) !order

let make ?(label = "") ?(reverse = From_equilibrium) ?third_body ~reactants
    ~products rate =
  {
    label;
    reactants = merge_side reactants;
    products = merge_side products;
    rate;
    reverse;
    third_body;
  }

let coeff_of side i =
  match List.assoc_opt i side with Some c -> c | None -> 0

let delta_stoich t i = coeff_of t.products i - coeff_of t.reactants i

let involves t i = coeff_of t.reactants i > 0 || coeff_of t.products i > 0

let species_involved t =
  List.map fst t.reactants @ List.map fst t.products
  |> List.sort_uniq compare

let net_molecularity t =
  List.fold_left (fun acc (_, c) -> acc + c) 0 t.products
  - List.fold_left (fun acc (_, c) -> acc + c) 0 t.reactants

let constant_count t =
  let forward =
    match t.rate with
    | Simple _ -> 3
    | Falloff { kind = Lindemann; _ } -> 6
    | Falloff { kind = Troe _; _ } -> 10
    | Falloff { kind = Sri _; _ } -> 11
    | Landau_teller _ -> 5
    | Plog table -> 3 * List.length table
  in
  let reverse =
    match t.reverse with
    | Irreversible -> 0
    | Explicit _ -> 3
    (* From_equilibrium consumes the pressure-scaling constant and delta-G
       accumulation temporaries; 3 matches the per-reaction footprint of the
       fused Gibbs evaluation. *)
    | From_equilibrium -> 3
  in
  let third = match t.third_body with Some tb -> List.length tb.enhanced | None -> 0 in
  forward + reverse + third

let is_falloff t =
  match t.rate with
  | Falloff _ -> true
  | Simple _ | Landau_teller _ | Plog _ -> false

let element_balance species t =
  let n_elem = Array.length (Species.composition_vector species.(0)) in
  let total side =
    let acc = Array.make n_elem 0 in
    List.iter
      (fun (sp, coeff) ->
        let v = Species.composition_vector species.(sp) in
        Array.iteri (fun e n -> acc.(e) <- acc.(e) + (coeff * n)) v)
      side;
    acc
  in
  let lhs = total t.reactants and rhs = total t.products in
  if lhs = rhs then Ok ()
  else
    Error
      (Printf.sprintf "reaction %S does not conserve atoms" t.label)

let pp_side species ppf side =
  let pp_term ppf (sp, coeff) =
    if coeff = 1 then Format.fprintf ppf "%d" sp
    else Format.fprintf ppf "%d*%d" coeff sp;
    ignore species
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
    pp_term ppf side

let pp ppf t =
  Format.fprintf ppf "%s: %a %s %a" t.label (pp_side ()) t.reactants
    (match t.reverse with Irreversible -> "=>" | _ -> "=")
    (pp_side ()) t.products
