(** Elementary reactions and their rate-model descriptions (CHEMKIN
    semantics, Fig. 4 of the paper). *)

type arrhenius = {
  pre_exp : float;  (** A, pre-exponential factor *)
  temp_exp : float;  (** beta, temperature exponent *)
  activation : float;  (** E, activation energy in cal/mol *)
}
(** Modified Arrhenius form [k(T) = A T^beta exp(-E / (R_cal T))]. *)

type troe_params = {
  alpha : float;
  t3 : float;
  t1 : float;
  t2 : float;  (** 0. when the optional fourth Troe parameter is absent *)
}

type sri_params = {
  sa : float;
  sb : float;
  sc : float;
  sd : float;  (** 1.0 when the optional fourth parameter is absent *)
  se : float;  (** 0.0 when the optional fifth parameter is absent *)
}
(** SRI falloff form:
    [F = d (a exp(-b/T) + exp(-T/c))^X T^e], [X = 1/(1 + log10(Pr)^2)]. *)

type falloff_kind = Lindemann | Troe of troe_params | Sri of sri_params

type rate_model =
  | Simple of arrhenius
      (** ordinary Arrhenius, possibly with a "+M" third body *)
  | Falloff of { high : arrhenius; low : arrhenius; kind : falloff_kind }
      (** pressure-dependent "(+M)" reaction: blend of high- and
          low-pressure limits *)
  | Landau_teller of { arr : arrhenius; b : float; c : float }
      (** [k = A T^beta exp(-E/(R T) + B/T^(1/3) + C/T^(2/3))] *)
  | Plog of (float * arrhenius) list
      (** pressure-log interpolation: Arrhenius fits at discrete pressures
          (in atm, sorted ascending); [ln k] interpolates linearly in
          [ln P] between them and clamps outside the table *)

type reverse_spec =
  | Irreversible
  | From_equilibrium  (** reverse rate from thermodynamic equilibrium *)
  | Explicit of arrhenius  (** CHEMKIN "REV /.../" line *)

type third_body = {
  enhanced : (int * float) list;
      (** species index -> efficiency; all other species have efficiency 1 *)
}

type t = {
  label : string;  (** source text or synthetic id, for diagnostics *)
  reactants : (int * int) list;  (** (species index, stoichiometric coeff) *)
  products : (int * int) list;
  rate : rate_model;
  reverse : reverse_spec;
  third_body : third_body option;
      (** present for "+M" and all falloff reactions *)
}

val make :
  ?label:string ->
  ?reverse:reverse_spec ->
  ?third_body:third_body ->
  reactants:(int * int) list ->
  products:(int * int) list ->
  rate_model ->
  t
(** Builds a reaction, merging duplicate species mentions on each side.
    Default [reverse] is [From_equilibrium], the CHEMKIN default for
    reversible reactions. *)

val delta_stoich : t -> int -> int
(** Net stoichiometric coefficient of species [i]: products minus
    reactants. *)

val involves : t -> int -> bool
(** Does species [i] appear on either side? *)

val species_involved : t -> int list
(** Sorted, deduplicated indices of all species on either side. *)

val net_molecularity : t -> int
(** Sum of product coefficients minus sum of reactant coefficients
    (the [delta nu] used in equilibrium-constant pressure scaling). *)

val constant_count : t -> int
(** Number of double-precision constants the rate evaluation needs
    (the paper reports 6-15 per reaction for the chemistry kernel). *)

val is_falloff : t -> bool

val element_balance :
  Species.t array -> t -> (unit, string) result
(** Verifies atom conservation between the two sides. *)

val pp : Format.formatter -> t -> unit
