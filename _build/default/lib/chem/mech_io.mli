(** Assembling mechanisms from the four CHEMKIN-standard input files, and
    writing mechanisms back out in those formats (round-trip). *)

val load_strings :
  ?species_sets:string ->
  chemkin:string ->
  thermo:string ->
  transport:string ->
  name:string ->
  unit ->
  (Mechanism.t, string) result
(** Parse all inputs, resolve species names, attach thermo/transport data,
    build rate models, and validate. Species missing a TRANSPORT entry get
    {!Species.default_transport}; species missing a THERMO entry are an
    error. *)

val load_files :
  ?species_sets_path:string ->
  chemkin_path:string ->
  thermo_path:string ->
  transport_path:string ->
  name:string ->
  unit ->
  (Mechanism.t, string) result

val chemkin_of_mechanism : Mechanism.t -> string
(** CHEMKIN mechanism text (ELEMENTS/SPECIES/REACTIONS) for the given
    mechanism. *)

val thermo_of_mechanism : Mechanism.t -> string
val transport_of_mechanism : Mechanism.t -> string

val species_sets_of_mechanism : Mechanism.t -> string
(** The optional fourth file (QSSA/STIFF sections). *)

val save_files : Mechanism.t -> dir:string -> unit
(** Write [<name>.{mech,therm,tran,sets}] under [dir]. *)
