let r_cal = 1.98720
let p_atm = 101325.0

let arrhenius (a : Reaction.arrhenius) temp =
  a.Reaction.pre_exp
  *. (temp ** a.Reaction.temp_exp)
  *. exp (-.a.Reaction.activation /. (r_cal *. temp))

let third_body_conc (r : Reaction.t) conc =
  let total = Array.fold_left ( +. ) 0.0 conc in
  match r.Reaction.third_body with
  | None -> total
  | Some tb ->
      List.fold_left
        (fun acc (sp, eff) -> acc +. ((eff -. 1.0) *. conc.(sp)))
        total tb.Reaction.enhanced

let troe_blending (p : Reaction.troe_params) ~temp ~pr =
  let fcent =
    ((1.0 -. p.Reaction.alpha) *. exp (-.temp /. p.Reaction.t3))
    +. (p.Reaction.alpha *. exp (-.temp /. p.Reaction.t1))
    +. if p.Reaction.t2 = 0.0 then 0.0 else exp (-.p.Reaction.t2 /. temp)
  in
  let fcent = Float.max fcent 1e-30 in
  let lfc = log10 fcent in
  let c = -0.4 -. (0.67 *. lfc) in
  let n = 0.75 -. (1.27 *. lfc) in
  let lpr = log10 (Float.max pr 1e-300) in
  let f1 = (lpr +. c) /. (n -. (0.14 *. (lpr +. c))) in
  10.0 ** (lfc /. (1.0 +. (f1 *. f1)))

let sri_blending (p : Reaction.sri_params) ~temp ~pr =
  let lpr = Float.log10 (Float.max pr 1e-300) in
  let x = 1.0 /. (1.0 +. (lpr *. lpr)) in
  let base =
    (p.Reaction.sa *. exp (-.p.Reaction.sb /. temp)) +. exp (-.temp /. p.Reaction.sc)
  in
  p.Reaction.sd *. (base ** x) *. (temp ** p.Reaction.se)

(* PLOG: ln k linear in ln P between the table's pressures (atm), clamped
   outside; evaluated with the telescoping-clamp identity so the generated
   kernels can share the exact same branch-free form. *)
let plog_coeff table ~temp ~pressure =
  match table with
  | [] -> invalid_arg "plog_coeff: empty table"
  | (_, a0) :: rest ->
      let lnp = log (pressure /. p_atm) in
      let lnk (a : Reaction.arrhenius) =
        log a.Reaction.pre_exp
        +. (a.Reaction.temp_exp *. log temp)
        -. (a.Reaction.activation /. (r_cal *. temp))
      in
      let acc = ref (lnk a0) in
      let prev = ref (log (fst (List.hd table)), lnk a0) in
      List.iter
        (fun (p, a) ->
          let lp = log p and lk = lnk a in
          let lp0, lk0 = !prev in
          if lp > lp0 then begin
            let w = Float.min 1.0 (Float.max 0.0 ((lnp -. lp0) /. (lp -. lp0))) in
            acc := !acc +. (w *. (lk -. lk0));
            prev := (lp, lk)
          end)
        rest;
      exp !acc

let forward_coeff ?pressure (r : Reaction.t) ~temp ~conc =
  match r.Reaction.rate with
  | Reaction.Simple a -> arrhenius a temp
  | Reaction.Landau_teller { arr; b; c } ->
      arrhenius arr temp
      *. exp ((b /. (temp ** (1.0 /. 3.0))) +. (c /. (temp ** (2.0 /. 3.0))))
  | Reaction.Plog table -> (
      match pressure with
      | Some p -> plog_coeff table ~temp ~pressure:p
      | None -> invalid_arg "forward_coeff: PLOG reaction needs ~pressure")
  | Reaction.Falloff { high; low; kind } ->
      let k_inf = arrhenius high temp in
      let k0 = arrhenius low temp in
      let m = third_body_conc r conc in
      let pr = k0 *. m /. Float.max k_inf 1e-300 in
      let blend =
        match kind with
        | Reaction.Lindemann -> 1.0
        | Reaction.Troe p -> troe_blending p ~temp ~pr
        | Reaction.Sri p -> sri_blending p ~temp ~pr
      in
      k_inf *. (pr /. (1.0 +. pr)) *. blend

let equilibrium_constant thermo (r : Reaction.t) temp =
  let delta_g =
    List.fold_left
      (fun acc (sp, coeff) ->
        acc +. (float_of_int coeff *. Thermo.gibbs_over_rt thermo.(sp) temp))
      0.0 r.Reaction.products
    -. List.fold_left
         (fun acc (sp, coeff) ->
           acc +. (float_of_int coeff *. Thermo.gibbs_over_rt thermo.(sp) temp))
         0.0 r.Reaction.reactants
  in
  let delta_nu = Reaction.net_molecularity r in
  let c0 = p_atm /. (Thermo.gas_constant *. temp) in
  (* Clamp the exponent so a badly scaled synthetic mechanism cannot
     overflow to infinity and poison downstream comparisons. *)
  let expo = Float.max (-250.0) (Float.min 250.0 (-.delta_g)) in
  exp expo *. (c0 ** float_of_int delta_nu)

let reverse_coeff thermo (r : Reaction.t) ~temp ~forward ~conc =
  ignore conc;
  match r.Reaction.reverse with
  | Reaction.Irreversible -> 0.0
  | Reaction.Explicit a -> arrhenius a temp
  | Reaction.From_equilibrium ->
      forward /. Float.max (equilibrium_constant thermo r temp) 1e-300

let conc_product side conc =
  List.fold_left
    (fun acc (sp, coeff) ->
      let c = conc.(sp) in
      let rec pow acc k = if k = 0 then acc else pow (acc *. c) (k - 1) in
      pow acc coeff)
    1.0 side

let progress ?pressure thermo (r : Reaction.t) ~temp ~conc =
  let kf = forward_coeff ?pressure r ~temp ~conc in
  let kr = reverse_coeff thermo r ~temp ~forward:kf ~conc in
  let tb_factor =
    (* Plain "+M" reactions multiply by [M]; falloff reactions already folded
       it into the blending. *)
    match (r.Reaction.rate, r.Reaction.third_body) with
    | (Reaction.Simple _ | Reaction.Landau_teller _), Some _ ->
        third_body_conc r conc
    | _, _ -> 1.0
  in
  let qf = kf *. conc_product r.Reaction.reactants conc *. tb_factor in
  let qr = kr *. conc_product r.Reaction.products conc *. tb_factor in
  (qf, qr)

let production_rates ?pressure thermo reactions ~temp ~conc ~n =
  let wdot = Array.make n 0.0 in
  Array.iter
    (fun r ->
      let qf, qr = progress ?pressure thermo r ~temp ~conc in
      let q = qf -. qr in
      List.iter
        (fun sp ->
          wdot.(sp) <-
            wdot.(sp) +. (float_of_int (Reaction.delta_stoich r sp) *. q))
        (Reaction.species_involved r))
    reactions;
  wdot
