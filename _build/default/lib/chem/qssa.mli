(** Quasi-steady-state approximation (QSSA) computation graph (§3.4).

    For each QSSA species [s], taken in the mechanism's QSSA order, the
    scaling factor is

    {[ scale_s = prod_s / (cons_s + eps) ]}

    where [prod_s] sums forward rates of reactions producing [s] and reverse
    rates of reactions consuming it (weighted by stoichiometry), and [cons_s]
    the converse. The factor is then applied in place: forward rates of
    reactions consuming [s] and reverse rates of reactions producing [s] are
    multiplied by [scale_s].

    Because the application mutates rates that later species' sums read,
    species sharing reactions are data-dependent: this is the directed
    acyclic graph the paper partitions across QSSA warps (Fig. 7). Cycles
    are broken by the QSSA species ordering (later species see the already
    scaled rates of earlier ones, Jacobi-style), the standard practice in
    reduced-mechanism codes. *)

type node = {
  species : int;  (** QSSA species (mechanism index) *)
  produced_by : (int * int) list;  (** (reaction, nu+) with [species] a product *)
  consumed_by : (int * int) list;  (** (reaction, nu-) with [species] a reactant *)
  deps : int list;
      (** node positions (not species indices) of earlier QSSA nodes whose
          application touches a reaction this node reads *)
  flops : int;  (** FLOP estimate for mapping (paper: 20-60 DFMA each) *)
}

type graph = { nodes : node array }
(** Nodes appear in dependency-respecting order: [deps] of node [k] only
    reference positions [< k]. *)

val eps : float
(** Denominator guard, 1e-30. *)

val build : Mechanism.t -> graph

val well_ordered : graph -> bool
(** All dependency edges point backwards: the invariant property tests
    check. *)

val reactions_touched : graph -> int list
(** Sorted reaction indices read or scaled by the QSSA phase (the paper:
    "usually between half and two-thirds of the reaction rates"). *)

val eval : graph -> rr_f:float array -> rr_r:float array -> float array
(** Computes all scaling factors and applies them in place to the rate
    arrays; returns the factors in node order. *)
