type entry = {
  t_low : float;
  t_mid : float;
  t_high : float;
  low : float array;
  high : float array;
}

let gas_constant = 8.31446

let validate e =
  if Array.length e.low <> 7 then Error "low coefficient set must have 7 entries"
  else if Array.length e.high <> 7 then
    Error "high coefficient set must have 7 entries"
  else if not (e.t_low < e.t_mid && e.t_mid < e.t_high) then
    Error "temperature ranges must satisfy t_low < t_mid < t_high"
  else Ok ()

let coeffs e t = if t < e.t_mid then e.low else e.high

let cp_over_r e t =
  let a = coeffs e t in
  a.(0) +. (t *. (a.(1) +. (t *. (a.(2) +. (t *. (a.(3) +. (t *. a.(4))))))))

let h_over_rt e t =
  let a = coeffs e t in
  a.(0)
  +. (t
     *. ((a.(1) /. 2.0)
        +. (t
           *. ((a.(2) /. 3.0)
              +. (t *. ((a.(3) /. 4.0) +. (t *. (a.(4) /. 5.0))))))))
  +. (a.(5) /. t)

let s_over_r e t =
  let a = coeffs e t in
  (a.(0) *. log t)
  +. (t
     *. (a.(1)
        +. (t
           *. ((a.(2) /. 2.0)
              +. (t *. ((a.(3) /. 3.0) +. (t *. (a.(4) /. 4.0))))))))
  +. a.(6)

let gibbs_over_rt e t = h_over_rt e t -. s_over_r e t

type table = entry array
