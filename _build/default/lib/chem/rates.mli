(** Evaluation of reaction rates (ground truth for the generated kernels).

    Concentrations are in mol/m^3, temperatures in Kelvin, activation
    energies in cal/mol (CHEMKIN convention). *)

val r_cal : float
(** Gas constant in cal/(mol K) = 1.98720. *)

val p_atm : float
(** Standard atmosphere in Pa = 101325. *)

val arrhenius : Reaction.arrhenius -> float -> float
(** [arrhenius a t] is [A T^beta exp(-E/(R_cal T))]. *)

val third_body_conc : Reaction.t -> float array -> float
(** Effective third-body concentration [\[M\]] including enhanced
    efficiencies; total concentration when the reaction has no [third_body]
    record. *)

val troe_blending : Reaction.troe_params -> temp:float -> pr:float -> float

val sri_blending : Reaction.sri_params -> temp:float -> pr:float -> float
(** The Troe broadening factor F (Listing 1's computation). *)

val plog_coeff :
  (float * Reaction.arrhenius) list -> temp:float -> pressure:float -> float
(** PLOG interpolation: [ln k] linear in [ln P] between table entries
    (pressures in atm, ascending), clamped outside the table. *)

val forward_coeff :
  ?pressure:float -> Reaction.t -> temp:float -> conc:float array -> float
(** Forward rate coefficient including falloff blending. Does NOT include
    the plain "+M" third-body concentration factor (see {!progress}). *)

val equilibrium_constant :
  Thermo.table -> Reaction.t -> float -> float
(** Concentration-based equilibrium constant
    [Kc = exp(-sum nu_i g_i/RT) * (P_atm/(R T))^(delta nu)]. *)

val reverse_coeff :
  Thermo.table -> Reaction.t -> temp:float -> forward:float -> conc:float array -> float
(** Reverse rate coefficient: 0 for irreversible reactions, explicit
    Arrhenius when given, otherwise [forward / Kc]. *)

val progress :
  ?pressure:float ->
  Thermo.table -> Reaction.t -> temp:float -> conc:float array -> float * float
(** [(q_f, q_r)]: forward and reverse rates of progress including
    concentration powers and, for plain "+M" reactions, the third-body
    factor. *)

val production_rates :
  ?pressure:float ->
  Thermo.table -> Reaction.t array -> temp:float -> conc:float array -> n:int -> float array
(** Net molar production rate [wdot] of each of the [n] species. *)
