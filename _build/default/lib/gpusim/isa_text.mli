(** Textual assembly for {!Isa.program}: a SASS-like, line-oriented format
    that round-trips exactly.

    Uses: inspecting generated code ([singe_cli compile --dump] prints the
    same syntax via {!Isa.pp_block}), diffing two compilations, writing
    small kernels by hand for simulator tests, and the round-trip property
    tests.

    Format sketch:
    {v
    .program dme-viscosity-ws6
    .warps 6 .fregs 24 .iregs 3 .shared 1296 .local 0 .barriers 4
    .pointmap coop
    .group temperature 1
    ...
    .bank w0 l0 = 0x3FF0000000000000 ...
    .param w0 l0 = 3 17
    .constmem = 0x4008000000000000 ...
    .prologue {
      ld.cb f0, 0
    }
    .body {
      ld.g f1, g0.f0
      fma f2, f1, c[3], imm(0x3FE0000000000000)
      if 0x0f {
        st.s [128+32w+1l], f2 @l<4
      }
      switch {
        warp 0 { bar.arr 2, 3 }
        warp 1 { bar.sync 2, 3 }
      }
      st.g f2, g4.f0
      bar.cta
    }
    v}

    Floats serialize as hexadecimal bit patterns, so round-trips are exact
    (a human-readable decimal appears in a trailing comment). *)

val emit : Isa.program -> string
(** Full textual form, parseable by {!parse}. *)

val parse : string -> (Isa.program, string) result
(** Inverse of {!emit}; errors carry a line number and message. *)

val emit_block : Isa.block -> string
(** Just a code block (not parseable on its own — no header). *)
