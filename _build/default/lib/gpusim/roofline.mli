(** Static roofline analysis: upper bounds on a program's throughput from
    each machine resource, and the binding one.

    Bounds are computed from the static per-batch instruction counts of
    {!Isa_stats} and the architecture's issue/bandwidth parameters — no
    simulation. The simulator should never beat a bound by more than its
    timing noise; the bound/achieved ratio says which resource a kernel is
    actually limited by (the §6 arguments: viscosity math-bound, baseline
    chemistry spill-bandwidth-bound, warp-specialized chemistry
    synchronization-bound). *)

type bound = {
  resource : string;  (** e.g. "DP pipe", "local-memory path" *)
  points_per_sec : float;  (** throughput ceiling from this resource alone *)
}

type t = {
  bounds : bound list;  (** sorted, tightest first *)
  binding : bound;  (** the minimum *)
  occupancy : Machine.occupancy;
}

val analyze : Arch.t -> Isa.program -> t
(** Per-SM ceilings from: warp-instruction issue, the DP pipe (counting
    multi-slot special functions and constant-operand penalties), the
    shared-memory pipe, and each global/local bandwidth path, scaled by
    occupancy-resident CTAs and SM count. *)

val pp : Format.formatter -> t -> unit
