lib/gpusim/machine.mli: Arch Isa Memstate Sm
