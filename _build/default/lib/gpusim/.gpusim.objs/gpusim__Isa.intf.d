lib/gpusim/isa.mli: Arch Format
