lib/gpusim/isa_stats.ml: Arch Array Format Isa List
