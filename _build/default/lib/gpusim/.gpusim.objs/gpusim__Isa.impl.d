lib/gpusim/isa.ml: Arch Array Format List Printf
