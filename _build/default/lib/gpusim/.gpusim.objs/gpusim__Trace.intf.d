lib/gpusim/trace.mli: Arch Isa
