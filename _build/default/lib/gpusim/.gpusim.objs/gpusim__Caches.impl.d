lib/gpusim/caches.ml: Arch Array
