lib/gpusim/memstate.mli: Isa
