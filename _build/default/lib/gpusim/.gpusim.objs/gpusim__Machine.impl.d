lib/gpusim/machine.ml: Arch Array Float Isa List Memstate Printf Sm Trace
