lib/gpusim/trace.ml: Arch Array Fun Hashtbl Isa List
