lib/gpusim/caches.mli: Arch
