lib/gpusim/sm.mli: Arch Caches Isa Memstate Trace
