lib/gpusim/roofline.ml: Arch Array Format Fun Isa List Machine
