lib/gpusim/memstate.ml: Array Isa
