lib/gpusim/sm.ml: Arch Array Buffer Caches Float Isa List Memstate Printf Trace
