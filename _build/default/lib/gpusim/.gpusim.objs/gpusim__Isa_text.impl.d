lib/gpusim/isa_text.ml: Array Buffer Int64 Isa List Printf String
