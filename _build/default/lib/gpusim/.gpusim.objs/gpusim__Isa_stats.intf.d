lib/gpusim/isa_stats.mli: Arch Format Isa
