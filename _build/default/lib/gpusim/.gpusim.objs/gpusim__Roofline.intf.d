lib/gpusim/roofline.mli: Arch Format Isa Machine
