lib/gpusim/isa_text.mli: Isa
