lib/gpusim/arch.ml: Format String
