lib/gpusim/arch.mli: Format
