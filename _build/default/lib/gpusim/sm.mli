(** Cycle-level simulation of one streaming multiprocessor.

    Executes the per-warp traces of every resident CTA under a
    greedy-then-oldest multi-warp scheduler with:
    {ul
    {- a register scoreboard (per-register availability cycles);}
    {- throughput-limited pipes: double-precision (0.5 or 2 warp
       instructions per cycle), ALU/branch/shuffle, load-store, shared
       memory with bank-conflict serialization;}
    {- bandwidth-limited memory paths (texture, global, local/spill), each
       a drain-rate queue plus latency;}
    {- the instruction cache and constant cache of {!Caches};}
    {- 16 named barriers per CTA with arrive/sync semantics and exact
       deadlock detection (a cycle in which every live warp waits on a
       barrier raises {!Deadlock}).}}

    Instructions are executed functionally at issue; the scoreboard
    prevents premature reads, so results equal a sequential execution. *)

exception Deadlock of string

type counters = {
  mutable issued : int;
  mutable branch_instrs : int;
  mutable flops : int;  (** per-lane FLOPs, SASS-style counting *)
  mutable dp_warp_instrs : int;
  mutable tex_bytes : int;
  mutable global_bytes : int;
  mutable local_bytes : int;  (** spill traffic *)
  mutable shared_accesses : int;
  mutable bank_conflict_slots : int;
  mutable barrier_stalls : int;  (** warp-cycles blocked on named barriers *)
  mutable cta_barrier_stalls : int;
  mutable icache_stall_cycles : int;
  mutable ccache_stall_cycles : int;
}

type result = {
  cycles : int;
  counters : counters;
  icache : Caches.Icache.stats;
  ccache : Caches.Ccache.stats;
}

type job = {
  arch : Arch.t;
  program : Isa.program;
  trace : Trace.t;
  mem : Memstate.t;
  resident_ctas : int;
  batches : int;  (** point batches per CTA *)
  cta_point_base : int array;  (** first grid point of each resident CTA *)
}

val run : job -> result
(** Simulates until every warp of every resident CTA retires; [job.mem] is
    mutated with the kernel's global stores. *)
