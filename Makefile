.PHONY: all build test fmt fmt-check check perf clean

all: build

build:
	dune build @all

test:
	dune runtest

# dune formats its own files natively (ocamlformat is not a dependency);
# `make fmt` promotes, `make fmt-check` fails on drift.
fmt:
	dune fmt

fmt-check:
	dune build @fmt

# The full local gate: everything builds, formatting is clean, tests pass.
check: build fmt-check test

# Machine-readable performance snapshot (see bench/main.ml).
perf:
	dune exec bench/main.exe -- perf

clean:
	dune clean
