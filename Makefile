.PHONY: all build test test-faults fmt fmt-check check perf perf-quick clean

all: build

build:
	dune build @all

test:
	dune runtest

# Just the fault-containment suite (static deadlock verifier, watchdog,
# fault injection, poisoned sweeps). Included in `dune runtest`; this
# target isolates it for quick iteration.
test-faults:
	dune exec test/test_main.exe -- test faults

# dune formats its own files natively (ocamlformat is not a dependency);
# `make fmt` promotes, `make fmt-check` fails on drift.
fmt:
	dune fmt

fmt-check:
	dune build @fmt

# The full local gate: everything builds, formatting is clean, tests pass,
# and the quick perf snapshot still runs end to end on two domains.
check: build fmt-check test perf-quick

# Machine-readable performance snapshot (see bench/main.ml).
perf:
	dune exec bench/main.exe -- perf

# Fast smoke version of the snapshot: small sweep sizes, a fixed two-domain
# fan-out (results are identical at any --jobs value).
perf-quick:
	SINGE_FAST=1 dune exec bench/main.exe -- perf --jobs 2

clean:
	dune clean
