.PHONY: all build test test-faults fmt fmt-check check perf perf-quick \
	profile-smoke predict-smoke chip-smoke synth-smoke partition-smoke \
	stencil-smoke serve-smoke serve-soak clean

all: build

build:
	dune build @all

test:
	dune runtest

# Just the fault-containment suite (static deadlock verifier, watchdog,
# fault injection, poisoned sweeps). Included in `dune runtest`; this
# target isolates it for quick iteration.
test-faults:
	dune exec test/test_main.exe -- test faults

# dune formats its own files natively (ocamlformat is not a dependency);
# `make fmt` promotes, `make fmt-check` fails on drift.
fmt:
	dune fmt

fmt-check:
	dune build @fmt

# The full local gate: everything builds, formatting is clean, tests pass,
# the quick perf snapshot still runs end to end on two domains, the
# profiler's CLI surface emits conserving buckets and valid trace JSON,
# the analytic performance model stays sound (floor <= simulator), and
# the multi-SM chip layer is deterministic and schema-clean, the
# shuffle-exchange rewrite stays bit-exact and profitable, the partition
# searcher rediscovers-or-beats the hand mapping under its deadlock gate,
# the stencil pipelines stay bit-exact against their host oracle in both
# tiling modes, and the serve loop answers a hostile request mix with
# typed responses.
check: build fmt-check test perf-quick profile-smoke predict-smoke chip-smoke \
	synth-smoke partition-smoke stencil-smoke serve-smoke

# Machine-readable performance snapshot (see bench/main.ml).
perf:
	dune exec bench/main.exe -- perf

# Fast smoke version of the snapshot: small sweep sizes, a fixed two-domain
# fan-out (results are identical at any --jobs value).
perf-quick:
	SINGE_FAST=1 dune exec bench/main.exe -- perf --jobs 2

# Profiler smoke: run `singe profile` on one kernel with --check, which
# verifies bucket conservation, Chrome-trace JSON syntax, and timestamp
# monotonicity in-process (exit 1 on any failure).
profile-smoke:
	dune exec bin/singe_cli.exe -- profile --mech dme --kernel viscosity \
		--points 1248 --chrome-trace /tmp/singe-profile-smoke.json --check

# Performance-model smoke: `singe predict --check` predicts every kernel x
# version, simulates each, and exits 1 if the model drifts past its
# accuracy gate or the simulator ever beats the provable floor.
predict-smoke:
	dune exec bin/singe_cli.exe -- predict --mech hydrogen --check

# Chip-layer smoke: a 4-SM DME viscosity launch must be byte-identical
# whether simulated serially or on concurrent domains, dispatch every
# CTA, and emit a well-formed perf-v10 "chip" JSON object (exit 1 on any
# failure).
chip-smoke:
	dune exec bench/main.exe -- chip-smoke

# Exchange-rewrite smoke: DME diffusion with the shuffle-exchange
# superoptimizer on vs off must produce bit-identical outputs, remove
# round trips without costing cycles, and emit a well-formed perf-v10
# "exchange" JSON object (exit 1 on any failure).
synth-smoke:
	dune exec bench/main.exe -- synth-smoke

# Partition-search smoke: the three-phase searcher (propose, model-rank,
# deadlock-gate, simulate-confirm) on hydrogen viscosity must rediscover
# or beat the hand partition in under ~30 s, with every winner passing
# the safety gate and a well-formed perf-v10 "partition" JSON object
# (exit 1 on any failure).
partition-smoke:
	dune exec bench/main.exe -- partition-smoke

# Stencil smoke: both bundled stencil pipelines, warp-specialized on both
# architectures, must match the host reference bit-for-bit, agree across
# the two tiling modes on the commonly-simulated prefix, keep the model
# floor sound, and emit a well-formed perf-v10 stencil JSON object
# (exit 1 on any failure).
stencil-smoke:
	dune exec bench/main.exe -- stencil-smoke

# Serve smoke: drive the real `singe serve` binary over one session of
# mixed requests — every request family, every error class, an idempotent
# replay, a degraded deadline overrun, and a backpressure burst — and
# re-validate every response line (exit 1 on any failure).
serve-smoke: build
	dune exec bench/main.exe -- serve-smoke

# Serve soak: hundreds of mixed requests (valid work, malformed lines,
# injected deadlocks and silent corruption, deadline busters, replays)
# against one warm serve process. On demand, not part of `make check`.
serve-soak: build
	dune exec bench/main.exe -- serve-soak

clean:
	dune clean
