(** Source positions for the CHEMKIN-standard input parsers.

    Every parser in this library ({!Chemkin_parser}, {!Thermo_parser},
    {!Transport_parser}) and the assembly driver ({!Mech_io}) reports
    failures as a positioned {!error} — file (when parsing from a file),
    1-based line, and the offending token when one is isolated — instead
    of a bare string, so drivers can point the user at the exact input
    that broke. *)

type t = {
  file : string option;  (** input file, when parsing from disk *)
  line : int;  (** 1-based source line; [0] when unknown *)
  token : string option;  (** the offending token, when isolated *)
}

type error = { loc : t; msg : string }

exception Parse_error of error
(** Used internally by the parsers for early exit; the public [parse]
    entry points always catch it and return [Error]. *)

val none : t
(** The empty location (no file, line 0, no token). *)

val make : ?file:string -> ?token:string -> int -> t

val raise_at : ?token:string -> int -> ('a, unit, string, 'b) format4 -> 'a
(** [raise_at line fmt ...] raises {!Parse_error} at [line] (no file —
    the catching entry point fills it in via {!in_file}). *)

val error_at :
  ?file:string -> ?token:string -> int ->
  ('a, unit, string, error) format4 -> 'a

val in_file : ?file:string -> error -> error
(** Attach the source file to an error that does not have one yet
    (errors that already carry a file keep it). *)

val with_contents :
  string -> (string -> ('a, error) result) -> ('a, error) result
(** [with_contents path k] reads [path] and applies [k] to its contents;
    a failure to read the file becomes a positioned error carrying the
    path instead of an uncaught [Sys_error]. *)

val loc_string : t -> string option
(** ["file:12"], ["file"], ["line 12"], or [None] when empty. *)

val message_string : error -> string
(** The message, prefixed with [near "TOKEN": ] when a token is known. *)

val to_string : error -> string
(** One-line rendering: ["input.mech:12: near \"FOO\": message"], with
    the absent parts omitted. *)

val pp : Format.formatter -> error -> unit
