type entry = {
  name : string;
  composition : (Species.element * int) list;
  thermo : Thermo.entry;
}

let fail line fmt = Srcloc.raise_at line fmt

let field text lo len =
  (* 1-based fixed columns; tolerate short lines by padding. *)
  let padded =
    if String.length text >= lo - 1 + len then text
    else text ^ String.make (lo - 1 + len - String.length text) ' '
  in
  String.sub padded (lo - 1) len

let float_field lineno text lo len =
  let s = String.trim (field text lo len) in
  let s = String.map (fun c -> if c = 'D' || c = 'd' then 'E' else c) s in
  match float_of_string_opt s with
  | Some f -> f
  | None ->
      Srcloc.raise_at ~token:s lineno "bad number %S in columns %d-%d" s lo
        (lo + len - 1)

let parse_composition lineno text =
  (* Four 5-column (element: 2 chars, count: 3 chars) pairs in cols 25-44. *)
  let comps = ref [] in
  for k = 0 to 3 do
    let sym = String.trim (field text (25 + (k * 5)) 2) in
    let cnt = String.trim (field text (27 + (k * 5)) 3) in
    if sym <> "" && sym <> "0" then begin
      match Species.element_of_string sym with
      | None -> Srcloc.raise_at ~token:sym lineno "unknown element %S" sym
      | Some e -> (
          match int_of_string_opt cnt with
          | Some n when n > 0 -> comps := (e, n) :: !comps
          | Some _ -> ()
          | None -> (
              (* Counts are occasionally written as floats ("2."). *)
              match float_of_string_opt cnt with
              | Some f when f > 0.0 -> comps := (e, int_of_float f) :: !comps
              | _ -> fail lineno "bad element count %S" cnt))
    end
  done;
  List.rev !comps

let card_floats lineno text n =
  Array.init n (fun k -> float_field lineno text (1 + (k * 15)) 15)

let parse ?file contents =
  let lines =
    String.split_on_char '\n' contents
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) ->
           let t = String.trim l in
           t <> ""
           && (not (String.length t >= 1 && t.[0] = '!'))
           && String.uppercase_ascii t <> "THERMO"
           && String.uppercase_ascii t <> "END")
  in
  (* Drop a leading default-temperature line: three bare floats. *)
  let lines =
    match lines with
    | (_, l) :: rest ->
        let toks =
          String.split_on_char ' ' l |> List.filter (fun t -> t <> "")
        in
        if
          List.length toks = 3
          && List.for_all (fun t -> float_of_string_opt t <> None) toks
        then rest
        else lines
    | [] -> lines
  in
  let rec take4 acc = function
    | [] -> Ok (List.rev acc)
    | (l1, c1) :: (l2, c2) :: (l3, c3) :: (l4, c4) :: rest -> (
        try
          let name = String.trim (field c1 1 18) in
          let name =
            match String.index_opt name ' ' with
            | Some i -> String.sub name 0 i
            | None -> name
          in
          if name = "" then fail l1 "missing species name";
          let composition = parse_composition l1 c1 in
          let t_low = float_field l1 c1 46 10 in
          let t_high = float_field l1 c1 56 10 in
          let t_mid = float_field l1 c1 66 8 in
          let r2 = card_floats l2 c2 5 in
          let r3 = card_floats l3 c3 5 in
          let r4 = card_floats l4 c4 4 in
          let high =
            [| r2.(0); r2.(1); r2.(2); r2.(3); r2.(4); r3.(0); r3.(1) |]
          in
          let low =
            [| r3.(2); r3.(3); r3.(4); r4.(0); r4.(1); r4.(2); r4.(3) |]
          in
          let thermo = { Thermo.t_low; t_mid; t_high; low; high } in
          (match Thermo.validate thermo with
          | Ok () -> ()
          | Error msg -> fail l1 "%s" msg);
          ignore (l3, l4, c3, c4);
          take4 ({ name; composition; thermo } :: acc) rest
        with Srcloc.Parse_error e -> Error (Srcloc.in_file ?file e))
    | (l, _) :: _ ->
        Error (Srcloc.error_at ?file l "incomplete 4-card thermo entry")
  in
  take4 [] lines

let parse_file path = Srcloc.with_contents path (parse ~file:path)

let to_string entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "THERMO\n   300.000  1000.000  5000.000\n";
  List.iter
    (fun e ->
      let th = e.thermo in
      let comp = Buffer.create 20 in
      List.iteri
        (fun k (el, n) ->
          if k < 4 then
            Buffer.add_string comp
              (Printf.sprintf "%-2s%3d" (Species.element_symbol el) n))
        e.composition;
      let comp = Buffer.contents comp in
      let comp = comp ^ String.make (20 - String.length comp) ' ' in
      Buffer.add_string buf
        (Printf.sprintf "%-18s      %sG%10.3f%10.3f%8.2f      1\n" e.name comp
           th.Thermo.t_low th.Thermo.t_high th.Thermo.t_mid);
      let h = th.Thermo.high and l = th.Thermo.low in
      let e15 v = Printf.sprintf "%15.8E" v in
      Buffer.add_string buf
        (e15 h.(0) ^ e15 h.(1) ^ e15 h.(2) ^ e15 h.(3) ^ e15 h.(4) ^ "    2\n");
      Buffer.add_string buf
        (e15 h.(5) ^ e15 h.(6) ^ e15 l.(0) ^ e15 l.(1) ^ e15 l.(2) ^ "    3\n");
      Buffer.add_string buf
        (e15 l.(3) ^ e15 l.(4) ^ e15 l.(5) ^ e15 l.(6)
        ^ String.make 15 ' ' ^ "    4\n"))
    entries;
  Buffer.add_string buf "END\n";
  Buffer.contents buf
