type t = { file : string option; line : int; token : string option }
type error = { loc : t; msg : string }

exception Parse_error of error

let none = { file = None; line = 0; token = None }
let make ?file ?token line = { file; line; token }

let raise_at ?token line fmt =
  Printf.ksprintf
    (fun msg -> raise (Parse_error { loc = make ?token line; msg }))
    fmt

let error_at ?file ?token line fmt =
  Printf.ksprintf (fun msg -> { loc = make ?file ?token line; msg }) fmt

let in_file ?file (e : error) =
  match (file, e.loc.file) with
  | Some _, None -> { e with loc = { e.loc with file } }
  | _ -> e

let with_contents path k =
  match
    let ic = open_in path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | contents -> k contents
  | exception Sys_error msg -> Error { loc = make ~file:path 0; msg }

let loc_string loc =
  match (loc.file, loc.line) with
  | Some f, n when n > 0 -> Some (Printf.sprintf "%s:%d" f n)
  | Some f, _ -> Some f
  | None, n when n > 0 -> Some (Printf.sprintf "line %d" n)
  | None, _ -> None

let message_string (e : error) =
  match e.loc.token with
  | Some tok -> Printf.sprintf "near %S: %s" tok e.msg
  | None -> e.msg

let to_string (e : error) =
  match loc_string e.loc with
  | Some l -> l ^ ": " ^ message_string e
  | None -> message_string e

let pp ppf e = Format.pp_print_string ppf (to_string e)
