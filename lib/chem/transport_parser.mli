(** Parser for the TRANSPORT file (Singe's third input): one line per
    species with six whitespace-separated numbers after the name —
    geometry flag, Lennard-Jones well depth (K), collision diameter
    (Angstrom), dipole moment (Debye), polarizability (Angstrom^3),
    rotational relaxation number. *)

val parse :
  ?file:string ->
  string ->
  ((string * Species.transport_params) list, Srcloc.error) result
(** Errors are positioned ({!Srcloc.error}): 1-based line, the
    unparsable token when one is isolated, and [file] when given. *)

val parse_file :
  string -> ((string * Species.transport_params) list, Srcloc.error) result

val to_string : (string * Species.transport_params) list -> string
(** Emit in the same format ({!parse} round-trips it). *)
