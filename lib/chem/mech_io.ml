let ( let* ) = Result.bind

let load_strings ?species_sets ?chemkin_file ?thermo_file ?transport_file
    ?sets_file ~chemkin ~thermo ~transport ~name () =
  let* parsed = Chemkin_parser.parse ?file:chemkin_file chemkin in
  let* thermo_entries = Thermo_parser.parse ?file:thermo_file thermo in
  let* transport_entries = Transport_parser.parse ?file:transport_file transport in
  let* sets =
    match species_sets with
    | None -> Ok ([], [])
    | Some s -> Chemkin_parser.parse_species_sets ?file:sets_file s
  in
  (* Semantic (cross-file resolution) errors are attributed to the CHEMKIN
     mechanism file: that is where species are declared and reactions
     written. *)
  let sem ?token ?(line = 0) fmt =
    Printf.ksprintf
      (fun msg ->
        Error { Srcloc.loc = { Srcloc.file = chemkin_file; line; token }; msg })
      fmt
  in
  let find_thermo name =
    List.find_opt
      (fun e -> String.uppercase_ascii e.Thermo_parser.name = String.uppercase_ascii name)
      thermo_entries
  in
  let find_transport name =
    List.assoc_opt (String.uppercase_ascii name) transport_entries
  in
  (* Build the species array in CHEMKIN declaration order. *)
  let build_species sp_name =
    match find_thermo sp_name with
    | None -> sem ~token:sp_name "species %S has no THERMO entry" sp_name
    | Some th ->
        let transport =
          match find_transport sp_name with
          | Some t -> t
          | None -> Species.default_transport
        in
        Ok
          ( Species.make ~transport ~name:sp_name th.Thermo_parser.composition,
            th.Thermo_parser.thermo )
  in
  let rec build_all acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest ->
        let* sp = build_species n in
        build_all (sp :: acc) rest
  in
  let* pairs = build_all [] parsed.Chemkin_parser.species_names in
  let species = Array.of_list (List.map fst pairs) in
  let thermo_table = Array.of_list (List.map snd pairs) in
  let index_of ?line sp_name =
    let target = String.uppercase_ascii sp_name in
    let rec go i =
      if i >= Array.length species then
        sem ~token:sp_name ?line "unknown species %S" sp_name
      else if String.uppercase_ascii species.(i).Species.name = target then Ok i
      else go (i + 1)
    in
    go 0
  in
  let resolve_side ?line side =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (n, c) :: rest ->
          let* i = index_of ?line n in
          go ((i, c) :: acc) rest
    in
    go [] side
  in
  let build_reaction (raw : Chemkin_parser.raw_reaction) =
    let line = raw.Chemkin_parser.line in
    let* lhs = resolve_side ~line raw.Chemkin_parser.lhs in
    let* rhs = resolve_side ~line raw.Chemkin_parser.rhs in
    let* rate =
      Result.map_error
        (Srcloc.in_file ?file:chemkin_file)
        (Chemkin_parser.rate_model_of_raw raw)
    in
    let reverse =
      match (raw.Chemkin_parser.rev, raw.Chemkin_parser.reversible) with
      | Some a, _ -> Reaction.Explicit a
      | None, true -> Reaction.From_equilibrium
      | None, false -> Reaction.Irreversible
    in
    let* third_body =
      if raw.Chemkin_parser.third_body || raw.Chemkin_parser.falloff then
        let rec resolve acc = function
          | [] -> Ok (List.rev acc)
          | (n, eff) :: rest ->
              let* i = index_of ~line n in
              resolve ((i, eff) :: acc) rest
        in
        let* enhanced = resolve [] raw.Chemkin_parser.efficiencies in
        Ok (Some { Reaction.enhanced })
      else Ok None
    in
    Ok
      (Reaction.make ~label:raw.Chemkin_parser.equation ~reverse ?third_body
         ~reactants:lhs ~products:rhs rate)
  in
  let rec build_reactions acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | raw :: rest ->
        let* r = build_reaction raw in
        build_reactions (r :: acc) rest
  in
  let* reactions = build_reactions [] parsed.Chemkin_parser.raw_reactions in
  let resolve_set names =
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | n :: rest ->
          let* i = index_of n in
          go (i :: acc) rest
    in
    go [] names
  in
  let* qssa = resolve_set (fst sets) in
  let* stiff = resolve_set (snd sets) in
  let mech =
    Mechanism.make ~name ~species ~reactions ~thermo:thermo_table ~qssa ~stiff ()
  in
  match Mechanism.validate mech with
  | Ok () -> Ok mech
  | Error problems -> sem "%s" (String.concat "; " problems)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let load_files ?species_sets_path ~chemkin_path ~thermo_path ~transport_path
    ~name () =
  (* [read_file] raises [Sys_error] on a missing or unreadable input;
     contain it as a positioned error so drivers never see an exception. *)
  match
    let species_sets = Option.map read_file species_sets_path in
    ( species_sets,
      read_file chemkin_path,
      read_file thermo_path,
      read_file transport_path )
  with
  | species_sets, chemkin, thermo, transport ->
      load_strings ?species_sets ?sets_file:species_sets_path
        ~chemkin_file:chemkin_path ~thermo_file:thermo_path
        ~transport_file:transport_path ~chemkin ~thermo ~transport ~name ()
  | exception Sys_error msg -> Error { Srcloc.loc = Srcloc.none; msg }

let arrhenius_text (a : Reaction.arrhenius) =
  Printf.sprintf "%.6E %.3f %.3E" a.Reaction.pre_exp a.Reaction.temp_exp
    a.Reaction.activation

let chemkin_of_mechanism (mech : Mechanism.t) =
  let buf = Buffer.create 8192 in
  let name_of i = mech.Mechanism.species.(i).Species.name in
  Buffer.add_string buf "ELEMENTS\n";
  let elements =
    Array.to_list mech.Mechanism.species
    |> List.concat_map (fun sp -> List.map fst sp.Species.composition)
    |> List.sort_uniq compare
  in
  Buffer.add_string buf
    (String.concat " " (List.map Species.element_symbol elements));
  Buffer.add_string buf "\nEND\nSPECIES\n";
  Array.iteri
    (fun i _ ->
      Buffer.add_string buf (name_of i);
      if (i + 1) mod 8 = 0 then Buffer.add_char buf '\n'
      else Buffer.add_char buf ' ')
    mech.Mechanism.species;
  Buffer.add_string buf "\nEND\nREACTIONS\n";
  Array.iter
    (fun (r : Reaction.t) ->
      let side_text side =
        List.map
          (fun (sp, c) ->
            if c = 1 then name_of sp else string_of_int c ^ name_of sp)
          side
        |> String.concat " + "
      in
      let m_text =
        if Reaction.is_falloff r then " (+M)"
        else if r.Reaction.third_body <> None then " + M"
        else ""
      in
      let sep =
        match r.Reaction.reverse with
        | Reaction.Irreversible -> "=>"
        | Reaction.From_equilibrium | Reaction.Explicit _ -> "="
      in
      let high =
        match r.Reaction.rate with
        | Reaction.Simple a -> a
        | Reaction.Falloff { high; _ } -> high
        | Reaction.Landau_teller { arr; _ } -> arr
        | Reaction.Plog table -> snd (List.hd (List.rev table))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s %s%s    %s\n"
           (side_text r.Reaction.reactants)
           m_text sep
           (side_text r.Reaction.products)
           m_text (arrhenius_text high));
      (match r.Reaction.rate with
      | Reaction.Falloff { low; kind; _ } -> (
          Buffer.add_string buf
            (Printf.sprintf "  LOW / %s /\n" (arrhenius_text low));
          match kind with
          | Reaction.Lindemann -> ()
          | Reaction.Troe p ->
              Buffer.add_string buf
                (Printf.sprintf "  TROE / %.4f %.4E %.4E %.4E /\n"
                   p.Reaction.alpha p.Reaction.t3 p.Reaction.t1 p.Reaction.t2)
          | Reaction.Sri p ->
              Buffer.add_string buf
                (Printf.sprintf "  SRI / %.4f %.4E %.4E %.4f %.4f /\n"
                   p.Reaction.sa p.Reaction.sb p.Reaction.sc p.Reaction.sd
                   p.Reaction.se))
      | Reaction.Landau_teller { b; c; _ } ->
          Buffer.add_string buf (Printf.sprintf "  LT / %.4f %.4f /\n" b c)
      | Reaction.Plog table ->
          List.iter
            (fun (p, a) ->
              Buffer.add_string buf
                (Printf.sprintf "  PLOG / %.6E %s /\n" p (arrhenius_text a)))
            table
      | Reaction.Simple _ -> ());
      (match r.Reaction.reverse with
      | Reaction.Explicit a ->
          Buffer.add_string buf
            (Printf.sprintf "  REV / %s /\n" (arrhenius_text a))
      | Reaction.Irreversible | Reaction.From_equilibrium -> ());
      match r.Reaction.third_body with
      | Some { Reaction.enhanced = [] } | None -> ()
      | Some { Reaction.enhanced } ->
          Buffer.add_string buf " ";
          List.iter
            (fun (sp, eff) ->
              Buffer.add_string buf
                (Printf.sprintf " %s/%.2f/" (name_of sp) eff))
            enhanced;
          Buffer.add_char buf '\n')
    mech.Mechanism.reactions;
  Buffer.add_string buf "END\n";
  Buffer.contents buf

let thermo_of_mechanism (mech : Mechanism.t) =
  Array.to_list mech.Mechanism.species
  |> List.mapi (fun i sp ->
         {
           Thermo_parser.name = sp.Species.name;
           composition = sp.Species.composition;
           thermo = mech.Mechanism.thermo.(i);
         })
  |> Thermo_parser.to_string

let transport_of_mechanism (mech : Mechanism.t) =
  Array.to_list mech.Mechanism.species
  |> List.map (fun sp -> (sp.Species.name, sp.Species.transport))
  |> Transport_parser.to_string

let species_sets_of_mechanism (mech : Mechanism.t) =
  let buf = Buffer.create 512 in
  let section title indices =
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    Array.iter
      (fun i ->
        Buffer.add_string buf mech.Mechanism.species.(i).Species.name;
        Buffer.add_char buf '\n')
      indices;
    Buffer.add_string buf "END\n"
  in
  section "QSSA" mech.Mechanism.qssa;
  section "STIFF" mech.Mechanism.stiff;
  Buffer.contents buf

let save_files mech ~dir =
  let write suffix text =
    let path = Filename.concat dir (mech.Mechanism.name ^ suffix) in
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  write ".mech" (chemkin_of_mechanism mech);
  write ".therm" (thermo_of_mechanism mech);
  write ".tran" (transport_of_mechanism mech);
  write ".sets" (species_sets_of_mechanism mech)
