(** Assembling mechanisms from the four CHEMKIN-standard input files, and
    writing mechanisms back out in those formats (round-trip). *)

val load_strings :
  ?species_sets:string ->
  ?chemkin_file:string ->
  ?thermo_file:string ->
  ?transport_file:string ->
  ?sets_file:string ->
  chemkin:string ->
  thermo:string ->
  transport:string ->
  name:string ->
  unit ->
  (Mechanism.t, Srcloc.error) result
(** Parse all inputs, resolve species names, attach thermo/transport data,
    build rate models, and validate. Species missing a TRANSPORT entry get
    {!Species.default_transport}; species missing a THERMO entry are an
    error.

    Errors are positioned ({!Srcloc.error}); the optional [*_file] names
    label each input so a parse error points at the right source file.
    Cross-file resolution errors (unknown species, missing THERMO entry)
    are attributed to the CHEMKIN file, at the offending reaction's line
    when one is involved. *)

val load_files :
  ?species_sets_path:string ->
  chemkin_path:string ->
  thermo_path:string ->
  transport_path:string ->
  name:string ->
  unit ->
  (Mechanism.t, Srcloc.error) result
(** {!load_strings} on the files' contents, with each path attached to
    its errors. An unreadable input file is returned as an error (the
    [Sys_error] is contained), never raised. *)

val chemkin_of_mechanism : Mechanism.t -> string
(** CHEMKIN mechanism text (ELEMENTS/SPECIES/REACTIONS) for the given
    mechanism. *)

val thermo_of_mechanism : Mechanism.t -> string
val transport_of_mechanism : Mechanism.t -> string

val species_sets_of_mechanism : Mechanism.t -> string
(** The optional fourth file (QSSA/STIFF sections). *)

val save_files : Mechanism.t -> dir:string -> unit
(** Write [<name>.{mech,therm,tran,sets}] under [dir]. *)
