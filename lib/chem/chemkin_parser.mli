(** Parser for the CHEMKIN mechanism file (the first of Singe's three input
    files; Fig. 4 shows the format).

    Supported constructs: [ELEMENTS]/[SPECIES]/[REACTIONS] sections, ["!"]
    comments, reversible ["="]/["<=>"] and irreversible ["=>"] reactions,
    integer stoichiometric prefixes (["2CH3"]), falloff ["( +M)"] partners,
    plain ["+M"] third bodies, and the auxiliary lines [LOW/.../],
    [TROE/.../], [REV/.../], [LT/.../], [DUPLICATE], and third-body
    efficiency pairs ([H2/2.0/ H2O/5.0/]).

    Names are resolved to indices later by {!Mech_io}; this module returns a
    purely syntactic representation. *)

type raw_side = (string * int) list
(** (species name, stoichiometric coefficient) *)

type raw_reaction = {
  line : int;  (** 1-based source line of the equation *)
  equation : string;  (** original text, for diagnostics *)
  lhs : raw_side;
  rhs : raw_side;
  reversible : bool;
  falloff : bool;  (** "(+M)" present *)
  third_body : bool;  (** "+M" present (falloff implies this) *)
  arrhenius : Reaction.arrhenius;  (** high-pressure / only limit *)
  low : Reaction.arrhenius option;
  troe : Reaction.troe_params option;
  sri : Reaction.sri_params option;
  plog : (float * Reaction.arrhenius) list;
  rev : Reaction.arrhenius option;
  landau_teller : (float * float) option;  (** LT/ b c / *)
  efficiencies : (string * float) list;
  duplicate : bool;
}

type t = {
  elements : string list;
  species_names : string list;
  raw_reactions : raw_reaction list;
}

val parse : ?file:string -> string -> (t, Srcloc.error) result
(** Parse file contents. Errors are positioned ({!Srcloc.error}): 1-based
    line, the offending token when one is isolated, and [file] when
    given. *)

val parse_file : string -> (t, Srcloc.error) result
(** {!parse} on the file's contents, with the path attached to any error
    (including a failure to read the file itself). *)

val parse_species_sets :
  ?file:string -> string -> (string list * string list, Srcloc.error) result
(** Parser for the optional fourth input file: a [QSSA] section and a
    [STIFF] section, each listing species names, ["!"] comments allowed.
    Returns (qssa names, stiff names). *)

val rate_model_of_raw :
  raw_reaction -> (Reaction.rate_model, Srcloc.error) result
(** Combine the auxiliary information into a {!Reaction.rate_model};
    rejects inconsistent combinations (e.g. TROE without LOW), positioned
    at the reaction's equation line. *)
