(** Parser for the fixed-column NASA THERMO file (Singe's second input).

    Format (per species, four 80-column card images):
    {v
    card 1: cols 1-18 name, 25-44 four (element,count) pairs, 45 phase,
            46-55 T_low, 56-65 T_high, 66-73 T_mid, col 80 = '1'
    card 2: five E15.8 numbers: high-range a1..a5, col 80 = '2'
    card 3: high-range a6 a7, low-range a1 a2 a3, col 80 = '3'
    card 4: low-range a4..a7, col 80 = '4'
    v}
    An optional global header line [THERMO] followed by a default
    temperature-range line is accepted, as is a trailing [END]. *)

type entry = {
  name : string;
  composition : (Species.element * int) list;
  thermo : Thermo.entry;
}

val parse : ?file:string -> string -> (entry list, Srcloc.error) result
(** Errors are positioned ({!Srcloc.error}): 1-based line, the bad field
    when one is isolated, and [file] when given. *)

val parse_file : string -> (entry list, Srcloc.error) result

val to_string : entry list -> string
(** Emit in the same fixed-column format ({!parse} round-trips it). *)
