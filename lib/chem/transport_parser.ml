let strip_comment line =
  match String.index_opt line '!' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse ?file contents =
  let lines = String.split_on_char '\n' contents in
  let entries = ref [] in
  let error = ref None in
  List.iteri
    (fun idx raw ->
      if !error = None then begin
        let lineno = idx + 1 in
        let text = String.trim (strip_comment raw) in
        if text <> "" && String.uppercase_ascii text <> "END" then begin
          let toks =
            String.split_on_char ' ' text
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun t -> t <> "")
          in
          match toks with
          | [ name; geo; eps; sigma; mu; alpha; zrot ] -> (
              let fields = [ geo; eps; sigma; mu; alpha; zrot ] in
              let nums = List.map float_of_string_opt fields in
              match nums with
              | [ Some g; Some e; Some s; Some m; Some a; Some z ] ->
                  entries :=
                    ( String.uppercase_ascii name,
                      {
                        Species.geometry = int_of_float g;
                        well_depth = e;
                        diameter = s;
                        dipole = m;
                        polarizability = a;
                        rot_relax = z;
                      } )
                    :: !entries
              | _ ->
                  let bad =
                    List.find_opt
                      (fun t -> float_of_string_opt t = None)
                      fields
                  in
                  error :=
                    Some
                      (Srcloc.error_at ?file ?token:bad lineno
                         "bad number in %S" text))
          | _ ->
              error :=
                Some
                  (Srcloc.error_at ?file lineno
                     "expected name + 6 fields, got %d" (List.length toks))
        end
      end)
    lines;
  match !error with Some e -> Error e | None -> Ok (List.rev !entries)

let parse_file path = Srcloc.with_contents path (parse ~file:path)

let to_string entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, p) ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %d %10.3f %10.4f %8.3f %8.3f %8.3f\n" name
           p.Species.geometry p.Species.well_depth p.Species.diameter
           p.Species.dipole p.Species.polarizability p.Species.rot_relax))
    entries;
  Buffer.contents buf
