type raw_side = (string * int) list

type raw_reaction = {
  line : int;
  equation : string;
  lhs : raw_side;
  rhs : raw_side;
  reversible : bool;
  falloff : bool;
  third_body : bool;
  arrhenius : Reaction.arrhenius;
  low : Reaction.arrhenius option;
  troe : Reaction.troe_params option;
  sri : Reaction.sri_params option;
  plog : (float * Reaction.arrhenius) list;
  rev : Reaction.arrhenius option;
  landau_teller : (float * float) option;
  efficiencies : (string * float) list;
  duplicate : bool;
}

type t = {
  elements : string list;
  species_names : string list;
  raw_reactions : raw_reaction list;
}

let fail line fmt = Srcloc.raise_at line fmt

let strip_comment line =
  match String.index_opt line '!' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens_of s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let float_of_token line s =
  (* CHEMKIN numbers sometimes end in a bare '.', which OCaml accepts, and
     use 'D' exponents, which it does not. *)
  let s = String.map (fun c -> if c = 'D' || c = 'd' then 'E' else c) s in
  match float_of_string_opt s with
  | Some f -> f
  | None -> Srcloc.raise_at ~token:s line "cannot parse number %S" s

(* Parse one side of an equation: "2CH3+H" or "CH4 + H". "(+M)" has already
   been removed; a bare "M" term is handled by the caller. *)
let parse_side line text =
  let terms = String.split_on_char '+' text in
  let parse_term t =
    let t = String.trim t in
    if t = "" then fail line "empty species term in %S" text;
    let len = String.length t in
    let digits = ref 0 in
    while !digits < len && t.[!digits] >= '0' && t.[!digits] <= '9' do
      incr digits
    done;
    let coeff =
      if !digits = 0 then 1
      else
        (* The digit run is unbounded user input: [int_of_string] on
           e.g. "99999999999999999999H2O" raises an anonymous [Failure]
           instead of a positioned parse error. *)
        let d = String.sub t 0 !digits in
        match int_of_string_opt d with
        | Some c -> c
        | None ->
            Srcloc.raise_at ~token:d line
              "stoichiometric coefficient %S does not fit in an integer (term %S)"
              d t
    in
    let name = String.trim (String.sub t !digits (len - !digits)) in
    if name = "" then fail line "missing species name in term %S" t;
    (name, coeff)
  in
  List.map parse_term terms

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let remove_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let buf = Buffer.create nh in
  let i = ref 0 in
  while !i < nh do
    if !i + nn <= nh && String.sub hay !i nn = needle then i := !i + nn
    else begin
      Buffer.add_char buf hay.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Split an equation at its (first) separator; returns lhs, rhs,
   reversible. *)
let split_equation line eq =
  let find needle =
    let nh = String.length eq and nn = String.length needle in
    let rec go i = if i + nn > nh then None else if String.sub eq i nn = needle then Some i else go (i + 1) in
    go 0
  in
  match find "<=>" with
  | Some i ->
      (String.sub eq 0 i, String.sub eq (i + 3) (String.length eq - i - 3), true)
  | None -> (
      match find "=>" with
      | Some i ->
          (String.sub eq 0 i, String.sub eq (i + 2) (String.length eq - i - 2), false)
      | None -> (
          match find "=" with
          | Some i ->
              (String.sub eq 0 i, String.sub eq (i + 1) (String.length eq - i - 1), true)
          | None -> fail line "no '=' separator in equation %S" eq))

let parse_equation line eq =
  let eq_upper = String.uppercase_ascii eq in
  let falloff = contains_substring eq_upper "(+M)" in
  let eq_clean = remove_substring eq_upper "(+M)" in
  let lhs_text, rhs_text, reversible = split_equation line eq_clean in
  let strip_m side =
    let terms = parse_side line side in
    let has_m = List.exists (fun (n, _) -> n = "M") terms in
    (List.filter (fun (n, _) -> n <> "M") terms, has_m)
  in
  let lhs, m_l = strip_m lhs_text in
  let rhs, m_r = strip_m rhs_text in
  if m_l <> m_r then fail line "unbalanced +M in %S" eq;
  (lhs, rhs, reversible, falloff, falloff || m_l)

(* Auxiliary line handling. Forms:
     LOW / a b e /      TROE / a t3 t1 [t2] /     SRI / a b c [d e] /
     PLOG / p a b e /   REV / a b e /   LT / b c /
     DUPLICATE          sp/eff/ sp/eff/ ... *)
type aux =
  | Aux_low of Reaction.arrhenius
  | Aux_troe of Reaction.troe_params
  | Aux_sri of Reaction.sri_params
  | Aux_plog of float * Reaction.arrhenius
  | Aux_rev of Reaction.arrhenius
  | Aux_lt of float * float
  | Aux_dup
  | Aux_eff of (string * float) list

let parse_aux line text =
  let upper = String.uppercase_ascii (String.trim text) in
  if upper = "DUPLICATE" || upper = "DUP" then Some Aux_dup
  else if not (String.contains upper '/') then None
  else begin
    let fields = String.split_on_char '/' upper |> List.map String.trim in
    match fields with
    | keyword :: body :: _rest
      when List.mem keyword [ "LOW"; "TROE"; "SRI"; "PLOG"; "REV"; "LT" ] -> (
        let nums = tokens_of body |> List.map (float_of_token line) in
        match (keyword, nums) with
        | "LOW", [ a; b; e ] ->
            Some (Aux_low { Reaction.pre_exp = a; temp_exp = b; activation = e })
        | "REV", [ a; b; e ] ->
            Some (Aux_rev { Reaction.pre_exp = a; temp_exp = b; activation = e })
        | "TROE", [ alpha; t3; t1 ] ->
            Some (Aux_troe { Reaction.alpha; t3; t1; t2 = 0.0 })
        | "TROE", [ alpha; t3; t1; t2 ] -> Some (Aux_troe { Reaction.alpha; t3; t1; t2 })
        | "PLOG", [ p; a; b; e ] ->
            Some
              (Aux_plog
                 (p, { Reaction.pre_exp = a; temp_exp = b; activation = e }))
        | "SRI", [ sa; sb; sc ] ->
            Some (Aux_sri { Reaction.sa; sb; sc; sd = 1.0; se = 0.0 })
        | "SRI", [ sa; sb; sc; sd; se ] ->
            Some (Aux_sri { Reaction.sa; sb; sc; sd; se })
        | "LT", [ b; c ] -> Some (Aux_lt (b, c))
        | kw, _ -> fail line "bad %s/ ... / parameter count" kw)
    | _ ->
        (* Efficiency pairs: alternating name / value / name / value /. *)
        let rec pairs = function
          | [] | [ "" ] -> []
          | name :: value :: rest when name <> "" ->
              (name, float_of_token line value) :: pairs rest
          | _ -> fail line "malformed efficiency list %S" text
        in
        Some (Aux_eff (pairs fields))
  end

(* A reaction line ends with three numeric tokens (A, beta, E); anything
   before them, concatenated without spaces, is the equation. *)
let try_parse_reaction_line lineno text =
  let toks = tokens_of text in
  let n = List.length toks in
  if n < 4 then None
  else begin
    let rec split_at k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | x :: rest -> split_at (k - 1) (x :: acc) rest
      | [] -> assert false
    in
    let eq_toks, num_toks = split_at (n - 3) [] toks in
    let all_numeric =
      List.for_all
        (fun t ->
          let t = String.map (fun c -> if c = 'D' || c = 'd' then 'E' else c) t in
          float_of_string_opt t <> None)
        num_toks
    in
    let equation = String.concat "" eq_toks in
    if (not all_numeric) || not (String.contains equation '=') then None
    else
      match num_toks with
      | [ a; b; e ] ->
          let arr =
            {
              Reaction.pre_exp = float_of_token lineno a;
              temp_exp = float_of_token lineno b;
              activation = float_of_token lineno e;
            }
          in
          let lhs, rhs, reversible, falloff, third_body =
            parse_equation lineno equation
          in
          Some
            {
              line = lineno;
              equation;
              lhs;
              rhs;
              reversible;
              falloff;
              third_body;
              arrhenius = arr;
              low = None;
              troe = None;
              sri = None;
              plog = [];
              rev = None;
              landau_teller = None;
              efficiencies = [];
              duplicate = false;
            }
      | _ -> None
  end

type section = S_none | S_elements | S_species | S_reactions

let parse ?file contents =
  let lines = String.split_on_char '\n' contents in
  let elements = ref [] in
  let species = ref [] in
  let reactions = ref [] in
  let current = ref None in
  let flush_current () =
    match !current with
    | Some r ->
        reactions := r :: !reactions;
        current := None
    | None -> ()
  in
  let section = ref S_none in
  try
    List.iteri
      (fun idx raw_line ->
        let lineno = idx + 1 in
        let text = String.trim (strip_comment raw_line) in
        if text <> "" then begin
          let upper = String.uppercase_ascii text in
          let first_tok = match tokens_of upper with t :: _ -> t | [] -> "" in
          match first_tok with
          | "ELEMENTS" | "ELEM" -> section := S_elements
          | "SPECIES" | "SPEC" -> section := S_species
          | "REACTIONS" | "REAC" -> section := S_reactions
          | "END" ->
              flush_current ();
              section := S_none
          | _ -> (
              match !section with
              | S_none -> fail lineno "content outside any section: %S" text
              | S_elements -> elements := !elements @ tokens_of upper
              | S_species -> species := !species @ tokens_of upper
              | S_reactions -> (
                  match try_parse_reaction_line lineno text with
                  | Some r ->
                      flush_current ();
                      current := Some r
                  | None -> (
                      match (parse_aux lineno text, !current) with
                      | None, _ -> fail lineno "unrecognized line %S" text
                      | Some _, None ->
                          fail lineno "auxiliary line before any reaction"
                      | Some aux, Some r ->
                          let r' =
                            match aux with
                            | Aux_low a -> { r with low = Some a }
                            | Aux_troe p -> { r with troe = Some p }
                            | Aux_sri p -> { r with sri = Some p }
                            | Aux_plog (p, a) ->
                                { r with plog = r.plog @ [ (p, a) ] }
                            | Aux_rev a -> { r with rev = Some a }
                            | Aux_lt (b, c) ->
                                { r with landau_teller = Some (b, c) }
                            | Aux_dup -> { r with duplicate = true }
                            | Aux_eff effs ->
                                { r with efficiencies = r.efficiencies @ effs }
                          in
                          current := Some r')))
        end)
      lines;
    flush_current ();
    Ok
      {
        elements = !elements;
        species_names = !species;
        raw_reactions = List.rev !reactions;
      }
  with Srcloc.Parse_error e -> Error (Srcloc.in_file ?file e)

let parse_file path = Srcloc.with_contents path (parse ~file:path)

let parse_species_sets ?file contents =
  let lines = String.split_on_char '\n' contents in
  let qssa = ref [] and stiff = ref [] in
  let target = ref None in
  try
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let text = String.trim (strip_comment raw) in
        if text <> "" then
          match String.uppercase_ascii text with
          | "QSSA" -> target := Some qssa
          | "STIFF" -> target := Some stiff
          | "END" -> target := None
          | upper -> (
              match !target with
              | None -> fail lineno "species name outside QSSA/STIFF section"
              | Some dest -> dest := !dest @ tokens_of upper))
      lines;
    Ok (!qssa, !stiff)
  with Srcloc.Parse_error e -> Error (Srcloc.in_file ?file e)

let rate_model_of_raw r =
  let err fmt = Printf.ksprintf (fun msg -> Error (Srcloc.error_at ~token:r.equation r.line "%s" msg)) fmt in
  if r.plog <> [] then
    if r.falloff || r.low <> None || r.troe <> None || r.sri <> None
       || r.landau_teller <> None
    then err "PLOG/ cannot combine with falloff or LT"
    else
      let sorted = List.sort (fun (p, _) (q, _) -> compare p q) r.plog in
      Ok (Reaction.Plog sorted)
  else
  match (r.falloff, r.low, r.troe, r.sri, r.landau_teller) with
  | _, _, _, _, Some (b, c) ->
      if r.falloff || r.low <> None || r.troe <> None || r.sri <> None then
        err "LT/ cannot combine with falloff"
      else Ok (Reaction.Landau_teller { arr = r.arrhenius; b; c })
  | _, _, Some _, Some _, None -> err "TROE/ and SRI/ are mutually exclusive"
  | true, Some low, None, None, None ->
      Ok (Reaction.Falloff { high = r.arrhenius; low; kind = Reaction.Lindemann })
  | true, Some low, Some troe, None, None ->
      Ok (Reaction.Falloff { high = r.arrhenius; low; kind = Reaction.Troe troe })
  | true, Some low, None, Some sri, None ->
      Ok (Reaction.Falloff { high = r.arrhenius; low; kind = Reaction.Sri sri })
  | true, None, _, _, None -> err "falloff reaction lacks LOW/ line"
  | false, Some _, _, _, None -> err "LOW/ on a non-falloff reaction"
  | false, None, Some _, _, None -> err "TROE/ on a non-falloff reaction"
  | false, None, None, Some _, None -> err "SRI/ on a non-falloff reaction"
  | false, None, None, None, None -> Ok (Reaction.Simple r.arrhenius)
