(** Minimal JSON syntax validator for the repository's hand-built
    emitters (no JSON library is vendored). Checks the full RFC 8259
    grammar — strings with escapes, numbers, nesting, and that nothing
    trails the document — without building any values. *)

val validate : string -> (unit, string) result
(** [Ok ()] iff the whole string is exactly one valid JSON document;
    [Error msg] pinpoints the first offending byte offset. *)
