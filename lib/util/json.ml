(* Recursive-descent JSON reader plus a compact writer.

   The grammar matches Json_check's validator exactly (RFC 8259): the
   serve loop parses requests with this module and re-validates every
   response it emits with Json_check, so both directions of the wire
   protocol go through an independently tested grammar. Strings decode
   \uXXXX escapes to UTF-8 (surrogate pairs included); numbers go
   through [float_of_string] on the scanned slice. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of int * string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | Some c -> error (Printf.sprintf "expected %C, got %C" ch c)
    | None -> error (Printf.sprintf "expected %C, got end of input" ch)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> error (Printf.sprintf "bad hex digit %C in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               let cp = hex4 () in
               (* Surrogate pair: a high surrogate must be followed by
                  \uDC00-\uDFFF; anything else is malformed. *)
               if cp >= 0xD800 && cp <= 0xDBFF then begin
                 if
                   !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                 then begin
                   advance ();
                   advance ();
                   let lo = hex4 () in
                   if lo < 0xDC00 || lo > 0xDFFF then
                     error "unpaired high surrogate";
                   add_utf8 buf
                     (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                 end
                 else error "unpaired high surrogate"
               end
               else if cp >= 0xDC00 && cp <= 0xDFFF then
                 error "unpaired low surrogate"
               else add_utf8 buf cp
           | c -> error (Printf.sprintf "bad escape \\%C" c));
          go ()
      | c when Char.code c < 0x20 ->
          error "unescaped control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some ('1' .. '9') ->
        while
          match peek () with Some ('0' .. '9') -> true | _ -> false
        do
          advance ()
        done
    | _ -> error "bad number");
    if peek () = Some '.' then begin
      advance ();
      (match peek () with
      | Some ('0' .. '9') -> ()
      | _ -> error "digit expected after decimal point");
      while match peek () with Some ('0' .. '9') -> true | _ -> false do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        (match peek () with
        | Some ('0' .. '9') -> ()
        | _ -> error "digit expected in exponent");
        while match peek () with Some ('0' .. '9') -> true | _ -> false do
          advance ()
        done
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value depth =
    if depth > 512 then error "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> error "value expected, got end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some '}' -> advance ()
            | _ -> error "expected ',' or '}' in object"
          in
          go ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec go () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); go ()
            | Some ']' -> advance ()
            | _ -> error "expected ',' or ']' in array"
          in
          go ();
          List (List.rev !items)
        end
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "trailing characters after document";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "byte %d: %s" at msg)

(* ---- writing ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Integral floats print as integers so protocol counters round-trip
   textually; everything else uses OCaml's shortest round-trip float
   format (%.17g would be exact but noisy; %h is not JSON). *)
let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec emit = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num v -> num_to_string v
  | Str s -> "\"" ^ escape s ^ "\""
  | List items -> "[" ^ String.concat "," (List.map emit items) ^ "]"
  | Obj members ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ emit v) members)
      ^ "}"

(* ---- accessors ---- *)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num v -> Some v | _ -> None

let int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 ->
      Some (int_of_float v)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None

let to_string_brief = function
  | Null -> "null"
  | Bool _ -> "boolean"
  | Num _ -> "number"
  | Str _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"
