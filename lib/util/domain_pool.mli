(** Deterministic multicore fan-out over stdlib [Domain]s.

    One [parallel_map] call spawns up to [jobs - 1] worker domains (the
    caller is the first worker), pulls items off a shared atomic counter,
    and joins everything before returning. Results come back in input
    order and the first failing item's exception (in input order) is
    re-raised on the caller, so a parallel sweep is observably identical
    to the serial one apart from wall-clock time. Nested calls from
    inside a worker run serially, bounding live domains by the job
    count. *)

val jobs_of_string : string -> (int, string) result
(** Strict job-count parsing shared by the [--jobs] flags and the
    [SINGE_JOBS] environment variable: a plain positive decimal integer.
    Zero, negatives, hex, underscores, empty and garbage are [Error]
    with a one-line cause — never a silent fallback. *)

exception Invalid_jobs of string
(** Raised by {!default_jobs} when [SINGE_JOBS] is set but does not pass
    {!jobs_of_string}; the message names the variable and the cause.
    Entry points render it as a typed configuration error instead of
    inheriting whatever parallelism the silent fallback picked. *)

val default_jobs : unit -> int
(** Worker count used when [parallel_map] gets no explicit [jobs]:
    the {!set_jobs} override if one was installed (the [--jobs] flag),
    else the validated [SINGE_JOBS] environment value, else
    [Domain.recommended_domain_count ()]. Raises {!Invalid_jobs} when
    [SINGE_JOBS] is set to anything {!jobs_of_string} rejects. *)

val set_jobs : int -> unit
(** Install a process-wide override for {!default_jobs} (clamped to at
    least 1). CLI entry points call this from their [--jobs] flag. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ?jobs f xs] maps [f] over [xs] on up to [jobs] domains
    (default {!default_jobs}; clamped to the list length). With
    [jobs <= 1], from inside another [parallel_map] worker, the call is
    exactly [List.map f xs]. *)

val parallel_map_result :
  ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!parallel_map}, but every item's failure is captured in place
    instead of the first one aborting the sweep: item [i]'s slot is
    [Error e] exactly when [f] raised [e] on it, and all other items
    still run to completion. Deterministic in the same sense as
    {!parallel_map} — the result list depends only on the input order,
    never on worker scheduling. *)

val live_domains : unit -> int
(** Worker domains currently spawned by in-flight [parallel_map] calls
    (the caller's own domain is not counted). Always [0] when no fan-out
    is running — a nonzero value after a sweep returned means a leaked
    or wedged domain, which the serve health probe treats as fatal. *)

val nested_serial_calls : unit -> int
(** Process-lifetime count of [parallel_map] calls that asked for more
    than one job from inside a worker and therefore degraded to serial
    execution (the determinism contract's bounded-domains rule). *)
