(** Deterministic multicore fan-out over stdlib [Domain]s.

    One [parallel_map] call spawns up to [jobs - 1] worker domains (the
    caller is the first worker), pulls items off a shared atomic counter,
    and joins everything before returning. Results come back in input
    order and the first failing item's exception (in input order) is
    re-raised on the caller, so a parallel sweep is observably identical
    to the serial one apart from wall-clock time. Nested calls from
    inside a worker run serially, bounding live domains by the job
    count. *)

val default_jobs : unit -> int
(** Worker count used when [parallel_map] gets no explicit [jobs]:
    the {!set_jobs} override if one was installed (the [--jobs] flag),
    else a valid positive [SINGE_JOBS] environment value, else
    [Domain.recommended_domain_count ()]. *)

val set_jobs : int -> unit
(** Install a process-wide override for {!default_jobs} (clamped to at
    least 1). CLI entry points call this from their [--jobs] flag. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ?jobs f xs] maps [f] over [xs] on up to [jobs] domains
    (default {!default_jobs}; clamped to the list length). With
    [jobs <= 1], from inside another [parallel_map] worker, the call is
    exactly [List.map f xs]. *)

val parallel_map_result :
  ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!parallel_map}, but every item's failure is captured in place
    instead of the first one aborting the sweep: item [i]'s slot is
    [Error e] exactly when [f] raised [e] on it, and all other items
    still run to completion. Deterministic in the same sense as
    {!parallel_map} — the result list depends only on the input order,
    never on worker scheduling. *)
