(** Minimal JSON reader/writer for the serve wire protocol.

    {!Json_check} only validates syntax; the long-running [singe serve]
    loop also has to {e read} client requests, so this module parses the
    full RFC 8259 grammar into a small value type (no JSON library is
    vendored). Numbers are kept as OCaml [float]s — the protocol's
    integers are all well below 2{^53} — and object member order is
    preserved so emitted documents round-trip byte-identically through
    [parse |> emit]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse exactly one JSON document (trailing whitespace allowed,
    anything else after it is an error). [Error msg] pinpoints the first
    offending byte offset, like {!Json_check.validate}. *)

val emit : t -> string
(** Compact single-line rendering. Always satisfies
    {!Json_check.validate}; [parse (emit v)] is [Ok v] up to the float
    formatting of {!num} below. *)

val escape : string -> string
(** The body of a JSON string literal for [s] (no surrounding quotes):
    control characters, backslash and quote escaped, everything else
    byte-preserved. Shared by the hand-built emitters. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first binding of [k]; [None] on missing
    keys and non-objects. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
(** {!int} accepts only integral numbers that fit an OCaml [int]. *)

val bool : t -> bool option
val list : t -> t list option

val to_string_brief : t -> string
(** One-line description of a value's shape for error messages
    (["string"], ["number"], ["object"], ...). *)
