(* Multicore fan-out for embarrassingly parallel sweeps (autotuning,
   figure regeneration, benchmark config lists).

   The pool is deliberately minimal: stdlib [Domain]s only, spawned per
   [parallel_map] call and joined before it returns. Sweep items are
   seconds-long compile+simulate jobs, so spawn cost is noise; keeping no
   resident worker state means there is nothing to leak or tear down.

   Determinism contract (the repo-wide rule this module enforces):
   {ul
   {- results are returned in input order, regardless of which domain
      evaluated which item;}
   {- if any item raises, the exception of the {e first} item in input
      order is re-raised on the caller (with its backtrace), so failure
      behavior does not depend on scheduling;}
   {- nested [parallel_map] calls run serially in the calling worker —
      one level of fan-out is enough for the sweeps we run, and it keeps
      the number of live domains bounded by the job count.}} *)

(* Strict job-count validation, shared by the --jobs flags and the
   SINGE_JOBS environment variable. [int_of_string] alone would accept
   hex / underscores, and the old code silently fell back to the domain
   count on garbage — so SINGE_JOBS=O2 (a typo for 02) quietly ran a
   different parallelism than asked. *)
let jobs_of_string s =
  let t = String.trim s in
  if t = "" then Error "job count is empty"
  else if not (String.for_all (fun c -> c >= '0' && c <= '9') t) then
    Error (Printf.sprintf "%S is not a decimal integer" t)
  else
    match int_of_string_opt t with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (Printf.sprintf "job count must be >= 1, got %d" n)
    | None -> Error (Printf.sprintf "%S is out of range" t)

exception Invalid_jobs of string

let env_jobs () =
  match Sys.getenv_opt "SINGE_JOBS" with
  | None -> None
  | Some s -> (
      match jobs_of_string s with
      | Ok n -> Some n
      | Error msg -> raise (Invalid_jobs (Printf.sprintf "SINGE_JOBS: %s" msg)))

let override : int option Atomic.t = Atomic.make None

let set_jobs n = Atomic.set override (Some (max 1 n))

let default_jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

(* ---- observability ----

   Long-lived drivers (the serve loop) need two facts the pool used to
   keep to itself: how many worker domains are live right now (a health
   probe — nonzero after a sweep returned means a leaked/wedged domain)
   and how often a nested fan-out silently degraded to serial (a symptom
   of callers accidentally stacking parallel sweeps). Both are plain
   monotone/gauge counters on atomics; they never affect scheduling. *)

let live : int Atomic.t = Atomic.make 0
let nested : int Atomic.t = Atomic.make 0

let live_domains () = Atomic.get live
let nested_serial_calls () = Atomic.get nested

(* True inside a worker domain: nested parallel_map calls degrade to
   serial List.map there (see the determinism contract above). *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let parallel_map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length xs in
  let jobs = min jobs n in
  if Domain.DLS.get in_worker then begin
    (* Nested fan-out degrades to serial by design; count the calls that
       actually asked for parallelism so the degradation is observable
       (serve stats, sweeps stacked by accident). *)
    if jobs > 1 then Atomic.incr nested;
    List.map f xs
  end
  else if jobs <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let results = Array.make n None in
    let failures = Array.make n None in
    let next = Atomic.make 0 in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f input.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
            failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        work ()
      end
    in
    let worker () =
      Domain.DLS.set in_worker true;
      work ()
    in
    let domains =
      Array.init (jobs - 1) (fun _ ->
          Atomic.incr live;
          Domain.spawn worker)
    in
    (* The calling domain is worker [0]; it must not fan out again. *)
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set in_worker false;
        Array.iter
          (fun d ->
            Domain.join d;
            Atomic.decr live)
          domains)
      work;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      failures;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false (* all items ran *))
         results)
  end

(* Per-item failure capture: wrap [f] so no item can raise, then the
   plain fan-out applies. Used by sweeps that must survive a faulty
   candidate (autotuning over mutated or fault-injected configurations)
   instead of aborting on the first failure. *)
let parallel_map_result ?jobs f xs =
  parallel_map ?jobs
    (fun x -> match f x with v -> Ok v | exception e -> Error e)
    xs
