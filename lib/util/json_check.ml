(* A minimal JSON syntax validator (RFC 8259 grammar, no semantics).

   The repository has no JSON library and its emitters build output by
   hand ([Profile.to_chrome_trace], the perf-bench writer), so this is
   the guard that keeps those strings machine-readable: [make
   profile-smoke] and the profiler tests run every emitted document
   through [validate]. Recursive descent over the byte string; no
   values are built, so arbitrarily large documents cost no memory. *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> incr pos
    | Some c -> fail (Printf.sprintf "expected %C, found %C" ch c)
    | None -> fail (Printf.sprintf "expected %C, found end of input" ch)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail (Printf.sprintf "expected %s" word)
  in
  let is_digit c = c >= '0' && c <= '9' in
  let digits () =
    let start = !pos in
    while !pos < n && is_digit s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected digit"
  in
  let number () =
    if peek () = Some '-' then incr pos;
    (match peek () with
    | Some '0' -> incr pos (* no leading zeros: 0 must stand alone *)
    | Some c when is_digit c -> digits ()
    | _ -> fail "expected digit");
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ()
  in
  let hex_digit () =
    match peek () with
    | Some (('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') as _c) -> incr pos
    | _ -> fail "expected hex digit in \\u escape"
  in
  let string_lit () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          incr pos;
          closed := true
      | Some '\\' -> (
          incr pos;
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> incr pos
          | Some 'u' ->
              incr pos;
              for _ = 1 to 4 do
                hex_digit ()
              done
          | _ -> fail "invalid escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ -> incr pos
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "expected value, found end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some '}' ->
                incr pos;
                more := false
            | _ -> fail "expected ',' or '}' in object"
          done
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let more = ref true in
          while !more do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some ']' ->
                incr pos;
                more := false
            | _ -> fail "expected ',' or ']' in array"
          done
        end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document"
  with
  | () -> Ok ()
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "invalid JSON at byte %d: %s" at msg)
