(** Automatic partition search: derive the producer/consumer warp split
    instead of hardcoding it (ROADMAP item 2, DESIGN §16).

    Candidates are structure-derived partitions ({!Mapping.auto_spec} —
    fan-out hubs and loads pinned as producers, arithmetic chains gluing
    onto consumer warps by locality) crossed with pipeline depths (the
    transport ring's slot count). The search runs in three phases:

    {ol
    {- {b score}: every candidate compiles through the shared memo and is
       ranked by {!Perf_model.predict} — static, cheap, no simulation;}
    {- {b gate}: the model's top picks pass {!Mapping.validate} and
       {!Deadlock_check.check}. The memoized compile path runs with
       validation off, so this gate is what keeps an unsound searched
       partition away from the simulator — failures surface as
       [partition-rejected] diagnostics;}
    {- {b confirm}: survivors are simulated through {!Autotune.tune}'s
       two-phase machinery with the hand mapping seeded into the grid
       (first, so ties keep the paper's partition) — the returned winner
       is never worse than the hand mapping.}} *)

type rejection = {
  rej_options : Compile.options;  (** the rejected candidate *)
  rej_diag : Diagnostics.t;
      (** pass ["partition-search"], message prefixed [partition-rejected] *)
}

type outcome = {
  base : Compile.options;  (** the hand baseline the search ran against *)
  winner : Compile.options;  (** best options found (never worse than hand) *)
  winner_spec : Mapping.auto_spec option;
      (** [None] when the hand partition won *)
  hand_cycles : float;  (** the hand mapping's cycles at the search size *)
  winner_cycles : float;  (** the winner's cycles ([<= hand_cycles]) *)
  searched : int;  (** candidates proposed and model-scored *)
  gated : int;  (** candidates that reached the safety gate *)
  rejections : rejection list;
      (** compile and gate rejections, in candidate order (deterministic
          under any [jobs]) *)
  simulated : int;  (** grid entries simulation confirmed (incl. hand) *)
  confirmed : bool;
      (** [true]: cycles are simulated; [false]: analytic model only *)
}

val default_top_k : int
(** How many model-ranked candidates reach the gate/simulation phases by
    default (5). *)

val propose : ?max_candidates:int -> Dfg.t -> n_warps:int -> Mapping.auto_spec list
(** The structure-derived candidate specs for a graph: producer-warp
    counts (1, n/4, n/2), hub thresholds (3 and the graph's own
    90th-percentile fan-out), chain weights, and all three shared-memory
    strategies — deterministic, truncated to [max_candidates] (48). *)

val candidate_options : Compile.options -> Dfg.t -> Compile.options list
(** {!propose} crossed with pipeline depths, as full option records (the
    exact population {!search} scores, in evaluation order). *)

val gate : Compile.t -> (unit, Diagnostics.t) result
(** The phase-2 safety gate: {!Mapping.validate} then
    {!Deadlock_check.check} on a compiled candidate. *)

val gate_schedule : Schedule.t -> (unit, Diagnostics.t) result
(** The deadlock half of {!gate} alone — what the seeded mutation tests
    drive against {!Deadlock_check.mutants}. *)

val search :
  ?points:int ->
  ?jobs:int ->
  ?top_k:int ->
  ?max_cycles:int ->
  ?simulate:bool ->
  ?n_sms:int ->
  ?skew:float ->
  Chem.Mechanism.t ->
  Kernel_abi.kernel ->
  Compile.version ->
  base:Compile.options ->
  unit ->
  (outcome, Diagnostics.t) result
(** Run the three-phase search against [base] (its [partition] field is
    forced to hand for the baseline comparison; all other fields — warps,
    architecture, occupancy target — frame the search space). With
    [simulate] (default) winners are confirmed through {!Autotune.tune};
    [simulate:false] stops at the analytic ranking (the cheap mode the
    CLI/serve [--partition auto] resolution uses) and reports model
    cycles with [confirmed = false].

    Deterministic under any [jobs]: candidates are folded in index order
    and every tie-break is pinned. The [Baseline] version has nothing to
    partition and returns a hand-only outcome. Failures of the base
    compile itself are returned as a diagnostic. *)

val resolve_options :
  ?points:int ->
  ?jobs:int ->
  Chem.Mechanism.t ->
  Kernel_abi.kernel ->
  Compile.version ->
  base:Compile.options ->
  Compile.options
(** [--partition auto] resolution: model-only search, returning the
    winning option record (the hand base when nothing beat it). Raises
    {!Diagnostics.Fail} when even the hand base fails to compile. *)

val pp_outcome : Format.formatter -> outcome -> unit
