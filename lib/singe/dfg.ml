type op_kind =
  | Load of { group : string; field : int; via_tex : bool }
  | Store of { group : string; field : int }
  | Compute of Sexpr.t
  | Fence

type op = {
  id : int;
  name : string;
  kind : op_kind;
  inputs : int array;
  output : int option;
  hint : int option;
  shared_hint : bool;
  align : string option;
}

type value = {
  vid : int;
  vname : string;
  producer : int;
  consumers : int list;
}

type t = { graph_name : string; ops : op array; values : value array }

module Builder = struct
  type b = {
    bname : string;
    mutable ops_rev : op list;
    mutable n_ops : int;
    mutable vals_rev : (string * int) list;  (** name, producer *)
    mutable n_vals : int;
  }

  let create bname =
    { bname; ops_rev = []; n_ops = 0; vals_rev = []; n_vals = 0 }

  let new_value b name producer =
    let vid = b.n_vals in
    b.vals_rev <- (name, producer) :: b.vals_rev;
    b.n_vals <- b.n_vals + 1;
    vid

  let add_op b op =
    b.ops_rev <- op :: b.ops_rev;
    b.n_ops <- b.n_ops + 1

  let load b ?hint ?align ?(shared_hint = false) ?(via_tex = true) ~name
      ~group ~field () =
    let id = b.n_ops in
    let vid = new_value b name id in
    add_op b
      { id; name; kind = Load { group; field; via_tex }; inputs = [||];
        output = Some vid; hint; shared_hint; align };
    vid

  let compute b ?hint ?align ?(shared_hint = false) ~name ~inputs expr =
    if Sexpr.n_inputs expr > Array.length inputs then
      invalid_arg
        (Printf.sprintf "compute %s: expression uses %d inputs, %d given" name
           (Sexpr.n_inputs expr) (Array.length inputs));
    let id = b.n_ops in
    let vid = new_value b name id in
    add_op b
      { id; name; kind = Compute expr; inputs; output = Some vid; hint;
        shared_hint; align };
    vid

  let fence b ~inputs =
    let id = b.n_ops in
    add_op b
      { id; name = Printf.sprintf "fence%d" id; kind = Fence; inputs;
        output = None; hint = Some 0; shared_hint = false; align = None }

  let store b ?hint ?align ~name ~group ~field input =
    let id = b.n_ops in
    add_op b
      { id; name; kind = Store { group; field }; inputs = [| input |];
        output = None; hint; shared_hint = false; align }

  let finish b =
    let ops = Array.of_list (List.rev b.ops_rev) in
    let vals = Array.of_list (List.rev b.vals_rev) in
    let consumers = Array.make b.n_vals [] in
    Array.iter
      (fun op ->
        Array.iter
          (fun v -> consumers.(v) <- op.id :: consumers.(v))
          op.inputs)
      ops;
    let values =
      Array.mapi
        (fun vid (vname, producer) ->
          { vid; vname; producer; consumers = List.sort_uniq compare consumers.(vid) })
        vals
    in
    { graph_name = b.bname; ops; values }
end

let op_flops op =
  match op.kind with
  | Compute e -> Sexpr.flops e
  | Load _ | Store _ | Fence -> 0

let total_flops t = Array.fold_left (fun acc op -> acc + op_flops op) 0 t.ops

let op_constants op =
  match op.kind with
  | Compute e -> Sexpr.constants e
  | Load _ | Store _ | Fence -> []

let topo_order t =
  let n = Array.length t.ops in
  let indegree = Array.make n 0 in
  let succs = Array.make n [] in
  Array.iter
    (fun op ->
      Array.iter
        (fun v ->
          let p = t.values.(v).producer in
          succs.(p) <- op.id :: succs.(p);
          indegree.(op.id) <- indegree.(op.id) + 1)
        op.inputs)
    t.ops;
  (* Priority queue on op id: the walk follows the builder's emission
     order whenever dependences allow, which keeps the per-warp streams of
     round-robin-emitted graphs symmetric (fences land between rounds). *)
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  Array.iteri (fun i d -> if d = 0 then ready := IS.add i !ready) indegree;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (IS.is_empty !ready) do
    let i = IS.min_elt !ready in
    ready := IS.remove i !ready;
    order.(!k) <- i;
    incr k;
    List.iter
      (fun s ->
        indegree.(s) <- indegree.(s) - 1;
        if indegree.(s) = 0 then ready := IS.add s !ready)
      (List.rev succs.(i))
  done;
  if !k <> n then begin
    (* Name a stuck op so a frontend author can find the back edge. *)
    let stuck = ref [] in
    Array.iteri
      (fun i d -> if d > 0 && List.length !stuck < 4 then stuck := i :: !stuck)
      indegree;
    Diagnostics.failf ~pass:"dfg-build" ~loc:t.graph_name
      "dataflow graph %s has a cycle through %d op(s), e.g. %s" t.graph_name
      (n - !k)
      (String.concat ", "
         (List.rev_map (fun i -> t.ops.(i).name) !stuck))
  end;
  order

let validate ?n_warps t =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let nv = Array.length t.values in
  Array.iteri
    (fun i op ->
      if op.id <> i then err "op %d has id %d" i op.id;
      Array.iter
        (fun v -> if v < 0 || v >= nv then err "op %s: bad value id %d" op.name v)
        op.inputs;
      (match (op.hint, n_warps) with
      | Some h, Some nw when h < 0 || h >= nw ->
          err "op %s: warp hint %d out of range [0, %d)" op.name h nw
      | _ -> ());
      match op.kind with
      | Compute e ->
          if Sexpr.n_inputs e > Array.length op.inputs then
            err "op %s: arity mismatch" op.name;
          if op.output = None then err "op %s: compute without output" op.name
      | Load _ -> if op.output = None then err "op %s: load without output" op.name
      | Fence -> if op.output <> None then err "op %s: fence with output" op.name
      | Store _ ->
          if Array.length op.inputs <> 1 then err "op %s: store arity" op.name)
    t.ops;
  Array.iteri
    (fun vid v ->
      if v.vid <> vid then err "value %d has id %d" vid v.vid;
      match t.ops.(v.producer).output with
      | Some o when o = vid -> ()
      | _ -> err "value %s: producer mismatch" v.vname)
    t.values;
  (try ignore (topo_order t) with
  | Failure m -> err "%s" m
  | Diagnostics.Fail d -> err "%s" (Diagnostics.to_string d));
  match !problems with [] -> Ok () | l -> Error (List.rev l)

let pp_stats ppf t =
  let loads = ref 0 and stores = ref 0 and computes = ref 0 in
  Array.iter
    (fun op ->
      match op.kind with
      | Load _ -> incr loads
      | Store _ -> incr stores
      | Fence -> ()
      | Compute _ -> incr computes)
    t.ops;
  Format.fprintf ppf
    "%s: %d ops (%d loads, %d computes, %d stores), %d values, %d flops/point"
    t.graph_name (Array.length t.ops) !loads !computes !stores
    (Array.length t.values) (total_flops t)

let pp_dump ppf t =
  Format.fprintf ppf "%a@," pp_stats t;
  Array.iter
    (fun op ->
      let inputs =
        String.concat ","
          (Array.to_list (Array.map (fun v -> t.values.(v).vname) op.inputs))
      in
      let hint =
        match op.hint with Some w -> Printf.sprintf " hint=w%d" w | None -> ""
      in
      let shared = if op.shared_hint then " shared" else "" in
      let align =
        match op.align with Some a -> Printf.sprintf " align=%s" a | None -> ""
      in
      (match op.kind with
      | Load { group; field; via_tex } ->
          Format.fprintf ppf "  %%%d %s = load %s.%d%s%s%s%s" op.id op.name
            group field
            (if via_tex then " tex" else "")
            hint shared align
      | Store { group; field } ->
          Format.fprintf ppf "  %%%d %s: store %s.%d <- %s%s%s" op.id op.name
            group field inputs hint align
      | Fence -> Format.fprintf ppf "  %%%d fence [%s]" op.id inputs
      | Compute e ->
          Format.fprintf ppf "  %%%d %s = %a  (inputs %s)%s%s%s" op.id op.name
            Sexpr.pp e inputs hint shared align);
      Format.pp_print_cut ppf ())
    t.ops
