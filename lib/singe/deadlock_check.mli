(** Static deadlock verification of named-barrier schedules — the
    executable form of the paper's §4.4 deadlock-freedom theorem.

    The theorem's proof obligations map onto three checks run on a
    finished {!Schedule.t}:
    {ul
    {- {e pairing}: within every epoch (delimited by the CTA-wide
       barriers) each used barrier id carries exactly one waiter and
       [count - 1] arrivers, all quoting the same count — the sync-point
       shape the construction guarantees;}
    {- {e abstract execution}: the per-warp action streams are run
       against the hardware barrier semantics (arrival counters, waits
       that block below [count], releases that subtract it). Correct
       schedules are order-independent, so one round-robin interleaving
       is a valid witness; along it the verifier detects lost releases
       (an arrival completing a barrier with no registered waiter),
       concurrent waiters on one id, and global stuck states — for
       which it reports every blocked warp and, when the blockage is
       mutual, the cross-warp wait cycle;}
    {- {e reuse safety}: every named counter has drained to zero at each
       CTA-wide boundary and at termination (the condition that makes
       recycling an id safe), and every id fits the 16 physical
       barriers.}}

    Wired into the compile pipeline as the [deadlock-check] validation
    pass, after [schedule-validate]. *)

val check : Schedule.t -> (unit, string list) result
(** Verify one schedule; [Error problems] lists up to 16 localized
    findings (deduplication beyond that is summarized in a final
    entry). Needs only the schedule itself — no dataflow graph or
    mapping — so it also applies to hand-built or mutated schedules. *)

type mutant = { label : string; schedule : Schedule.t }

val mutants : seed:int -> Schedule.t -> mutant list
(** Seeded, provably-unsafe perturbations of a correct schedule, one per
    applicable operator: dropped/duplicated arrivals, dropped waits,
    barrier ids swapped on either side, inflated/deflated counts, a
    dropped CTA boundary, an out-of-range id, and arrive/wait role
    swaps. Used by the negative tests — {!check} must reject every
    mutant. The input schedule is not modified. *)
