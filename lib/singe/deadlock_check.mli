(** Static deadlock verification of named-barrier schedules — the
    executable form of the paper's §4.4 deadlock-freedom theorem.

    The theorem's proof obligations map onto three checks run on a
    finished {!Schedule.t}:
    {ul
    {- {e pairing and reuse safety} ({!Schedule.pairing_problems}): along
       the emission-stamp linearization each barrier id decomposes into
       consecutive uses of [count - 1] arrivals followed by one waiter,
       all quoting the same count, with consecutive uses of an id
       separated by a CTA-wide boundary (the condition that drains the
       hardware counter and makes recycling the id safe — a single use
       may legally span a boundary, as the allocator keeps in-flight ids
       live across id-pressure cuts);}
    {- {e abstract execution}: the per-warp action streams are run
       against the hardware barrier semantics (arrival counters, waits
       that block below [count], releases that subtract it). Correct
       schedules are order-independent, so one round-robin interleaving
       is a valid witness; along it the verifier detects lost releases
       (an arrival completing a barrier with no registered waiter),
       concurrent waiters on one id, and global stuck states — for
       which it reports every blocked warp and, when the blockage is
       mutual, the cross-warp wait cycle;}
    {- {e id range and termination}: every id fits the 16 physical
       barriers, and no counter holds arrivals after the last warp
       retires (a wait that can never be released).}}

    Wired into the compile pipeline as the [deadlock-check] validation
    pass, after [schedule-validate]. *)

val check : Schedule.t -> (unit, string list) result
(** Verify one schedule; [Error problems] lists up to 16 localized
    findings (deduplication beyond that is summarized in a final
    entry). Needs only the schedule itself — no dataflow graph or
    mapping — so it also applies to hand-built or mutated schedules. *)

type mutant = { label : string; schedule : Schedule.t }

val mutants : seed:int -> Schedule.t -> mutant list
(** Seeded, provably-unsafe perturbations of a correct schedule, one per
    applicable operator: dropped/duplicated arrivals, dropped waits,
    barrier ids swapped on either side, inflated/deflated counts, a
    dropped CTA boundary, an out-of-range id, and arrive/wait role
    swaps. Used by the negative tests — {!check} must reject every
    mutant. The input schedule is not modified. *)
