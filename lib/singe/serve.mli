(** [singe serve]: a hardened long-running request loop.

    One warm process answers many [compile] / [run] / [predict] /
    [tune] / [health] / [stats] requests over newline-delimited JSON
    (one request object per line in, one response object per line out),
    sharing the digest-keyed compile cache ({!Compile.compile_cached},
    bounded LRU) and a tuned-configuration cache across requests and
    fanning simulation sweeps onto {!Sutil.Domain_pool}.

    Robustness is the headline, not the transport (DESIGN §15):

    {ul
    {- {b Fault containment.} Every request is handled under a boundary
       that converts {e all} failure modes — malformed JSON, unknown
       fields, {!Diagnostics.Fail}, {!Gpusim.Chip.Occupancy_rejected},
       {!Gpusim.Sm.Simulation_fault}, [Invalid_argument] fault specs,
       and unexpected exceptions — into typed error responses mirroring
       the CLI's exit-code taxonomy. A poisoned request leaves the loop
       serving; {!handle_line} never raises.}
    {- {b Deadlines and degradation.} Each request runs under a
       deadline: the wall-clock budget ([deadline_ms], defaulted from
       the config) derives a simulator cycle budget
       ([cycles_per_ms * deadline_ms], capped by the watchdog ceiling
       and any explicit [max_cycles] in the request). A simulation that
       exhausts the budget answers [degraded: true] from
       {!Perf_model.predict} with an explicit accuracy caveat instead of
       hanging the client; a tune sweep whose candidates all die
       degrades to a model-only ranking the same way.}
    {- {b Backpressure.} A bounded admission queue in front of the loop
       rejects overflow requests immediately with a [busy] response
       carrying a [retry_after_ms] hint, instead of buffering without
       limit.}
    {- {b Idempotent retries.} A request carrying an ["id"] is answered
       bit-identically on retry (a bounded response cache keyed by id,
       re-keyed on the payload digest so an id reused for a different
       payload is rejected rather than silently answered with stale
       bytes).}
    {- {b Self-checking output.} Every emitted response is validated
       with {!Sutil.Json_check.validate} before it is written; a
       validation failure (an emitter bug) is counted and replaced by a
       statically known-good error document.}} *)

type config = {
  deadline_ms : int;  (** default per-request wall budget (ms) *)
  cycles_per_ms : int;
      (** deadline → simulator budget conversion; the derived budget is
          [deadline_ms * cycles_per_ms], floored at 10k cycles and
          capped at the 2e8 watchdog ceiling *)
  max_queue : int;  (** admission queue bound *)
  retry_after_ms : int;  (** hint attached to [busy] responses *)
  cache_entries : int;
      (** bound installed on {!Compile.compile_cached}'s memo table *)
  id_cache_entries : int;  (** idempotency-cache bound *)
}

val default_config : config
(** [{ deadline_ms = 2000; cycles_per_ms = 50_000; max_queue = 64;
      retry_after_ms = 50; cache_entries = 512; id_cache_entries = 256 }] *)

(** {1 Wire protocol} *)

type target = {
  t_mech : string;  (** bundled mechanism name (dme, heptane, ...) *)
  t_kernel : string;
  t_arch : string;
  t_version : string;
  t_warps : int;
  t_points : int;
  t_synth : bool option;  (** [--synth-exchange] override *)
  t_partition : string;
      (** ["hand"] (default) or ["auto"]: auto resolves the warp
          partition through {!Partition_search} (model-only for
          compile/run/predict; a [tune] request confirms by simulation
          and reports the search outcome in a ["partition"] object) *)
}

type payload =
  | Compile_req of target
  | Run_req of {
      target : target;
      faults : string list;  (** {!Gpusim.Fault.of_string} specs *)
      max_cycles : int option;  (** explicit watchdog budget *)
    }
  | Predict_req of target
  | Tune_req of { target : target; top_k : int }
  | Health_req
  | Stats_req
  | Shutdown_req

type request = {
  req_id : string option;  (** idempotency key, echoed in the response *)
  req_deadline_ms : int option;  (** overrides [config.deadline_ms] *)
  req : payload;
}

val default_target : target
(** dme viscosity on kepler, ws, 8 warps, 8192 points — the fields a
    request may omit. *)

val request_to_json : request -> string
(** Canonical one-line encoding (optional fields omitted when [None]).
    [parse_request (request_to_json r)] returns [Ok r] — the qcheck
    round-trip property of the wire protocol. *)

val parse_request : string -> (request, string) result
(** Parse and validate one request line: well-formed JSON, a known
    ["kind"], correctly typed fields, positive integer budgets. The
    error string is the [bad-request] response's message. *)

(** {1 The serving state} *)

type state

val create : ?config:config -> unit -> state
(** Fresh counters and caches; installs [config.cache_entries] as the
    compile-memo bound. Raises [Invalid_argument] when any config field
    is non-positive — notably [deadline_ms <= 0], which would otherwise
    silently clamp every defaulted request's cycle budget to the 10k
    floor and answer it [degraded:true]. *)

val handle_line : state -> string -> string * bool
(** Answer one raw request line with one response line (no trailing
    newline). Never raises; every failure mode maps to a typed error
    response. The boolean is [true] only for a [Shutdown_req]: the
    response is still written, then the caller stops its loop (EOF
    stops it without a response). *)

val busy_line : state -> string -> string
(** The [busy] backpressure response for a request line rejected at
    admission (the line is parsed best-effort for its ["id"]). Counts
    the rejection. *)

val queue_depth : state -> int
val requests_total : state -> int

(** {1 The loop} *)

val serve_fds : state -> Unix.file_descr -> Unix.file_descr -> unit
(** Serve newline-delimited requests from the input descriptor to the
    output descriptor until EOF or a [shutdown] request. Reads are
    drained greedily into the bounded admission queue ([config.max_queue]);
    overflow lines are answered with {!busy_line} immediately. Responses
    are written in admission order. A write failure (client gone) stops
    the loop cleanly. *)
