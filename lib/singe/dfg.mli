(** The dataflow-graph IR produced by the partitioning stage (§4, Fig. 8):
    nodes are {e operations} (units of computation) and edges are data
    dependences between them. Every value is produced by exactly one
    operation and is one double per grid point. *)

type op_kind =
  | Load of { group : string; field : int; via_tex : bool }
      (** read the lane's point of one global field *)
  | Store of { group : string; field : int }
  | Compute of Sexpr.t
  | Fence
      (** explicit phase boundary: becomes a CTA-wide barrier after which
          every earlier production is visible to every warp — partitioners
          place one after all-to-all exchange phases (e.g. staging the
          species vectors into shared memory) *)

type op = {
  id : int;
  name : string;
  kind : op_kind;
  inputs : int array;  (** value ids, positional for [Compute]/[Store] *)
  output : int option;  (** the value this op defines *)
  hint : int option;
      (** preferred warp from domain-specific partitioning (e.g. the
          diffusion column scheme of Fig. 5); the mapper may honor or
          ignore it *)
  shared_hint : bool;
      (** partitioner prefers this op's result in shared memory under the
          Mixed strategy (diffusion's row partial sums) *)
  align : string option;
      (** overlay alignment tag: only ops carrying equal tags may be fused
          into one warp group. Partitioners tag symmetric roles (the k-th
          accumulator update, the j-th staging copy) so same-shaped but
          unrelated operations from skewed streams never pair up — the
          paper's "standardize variable names to avoid false AST
          differences" *)
}

type value = {
  vid : int;
  vname : string;
  producer : int;  (** op id *)
  consumers : int list;  (** op ids, sorted *)
}

type t = { graph_name : string; ops : op array; values : value array }

(** Imperative builder. *)
module Builder : sig
  type b

  val create : string -> b

  val load : b -> ?hint:int -> ?align:string -> ?shared_hint:bool -> ?via_tex:bool -> name:string -> group:string -> field:int -> unit -> int
  (** Returns the loaded value's id. *)

  val compute :
    b -> ?hint:int -> ?align:string -> ?shared_hint:bool -> name:string ->
    inputs:int array -> Sexpr.t -> int
  (** Returns the defined value's id. Raises [Invalid_argument] if the
      expression references more inputs than provided. *)

  val fence : b -> inputs:int array -> unit
  (** Sequenced after the producers of [inputs] by ordinary dataflow. *)

  val store : b -> ?hint:int -> ?align:string -> name:string -> group:string -> field:int -> int -> unit

  val finish : b -> t
end

val op_flops : op -> int

val total_flops : t -> int

val op_constants : op -> float list
(** Bankable constants of the op's expression (empty for loads/stores). *)

val validate : ?n_warps:int -> t -> (unit, string list) result
(** Checks: acyclicity (producer id < consumer id is NOT required, real
    topological check is run), positional input arities, single producer
    per value. With [n_warps], partitioner warp hints must also lie in
    [\[0, n_warps)] (the mapper would silently ignore a stray one). *)

val topo_order : t -> int array
(** Operation ids in a dependency-respecting order. Raises a positioned
    {!Diagnostics.Fail} (pass ["dfg-build"]) naming stuck operations on a
    cycle. *)

val pp_stats : Format.formatter -> t -> unit

val pp_dump : Format.formatter -> t -> unit
(** Full IR listing, one line per operation with its expression
    ({!Sexpr.pp}), inputs, defined value and partitioning hints — the
    [--dump-ir dfg] output. *)
