(* Multi-stage stencil pipelines (ROADMAP item 4, arXiv 1909.07190).

   A pipeline is a 1-D image of [width] columns flowing through stages of
   fixed halo radius. Each grid point is an independent scanline: the
   simulator's per-thread point maps to one image row, and the columns map
   to *fields* of the "image" global group, so a halo tap is a static field
   offset — no cross-point addressing, exactly the layout the chemistry
   kernels use for species.

   This module is deliberately Chem-independent: the only contact with the
   combustion world is [source_value], which derives a deterministic pixel
   row from the grid temperature so the existing grid generators keep
   working as image sources. *)

type stage = {
  stage_name : string;
  radius : int;
  uses_source : bool;
      (* skip connection: the stage also reads the original source pixel
         at its column (unsharp masking's "x + a*(x - blur(x))") *)
  expr : Sexpr.t;
      (* inputs [In 0 .. In 2r] are the previous stage's columns
         [c-r .. c+r] (clamped to the edge); when [uses_source] is set,
         [In (2r+1)] is the source pixel at column [c] *)
}

type t = { pipe_name : string; width : int; stages : stage list }

type id = Edge3 | Unsharp2

let all_ids = [ Edge3; Unsharp2 ]
let id_name = function Edge3 -> "edge3" | Unsharp2 -> "unsharp2"

let id_of_string s =
  match String.lowercase_ascii s with
  | "edge3" -> Some Edge3
  | "unsharp2" -> Some Unsharp2
  | _ -> None

(* 3-tap binomial blur with bankable weights (the C nodes exercise the
   constant-bank path on a non-chemistry constant stream). *)
let blur_stage =
  {
    stage_name = "blur";
    radius = 1;
    uses_source = false;
    expr =
      Sexpr.fma (Sexpr.C 0.25) (Sexpr.In 0)
        (Sexpr.fma (Sexpr.C 0.5) (Sexpr.In 1)
           (Sexpr.mul (Sexpr.C 0.25) (Sexpr.In 2)));
  }

(* Gradient energy: central-difference square plus a Laplacian-square
   term, so every tap (including the center) is a real data dependence. *)
let gradient_stage =
  {
    stage_name = "gradient";
    radius = 1;
    uses_source = false;
    expr =
      Sexpr.let_
        (Sexpr.mul (Sexpr.sub (Sexpr.In 2) (Sexpr.In 0)) (Sexpr.Imm 0.5))
        (Sexpr.let_
           (Sexpr.sub
              (Sexpr.add (Sexpr.In 0) (Sexpr.In 2))
              (Sexpr.mul (Sexpr.Imm 2.0) (Sexpr.In 1)))
           (Sexpr.fma (Sexpr.Var 1) (Sexpr.Var 1)
              (Sexpr.mul
                 (Sexpr.mul (Sexpr.Var 0) (Sexpr.Var 0))
                 (Sexpr.C 0.0625))));
  }

(* Pointwise soft threshold. Sexpr has no comparisons; clamp through
   max/min like the full-range thermo tables do. *)
let threshold_stage =
  {
    stage_name = "threshold";
    radius = 0;
    uses_source = false;
    expr =
      Sexpr.min_
        (Sexpr.max_
           (Sexpr.sub (Sexpr.In 0) (Sexpr.C 0.05))
           (Sexpr.Imm 0.0))
        (Sexpr.Imm 1.0);
  }

(* Unsharp mask: sharpened = src + amount * (src - wide_blur), where the
   wide blur re-blurs the first stage's output and the skip connection
   carries the source pixel (input 2r+1 = In 3). *)
let sharpen_stage =
  {
    stage_name = "sharpen";
    radius = 1;
    uses_source = true;
    expr =
      Sexpr.let_
        (Sexpr.fma (Sexpr.C 0.25) (Sexpr.In 0)
           (Sexpr.fma (Sexpr.C 0.5) (Sexpr.In 1)
              (Sexpr.mul (Sexpr.C 0.25) (Sexpr.In 2))))
        (Sexpr.fma
           (Sexpr.sub (Sexpr.In 3) (Sexpr.Var 0))
           (Sexpr.C 0.6) (Sexpr.In 3));
  }

let width = 32

let get = function
  | Edge3 ->
      {
        pipe_name = "edge3";
        width;
        stages = [ blur_stage; gradient_stage; threshold_stage ];
      }
  | Unsharp2 ->
      { pipe_name = "unsharp2"; width; stages = [ blur_stage; sharpen_stage ] }

let n_stage_inputs st = (2 * st.radius) + 1 + if st.uses_source then 1 else 0

(* Deterministic, bounded source pixel for (scanline temperature, column):
   a quadratic in both so neighbouring columns differ and the stencils
   have real structure to find. Both the device fill and the host
   reference call this exact function, so the oracle comparison starts
   from bit-identical inputs. *)
let source_value ~temp ~col =
  let t = Float.rem temp 1000.0 /. 1000.0 in
  let c = float_of_int col /. float_of_int width in
  Float.abs (Float.rem (((t +. c) *. (t +. c)) +. (0.25 *. c)) 1.0)

let clamp_col ~w c = if c < 0 then 0 else if c >= w then w - 1 else c

(* Host reference: evaluate every stage row by row with the very Sexpr
   trees the DFG carries, in tap order. The lowering never reassociates
   and the simulator's ALU is IEEE double (Fma3 = Float.fma), so the
   device outputs match this bit for bit — the oracle comparison is
   exact, not tolerance-based. *)
let reference (p : t) ~(source : float array) =
  if Array.length source <> p.width then
    invalid_arg
      (Printf.sprintf "stencil_pipe: source row has %d columns, pipeline %s \
                       wants %d"
         (Array.length source) p.pipe_name p.width);
  let w = p.width in
  List.fold_left
    (fun prev st ->
      let consts = Array.of_list (Sexpr.constants st.expr) in
      Array.init w (fun c ->
          let input i =
            if i <= 2 * st.radius then
              prev.(clamp_col ~w (c - st.radius + i))
            else source.(c)
          in
          Sexpr.eval st.expr ~consts ~input))
    source p.stages

let pp ppf (p : t) =
  Format.fprintf ppf "stencil %s: %d columns, %d stages@," p.pipe_name p.width
    (List.length p.stages);
  List.iter
    (fun st ->
      Format.fprintf ppf "  %-10s radius %d%s: %a@," st.stage_name st.radius
        (if st.uses_source then " +source" else "")
        Sexpr.pp st.expr)
    p.stages
