type version = Warp_specialized | Baseline | Naive_warp_specialized

let version_name = function
  | Warp_specialized -> "ws"
  | Baseline -> "baseline"
  | Naive_warp_specialized -> "naive"

let version_of_string s =
  match String.lowercase_ascii s with
  | "ws" | "warp-specialized" -> Some Warp_specialized
  | "baseline" | "base" -> Some Baseline
  | "naive" -> Some Naive_warp_specialized
  | _ -> None

type chem_comm = Chem_staged | Chem_recompute | Chem_mixed

type partition = Partition_hand | Partition_auto of Mapping.auto_spec

let partition_name = function
  | Partition_hand -> "hand"
  | Partition_auto _ -> "auto"

type options = {
  arch : Gpusim.Arch.t;
  n_warps : int;
  weights : Mapping.weights;
  strategy : Mapping.strategy option;
  respect_hints : bool;
  group_syncs : bool;
  buffer_slots : int;
  exp_consts_in_registers : bool;
  freg_budget : int option;
  param_stripe_threshold : int;
  max_barriers : int;
  ctas_per_sm_target : int;
  chem_comm : chem_comm option;
  full_range_thermo : bool;
  synth_exchange : bool option;
      (** [None] resolves per architecture: on when the broadcast style is
          [Shuffle] (the swizzles are shuffle instructions) *)
  stencil_overlap : bool;
      (** stencil kernels only — overlapped tiling: upstream warps
          recompute halo columns so each downstream warp reads from
          exactly one upstream warp; [false] computes every column once
          and exchanges halos cross-warp through shared memory *)
  partition : partition;
      (** where the warp assignment comes from: the partitioner's domain
          hints ([Partition_hand], the paper's §4.1 mapping) or a
          structure-derived {!Mapping.auto_spec} proposed by
          {!Partition_search} *)
}

let default_options arch =
  {
    arch;
    n_warps = 8;
    weights = Mapping.default_weights;
    strategy = None;
    respect_hints = true;
    group_syncs = true;
    buffer_slots = 48;
    exp_consts_in_registers = false;
    freg_budget = None;
    param_stripe_threshold = 8;
    max_barriers = 8;
    ctas_per_sm_target = 2;
    chem_comm = None;
    full_range_thermo = false;
    synth_exchange = None;
    stencil_overlap = true;
    partition = Partition_hand;
  }

let default_strategy = function
  | Kernel_abi.Viscosity | Kernel_abi.Conductivity -> Mapping.Store
  | Kernel_abi.Diffusion -> Mapping.Mixed
  | Kernel_abi.Chemistry -> Mapping.Buffer
  (* Stencil tile handoffs are static single-writer values read at known
     offsets: the store region (plus the scheduler's named-barrier
     handshakes) carries them; the transport ring adds nothing. *)
  | Kernel_abi.Stencil _ -> Mapping.Store

type t = {
  mech : Chem.Mechanism.t;
  kernel : Kernel_abi.kernel;
  version : version;
  options : options;
  dfg : Dfg.t;
  mapping : Mapping.t;
  schedule : Schedule.t;
  lowered : Lower.output;
}

(* ---- typed option checking (the [options] pseudo-pass) ---- *)

let check_options_exn mech kernel version o =
  let fail fmt = Diagnostics.failf ~pass:"options" fmt in
  let min_warps = match version with Baseline -> 1 | _ -> 2 in
  if o.n_warps < min_warps then
    fail
      "%s %s of %s needs at least %d warp(s) per CTA, got %d (warp \
       specialization pairs producer and consumer warps)"
      (version_name version)
      (Kernel_abi.kernel_name kernel)
      mech.Chem.Mechanism.name min_warps o.n_warps;
  let warp_cap = min 32 o.arch.Gpusim.Arch.max_warps_per_sm in
  if o.n_warps > warp_cap then
    fail "%d warps per CTA, but %s hosts at most %d" o.n_warps
      o.arch.Gpusim.Arch.name warp_cap;
  if o.buffer_slots < 1 then
    fail "buffer_slots = %d: the transport ring needs at least one slot"
      o.buffer_slots;
  if o.max_barriers < 1 || o.max_barriers > 16 then
    fail "max_barriers = %d outside the hardware's [1, 16]" o.max_barriers;
  if o.ctas_per_sm_target < 1 then
    fail "ctas_per_sm_target = %d: need at least one resident CTA"
      o.ctas_per_sm_target;
  if o.param_stripe_threshold < 0 then
    fail "param_stripe_threshold = %d is negative" o.param_stripe_threshold;
  (match o.partition with
  | Partition_hand -> ()
  | Partition_auto s ->
      if s.Mapping.producer_warps < 1 || s.Mapping.producer_warps >= o.n_warps
      then
        fail
          "partition: producer_warps = %d outside [1, %d] — specialization \
           needs at least one consumer warp"
          s.Mapping.producer_warps (o.n_warps - 1);
      if s.Mapping.hub_threshold < 2 then
        fail "partition: hub_threshold = %d — a hub needs at least 2 consumers"
          s.Mapping.hub_threshold;
      if not (s.Mapping.chain_weight > 0.0) then
        fail "partition: chain_weight = %g must be positive"
          s.Mapping.chain_weight);
  match o.freg_budget with
  | Some b when b < 4 ->
      fail "freg_budget = %d: lowering needs at least 4 double registers" b
  | Some _ | None -> ()

(* The [--synth-exchange] default: non-identity swizzle programs are
   shuffle instructions, so the rewrite is on by default exactly where the
   broadcast mechanism already assumes shuffle hardware. *)
let synth_exchange_enabled o =
  match o.synth_exchange with
  | Some b -> b
  | None -> o.arch.Gpusim.Arch.broadcast = Gpusim.Arch.Shuffle

let check_options mech kernel version o =
  match check_options_exn mech kernel version o with
  | () -> Ok ()
  | exception Diagnostics.Fail d -> Error d

(* ---- transform passes ---- *)

let build_dfg ?(chem_comm = Chem_staged) ?(full_range_thermo = false)
    ?(stencil_overlap = true) mech kernel ~n_warps =
  match kernel with
  | Kernel_abi.Viscosity -> Viscosity_dfg.build mech ~n_warps
  | Kernel_abi.Conductivity -> Conductivity_dfg.build mech ~n_warps
  | Kernel_abi.Diffusion -> Diffusion_dfg.build mech ~n_warps
  | Kernel_abi.Chemistry ->
      let recompute_conc, recompute_gibbs =
        match chem_comm with
        | Chem_staged -> (false, false)
        | Chem_recompute -> (true, true)
        | Chem_mixed -> (false, true)
      in
      Chemistry_dfg.build ~recompute_conc ~recompute_gibbs ~full_range_thermo
        mech ~n_warps
  | Kernel_abi.Stencil id ->
      Stencil_dfg.build (Stencil_pipe.get id) ~n_warps
        ~overlap:stencil_overlap

let freg_budget options =
  match options.freg_budget with
  | Some b -> b
  | None ->
      (* Per-thread 32-bit budget so the target CTAs per SM stay resident:
         the register file divided over the resident threads, capped by the
         per-thread architectural maximum, minus headroom for integer
         parameter registers and addressing overhead. *)
      let threads =
        options.ctas_per_sm_target * options.n_warps * 32
      in
      let budget32 =
        min options.arch.Gpusim.Arch.max_regs_per_thread
          (options.arch.Gpusim.Arch.regfile_per_sm / threads)
      in
      max 8 ((budget32 - 16) / 2)

(* ---- artifact statistics attached to each pass record ---- *)

let dfg_stats (dfg : Dfg.t) =
  [
    ("ops", float_of_int (Array.length dfg.Dfg.ops));
    ("values", float_of_int (Array.length dfg.Dfg.values));
    ("flops", float_of_int (Dfg.total_flops dfg));
  ]

let mapping_stats dfg (m : Mapping.t) =
  let flops = Mapping.warp_flops dfg m in
  [
    ("warps", float_of_int m.Mapping.n_warps);
    ("store_slots", float_of_int m.Mapping.store_slots);
    ("cross_warp_edges", float_of_int (Mapping.cross_warp_edges dfg m));
    ("max_warp_flops", float_of_int (Array.fold_left max 0 flops));
  ]

let schedule_stats (s : Schedule.t) =
  [
    ("sync_points", float_of_int s.Schedule.n_sync_points);
    ("barriers", float_of_int s.Schedule.barriers_used);
    ("ring_slots", float_of_int s.Schedule.buffer_slots);
    ( "actions",
      float_of_int
        (Array.fold_left (fun a l -> a + Array.length l) 0 s.Schedule.per_warp)
    );
  ]

let lower_stats (l : Lower.output) =
  let p = l.Lower.program in
  [
    ("instrs", float_of_int (Gpusim.Isa.static_instr_count p.Gpusim.Isa.body));
    ("fregs", float_of_int p.Gpusim.Isa.n_fregs);
    ("iregs", float_of_int p.Gpusim.Isa.n_iregs);
    ("shared_doubles", float_of_int p.Gpusim.Isa.shared_doubles);
    ("spill_bytes", float_of_int l.Lower.spill_bytes_per_thread);
    ("bank_regs", float_of_int l.Lower.n_bank_regs);
    ("params", float_of_int l.Lower.n_params);
  ]

(* ---- the pipeline ---- *)

let run_pipeline pm ~validate mech kernel version options =
  let groups = Kernel_abi.groups mech kernel in
  let strategy =
    match options.strategy with
    | Some s -> s
    | None -> default_strategy kernel
  in
  match version with
  | Warp_specialized | Naive_warp_specialized ->
      (* Staging through shared memory wins on end-to-end throughput in
         most measured configurations; redundant recomputation trades the
         staged vectors for registers and FLOPs, raising achieved GFLOPS
         more than points per second. The explicit knob remains for the
         ablation benchmark and for shared-memory-starved configurations. *)
      let chem_comm = Option.value options.chem_comm ~default:Chem_staged in
      let dfg =
        Pass.run pm ~name:"dfg-build" ~stats:dfg_stats (fun () ->
            build_dfg ~chem_comm ~full_range_thermo:options.full_range_thermo
              ~stencil_overlap:options.stencil_overlap mech kernel
              ~n_warps:options.n_warps)
      in
      if validate then
        Pass.validate pm ~name:"dfg-validate" (fun () ->
            Dfg.validate ~n_warps:options.n_warps dfg);
      let mapping =
        Pass.run pm ~name:"mapping" ~stats:(mapping_stats dfg) (fun () ->
            match options.partition with
            | Partition_hand ->
                Mapping.map dfg ~n_warps:options.n_warps
                  ~weights:options.weights ~strategy
                  ~respect_hints:options.respect_hints
            | Partition_auto spec ->
                Mapping.map_auto dfg ~n_warps:options.n_warps
                  ~weights:options.weights ~spec)
      in
      if validate then
        Pass.validate pm ~name:"mapping-validate" (fun () ->
            Mapping.validate dfg mapping);
      let cfg =
        {
          Lower.arch = options.arch;
          overlay = (version = Warp_specialized);
          const_policy =
            (if version = Warp_specialized then Lower.Bank else Lower.Immediate);
          exp_consts_in_registers = options.exp_consts_in_registers;
          param_stripe_threshold = options.param_stripe_threshold;
          freg_budget = freg_budget options;
          synth_exchange = synth_exchange_enabled options;
        }
      in
      let name =
        Printf.sprintf "%s-%s-ws%d" mech.Chem.Mechanism.name
          (Kernel_abi.kernel_name kernel) options.n_warps
      in
      (* The integer-parameter register demand is only known after
         lowering; shrink the floating budget and retry if the 32-bit
         total overshoots the architectural cap. *)
      let cap32 =
        min options.arch.Gpusim.Arch.max_regs_per_thread
          (options.arch.Gpusim.Arch.regfile_per_sm
          / (options.ctas_per_sm_target * options.n_warps * 32))
      in
      let rec fit schedule cfg tries =
        let lowered =
          Pass.run pm ~name:"lower" ~stats:lower_stats (fun () ->
              Lower.lower cfg ~point_map:Gpusim.Isa.Coop ~name
                ~out_warps:options.n_warps ~groups dfg mapping schedule)
        in
        let used = Gpusim.Isa.regs32_per_thread lowered.Lower.program in
        if used <= cap32 || tries = 0 then lowered
        else
          fit schedule
            { cfg with
              Lower.freg_budget =
                cfg.Lower.freg_budget - (((used - cap32) + 1) / 2) - 1 }
            (tries - 1)
      in
      (* Shared memory must leave room for the target CTAs per SM. If the
         store slots plus the buffer ring overshoot, rebuild the schedule
         with a smaller ring (more ring reuse costs barrier waits, not
         correctness) before giving up. *)
      let shared_cap =
        options.arch.Gpusim.Arch.shared_bytes_per_sm
        / max 1 options.ctas_per_sm_target
      in
      let rec fit_shared buffer_slots tries =
        let schedule =
          Pass.run pm ~name:"schedule" ~stats:schedule_stats (fun () ->
              Schedule.build ~buffer_slots ~group_syncs:options.group_syncs
                ~max_barriers:options.max_barriers dfg mapping)
        in
        let lowered = fit schedule cfg 3 in
        let bytes = lowered.Lower.program.Gpusim.Isa.shared_doubles * 8 in
        if bytes <= shared_cap || tries = 0 || buffer_slots <= 8 then
          (schedule, lowered)
        else
          let overshoot_slots = ((bytes - shared_cap) + 255) / 256 in
          fit_shared (max 8 (buffer_slots - overshoot_slots)) (tries - 1)
      in
      let schedule, lowered = fit_shared options.buffer_slots 3 in
      (* Surface the rewrite's work as its own [--timings] row (the wall
         time is folded into the lower pass; the statistics are what
         matter here). *)
      if cfg.Lower.synth_exchange then
        ignore
          (Pass.run pm ~name:"synth-exchange" ~stats:Shuffle_synth.report_stats
             (fun () -> lowered.Lower.exchange));
      if validate then begin
        Pass.validate pm ~name:"schedule-validate" (fun () ->
            Schedule.validate ~max_barriers:options.max_barriers schedule dfg
              mapping);
        Pass.validate pm ~name:"deadlock-check" (fun () ->
            Deadlock_check.check schedule);
        Pass.validate pm ~name:"lower-validate" (fun () ->
            Lower.validate_output ~arch:options.arch
              ~max_barriers:options.max_barriers lowered)
      end;
      { mech; kernel; version; options; dfg; mapping; schedule; lowered }
  | Baseline ->
      (* One thread per point: every thread runs the whole dataflow graph,
         so map onto a single logical warp and emit warp-independent code. *)
      let dfg =
        Pass.run pm ~name:"dfg-build" ~stats:dfg_stats (fun () ->
            build_dfg ~full_range_thermo:options.full_range_thermo
              ~stencil_overlap:options.stencil_overlap mech kernel ~n_warps:1)
      in
      if validate then
        Pass.validate pm ~name:"dfg-validate" (fun () ->
            Dfg.validate ~n_warps:1 dfg);
      let mapping =
        Pass.run pm ~name:"mapping" ~stats:(mapping_stats dfg) (fun () ->
            Mapping.map dfg ~n_warps:1 ~weights:options.weights
              ~strategy:Mapping.Buffer ~respect_hints:false)
      in
      if validate then
        Pass.validate pm ~name:"mapping-validate" (fun () ->
            Mapping.validate dfg mapping);
      let schedule =
        Pass.run pm ~name:"schedule" ~stats:schedule_stats (fun () ->
            Schedule.build ~buffer_slots:options.buffer_slots ~group_syncs:true
              dfg mapping)
      in
      if validate then begin
        Pass.validate pm ~name:"schedule-validate" (fun () ->
            Schedule.validate ~max_barriers:options.max_barriers schedule dfg
              mapping);
        Pass.validate pm ~name:"deadlock-check" (fun () ->
            Deadlock_check.check schedule)
      end;
      let cfg =
        {
          Lower.arch = options.arch;
          overlay = true;
          const_policy = Lower.Const_mem;
          exp_consts_in_registers = options.exp_consts_in_registers;
          param_stripe_threshold = options.param_stripe_threshold;
          freg_budget = freg_budget options;
          synth_exchange = synth_exchange_enabled options;
        }
      in
      let lowered =
        Pass.run pm ~name:"lower" ~stats:lower_stats (fun () ->
            Lower.lower cfg
              ~name:
                (Printf.sprintf "%s-%s-baseline" mech.Chem.Mechanism.name
                   (Kernel_abi.kernel_name kernel))
              ~point_map:Gpusim.Isa.Thread_per_point ~out_warps:options.n_warps
              ~groups dfg mapping schedule)
      in
      if validate then
        Pass.validate pm ~name:"lower-validate" (fun () ->
            Lower.validate_output ~arch:options.arch
              ~max_barriers:options.max_barriers lowered);
      { mech; kernel; version; options; dfg; mapping; schedule; lowered }

let pipeline_name mech kernel version options =
  Printf.sprintf "%s/%s/%s/%s/ws%d" mech.Chem.Mechanism.name
    (Kernel_abi.kernel_name kernel)
    (version_name version) options.arch.Gpusim.Arch.name options.n_warps

let compile_with_report ?(validate = true) mech kernel version options =
  check_options_exn mech kernel version options;
  let pm = Pass.create (pipeline_name mech kernel version options) in
  let t = run_pipeline pm ~validate mech kernel version options in
  (t, Pass.report pm)

let compile mech kernel version options =
  fst (compile_with_report ~validate:false mech kernel version options)

let compile_checked ?validate mech kernel version options =
  match compile_with_report ?validate mech kernel version options with
  | v -> Ok v
  | exception Diagnostics.Fail d -> Error d
  | exception Failure msg -> Error (Diagnostics.error ~pass:"pipeline" msg)
  | exception Invalid_argument msg ->
      Error (Diagnostics.error ~pass:"pipeline" msg)

(* ---- compile memoization -------------------------------------------

   A sweep (autotuner, figures, bench) revisits the same configuration
   many times; the pipeline is deterministic in (mechanism, kernel,
   version, options), so identical configurations compile once per
   process. The key digests the whole mechanism, not just its name, so
   synthetic test mechanisms sharing a name cannot alias. Compiled
   artifacts are immutable after the pipeline returns (simulation state
   lives in [Memstate.t] / trace cursors), making a shared [t] safe to
   hand to concurrent sweep workers. Only successful compiles are
   cached; failures re-raise so callers see the exception every time.

   The table is bounded: a long-lived server streaming distinct
   configurations would otherwise grow it without limit (each entry
   holds a whole lowered program). Eviction is LRU on a logical clock
   bumped at every hit, and every hit re-verifies the stored artifact
   against the structural fingerprint recorded at insertion — a
   mismatch (memory corruption, or a bug mutating a "immutable"
   artifact) drops the entry, recompiles, and is counted rather than
   silently served. *)

type memo_stats = {
  size : int;
  limit : int;
  hits : int;
  misses : int;
  evictions : int;
  corruptions : int;
}

type memo_entry = {
  value : t;
  mutable fingerprint : int array;
      (* mutable only so tests can poison an entry to exercise the
         corruption path; the cache itself never writes it after insert *)
  mutable last_use : int;
}

let memo : (string, memo_entry) Hashtbl.t = Hashtbl.create 64
let memo_mutex = Mutex.create ()
let memo_tick = ref 0
let memo_max = ref 512
let memo_hits = ref 0
let memo_misses = ref 0
let memo_evictions = ref 0
let memo_corruptions = ref 0

(* Cheap structural checksum of a compiled artifact: program-level
   resource counts plus schedule/DFG shape. Any in-place mutation of the
   cached artifact that matters to simulation shows up here. *)
let fingerprint (t : t) =
  let p = t.lowered.Lower.program in
  [|
    Gpusim.Isa.static_instr_count p.Gpusim.Isa.body;
    Gpusim.Isa.static_instr_count p.Gpusim.Isa.prologue;
    p.Gpusim.Isa.n_fregs;
    p.Gpusim.Isa.n_iregs;
    p.Gpusim.Isa.shared_doubles;
    p.Gpusim.Isa.local_doubles;
    p.Gpusim.Isa.barriers_used;
    t.schedule.Schedule.n_sync_points;
    t.schedule.Schedule.buffer_slots;
    Array.length t.dfg.Dfg.ops;
    Array.length t.dfg.Dfg.values;
  |]

(* Callers hold [memo_mutex]. *)
let evict_down_to limit =
  while Hashtbl.length memo > limit do
    let oldest = ref None in
    Hashtbl.iter
      (fun key e ->
        match !oldest with
        | Some (_, lru) when lru <= e.last_use -> ()
        | _ -> oldest := Some (key, e.last_use))
      memo;
    match !oldest with
    | None -> ()
    | Some (key, _) ->
        Hashtbl.remove memo key;
        incr memo_evictions
  done

let memo_limit () = !memo_max

let set_memo_limit n =
  let n = max 1 n in
  Mutex.lock memo_mutex;
  memo_max := n;
  evict_down_to n;
  Mutex.unlock memo_mutex

let memo_stats () =
  Mutex.lock memo_mutex;
  let s =
    {
      size = Hashtbl.length memo;
      limit = !memo_max;
      hits = !memo_hits;
      misses = !memo_misses;
      evictions = !memo_evictions;
      corruptions = !memo_corruptions;
    }
  in
  Mutex.unlock memo_mutex;
  s

let memo_key mech kernel version options =
  Digest.string (Marshal.to_string (mech, kernel, version, options) [])

let compile_cached mech kernel version options =
  let key = memo_key mech kernel version options in
  let cached =
    Mutex.lock memo_mutex;
    let v =
      match Hashtbl.find_opt memo key with
      | None ->
          incr memo_misses;
          None
      | Some e when e.fingerprint = fingerprint e.value ->
          incr memo_hits;
          incr memo_tick;
          e.last_use <- !memo_tick;
          Some e.value
      | Some _ ->
          (* Re-verification failed: the artifact no longer matches what
             was inserted. Drop it and recompile below. *)
          Hashtbl.remove memo key;
          incr memo_corruptions;
          incr memo_misses;
          None
    in
    Mutex.unlock memo_mutex;
    v
  in
  match cached with
  | Some t -> t
  | None ->
      (* Compile outside the lock: concurrent workers may duplicate the
         work for the same key (deterministic, so either result is the
         same), but never serialize on each other. *)
      let t = compile mech kernel version options in
      Mutex.lock memo_mutex;
      if not (Hashtbl.mem memo key) then begin
        incr memo_tick;
        Hashtbl.add memo key
          { value = t; fingerprint = fingerprint t; last_use = !memo_tick };
        evict_down_to !memo_max
      end;
      Mutex.unlock memo_mutex;
      t

let memo_poison_for_test () =
  Mutex.lock memo_mutex;
  let victim = Hashtbl.fold (fun _ e _ -> Some e) memo None in
  (match victim with Some e -> e.fingerprint <- [||] | None -> ());
  Mutex.unlock memo_mutex;
  victim <> None

let memo_clear () =
  Mutex.lock memo_mutex;
  Hashtbl.reset memo;
  Mutex.unlock memo_mutex

(* ---- IR dumping (the CLI's --dump-ir) ---- *)

type ir_stage = Ir_dfg | Ir_mapping | Ir_schedule | Ir_lower

let ir_stage_of_string s =
  match String.lowercase_ascii s with
  | "dfg" | "dfg-build" -> Some Ir_dfg
  | "mapping" | "map" -> Some Ir_mapping
  | "schedule" | "sched" -> Some Ir_schedule
  | "lower" | "isa" -> Some Ir_lower
  | _ -> None

let ir_stage_name = function
  | Ir_dfg -> "dfg"
  | Ir_mapping -> "mapping"
  | Ir_schedule -> "schedule"
  | Ir_lower -> "lower"

let dump_ir ppf t stage =
  Format.pp_open_vbox ppf 0;
  (match stage with
  | Ir_dfg -> Dfg.pp_dump ppf t.dfg
  | Ir_mapping -> Mapping.pp_dump t.dfg ppf t.mapping
  | Ir_schedule -> Schedule.pp_dump t.dfg ppf t.schedule
  | Ir_lower ->
      let p = t.lowered.Lower.program in
      Format.fprintf ppf "== prologue ==@,%a== body ==@,%a"
        Gpusim.Isa.pp_block p.Gpusim.Isa.prologue
        Gpusim.Isa.pp_block p.Gpusim.Isa.body);
  Format.pp_close_box ppf ();
  Format.pp_print_newline ppf ()

let default_ctas t ~total_points =
  match t.version with
  | Baseline ->
      let per_cta = t.options.n_warps * 32 in
      (* Used to be an [assert]: a stray --points on a baseline launch
         would abort the process instead of explaining itself. *)
      if total_points mod per_cta <> 0 then
        Diagnostics.failf ~pass:"launch"
          ~loc:(Kernel_abi.kernel_name t.kernel)
          "baseline %s launches one thread per point: %d points do not \
           divide into %d-thread CTAs (%d warps x 32); pick a multiple or \
           pass an explicit CTA count"
          (Kernel_abi.kernel_name t.kernel)
          total_points per_cta t.options.n_warps;
      total_points / per_cta
  | Warp_specialized | Naive_warp_specialized ->
      min 1024 (total_points / 32)

type run_result = {
  machine : Gpusim.Machine.result;
  max_rel_err : float;
  outputs : float array array;
}

let run ?ctas ?(check = true) ?(seed = 0x5EEDL) ?t_range ?(faults = [])
    ?max_cycles ?profile ?n_sms ?skew t ~total_points =
  let ctas =
    match ctas with Some c -> c | None -> default_ctas t ~total_points
  in
  let launch =
    {
      Gpusim.Machine.program = t.lowered.Lower.program;
      total_points;
      ctas;
    }
  in
  let grid = ref None in
  (* The machine model may simulate twice (batch extrapolation); keep the
     grid matching the run whose outputs are checked (the largest). *)
  let fill mem n =
    let g = Chem.Grid.create ?t_range t.mech ~points:n ~seed in
    (match !grid with
    | Some g0 when g0.Chem.Grid.points >= n -> ()
    | Some _ | None -> grid := Some g);
    Kernel_abi.fill_inputs t.mech g t.kernel t.lowered.Lower.program mem n
  in
  let machine =
    Gpusim.Machine.run ~fill_inputs:fill ~faults ?max_cycles ?profile ?n_sms
      ?skew t.options.arch launch
  in
  let outputs =
    Kernel_abi.read_outputs t.lowered.Lower.program machine.Gpusim.Machine.mem
  in
  let max_rel_err =
    if not check then nan
    else begin
      let g = Option.get !grid in
      let n = machine.Gpusim.Machine.simulated_points in
      let reference = Kernel_abi.reference_outputs t.mech g t.kernel ~points:n in
      let worst = ref 0.0 in
      (* Output sums can cancel (wdot is a difference of large rates), so
         the tolerance floor scales with the field's magnitude. *)
      let field_max =
        Array.fold_left
          (fun acc f ->
            Array.fold_left (fun a v -> Float.max a (abs_float v)) acc f)
          1e-300 reference
      in
      Array.iteri
        (fun f expect ->
          Array.iteri
            (fun p e ->
              let got = outputs.(f).(p) in
              let denom = Float.max (abs_float e) (1e-9 *. field_max) in
              let err = abs_float (got -. e) /. denom in
              if err > !worst then worst := err)
            expect)
        reference;
      !worst
    end
  in
  { machine; max_rel_err; outputs }
