(** Shuffle-exchange superoptimizer (DESIGN §14).

    Shared-memory exchange round-trips — a [St_shared] by the producing
    warp, a barrier, and lane-striped [Ld_shared]/[Sshared] reads by the
    consumers — are the §5 codegen's only mechanism for moving values
    between registers. Whenever the reader is the warp that wrote the
    value, the round-trip is a warp-internal lane permutation in disguise,
    and a short register-only shuffle program (in the style of
    swizzle-inventor's sketch search) can replace it.

    This module is the search core: a tiny swizzle language (lane
    rotations, butterflies, single-lane broadcasts — exactly the
    {!Gpusim.Isa.Shfl_rot} / {!Gpusim.Isa.Shfl_bfly} / {!Gpusim.Isa.Shfl}
    instructions), a symbolic lane evaluator over it, a canonicalizer that
    collapses the sketch space so equivalent programs are enumerated once,
    a bounded-depth enumeration indexed by lane-permutation signature, and
    an {!Gpusim.Arch}-parameterized cost model mirroring
    {!Perf_model}'s per-instruction accounting. {!Lower} extracts each
    exchange's lane-communication pattern and calls {!synthesize}; the
    caller keeps a rewrite only when {!cost} beats
    {!shared_read_cost}. *)

type step =
  | Rot of int  (** lane [l] reads lane [(l + delta) mod 32] *)
  | Bfly of int  (** lane [l] reads lane [l lxor mask] *)
  | Bcast of int  (** every lane reads lane [k] *)

type prog = step list
(** Applied left to right: the value vector flows through each step. *)

val source_lane : prog -> int -> int
(** [source_lane p l] is the lane of the {e original} vector whose value
    lane [l] holds after running [p] — the symbolic lane evaluator. *)

val signature : prog -> int array
(** All 32 source lanes: [signature p = Array.init 32 (source_lane p)]. *)

val apply : prog -> 'a array -> 'a array
(** Run the program on a concrete 32-lane value vector (the functional
    semantics the simulator must agree with). *)

val canonicalize : prog -> prog
(** Zero steps dropped, adjacent same-kind steps merged, any program whose
    signature is constant collapsed to a single [Bcast], identity to []. *)

val enumerate : ?max_depth:int -> unit -> prog list
(** Every canonical program up to [max_depth] (default 3) steps, one per
    distinct lane-permutation signature (cheapest representative kept).
    The result is memoized process-wide for the default depth. *)

val synthesize : int array -> prog option
(** [synthesize pattern] finds the cheapest enumerated program whose
    signature equals [pattern] (where [pattern.(l)] is the source lane
    feeding destination lane [l]); [Some []] for the identity. The result
    is re-verified against the pattern on all 32 lanes before being
    returned — the enumeration-level equivalence oracle. *)

val cost : Gpusim.Arch.t -> prog -> float
(** Issue + dependence-latency cycles of the shuffle program: each step is
    two 32-bit shuffles on the ALU pipe plus an [arith_latency] hop,
    matching {!Perf_model}'s charge for {!Gpusim.Isa.Shfl}. *)

val shared_read_cost : Gpusim.Arch.t -> float
(** What one lane-striped shared read costs the reader in the same units:
    a shared-pipe slot (free under an operand collector) plus the
    [shared_latency] dependence hop. The store side and the freed shared
    footprint make the rewrite strictly better when [cost <=
    shared_read_cost], so that is the arbitration test. *)

type report = {
  sites_seen : int;  (** shared-read sites examined *)
  sites_rewritten : int;  (** sites replaced by a swizzle program *)
  round_trips_removed : int;  (** shared reads eliminated (per warp) *)
  stores_removed : int;  (** dead shared stores eliminated *)
  shuffle_steps : int;  (** swizzle instructions inserted *)
  shared_bytes_freed : int;  (** per-CTA shared footprint shrink *)
}

val empty_report : report
val add_report : report -> report -> report

val report_stats : report -> (string * float) list
(** The pass-manager stat list ([--timings] row) for a synthesis run. *)
