(** Structured compiler diagnostics.

    Every user-reachable failure of the compilation pipeline is reported as
    a {!t} carrying the pass it originated from, instead of an ad-hoc
    [failwith] backtrace. Drivers (the CLI, the benchmark harness,
    autotuning) match on {!Fail} or use the [_checked] entry points of
    {!Compile} and render the diagnostic with {!pp}. *)

type severity = Error | Warning

type t = {
  severity : severity;
  pass : string option;  (** originating pipeline pass, when known *)
  loc : string option;
      (** source position (["input.mech:12"]) when the failure points at
          user-written input rather than a pipeline stage *)
  message : string;
}

exception Fail of t
(** Raised by validation passes and option checking; caught at the
    [_checked] API boundary and converted into a [result]. *)

val error : ?pass:string -> ?loc:string -> string -> t

val errorf : ?pass:string -> ?loc:string -> ('a, unit, string, t) format4 -> 'a

val warning : ?pass:string -> ?loc:string -> string -> t

val fail : ?pass:string -> ?loc:string -> string -> 'b
(** [fail msg] raises {!Fail} with an [Error] diagnostic. *)

val failf : ?pass:string -> ?loc:string -> ('a, unit, string, 'b) format4 -> 'a

val of_srcloc : ?pass:string -> Chem.Srcloc.error -> t
(** Lift a positioned parser error ({!Chem.Srcloc.error}) into a
    diagnostic: the location renders into {!field-loc}, the offending
    token into the message. *)

val to_string : t -> string
(** ["error: ..."] / ["warning[pass]: ..."] /
    ["error[parse]: input.mech:12: ..."] rendering, one line. *)

val pp : Format.formatter -> t -> unit
