(* Static deadlock verification of named-barrier schedules (§4.4).

   The paper proves its schedules deadlock-free by construction:
   linearizing the sync points along one topological order gives every
   barrier a total order, each sync pairs exactly one waiter with
   [count - 1] arrivers, and ids are recycled only across CTA-wide
   boundaries that drain every counter. This module re-establishes the
   property as an executable check on the finished artifact, so a
   hand-edited, mutated, or future-pass schedule cannot reach the
   simulator (or hardware) with a latent hang.

   Three layers, mirroring the theorem's proof obligations:

   {ol
   {- {e pairing and reuse safety} ([Schedule.pairing_problems]): along
      the emission-stamp linearization each barrier id's stream must
      decompose into consecutive uses of [count - 1] arrivals followed
      by one wait, all quoting the same count, with consecutive uses of
      an id separated by a CTA-wide boundary (the condition that drains
      the hardware counter and makes recycling the id safe). A single
      use may span a boundary — the allocator keeps in-flight ids
      across id-pressure boundaries, and arrivals always precede the
      wait, so the cut cannot deadlock;}
   {- {e abstract execution}: run the per-warp action streams against
      the hardware barrier semantics (an arrival counter per id; a wait
      increments and blocks below [count]; reaching [count] subtracts it
      and releases the registered waiters). Correct schedules are
      order-independent — any interleaving reaches the same pairing of
      arrivals to waits — so a single round-robin execution is a valid
      witness, and along it we detect: an arrival completing a barrier
      with no registered waiter (a lost release: the eventual waiter
      starves), two concurrent waiters on one id, and global stuck
      states;}
   {- {e id range and termination}: every id fits the 16 physical
      barriers, and no counter holds arrivals after the last warp
      retires (a wait that can never be released).}}

   On a stuck state the verifier names every blocked warp and, when the
   blockage is mutual, the cross-warp wait cycle (warp A waits on a
   barrier whose remaining arrivals are all behind warp B's block, and
   vice versa). *)

let physical = 16

type wstate =
  | Running
  | Blocked_bar of int  (** waiting on this named barrier id *)
  | Blocked_cta
  | Finished

let check (s : Schedule.t) =
  let w = Array.length s.per_warp in
  let problems = ref [] in
  let n_problems = ref 0 in
  let err fmt =
    Printf.ksprintf
      (fun m ->
        (* Cap the list: one corrupted schedule can trip thousands of
           sites, and the first few localize the bug. *)
        incr n_problems;
        if !n_problems <= 16 then problems := m :: !problems)
      fmt
  in
  if s.barriers_used > physical then
    err "%d barrier ids allocated, hardware has %d" s.barriers_used physical;
  (* ---- id range ---- *)
  Array.iteri
    (fun warp actions ->
      Array.iter
        (fun a ->
          match a with
          | Schedule.A_arrive { bar; count } | Schedule.A_wait { bar; count }
            ->
              if bar < 0 || bar >= physical then
                err "warp %d: barrier id %d outside the %d physical barriers"
                  warp bar physical;
              if count < 2 || count > w then
                err "warp %d: barrier %d count %d outside [2, %d]" warp bar
                  count w
          | Schedule.A_op _ | Schedule.A_send _ | Schedule.A_recv _
          | Schedule.A_cta_barrier ->
              ())
        actions)
    s.per_warp;
  (* ---- per-use pairing and id-recycling safety ----
     Checked along the global emission-stamp linearization (the
     construction's own sync-point order): each id's stream must split
     into consecutive uses of [count - 1] arrivals then one wait, and
     consecutive uses must be separated by a CTA-wide boundary. A single
     use spanning a boundary is legal — the allocator keeps in-flight
     ids across id-pressure boundaries (arrivals always precede the
     wait, so the cut cannot deadlock). *)
  List.iter (fun p -> err "%s" p) (Schedule.pairing_problems s);
  (* ---- abstract execution ---- *)
  let pos = Array.make w 0 in
  let st = Array.make w Running in
  let counters = Array.make physical 0 in
  let waiters : int list array = Array.make physical [] in
  let cta_arrived = ref 0 in
  let cta_blocked = ref [] in
  let finished = ref 0 in
  let in_range bar = bar >= 0 && bar < physical in
  (* A counter may legitimately be non-zero at a CTA-wide boundary — a
     sync whose arrivals precede an id-pressure boundary and whose wait
     follows it stays in flight across the crossing, and the allocator
     does not recycle its id meanwhile (the pairing layer verifies
     that). Undrained arrivals are only a fault once every warp has
     retired: then no wait can ever absorb them, so some release was
     lost. *)
  let drain_check where =
    for b = 0 to physical - 1 do
      if counters.(b) <> 0 then begin
        err "barrier %d holds %d undrained arrival(s) %s — the release is \
             lost"
          b counters.(b) where;
        counters.(b) <- 0
      end
    done
  in
  (* Advance warp [wi] until it blocks or finishes. Barrier releases mark
     other warps Running; the driver loop picks them up. *)
  let rec run_warp wi =
    let actions = s.per_warp.(wi) in
    if pos.(wi) >= Array.length actions then begin
      st.(wi) <- Finished;
      incr finished
    end
    else begin
      let release bar =
        List.iter
          (fun w2 ->
            st.(w2) <- Running;
            pos.(w2) <- pos.(w2) + 1)
          waiters.(bar);
        waiters.(bar) <- []
      in
      (match actions.(pos.(wi)) with
      | Schedule.A_op _ | Schedule.A_send _ | Schedule.A_recv _ ->
          pos.(wi) <- pos.(wi) + 1
      | Schedule.A_arrive { bar; count } ->
          if in_range bar then begin
            counters.(bar) <- counters.(bar) + 1;
            if counters.(bar) >= count then begin
              counters.(bar) <- counters.(bar) - count;
              if waiters.(bar) = [] then
                err
                  "warp %d: arrival completes barrier %d (count %d) with no \
                   waiter registered — the release is lost and the eventual \
                   waiter starves"
                  wi bar count
              else release bar
            end
          end;
          pos.(wi) <- pos.(wi) + 1
      | Schedule.A_wait { bar; count } ->
          if not (in_range bar) then pos.(wi) <- pos.(wi) + 1
          else begin
            counters.(bar) <- counters.(bar) + 1;
            if counters.(bar) >= count then begin
              counters.(bar) <- counters.(bar) - count;
              if waiters.(bar) <> [] then begin
                err
                  "barrier %d: waiter of warp %d passes while warp(s) %s \
                   still wait on the same id (aliased syncs)"
                  bar wi
                  (String.concat ","
                     (List.map string_of_int waiters.(bar)));
                release bar
              end;
              pos.(wi) <- pos.(wi) + 1
            end
            else begin
              if waiters.(bar) <> [] then
                err "barrier %d: warps %s and %d wait concurrently" bar
                  (String.concat "," (List.map string_of_int waiters.(bar)))
                  wi;
              waiters.(bar) <- wi :: waiters.(bar);
              st.(wi) <- Blocked_bar bar
            end
          end
      | Schedule.A_cta_barrier ->
          incr cta_arrived;
          if !cta_arrived = w then begin
            cta_arrived := 0;
            List.iter
              (fun w2 ->
                st.(w2) <- Running;
                pos.(w2) <- pos.(w2) + 1)
              !cta_blocked;
            cta_blocked := [];
            pos.(wi) <- pos.(wi) + 1
          end
          else begin
            cta_blocked := wi :: !cta_blocked;
            st.(wi) <- Blocked_cta
          end);
      match st.(wi) with Running -> run_warp wi | _ -> ()
    end
  in
  let rec drive () =
    let any = ref false in
    for wi = 0 to w - 1 do
      if st.(wi) = Running then begin
        any := true;
        run_warp wi
      end
    done;
    if !any then drive ()
  in
  drive ();
  if !finished < w then begin
    (* Stuck: describe every blocked warp, then look for a cross-warp
       wait cycle among them. A warp blocked on barrier [b] depends on
       every warp whose remaining stream still holds an arrival for [b];
       a warp blocked on the CTA barrier depends on every warp that has
       not yet arrived there. *)
    let remaining_provides wi bar =
      let actions = s.per_warp.(wi) in
      let found = ref false in
      for i = pos.(wi) + 1 to Array.length actions - 1 do
        match actions.(i) with
        | Schedule.A_arrive { bar = b; _ } | Schedule.A_wait { bar = b; _ }
          ->
            if b = bar then found := true
        | _ -> ()
      done;
      !found
    in
    let deps wi =
      match st.(wi) with
      | Blocked_bar bar ->
          List.filter
            (fun w2 ->
              w2 <> wi && st.(w2) <> Finished
              &&
              match st.(w2) with
              | Blocked_bar b2 when b2 = bar -> false
              | _ ->
                  (match s.per_warp.(w2).(pos.(w2)) with
                  | Schedule.A_arrive { bar = b; _ }
                  | Schedule.A_wait { bar = b; _ }
                    when b = bar ->
                      true
                  | _ -> false)
                  || remaining_provides w2 bar)
            (List.init w Fun.id)
      | Blocked_cta ->
          List.filter
            (fun w2 -> w2 <> wi && st.(w2) <> Blocked_cta && st.(w2) <> Finished)
            (List.init w Fun.id)
      | Running | Finished -> []
    in
    Array.iteri
      (fun wi state ->
        match state with
        | Blocked_bar bar ->
            let providers = deps wi in
            if providers = [] then
              err
                "deadlock: warp %d blocks forever on barrier %d (no \
                 remaining arrivals anywhere)"
                wi bar
            else
              err
                "deadlock: warp %d blocks on barrier %d whose remaining \
                 arrival(s) sit behind blocked warp(s) %s"
                wi bar
                (String.concat "," (List.map string_of_int providers))
        | Blocked_cta ->
            let missing =
              List.filter
                (fun w2 -> st.(w2) = Finished)
                (List.init w Fun.id)
            in
            if missing <> [] then
              err
                "deadlock: warp %d blocks on the CTA barrier but warp(s) %s \
                 already retired without arriving"
                wi
                (String.concat "," (List.map string_of_int missing))
            else
              err "deadlock: warp %d blocks on the CTA barrier" wi
        | Running -> err "internal: warp %d still runnable after fixpoint" wi
        | Finished -> ())
      st;
    (* Cycle extraction: DFS over the dependence edges of blocked warps. *)
    let color = Array.make w 0 in
    let cycle = ref None in
    let rec dfs path wi =
      if !cycle = None then
        if color.(wi) = 1 then begin
          (* [path] is most-recent-first and starts with the node that
             closed the cycle; take it plus everything back to (and
             excluding) its previous occurrence. *)
          let rec upto = function
            | [] -> []
            | x :: tl -> if x = wi then [] else x :: upto tl
          in
          match path with
          | [] -> ()
          | hd :: tl -> cycle := Some (List.rev (hd :: upto tl))
        end
        else if color.(wi) = 0 then begin
          color.(wi) <- 1;
          List.iter (fun w2 -> dfs (w2 :: path) w2) (deps wi);
          color.(wi) <- 2
        end
    in
    for wi = 0 to w - 1 do
      dfs [ wi ] wi
    done;
    match !cycle with
    | Some (_ :: _ :: _ as ws) ->
        err "cross-warp wait cycle: %s"
          (String.concat " -> "
             (List.map string_of_int (ws @ [ List.hd ws ])))
    | Some _ | None -> ()
  end
  else begin
    drain_check "after the last warp retired";
    Array.iteri
      (fun b ws ->
        if ws <> [] then
          err "barrier %d still has registered waiter(s) after termination" b)
      waiters
  end;
  if !n_problems > 16 then
    err "(%d further problem(s) suppressed)" (!n_problems - 16);
  match List.rev !problems with [] -> Ok () | l -> Error l

(* ---- seeded mutation operators (the verifier's negative tests) ----

   Each operator produces a minimal, provably unsafe perturbation of a
   correct schedule: the rejection test in [test_faults] demands that
   every generated mutant is refused. Operators that need a site the
   schedule does not have (e.g. no CTA barrier with one warp) are
   skipped. *)

type mutant = { label : string; schedule : Schedule.t }

let copy_schedule (s : Schedule.t) =
  {
    s with
    Schedule.per_warp = Array.map Array.copy s.Schedule.per_warp;
    stamps = Array.map Array.copy s.Schedule.stamps;
  }

let sites pred (s : Schedule.t) =
  let out = ref [] in
  Array.iteri
    (fun warp actions ->
      Array.iteri (fun i a -> if pred a then out := (warp, i) :: !out) actions)
    s.Schedule.per_warp;
  Array.of_list (List.rev !out)

let is_arrive = function Schedule.A_arrive _ -> true | _ -> false
let is_wait = function Schedule.A_wait _ -> true | _ -> false
let is_cta = function Schedule.A_cta_barrier -> true | _ -> false

let remove_at (s : Schedule.t) warp i =
  let keep j _ = j <> i in
  s.Schedule.per_warp.(warp) <-
    Array.of_list
      (List.filteri keep (Array.to_list s.Schedule.per_warp.(warp)));
  s.Schedule.stamps.(warp) <-
    Array.of_list (List.filteri keep (Array.to_list s.Schedule.stamps.(warp)))

let insert_at (s : Schedule.t) warp i a =
  let actions = Array.to_list s.Schedule.per_warp.(warp) in
  let stamps = Array.to_list s.Schedule.stamps.(warp) in
  let rec ins j l = if j = 0 then a :: l else List.hd l :: ins (j - 1) (List.tl l) in
  let rec dup j l =
    if j = 0 then List.hd l :: l else List.hd l :: dup (j - 1) (List.tl l)
  in
  s.Schedule.per_warp.(warp) <- Array.of_list (ins i actions);
  s.Schedule.stamps.(warp) <- Array.of_list (dup i stamps)

let mutants ~seed (s : Schedule.t) =
  let rng = Sutil.Prng.create (Int64.of_int seed) in
  let w = Array.length s.Schedule.per_warp in
  let arrives = sites is_arrive s in
  let waits = sites is_wait s in
  let ctas = sites is_cta s in
  let pick a = a.(Sutil.Prng.int rng (Array.length a)) in
  let ops : (string * (unit -> Schedule.t option)) list =
    [
      ( "drop-arrive",
        fun () ->
          if Array.length arrives = 0 then None
          else begin
            let warp, i = pick arrives in
            let m = copy_schedule s in
            remove_at m warp i;
            Some m
          end );
      ( "drop-wait",
        fun () ->
          if Array.length waits = 0 then None
          else begin
            let warp, i = pick waits in
            let m = copy_schedule s in
            remove_at m warp i;
            Some m
          end );
      ( "swap-arrive-bar",
        fun () ->
          if Array.length arrives = 0 then None
          else begin
            let warp, i = pick arrives in
            let m = copy_schedule s in
            (match m.Schedule.per_warp.(warp).(i) with
            | Schedule.A_arrive { bar; count } ->
                let bar' = (bar + 1 + Sutil.Prng.int rng 14) mod 15 in
                let bar' = if bar' = bar then (bar + 1) mod 15 else bar' in
                m.Schedule.per_warp.(warp).(i) <-
                  Schedule.A_arrive { bar = bar'; count }
            | _ -> assert false);
            Some m
          end );
      ( "swap-wait-bar",
        fun () ->
          if Array.length waits = 0 then None
          else begin
            let warp, i = pick waits in
            let m = copy_schedule s in
            (match m.Schedule.per_warp.(warp).(i) with
            | Schedule.A_wait { bar; count } ->
                let bar' = (bar + 1 + Sutil.Prng.int rng 14) mod 15 in
                let bar' = if bar' = bar then (bar + 1) mod 15 else bar' in
                m.Schedule.per_warp.(warp).(i) <-
                  Schedule.A_wait { bar = bar'; count }
            | _ -> assert false);
            Some m
          end );
      ( "dup-arrive",
        fun () ->
          if Array.length arrives = 0 then None
          else begin
            let warp, i = pick arrives in
            let m = copy_schedule s in
            insert_at m warp i m.Schedule.per_warp.(warp).(i);
            Some m
          end );
      ( "inflate-wait-count",
        fun () ->
          if Array.length waits = 0 then None
          else begin
            let warp, i = pick waits in
            let m = copy_schedule s in
            (match m.Schedule.per_warp.(warp).(i) with
            | Schedule.A_wait { bar; count } ->
                m.Schedule.per_warp.(warp).(i) <-
                  Schedule.A_wait { bar; count = count + 1 }
            | _ -> assert false);
            Some m
          end );
      ( "deflate-arrive-count",
        fun () ->
          if Array.length arrives = 0 then None
          else begin
            let warp, i = pick arrives in
            let m = copy_schedule s in
            (match m.Schedule.per_warp.(warp).(i) with
            | Schedule.A_arrive { bar; count } ->
                m.Schedule.per_warp.(warp).(i) <-
                  Schedule.A_arrive { bar; count = count - 1 }
            | _ -> assert false);
            Some m
          end );
      ( "drop-cta-barrier",
        fun () ->
          if w < 2 || Array.length ctas = 0 then None
          else begin
            let warp, i = pick ctas in
            let m = copy_schedule s in
            remove_at m warp i;
            Some m
          end );
      ( "out-of-range-id",
        fun () ->
          if Array.length arrives = 0 then None
          else begin
            let warp, i = pick arrives in
            let m = copy_schedule s in
            (match m.Schedule.per_warp.(warp).(i) with
            | Schedule.A_arrive { count; _ } ->
                m.Schedule.per_warp.(warp).(i) <-
                  Schedule.A_arrive { bar = physical; count }
            | _ -> assert false);
            Some m
          end );
      ( "wait-to-arrive",
        fun () ->
          if Array.length waits = 0 then None
          else begin
            let warp, i = pick waits in
            let m = copy_schedule s in
            (match m.Schedule.per_warp.(warp).(i) with
            | Schedule.A_wait { bar; count } ->
                m.Schedule.per_warp.(warp).(i) <-
                  Schedule.A_arrive { bar; count }
            | _ -> assert false);
            Some m
          end );
      ( "arrive-to-wait",
        fun () ->
          if Array.length arrives = 0 then None
          else begin
            let warp, i = pick arrives in
            let m = copy_schedule s in
            (match m.Schedule.per_warp.(warp).(i) with
            | Schedule.A_arrive { bar; count } ->
                m.Schedule.per_warp.(warp).(i) <-
                  Schedule.A_wait { bar; count }
            | _ -> assert false);
            Some m
          end );
    ]
  in
  List.filter_map
    (fun (label, f) ->
      match f () with Some schedule -> Some { label; schedule } | None -> None)
    ops
