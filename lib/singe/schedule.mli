(** Named-barrier placement and scheduling (§4.2, the third compiler
    stage).

    The scheduler walks the dataflow graph in one topological order and
    builds a per-warp action list. Cross-warp edges become {e sync points};
    linearizing them along the topological walk gives the total order of
    the paper's algorithm, so by Theorem 1 the resulting schedules are
    deadlock-free (the property tests check this by construction and by
    running the simulator's exact deadlock detector on random graphs).

    Two of the paper's optimizations are applied:
    {ul
    {- {e grouping}: a producer's arrival covers every value it has
       produced so far for a given consumer warp, so consecutive sync
       points between the same warp pair collapse into one barrier;}
    {- {e hoisting}: arrivals are inserted at the earliest legal position
       (right after the covered production), overlapping producer and
       consumer work — the non-blocking-arrive pattern of Fig. 2 and the
       QSSA overlap of Fig. 6.}}

    Values whose mapping placement is [P_reg] but which have cross-warp
    consumers travel through a ring of shared-memory {e buffer} slots
    (§4.1's Buffer strategy): a send/arrive on the producer side and a
    wait/receive on the consumer side, with an extra empty-slot barrier
    when a ring slot is reused (the two-barrier scheme of Fig. 2).

    Sync points are finally mapped onto hardware named barrier ids
    (at most [max_barriers], default 8, so two CTAs can still be resident
    per SM — the footnote of §4.2). Because a named barrier is a bare
    arrival counter, an id is never recycled while a previous sync could
    still be in flight: sync points are packed into {e epochs} with unique
    ids, and a CTA-wide barrier closes each epoch, after which every
    counter has provably drained to zero. *)

type action =
  | A_op of int  (** execute a dataflow operation *)
  | A_send of { value : int; slot : int }
      (** store a register value to buffer slot (32 doubles) *)
  | A_recv of { value : int; slot : int }
      (** load a buffer slot into a local register copy *)
  | A_arrive of { bar : int; count : int }
  | A_wait of { bar : int; count : int }
  | A_cta_barrier
      (** closes each point batch: the body loops, and without a CTA-wide
          barrier a fast warp could overwrite shared state before slower
          warps read the previous batch's values *)

type t = {
  per_warp : action array array;
  stamps : int array array;
      (** global emission-order stamp of each action, used by the code
          generator to keep the simultaneous AST traversal aligned *)
  barriers_used : int;
  buffer_slots : int;  (** ring size, in 32-double slots *)
  n_sync_points : int;  (** before barrier allocation *)
}

val build :
  ?buffer_slots:int ->
  ?group_syncs:bool ->
  ?max_barriers:int ->
  Dfg.t ->
  Mapping.t ->
  t
(** [group_syncs:false] disables the grouping optimization (one barrier per
    cross-warp edge) — the ablation of §6.2's barrier-overhead analysis.
    Raises [Failure] if more than [max_barriers] sync points overlap one
    program point (not observed with grouping on). *)

val shared_buffer_base : Mapping.t -> int
(** The buffer region starts right after the store region. *)

val total_shared_doubles : Mapping.t -> t -> int
(** Store region + buffer region (the Fermi broadcast mirror is added by
    lowering). *)

val well_formed : t -> Dfg.t -> Mapping.t -> (unit, string) result
(** Structural invariants: every op appears exactly once, on its mapped
    warp, in a dependency-respecting order; every cross-warp register edge
    has a matching send/recv; arrive/wait counts per barrier id are
    consistent. *)

val pairing_problems : t -> string list
(** Named-barrier producer/consumer pairing, checked per {e use} along
    the global emission-stamp order (the construction's linearization):
    each barrier id's action stream must decompose into consecutive uses
    of [count - 1] arrivals followed by one wait, all agreeing on
    [count]. A single use may span a CTA-wide boundary (the allocator
    keeps in-flight ids across id-pressure boundaries; arrivals always
    precede the wait, so the cut is benign) — but consecutive {e uses}
    of one id must be separated by a boundary past every attachment of
    the earlier use, the condition that drains the hardware counter and
    makes recycling the id safe. Returns one message per violation;
    shared by {!validate} and [Deadlock_check.check]. *)

val validate :
  ?max_barriers:int -> t -> Dfg.t -> Mapping.t -> (unit, string list) result
(** The schedule-safety validation pass: {!well_formed}, plus
    {ul
    {- named-barrier producer/consumer pairing and id-recycling safety
       ({!pairing_problems});}
    {- the §4.2 coloring bound: [barriers_used] of at most [max_barriers]
       (and never beyond the 16 hardware ids);}
    {- transport sanity: send/recv ring slots within [buffer_slots], and
       emission stamps strictly increasing per warp (the overlaying
       invariant).}} *)

val pp_dump : Dfg.t -> Format.formatter -> t -> unit
(** Per-warp action streams with emission stamps — the
    [--dump-ir schedule] output. *)
