(** The memory interface shared by all generated kernels.

    Global field groups (SoA, §3.1). Combustion kernels:
    {ul
    {- ["temperature"], ["pressure"]: one field each;}
    {- ["mole_frac"]: one field per {e computed} species, indexed by
       position in [Mechanism.computed_species];}
    {- ["diffusion_in"]: per computed species, the diffusion outputs
       consumed by the chemistry stiffness phase (Listing 4);}
    {- ["out"]: kernel outputs — 1 field for viscosity and conductivity,
       N for diffusion (Delta_i), N for chemistry (wdot).}}

    Stencil kernels (ROADMAP item 4) use an image-shaped space instead:
    ["image"] with one field per column (each grid point is an independent
    scanline) and ["out"] with the same width. The chemistry groups are
    deliberately absent there. *)

type kernel =
  | Viscosity
  | Conductivity
  | Diffusion
  | Chemistry
  | Stencil of Stencil_pipe.id
(** [Conductivity] is the transport-suite extension kernel (Mathur mixture
    conductivity) — not one of the paper's three evaluation kernels, but
    S3D's getcoeffs computes it alongside viscosity and diffusion.
    [Stencil] kernels are the image-processing workload family; the grid
    temperature seeds their source rows deterministically. *)

val kernel_name : kernel -> string
val kernel_of_string : string -> kernel option

val all_kernels : kernel list
(** Every kernel the driver can compile, chemistry first. *)

val is_stencil : kernel -> bool

val out_fields : Chem.Mechanism.t -> kernel -> int

val groups : Chem.Mechanism.t -> kernel -> Gpusim.Isa.group_info array

val stencil_source :
  Chem.Grid.t -> points:int -> width:int -> float array array
(** Per-point source rows ([rows.(p).(col)]) derived from the grid
    temperature — the image both {!fill_inputs} and {!reference_outputs}
    start from. *)

val fill_inputs :
  Chem.Mechanism.t -> Chem.Grid.t -> kernel -> Gpusim.Isa.program ->
  Gpusim.Memstate.t -> int -> unit
(** Copies the first [n] points of the grid into the input groups (for
    stencil kernels: fills the ["image"] group from the derived source
    rows). Requires the grid to hold at least [n] points. *)

val read_outputs : Gpusim.Isa.program -> Gpusim.Memstate.t -> float array array
(** [out] group contents, one array per field. *)

val reference_outputs :
  Chem.Mechanism.t -> Chem.Grid.t -> kernel -> points:int -> float array array
(** Host-reference results in the same field layout, for comparison.
    Combustion kernels compare against {!Chem.Ref_kernels} (tolerance
    applies); stencil kernels evaluate the pipeline's own [Sexpr] trees
    and match the simulator bit for bit. *)
