type severity = Error | Warning

type t = {
  severity : severity;
  pass : string option;
  loc : string option;
  message : string;
}

exception Fail of t

let error ?pass ?loc message = { severity = Error; pass; loc; message }

let errorf ?pass ?loc fmt =
  Printf.ksprintf (fun message -> error ?pass ?loc message) fmt

let warning ?pass ?loc message = { severity = Warning; pass; loc; message }

let fail ?pass ?loc message = raise (Fail (error ?pass ?loc message))

let failf ?pass ?loc fmt =
  Printf.ksprintf (fun message -> fail ?pass ?loc message) fmt

let of_srcloc ?pass (e : Chem.Srcloc.error) =
  error ?pass
    ?loc:(Chem.Srcloc.loc_string e.Chem.Srcloc.loc)
    (Chem.Srcloc.message_string e)

let to_string d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  let head =
    match d.pass with Some p -> Printf.sprintf "%s[%s]" sev p | None -> sev
  in
  match d.loc with
  | Some l -> Printf.sprintf "%s: %s: %s" head l d.message
  | None -> Printf.sprintf "%s: %s" head d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)
