type severity = Error | Warning

type t = { severity : severity; pass : string option; message : string }

exception Fail of t

let error ?pass message = { severity = Error; pass; message }

let errorf ?pass fmt = Printf.ksprintf (fun message -> error ?pass message) fmt

let warning ?pass message = { severity = Warning; pass; message }

let fail ?pass message = raise (Fail (error ?pass message))

let failf ?pass fmt = Printf.ksprintf (fun message -> fail ?pass message) fmt

let to_string d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  match d.pass with
  | Some p -> Printf.sprintf "%s[%s]: %s" sev p d.message
  | None -> Printf.sprintf "%s: %s" sev d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)
