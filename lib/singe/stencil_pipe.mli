(** Multi-stage 1-D stencil pipeline descriptions (ROADMAP item 4,
    warp-overlapped tiling per arXiv 1909.07190).

    The image is [width] columns wide; each simulated grid point is an
    independent scanline, so columns map to fields of the ["image"] global
    group and halo taps are static field offsets. This module is
    [Chem]-independent: pipelines are pure {!Sexpr} stage descriptions plus
    a host reference evaluator. *)

type stage = {
  stage_name : string;
  radius : int;  (** halo radius; taps are columns [c-r .. c+r], clamped *)
  uses_source : bool;
      (** skip connection: input [2r+1] is the source pixel at column [c] *)
  expr : Sexpr.t;
      (** inputs [In 0 .. In 2r] are the previous stage's taps in column
          order; [In (2r+1)] the source pixel when [uses_source] *)
}

type t = { pipe_name : string; width : int; stages : stage list }

type id = Edge3 | Unsharp2
(** [Edge3]: blur -> gradient-energy -> soft threshold (radii 1,1,0).
    [Unsharp2]: blur -> sharpen-with-source-skip (radii 1,1). *)

val all_ids : id list
val id_name : id -> string
val id_of_string : string -> id option

val get : id -> t

val width : int
(** Columns in every bundled pipeline (= fields of the ["image"] group). *)

val n_stage_inputs : stage -> int
(** [2r + 1], plus one for the source skip. *)

val source_value : temp:float -> col:int -> float
(** Deterministic source pixel for a scanline whose grid temperature is
    [temp]. Used by both the device-side input fill and {!reference}, so
    oracle comparisons start from identical inputs. *)

val clamp_col : w:int -> int -> int
(** Clamp-to-edge column replication. *)

val reference : t -> source:float array -> float array
(** Evaluate the whole pipeline on one scanline with the same [Sexpr]
    trees the DFG carries — bit-identical to the simulated kernel, since
    lowering never reassociates. Raises [Invalid_argument] if the source
    row width mismatches. *)

val pp : Format.formatter -> t -> unit
