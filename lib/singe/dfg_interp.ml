type inputs = {
  temp : float;
  pressure : float;
  mole_frac : float array;
  diffusion : float array;
}

let point_inputs mech grid p =
  let computed = Chem.Mechanism.computed_species mech in
  let full = Chem.Grid.point_mole_fracs grid mech p in
  let diff = Chem.Grid.point_diffusion grid p in
  {
    temp = Chem.Grid.point_temperature grid p;
    pressure = Chem.Grid.point_pressure grid p;
    mole_frac = Array.map (fun sp -> full.(sp)) computed;
    diffusion = Array.map (fun sp -> diff.(sp)) computed;
  }

(* The interpreter is input-layout agnostic: callers supply the load
   environment. Before the stencil frontend existed, the chemistry group
   names were hardwired here (and a store to anything but "out" was an
   [invalid_arg]), so any non-combustion graph crashed the oracle with an
   unpositioned exception. *)
let eval_env (dfg : Dfg.t) ~load =
  let values = Array.make (max 1 (Array.length dfg.Dfg.values)) 0.0 in
  let out = Hashtbl.create 8 in
  Array.iter
    (fun op_id ->
      let op = dfg.Dfg.ops.(op_id) in
      match op.Dfg.kind with
      | Dfg.Load { group; field; _ } ->
          values.(Option.get op.Dfg.output) <- load ~group ~field
      | Dfg.Compute e ->
          let consts = Array.of_list (Sexpr.constants e) in
          let v =
            Sexpr.eval e ~consts ~input:(fun i -> values.(op.Dfg.inputs.(i)))
          in
          values.(Option.get op.Dfg.output) <- v
      | Dfg.Fence -> ()
      | Dfg.Store { group; field } ->
          if group = "out" then Hashtbl.replace out field values.(op.Dfg.inputs.(0))
          else
            Diagnostics.failf ~pass:"dfg-interp" ~loc:dfg.Dfg.graph_name
              "graph %s stores to group %S; the interpreter only captures \
               \"out\""
              dfg.Dfg.graph_name group)
    (Dfg.topo_order dfg);
  out

let chem_load (dfg : Dfg.t) inputs ~group ~field =
  match group with
  | "temperature" -> inputs.temp
  | "pressure" -> inputs.pressure
  | "mole_frac" -> inputs.mole_frac.(field)
  | "diffusion_in" -> inputs.diffusion.(field)
  | other ->
      Diagnostics.failf ~pass:"dfg-interp" ~loc:dfg.Dfg.graph_name
        "graph %s loads group %S, not one of the chemistry input groups \
         (use eval_env with a matching load environment)"
        dfg.Dfg.graph_name other

let eval dfg inputs = eval_env dfg ~load:(chem_load dfg inputs)

let stencil_load (dfg : Dfg.t) ~source ~group ~field =
  match group with
  | "image" ->
      if field < 0 || field >= Array.length source then
        Diagnostics.failf ~pass:"dfg-interp" ~loc:dfg.Dfg.graph_name
          "graph %s loads image column %d, source row has %d"
          dfg.Dfg.graph_name field (Array.length source)
      else source.(field)
  | other ->
      Diagnostics.failf ~pass:"dfg-interp" ~loc:dfg.Dfg.graph_name
        "graph %s loads group %S, not a stencil input group"
        dfg.Dfg.graph_name other

let eval_stencil dfg ~source =
  eval_env dfg ~load:(stencil_load dfg ~source)

let eval_field dfg inputs f =
  let out = eval dfg inputs in
  match Hashtbl.find_opt out f with
  | Some v -> v
  | None -> raise Not_found
