type t =
  | Imm of float
  | C of float
  | In of int
  | Un of Gpusim.Isa.fop * t
  | Bin of Gpusim.Isa.fop * t * t
  | Fma3 of t * t * t
  | Let of t * t
  | Var of int

let let_ def body = Let (def, body)

let add a b = Bin (Gpusim.Isa.Add, a, b)
let sub a b = Bin (Gpusim.Isa.Sub, a, b)
let mul a b = Bin (Gpusim.Isa.Mul, a, b)
let fma a b c = Fma3 (a, b, c)
let div a b = Bin (Gpusim.Isa.Div, a, b)
let sqrt_ a = Un (Gpusim.Isa.Sqrt, a)
let exp_ a = Un (Gpusim.Isa.Exp, a)
let log_ a = Un (Gpusim.Isa.Log, a)
let max_ a b = Bin (Gpusim.Isa.Max, a, b)
let min_ a b = Bin (Gpusim.Isa.Min, a, b)
let neg a = Un (Gpusim.Isa.Neg, a)

let poly3 x ~c0 ~c1 ~c2 ~c3 =
  (* c0 + x*(c1 + x*(c2 + x*c3)) as an FMA chain. *)
  fma (fma (fma (C c3) x (C c2)) x (C c1)) x (C c0)

let sum = function
  | [] -> Imm 0.0
  | [ e ] -> e
  | first :: rest -> List.fold_left add first rest

let dot terms =
  match terms with
  | [] -> Imm 0.0
  | (c0, x0) :: rest ->
      List.fold_left (fun acc (c, x) -> fma (C c) x acc) (mul (C c0) x0) rest

let rec n_inputs = function
  | Imm _ | C _ | Var _ -> 0
  | In i -> i + 1
  | Un (_, a) -> n_inputs a
  | Bin (_, a, b) -> max (n_inputs a) (n_inputs b)
  | Fma3 (a, b, c) -> max (n_inputs a) (max (n_inputs b) (n_inputs c))
  | Let (d, b) -> max (n_inputs d) (n_inputs b)

let constants e =
  let acc = ref [] in
  let rec go = function
    | Imm _ | In _ | Var _ -> ()
    | C v -> acc := v :: !acc
    | Un (_, a) -> go a
    | Bin (_, a, b) ->
        go a;
        go b
    | Fma3 (a, b, c) ->
        go a;
        go b;
        go c
    | Let (d, b) ->
        go d;
        go b
  in
  go e;
  List.rev !acc

let n_constants e = List.length (constants e)

let shape e =
  let buf = Buffer.create 64 in
  let op_code (op : Gpusim.Isa.fop) =
    match op with
    | Gpusim.Isa.Add -> '+'
    | Gpusim.Isa.Sub -> '-'
    | Gpusim.Isa.Mul -> '*'
    | Gpusim.Isa.Fma -> 'f'
    | Gpusim.Isa.Div -> '/'
    | Gpusim.Isa.Sqrt -> 'q'
    | Gpusim.Isa.Exp -> 'e'
    | Gpusim.Isa.Log -> 'l'
    | Gpusim.Isa.Max -> 'M'
    | Gpusim.Isa.Min -> 'm'
    | Gpusim.Isa.Neg -> 'n'
  in
  let rec go = function
    | Imm v -> Buffer.add_string buf (Printf.sprintf "#%h" v)
    | C _ -> Buffer.add_char buf 'C'
    | In i -> Buffer.add_string buf (Printf.sprintf "I%d" i)
    | Var i -> Buffer.add_string buf (Printf.sprintf "V%d" i)
    | Let (d, b) ->
        Buffer.add_string buf "L(";
        go d;
        Buffer.add_char buf ',';
        go b;
        Buffer.add_char buf ')'
    | Un (op, a) ->
        Buffer.add_char buf (op_code op);
        Buffer.add_char buf '(';
        go a;
        Buffer.add_char buf ')'
    | Bin (op, a, b) ->
        Buffer.add_char buf (op_code op);
        Buffer.add_char buf '(';
        go a;
        Buffer.add_char buf ',';
        go b;
        Buffer.add_char buf ')'
    | Fma3 (a, b, c) ->
        Buffer.add_string buf "F(";
        go a;
        Buffer.add_char buf ',';
        go b;
        Buffer.add_char buf ',';
        go c;
        Buffer.add_char buf ')'
  in
  go e;
  Buffer.contents buf

let rec flops = function
  | Imm _ | C _ | In _ | Var _ -> 0
  | Let (d, b) -> flops d + flops b
  | Un (op, a) -> Gpusim.Isa.fop_flops op + flops a
  | Bin (op, a, b) -> Gpusim.Isa.fop_flops op + flops a + flops b
  | Fma3 (a, b, c) -> 2 + flops a + flops b + flops c

let rec depth = function
  | Imm _ | C _ | In _ | Var _ -> 0
  | Let (d, b) -> max (1 + depth d) (depth b)
  | Un (_, a) -> 1 + depth a
  | Bin (_, a, b) -> 1 + max (depth a) (depth b)
  | Fma3 (a, b, c) -> 1 + max (depth a) (max (depth b) (depth c))

let eval e ~consts ~input =
  let next_const = ref 0 in
  let rec go env = function
    | Imm v -> v
    | C _ ->
        let v = consts.(!next_const) in
        incr next_const;
        v
    | In i -> input i
    | Var i -> (
        match List.nth_opt env i with
        | Some v -> v
        | None ->
            Diagnostics.failf ~pass:"sexpr-eval"
              "malformed expression: Var %d with only %d let-binding(s) in \
               scope"
              i (List.length env))
    | Let (d, b) ->
        let vd = go env d in
        go (vd :: env) b
    | Un (op, a) ->
        let va = go env a in
        (match op with
        | Gpusim.Isa.Sqrt -> sqrt va
        | Gpusim.Isa.Exp -> exp va
        | Gpusim.Isa.Log -> log va
        | Gpusim.Isa.Neg -> -.va
        | _ -> invalid_arg "eval: non-unary op in Un")
    | Bin (op, a, b) ->
        let va = go env a in
        let vb = go env b in
        (match op with
        | Gpusim.Isa.Add -> va +. vb
        | Gpusim.Isa.Sub -> va -. vb
        | Gpusim.Isa.Mul -> va *. vb
        | Gpusim.Isa.Div -> va /. vb
        | Gpusim.Isa.Max -> Float.max va vb
        | Gpusim.Isa.Min -> Float.min va vb
        | _ -> invalid_arg "eval: non-binary op in Bin")
    | Fma3 (a, b, c) ->
        let va = go env a in
        let vb = go env b in
        let vc = go env c in
        Float.fma va vb vc
  in
  go [] e

let rec pp ppf = function
  | Imm v -> Format.fprintf ppf "%g" v
  | Var i -> Format.fprintf ppf "v%d" i
  | Let (d, b) -> Format.fprintf ppf "let %a in %a" pp d pp b
  | C v -> Format.fprintf ppf "c(%g)" v
  | In i -> Format.fprintf ppf "$%d" i
  | Un (op, a) -> Format.fprintf ppf "%s(%a)" (op_name op) pp a
  | Bin (op, a, b) -> Format.fprintf ppf "%s(%a, %a)" (op_name op) pp a pp b
  | Fma3 (a, b, c) -> Format.fprintf ppf "fma(%a, %a, %a)" pp a pp b pp c

and op_name (op : Gpusim.Isa.fop) =
  match op with
  | Gpusim.Isa.Add -> "add"
  | Gpusim.Isa.Sub -> "sub"
  | Gpusim.Isa.Mul -> "mul"
  | Gpusim.Isa.Fma -> "fma"
  | Gpusim.Isa.Div -> "div"
  | Gpusim.Isa.Sqrt -> "sqrt"
  | Gpusim.Isa.Exp -> "exp"
  | Gpusim.Isa.Log -> "log"
  | Gpusim.Isa.Max -> "max"
  | Gpusim.Isa.Min -> "min"
  | Gpusim.Isa.Neg -> "neg"
