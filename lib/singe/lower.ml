type const_policy = Bank | Const_mem | Immediate

type config = {
  arch : Gpusim.Arch.t;
  overlay : bool;
  const_policy : const_policy;
  exp_consts_in_registers : bool;
  param_stripe_threshold : int;
  freg_budget : int;
  synth_exchange : bool;
}

type output = {
  program : Gpusim.Isa.program;
  n_spill_slots : int;
  spill_bytes_per_thread : int;
  n_bank_regs : int;
  n_params : int;
  n_logical_consts : int;
  exchange : Shuffle_synth.report;
}

module Isa = Gpusim.Isa

(* ---- virtual IR ---- *)

type vshaddr = {
  vs_base : int;
  vs_lane : bool;
  vs_warp : bool;  (** add the warp id (broadcast mirror) *)
  vs_param : int option;  (** logical parameter id *)
}

type vsrc =
  | Vreg of int
  | Vimm of float
  | Vconst_mem of int
  | Vconst_warp of int  (** warp-strided constant memory base *)
  | Vshared of vshaddr
  | Vbank of int  (** logical constant id, read from its bank register *)

type vfield = VF_static of int | VF_param of int

type vinstr =
  | VArith of { op : Isa.fop; dst : int; srcs : vsrc array; pred : Isa.pred option }
  | VLdG of { dst : int; group : int; field : vfield; via_tex : bool }
  | VStG of { src : vsrc; group : int; field : vfield }
  | VLdS of { dst : int; addr : vshaddr }
  | VStS of { src : vsrc; addr : vshaddr; pred : Isa.pred option }
  | VBcast of { dst : int; logical : int }
      (** Kepler: shuffle broadcast of a banked constant into a register *)
  | VSwz of { dst : int; src : int; step : Shuffle_synth.step }
      (** one step of a synthesized lane-permutation program replacing a
          shared-memory exchange ([--synth-exchange]) *)
  | VBarA of { bar : int; count : int }
  | VBarW of { bar : int; count : int }
  | VBarCta

(* ---- growable tables for logical constants and parameters ---- *)

type tables = {
  mutable consts : float array list;  (** newest first; per-warp values *)
  mutable n_consts : int;
  const_cache : (string, int) Hashtbl.t;
  mutable params : int array list;
  mutable n_params : int;
  param_cache : (string, int * int array) Hashtbl.t;
  mutable const_mem_rev : float list;
  mutable n_const_mem : int;
  const_mem_cache : (float, int) Hashtbl.t;
  n_warps : int;
}

let fresh_tables n_warps =
  {
    consts = [];
    n_consts = 0;
    const_cache = Hashtbl.create 64;
    params = [];
    n_params = 0;
    param_cache = Hashtbl.create 64;
    const_mem_rev = [];
    n_const_mem = 0;
    const_mem_cache = Hashtbl.create 64;
    n_warps;
  }

let vector_key v =
  String.concat "," (Array.to_list (Array.map (Printf.sprintf "%h") v))

let alloc_const tables (values : float array) =
  let key = vector_key values in
  match Hashtbl.find_opt tables.const_cache key with
  | Some id -> id
  | None ->
      let id = tables.n_consts in
      tables.consts <- values :: tables.consts;
      tables.n_consts <- id + 1;
      Hashtbl.add tables.const_cache key id;
      id

(* Parameter with per-warp integer values; vectors equal up to a constant
   offset share one slot (the offset folds into the static base). Returns
   (logical id, base offset). [exact] forbids offset folding — global field
   selectors have no place to carry a base. *)
let alloc_param ?(exact = false) tables ~mask (values : int array) =
  let ws =
    List.filter (fun w -> mask land (1 lsl w) <> 0)
      (List.init tables.n_warps Fun.id)
  in
  let w0 = List.hd ws in
  let norm =
    List.map (fun w -> values.(w) - values.(w0)) ws
    |> List.map string_of_int |> String.concat ","
  in
  let key =
    if exact then Printf.sprintf "x%x|%d|%s" mask values.(w0) norm
    else Printf.sprintf "%x|%s" mask norm
  in
  match Hashtbl.find_opt tables.param_cache key with
  | Some (id, base_values) ->
      let offset = values.(w0) - base_values.(w0) in
      assert ((not exact) || offset = 0);
      (id, offset)
  | None ->
      let id = tables.n_params in
      tables.params <- Array.copy values :: tables.params;
      tables.n_params <- id + 1;
      Hashtbl.add tables.param_cache key (id, Array.copy values);
      (id, 0)

let alloc_const_mem tables v =
  match Hashtbl.find_opt tables.const_mem_cache v with
  | Some s -> s
  | None ->
      let s = tables.n_const_mem in
      tables.const_mem_rev <- v :: tables.const_mem_rev;
      tables.n_const_mem <- s + 1;
      Hashtbl.add tables.const_mem_cache v s;
      s

(* ---- statement shapes for overlay grouping ---- *)

type ctx = {
  cfg : config;
  dfg : Dfg.t;
  mapping : Mapping.t;
  tables : tables;
  groups : Isa.group_info array;
  vreg_of : (int * int, int) Hashtbl.t;  (** (warp, value) -> vreg *)
  mutable next_vreg : int;
  mutable out_rev : (int * vinstr) list;  (** (mask, instr), newest first *)
  full_mask : int;
  buffer_base : int;
  mirror_base : int;
  mutable mirror_rot : int;
      (** rotating mirror slot so several broadcast constants can be live
          in one instruction (up to the 3-operand maximum) *)
  bank_cap : int;
      (** logical constants that fit the register bank; the rest overflow
          to a per-warp shared-memory constant region *)
  overflow_base : int;  (** shared address of that region *)
}

let ctx_group ctx name =
  let found = ref (-1) in
  Array.iteri
    (fun i (g : Isa.group_info) ->
      if !found < 0 && g.Isa.group_name = name then found := i)
    ctx.groups;
  if !found < 0 then invalid_arg ("lower: unknown field group " ^ name);
  !found

let fresh_vreg ctx =
  let v = ctx.next_vreg in
  ctx.next_vreg <- v + 1;
  v

let emit ctx mask i = ctx.out_rev <- (mask, i) :: ctx.out_rev

(* Total replacement for the raw [Hashtbl.find ctx.vreg_of]: a missing
   binding means the schedule consumed a value a warp never produced or
   received, and that must surface as a diagnostic naming the warp and
   value, not as an anonymous [Not_found] escaping the pipeline. *)
let vreg_find ctx ~what ~warp value =
  match Hashtbl.find_opt ctx.vreg_of (warp, value) with
  | Some r -> r
  | None ->
      Diagnostics.failf ~pass:"lower"
        "%s: dfg value %d is not in a register for warp %d (consumed \
         before any compute/load/recv produced it there)"
        what value warp

(* Source class of an op input as seen by one warp: shared-placed values
   are always read from shared memory (uniform across warps); register
   values must already have a local copy. *)
let src_class ctx warp v =
  if v < 0 || v >= Array.length ctx.mapping.Mapping.value_place then
    Diagnostics.failf ~pass:"lower"
      "schedule references dfg value %d outside the graph (%d values)" v
      (Array.length ctx.mapping.Mapping.value_place);
  match ctx.mapping.Mapping.value_place.(v) with
  | Mapping.P_shared -> "S"
  | Mapping.P_reg -> (
      match Hashtbl.find_opt ctx.vreg_of (warp, v) with
      | Some r -> Printf.sprintf "R%d" r
      | None ->
          Diagnostics.failf ~pass:"lower"
            "warp %d reads value %s (%d) with no register copy in scope" warp
            ctx.dfg.Dfg.values.(v).Dfg.vname v)

let action_key ctx warp (a : Schedule.action) =
  match a with
  | Schedule.A_op op_id -> (
      let op = ctx.dfg.Dfg.ops.(op_id) in
      (* The destination's placement is part of the shape: a group must
         either store its results to shared memory or keep them in
         registers uniformly. *)
      let out_place =
        match op.Dfg.output with
        | None -> "-"
        | Some v -> (
            match ctx.mapping.Mapping.value_place.(v) with
            | Mapping.P_shared -> "S"
            | Mapping.P_reg -> "R")
      in
      let tag = match op.Dfg.align with Some a -> a ^ "|" | None -> "" in
      match op.Dfg.kind with
      | Dfg.Fence -> "fence"
      | Dfg.Load { group; via_tex; _ } ->
          Printf.sprintf "%sld:%s:%b:%s" tag group via_tex out_place
      | Dfg.Store { group; _ } ->
          Printf.sprintf "%sst:%s:%s" tag group (src_class ctx warp op.Dfg.inputs.(0))
      | Dfg.Compute e ->
          let sig_ =
            Array.to_list op.Dfg.inputs
            |> List.map (src_class ctx warp)
            |> String.concat ","
          in
          Printf.sprintf "%sc:%s:%s:%s" tag (Sexpr.shape e) sig_ out_place)
  | Schedule.A_send { value; _ } ->
      Printf.sprintf "snd:%s" (src_class ctx warp value)
  | Schedule.A_recv _ -> "rcv"
  | Schedule.A_arrive { bar; count } -> Printf.sprintf "ba:%d:%d" bar count
  | Schedule.A_wait { bar; count } -> Printf.sprintf "bw:%d:%d" bar count
  | Schedule.A_cta_barrier -> "cta"

(* ---- constant materialization ---- *)

(* Emit whatever is needed to use a bankable constant whose per-warp values
   are [values] (entries of warps outside [ws] are padding); returns the
   operand. *)
let const_operand ctx ~mask ~ws (values : float array) =
  let w0 = List.hd ws in
  let all_equal = List.for_all (fun w -> values.(w) = values.(w0)) ws in
  match ctx.cfg.const_policy with
  | Immediate -> Vimm values.(w0) (* naive mode lowers warps one at a time *)
  | Const_mem ->
      if not all_equal then
        invalid_arg "lower: per-warp constants under the Const_mem policy";
      Vconst_mem (alloc_const_mem ctx.tables values.(w0))
  | Bank ->
      if all_equal then Vimm values.(w0)
      else begin
        let logical = alloc_const ctx.tables values in
        if logical >= ctx.bank_cap then
          (* Register bank exhausted: the constant overflows to constant
             memory, one slot per warp, reached by dynamic (warp-strided)
             constant addressing through the constant cache. *)
          Vconst_warp ((logical - ctx.bank_cap) * ctx.mapping.Mapping.n_warps)
        else
        match ctx.cfg.arch.Gpusim.Arch.broadcast with
        | Gpusim.Arch.Shuffle ->
            let dst = fresh_vreg ctx in
            emit ctx mask (VBcast { dst; logical });
            Vreg dst
        | Gpusim.Arch.Shared_mirror ->
            (* Listing 2: the owning lane writes the warp's mirror slot and
               the whole warp reads it back. The value is materialized into
               a register at once — an expression may hold many broadcast
               constants live, more than the small mirror rotation could
               keep distinct as raw operands. *)
            let rot = ctx.mirror_rot in
            ctx.mirror_rot <- (rot + 1) mod 4;
            let addr =
              { vs_base = ctx.mirror_base + (rot * ctx.mapping.Mapping.n_warps);
                vs_lane = false; vs_warp = true; vs_param = None }
            in
            emit ctx mask
              (VStS
                 { src = Vbank logical; addr;
                   pred = Some (Isa.Lane_eq (logical mod 32)) });
            let dst = fresh_vreg ctx in
            emit ctx mask (VLdS { dst; addr });
            Vreg dst
      end

(* Shared address whose base may differ per warp: returns a vshaddr using a
   parameter when needed. [addrs] gives the base per warp (entries of warps
   outside [mask] are ignored). *)
let shared_operand ctx ~mask ~(addrs : int array) ~lane =
  let ws =
    List.filter (fun w -> mask land (1 lsl w) <> 0)
      (List.init ctx.mapping.Mapping.n_warps Fun.id)
  in
  let w0 = List.hd ws in
  let uniform = List.for_all (fun w -> addrs.(w) = addrs.(w0)) ws in
  if uniform then
    { vs_base = addrs.(w0); vs_lane = lane; vs_warp = false; vs_param = None }
  else begin
    let id, base = alloc_param ctx.tables ~mask addrs in
    { vs_base = base; vs_lane = lane; vs_warp = false; vs_param = Some id }
  end

(* ---- expression lowering for a group of warps ---- *)

let lower_compute ctx ~mask ~(ws : int list) ~(ops : Dfg.op array) =
  (* ops.(k) is the op of ws.(k); all share one expression shape. *)
  let w0_op = ops.(0) in
  let expr = match w0_op.Dfg.kind with Dfg.Compute e -> e | _ -> assert false in
  let n_warps = ctx.mapping.Mapping.n_warps in
  (* Per-warp constant queues, in canonical traversal order. *)
  let const_queues =
    Array.map (fun (op : Dfg.op) -> ref (Dfg.op_constants op)) ops
  in
  let pop_consts () =
    let values = Array.make n_warps 0.0 in
    List.iteri
      (fun k w ->
        match !(const_queues.(k)) with
        | v :: rest ->
            values.(w) <- v;
            const_queues.(k) := rest
        | [] -> assert false)
      ws;
    values
  in
  (* Resolve input position [i] to an operand. *)
  let input_operand i =
    let v0 = ops.(0).Dfg.inputs.(i) in
    match ctx.mapping.Mapping.value_place.(v0) with
    | Mapping.P_reg ->
        (* Same vreg across the group by the grouping key. *)
        Vreg (vreg_find ctx ~what:"compute input" ~warp:(List.hd ws) v0)
    | Mapping.P_shared ->
        let addrs = Array.make n_warps 0 in
        List.iteri
          (fun k w ->
            addrs.(w) <- Mapping.store_addr ctx.mapping ops.(k).Dfg.inputs.(i))
          ws;
        Vshared (shared_operand ctx ~mask ~addrs ~lane:true)
  in
  let rec go env (e : Sexpr.t) =
    match e with
    | Sexpr.Imm v -> Vimm v
    | Sexpr.C _ -> const_operand ctx ~mask ~ws (pop_consts ())
    | Sexpr.In i -> input_operand i
    | Sexpr.Var i -> (
        match List.nth_opt env i with
        | Some v -> v
        | None ->
            Diagnostics.failf ~pass:"lower"
              "expression for warp %d references let-variable %d with only \
               %d binding(s) in scope"
              (List.hd ws) i (List.length env))
    | Sexpr.Let (d, b) ->
        let sd = go env d in
        go (sd :: env) b
    | Sexpr.Un (op, a) ->
        let sa = go env a in
        let dst = fresh_vreg ctx in
        emit ctx mask (VArith { op; dst; srcs = [| sa |]; pred = None });
        Vreg dst
    | Sexpr.Bin (op, a, b) ->
        let sa = go env a in
        let sb = go env b in
        let dst = fresh_vreg ctx in
        emit ctx mask (VArith { op; dst; srcs = [| sa; sb |]; pred = None });
        Vreg dst
    | Sexpr.Fma3 (a, b, c) ->
        let sa = go env a in
        let sb = go env b in
        let sc = go env c in
        let dst = fresh_vreg ctx in
        emit ctx mask
          (VArith { op = Isa.Fma; dst; srcs = [| sa; sb; sc |]; pred = None });
        Vreg dst
  in
  let result = go [] expr in
  (* Normalize the result into a register. *)
  let result_reg =
    match result with
    | Vreg r -> r
    | other ->
        let dst = fresh_vreg ctx in
        emit ctx mask
          (VArith { op = Isa.Add; dst; srcs = [| other; Vimm 0.0 |]; pred = None });
        dst
  in
  let out_v k = match ops.(k).Dfg.output with Some v -> v | None -> assert false in
  (match ctx.mapping.Mapping.value_place.(out_v 0) with
  | Mapping.P_shared ->
      let addrs = Array.make n_warps 0 in
      List.iteri
        (fun k w -> addrs.(w) <- Mapping.store_addr ctx.mapping (out_v k))
        ws;
      let addr = shared_operand ctx ~mask ~addrs ~lane:true in
      emit ctx mask (VStS { src = Vreg result_reg; addr; pred = None })
  | Mapping.P_reg ->
      List.iteri
        (fun k w -> Hashtbl.replace ctx.vreg_of (w, out_v k) result_reg)
        ws)

let lower_action_group ctx ~mask ~(ws : int list)
    ~(actions : Schedule.action array) =
  let n_warps = ctx.mapping.Mapping.n_warps in
  match actions.(0) with
  | Schedule.A_op _ -> (
      let ops =
        Array.map
          (function Schedule.A_op id -> ctx.dfg.Dfg.ops.(id) | _ -> assert false)
          actions
      in
      match ops.(0).Dfg.kind with
      | Dfg.Fence -> ()
      | Dfg.Compute _ -> lower_compute ctx ~mask ~ws ~ops
      | Dfg.Load { group = _; via_tex; _ } ->
          let fields = Array.make n_warps 0 in
          let group_id = ref 0 in
          List.iteri
            (fun k w ->
              match ops.(k).Dfg.kind with
              | Dfg.Load { field; group = _; _ } ->
                  fields.(w) <- field;
                  ignore group_id
              | _ -> assert false)
            ws;
          let group_name =
            match ops.(0).Dfg.kind with
            | Dfg.Load { group; _ } -> group
            | _ -> assert false
          in
          let group = ctx_group ctx group_name in
          let w0 = List.hd ws in
          let uniform = List.for_all (fun w -> fields.(w) = fields.(w0)) ws in
          let field =
            if uniform then VF_static fields.(w0)
            else VF_param (fst (alloc_param ~exact:true ctx.tables ~mask fields))
          in
          let dst = fresh_vreg ctx in
          emit ctx mask (VLdG { dst; group; field; via_tex });
          let out_v k =
            match ops.(k).Dfg.output with Some v -> v | None -> assert false
          in
          (match ctx.mapping.Mapping.value_place.(out_v 0) with
          | Mapping.P_shared ->
              let addrs = Array.make n_warps 0 in
              List.iteri
                (fun k w -> addrs.(w) <- Mapping.store_addr ctx.mapping (out_v k))
                ws;
              let addr = shared_operand ctx ~mask ~addrs ~lane:true in
              emit ctx mask (VStS { src = Vreg dst; addr; pred = None })
          | Mapping.P_reg ->
              List.iteri
                (fun k w -> Hashtbl.replace ctx.vreg_of (w, out_v k) dst)
                ws)
      | Dfg.Store { group = group_name; _ } ->
          let fields = Array.make n_warps 0 in
          List.iteri
            (fun k w ->
              match ops.(k).Dfg.kind with
              | Dfg.Store { field; _ } -> fields.(w) <- field
              | _ -> assert false)
            ws;
          let group = ctx_group ctx group_name in
          let w0 = List.hd ws in
          let uniform = List.for_all (fun w -> fields.(w) = fields.(w0)) ws in
          let field =
            if uniform then VF_static fields.(w0)
            else VF_param (fst (alloc_param ~exact:true ctx.tables ~mask fields))
          in
          let src =
            let v0 = ops.(0).Dfg.inputs.(0) in
            match ctx.mapping.Mapping.value_place.(v0) with
            | Mapping.P_reg ->
                Vreg (vreg_find ctx ~what:"store source" ~warp:w0 v0)
            | Mapping.P_shared ->
                let addrs = Array.make n_warps 0 in
                List.iteri
                  (fun k w ->
                    addrs.(w) <-
                      Mapping.store_addr ctx.mapping ops.(k).Dfg.inputs.(0))
                  ws;
                Vshared (shared_operand ctx ~mask ~addrs ~lane:true)
          in
          emit ctx mask (VStG { src; group; field }))
  | Schedule.A_send _ ->
      let addrs = Array.make n_warps 0 in
      let src = ref (Vimm 0.0) in
      List.iteri
        (fun k w ->
          match actions.(k) with
          | Schedule.A_send { value; slot } ->
              addrs.(w) <- ctx.buffer_base + (slot * 32);
              src := Vreg (vreg_find ctx ~what:"send value" ~warp:w value)
          | _ -> assert false)
        ws;
      let addr = shared_operand ctx ~mask ~addrs ~lane:true in
      emit ctx mask (VStS { src = !src; addr; pred = None })
  | Schedule.A_recv _ ->
      let addrs = Array.make n_warps 0 in
      List.iteri
        (fun k w ->
          match actions.(k) with
          | Schedule.A_recv { slot; _ } -> addrs.(w) <- ctx.buffer_base + (slot * 32)
          | _ -> assert false)
        ws;
      let addr = shared_operand ctx ~mask ~addrs ~lane:true in
      let dst = fresh_vreg ctx in
      emit ctx mask (VLdS { dst; addr });
      List.iteri
        (fun k w ->
          match actions.(k) with
          | Schedule.A_recv { value; _ } ->
              Hashtbl.replace ctx.vreg_of (w, value) dst
          | _ -> assert false)
        ws
  | Schedule.A_arrive { bar; count } -> emit ctx mask (VBarA { bar; count })
  | Schedule.A_wait { bar; count } -> emit ctx mask (VBarW { bar; count })
  | Schedule.A_cta_barrier -> emit ctx mask VBarCta

(* ---- overlay driver: simultaneous traversal of the per-warp streams ---- *)

let is_sync_action = function
  | Schedule.A_op _ | Schedule.A_cta_barrier -> false
  | Schedule.A_send _ | Schedule.A_recv _ | Schedule.A_arrive _
  | Schedule.A_wait _ ->
      true

let run_overlay ctx (sched : Schedule.t) =
  let n = ctx.mapping.Mapping.n_warps in
  let ptr = Array.make n 0 in
  let remaining w = ptr.(w) < Array.length sched.Schedule.per_warp.(w) in
  let next w = sched.Schedule.per_warp.(w).(ptr.(w)) in
  let continue = ref true in
  while !continue do
    (* Priorities keep the simultaneous traversal aligned (the paper's
       footnote on standardizing names to avoid false AST differences):
       named-barrier traffic is drained eagerly, and CTA barriers are
       rendezvous points — a warp parked on one waits until every live
       warp reaches its own, producing a single unmasked bar.cta. *)
    let at_cta w = remaining w && next w = Schedule.A_cta_barrier in
    let live w = remaining w && not (at_cta w) in
    let best = ref (-1) in
    for w = 0 to n - 1 do
      if live w && is_sync_action (next w) then
        if
          !best < 0
          || sched.Schedule.stamps.(w).(ptr.(w))
             < sched.Schedule.stamps.(!best).(ptr.(!best))
        then best := w
    done;
    if !best < 0 then begin
      for w = 0 to n - 1 do
        if
          live w
          && (!best < 0
             || sched.Schedule.stamps.(w).(ptr.(w))
                < sched.Schedule.stamps.(!best).(ptr.(!best)))
        then best := w
      done
    end;
    if !best < 0 then begin
      (* No warp can proceed without crossing a CTA barrier. *)
      let parked = List.filter at_cta (List.init n Fun.id) in
      match parked with
      | [] -> continue := false
      | ws ->
          let mask = List.fold_left (fun m w -> m lor (1 lsl w)) 0 ws in
          emit ctx mask VBarCta;
          List.iter (fun w -> ptr.(w) <- ptr.(w) + 1) ws
    end
    else begin
      let w0 = !best in
      let key0 = action_key ctx w0 (next w0) in
      let ws =
        List.filter
          (fun w -> live w && action_key ctx w (next w) = key0)
          (List.init n Fun.id)
      in
      let mask = List.fold_left (fun m w -> m lor (1 lsl w)) 0 ws in
      let actions = Array.of_list (List.map next ws) in
      (match Sys.getenv_opt "SINGE_DEBUG_OVERLAY" with
      | Some _ ->
          let fronts =
            String.concat " "
              (List.map
                 (fun w ->
                   if not (remaining w) then "-"
                   else
                     match next w with
                     | Schedule.A_op o -> "o" ^ string_of_int o
                     | Schedule.A_send _ -> "s"
                     | Schedule.A_recv _ -> "r"
                     | Schedule.A_arrive { bar; _ } -> "a" ^ string_of_int bar
                     | Schedule.A_wait { bar; _ } -> "w" ^ string_of_int bar
                     | Schedule.A_cta_barrier -> "C")
                 (List.init n Fun.id))
          in
          Printf.eprintf "group mask=%x key=%s fronts=[%s]\n" mask (String.sub key0 0 (min 30 (String.length key0))) fronts
      | None -> ());
      lower_action_group ctx ~mask ~ws ~actions;
      List.iter (fun w -> ptr.(w) <- ptr.(w) + 1) ws
    end
  done

(* ---- register allocation (Belady furthest-next-use with spilling) ---- *)

let src_vregs srcs =
  Array.to_list srcs
  |> List.filter_map (function Vreg v -> Some v | _ -> None)

let instr_src_vregs = function
  | VArith { srcs; _ } -> src_vregs srcs
  | VStG { src; _ } | VStS { src; _ } -> src_vregs [| src |]
  | VSwz { src; _ } -> [ src ]
  | VLdG _ | VLdS _ | VBcast _ | VBarA _ | VBarW _ | VBarCta -> []

let instr_dst = function
  | VArith { dst; _ } | VLdG { dst; _ } | VLdS { dst; _ } | VBcast { dst; _ }
  | VSwz { dst; _ } ->
      Some dst
  | VStG _ | VStS _ | VBarA _ | VBarW _ | VBarCta -> None

(* ---- shuffle-exchange synthesis (the [--synth-exchange] rewrite) ----

   DESIGN §14. A shared-memory read whose bytes were written by the same
   warp is a warp-internal lane permutation in disguise: the §5 exchange
   stores lane-striped from registers, so reading the slot back in the
   producing warp only shuffles (here: copies) lanes of a register the
   warp still holds. This pass walks the merged overlay stream — stream
   order is per-warp program order, so a same-warp store/read pair whose
   addresses have a unique static writer is ordered without any barrier
   reasoning, across CTA barriers and across body iterations alike. For
   each shared read it extracts the lane-communication pattern, asks
   {!Shuffle_synth} for a register-only swizzle program, and keeps the
   rewrite when the cost model does: identity patterns forward the stored
   register directly (a free register read), non-identity patterns insert
   a [VSwz] chain — gated to the [Shuffle] broadcast style, since the
   swizzles are shuffle instructions the mirror-based architectures lack.
   Stores whose every written address loses its last reader become dead
   and are deleted, and store-region slots left untouched are compacted
   out (regions above shift down), shrinking the CTA's shared
   footprint. *)

type swriter = {
  sw_pos : int;  (** position of the store in the stream *)
  sw_warp : int;
  sw_src : vsrc;
  sw_lane : int;  (** source lane resident at this address, [-1] unknown *)
}

let warps_of_mask ~n_warps mask =
  List.filter (fun w -> mask land (1 lsl w) <> 0) (List.init n_warps Fun.id)

(* How far (in stream positions) a forward may extend a live range before
   the pressure gate refuses it. Derived from the register file instead of
   a magic constant. Two terms:
   {ul
   {- a base window of [12 * freg_budget]: each forward keeps one extra
      value live, so extensions shorter than a few turnovers of the
      per-thread file stay a small fraction of total pressure — even a
      spill-bound kernel (the chemistry shape) pays at most one extra
      spill pair per forward, still cheaper than the shared round trip
      the forward replaces;}
   {- a headroom bonus of [8 * (freg_budget - steady)]: when the
      mapping's steady-state demand — the busiest warp's produced values
      ([Mapping.warp_values]) spread over the fence segments they stay
      live across — leaves real headroom, the extension is free and the
      window widens proportionally.}}
   A Fermi-class file (budget ~24 doubles) thus gets a ~290-position
   window where a Kepler-class one gets ~670+, instead of both
   inheriting a Kepler-calibrated 200. *)
let derived_live_slack ~freg_budget (dfg : Dfg.t) (mapping : Mapping.t) =
  let values = Mapping.warp_values dfg mapping in
  let peak = Array.fold_left max 0 values in
  let segments =
    1
    + Array.fold_left
        (fun acc (op : Dfg.op) ->
          if op.Dfg.kind = Dfg.Fence then acc + 1 else acc)
        0 dfg.Dfg.ops
  in
  let steady = (peak + segments - 1) / segments in
  (12 * freg_budget) + (8 * max 0 (freg_budget - steady))

let synth_exchange_pass ~(arch : Gpusim.Arch.t) ~n_warps ~store_limit
    ~live_slack tables (code : (int * vinstr) list) =
  (* Snapshot before compaction allocates fresh parameters below. *)
  let params_arr = Array.of_list (List.rev tables.params) in
  let resolve_base (a : vshaddr) w =
    a.vs_base
    + (if a.vs_warp then w else 0)
    + (match a.vs_param with Some id -> params_arr.(id).(w) | None -> 0)
  in
  let code = Array.of_list code in
  (* 1. Writer catalog: absolute shared double address -> static writers,
     over the whole body. Forwarding demands a unique writer, which makes
     it immune to slot recycling and to the body re-executing per pass. *)
  let writers : (int, swriter list ref) Hashtbl.t = Hashtbl.create 256 in
  let add_writer addr wr =
    match Hashtbl.find_opt writers addr with
    | Some l -> l := wr :: !l
    | None -> Hashtbl.add writers addr (ref [ wr ])
  in
  Array.iteri
    (fun pos (mask, ins) ->
      match ins with
      | VStS { src; addr; pred } ->
          List.iter
            (fun w ->
              let b = resolve_base addr w in
              let cells =
                if addr.vs_lane then
                  match pred with
                  | None -> List.init 32 (fun l -> (b + l, l))
                  | Some (Isa.Lane_eq k) -> [ (b + k, k) ]
                  | Some (Isa.Lane_lt n) -> List.init n (fun l -> (b + l, l))
                else
                  match pred with
                  | Some (Isa.Lane_eq k) -> [ (b, k) ]
                  | Some (Isa.Lane_lt _) | None -> [ (b, -1) ]
              in
              List.iter
                (fun (a, lane) ->
                  add_writer a
                    { sw_pos = pos; sw_warp = w; sw_src = src; sw_lane = lane })
                cells)
            (warps_of_mask ~n_warps mask)
      | _ -> ())
    code;
  (* Destinations of identity-forwarded loads alias the stored register. *)
  let subst : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let rec canon v =
    match Hashtbl.find_opt subst v with Some v' -> canon v' | None -> v
  in
  let next_vreg =
    let m = ref 0 in
    Array.iter
      (fun (_, ins) ->
        (match instr_dst ins with Some d -> m := max !m (d + 1) | None -> ());
        List.iter (fun s -> m := max !m (s + 1)) (instr_src_vregs ins))
      code;
    ref !m
  in
  let fresh () =
    let v = !next_vreg in
    next_vreg := v + 1;
    v
  in
  let report = ref Shuffle_synth.empty_report in
  let bump f = report := f !report in
  let identity = Array.init 32 Fun.id in
  (* Forwarding keeps the stored register alive up to the read, which
     costs register pressure (and, in spill-bound kernels, spills) when
     the store was the register's last use. Only forward reads that do
     not extend the source's live range beyond a small slack past its
     original last use. *)
  let last_use : (int, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun pos (_, ins) ->
      List.iter (fun v -> Hashtbl.replace last_use v pos) (instr_src_vregs ins))
    code;
  let pressure_ok r pos =
    match Hashtbl.find_opt last_use r with
    | Some u -> pos - u <= live_slack
    | None -> false
  in
  (* Can the read of [addr] at stream position [pos] under [mask] be
     served from a register every reading warp holds? Returns the source
     vreg and the swizzle program mapping its lanes to the read lanes. *)
  let decide pos mask (addr : vshaddr) =
    bump (fun r ->
        { r with Shuffle_synth.sites_seen = r.Shuffle_synth.sites_seen + 1 });
    let exception No in
    try
      let src = ref (-1) in
      let pattern = ref None in
      List.iter
        (fun w ->
          let b = resolve_base addr w in
          let cell l = if addr.vs_lane then b + l else b in
          let pat =
            Array.init 32 (fun l ->
                match Hashtbl.find_opt writers (cell l) with
                | Some { contents = [ wr ] }
                  when wr.sw_warp = w && wr.sw_pos < pos && wr.sw_lane >= 0
                  -> (
                    match wr.sw_src with
                    | Vreg r ->
                        let r = canon r in
                        if not (pressure_ok r pos) then raise No;
                        if !src < 0 then src := r
                        else if !src <> r then raise No;
                        wr.sw_lane
                    | _ -> raise No)
                | _ -> raise No)
          in
          match !pattern with
          | None -> pattern := Some pat
          | Some p0 -> if p0 <> pat then raise No)
        (warps_of_mask ~n_warps mask);
      match !pattern with
      | Some pat when !src >= 0 ->
          if pat = identity then Some (!src, [])
          else if arch.Gpusim.Arch.broadcast <> Gpusim.Arch.Shuffle then None
          else (
            match Shuffle_synth.synthesize pat with
            | Some prog
              when Shuffle_synth.cost arch prog
                   <= Shuffle_synth.shared_read_cost arch ->
                Some (!src, prog)
            | Some _ | None -> None)
      | _ -> None
    with No -> None
  in
  (* 2. The rewrite walk. *)
  let out = ref [] in
  let emit mask i = out := (mask, i) :: !out in
  let emit_chain mask r prog ~dst =
    let rec go src = function
      | [] -> assert false
      | [ s ] -> emit mask (VSwz { dst; src; step = s })
      | s :: rest ->
          let d = fresh () in
          emit mask (VSwz { dst = d; src; step = s });
          go d rest
    in
    go r prog
  in
  let fwd_stats mask prog =
    let nw = List.length (warps_of_mask ~n_warps mask) in
    bump (fun r ->
        {
          r with
          Shuffle_synth.sites_rewritten = r.Shuffle_synth.sites_rewritten + 1;
          round_trips_removed = r.Shuffle_synth.round_trips_removed + nw;
          shuffle_steps = r.Shuffle_synth.shuffle_steps + List.length prog;
        })
  in
  Array.iteri
    (fun pos (mask, ins) ->
      let sub_src = function Vreg v -> Vreg (canon v) | s -> s in
      let fwd_operand s =
        match s with
        | Vshared a -> (
            match decide pos mask a with
            | Some (r, []) ->
                fwd_stats mask [];
                Vreg r
            | Some (r, prog) ->
                let d = fresh () in
                emit_chain mask r prog ~dst:d;
                fwd_stats mask prog;
                Vreg d
            | None -> s)
        | s -> s
      in
      match ins with
      | VArith r ->
          emit mask
            (VArith
               { r with srcs = Array.map (fun s -> fwd_operand (sub_src s)) r.srcs })
      | VStG r -> emit mask (VStG { r with src = fwd_operand (sub_src r.src) })
      | VStS r -> emit mask (VStS { r with src = fwd_operand (sub_src r.src) })
      | VLdS { dst; addr } -> (
          match decide pos mask addr with
          | Some (r, []) ->
              Hashtbl.replace subst dst r;
              fwd_stats mask []
          | Some (r, prog) ->
              emit_chain mask r prog ~dst;
              fwd_stats mask prog
          | None -> emit mask (VLdS { dst; addr }))
      | VSwz r -> emit mask (VSwz { r with src = canon r.src })
      | (VLdG _ | VBcast _ | VBarA _ | VBarW _ | VBarCta) as i -> emit mask i)
    code;
  let code = Array.of_list (List.rev !out) in
  (* 3. Dead-store elimination: a store none of whose written addresses
     is read anywhere in the rewritten body (any warp) is unobservable in
     every iteration — loop-safe because the read set covers the whole
     stream. *)
  let read_addrs : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let note_read (a : vshaddr) mask =
    List.iter
      (fun w ->
        let b = resolve_base a w in
        if a.vs_lane then
          for l = 0 to 31 do
            Hashtbl.replace read_addrs (b + l) ()
          done
        else Hashtbl.replace read_addrs b ())
      (warps_of_mask ~n_warps mask)
  in
  Array.iter
    (fun (mask, ins) ->
      match ins with
      | VLdS { addr; _ } -> note_read addr mask
      | VArith { srcs; _ } ->
          Array.iter (function Vshared a -> note_read a mask | _ -> ()) srcs
      | VStG { src = Vshared a; _ } | VStS { src = Vshared a; _ } ->
          note_read a mask
      | _ -> ())
    code;
  let store_live mask (addr : vshaddr) pred =
    List.exists
      (fun w ->
        let b = resolve_base addr w in
        let cells =
          if addr.vs_lane then
            match pred with
            | None -> List.init 32 (fun l -> b + l)
            | Some (Isa.Lane_eq k) -> [ b + k ]
            | Some (Isa.Lane_lt n) -> List.init n (fun l -> b + l)
          else [ b ]
        in
        List.exists (Hashtbl.mem read_addrs) cells)
      (warps_of_mask ~n_warps mask)
  in
  let code =
    Array.to_list code
    |> List.filter (fun (mask, ins) ->
           match ins with
           | VStS { addr; pred; _ } when not (store_live mask addr pred) ->
               bump (fun r ->
                   {
                     r with
                     Shuffle_synth.stores_removed =
                       r.Shuffle_synth.stores_removed + 1;
                   });
               false
           | _ -> true)
  in
  (* 4. Store-region compaction: slots no remaining access touches are
     packed out and the buffer/mirror regions above shift down wholesale;
     per-warp bases that stop agreeing after the remap get fresh
     parameters. *)
  let total_slots = store_limit / 32 in
  let touched = Array.make (max 1 total_slots) false in
  let note a = if a >= 0 && a < store_limit then touched.(a / 32) <- true in
  let note_addr (a : vshaddr) mask =
    List.iter
      (fun w ->
        let b = resolve_base a w in
        if a.vs_lane then
          for l = 0 to 31 do
            note (b + l)
          done
        else note b)
      (warps_of_mask ~n_warps mask)
  in
  List.iter
    (fun (mask, ins) ->
      match ins with
      | VLdS { addr; _ } -> note_addr addr mask
      | VStS { addr; src; _ } -> (
          note_addr addr mask;
          match src with Vshared a -> note_addr a mask | _ -> ())
      | VArith { srcs; _ } ->
          Array.iter (function Vshared a -> note_addr a mask | _ -> ()) srcs
      | VStG { src = Vshared a; _ } -> note_addr a mask
      | _ -> ())
    code;
  let slot_map = Array.make (max 1 total_slots) (-1) in
  let next_slot = ref 0 in
  for s = 0 to total_slots - 1 do
    if touched.(s) then begin
      slot_map.(s) <- !next_slot;
      incr next_slot
    end
  done;
  let n_dead = total_slots - !next_slot in
  let freed = n_dead * 32 in
  let code =
    if n_dead = 0 then code
    else begin
      let remap_base b =
        if b >= store_limit then b - freed
        else begin
          assert (b mod 32 = 0 && slot_map.(b / 32) >= 0);
          slot_map.(b / 32) * 32
        end
      in
      let rewrite_addr mask (a : vshaddr) =
        let ws = warps_of_mask ~n_warps mask in
        let res = Array.make n_warps 0 in
        List.iter
          (fun w ->
            res.(w) <-
              remap_base (resolve_base a w) - (if a.vs_warp then w else 0))
          ws;
        let w0 = List.hd ws in
        if List.for_all (fun w -> res.(w) = res.(w0)) ws then
          { a with vs_base = res.(w0); vs_param = None }
        else begin
          let id, off = alloc_param tables ~mask res in
          { a with vs_base = off; vs_param = Some id }
        end
      in
      List.map
        (fun (mask, ins) ->
          let ra = rewrite_addr mask in
          let rs = function Vshared a -> Vshared (ra a) | s -> s in
          ( mask,
            match ins with
            | VLdS r -> VLdS { r with addr = ra r.addr }
            | VStS r -> VStS { src = rs r.src; addr = ra r.addr; pred = r.pred }
            | VArith r -> VArith { r with srcs = Array.map rs r.srcs }
            | VStG r -> VStG { r with src = rs r.src }
            | other -> other ))
        code
    end
  in
  bump (fun r -> { r with Shuffle_synth.shared_bytes_freed = freed * 8 });
  (code, !report, freed)

(* ---- static instruction scheduling (the ptxas role of §4) ----

   The expression lowerer emits accumulation chains in source order, which
   an in-order machine would serialize on each chain's latency. Real
   builds lean on the PTX assembler to reorder scalar code; this pass is
   that scheduler: within each same-mask, fence-free segment, instructions
   are list-scheduled by earliest ready time (latency-aware), interleaving
   independent chains while preserving exact dataflow (results are
   bit-identical: no reassociation, only reordering of independent
   operations). *)

let sched_latency = function
  | VArith { op; _ } -> (
      match op with
      | Isa.Exp | Isa.Log -> 50
      | Isa.Div | Isa.Sqrt -> 30
      | _ -> 10)
  | VLdG _ -> 400
  | VLdS _ -> 30
  | VBcast _ | VSwz _ -> 10
  | _ -> 5

let reads_shared srcs =
  Array.exists (function Vshared _ -> true | _ -> false) srcs

let schedule_segment (seg : (int * vinstr) array) =
  let n = Array.length seg in
  if n <= 2 then seg
  else begin
    let preds = Array.make n [] in
    let add_dep d u = if d <> u then preds.(u) <- d :: preds.(u) in
    let last_def : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let last_shared_write = ref (-1) in
    let shared_reads_since = ref [] in
    let last_global_store = ref (-1) in
    let global_reads_since = ref [] in
    Array.iteri
      (fun i (_, ins) ->
        let dep_on_vreg v =
          match Hashtbl.find_opt last_def v with
          | Some d -> add_dep d i
          | None -> ()
        in
        List.iter dep_on_vreg (instr_src_vregs ins);
        let shared_read () =
          if !last_shared_write >= 0 then add_dep !last_shared_write i;
          shared_reads_since := i :: !shared_reads_since
        in
        let shared_write () =
          if !last_shared_write >= 0 then add_dep !last_shared_write i;
          List.iter (fun r -> add_dep r i) !shared_reads_since;
          last_shared_write := i;
          shared_reads_since := []
        in
        (match ins with
        | VArith { srcs; _ } -> if reads_shared srcs then shared_read ()
        | VLdS _ -> shared_read ()
        | VStS _ -> shared_write ()
        | VLdG _ ->
            if !last_global_store >= 0 then add_dep !last_global_store i;
            global_reads_since := i :: !global_reads_since
        | VStG _ ->
            if !last_global_store >= 0 then add_dep !last_global_store i;
            List.iter (fun r -> add_dep r i) !global_reads_since;
            last_global_store := i;
            global_reads_since := []
        | VBcast _ | VSwz _ | VBarA _ | VBarW _ | VBarCta -> ());
        match instr_dst ins with
        | Some v -> Hashtbl.replace last_def v i
        | None -> ())
      seg;
    (* Earliest-ready list scheduling, stable on ties. *)
    let succs = Array.make n [] in
    Array.iteri
      (fun i ps -> List.iter (fun p -> succs.(p) <- i :: succs.(p)) ps)
      preds;
    let remaining = Array.map List.length preds in
    let ready_at = Array.make n 0 in
    let module H = Set.Make (struct
      type t = int * int
      let compare = compare
    end) in
    let ready = ref H.empty in
    Array.iteri
      (fun i r -> if r = 0 then ready := H.add (ready_at.(i), i) !ready)
      remaining;
    let out = ref [] in
    let n_done = ref 0 in
    (* Reorder window: an instruction may not overtake more than [window]
       program-order predecessors — the register-pressure discipline a real
       scheduler applies. *)
    let window = 48 in
    let scheduled = Array.make n false in
    let min_unsched = ref 0 in
    while !n_done < n do
      let limit = !min_unsched + window in
      let pick =
        H.fold
          (fun ((t, i) as key) acc ->
            match acc with
            | Some _ -> acc
            | None -> if i < limit then Some (t, i, key) else None)
          !ready None
      in
      let pick =
        match pick with
        | Some p -> Some p
        | None -> (
            (* Nothing inside the window is ready: fall back to the oldest
               ready instruction. *)
            match H.min_elt_opt !ready with
            | Some ((t, i) as key) -> Some (t, i, key)
            | None -> None)
      in
      match pick with
      | None -> failwith "schedule_segment: dependency cycle"
      | Some (t, i, key) ->
          ready := H.remove key !ready;
          out := seg.(i) :: !out;
          scheduled.(i) <- true;
          while !min_unsched < n && scheduled.(!min_unsched) do
            incr min_unsched
          done;
          incr n_done;
          let (_, ins) = seg.(i) in
          let fin = t + sched_latency ins in
          List.iter
            (fun s ->
              remaining.(s) <- remaining.(s) - 1;
              ready_at.(s) <- max ready_at.(s) fin;
              if remaining.(s) = 0 then ready := H.add (ready_at.(s), s) !ready)
            succs.(i)
    done;
    Array.of_list (List.rev !out)
  end

let list_schedule (code : (int * vinstr) list) =
  (* An empty value means unset: drivers (and tests) can only clear an
     environment variable by [putenv "" ], not remove it. *)
  match Sys.getenv_opt "SINGE_NO_SCHED" with
  | Some s when s <> "" -> code
  | _ ->
  (* Split at mask changes and barrier fences; schedule each segment. *)
  let out = ref [] in
  let seg = ref [] in
  let seg_mask = ref min_int in
  let flush () =
    let arr = Array.of_list (List.rev !seg) in
    Array.iter (fun x -> out := x :: !out) (schedule_segment arr);
    seg := []
  in
  List.iter
    (fun ((mask, ins) as x) ->
      let fence =
        match ins with VBarA _ | VBarW _ | VBarCta -> true | _ -> false
      in
      if fence then begin
        if !seg <> [] then flush ();
        out := x :: !out;
        seg_mask := min_int
      end
      else begin
        if mask <> !seg_mask && !seg <> [] then flush ();
        seg_mask := mask;
        seg := x :: !seg
      end)
    code;
  if !seg <> [] then flush ();
  List.rev !out

type ra_stats = { high_water : int; spill_slots : int }

(* Pseudo-instructions inserted by the allocator are expressed with the
   dedicated local-memory ops at finalization; internally we tag them with
   negative "groups" to reuse the vinstr type minimally. Instead we emit a
   small sum type. *)
type rinstr =
  | R of vinstr  (** register fields now hold physical indices *)
  | R_spill_st of int * int  (** phys, slot *)
  | R_spill_ld of int * int

let rewrite_regs ins ~src_phys ~dst_phys =
  let rw = function Vreg v -> Vreg (src_phys v) | other -> other in
  match ins with
  | VArith r -> VArith { r with dst = dst_phys r.dst; srcs = Array.map rw r.srcs }
  | VLdG r -> VLdG { r with dst = dst_phys r.dst }
  | VLdS r -> VLdS { r with dst = dst_phys r.dst }
  | VBcast r -> VBcast { r with dst = dst_phys r.dst }
  | VSwz r -> VSwz { r with dst = dst_phys r.dst; src = src_phys r.src }
  | VStG r -> VStG { r with src = rw r.src }
  | VStS r -> VStS { r with src = rw r.src }
  | (VBarA _ | VBarW _ | VBarCta) as b -> b

let regalloc ~first_phys ~budget ~spill_mask (code : (int * vinstr) array) =
  if budget < first_phys + 6 then
    failwith
      (Printf.sprintf "regalloc: budget of %d double registers is too small"
         budget);
  (* Registers are per thread: two virtual registers whose warp masks are
     disjoint may occupy the same physical register (each warp's lanes see
     their own value). Liveness and Belady eviction therefore track, per
     physical register, the set of resident vregs and the union of their
     masks. *)
  let use_positions : (int, int list ref) Hashtbl.t = Hashtbl.create 512 in
  let vmask : (int, int) Hashtbl.t = Hashtbl.create 512 in
  let add_mask v m =
    Hashtbl.replace vmask v (m lor (Option.value ~default:0 (Hashtbl.find_opt vmask v)))
  in
  Array.iteri
    (fun pos (mask, ins) ->
      List.iter
        (fun v ->
          add_mask v mask;
          match Hashtbl.find_opt use_positions v with
          | Some l -> l := pos :: !l
          | None -> Hashtbl.add use_positions v (ref [ pos ]))
        (instr_src_vregs ins);
      match instr_dst ins with Some v -> add_mask v mask | None -> ())
    code;
  let mask_of v = Option.value ~default:spill_mask (Hashtbl.find_opt vmask v) in
  let use_arr : (int, int array * int ref) Hashtbl.t = Hashtbl.create 512 in
  Hashtbl.iter
    (fun v l -> Hashtbl.add use_arr v (Array.of_list (List.rev !l), ref 0))
    use_positions;
  let next_use v ~after =
    match Hashtbl.find_opt use_arr v with
    | None -> max_int
    | Some (arr, p) ->
        while !p < Array.length arr && arr.(!p) < after do
          incr p
        done;
        if !p < Array.length arr then arr.(!p) else max_int
  in
  (* Physical register state. *)
  let n_phys = budget - first_phys in
  let residents = Array.make n_phys [] in (* (vreg, mask) list *)
  let used_mask = Array.make n_phys 0 in
  let loc : (int, [ `Reg of int | `Spill of int ]) Hashtbl.t =
    Hashtbl.create 512
  in
  let dirty : (int, bool) Hashtbl.t = Hashtbl.create 512 in
  let slot_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let n_slots = ref 0 in
  let high = ref 0 in
  let out = ref [] in
  let emit mask i = out := (mask, i) :: !out in
  let get_slot v =
    match Hashtbl.find_opt slot_of v with
    | Some s -> s
    | None ->
        let s = !n_slots in
        incr n_slots;
        Hashtbl.add slot_of v s;
        s
  in
  let detach v p =
    residents.(p) <- List.filter (fun (v', _) -> v' <> v) residents.(p);
    used_mask.(p) <-
      List.fold_left (fun acc (_, m) -> acc lor m) 0 residents.(p);
    Hashtbl.remove loc v;
    Hashtbl.remove dirty v
  in
  let attach v p =
    let m = mask_of v in
    residents.(p) <- (v, m) :: residents.(p);
    used_mask.(p) <- used_mask.(p) lor m;
    Hashtbl.replace loc v (`Reg p);
    if p + 1 > !high then high := p + 1
  in
  (* Find a physical register able to host mask [m]: free space first,
     then evict the conflicting resident(s) with the furthest next use. *)
  let acquire ~pos ~pinned m =
    let candidate = ref (-1) in
    for p = 0 to n_phys - 1 do
      if !candidate < 0 && used_mask.(p) land m = 0 then candidate := p
    done;
    match !candidate with
    | p when p >= 0 -> p
    | _ ->
        (* Eviction: score each unpinned register by the *nearest* next use
           among residents conflicting with [m]; evict from the register
           whose nearest use is furthest away. *)
        let best_p = ref (-1) and best_score = ref (-1) in
        for p = 0 to n_phys - 1 do
          if not (List.mem p pinned) then begin
            let score =
              List.fold_left
                (fun acc (v, vm) ->
                  if vm land m <> 0 then min acc (next_use v ~after:pos)
                  else acc)
                max_int residents.(p)
            in
            if score > !best_score then begin
              best_score := score;
              best_p := p
            end
          end
        done;
        if !best_p < 0 then failwith "regalloc: all registers pinned";
        let p = !best_p in
        List.iter
          (fun (v, vm) ->
            if vm land m <> 0 then begin
              let nu = next_use v ~after:pos in
              if nu <> max_int then begin
                if Option.value ~default:false (Hashtbl.find_opt dirty v) then
                  emit vm (R_spill_st (p + first_phys, get_slot v));
                detach v p;
                Hashtbl.replace loc v (`Spill (get_slot v))
              end
              else detach v p
            end)
          residents.(p);
        p
  in
  Array.iteri
    (fun pos (mask, ins) ->
      let srcs = List.sort_uniq compare (instr_src_vregs ins) in
      let pinned = ref [] in
      List.iter
        (fun v ->
          match Hashtbl.find_opt loc v with
          | Some (`Reg p) -> pinned := p :: !pinned
          | Some (`Spill s) ->
              let p = acquire ~pos ~pinned:!pinned (mask_of v) in
              emit (mask_of v) (R_spill_ld (p + first_phys, s));
              attach v p;
              Hashtbl.replace dirty v false;
              pinned := p :: !pinned
          | None ->
              failwith
                (Printf.sprintf "regalloc: vreg %d read before definition" v))
        srcs;
      let src_phys v =
        match Hashtbl.find loc v with
        | `Reg p -> p + first_phys
        | `Spill _ -> assert false
      in
      let resolved = List.map (fun v -> (v, src_phys v)) srcs in
      (* Retire dead sources so the destination may reuse their space. *)
      List.iter
        (fun (v, _) ->
          if next_use v ~after:(pos + 1) = max_int then
            match Hashtbl.find_opt loc v with
            | Some (`Reg p) -> detach v p
            | Some (`Spill _) | None -> ())
        resolved;
      let lookup_phys v = List.assoc v resolved in
      match instr_dst ins with
      | None -> emit mask (R (rewrite_regs ins ~src_phys:lookup_phys ~dst_phys:Fun.id))
      | Some vd ->
          let still_pinned =
            List.filter_map
              (fun (v, p) -> if Hashtbl.mem loc v then Some (p - first_phys) else None)
              resolved
          in
          let p = acquire ~pos ~pinned:still_pinned (mask_of vd) in
          attach vd p;
          Hashtbl.replace dirty vd true;
          emit mask
            (R (rewrite_regs ins ~src_phys:lookup_phys
                  ~dst_phys:(fun _ -> p + first_phys)));
          if next_use vd ~after:(pos + 1) = max_int then detach vd p)
    code;
  ( List.rev !out,
    { high_water = first_phys + !high; spill_slots = !n_slots } )

(* ---- final emission to the ISA ---- *)

type finalize_env = {
  f_striped : bool;
  f_param_regs : int;  (** integer registers holding (possibly striped) params *)
}

let finalize_stream env (code : (int * rinstr) list) =
  (* Returns ((mask, Isa.instr) list, max_temps); striped parameter reads
     insert an Ishfl into a temporary integer register before the
     consumer. [max_temps] is the high-water count of those temporaries
     over any single instruction — the extra integer registers the
     program must declare beyond the parameter bank. *)
  let out = ref [] in
  let emit mask i = out := (mask, i) :: !out in
  let tmp_counter = ref 0 in
  let max_temps = ref 0 in
  let resolve_param mask logical =
    if env.f_striped then begin
      let tmp = env.f_param_regs + !tmp_counter in
      incr tmp_counter;
      if !tmp_counter > !max_temps then max_temps := !tmp_counter;
      emit mask
        (Isa.Ishfl { dst_i = tmp; src_i = logical / 32; lane = logical mod 32 });
      tmp
    end
    else logical
  in
  let resolve_addr mask (a : vshaddr) =
    let ireg = Option.map (resolve_param mask) a.vs_param in
    {
      Isa.s_base = a.vs_base;
      s_warp_mul = (if a.vs_warp then 1 else 0);
      s_lane_mul = (if a.vs_lane then 1 else 0);
      s_ireg = ireg;
      s_ireg_mul = 1;
    }
  in
  let resolve_src mask = function
    | Vreg p -> Isa.Sreg p
    | Vimm v -> Isa.Simm v
    | Vconst_mem s -> Isa.Sconst s
    | Vconst_warp base -> Isa.Sconst_warp base
    | Vshared a -> Isa.Sshared (resolve_addr mask a)
    | Vbank logical -> Isa.Sreg (logical / 32)
  in
  let resolve_field mask = function
    | VF_static f -> Isa.F_static f
    | VF_param logical -> Isa.F_ireg (resolve_param mask logical)
  in
  List.iter
    (fun (mask, ri) ->
      tmp_counter := 0;
      match ri with
      | R_spill_st (p, slot) -> emit mask (Isa.St_local { src = p; slot })
      | R_spill_ld (p, slot) -> emit mask (Isa.Ld_local { dst = p; slot })
      | R ins -> (
          match ins with
          | VArith { op; dst; srcs; pred } ->
              let srcs = Array.map (resolve_src mask) srcs in
              emit mask (Isa.Arith { op; dst; srcs; pred })
          | VLdG { dst; group; field; via_tex } ->
              let field = resolve_field mask field in
              emit mask (Isa.Ld_global { dst; group; field; via_tex; pred = None })
          | VStG { src; group; field } ->
              let src = resolve_src mask src in
              let field = resolve_field mask field in
              emit mask (Isa.St_global { src; group; field; pred = None })
          | VLdS { dst; addr } ->
              let addr = resolve_addr mask addr in
              emit mask (Isa.Ld_shared { dst; addr; pred = None })
          | VStS { src; addr; pred } ->
              let src = resolve_src mask src in
              let addr = resolve_addr mask addr in
              emit mask (Isa.St_shared { src; addr; pred })
          | VBcast { dst; logical } ->
              emit mask
                (Isa.Shfl { dst; src = logical / 32; lane = logical mod 32 })
          | VSwz { dst; src; step } ->
              emit mask
                (match step with
                | Shuffle_synth.Rot d -> Isa.Shfl_rot { dst; src; delta = d }
                | Shuffle_synth.Bfly m ->
                    Isa.Shfl_bfly { dst; src; xor_mask = m }
                | Shuffle_synth.Bcast k -> Isa.Shfl { dst; src; lane = k })
          | VBarA { bar; count } -> emit mask (Isa.Bar_arrive { bar; count })
          | VBarW { bar; count } -> emit mask (Isa.Bar_sync { bar; count })
          | VBarCta -> emit mask Isa.Bar_cta))
    code;
  (List.rev !out, !max_temps)

(* Group consecutive same-mask instructions into blocks. *)
let assemble_blocks ~full_mask (code : (int * Isa.instr) list) =
  let blocks = ref [] in
  let current_mask = ref full_mask in
  let current = ref [] in
  let flush () =
    match !current with
    | [] -> ()
    | l ->
        let instrs = Isa.Instrs (List.rev l) in
        let b =
          if !current_mask = full_mask then instrs
          else Isa.If_warps { mask = !current_mask; body = instrs }
        in
        blocks := b :: !blocks;
        current := []
  in
  List.iter
    (fun (mask, i) ->
      if mask <> !current_mask then begin
        flush ();
        current_mask := mask
      end;
      current := i :: !current)
    code;
  flush ();
  Isa.Seq (List.rev !blocks)

(* ---- bank materialization ---- *)

let build_const_bank tables ~n_warps ~bank_cap =
  let consts = Array.of_list (List.rev tables.consts) in
  let n = Array.length consts in
  let n_banked = min n bank_cap in
  let n_regs = (n_banked + 31) / 32 in
  let n_overflow = max 0 (n - bank_cap) in
  (* Banked constants are lane-striped across the warp (§5.2). *)
  let bank =
    Array.init n_warps (fun w ->
        Array.init 32 (fun lane ->
            Array.init n_regs (fun k ->
                let logical = (k * 32) + lane in
                if logical < n_banked then consts.(logical).(w) else 0.0)))
  in
  (* Overflow constants live in constant memory, warp-strided. *)
  let overflow_mem =
    Array.init (n_overflow * n_warps) (fun i ->
        consts.(bank_cap + (i / n_warps)).(i mod n_warps))
  in
  (bank, n_regs, n_overflow, overflow_mem)

let build_param_bank tables ~n_warps ~striped =
  let params = Array.of_list (List.rev tables.params) in
  let n = Array.length params in
  if striped then begin
    let n_regs = (n + 31) / 32 in
    let bank =
      Array.init n_warps (fun w ->
          Array.init 32 (fun lane ->
              Array.init n_regs (fun k ->
                  let logical = (k * 32) + lane in
                  if logical < n then params.(logical).(w) else 0)))
    in
    (bank, n_regs)
  end
  else
    let bank =
      Array.init n_warps (fun w ->
          Array.init 32 (fun _lane -> Array.init n (fun p -> params.(p).(w))))
    in
    (bank, n)

(* ---- entry point ---- *)

let lower cfg ~name ~point_map ~out_warps ~groups (dfg : Dfg.t)
    (mapping : Mapping.t) (sched : Schedule.t) =
  let n_mapped = mapping.Mapping.n_warps in
  let buffer_base = Schedule.shared_buffer_base mapping in
  let mirror_base = buffer_base + (sched.Schedule.buffer_slots * 32) in
  let needs_mirror =
    cfg.const_policy = Bank
    && cfg.arch.Gpusim.Arch.broadcast = Gpusim.Arch.Shared_mirror
  in
  (* A bit over half the register budget may hold banked constants; the
     rest overflow to shared memory (kept after the broadcast mirror). *)
  let bank_reg_cap = max 1 (cfg.freg_budget * 11 / 20) in
  let bank_cap = bank_reg_cap * 32 in
  let overflow_base = mirror_base + (4 * n_mapped) in
  let full_mask = (1 lsl n_mapped) - 1 in
  let tables = fresh_tables n_mapped in
  let lower_stream ~policy ~masks_full =
    (* Lower either the overlaid forest (masks_full = None) or a single
       warp's stream (Some w, naive mode). *)
    let ctx =
      {
        cfg = { cfg with const_policy = policy };
        dfg;
        mapping;
        tables;
        groups;
        vreg_of = Hashtbl.create 512;
        next_vreg = 0;
        out_rev = [];
        full_mask;
        buffer_base;
        mirror_base;
        mirror_rot = 0;
        bank_cap;
        overflow_base;
      }
    in
    (match masks_full with
    | None -> run_overlay ctx sched
    | Some w ->
        Array.iter
          (fun a ->
            lower_action_group ctx ~mask:(1 lsl w) ~ws:[ w ]
              ~actions:[| a |])
          sched.Schedule.per_warp.(w));
    List.rev ctx.out_rev
  in
  let spill_stats = ref { high_water = 0; spill_slots = 0 } in
  let max_stats a b =
    {
      high_water = max a.high_water b.high_water;
      spill_slots = max a.spill_slots b.spill_slots;
    }
  in
  let striped = ref false in
  let param_temps = ref 0 in
  let exch_report = ref Shuffle_synth.empty_report in
  let freed_doubles = ref 0 in
  let body, n_param_regs =
    if cfg.overlay then begin
      let stream = lower_stream ~policy:cfg.const_policy ~masks_full:None in
      let stream =
        (* The rewrite reasons per logical warp; skip when the emitted
           single-warp code is replicated across real warps (baseline),
           where distinct warps share every shared address. *)
        if cfg.synth_exchange && out_warps = n_mapped then begin
          let stream', report, freed =
            synth_exchange_pass ~arch:cfg.arch ~n_warps:n_mapped
              ~store_limit:(mapping.Mapping.store_slots * 32)
              ~live_slack:
                (derived_live_slack ~freg_budget:cfg.freg_budget dfg mapping)
              tables stream
          in
          exch_report := report;
          freed_doubles := freed;
          stream'
        end
        else stream
      in
      let vcode = Array.of_list (list_schedule stream) in
      let _, n_bank_regs, _, _ = build_const_bank tables ~n_warps:n_mapped ~bank_cap in
      let code, stats =
        regalloc ~first_phys:n_bank_regs ~budget:cfg.freg_budget
          ~spill_mask:full_mask vcode
      in
      spill_stats := stats;
      striped := tables.n_params > cfg.param_stripe_threshold;
      let _, n_param_regs =
        build_param_bank tables ~n_warps:n_mapped ~striped:!striped
      in
      let env = { f_striped = !striped; f_param_regs = n_param_regs } in
      let finalized, max_temps = finalize_stream env code in
      param_temps := max_temps;
      (assemble_blocks ~full_mask finalized, n_param_regs)
    end
    else begin
      (* Naive §5.1 code generation: a top-level switch on the warp id with
         each warp's complete code inline and constants as immediates. *)
      let per_warp =
        Array.init n_mapped (fun w ->
            let vcode =
              Array.of_list
                (list_schedule (lower_stream ~policy:Immediate ~masks_full:(Some w)))
            in
            let code, stats =
              regalloc ~first_phys:0 ~budget:cfg.freg_budget
                ~spill_mask:(1 lsl w) vcode
            in
            spill_stats := max_stats !spill_stats stats;
            let env = { f_striped = false; f_param_regs = 0 } in
            let instrs = List.map snd (fst (finalize_stream env code)) in
            Isa.Instrs instrs)
      in
      (Isa.Switch_warp per_warp, 0)
    end
  in
  let const_bank, n_bank_regs, n_overflow, overflow_mem =
    if cfg.overlay then build_const_bank tables ~n_warps:n_mapped ~bank_cap
    else (Array.init n_mapped (fun _ -> Array.init 32 (fun _ -> [||])), 0, 0, [||])
  in
  let param_bank, _ =
    if cfg.overlay then build_param_bank tables ~n_warps:n_mapped ~striped:!striped
    else (Array.init n_mapped (fun _ -> Array.init 32 (fun _ -> [||])), 0)
  in
  ignore n_overflow;
  let prologue_instrs =
    List.init n_bank_regs (fun k -> Isa.Ld_const_bank { dst = k; slot = k })
    @ List.init n_param_regs (fun k -> Isa.Ld_param { dst_i = k; slot = k })
  in
  let n_fregs = max n_bank_regs !spill_stats.high_water in
  (* The striped-parameter Ishfl temporaries live above the parameter
     bank; size the integer register file from the emitter's actual
     per-instruction high water, not a guessed constant (searched
     partitions can put three param operands on one instruction). *)
  let n_iregs = n_param_regs + (if !striped then !param_temps else 0) in
  let shared_doubles =
    (mapping.Mapping.store_slots + sched.Schedule.buffer_slots) * 32
    + (if needs_mirror then 4 * n_mapped else 0)
    - !freed_doubles
  in
  let const_mem =
    if cfg.overlay && Array.length overflow_mem > 0 then overflow_mem
    else Array.of_list (List.rev tables.const_mem_rev)
  in
  (* The emitted code is identical for every warp in the baseline case
     (mapping over one warp); replicate banks to the output warp count. *)
  let replicate bank =
    if out_warps = n_mapped then bank
    else Array.init out_warps (fun _ -> bank.(0))
  in
  let program =
    {
      Isa.name;
      n_warps = out_warps;
      n_fregs = max 1 n_fregs;
      n_iregs = max 1 n_iregs;
      shared_doubles;
      local_doubles = !spill_stats.spill_slots;
      barriers_used = sched.Schedule.barriers_used;
      point_map;
      prologue = Isa.Instrs prologue_instrs;
      body;
      const_bank = replicate const_bank;
      param_bank = replicate param_bank;
      const_mem;
      groups;
      exp_consts_in_registers = cfg.exp_consts_in_registers;
    }
  in
  {
    program;
    n_spill_slots = !spill_stats.spill_slots;
    spill_bytes_per_thread = !spill_stats.spill_slots * 8;
    n_bank_regs;
    n_params = tables.n_params;
    n_logical_consts = tables.n_consts;
    exchange = !exch_report;
  }

let validate_output ~arch ?(max_barriers = 16) (out : output) =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let p = out.program in
  (match Isa.validate p with
  | Ok () -> ()
  | Error es -> List.iter (fun e -> err "%s" e) es);
  let regs32 = Isa.regs32_per_thread p in
  if regs32 > arch.Gpusim.Arch.max_regs_per_thread then
    err "%d 32-bit registers per thread, architecture caps at %d" regs32
      arch.Gpusim.Arch.max_regs_per_thread;
  let shared_bytes = p.Isa.shared_doubles * 8 in
  if shared_bytes > arch.Gpusim.Arch.shared_bytes_per_sm then
    err "%d B shared per CTA, SM has %d" shared_bytes
      arch.Gpusim.Arch.shared_bytes_per_sm;
  if p.Isa.barriers_used > max_barriers then
    err "%d named barriers, budget is %d" p.Isa.barriers_used max_barriers;
  if out.n_bank_regs > p.Isa.n_fregs then
    err "%d constant-bank registers exceed the %d allocated double registers"
      out.n_bank_regs p.Isa.n_fregs;
  if out.n_spill_slots <> p.Isa.local_doubles then
    err "spill statistics claim %d slots, program reserves %d"
      out.n_spill_slots p.Isa.local_doubles;
  if out.spill_bytes_per_thread <> out.n_spill_slots * 8 then
    err "spill bytes %d disagree with %d slots" out.spill_bytes_per_thread
      out.n_spill_slots;
  if Array.length p.Isa.const_bank <> p.Isa.n_warps then
    err "constant bank covers %d warps, program has %d"
      (Array.length p.Isa.const_bank) p.Isa.n_warps;
  Array.iteri
    (fun w lanes ->
      if Array.length lanes <> 32 then
        err "constant bank of warp %d has %d lanes" w (Array.length lanes))
    p.Isa.const_bank;
  if Array.length p.Isa.param_bank <> p.Isa.n_warps then
    err "parameter bank covers %d warps, program has %d"
      (Array.length p.Isa.param_bank) p.Isa.n_warps;
  match List.rev !problems with [] -> Ok () | l -> Error l
