(** Warp-specialization-aware analytic cycle predictor.

    Extends {!Gpusim.Roofline}'s static per-resource ceilings with the two
    effects a roofline cannot see but warp specialization lives or dies by:
    named-barrier synchronization (a per-warp critical path over the
    schedule's produce/consume epochs, walked on the lowered per-warp
    instruction streams with {!Gpusim.Arch} latencies and issue widths) and
    instruction-cache pressure (the Fig. 9 cliff). The prediction is fully
    static — no simulation — so {!Autotune.tune} can score an entire
    candidate grid in the time one simulation takes and only simulate the
    model's top candidates ([--tune-mode pruned]).

    The model (DESIGN §12 derives it):

    - {b throughput term}: per-CTA-batch resource demand (DP slots with
      constant-operand penalties, issue slots, LSU slots, shared-pipe
      slots, bytes per memory path — the same accounting
      {!Gpusim.Roofline.demand_cycles} exposes, aggregated from the
      per-warp traces) divided by the pipe rates; with [R] resident CTAs
      sharing the pipes, a batch step costs [R * max_r demand_r / rate_r].
    - {b synchronization term}: abstract rendezvous execution of the
      per-warp streams — each warp accumulates segment costs
      ([max(1-IPC issue floor, pipe-serial time, exposed dependence
      latency)]) and named/CTA barriers propagate the maximum arrival time
      to their waiters; the steady-state per-batch critical path comes from
      differencing a multi-batch walk, so cross-batch pipelining through
      the barrier ring is captured.
    - {b i-cache term}: when the body's united line footprint exceeds the
      cache, every line is refetched each batch — at the prefetch catch-up
      cost while few long divergent paths exist, at the full miss latency
      beyond {!Gpusim.Caches.Icache.max_streams} of them.

    Per-batch predicted cycles are [max(sync, R * throughput) + icache];
    the prologue is walked separately (cold constant loads, cold code). *)

type prediction = {
  occ : Gpusim.Machine.occupancy;
  resident : int;  (** CTAs actually resident: [min occ ctas] *)
  batches : int;  (** full batches per CTA at this launch *)
  sim_batches : int;  (** batches the simulator would run (≤ 6) *)
  prologue_cycles : float;
  batch_cycles : float;  (** steady-state SM cycles per batch step *)
  throughput_cycles : float;
      (** resource side of [batch_cycles]: [resident * max_r demand/rate] *)
  sync_cycles : float;  (** critical-path side of [batch_cycles] *)
  icache_cycles : float;  (** per-batch code-refetch cycles *)
  binding : string;
      (** what binds the batch: a resource name, or ["synchronization"] *)
  cycles : float;
      (** predicted SM cycles for the simulated round — directly comparable
          to [Machine.result.sm_cycles] *)
  floor_cycles : float;
      (** provable throughput-only lower bound on the simulated round (the
          simulator never beats it: body demand over pipe rates, no
          latency, no prologue) *)
  chip : Gpusim.Chip.schedule;
      (** the {!Gpusim.Chip.schedule} dispatcher/arbiter outcome on
          model-derived round costs — the bandwidth-contention term of
          the end-to-end prediction *)
  time_s : float;
      (** predicted end-to-end time (the chip schedule's makespan, same
          semantics as [Chip.run]) *)
  points_per_sec : float;  (** predicted end-to-end throughput *)
}

val predict :
  ?ctas:int -> ?n_sms:int -> ?skew:float -> Compile.t ->
  total_points:int -> prediction
(** Predict the launch {!Compile.run} would simulate for the same
    [?ctas]/[~total_points] (default grid from {!Compile.default_ctas}).
    [n_sms]/[skew] mirror {!Compile.run}'s chip overrides: the
    end-to-end terms feed the same deterministic {!Gpusim.Chip.schedule}
    the simulator uses, with analytically derived round costs and DRAM
    traffic. Pure static analysis of the compiled artifact; safe to call
    from several domains at once. *)

val rel_err : predicted:float -> measured:float -> float
(** [|predicted - measured| / measured] — the accuracy figure `singe
    predict`, {!Experiments}' model-accuracy rows and the tests report. *)
