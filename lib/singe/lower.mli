(** Warp-specialized code generation (§5, the final compiler stage).

    The per-warp schedules form a forest of per-warp instruction streams;
    lowering traverses all of them simultaneously ({e overlaying}, §5.1):
    at each step the warps whose next statements share a structural shape
    are emitted as a single instruction sequence, guarded by a bit-mask
    warp filter when the group is partial. Statement shapes differ only in
    constant values and addresses, which are abstracted by:

    {ul
    {- {e constant arrays} (§5.2): bankable constants become slots in a
       per-(warp, lane) constant bank loaded into registers by prologue
       code and broadcast from the owning lane at each use — shuffles on
       Kepler (Listing 3), a shared-memory mirror on Fermi (Listing 2).
       Constant vectors equal across all warps collapse to immediates, and
       repeated vectors share one slot (deduplication);}
    {- {e warp indexing} (§5.3): per-warp shared-memory bases, buffer
       slots, and global field selectors become integer parameters; when a
       kernel needs many, they are striped across lanes and shuffled at
       use (Listing 4).}}

    Registers are allocated per thread over the overlaid stream with
    Belady's furthest-next-use policy; demand beyond the budget spills to
    local memory (the paper's spill-byte statistics come from here).

    With [overlay = false] the generator instead emits the naive top-level
    warp switch with inline immediate constants — the code Fig. 9 shows
    thrashing the instruction cache. *)

type const_policy =
  | Bank  (** §5.2 constant arrays + lane striping (warp-specialized path) *)
  | Const_mem  (** constant memory through the 8 KB cache (baseline path) *)
  | Immediate  (** constants inline in the instruction stream (naive path) *)

type config = {
  arch : Gpusim.Arch.t;
  overlay : bool;
  const_policy : const_policy;
  exp_consts_in_registers : bool;
  param_stripe_threshold : int;
      (** replicate warp parameters across lanes when at most this many;
          stripe + shuffle beyond (Listing 4) *)
  freg_budget : int;  (** double registers per thread before spilling *)
  synth_exchange : bool;
      (** run the {!Shuffle_synth} exchange rewrite over the overlaid
          stream (DESIGN §14): same-warp shared round-trips become register
          forwards or shuffle swizzle chains, fully-forwarded stores are
          deleted, and untouched store-region slots are compacted out of
          the shared footprint. Applies only to the overlay path whose
          emitted code is not replicated across warps. *)
}

type output = {
  program : Gpusim.Isa.program;
  n_spill_slots : int;
  spill_bytes_per_thread : int;
  n_bank_regs : int;  (** constant registers per thread (Fig. 10) *)
  n_params : int;
  n_logical_consts : int;
  exchange : Shuffle_synth.report;
      (** what the [synth_exchange] rewrite did ({!Shuffle_synth.empty_report}
          when disabled or inapplicable) *)
}

val derived_live_slack : freg_budget:int -> Dfg.t -> Mapping.t -> int
(** The exchange rewrite's live-range pressure gate, in stream positions:
    how far a register forward may extend a value's live range past its
    original last use. Derived from the allocator's headroom — the
    per-thread double budget minus the mapping's steady per-warp demand
    (the busiest warp of {!Mapping.warp_values}, spread over the graph's
    fence segments) — so a kernel whose demand saturates the budget
    (spill-bound chemistry) gets zero slack while one with headroom keeps
    a window proportional to it. Replaces the fixed 200-position constant
    the gate shipped with. *)

val lower :
  config ->
  name:string ->
  point_map:Gpusim.Isa.point_map ->
  out_warps:int ->
  groups:Gpusim.Isa.group_info array ->
  Dfg.t ->
  Mapping.t ->
  Schedule.t ->
  output
(** [out_warps] is the warp count of the emitted program; it equals the
    mapping's warp count for warp-specialized kernels and is free for the
    single-"warp" baseline mapping (whose code is warp-independent). *)

val validate_output :
  arch:Gpusim.Arch.t -> ?max_barriers:int -> output -> (unit, string list) result
(** The lower-consistency validation pass: the program passes
    {!Gpusim.Isa.validate}; 32-bit register demand and shared-memory bytes
    fit the architecture's hard per-thread / per-SM caps; named-barrier ids
    stay within [max_barriers]; the constant/parameter bank tables cover
    every warp with full 32-lane stripes; and the spill statistics agree
    with the program's local-memory footprint. *)
