(* Stencil-pipeline partitioner: lowers a Stencil_pipe description to the
   DFG IR with the warps specialized by *stage* (arXiv 1909.07190's
   pipeline mapping recast onto Singe's producer/consumer machinery).

   Warps are split into contiguous bands, one per stage; loads ride with
   the first band. Two tiling modes:

   - non-overlapped ([overlap:false]): every (stage, column) value is
     computed exactly once by its block owner, and halo taps at block and
     band boundaries read it cross-warp through shared memory — maximal
     sharing, so single values fan out to consumers in several warps and
     several pipeline segments. This is the shape chemistry never
     produces: the same static value read by many warps at many offsets.

   - overlapped ([overlap:true]): each downstream warp reads from exactly
     one upstream warp; upstream warps compute *extended* tiles covering
     their consumers' halos, recomputing boundary columns redundantly.
     Cross-warp traffic collapses to the band-to-band tile handoffs,
     which the scheduler carries over named barriers.

   Unlike the chemistry partitioners there are deliberately no fences:
   every inter-stage dependence is a named-barrier handshake, so the
   schedule the checker and simulator see is pipeline-shaped, not
   phase-barrier-shaped. *)

(* Contiguous warp band of stage [s] (1-based), half-open. Degenerate
   warp counts collapse bands onto the last available warp, so the
   builder works for any [n_warps >= 1] (including the baseline's 1). *)
let band ~n_warps ~n_stages s =
  let lo = (s - 1) * n_warps / n_stages in
  let hi = s * n_warps / n_stages in
  let lo = min lo (n_warps - 1) in
  let hi = max hi (lo + 1) in
  (lo, hi)

(* Block partition of [w] columns over [k] warps: band-local warp [i]
   owns [cols lo, cols hi). *)
let block ~w ~k i = (i * w / k, (i + 1) * w / k)

let owner_warp ~n_warps ~n_stages ~width ~stage ~col =
  let lo, hi = band ~n_warps ~n_stages stage in
  let k = hi - lo in
  let rec find i =
    if i >= k - 1 then lo + (k - 1)
    else
      let _, chi = block ~w:width ~k i in
      if col < chi then lo + i else find (i + 1)
  in
  find 0

type range = { r_lo : int; r_hi : int } (* half-open; r_hi <= r_lo = empty *)

let empty_range = { r_lo = 0; r_hi = 0 }
let range_is_empty r = r.r_hi <= r.r_lo

let range_union a b =
  if range_is_empty a then b
  else if range_is_empty b then a
  else { r_lo = min a.r_lo b.r_lo; r_hi = max a.r_hi b.r_hi }

let expand ~w ~radius r =
  if range_is_empty r then r
  else { r_lo = max 0 (r.r_lo - radius); r_hi = min w (r.r_hi + radius) }

let build (p : Stencil_pipe.t) ~n_warps ~overlap =
  if n_warps < 1 then
    Diagnostics.failf ~pass:"dfg-build" ~loc:p.Stencil_pipe.pipe_name
      "stencil pipeline %s cannot be partitioned onto %d warp(s)"
      p.Stencil_pipe.pipe_name n_warps;
  let w = p.Stencil_pipe.width in
  let stages = Array.of_list p.Stencil_pipe.stages in
  let m = Array.length stages in
  let band = band ~n_warps ~n_stages:m in
  let b = Dfg.Builder.create p.Stencil_pipe.pipe_name in
  (* vals : (stage, col, producing warp) -> value id. In non-overlapped
     mode each (stage, col) has one producer; in overlapped mode halo
     columns are recomputed per warp. *)
  let vals : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  (* loads : (col, warp) -> value id. Non-overlapped mode loads each
     column once (on its stage-1 block owner) and shares it; overlapped
     mode and source skip-connections duplicate loads per reading warp. *)
  let loads : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let clamp = Stencil_pipe.clamp_col ~w in
  (* Per-warp tile of stage [s]: the columns warp [warp] computes. *)
  let tiles = Array.make_matrix (m + 1) n_warps empty_range in
  if overlap then begin
    (* Requirements flow backwards: the last stage computes exactly its
       owned block; each upstream warp covers the union of its assigned
       consumers' halo-expanded tiles (redundant recompute at the seams). *)
    let mlo, mhi = band m in
    for i = 0 to mhi - mlo - 1 do
      let clo, chi = block ~w ~k:(mhi - mlo) i in
      tiles.(m).(mlo + i) <- { r_lo = clo; r_hi = chi }
    done;
    for s = m - 1 downto 1 do
      let plo, phi = band s and clo, chi = band (s + 1) in
      let k0 = phi - plo and k1 = chi - clo in
      for j = 0 to k1 - 1 do
        let u = j * k0 / k1 in
        tiles.(s).(plo + u) <-
          range_union
            tiles.(s).(plo + u)
            (expand ~w ~radius:stages.(s).Stencil_pipe.radius
               tiles.(s + 1).(clo + j))
      done
    done
  end
  else
    for s = 1 to m do
      let lo, hi = band s in
      for i = 0 to hi - lo - 1 do
        let clo, chi = block ~w ~k:(hi - lo) i in
        tiles.(s).(lo + i) <- { r_lo = clo; r_hi = chi }
      done
    done;
  (* The warp a stage-[s] tap on column [c] reads from, as seen by
     band-(s+1) warp [warp]. *)
  let tap_warp ~s ~reader c =
    if not overlap then owner_warp ~n_warps ~n_stages:m ~width:w ~stage:s ~col:c
    else begin
      let plo, phi = band s and clo, chi = band (s + 1) in
      let k0 = phi - plo and k1 = chi - clo in
      let u = plo + ((reader - clo) * k0 / k1) in
      if not (Hashtbl.mem vals (s, c, u)) then
        Diagnostics.failf ~pass:"dfg-build" ~loc:p.Stencil_pipe.pipe_name
          "stencil %s: stage %d warp %d expects column %d from warp %d, \
           which never computed it (tile planning bug)"
          p.Stencil_pipe.pipe_name (s + 1) reader c u;
      u
    end
  in
  let max_tile s =
    let lo, hi = band s in
    let acc = ref 0 in
    for warp = lo to hi - 1 do
      let r = tiles.(s).(warp) in
      acc := max !acc (r.r_hi - r.r_lo)
    done;
    !acc
  in
  let nth_col s warp o =
    let r = tiles.(s).(warp) in
    if o < r.r_hi - r.r_lo then Some (r.r_lo + o) else None
  in
  (* Load phase. Emission is round-robin (offset outer, warp inner)
     throughout, like the chemistry partitioners, so the scheduler's
     topological walk advances all warps of a band together and overlay
     alignment pairs the o-th op of every warp. *)
  let lo1, hi1 = band 1 in
  let load_tiles =
    Array.init n_warps (fun warp ->
        if warp < lo1 || warp >= hi1 then empty_range
        else
          expand ~w ~radius:stages.(0).Stencil_pipe.radius tiles.(1).(warp))
  in
  (* Non-overlapped mode: each column is loaded once, by the stage-1
     owner of the column; overlapped mode: each warp loads its whole
     halo-extended tile. *)
  let max_load =
    Array.fold_left (fun a r -> max a (r.r_hi - r.r_lo)) 0 load_tiles
  in
  for o = 0 to max_load - 1 do
    for warp = 0 to n_warps - 1 do
      let r = load_tiles.(warp) in
      if o < r.r_hi - r.r_lo then begin
        let c = r.r_lo + o in
        let take =
          if overlap then true
          else owner_warp ~n_warps ~n_stages:m ~width:w ~stage:1 ~col:c = warp
        in
        if take && not (Hashtbl.mem loads (c, warp)) then
          Hashtbl.add loads (c, warp)
            (Dfg.Builder.load b ~hint:warp
               ~align:(Printf.sprintf "ld:%d" o)
               ~name:(Printf.sprintf "px%d_w%d" c warp)
               ~group:"image" ~field:c ())
      end
    done
  done;
  (* The load a stage-1 tap (or a skip connection) on column [c] reads,
     as seen by warp [reader]. Skip connections always load privately on
     the reading warp — raw source pixels are never communicated. *)
  let source_load ~private_ ~reader c =
    if private_ || overlap then begin
      match Hashtbl.find_opt loads (c, reader) with
      | Some v -> v
      | None ->
          let v =
            Dfg.Builder.load b ~hint:reader
              ~align:(Printf.sprintf "skip:%d" c)
              ~name:(Printf.sprintf "px%d_w%d" c reader)
              ~group:"image" ~field:c ()
          in
          Hashtbl.add loads (c, reader) v;
          v
    end
    else
      let u = owner_warp ~n_warps ~n_stages:m ~width:w ~stage:1 ~col:c in
      match Hashtbl.find_opt loads (c, u) with
      | Some v -> v
      | None ->
          Diagnostics.failf ~pass:"dfg-build" ~loc:p.Stencil_pipe.pipe_name
            "stencil %s: column %d was never loaded by its owner warp %d"
            p.Stencil_pipe.pipe_name c u
  in
  (* Compute phases, one per stage, round-robin within the stage's band. *)
  for s = 1 to m do
    let st = stages.(s - 1) in
    let r = st.Stencil_pipe.radius in
    let lo, hi = band s in
    for o = 0 to max_tile s - 1 do
      for warp = lo to hi - 1 do
        match nth_col s warp o with
        | None -> ()
        | Some c ->
            let taps =
              Array.init ((2 * r) + 1) (fun i ->
                  let tc = clamp (c - r + i) in
                  if s = 1 then source_load ~private_:overlap ~reader:warp tc
                  else
                    let u = tap_warp ~s:(s - 1) ~reader:warp tc in
                    match Hashtbl.find_opt vals (s - 1, tc, u) with
                    | Some v -> v
                    | None ->
                        Diagnostics.failf ~pass:"dfg-build"
                          ~loc:p.Stencil_pipe.pipe_name
                          "stencil %s: stage %d tap on column %d missing \
                           from warp %d"
                          p.Stencil_pipe.pipe_name s tc u)
            in
            let inputs =
              if st.Stencil_pipe.uses_source then
                Array.append taps [| source_load ~private_:true ~reader:warp c |]
              else taps
            in
            Hashtbl.add vals (s, c, warp)
              (Dfg.Builder.compute b ~hint:warp
                 ~align:(Printf.sprintf "s%d:%d" s o)
                 ~name:(Printf.sprintf "%s%d_w%d" st.Stencil_pipe.stage_name c warp)
                 ~inputs st.Stencil_pipe.expr)
      done
    done
  done;
  (* Store phase: the last band writes its owned blocks. *)
  let mlo, mhi = band m in
  for o = 0 to max_tile m - 1 do
    for warp = mlo to mhi - 1 do
      match nth_col m warp o with
      | None -> ()
      | Some c ->
          let owns =
            if overlap then true
            else owner_warp ~n_warps ~n_stages:m ~width:w ~stage:m ~col:c = warp
          in
          if owns then
            Dfg.Builder.store b ~hint:warp
              ~align:(Printf.sprintf "st:%d" o)
              ~name:(Printf.sprintf "store%d" c)
              ~group:"out" ~field:c
              (Hashtbl.find vals (m, c, warp))
    done
  done;
  Dfg.Builder.finish b
