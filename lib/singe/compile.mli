(** End-to-end compilation driver: mechanism x kernel x architecture x
    options -> executable program (Fig. 8's pipeline), plus launch and
    verification helpers.

    The driver is structured as an explicit pass pipeline run through
    {!Pass}: [dfg-build], [mapping], [schedule] and [lower] transform
    passes (the latter two may run several times inside the register- and
    shared-memory fitting loops), interleaved with validation passes
    ([dfg-validate], [mapping-validate], [schedule-validate],
    [deadlock-check], [lower-validate]) that re-check each stage's
    invariants on the artifact actually handed to the next stage
    ([deadlock-check] is {!Deadlock_check.check}, the executable form of
    the §4.4 deadlock-freedom theorem). {!compile_with_report}
    exposes the resulting per-pass timings and artifact statistics;
    {!compile} is a thin wrapper that discards them.

    Three code-generation versions reproduce the paper's comparisons:
    {ul
    {- [Warp_specialized]: the full Singe pipeline — domain partitioning,
       greedy mapping, named-barrier scheduling, overlaid code with
       constant banks;}
    {- [Baseline]: the optimized data-parallel version of §6 — one thread
       per point, constants through the constant cache, LDG texture loads
       on Kepler, spilling to local memory;}
    {- [Naive_warp_specialized]: warp specialization without overlaying
       (top-level warp switch, inline constants) — Fig. 9's strawman.}} *)

type version = Warp_specialized | Baseline | Naive_warp_specialized

val version_name : version -> string
(** ["ws"], ["baseline"] or ["naive"]. *)

val version_of_string : string -> version option

type chem_comm = Chem_staged | Chem_recompute | Chem_mixed
(** How chemistry's species vectors reach their consumer warps: staged
    through shared memory ([Chem_staged]), redundantly recomputed per warp
    ([Chem_recompute]), or concentrations staged with Gibbs energies
    recomputed ([Chem_mixed]). *)

type partition = Partition_hand | Partition_auto of Mapping.auto_spec
(** Where the warp assignment comes from: the partitioner's domain hints
    ([Partition_hand], the paper's §4.1 mapping, the default) or a
    structure-derived candidate ({!Mapping.map_auto}) proposed by
    {!Partition_search}. The data-parallel [Baseline] version maps onto a
    single warp either way and ignores this knob. *)

val partition_name : partition -> string
(** ["hand"] or ["auto"]. *)

type options = {
  arch : Gpusim.Arch.t;
  n_warps : int;  (** warps per CTA *)
  weights : Mapping.weights;
  strategy : Mapping.strategy option;  (** [None]: the kernel's default *)
  respect_hints : bool;
  group_syncs : bool;
  buffer_slots : int;
  exp_consts_in_registers : bool;  (** §6.1 ablation *)
  freg_budget : int option;
      (** double registers per thread; [None]: the architecture maximum *)
  param_stripe_threshold : int;
  max_barriers : int;
      (** named-barrier ids per CTA (16 / target CTAs-per-SM, §4.2
          footnote) *)
  ctas_per_sm_target : int;
      (** desired occupancy; bounds the default register budget (§4.1's
          "command line flag specifies the target number of CTAs per SM") *)
  chem_comm : chem_comm option;
      (** chemistry only — communication policy for the species vectors;
          [None] (default) stages everything through shared memory, which
          measured fastest end-to-end (kept as a knob for the ablation
          benchmark) *)
  full_range_thermo : bool;
      (** chemistry only — evaluate both NASA-7 ranges with branchless
          selection on T vs t_mid, so grids below the polynomial mid
          temperature are handled (default [false]: single high range, the
          combustion regime) *)
  synth_exchange : bool option;
      (** the {!Shuffle_synth} exchange rewrite ([--synth-exchange]):
          same-warp shared round-trips become register forwards / shuffle
          swizzles and freed store-region slots leave the shared footprint.
          [None] (default) resolves per architecture — on exactly when the
          broadcast style is {!Gpusim.Arch.Shuffle}, since non-identity
          swizzle programs are shuffle instructions *)
  stencil_overlap : bool;
      (** stencil kernels only ([--stencil-overlap]) — overlapped tiling:
          upstream warps recompute halo columns so each downstream warp
          reads its whole tile from exactly one upstream warp (default
          [true]); [false] computes every column once and exchanges halos
          cross-warp through shared memory *)
  partition : partition;
      (** [--partition hand|auto]: hand (domain-hint) mapping or a
          searched {!Mapping.auto_spec}; part of the memo key like every
          other option *)
}

val default_options : Gpusim.Arch.t -> options

val check_options :
  Chem.Mechanism.t -> Kernel_abi.kernel -> version -> options ->
  (unit, Diagnostics.t) result
(** Typed rejection of out-of-range options before the pipeline runs:
    [n_warps] below the version's minimum (warp specialization needs at
    least a producer and a consumer warp) or beyond what the architecture
    can host in one CTA, an empty transport ring ([buffer_slots = 0]), a
    barrier budget outside the 16 hardware ids, a zero occupancy target, or
    a register budget too small to lower any expression. *)

val default_strategy : Kernel_abi.kernel -> Mapping.strategy
(** Store for viscosity, Mixed for diffusion, Buffer for chemistry: its
    reaction rates stay in registers and exchange through the shared
    buffer; only the explicitly staged species vectors (Listing 4's
    [scratch]) live in shared memory (§4.1). Stencil kernels use Store:
    tile handoffs are static single-writer values read at known offsets. *)

type t = {
  mech : Chem.Mechanism.t;
  kernel : Kernel_abi.kernel;
  version : version;
  options : options;
  dfg : Dfg.t;
  mapping : Mapping.t;
  schedule : Schedule.t;
  lowered : Lower.output;
}

val compile :
  Chem.Mechanism.t -> Kernel_abi.kernel -> version -> options -> t
(** Thin wrapper over {!compile_with_report} without validation passes.
    Raises {!Diagnostics.Fail} on invalid options and [Failure] when a
    stage cannot fit the configuration (as before the pass refactor). *)

val compile_with_report :
  ?validate:bool ->
  Chem.Mechanism.t -> Kernel_abi.kernel -> version -> options ->
  t * Pass.report
(** Run the pipeline under the pass manager and return the artifact
    together with per-pass wall-clock timings and artifact statistics.
    With [validate] (default [true]) the four inter-pass validation passes
    run after their producing stage; a failed validation raises
    {!Diagnostics.Fail} carrying the pass name. *)

val compile_checked :
  ?validate:bool ->
  Chem.Mechanism.t -> Kernel_abi.kernel -> version -> options ->
  (t * Pass.report, Diagnostics.t) result
(** {!compile_with_report} with every user-reachable failure — invalid
    options, validation-pass rejections, and a stage's inability to fit
    the configuration — returned as a typed diagnostic instead of an
    exception. The entry point drivers should use. *)

val compile_cached :
  Chem.Mechanism.t -> Kernel_abi.kernel -> version -> options -> t
(** {!compile} through a process-wide memo table keyed by the digest of
    the entire (mechanism, kernel, version, options) configuration — the
    pipeline is deterministic, so identical configurations compile once
    per process no matter how many sweep workers ask. Thread-safe; only
    successful compiles are cached (failures re-raise every time). *)

val memo_clear : unit -> unit
(** Drop every memoized compilation (for tests and long-lived servers). *)

type memo_stats = {
  size : int;  (** entries currently cached *)
  limit : int;  (** the bound {!set_memo_limit} installed (default 512) *)
  hits : int;  (** lookups served from the cache (re-verified) *)
  misses : int;  (** lookups that had to compile *)
  evictions : int;  (** entries dropped by the LRU bound *)
  corruptions : int;
      (** hits whose stored artifact failed fingerprint re-verification
          and were dropped + recompiled instead of served *)
}

val memo_stats : unit -> memo_stats
(** Counter snapshot for perf JSON and the serve [stats] endpoint.
    Counters are process-lifetime and survive {!memo_clear} (only the
    entries are dropped). *)

val memo_limit : unit -> int

val set_memo_limit : int -> unit
(** Install a new entry bound (clamped to at least 1), evicting LRU
    entries immediately if the table is over it. A long-lived daemon
    would otherwise leak one lowered program per distinct configuration
    it ever saw. *)

val memo_poison_for_test : unit -> bool
(** Corrupt the stored fingerprint of one cached entry (test hook for
    the re-verification path); [false] when the cache is empty. *)

type ir_stage = Ir_dfg | Ir_mapping | Ir_schedule | Ir_lower

val ir_stage_of_string : string -> ir_stage option
(** ["dfg"], ["mapping"], ["schedule"] or ["lower"]. *)

val ir_stage_name : ir_stage -> string

val dump_ir : Format.formatter -> t -> ir_stage -> unit
(** Print the intermediate artifact a pass produced ([--dump-ir]): the
    dataflow graph with its expressions, the warp mapping, the per-warp
    action schedule, or the lowered program. *)

val default_ctas : t -> total_points:int -> int
(** Launch-grid size: warp-specialized kernels use a fixed CTA grid (1024,
    capped so each CTA gets at least one 32-point batch) so larger problems
    amortize the constant-loading prologue over more batches (§6.2);
    the baseline launches one thread per point and raises a positioned
    {!Diagnostics.Fail} (pass ["launch"]) when the point count does not
    divide into whole CTAs. *)

type run_result = {
  machine : Gpusim.Machine.result;
  max_rel_err : float;
      (** worst relative error of the simulated points' outputs against the
          host reference *)
  outputs : float array array;
}

val run :
  ?ctas:int ->
  ?check:bool ->
  ?seed:int64 ->
  ?t_range:float * float ->
  ?faults:Gpusim.Fault.t list ->
  ?max_cycles:int ->
  ?profile:Gpusim.Sm.profile_spec ->
  ?n_sms:int ->
  ?skew:float ->
  t ->
  total_points:int ->
  run_result
(** Simulates the kernel on a reproducible random grid; when [check] (the
    default) the functional outputs of all simulated points are compared
    against {!Chem.Ref_kernels}. [t_range] overrides the grid's temperature
    interval (pair it with {!options.full_range_thermo} when going below
    the NASA mid temperature).

    [faults] injects trace-level faults ({!Gpusim.Fault}) and
    [max_cycles] arms the simulator watchdog; a fault-containing run may
    then raise {!Gpusim.Sm.Simulation_fault} instead of returning.

    [profile] turns on the per-warp cycle-attribution ledger
    ({!Gpusim.Profile}); the result lands in
    [machine.sim.Gpusim.Sm.profile].

    [n_sms] and [skew] override the architecture's SM count and per-SM
    clock skew for the chip-level scheduler ({!Gpusim.Chip}); the
    per-SM simulation and functional outputs are unaffected. *)
