(** Direct (scalar, host-side) interpretation of a dataflow graph for one
    grid point. This gives a third, independent evaluation of every kernel
    — used by tests to pin the DFG-construction stage against
    {!Chem.Ref_kernels} (combustion) or {!Stencil_pipe.reference}
    (stencil), separating partitioning bugs from code-generation bugs.

    The interpreter core ({!eval_env}) is input-layout agnostic; layout
    knowledge lives in the load environments. Unknown groups raise
    positioned {!Diagnostics.Fail} (pass ["dfg-interp"]) naming the
    graph, never bare [Invalid_argument]. *)

type inputs = {
  temp : float;
  pressure : float;
  mole_frac : float array;  (** indexed by computed-species position *)
  diffusion : float array;  (** indexed by computed-species position *)
}

val point_inputs : Chem.Mechanism.t -> Chem.Grid.t -> int -> inputs

val eval_env :
  Dfg.t -> load:(group:string -> field:int -> float) ->
  (int, float) Hashtbl.t
(** Evaluates every operation in topological order, reading loads through
    [load]; the result maps the [out] group's field index to the stored
    value. *)

val eval : Dfg.t -> inputs -> (int, float) Hashtbl.t
(** {!eval_env} with the chemistry input groups. *)

val eval_stencil : Dfg.t -> source:float array -> (int, float) Hashtbl.t
(** {!eval_env} with the stencil ["image"] group read from one source
    scanline (indexed by column). *)

val eval_field : Dfg.t -> inputs -> int -> float
(** Value stored to [out] field [f]. Raises [Not_found] if the graph never
    stores it. *)
