(* The hardened long-running request loop behind `singe serve`.

   Design rules (DESIGN §15):

   - One request, one response, always. Every failure mode that can
     reach the request boundary — unparseable JSON, unknown kinds or
     fields, compile-pipeline rejections, contained simulation faults,
     fault specs matching nothing, unexpected exceptions — is mapped to
     a typed error response mirroring the CLI's exit-code taxonomy.
     [handle_line] never raises; a poisoned request leaves the loop
     serving the next one.

   - Deadlines degrade, they never hang. The request's wall budget
     derives a simulator cycle budget; a [Cycle_budget] abort answers
     from the analytic model ([Perf_model.predict]) with [degraded:
     true] and an explicit caveat. Genuine deadlocks and livelocks stay
     hard errors — degradation is reserved for "too slow", not "wrong".

   - Responses are deterministic. Payloads contain no wall-clock values
     (the only exception is an [overran_wall_deadline] marker that is
     absent on any in-budget request), and retried ids are replayed
     byte-identically from a bounded idempotency cache.

   - The loop distrusts its own output: every response is re-validated
     with [Json_check] before it is written. *)

type config = {
  deadline_ms : int;
  cycles_per_ms : int;
  max_queue : int;
  retry_after_ms : int;
  cache_entries : int;
  id_cache_entries : int;
}

let default_config =
  {
    deadline_ms = 2000;
    cycles_per_ms = 50_000;
    max_queue = 64;
    retry_after_ms = 50;
    cache_entries = 512;
    id_cache_entries = 256;
  }

(* The same hard ceiling Autotune arms: no request, whatever its
   deadline claims, may run the simulator past this. *)
let watchdog_ceiling = 200_000_000

(* ---- wire protocol ---- *)

type target = {
  t_mech : string;
  t_kernel : string;
  t_arch : string;
  t_version : string;
  t_warps : int;
  t_points : int;
  t_synth : bool option;
  t_partition : string;
}

type payload =
  | Compile_req of target
  | Run_req of {
      target : target;
      faults : string list;
      max_cycles : int option;
    }
  | Predict_req of target
  | Tune_req of { target : target; top_k : int }
  | Health_req
  | Stats_req
  | Shutdown_req

type request = {
  req_id : string option;
  req_deadline_ms : int option;
  req : payload;
}

let default_target =
  {
    t_mech = "dme";
    t_kernel = "viscosity";
    t_arch = "kepler";
    t_version = "ws";
    t_warps = 8;
    t_points = 8192;
    t_synth = None;
    t_partition = "hand";
  }

let kind_name = function
  | Compile_req _ -> "compile"
  | Run_req _ -> "run"
  | Predict_req _ -> "predict"
  | Tune_req _ -> "tune"
  | Health_req -> "health"
  | Stats_req -> "stats"
  | Shutdown_req -> "shutdown"

module J = Sutil.Json

let request_to_json r =
  let open J in
  let base =
    (match r.req_id with Some s -> [ ("id", Str s) ] | None -> [])
    @ (match r.req_deadline_ms with
      | Some d -> [ ("deadline_ms", Num (float_of_int d)) ]
      | None -> [])
    @ [ ("kind", Str (kind_name r.req)) ]
  in
  let target t =
    [
      ("mech", Str t.t_mech);
      ("kernel", Str t.t_kernel);
      ("arch", Str t.t_arch);
      ("version", Str t.t_version);
      ("warps", Num (float_of_int t.t_warps));
      ("points", Num (float_of_int t.t_points));
    ]
    @ (match t.t_synth with
      | Some b -> [ ("synth_exchange", Bool b) ]
      | None -> [])
    @
    match t.t_partition with
    | "hand" -> []
    | p -> [ ("partition", Str p) ]
  in
  let rest =
    match r.req with
    | Compile_req t | Predict_req t -> target t
    | Run_req { target = t; faults; max_cycles } ->
        target t
        @ (match faults with
          | [] -> []
          | fs -> [ ("faults", List (Stdlib.List.map (fun f -> Str f) fs)) ])
        @ (match max_cycles with
          | Some m -> [ ("max_cycles", Num (float_of_int m)) ]
          | None -> [])
    | Tune_req { target = t; top_k } ->
        target t @ [ ("top_k", Num (float_of_int top_k)) ]
    | Health_req | Stats_req | Shutdown_req -> []
  in
  J.emit (Obj (base @ rest))

(* Strict decoding: unknown fields are rejected (the Fault.of_string
   lesson — a silently dropped typo means the server answers a question
   the client did not ask), and every integer budget must be positive. *)

let ( let* ) = Result.bind

let envelope_keys = [ "id"; "deadline_ms"; "kind" ]
let target_keys =
  [
    "mech";
    "kernel";
    "arch";
    "version";
    "warps";
    "points";
    "synth_exchange";
    "partition";
  ]

let check_fields doc allowed =
  match doc with
  | J.Obj members ->
      List.fold_left
        (fun acc (k, _) ->
          let* () = acc in
          if List.mem k allowed then Ok ()
          else
            Error
              (Printf.sprintf "unknown field %S (expected one of %s)" k
                 (String.concat ", " allowed)))
        (Ok ()) members
  | _ -> Error "request must be a JSON object"

let opt_field doc key conv what =
  match J.member key doc with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None ->
          Error
            (Printf.sprintf "field %S must be %s, got %s" key what
               (J.to_string_brief v)))

let opt_pos_int doc key =
  let* v = opt_field doc key J.int "a positive integer" in
  match v with
  | Some n when n < 1 ->
      Error (Printf.sprintf "field %S must be >= 1, got %d" key n)
  | v -> Ok v

let target_of doc =
  let dflt = default_target in
  let* mech = opt_field doc "mech" J.str "a string" in
  let* kernel = opt_field doc "kernel" J.str "a string" in
  let* arch = opt_field doc "arch" J.str "a string" in
  let* version = opt_field doc "version" J.str "a string" in
  let* warps = opt_pos_int doc "warps" in
  let* points = opt_pos_int doc "points" in
  let* synth = opt_field doc "synth_exchange" J.bool "a boolean" in
  let* partition = opt_field doc "partition" J.str "a string" in
  let* partition =
    match partition with
    | None -> Ok dflt.t_partition
    | Some ("hand" | "auto") -> Ok (Option.get partition)
    | Some other ->
        Error
          (Printf.sprintf
             "field \"partition\" must be \"hand\" or \"auto\", got %S" other)
  in
  Ok
    {
      t_mech = Option.value mech ~default:dflt.t_mech;
      t_kernel = Option.value kernel ~default:dflt.t_kernel;
      t_arch = Option.value arch ~default:dflt.t_arch;
      t_version = Option.value version ~default:dflt.t_version;
      t_warps = Option.value warps ~default:dflt.t_warps;
      t_points = Option.value points ~default:dflt.t_points;
      t_synth = synth;
      t_partition = partition;
    }

let request_of_json doc =
  let* () =
    match doc with
    | J.Obj _ -> Ok ()
    | v ->
        Error
          (Printf.sprintf "request must be a JSON object, got %s"
             (J.to_string_brief v))
  in
  let* id = opt_field doc "id" J.str "a string" in
  let* deadline = opt_pos_int doc "deadline_ms" in
  let* kind =
    match J.member "kind" doc with
    | None -> Error "missing field \"kind\""
    | Some v -> (
        match J.str v with
        | Some s -> Ok s
        | None ->
            Error
              (Printf.sprintf "field \"kind\" must be a string, got %s"
                 (J.to_string_brief v)))
  in
  let* payload =
    match kind with
    | "compile" ->
        let* () = check_fields doc (envelope_keys @ target_keys) in
        let* t = target_of doc in
        Ok (Compile_req t)
    | "predict" ->
        let* () = check_fields doc (envelope_keys @ target_keys) in
        let* t = target_of doc in
        Ok (Predict_req t)
    | "run" ->
        let* () =
          check_fields doc
            (envelope_keys @ target_keys @ [ "faults"; "max_cycles" ])
        in
        let* t = target_of doc in
        let* faults =
          match J.member "faults" doc with
          | None -> Ok []
          | Some v -> (
              match J.list v with
              | None ->
                  Error
                    (Printf.sprintf
                       "field \"faults\" must be an array of strings, got %s"
                       (J.to_string_brief v))
              | Some items ->
                  List.fold_left
                    (fun acc item ->
                      let* fs = acc in
                      match J.str item with
                      | Some s -> Ok (s :: fs)
                      | None ->
                          Error
                            (Printf.sprintf
                               "field \"faults\" must contain strings, got %s"
                               (J.to_string_brief item)))
                    (Ok []) items
                  |> Result.map List.rev)
        in
        let* max_cycles = opt_pos_int doc "max_cycles" in
        Ok (Run_req { target = t; faults; max_cycles })
    | "tune" ->
        let* () = check_fields doc (envelope_keys @ target_keys @ [ "top_k" ]) in
        let* t = target_of doc in
        let* top_k = opt_pos_int doc "top_k" in
        Ok
          (Tune_req
             { target = t; top_k = Option.value top_k ~default:Autotune.default_prune_keep })
    | "health" ->
        let* () = check_fields doc envelope_keys in
        Ok Health_req
    | "stats" ->
        let* () = check_fields doc envelope_keys in
        Ok Stats_req
    | "shutdown" ->
        let* () = check_fields doc envelope_keys in
        Ok Shutdown_req
    | other ->
        Error
          (Printf.sprintf
             "unknown kind %S (expected compile, run, predict, tune, health, \
              stats or shutdown)"
             other)
  in
  Ok { req_id = id; req_deadline_ms = deadline; req = payload }

let parse_request line =
  let* doc =
    Result.map_error (fun m -> "request is not valid JSON: " ^ m)
      (J.parse line)
  in
  request_of_json doc

(* ---- the serving state ---- *)

type counters = {
  mutable total : int;
  mutable ok : int;
  mutable errors : int;
  mutable degraded : int;
  mutable wall_overruns : int;
  (* per kind *)
  mutable n_compile : int;
  mutable n_run : int;
  mutable n_predict : int;
  mutable n_tune : int;
  mutable n_health : int;
  mutable n_stats : int;
  mutable n_shutdown : int;
  (* per error class *)
  mutable e_bad_request : int;
  mutable e_rejected : int;
  mutable e_fault : int;
  mutable e_internal : int;
  mutable e_busy : int;
  (* caches and self-checks *)
  mutable id_cache_hits : int;
  mutable tune_cache_hits : int;
  mutable json_check_failures : int;
}

type id_entry = {
  ie_digest : string;
  ie_response : string;
  mutable ie_last_use : int;
}

type state = {
  cfg : config;
  c : counters;
  queue : string Queue.t;
  id_cache : (string, id_entry) Hashtbl.t;
  mutable id_tick : int;
  tune_cache : (string, (string * J.t) list) Hashtbl.t;
}

(* A config hole found the hard way: [deadline_ms <= 0] used to slip
   through here, [budget_cycles] silently clamped the resulting
   non-positive cycle budget to the 10k floor, and every defaulted
   request came back [degraded:true] with a misleading caveat. Reject the
   configuration at construction instead. *)
let check_config c =
  let bad what v =
    invalid_arg (Printf.sprintf "Serve.create: %s = %d must be >= 1" what v)
  in
  if c.deadline_ms < 1 then bad "deadline_ms" c.deadline_ms;
  if c.cycles_per_ms < 1 then bad "cycles_per_ms" c.cycles_per_ms;
  if c.max_queue < 1 then bad "max_queue" c.max_queue;
  if c.retry_after_ms < 1 then bad "retry_after_ms" c.retry_after_ms;
  if c.cache_entries < 1 then bad "cache_entries" c.cache_entries;
  if c.id_cache_entries < 1 then bad "id_cache_entries" c.id_cache_entries

let create ?(config = default_config) () =
  check_config config;
  Compile.set_memo_limit config.cache_entries;
  {
    cfg = config;
    c =
      {
        total = 0;
        ok = 0;
        errors = 0;
        degraded = 0;
        wall_overruns = 0;
        n_compile = 0;
        n_run = 0;
        n_predict = 0;
        n_tune = 0;
        n_health = 0;
        n_stats = 0;
        n_shutdown = 0;
        e_bad_request = 0;
        e_rejected = 0;
        e_fault = 0;
        e_internal = 0;
        e_busy = 0;
        id_cache_hits = 0;
        tune_cache_hits = 0;
        json_check_failures = 0;
      };
    queue = Queue.create ();
    id_cache = Hashtbl.create 64;
    id_tick = 0;
    tune_cache = Hashtbl.create 16;
  }

let queue_depth st = Queue.length st.queue
let requests_total st = st.c.total

(* ---- response construction ---- *)

(* Error taxonomy, mirroring the CLI (DESIGN §15 table): bad-request ~
   a cmdliner usage error (124), compile-rejected = exit 2,
   simulation-fault = exit 3, internal = exit 1; busy has no CLI analog
   and carries the retry hint instead. *)
type error_class = Bad_request | Rejected | Faulted | Busy | Internal

let class_name = function
  | Bad_request -> "bad-request"
  | Rejected -> "compile-rejected"
  | Faulted -> "simulation-fault"
  | Busy -> "busy"
  | Internal -> "internal"

let class_exit = function
  | Bad_request -> Some 124
  | Rejected -> Some 2
  | Faulted -> Some 3
  | Internal -> Some 1
  | Busy -> None

let id_json = function Some s -> J.Str s | None -> J.Null

let ok_response st id kind fields =
  st.c.ok <- st.c.ok + 1;
  J.Obj
    ([ ("id", id_json id); ("status", J.Str "ok"); ("kind", J.Str kind) ]
    @ fields)

let error_response st id cls msg extra =
  st.c.errors <- st.c.errors + 1;
  (match cls with
  | Bad_request -> st.c.e_bad_request <- st.c.e_bad_request + 1
  | Rejected -> st.c.e_rejected <- st.c.e_rejected + 1
  | Faulted -> st.c.e_fault <- st.c.e_fault + 1
  | Busy -> st.c.e_busy <- st.c.e_busy + 1
  | Internal -> st.c.e_internal <- st.c.e_internal + 1);
  J.Obj
    ([ ("id", id_json id); ("status", J.Str "error");
       ("class", J.Str (class_name cls)) ]
    @ (match class_exit cls with
      | Some code -> [ ("exit_analog", J.Num (float_of_int code)) ]
      | None -> [])
    @ [ ("message", J.Str msg) ]
    @ extra)

(* The statically known-good fallback if an emitted response ever fails
   its own JSON self-check (an emitter bug, not a client error). *)
let fallback_response id =
  Printf.sprintf
    "{\"id\":%s,\"status\":\"error\",\"class\":\"internal\",\"exit_analog\":1,\
     \"message\":\"response failed JSON self-check\"}"
    (match id with
    | Some s -> "\"" ^ J.escape s ^ "\""
    | None -> "null")

let render st id doc =
  let s = J.emit doc in
  match Sutil.Json_check.validate s with
  | Ok () -> s
  | Error _ ->
      st.c.json_check_failures <- st.c.json_check_failures + 1;
      fallback_response id

(* ---- request execution ---- *)

exception Reply of error_class * string

let mech_table : (string, Chem.Mechanism.t Lazy.t) Hashtbl.t =
  let t = Hashtbl.create 4 in
  Hashtbl.add t "dme" (lazy (Chem.Mech_gen.dme ()));
  Hashtbl.add t "heptane" (lazy (Chem.Mech_gen.heptane ()));
  Hashtbl.add t "methane" (lazy (Chem.Mech_gen.methane ()));
  Hashtbl.add t "hydrogen" (lazy (Chem.Mech_gen.hydrogen ()));
  t

let resolve_target t =
  let mech =
    match Hashtbl.find_opt mech_table (String.lowercase_ascii t.t_mech) with
    | Some m -> Lazy.force m
    | None ->
        raise
          (Reply
             ( Bad_request,
               Printf.sprintf
                 "unknown mechanism %S (expected dme, heptane, methane or \
                  hydrogen)"
                 t.t_mech ))
  in
  let kernel =
    match Kernel_abi.kernel_of_string t.t_kernel with
    | Some k -> k
    | None ->
        raise
          (Reply (Bad_request, Printf.sprintf "unknown kernel %S" t.t_kernel))
  in
  let arch =
    match Gpusim.Arch.by_name t.t_arch with
    | Some a -> a
    | None ->
        raise
          (Reply
             (Bad_request, Printf.sprintf "unknown architecture %S" t.t_arch))
  in
  let version =
    match Compile.version_of_string t.t_version with
    | Some v -> v
    | None ->
        raise
          (Reply (Bad_request, Printf.sprintf "unknown version %S" t.t_version))
  in
  let options =
    {
      (Compile.default_options arch) with
      Compile.n_warps = t.t_warps;
      max_barriers = (if kernel = Kernel_abi.Chemistry then 16 else 8);
      ctas_per_sm_target = (if kernel = Kernel_abi.Chemistry then 1 else 2);
      synth_exchange = t.t_synth;
    }
  in
  let options =
    (* "auto" resolves through the model-only partition search (compile
       memo shared, so a repeated target resolves from cache); pipeline
       failures of the search itself are typed rejections like any other
       compile failure. *)
    if t.t_partition <> "auto" then options
    else
      match
        Partition_search.resolve_options mech kernel version ~base:options
      with
      | o -> o
      | exception Diagnostics.Fail d ->
          raise (Reply (Rejected, Diagnostics.to_string d))
      | exception Failure msg -> raise (Reply (Rejected, "pipeline: " ^ msg))
  in
  (mech, kernel, arch, version, options)

(* The baseline launches one thread per point; a non-divisible grid
   would trip Compile.default_ctas' assertion mid-simulation. Reject it
   as a configuration error up front, like the CLI's predict skip. *)
let check_divisibility t version =
  if version = Compile.Baseline && t.t_points mod (t.t_warps * 32) <> 0 then
    raise
      (Reply
         ( Rejected,
           Printf.sprintf
             "baseline needs points divisible by warps*32 (%d points, %d \
              warps)"
             t.t_points t.t_warps ))

(* Compile with the shared bounded memo; pipeline failures become typed
   rejections exactly as Compile.compile_checked classifies them. *)
let compile_target mech kernel version options =
  match Compile.compile_cached mech kernel version options with
  | c -> c
  | exception Diagnostics.Fail d -> raise (Reply (Rejected, Diagnostics.to_string d))
  | exception Failure msg -> raise (Reply (Rejected, "pipeline: " ^ msg))

(* deadline_ms -> simulator cycle budget, saturating at the watchdog
   ceiling (no deadline may disarm containment) with a floor that keeps
   trivial budgets from aborting inside the prologue bookkeeping. The
   floor is for positive-but-tiny deadlines only: a non-positive deadline
   can reach here neither from the wire (the parser rejects it as
   bad-request) nor from the config default ([check_config]), so treat it
   as the caller bug it is instead of silently serving a degraded
   answer. *)
let budget_cycles cfg deadline_ms =
  if deadline_ms < 1 then
    invalid_arg
      (Printf.sprintf "Serve.budget_cycles: deadline_ms = %d must be >= 1"
         deadline_ms);
  if deadline_ms >= watchdog_ceiling / cfg.cycles_per_ms then watchdog_ceiling
  else max 10_000 (deadline_ms * cfg.cycles_per_ms)

let num v = J.Num v
let numi v = J.Num (float_of_int v)

let finite_num v = if Float.is_finite v then J.Num v else J.Null

let occupancy_json (occ : Gpusim.Machine.occupancy) =
  J.Obj
    [
      ("resident_ctas", numi occ.Gpusim.Machine.resident_ctas);
      ("limited_by", J.Str occ.Gpusim.Machine.limited_by);
      ("warps_per_sm", numi occ.Gpusim.Machine.warps_per_sm);
    ]

let model_json (pred : Perf_model.prediction) =
  J.Obj
    [
      ("predicted_cycles", num pred.Perf_model.cycles);
      ("floor_cycles", num pred.Perf_model.floor_cycles);
      ("predicted_points_per_sec", num pred.Perf_model.points_per_sec);
      ("binding", J.Str pred.Perf_model.binding);
      ("time_s", num pred.Perf_model.time_s);
    ]

let strategy_name = function
  | Mapping.Store -> "store"
  | Mapping.Buffer -> "buffer"
  | Mapping.Mixed -> "mixed"

(* The searched-partition payload, shaped like the perf snapshot's v9
   per-entry "partition" object. *)
let partition_json (o : Partition_search.outcome) =
  J.Obj
    ([
       ( "mode",
         J.Str
           (match o.Partition_search.winner_spec with
           | None -> "hand"
           | Some _ -> "auto") );
       ("hand_cycles", num o.Partition_search.hand_cycles);
       ("winner_cycles", num o.Partition_search.winner_cycles);
       ("searched", numi o.Partition_search.searched);
       ("gated", numi o.Partition_search.gated);
       ("rejected", numi (List.length o.Partition_search.rejections));
       ("simulated", numi o.Partition_search.simulated);
       ("confirmed", J.Bool o.Partition_search.confirmed);
     ]
    @
    match o.Partition_search.winner_spec with
    | None -> []
    | Some s ->
        [
          ("producer_warps", numi s.Mapping.producer_warps);
          ("hub_threshold", numi s.Mapping.hub_threshold);
          ("chain_weight", num s.Mapping.chain_weight);
          ("strategy", J.Str (strategy_name s.Mapping.auto_strategy));
        ])

let degraded_caveat budget =
  Printf.sprintf
    "degraded answer: the simulation exceeded its %d-cycle deadline budget; \
     figures come from the analytic performance model (DESIGN #12, typical \
     error within ~25%%), not a completed simulation"
    budget

let handle_compile st id t =
  st.c.n_compile <- st.c.n_compile + 1;
  let mech, kernel, arch, version, options = resolve_target t in
  let c = compile_target mech kernel version options in
  let p = c.Compile.lowered.Lower.program in
  let occ = Gpusim.Machine.occupancy arch p in
  ok_response st id "compile"
    [
      ("program", J.Str p.Gpusim.Isa.name);
      ("instrs", numi (Gpusim.Isa.static_instr_count p.Gpusim.Isa.body));
      ("fregs", numi p.Gpusim.Isa.n_fregs);
      ("iregs", numi p.Gpusim.Isa.n_iregs);
      ("shared_bytes", numi (p.Gpusim.Isa.shared_doubles * 8));
      ("spill_bytes", numi c.Compile.lowered.Lower.spill_bytes_per_thread);
      ("barriers", numi c.Compile.schedule.Schedule.barriers_used);
      ("sync_points", numi c.Compile.schedule.Schedule.n_sync_points);
      ("occupancy", occupancy_json occ);
      ( "partition",
        J.Str (Compile.partition_name options.Compile.partition) );
    ]

let handle_predict st id t =
  st.c.n_predict <- st.c.n_predict + 1;
  let mech, kernel, _arch, version, options = resolve_target t in
  check_divisibility t version;
  let c = compile_target mech kernel version options in
  let pred = Perf_model.predict c ~total_points:t.t_points in
  ok_response st id "predict"
    [
      ("points", numi t.t_points);
      ("model", model_json pred);
      ("partition", J.Str (Compile.partition_name options.Compile.partition));
    ]

let handle_run st id deadline_ms ~target:t ~faults ~max_cycles =
  st.c.n_run <- st.c.n_run + 1;
  let mech, kernel, _arch, version, options = resolve_target t in
  check_divisibility t version;
  let faults =
    List.map
      (fun spec ->
        match Gpusim.Fault.of_string spec with
        | Ok f -> f
        | Error msg -> raise (Reply (Bad_request, msg)))
      faults
  in
  let c = compile_target mech kernel version options in
  let derived = budget_cycles st.cfg deadline_ms in
  let budget = match max_cycles with Some m -> min m derived | None -> derived in
  match Compile.run c ~total_points:t.t_points ~faults ~max_cycles:budget with
  | r ->
      let m = r.Compile.machine in
      ok_response st id "run"
        [
          ("degraded", J.Bool false);
          ("budget_cycles", numi budget);
          ("sm_cycles", numi m.Gpusim.Machine.sm_cycles);
          ("points_per_sec", num m.Gpusim.Machine.points_per_sec);
          ("gflops", num m.Gpusim.Machine.gflops);
          ("dram_gbs", num m.Gpusim.Machine.dram_gbs);
          ("max_rel_err", finite_num r.Compile.max_rel_err);
          ( "outputs_ok",
            J.Bool
              ((not (Float.is_nan r.Compile.max_rel_err))
              && r.Compile.max_rel_err < 1e-6) );
          ("simulated_points", numi m.Gpusim.Machine.simulated_points);
        ]
  | exception Gpusim.Sm.Simulation_fault f
    when f.Gpusim.Sm.fault_kind = Gpusim.Sm.Cycle_budget ->
      (* The deadline fired, not a detector: answer from the model with
         the caveat instead of making the client wait out a hang. *)
      st.c.degraded <- st.c.degraded + 1;
      let pred = Perf_model.predict c ~total_points:t.t_points in
      ok_response st id "run"
        [
          ("degraded", J.Bool true);
          ("budget_cycles", numi budget);
          ("aborted_at_cycle", numi f.Gpusim.Sm.fault_cycle);
          ("model", model_json pred);
          ("caveat", J.Str (degraded_caveat budget));
        ]
  | exception Gpusim.Sm.Simulation_fault f ->
      error_response st id Faulted
        (Printf.sprintf "%s at cycle %d: %s"
           (Gpusim.Sm.fault_kind_name f.Gpusim.Sm.fault_kind)
           f.Gpusim.Sm.fault_cycle f.Gpusim.Sm.detail)
        [
          ( "fault",
            J.Obj
              [
                ("kind", J.Str (Gpusim.Sm.fault_kind_name f.Gpusim.Sm.fault_kind));
                ("cycle", numi f.Gpusim.Sm.fault_cycle);
                ("warps", numi (List.length f.Gpusim.Sm.warp_dumps));
                ( "pending_barriers",
                  numi (List.length f.Gpusim.Sm.barrier_dumps) );
              ] );
        ]

(* Model-only tune: rank the compilable grid purely with Perf_model.
   This is both the degraded path (when every simulated candidate died
   inside the deadline budget) and deliberately cheap — no simulation. *)
let model_only_tune t mech kernel version arch =
  let warp_candidates = Autotune.default_warp_candidates mech kernel version in
  let grid =
    Autotune.candidate_options ?synth_exchange:t.t_synth ~points:t.t_points
      kernel version arch warp_candidates [ 1; 2 ]
  in
  let scored =
    List.filter_map
      (fun (o : Compile.options) ->
        match Compile.compile_cached mech kernel version o with
        | c -> Some (o, Perf_model.predict c ~total_points:t.t_points)
        | exception _ -> None)
      grid
  in
  match scored with
  | [] -> None
  | _ ->
      let best =
        List.fold_left
          (fun acc cand ->
            match acc with
            | None -> Some cand
            | Some (_, bp) ->
                let _, cp = cand in
                (* strict >: ties keep the earlier (lower-index) candidate *)
                if
                  cp.Perf_model.points_per_sec > bp.Perf_model.points_per_sec
                then Some cand
                else acc)
          None scored
      in
      Option.map (fun b -> (b, List.length scored)) best

let tune_key r = Digest.to_hex (Digest.string (request_to_json r))

let handle_tune st id deadline_ms ~target:t ~top_k =
  st.c.n_tune <- st.c.n_tune + 1;
  (* Resolve the hand base even for partition:"auto" — the search wants
     the un-searched options as its baseline, not a pre-resolved winner. *)
  let mech, kernel, arch, version, base =
    resolve_target { t with t_partition = "hand" }
  in
  let key =
    tune_key
      {
        req_id = None;
        req_deadline_ms = Some deadline_ms;
        req = Tune_req { target = t; top_k };
      }
  in
  match Hashtbl.find_opt st.tune_cache key with
  | Some fields ->
      st.c.tune_cache_hits <- st.c.tune_cache_hits + 1;
      ok_response st id "tune" fields
  | None when t.t_partition = "auto" ->
      (* Partition-search tune: score/gate the structural candidates and
         confirm survivors by simulation (through Autotune's grid mode),
         degrading to the model-only ranking when the deadline budget
         kills every simulation. *)
      let budget = budget_cycles st.cfg deadline_ms in
      let searched ~simulate =
        Partition_search.search ~points:t.t_points ~top_k ~max_cycles:budget
          ~simulate mech kernel version ~base ()
      in
      let fields =
        match searched ~simulate:true with
        | Ok o ->
            [
              ("degraded", J.Bool false);
              ("budget_cycles", numi budget);
              ("partition", partition_json o);
              ( "best",
                J.Obj
                  [
                    ("warps", numi o.Partition_search.winner.Compile.n_warps);
                    ( "ctas_per_sm",
                      numi
                        o.Partition_search.winner.Compile.ctas_per_sm_target
                    );
                    ( "buffer_slots",
                      numi o.Partition_search.winner.Compile.buffer_slots );
                  ] );
            ]
        | Error _ -> (
            match searched ~simulate:false with
            | Ok o ->
                st.c.degraded <- st.c.degraded + 1;
                [
                  ("degraded", J.Bool true);
                  ("budget_cycles", numi budget);
                  ("partition", partition_json o);
                  ("caveat", J.Str (degraded_caveat budget));
                ]
            | Error d -> raise (Reply (Rejected, Diagnostics.to_string d)))
      in
      if Hashtbl.length st.tune_cache >= 64 then Hashtbl.reset st.tune_cache;
      Hashtbl.replace st.tune_cache key fields;
      ok_response st id "tune" fields
  | None ->
      let budget = budget_cycles st.cfg deadline_ms in
      let fields =
        match
          Autotune.tune ~points:t.t_points ~max_cycles:budget
            ~mode:(Autotune.Pruned top_k) ?synth_exchange:t.t_synth mech kernel
            version arch
        with
        | o ->
            let b = o.Autotune.best in
            [
              ("degraded", J.Bool false);
              ("budget_cycles", numi budget);
              ("tried", numi o.Autotune.tried);
              ("skipped", numi o.Autotune.skipped);
              ("candidates_pruned", numi o.Autotune.candidates_pruned);
              ("model_rank_of_winner", numi o.Autotune.model_rank_of_winner);
              ( "best",
                J.Obj
                  [
                    ("warps", numi b.Autotune.options.Compile.n_warps);
                    ( "ctas_per_sm",
                      numi b.Autotune.options.Compile.ctas_per_sm_target );
                    ("points_per_sec", num b.Autotune.throughput);
                    ( "predicted_points_per_sec",
                      num b.Autotune.predicted.Perf_model.points_per_sec );
                  ] );
            ]
        | exception Failure _ -> (
            (* Every candidate died inside the deadline budget (or
               nothing ran at all): degrade to a model-only ranking. *)
            match model_only_tune t mech kernel version arch with
            | None ->
                raise
                  (Reply
                     ( Rejected,
                       "no tuning candidate compiles for this configuration" ))
            | Some ((o, pred), ranked) ->
                st.c.degraded <- st.c.degraded + 1;
                [
                  ("degraded", J.Bool true);
                  ("budget_cycles", numi budget);
                  ("candidates_ranked", numi ranked);
                  ( "best",
                    J.Obj
                      [
                        ("warps", numi o.Compile.n_warps);
                        ("ctas_per_sm", numi o.Compile.ctas_per_sm_target);
                        ( "predicted_points_per_sec",
                          num pred.Perf_model.points_per_sec );
                      ] );
                  ("caveat", J.Str (degraded_caveat budget));
                ])
      in
      (* Bound the tuned-config cache like everything else long-lived. *)
      if Hashtbl.length st.tune_cache >= 64 then Hashtbl.reset st.tune_cache;
      Hashtbl.replace st.tune_cache key fields;
      ok_response st id "tune" fields

let memo_stats_json () =
  let ms = Compile.memo_stats () in
  J.Obj
    [
      ("size", numi ms.Compile.size);
      ("limit", numi ms.Compile.limit);
      ("hits", numi ms.Compile.hits);
      ("misses", numi ms.Compile.misses);
      ("evictions", numi ms.Compile.evictions);
      ("corruptions", numi ms.Compile.corruptions);
    ]

let handle_health st id =
  st.c.n_health <- st.c.n_health + 1;
  ok_response st id "health"
    [
      ("live", J.Bool true);
      ("requests_total", numi st.c.total);
      ("requests_ok", numi st.c.ok);
      ("requests_error", numi st.c.errors);
      ("degraded", numi st.c.degraded);
      ("queue_depth", numi (Queue.length st.queue));
      ("queue_bound", numi st.cfg.max_queue);
      ("live_domains", numi (Sutil.Domain_pool.live_domains ()));
      ("compile_cache", memo_stats_json ());
    ]

let handle_stats st id =
  st.c.n_stats <- st.c.n_stats + 1;
  ok_response st id "stats"
    [
      ("requests_total", numi st.c.total);
      ("requests_ok", numi st.c.ok);
      ("requests_error", numi st.c.errors);
      ("degraded", numi st.c.degraded);
      ("wall_overruns", numi st.c.wall_overruns);
      ( "by_kind",
        J.Obj
          [
            ("compile", numi st.c.n_compile);
            ("run", numi st.c.n_run);
            ("predict", numi st.c.n_predict);
            ("tune", numi st.c.n_tune);
            ("health", numi st.c.n_health);
            ("stats", numi st.c.n_stats);
            ("shutdown", numi st.c.n_shutdown);
          ] );
      ( "by_class",
        J.Obj
          [
            ("bad_request", numi st.c.e_bad_request);
            ("compile_rejected", numi st.c.e_rejected);
            ("simulation_fault", numi st.c.e_fault);
            ("busy", numi st.c.e_busy);
            ("internal", numi st.c.e_internal);
          ] );
      ("queue_depth", numi (Queue.length st.queue));
      ("queue_bound", numi st.cfg.max_queue);
      ("compile_cache", memo_stats_json ());
      ( "id_cache",
        J.Obj
          [
            ("size", numi (Hashtbl.length st.id_cache));
            ("limit", numi st.cfg.id_cache_entries);
            ("hits", numi st.c.id_cache_hits);
          ] );
      ( "tune_cache",
        J.Obj
          [
            ("size", numi (Hashtbl.length st.tune_cache));
            ("hits", numi st.c.tune_cache_hits);
          ] );
      ( "domain_pool",
        J.Obj
          [
            ("live_domains", numi (Sutil.Domain_pool.live_domains ()));
            ( "nested_serial_calls",
              numi (Sutil.Domain_pool.nested_serial_calls ()) );
          ] );
      ("json_check_failures", numi st.c.json_check_failures);
    ]

(* ---- the request boundary ---- *)

let dispatch st id deadline_ms req =
  match req with
  | Compile_req t -> handle_compile st id t
  | Predict_req t -> handle_predict st id t
  | Run_req { target; faults; max_cycles } ->
      handle_run st id deadline_ms ~target ~faults ~max_cycles
  | Tune_req { target; top_k } -> handle_tune st id deadline_ms ~target ~top_k
  | Health_req -> handle_health st id
  | Stats_req -> handle_stats st id
  | Shutdown_req ->
      st.c.n_shutdown <- st.c.n_shutdown + 1;
      ok_response st id "shutdown" [ ("stopping", J.Bool true) ]

(* Everything user-reachable maps to a typed class; anything else is an
   internal error, answered and counted, never a crash of the loop. *)
let contained st id deadline_ms req =
  match dispatch st id deadline_ms req with
  | resp -> resp
  | exception Reply (cls, msg) -> error_response st id cls msg []
  | exception Diagnostics.Fail d ->
      error_response st id Rejected (Diagnostics.to_string d) []
  | exception Gpusim.Chip.Occupancy_rejected r ->
      error_response st id Rejected
        ("occupancy: " ^ Gpusim.Chip.reject_message r)
        []
  | exception Gpusim.Sm.Simulation_fault f ->
      error_response st id Faulted
        (Printf.sprintf "%s at cycle %d: %s"
           (Gpusim.Sm.fault_kind_name f.Gpusim.Sm.fault_kind)
           f.Gpusim.Sm.fault_cycle f.Gpusim.Sm.detail)
        []
  | exception Invalid_argument msg ->
      (* A fault spec matching nothing in the trace, or an out-of-range
         barrier id: a configuration error, as in the CLI (exit 2). *)
      error_response st id Rejected msg []
  | exception Sutil.Domain_pool.Invalid_jobs msg ->
      error_response st id Internal msg []
  | exception Stack_overflow -> error_response st id Internal "stack overflow" []
  | exception Out_of_memory -> error_response st id Internal "out of memory" []
  | exception e ->
      error_response st id Internal ("unexpected: " ^ Printexc.to_string e) []

let id_cache_insert st key entry =
  Hashtbl.replace st.id_cache key entry;
  if Hashtbl.length st.id_cache > st.cfg.id_cache_entries then begin
    let oldest = ref None in
    Hashtbl.iter
      (fun k e ->
        match !oldest with
        | Some (_, lru) when lru <= e.ie_last_use -> ()
        | _ -> oldest := Some (k, e.ie_last_use))
      st.id_cache;
    match !oldest with
    | Some (k, _) -> Hashtbl.remove st.id_cache k
    | None -> ()
  end

let handle_line st line =
  st.c.total <- st.c.total + 1;
  let started = Unix.gettimeofday () in
  match J.parse line with
  | Error msg ->
      let resp =
        error_response st None Bad_request ("request is not valid JSON: " ^ msg)
          []
      in
      (render st None resp, false)
  | Ok doc -> (
      (* Best-effort id extraction so even a rejected envelope echoes the
         id the client can correlate on. *)
      let raw_id = Option.bind (J.member "id" doc) J.str in
      match request_of_json doc with
      | Error msg ->
          (render st raw_id (error_response st raw_id Bad_request msg []), false)
      | Ok req -> (
          let stop = req.req = Shutdown_req in
          let deadline_ms =
            Option.value req.req_deadline_ms ~default:st.cfg.deadline_ms
          in
          let digest =
            Digest.to_hex
              (Digest.string (request_to_json { req with req_id = None }))
          in
          match
            Option.bind req.req_id (fun id ->
                Option.map (fun e -> (id, e)) (Hashtbl.find_opt st.id_cache id))
          with
          | Some (_, entry) when entry.ie_digest = digest ->
              (* Idempotent retry: replay the stored bytes verbatim. *)
              st.c.id_cache_hits <- st.c.id_cache_hits + 1;
              st.id_tick <- st.id_tick + 1;
              entry.ie_last_use <- st.id_tick;
              (entry.ie_response, false)
          | Some (id, _) ->
              let resp =
                error_response st req.req_id Bad_request
                  (Printf.sprintf
                     "id %S was already used for a different request; retries \
                      must repeat the original payload"
                     id)
                  []
              in
              (render st req.req_id resp, false)
          | None ->
              let resp = contained st req.req_id deadline_ms req.req in
              (* The wall side of the deadline: we cannot preempt a
                 running compile, but an overrun is recorded on the
                 response and in the stats. *)
              let elapsed_ms =
                int_of_float ((Unix.gettimeofday () -. started) *. 1000.)
              in
              let resp =
                if elapsed_ms > deadline_ms then begin
                  st.c.wall_overruns <- st.c.wall_overruns + 1;
                  match resp with
                  | J.Obj fields ->
                      J.Obj (fields @ [ ("overran_wall_deadline", J.Bool true) ])
                  | other -> other
                end
                else resp
              in
              let rendered = render st req.req_id resp in
              (match req.req_id with
              | Some id when not stop ->
                  st.id_tick <- st.id_tick + 1;
                  id_cache_insert st id
                    {
                      ie_digest = digest;
                      ie_response = rendered;
                      ie_last_use = st.id_tick;
                    }
              | Some _ | None -> ());
              (rendered, stop)))

let busy_line st line =
  st.c.total <- st.c.total + 1;
  let raw_id =
    match J.parse line with
    | Ok doc -> Option.bind (J.member "id" doc) J.str
    | Error _ -> None
  in
  let resp =
    error_response st raw_id Busy
      (Printf.sprintf "admission queue full (%d/%d); retry later"
         (Queue.length st.queue) st.cfg.max_queue)
      [ ("retry_after_ms", numi st.cfg.retry_after_ms) ]
  in
  render st raw_id resp

(* ---- the loop ---- *)

type reader = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  chunk : Bytes.t;
  mutable eof : bool;
}

let reader fd = { fd; rbuf = Buffer.create 4096; chunk = Bytes.create 65536; eof = false }

let read_chunk r =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 -> r.eof <- true
  | n -> Buffer.add_subbytes r.rbuf r.chunk 0 n
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
  | exception Unix.Unix_error _ -> r.eof <- true

let readable_now r =
  (not r.eof)
  &&
  match Unix.select [ r.fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

(* Pop complete lines out of the byte buffer; at EOF a trailing unterminated
   line is delivered as-is (be liberal in what we accept). *)
let take_lines r =
  let s = Buffer.contents r.rbuf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := String.sub s !start (i - !start) :: !lines;
        start := i + 1
      end)
    s;
  Buffer.clear r.rbuf;
  if !start < String.length s then
    if r.eof then lines := String.sub s !start (String.length s - !start) :: !lines
    else Buffer.add_string r.rbuf (String.sub s !start (String.length s - !start));
  List.rev !lines

exception Client_gone

let serve_fds st in_fd out_fd =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let r = reader in_fd in
  let write_line s =
    let data = Bytes.of_string (s ^ "\n") in
    let len = Bytes.length data in
    let rec go off =
      if off < len then
        match Unix.write out_fd data off (len - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error _ -> raise Client_gone
    in
    go 0
  in
  let admit line =
    (* Blank lines are keep-alives, not requests. *)
    if String.trim line <> "" then
      if Queue.length st.queue >= st.cfg.max_queue then
        write_line (busy_line st line)
      else Queue.add line st.queue
  in
  let drain () =
    while readable_now r do
      read_chunk r
    done;
    List.iter admit (take_lines r)
  in
  let rec step () =
    drain ();
    match Queue.take_opt st.queue with
    | Some line ->
        let resp, stop = handle_line st line in
        write_line resp;
        if not stop then step ()
    | None ->
        if not r.eof then begin
          read_chunk r;
          List.iter admit (take_lines r);
          step ()
        end
  in
  try step () with Client_gone -> ()
