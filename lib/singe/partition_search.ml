(* Automatic partition search (ROADMAP item 2, DESIGN §16).

   The paper's producer/consumer split is domain knowledge; this pass
   derives it from graph structure instead. Candidates are
   [Mapping.auto_spec]s proposed from the DFG's shape — fan-out hubs and
   loads become producer warps, long arithmetic chains follow locality
   onto consumer warps — crossed with pipeline depths (the transport
   ring's slot count). The whole population is scored analytically with
   [Perf_model.predict] (compile + static model, no simulation), the top
   candidates pass through the safety gate ([Mapping.validate] +
   [Deadlock_check.check] — compile_cached runs with validation off, so
   the gate here is the only thing standing between a searched partition
   and the simulator), and the survivors are confirmed by simulation
   through [Autotune.tune]'s two-phase machinery with the hand mapping
   seeded into the grid, so the returned winner is never worse than the
   paper's partition. *)

type rejection = { rej_options : Compile.options; rej_diag : Diagnostics.t }

type outcome = {
  base : Compile.options;
  winner : Compile.options;
  winner_spec : Mapping.auto_spec option;
  hand_cycles : float;
  winner_cycles : float;
  searched : int;
  gated : int;
  rejections : rejection list;
  simulated : int;
  confirmed : bool;
}

let default_top_k = 5

(* ---- candidate proposal ---- *)

let dedup_sorted l = List.sort_uniq compare l

(* Hub thresholds worth trying: a conventional "more than a couple of
   consumers" cut plus the graph's own heavy tail (the 90th-percentile
   fan-out), so mechanisms whose staging vectors feed dozens of consumers
   classify them as hubs without sweeping every integer. *)
let hub_candidates (dfg : Dfg.t) =
  let fanouts =
    Array.to_list dfg.Dfg.values
    |> List.map (fun (v : Dfg.value) -> List.length v.Dfg.consumers)
    |> List.filter (fun f -> f >= 2)
    |> List.sort compare
  in
  let p90 =
    match fanouts with
    | [] -> 3
    | l ->
        let n = List.length l in
        max 2 (List.nth l (min (n - 1) (n * 9 / 10)))
  in
  dedup_sorted [ 3; min 8 p90 ]

let producer_candidates ~n_warps =
  dedup_sorted [ 1; max 1 (n_warps / 4); max 1 (n_warps / 2) ]

let chain_candidates = [ 1.0; 2.5 ]
let strategy_candidates = [ Mapping.Store; Mapping.Buffer; Mapping.Mixed ]

let propose ?(max_candidates = 48) (dfg : Dfg.t) ~n_warps =
  let specs =
    List.concat_map
      (fun producer_warps ->
        List.concat_map
          (fun hub_threshold ->
            List.concat_map
              (fun chain_weight ->
                List.map
                  (fun auto_strategy ->
                    {
                      Mapping.producer_warps;
                      hub_threshold;
                      chain_weight;
                      auto_strategy;
                    })
                  strategy_candidates)
              chain_candidates)
          (hub_candidates dfg))
      (producer_candidates ~n_warps)
  in
  List.filteri (fun i _ -> i < max_candidates) specs

(* Pipeline depths: the base ring plus a shallow one — a searched
   partition that communicates less may pay for a deep ring it never
   fills (shared footprint costs occupancy). *)
let depth_candidates (base : Compile.options) =
  dedup_sorted [ base.Compile.buffer_slots; 16 ]

let candidate_options (base : Compile.options) (dfg : Dfg.t) =
  List.concat_map
    (fun spec ->
      List.map
        (fun buffer_slots ->
          {
            base with
            Compile.partition = Compile.Partition_auto spec;
            buffer_slots;
          })
        (depth_candidates base))
    (propose dfg ~n_warps:base.Compile.n_warps)

(* ---- the safety gate ---- *)

let reject what msgs =
  Diagnostics.error ~pass:"partition-search"
    (Printf.sprintf "partition-rejected: %s: %s" what (String.concat "; " msgs))

let gate_schedule schedule =
  match Deadlock_check.check schedule with
  | Ok () -> Ok ()
  | Error msgs -> Error (reject "deadlock-check" msgs)

let gate (c : Compile.t) =
  match Mapping.validate c.Compile.dfg c.Compile.mapping with
  | Error msgs -> Error (reject "mapping-validate" msgs)
  | Ok () -> gate_schedule c.Compile.schedule

(* ---- the search ---- *)

let diag_of_exn e =
  match e with
  | Diagnostics.Fail d -> d
  | e ->
      let reason, _ = Autotune.classify_exn e in
      Diagnostics.error ~pass:"partition-search" reason

let hand_only ~base ~confirmed ~cycles =
  {
    base;
    winner = base;
    winner_spec = None;
    hand_cycles = cycles;
    winner_cycles = cycles;
    searched = 0;
    gated = 0;
    rejections = [];
    simulated = (if confirmed then 1 else 0);
    confirmed;
  }

let search ?(points = 32768) ?jobs ?(top_k = default_top_k)
    ?(max_cycles = 200_000_000) ?(simulate = true) ?n_sms ?skew mech kernel
    version ~base () =
  let base = { base with Compile.partition = Compile.Partition_hand } in
  match
    let hand = Compile.compile_cached mech kernel version base in
    let hand_pred = Perf_model.predict ?n_sms ?skew hand ~total_points:points in
    if version = Compile.Baseline then
      (* The data-parallel baseline maps onto a single warp; there is
         nothing to partition. *)
      hand_only ~base ~confirmed:false ~cycles:hand_pred.Perf_model.cycles
    else begin
      let cands = candidate_options base hand.Compile.dfg in
      let indexed = List.mapi (fun i o -> (i, o)) cands in
      (* Phase A — compile (through the shared memo) and score the whole
         population analytically. *)
      let score (_i, options) =
        let c = Compile.compile_cached mech kernel version options in
        let p = Perf_model.predict ?n_sms ?skew c ~total_points:points in
        (c, p)
      in
      let scored = Sutil.Domain_pool.parallel_map_result ?jobs score indexed in
      let rejections = ref [] in
      let ok = ref [] in
      (* Folded in candidate-index order so rejections and ranking are
         independent of [jobs]. *)
      List.iter2
        (fun (i, options) res ->
          match res with
          | Error e ->
              rejections :=
                (i, { rej_options = options; rej_diag = diag_of_exn e })
                :: !rejections
          | Ok (c, p) -> ok := (i, options, c, p) :: !ok)
        indexed scored;
      let ranked =
        List.sort
          (fun (i1, _, _, (p1 : Perf_model.prediction)) (i2, _, _, p2) ->
            match compare p1.Perf_model.cycles p2.Perf_model.cycles with
            | 0 -> compare i1 i2
            | c -> c)
          !ok
      in
      let top = List.filteri (fun r _ -> r < max 1 top_k) ranked in
      (* Phase B — the safety gate on the model's picks. *)
      let survivors =
        List.filter_map
          (fun (i, options, c, p) ->
            match gate c with
            | Ok () -> Some (i, options, p)
            | Error d ->
                rejections :=
                  (i, { rej_options = options; rej_diag = d }) :: !rejections;
                None)
          top
      in
      let gated = List.length top in
      let rejections =
        List.sort (fun (i1, _) (i2, _) -> compare i1 i2) !rejections
        |> List.map snd
      in
      let searched = List.length cands in
      (* Phase C — confirm by simulation through Autotune's two-phase
         machinery, hand seeded first so ties keep the paper's mapping. *)
      if simulate then begin
        let grid =
          base :: List.map (fun (_, options, _) -> options) survivors
        in
        let out =
          Autotune.tune ~points ?jobs ~max_cycles ?n_sms ?skew ~grid mech
            kernel version base.Compile.arch
        in
        let hand_res =
          Compile.run hand ~total_points:points ~max_cycles ?n_sms ?skew
        in
        let winner = out.Autotune.best.Autotune.options in
        {
          base;
          winner;
          winner_spec =
            (match winner.Compile.partition with
            | Compile.Partition_hand -> None
            | Compile.Partition_auto s -> Some s);
          hand_cycles =
            float_of_int hand_res.Compile.machine.Gpusim.Machine.sm_cycles;
          winner_cycles =
            float_of_int
              out.Autotune.best.Autotune.result.Compile.machine
                .Gpusim.Machine.sm_cycles;
          searched;
          gated;
          rejections;
          simulated = out.Autotune.tried - out.Autotune.skipped;
          confirmed = true;
        }
      end
      else begin
        let best_auto =
          List.fold_left
            (fun acc (i, options, (p : Perf_model.prediction)) ->
              match acc with
              | Some (_, _, (pb : Perf_model.prediction))
                when pb.Perf_model.cycles <= p.Perf_model.cycles ->
                  acc
              | _ -> Some (i, options, p))
            None survivors
        in
        let winner, winner_spec, winner_cycles =
          match best_auto with
          | Some (_, options, p)
            when p.Perf_model.cycles < hand_pred.Perf_model.cycles -> (
              ( options,
                (match options.Compile.partition with
                | Compile.Partition_auto s -> Some s
                | Compile.Partition_hand -> None),
                p.Perf_model.cycles ))
          | Some _ | None -> (base, None, hand_pred.Perf_model.cycles)
        in
        {
          base;
          winner;
          winner_spec;
          hand_cycles = hand_pred.Perf_model.cycles;
          winner_cycles;
          searched;
          gated;
          rejections;
          simulated = 0;
          confirmed = false;
        }
      end
    end
  with
  | o -> Ok o
  | exception Diagnostics.Fail d -> Error d
  | exception e -> Error (diag_of_exn e)

let resolve_options ?points ?jobs mech kernel version ~base =
  match search ?points ?jobs ~simulate:false mech kernel version ~base () with
  | Ok o -> o.winner
  | Error d -> raise (Diagnostics.Fail d)

let pp_outcome ppf o =
  let verb = if o.confirmed then "simulated" else "predicted" in
  Format.fprintf ppf
    "@[<v>partition search: %d candidate(s), %d gated, %d rejected, %d \
     simulated@,%s cycles: hand %.0f, winner %.0f (%s)@,winner: %a@]"
    o.searched o.gated
    (List.length o.rejections)
    o.simulated verb o.hand_cycles o.winner_cycles
    (match o.winner_spec with None -> "hand mapping" | Some _ -> "searched")
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "the hand partition"
      | Some s -> Mapping.pp_auto_spec ppf s)
    o.winner_spec
