type strategy = Store | Buffer | Mixed

type weights = { w_flops : float; w_regs : float; w_locality : float }

let default_weights = { w_flops = 1.0; w_regs = 0.25; w_locality = 0.5 }

type placement = P_reg | P_shared

type t = {
  n_warps : int;
  op_warp : int array;
  value_place : placement array;
  shared_slot : int array;
  store_slots : int;
  strategy : strategy;
}

(* Register demand proxy: an op's output occupies one register in its warp
   for as long as it is live (§4.1: intermediates are free, op results are
   not). *)
let op_reg_need (op : Dfg.op) = match op.Dfg.output with Some _ -> 1 | None -> 0

(* The mapper is a total function only over sane inputs. [n_warps < 1]
   would send every op to the phantom warp 0 of zero-length balance
   accumulators (an out-of-range [op_warp] write followed by an
   index-out-of-bounds in [warp_flops]); reject it as a positioned
   diagnostic instead. Degenerate graphs on the other side — no ops, or
   fewer ops than warps — are fine: the greedy loop simply leaves the
   surplus warps empty, which is a valid (trivial) mapping. *)
let check_degenerate (dfg : Dfg.t) ~n_warps =
  if n_warps < 1 then
    Diagnostics.failf ~pass:"mapping" ~loc:dfg.Dfg.graph_name
      "cannot map %d operation(s) onto %d warp(s): need at least one warp"
      (Array.length dfg.Dfg.ops) n_warps

let map_core (dfg : Dfg.t) ~n_warps ~weights ~strategy ~hint_of =
  check_degenerate dfg ~n_warps;
  let n_ops = Array.length dfg.Dfg.ops in
  let op_warp = Array.make n_ops (-1) in
  let flops = Array.make n_warps 0.0 in
  let regs = Array.make n_warps 0.0 in
  (* Pinned operations first. *)
  Array.iter
    (fun (op : Dfg.op) ->
      match hint_of op with
      | Some w when w >= 0 && w < n_warps ->
          op_warp.(op.Dfg.id) <- w;
          flops.(w) <- flops.(w) +. float_of_int (Dfg.op_flops op);
          regs.(w) <- regs.(w) +. float_of_int (op_reg_need op)
      | Some _ | None -> ())
    dfg.Dfg.ops;
  (* Remaining ops in decreasing cost order; each goes to the warp that
     locally minimizes the weighted cost. *)
  let remaining =
    Array.to_list dfg.Dfg.ops
    |> List.filter (fun (op : Dfg.op) -> op_warp.(op.Dfg.id) < 0)
    |> List.sort (fun a b -> compare (Dfg.op_flops b) (Dfg.op_flops a))
  in
  let neighbors (op : Dfg.op) =
    (* Warps already holding a producer of an input or a consumer of the
       output. *)
    let acc = ref [] in
    Array.iter
      (fun v ->
        let p = op_warp.(dfg.Dfg.values.(v).Dfg.producer) in
        if p >= 0 then acc := p :: !acc)
      op.Dfg.inputs;
    (match op.Dfg.output with
    | Some v ->
        List.iter
          (fun c -> if op_warp.(c) >= 0 then acc := op_warp.(c) :: !acc)
          dfg.Dfg.values.(v).Dfg.consumers
    | None -> ());
    !acc
  in
  List.iter
    (fun (op : Dfg.op) ->
      let near = neighbors op in
      let op_f = float_of_int (Dfg.op_flops op) in
      let op_r = float_of_int (op_reg_need op) in
      let best = ref 0 and best_cost = ref infinity in
      for w = 0 to n_warps - 1 do
        let locality_penalty =
          float_of_int (List.length (List.filter (fun x -> x <> w) near))
        in
        let cost =
          (weights.w_flops *. (flops.(w) +. op_f))
          +. (weights.w_regs *. (regs.(w) +. op_r))
          +. (weights.w_locality *. locality_penalty)
        in
        if cost < !best_cost then begin
          best_cost := cost;
          best := w
        end
      done;
      op_warp.(op.Dfg.id) <- !best;
      flops.(!best) <- flops.(!best) +. op_f;
      regs.(!best) <- regs.(!best) +. op_r)
    remaining;
  (* Data placement. Store-region slots are recycled across fence
     boundaries: a value occupying segments [a, b] (producer's segment to
     last consumer's) may share a slot with one occupying [a', b'] when
     b < a' — the CTA barrier between orders all reads of the first before
     any write of the second. *)
  let n_vals = Array.length dfg.Dfg.values in
  let value_place = Array.make n_vals P_reg in
  let shared_slot = Array.make n_vals (-1) in
  let segment_of =
    let seg = Array.make n_ops 0 in
    let current = ref 0 in
    Array.iteri
      (fun i (op : Dfg.op) ->
        if op.Dfg.kind = Dfg.Fence then incr current;
        seg.(i) <- !current)
      dfg.Dfg.ops;
    fun op_id -> seg.(op_id)
  in
  let shared_vals = ref [] in
  Array.iter
    (fun (v : Dfg.value) ->
      let pw = op_warp.(v.Dfg.producer) in
      let consumer_warps =
        List.map (fun c -> op_warp.(c)) v.Dfg.consumers
        |> List.sort_uniq compare
      in
      let cross = List.exists (fun w -> w <> pw) consumer_warps in
      let widely_shared =
        List.length consumer_warps >= 3 || List.length v.Dfg.consumers >= 4
      in
      let to_shared =
        let hinted = dfg.Dfg.ops.(v.Dfg.producer).Dfg.shared_hint in
        match strategy with
        | Store -> cross
        | Buffer -> cross && hinted
        | Mixed -> cross && (widely_shared || hinted)
      in
      if to_shared then begin
        value_place.(v.Dfg.vid) <- P_shared;
        let a = segment_of v.Dfg.producer in
        let b =
          List.fold_left (fun acc c -> max acc (segment_of c)) a v.Dfg.consumers
        in
        shared_vals := (a, b, v.Dfg.vid) :: !shared_vals
      end)
    dfg.Dfg.values;
  let sorted =
    List.sort (fun (a1, _, v1) (a2, _, v2) -> compare (a1, v1) (a2, v2))
      !shared_vals
  in
  (* Greedy interval coloring: free slots carry the segment after which
     they may be rewritten. *)
  let free : (int * int) list ref = ref [] in (* (available_from_seg, slot) *)
  let n_slots = ref 0 in
  List.iter
    (fun (a, b, vid) ->
      let rec take acc = function
        | [] -> None
        | (avail, slot) :: rest when avail <= a ->
            free := List.rev_append acc rest;
            Some slot
        | entry :: rest -> take (entry :: acc) rest
      in
      let slot =
        match take [] !free with
        | Some s -> s
        | None ->
            let s = !n_slots in
            incr n_slots;
            s
      in
      shared_slot.(vid) <- slot;
      free := (b + 1, slot) :: !free)
    sorted;
  {
    n_warps;
    op_warp;
    value_place;
    shared_slot;
    store_slots = !n_slots;
    strategy;
  }

let map (dfg : Dfg.t) ~n_warps ~weights ~strategy ~respect_hints =
  map_core dfg ~n_warps ~weights ~strategy ~hint_of:(fun (op : Dfg.op) ->
      if respect_hints then op.Dfg.hint else None)

(* ---- structure-derived partitions (the Partition_search seeds) ---- *)

type auto_spec = {
  producer_warps : int;
  hub_threshold : int;
  chain_weight : float;
  auto_strategy : strategy;
}

let pp_auto_spec ppf s =
  Format.fprintf ppf "producers=%d hub>=%d chain=%.2g strategy=%s"
    s.producer_warps s.hub_threshold s.chain_weight
    (match s.auto_strategy with
    | Store -> "store"
    | Buffer -> "buffer"
    | Mixed -> "mixed")

(* Derive a partition from graph shape instead of domain hints: loads and
   fan-out hubs (values feeding at least [hub_threshold] consumers) are
   the producer side and get pinned round-robin over the first
   [producer_warps] warps; everything else — the long arithmetic chains —
   is placed greedily with the locality weight scaled by [chain_weight],
   so a chain glues itself to the warp already holding its neighbors and
   the FLOP-balance term spreads whole chains over the consumer warps. *)
let map_auto (dfg : Dfg.t) ~n_warps ~weights ~spec =
  check_degenerate dfg ~n_warps;
  let producers = max 1 (min spec.producer_warps n_warps) in
  let fanout v = List.length dfg.Dfg.values.(v).Dfg.consumers in
  let next = ref 0 in
  let hints =
    Array.map
      (fun (op : Dfg.op) ->
        let is_producer =
          match op.Dfg.kind with
          | Dfg.Load _ -> true
          | Dfg.Compute _ -> (
              match op.Dfg.output with
              | Some v -> fanout v >= spec.hub_threshold
              | None -> false)
          | Dfg.Store _ | Dfg.Fence -> false
        in
        if is_producer then begin
          let w = !next mod producers in
          incr next;
          Some w
        end
        else None)
      dfg.Dfg.ops
  in
  let weights =
    { weights with w_locality = weights.w_locality *. spec.chain_weight }
  in
  map_core dfg ~n_warps ~weights ~strategy:spec.auto_strategy
    ~hint_of:(fun (op : Dfg.op) -> hints.(op.Dfg.id))

let warp_flops dfg t =
  let acc = Array.make t.n_warps 0 in
  Array.iter
    (fun (op : Dfg.op) ->
      let w = t.op_warp.(op.Dfg.id) in
      acc.(w) <- acc.(w) + Dfg.op_flops op)
    dfg.Dfg.ops;
  acc

let warp_values dfg t =
  let acc = Array.make t.n_warps 0 in
  Array.iter
    (fun (v : Dfg.value) ->
      let w = t.op_warp.(v.Dfg.producer) in
      acc.(w) <- acc.(w) + 1)
    dfg.Dfg.values;
  acc

let cross_warp_edges dfg t =
  let n = ref 0 in
  Array.iter
    (fun (op : Dfg.op) ->
      Array.iter
        (fun v ->
          let p = t.op_warp.(dfg.Dfg.values.(v).Dfg.producer) in
          if p <> t.op_warp.(op.Dfg.id) then incr n)
        op.Dfg.inputs)
    dfg.Dfg.ops;
  !n

let store_addr t vid =
  assert (t.shared_slot.(vid) >= 0);
  t.shared_slot.(vid) * 32

type exchange = {
  ex_value : int;
  ex_slot : int;
  ex_producer_warp : int;
  ex_consumer_warps : int list;
  ex_same_warp_reads : int;
  ex_pattern : int array;
}

(* One record per shared-placed value: who writes it, who reads it, and
   the lane-communication pattern of the exchange. The §5 lowering always
   stripes a P_shared value lane-aligned (lane [l] of the producer writes
   [slot*32 + l], lane [l] of every consumer reads the same address), so
   the pattern is the identity permutation; the synthesis pass keys off
   [ex_same_warp_reads] — reads the producing warp itself performs are
   register-forwardable round-trips. *)
let exchanges (dfg : Dfg.t) t =
  Array.to_list dfg.Dfg.values
  |> List.filter_map (fun (v : Dfg.value) ->
         if t.value_place.(v.Dfg.vid) <> P_shared then None
         else
           let pw = t.op_warp.(v.Dfg.producer) in
           let consumer_warps =
             List.map (fun c -> t.op_warp.(c)) v.Dfg.consumers
             |> List.sort_uniq compare
           in
           let same_warp_reads =
             List.length
               (List.filter (fun c -> t.op_warp.(c) = pw) v.Dfg.consumers)
           in
           Some
             {
               ex_value = v.Dfg.vid;
               ex_slot = t.shared_slot.(v.Dfg.vid);
               ex_producer_warp = pw;
               ex_consumer_warps = consumer_warps;
               ex_same_warp_reads = same_warp_reads;
               ex_pattern = Array.init 32 (fun l -> l);
             })

(* Fence segment of each op, as the placement logic in [map] computes it:
   slot recycling is only sound across a segment boundary. *)
let segments (dfg : Dfg.t) =
  let seg = Array.make (Array.length dfg.Dfg.ops) 0 in
  let current = ref 0 in
  Array.iteri
    (fun i (op : Dfg.op) ->
      if op.Dfg.kind = Dfg.Fence then incr current;
      seg.(i) <- !current)
    dfg.Dfg.ops;
  seg

let validate ?(max_imbalance = 8.0) (dfg : Dfg.t) t =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let n_ops = Array.length dfg.Dfg.ops in
  let n_vals = Array.length dfg.Dfg.values in
  if Array.length t.op_warp <> n_ops then
    err "op_warp covers %d ops, graph has %d" (Array.length t.op_warp) n_ops;
  if Array.length t.value_place <> n_vals || Array.length t.shared_slot <> n_vals
  then err "value tables cover %d/%d values, graph has %d"
      (Array.length t.value_place) (Array.length t.shared_slot) n_vals;
  if !problems <> [] then Error (List.rev !problems)
  else begin
    let warps_in_range = ref true in
    Array.iter
      (fun (op : Dfg.op) ->
        let w = t.op_warp.(op.Dfg.id) in
        if w < 0 || w >= t.n_warps then begin
          warps_in_range := false;
          err "op %s mapped to warp %d, out of range [0, %d)" op.Dfg.name w
            t.n_warps
        end)
      dfg.Dfg.ops;
    (* Placement consistency and slot-lifetime disjointness. *)
    let seg = segments dfg in
    let slot_intervals = Hashtbl.create 32 in
    Array.iter
      (fun (v : Dfg.value) ->
        let place = t.value_place.(v.Dfg.vid) in
        let slot = t.shared_slot.(v.Dfg.vid) in
        (match (place, slot) with
        | P_reg, s when s >= 0 ->
            err "value %s: register-placed but holds store slot %d" v.Dfg.vname s
        | P_shared, s when s < 0 ->
            err "value %s: shared-placed without a store slot" v.Dfg.vname
        | P_shared, s when s >= t.store_slots ->
            err "value %s: slot %d beyond store region of %d" v.Dfg.vname s
              t.store_slots
        | _ -> ());
        if place = P_shared && slot >= 0 && slot < t.store_slots then begin
          let a = seg.(v.Dfg.producer) in
          let b =
            List.fold_left (fun acc c -> max acc seg.(c)) a v.Dfg.consumers
          in
          let prev = try Hashtbl.find slot_intervals slot with Not_found -> [] in
          Hashtbl.replace slot_intervals slot ((a, b, v.Dfg.vname) :: prev)
        end)
      dfg.Dfg.values;
    Hashtbl.iter
      (fun slot intervals ->
        let sorted =
          List.sort (fun (a1, _, _) (a2, _, _) -> compare a1 a2) intervals
        in
        ignore
          (List.fold_left
             (fun prev (a, b, name) ->
               (match prev with
               | Some (pb, pname) when a <= pb ->
                   err
                     "store slot %d: values %s and %s have overlapping fence \
                      segments"
                     slot pname name
               | _ -> ());
               Some (b, name))
             None sorted))
      slot_intervals;
    (* FLOP / register-demand budgets: the greedy mapper balances both, so
       a warp loaded far beyond the mean means the mapping stage (or a
       mutation of its output) is broken. One largest-op slack keeps the
       bound meaningful for graphs whose total barely exceeds one op. *)
    (* The balance bounds index per-warp accumulators, so they are only
       meaningful (and safe) once every op's warp is in range. *)
    if t.n_warps > 1 && !warps_in_range then begin
      let flops = warp_flops dfg t in
      let total = Array.fold_left ( + ) 0 flops in
      let biggest =
        Array.fold_left (fun acc op -> max acc (Dfg.op_flops op)) 0 dfg.Dfg.ops
      in
      let mean = float_of_int total /. float_of_int t.n_warps in
      let cap = (max_imbalance *. mean) +. float_of_int biggest in
      Array.iteri
        (fun w f ->
          if float_of_int f > cap then
            err "warp %d holds %d flops, over budget %.0f (mean %.0f)" w f cap
              mean)
        flops;
      let regs = warp_values dfg t in
      let rtotal = Array.fold_left ( + ) 0 regs in
      let rmean = float_of_int rtotal /. float_of_int t.n_warps in
      let rcap = (max_imbalance *. rmean) +. 8.0 in
      Array.iteri
        (fun w r ->
          if float_of_int r > rcap then
            err "warp %d holds %d values, over register budget %.0f (mean %.0f)"
              w r rcap rmean)
        regs
    end;
    match List.rev !problems with [] -> Ok () | l -> Error l
  end

let pp_dump dfg ppf t =
  let flops = warp_flops dfg t in
  let regs = warp_values dfg t in
  Format.fprintf ppf
    "mapping: %d warps, strategy %s, %d store slots, %d cross-warp edges@,"
    t.n_warps
    (match t.strategy with Store -> "store" | Buffer -> "buffer" | Mixed -> "mixed")
    t.store_slots
    (cross_warp_edges dfg t);
  for w = 0 to t.n_warps - 1 do
    let owned =
      Array.to_list dfg.Dfg.ops
      |> List.filter (fun (op : Dfg.op) -> t.op_warp.(op.Dfg.id) = w)
    in
    Format.fprintf ppf "  warp %2d: %4d flops, %3d values, %3d ops:" w
      flops.(w) regs.(w) (List.length owned);
    List.iter
      (fun (op : Dfg.op) -> Format.fprintf ppf " %s" op.Dfg.name)
      owned;
    Format.pp_print_cut ppf ()
  done;
  Array.iter
    (fun (v : Dfg.value) ->
      if t.value_place.(v.Dfg.vid) = P_shared then
        Format.fprintf ppf "  shared %s -> slot %d@," v.Dfg.vname
          t.shared_slot.(v.Dfg.vid))
    dfg.Dfg.values
