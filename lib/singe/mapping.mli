(** Computation and data mapping (§4.1, the second compiler stage).

    Operations are assigned to warps by a greedy algorithm that weighs
    three (often conflicting) metrics — FLOP balance, register balance,
    and locality — with autotunable weights. Values are then placed in
    registers or shared memory according to one of the three shared-memory
    strategies the paper identifies:

    {ul
    {- [Store] (viscosity): every cross-warp value lives in shared memory;}
    {- [Buffer] (chemistry): values stay in the producing warp's registers
       and shared memory is only a communication buffer, except where the
       partitioner explicitly stages a vector there (the mole-fraction /
       concentration scratch of Listing 4);}
    {- [Mixed] (diffusion): widely shared values go to shared memory, the
       rest communicate through the buffer.}} *)

type strategy = Store | Buffer | Mixed

type weights = {
  w_flops : float;
  w_regs : float;
  w_locality : float;
}

val default_weights : weights

type placement = P_reg | P_shared

type t = {
  n_warps : int;
  op_warp : int array;  (** op id -> warp *)
  value_place : placement array;
  shared_slot : int array;
      (** value id -> slot index in the store region (slot = 32 doubles),
          or -1 *)
  store_slots : int;  (** size of the store region, in 32-double slots *)
  strategy : strategy;
}

val map :
  Dfg.t ->
  n_warps:int ->
  weights:weights ->
  strategy:strategy ->
  respect_hints:bool ->
  t
(** Hints (from domain-specific partitioning) are honored when
    [respect_hints]; remaining operations are placed greedily in order of
    decreasing cost.

    Raises {!Diagnostics.Fail} (pass ["mapping"], positioned at the graph
    name) when [n_warps < 1]. Degenerate graphs — empty, or with fewer
    operations than warps — yield a valid trivial mapping with the surplus
    warps left empty. *)

type auto_spec = {
  producer_warps : int;
      (** warps the structural producer side (loads, fan-out hubs) is
          pinned to, round-robin *)
  hub_threshold : int;
      (** fan-out (consumer count) at which a computed value's producer
          counts as a hub and joins the producer side *)
  chain_weight : float;
      (** multiplier on {!weights}' locality term: higher values glue long
          single-consumer arithmetic chains onto one consumer warp *)
  auto_strategy : strategy;  (** shared-memory strategy for the candidate *)
}
(** A structure-derived partition candidate, proposed by
    {!Partition_search} instead of the paper's domain knowledge. *)

val pp_auto_spec : Format.formatter -> auto_spec -> unit

val map_auto : Dfg.t -> n_warps:int -> weights:weights -> spec:auto_spec -> t
(** Like {!map}, but the warp assignment is seeded from graph structure
    (per [spec]) rather than from the partitioner's domain hints: loads
    and hubs become producers, chains follow locality onto consumer warps.
    Raises {!Diagnostics.Fail} like {!map} on degenerate warp counts. *)

val warp_flops : Dfg.t -> t -> int array
(** Per-warp FLOP totals (balance diagnostics). *)

val warp_values : Dfg.t -> t -> int array
(** Values produced (and so registers demanded) per warp. *)

val cross_warp_edges : Dfg.t -> t -> int
(** Dataflow edges whose producer and consumer warps differ (the locality
    metric). *)

val store_addr : t -> int -> int
(** Shared-memory base address (in doubles) of a [P_shared] value: its slot
    times 32. *)

type exchange = {
  ex_value : int;  (** value id *)
  ex_slot : int;  (** store-region slot *)
  ex_producer_warp : int;
  ex_consumer_warps : int list;  (** sorted, unique *)
  ex_same_warp_reads : int;
      (** consuming ops mapped to the producing warp — each is a shared
          round-trip the exchange synthesizer can forward in registers *)
  ex_pattern : int array;
      (** lane-communication pattern: [ex_pattern.(l)] is the producer
          lane whose value consumer lane [l] reads. The §5 lane-aligned
          striping makes this the identity for every store-region
          exchange. *)
}

val exchanges : Dfg.t -> t -> exchange list
(** One record per [P_shared] value — the per-exchange communication
    structure {!Lower}'s [--synth-exchange] pass and the exchange-ablation
    figure consume. *)

val validate :
  ?max_imbalance:float -> Dfg.t -> t -> (unit, string list) result
(** Inter-pass invariants of a computed mapping:
    {ul
    {- every operation is mapped to a warp in [\[0, n_warps)];}
    {- placements and store slots are consistent ([P_shared] iff a slot is
       assigned, slots within [store_slots]);}
    {- two values sharing a recycled store slot live in disjoint fence
       segments (the CTA barrier between them orders the reuse);}
    {- FLOP and register-demand budgets: no warp carries more than
       [max_imbalance] (default 8) times the mean per-warp load, with slack
       of one largest operation — the greedy mapper with any positive
       {!weights} never concentrates work beyond this.}} *)

val pp_dump : Dfg.t -> Format.formatter -> t -> unit
(** Per-warp operation assignment, FLOP/register balance, and shared-memory
    placements — the [--dump-ir mapping] output. *)
