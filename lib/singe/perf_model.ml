module A = Gpusim.Arch
module I = Gpusim.Isa
module T = Gpusim.Trace
module M = Gpusim.Machine
module C = Gpusim.Chip

(* Calibration constants. Structure comes from the machine model (pipe
   rates, latencies, cache geometry); these scalars absorb what a static
   walk cannot know — how much dependence latency the lowered code's ILP
   and the warp scheduler actually hide. Calibrated once against the
   simulator on the shipped kernels (DESIGN §12 records the measured
   accuracy); they are not per-kernel knobs. The [SINGE_MODEL_*]
   environment overrides exist solely to recalibrate after a simulator
   change (sweep them with `singe predict`); nothing in the repo sets
   them. *)
let cal name default =
  match Sys.getenv_opt name with
  | Some s -> (try float_of_string s with _ -> default)
  | None -> default

(* Exposed constant-cache fill latency per constant-operand instruction
   once the working set thrashes the 8 KB cache: most accesses then miss,
   but adjacent slots share lines and followers ride in-flight fills, so
   only a fraction of a full trip is exposed per access (the profiler
   measures 30-65 cycles against a 440-cycle fill on the shipped
   mechanisms). *)
let ccache_exposure = cal "SINGE_MODEL_CCACHE" 0.15

(* Cold-start fills, paid once per CTA on its first batch: every warp
   marches through the same line sequence together, so each stalls for
   roughly every fill it touches (followers wait on in-flight lines). *)
let ccache_cold = cal "SINGE_MODEL_CCACHE_COLD" 0.5
let icache_cold = cal "SINGE_MODEL_ICACHE_COLD" 1.0

(* How much of the smaller of the throughput/critical-path terms still
   shows when the other binds: pipes drain while warps sit at barriers,
   so a latency-bound batch hides most (not all) of its pipe work; a
   throughput-bound batch hides none of its per-warp stalls (all warps
   stall together between their turns at the saturated pipe). *)
let sync_overlap = cal "SINGE_MODEL_OVERLAP" 0.3

(* Fraction of code-refetch fill time that lands on the critical path
   (fills overlap with other warps' execution). *)
let icache_exposure = cal "SINGE_MODEL_ICACHE" 0.5

(* Cross-CTA dilution of memory-path contention. Warps of one CTA march
   through their load phases in lockstep and genuinely collide on the
   path, but co-resident CTAs drift apart (staggered launch, divergent
   stalls), so only part of their traffic lands in the same window. The
   original model charged the full pack ([resident * users / 2]), which
   was invisible while every shipped kernel ran at 1-2 resident CTAs;
   the stencil pipelines occupy 4 and exposed the overestimate. *)
let cross_cta_overlap = cal "SINGE_MODEL_CROSS_CTA" 0.5

(* A divergent region longer than this many instructions occupies its own
   prefetch stream (two cache lines of run-ahead no longer cover it). *)
let long_path_instrs = 128

type prediction = {
  occ : M.occupancy;
  resident : int;
  batches : int;
  sim_batches : int;
  prologue_cycles : float;
  batch_cycles : float;
  throughput_cycles : float;
  sync_cycles : float;
  icache_cycles : float;
  binding : string;
  cycles : float;
  floor_cycles : float;
  chip : C.schedule;
  time_s : float;
  points_per_sec : float;
}

(* Accumulated cost of a run of instructions between barrier operations —
   also used (summed over every warp) as the per-batch resource demand. *)
type seg = {
  mutable instrs : float;  (* issue slots; also the warp's 1-IPC floor *)
  mutable dp : float;  (* DP slots, constant-operand penalty applied *)
  mutable alu : float;
  mutable lsu : float;
  mutable shared : float;  (* shared-pipe slots *)
  mutable chain : float;  (* arith+shared dependence latency, serial sum *)
  mutable loads : int;  (* global-latency loads (global/local/const/param) *)
  mutable n_const : int;  (* instructions with constant-memory operands *)
  mutable tex_b : float;
  mutable glob_b : float;
  mutable loc_b : float;
}

let seg_zero () =
  {
    instrs = 0.0;
    dp = 0.0;
    alu = 0.0;
    lsu = 0.0;
    shared = 0.0;
    chain = 0.0;
    loads = 0;
    n_const = 0;
    tex_b = 0.0;
    glob_b = 0.0;
    loc_b = 0.0;
  }

let seg_reset s =
  s.instrs <- 0.0;
  s.dp <- 0.0;
  s.alu <- 0.0;
  s.lsu <- 0.0;
  s.shared <- 0.0;
  s.chain <- 0.0;
  s.loads <- 0;
  s.n_const <- 0;
  s.tex_b <- 0.0;
  s.glob_b <- 0.0;
  s.loc_b <- 0.0

let seg_add_into ~(dst : seg) (s : seg) =
  dst.instrs <- dst.instrs +. s.instrs;
  dst.dp <- dst.dp +. s.dp;
  dst.alu <- dst.alu +. s.alu;
  dst.lsu <- dst.lsu +. s.lsu;
  dst.shared <- dst.shared +. s.shared;
  dst.chain <- dst.chain +. s.chain;
  dst.loads <- dst.loads + s.loads;
  dst.n_const <- dst.n_const + s.n_const;
  dst.tex_b <- dst.tex_b +. s.tex_b;
  dst.glob_b <- dst.glob_b +. s.glob_b;
  dst.loc_b <- dst.loc_b +. s.loc_b

let active_lanes = function
  | None -> 32
  | Some (I.Lane_eq _) -> 1
  | Some (I.Lane_lt n) -> n

(* Mirror the simulator's issue-path charging for one trace entry
   (pipe slots, result latencies, bytes on each memory path). *)
let charge (arch : A.t) (p : I.program) (s : seg) (e : T.entry) =
  s.instrs <- s.instrs +. 1.0;
  if e.T.has_const then s.n_const <- s.n_const + 1;
  match e.T.instr with
  | None -> s.alu <- s.alu +. 1.0 (* synthetic warp-id branch *)
  | Some instr -> (
      match instr with
      | I.Arith { op; _ } ->
          let penalty =
            if
              e.T.has_const
              || ((op = I.Exp || op = I.Log)
                 && not p.I.exp_consts_in_registers)
            then arch.A.const_operand_penalty
            else 1.0
          in
          s.dp <- s.dp +. (e.T.dp_slots *. penalty);
          s.chain <-
            s.chain +. float_of_int (arch.A.arith_latency * e.T.lat_mult);
          let n_shared = Array.length e.T.shared_srcs in
          if n_shared > 0 then begin
            if not arch.A.shared_operand_collector then
              s.shared <- s.shared +. float_of_int n_shared;
            s.chain <- s.chain +. float_of_int arch.A.shared_latency
          end
      | I.Mov { src; _ } ->
          s.alu <- s.alu +. 1.0;
          s.chain <- s.chain +. float_of_int arch.A.arith_latency;
          if match src with I.Sshared _ -> true | _ -> false then begin
            s.shared <- s.shared +. 1.0;
            s.chain <- s.chain +. float_of_int arch.A.shared_latency
          end
      | I.Ld_global { via_tex; _ } ->
          s.lsu <- s.lsu +. 1.0;
          s.loads <- s.loads + 1;
          let bytes = 8.0 *. 32.0 in
          if via_tex && arch.A.has_ldg then s.tex_b <- s.tex_b +. bytes
          else s.glob_b <- s.glob_b +. bytes
      | I.St_global { pred; _ } ->
          s.lsu <- s.lsu +. 1.0;
          s.glob_b <- s.glob_b +. (8.0 *. float_of_int (active_lanes pred))
      | I.Ld_shared _ ->
          s.lsu <- s.lsu +. 1.0;
          s.shared <- s.shared +. 1.0;
          s.chain <- s.chain +. float_of_int arch.A.shared_latency
      | I.St_shared _ ->
          s.lsu <- s.lsu +. 1.0;
          s.shared <- s.shared +. 1.0
      | I.Ld_local _ ->
          s.lsu <- s.lsu +. 1.0;
          s.loads <- s.loads + 1;
          s.loc_b <- s.loc_b +. (8.0 *. 32.0)
      | I.St_local _ ->
          s.lsu <- s.lsu +. 1.0;
          s.loc_b <- s.loc_b +. (8.0 *. 32.0)
      | I.Ld_const_bank _ ->
          s.lsu <- s.lsu +. 1.0;
          s.loads <- s.loads + 1;
          let bytes = 8.0 *. 32.0 in
          if arch.A.has_ldg then s.tex_b <- s.tex_b +. bytes
          else s.glob_b <- s.glob_b +. bytes
      | I.Ld_param _ ->
          s.lsu <- s.lsu +. 1.0;
          s.loads <- s.loads + 1;
          let bytes = 4.0 *. 32.0 in
          if arch.A.has_ldg then s.tex_b <- s.tex_b +. bytes
          else s.glob_b <- s.glob_b +. bytes
      | I.Shfl _ | I.Shfl_rot _ | I.Shfl_bfly _ ->
          s.alu <- s.alu +. 2.0;
          s.chain <- s.chain +. float_of_int arch.A.arith_latency
      | I.Ishfl _ ->
          s.alu <- s.alu +. 1.0;
          s.chain <- s.chain +. float_of_int arch.A.arith_latency
      | I.Bar_arrive _ | I.Bar_sync _ | I.Bar_cta -> s.alu <- s.alu +. 1.0)

(* Per-warp abstract scoreboard: the simulator's in-order issue
   discipline (issue at [max(prev + 1, operands ready, own pipe free)])
   with the warp's own pipe serialization, dependence latencies, and
   memory-path backlog — but no cross-warp contention, which is the
   throughput term's job. This is what turns the lowered code's actual
   ILP into exposed stall cycles instead of guessing an exposure
   scalar. *)
type walk = {
  freg : float array;  (* result-ready time per double register *)
  ireg : float array;
  mutable clk : float;  (* this warp's issue clock *)
  mutable dp_free : float;  (* own next-issue time per pipe *)
  mutable alu_free : float;
  mutable lsu_free : float;
  mutable sh_free : float;
  mutable tex_drain : float;  (* own backlog per memory path *)
  mutable glob_drain : float;
  mutable loc_drain : float;
}

let walk_make (p : I.program) =
  {
    freg = Array.make (max 1 p.I.n_fregs) 0.0;
    ireg = Array.make (max 1 p.I.n_iregs) 0.0;
    clk = 0.0;
    dp_free = 0.0;
    alu_free = 0.0;
    lsu_free = 0.0;
    sh_free = 0.0;
    tex_drain = 0.0;
    glob_drain = 0.0;
    loc_drain = 0.0;
  }

(* Average queueing pressure a warp sees on a shared memory path: with S
   co-resident warps feeding the path, a load's backlog is on average
   half the pack's concurrent transfers. *)
type path_mult = { tex_m : float; glob_m : float; loc_m : float }

let walk_step (arch : A.t) (p : I.program) ~ccache_thrash ~(pm : path_mult)
    (wk : walk) (e : T.entry) =
  let ready = ref 0.0 in
  Array.iter
    (function
      | I.Sreg r -> if wk.freg.(r) > !ready then ready := wk.freg.(r)
      | I.Sshared { I.s_ireg = Some r; _ } ->
          if wk.ireg.(r) > !ready then ready := wk.ireg.(r)
      | I.Sshared _ | I.Simm _ | I.Sconst _ | I.Sconst_warp _ -> ())
    e.T.srcs;
  wk.clk <- Float.max (wk.clk +. 1.0) !ready;
  if ccache_thrash && e.T.has_const then
    wk.clk <-
      wk.clk +. (ccache_exposure *. float_of_int arch.A.global_latency);
  (* Pipe gate mirrors [pipe_free]: issue once the pipe's backlog is
     under a cycle, then deepen it by the op's slots. *)
  let gate free slots rate =
    wk.clk <- Float.max wk.clk (free -. 1.0);
    wk.clk +. (slots /. rate)
  in
  let path_done get set bytes rate =
    let transfer = bytes /. rate in
    let start = Float.max (get ()) wk.clk in
    set (start +. transfer);
    start +. transfer -. wk.clk
  in
  let tex_rate = arch.A.tex_bytes_per_cycle /. pm.tex_m in
  let glob_rate = arch.A.global_bytes_per_cycle /. pm.glob_m in
  let loc_rate = arch.A.local_bytes_per_cycle /. pm.loc_m in
  let lat = float_of_int arch.A.global_latency in
  match e.T.instr with
  | None -> wk.alu_free <- gate wk.alu_free 1.0 arch.A.alu_issue_per_cycle
  | Some instr -> (
      match instr with
      | I.Arith { op; dst; _ } ->
          let penalty =
            if
              e.T.has_const
              || ((op = I.Exp || op = I.Log)
                 && not p.I.exp_consts_in_registers)
            then arch.A.const_operand_penalty
            else 1.0
          in
          wk.dp_free <-
            gate wk.dp_free
              (e.T.dp_slots *. penalty)
              arch.A.dp_issue_per_cycle;
          let n_shared = Array.length e.T.shared_srcs in
          let extra =
            if n_shared > 0 then begin
              if not arch.A.shared_operand_collector then
                wk.sh_free <-
                  gate wk.sh_free (float_of_int n_shared)
                    arch.A.shared_issue_per_cycle;
              float_of_int arch.A.shared_latency
            end
            else 0.0
          in
          wk.freg.(dst) <-
            wk.clk
            +. float_of_int (arch.A.arith_latency * e.T.lat_mult)
            +. extra
      | I.Mov { dst; src; _ } ->
          wk.alu_free <- gate wk.alu_free 1.0 arch.A.alu_issue_per_cycle;
          let extra =
            match src with
            | I.Sshared _ ->
                wk.sh_free <-
                  gate wk.sh_free 1.0 arch.A.shared_issue_per_cycle;
                float_of_int arch.A.shared_latency
            | _ -> 0.0
          in
          wk.freg.(dst) <-
            wk.clk +. float_of_int arch.A.arith_latency +. extra
      | I.Ld_global { dst; via_tex; _ } ->
          wk.lsu_free <- gate wk.lsu_free 1.0 1.0;
          let done_in =
            if via_tex && arch.A.has_ldg then
              path_done
                (fun () -> wk.tex_drain)
                (fun v -> wk.tex_drain <- v)
                256.0 tex_rate
            else
              path_done
                (fun () -> wk.glob_drain)
                (fun v -> wk.glob_drain <- v)
                256.0 glob_rate
          in
          wk.freg.(dst) <- wk.clk +. lat +. done_in
      | I.St_global { pred; _ } ->
          wk.lsu_free <- gate wk.lsu_free 1.0 1.0;
          ignore
            (path_done
               (fun () -> wk.glob_drain)
               (fun v -> wk.glob_drain <- v)
               (8.0 *. float_of_int (active_lanes pred))
               glob_rate)
      | I.Ld_shared { dst; _ } ->
          wk.lsu_free <- gate wk.lsu_free 1.0 1.0;
          wk.sh_free <- gate wk.sh_free 1.0 arch.A.shared_issue_per_cycle;
          wk.freg.(dst) <- wk.clk +. float_of_int arch.A.shared_latency
      | I.St_shared _ ->
          wk.lsu_free <- gate wk.lsu_free 1.0 1.0;
          wk.sh_free <- gate wk.sh_free 1.0 arch.A.shared_issue_per_cycle
      | I.Ld_local { dst; _ } ->
          wk.lsu_free <- gate wk.lsu_free 1.0 1.0;
          let done_in =
            path_done
              (fun () -> wk.loc_drain)
              (fun v -> wk.loc_drain <- v)
              256.0 loc_rate
          in
          wk.freg.(dst) <- wk.clk +. lat +. done_in
      | I.St_local _ ->
          wk.lsu_free <- gate wk.lsu_free 1.0 1.0;
          ignore
            (path_done
               (fun () -> wk.loc_drain)
               (fun v -> wk.loc_drain <- v)
               256.0 loc_rate)
      | I.Ld_const_bank { dst; _ } ->
          wk.lsu_free <- gate wk.lsu_free 1.0 1.0;
          let done_in =
            if arch.A.has_ldg then
              path_done
                (fun () -> wk.tex_drain)
                (fun v -> wk.tex_drain <- v)
                256.0 tex_rate
            else
              path_done
                (fun () -> wk.glob_drain)
                (fun v -> wk.glob_drain <- v)
                256.0 glob_rate
          in
          wk.freg.(dst) <- wk.clk +. lat +. done_in
      | I.Ld_param { dst_i; _ } ->
          wk.lsu_free <- gate wk.lsu_free 1.0 1.0;
          let done_in =
            if arch.A.has_ldg then
              path_done
                (fun () -> wk.tex_drain)
                (fun v -> wk.tex_drain <- v)
                128.0 tex_rate
            else
              path_done
                (fun () -> wk.glob_drain)
                (fun v -> wk.glob_drain <- v)
                128.0 glob_rate
          in
          wk.ireg.(dst_i) <- wk.clk +. lat +. done_in
      | I.Shfl { dst; _ } | I.Shfl_rot { dst; _ } | I.Shfl_bfly { dst; _ } ->
          wk.alu_free <- gate wk.alu_free 2.0 arch.A.alu_issue_per_cycle;
          wk.freg.(dst) <- wk.clk +. float_of_int arch.A.arith_latency
      | I.Ishfl { dst_i; _ } ->
          wk.alu_free <- gate wk.alu_free 1.0 arch.A.alu_issue_per_cycle;
          wk.ireg.(dst_i) <- wk.clk +. float_of_int arch.A.arith_latency
      | I.Bar_arrive _ | I.Bar_sync _ | I.Bar_cta ->
          wk.alu_free <- gate wk.alu_free 1.0 arch.A.alu_issue_per_cycle)

(* One warp's stream, segmented at barrier operations. *)
type item = Cost of float | Arrive of int * int | Syncb of int * int | Cta

let items_of (arch : A.t) (p : I.program) ~ccache_thrash ~(pm : path_mult)
    ~(agg : seg) (tr : T.t) ids =
  let items = ref [] in
  let s = seg_zero () in
  let wk = walk_make p in
  let seg_start = ref 0.0 in
  let flush () =
    if s.instrs > 0.0 then begin
      seg_add_into ~dst:agg s;
      items := Cost (wk.clk -. !seg_start) :: !items;
      seg_reset s
    end;
    seg_start := wk.clk
  in
  Array.iter
    (fun id ->
      let e = tr.T.entries.(id) in
      charge arch p s e;
      walk_step arch p ~ccache_thrash ~pm wk e;
      match e.T.instr with
      | Some (I.Bar_arrive { bar; count }) ->
          flush ();
          items := Arrive (bar, count) :: !items
      | Some (I.Bar_sync { bar; count }) ->
          flush ();
          items := Syncb (bar, count) :: !items
      | Some I.Bar_cta ->
          flush ();
          items := Cta :: !items
      | _ -> ())
    ids;
  flush ();
  Array.of_list (List.rev !items)

(* Abstract rendezvous execution: every warp accumulates its segment
   costs; named and CTA barriers propagate the latest arrival time to
   their waiters (the simulator's barrier semantics, without cycles).
   Warps left blocked at the end (their producer's arrival lies beyond
   the walked batches) simply keep their arrival time. Returns the
   per-warp finish times. *)
let rendezvous n_warps (streams : item array array) =
  let t = Array.make n_warps 0.0 in
  let pos = Array.make n_warps 0 in
  let blocked = Array.make n_warps false in
  let nbars = 17 in
  let bar_arrived = Array.make nbars 0 in
  let bar_time = Array.make nbars 0.0 in
  let bar_waiters = Array.make nbars [] in
  let cta_arrived = ref 0 in
  let cta_time = ref 0.0 in
  let cta_waiters = ref [] in
  let release waiters tm =
    List.iter
      (fun ww ->
        t.(ww) <- Float.max t.(ww) tm;
        blocked.(ww) <- false)
      waiters
  in
  let progress = ref true in
  while !progress do
    progress := false;
    for w = 0 to n_warps - 1 do
      while (not blocked.(w)) && pos.(w) < Array.length streams.(w) do
        progress := true;
        (match streams.(w).(pos.(w)) with
        | Cost c -> t.(w) <- t.(w) +. c
        | Arrive (b, count) ->
            bar_time.(b) <- Float.max bar_time.(b) t.(w);
            bar_arrived.(b) <- bar_arrived.(b) + 1;
            if bar_arrived.(b) >= count then begin
              bar_arrived.(b) <- bar_arrived.(b) - count;
              release bar_waiters.(b) bar_time.(b);
              bar_waiters.(b) <- [];
              bar_time.(b) <- 0.0
            end
        | Syncb (b, count) ->
            bar_time.(b) <- Float.max bar_time.(b) t.(w);
            bar_arrived.(b) <- bar_arrived.(b) + 1;
            if bar_arrived.(b) >= count then begin
              bar_arrived.(b) <- bar_arrived.(b) - count;
              t.(w) <- Float.max t.(w) bar_time.(b);
              release bar_waiters.(b) bar_time.(b);
              bar_waiters.(b) <- [];
              bar_time.(b) <- 0.0
            end
            else begin
              blocked.(w) <- true;
              bar_waiters.(b) <- w :: bar_waiters.(b)
            end
        | Cta ->
            cta_time := Float.max !cta_time t.(w);
            incr cta_arrived;
            if !cta_arrived >= n_warps then begin
              cta_arrived := 0;
              t.(w) <- Float.max t.(w) !cta_time;
              release !cta_waiters !cta_time;
              cta_waiters := [];
              cta_time := 0.0
            end
            else begin
              blocked.(w) <- true;
              cta_waiters := w :: !cta_waiters
            end);
        pos.(w) <- pos.(w) + 1
      done
    done
  done;
  Array.fold_left Float.max 0.0 t

let repeat_streams k streams =
  Array.map
    (fun (s : item array) -> Array.concat (List.init k (fun _ -> s)))
    streams

(* Per-CTA-batch demand over the shared pipes and paths, as SM cycles;
   the largest entry is the throughput floor on a batch. *)
let demand_terms (arch : A.t) (s : seg) =
  [
    ("warp-instruction issue", s.instrs /. float_of_int arch.A.schedulers);
    ("DP pipe", s.dp /. arch.A.dp_issue_per_cycle);
    ("integer/branch pipe", s.alu /. arch.A.alu_issue_per_cycle);
    ("LSU issue", s.lsu);
    ("shared-memory pipe", s.shared /. arch.A.shared_issue_per_cycle);
    ("texture path", s.tex_b /. arch.A.tex_bytes_per_cycle);
    ("global-memory path", s.glob_b /. arch.A.global_bytes_per_cycle);
    ("local-memory (spill) path", s.loc_b /. arch.A.local_bytes_per_cycle);
  ]

let max_term terms =
  List.fold_left
    (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
    ("none", 0.0) terms

(* Divergent regions long enough to need their own prefetch stream. *)
let rec long_paths (b : I.block) =
  match b with
  | I.Instrs _ -> 0
  | I.Seq bs -> List.fold_left (fun acc b -> acc + long_paths b) 0 bs
  | I.If_warps { body; _ } ->
      (if I.static_instr_count body > long_path_instrs then 1 else 0)
      + long_paths body
  | I.Switch_warp arms ->
      Array.fold_left
        (fun acc arm ->
          acc
          + (if I.static_instr_count arm > long_path_instrs then 1 else 0)
          + long_paths arm)
        0 arms

let distinct_lines (arch : A.t) (tr : T.t) (per_warp : int array array) =
  let lines = Hashtbl.create 256 in
  let line_bytes = A.icache_line_bytes arch in
  Array.iter
    (Array.iter (fun id ->
         let line = tr.T.entries.(id).T.addr / line_bytes in
         if not (Hashtbl.mem lines line) then Hashtbl.add lines line ()))
    per_warp;
  Hashtbl.length lines

(* Does the body's constant-memory working set fit the 8 KB constant
   cache? When it doesn't, the LRU array thrashes and every
   constant-operand instruction re-misses each batch — the per-warp
   stalls {!seg_cost} then charges. Line footprint is counted over the
   body entries of every warp ([Sconst_warp] operands touch one slot per
   warp id). *)
let ccache_thrashes (arch : A.t) (p : I.program) (tr : T.t) =
  let slots_per_line = arch.A.const_line_bytes / 8 in
  let lines = Hashtbl.create 64 in
  let add_slot slot =
    let line = slot / slots_per_line in
    if not (Hashtbl.mem lines line) then Hashtbl.add lines line ()
  in
  let seen = Hashtbl.create 256 in
  Array.iter
    (Array.iter (fun id ->
         if not (Hashtbl.mem seen id) then begin
           Hashtbl.add seen id ();
           let e = tr.T.entries.(id) in
           if e.T.has_const then
             Array.iter
               (function
                 | I.Sconst slot -> add_slot slot
                 | I.Sconst_warp base ->
                     for w = 0 to p.I.n_warps - 1 do
                       add_slot (base + w)
                     done
                 | I.Sreg _ | I.Simm _ | I.Sshared _ -> ())
               e.T.srcs
         end))
    tr.T.body;
  Hashtbl.length lines * arch.A.const_line_bytes > arch.A.const_cache_bytes

let predict ?ctas ?n_sms ?skew (t : Compile.t) ~total_points =
  let p = t.Compile.lowered.Lower.program in
  let arch = t.Compile.options.Compile.arch in
  let ctas =
    match ctas with Some c -> c | None -> Compile.default_ctas t ~total_points
  in
  let launch = { M.program = p; total_points; ctas } in
  let occ = M.occupancy arch p in
  let resident = min occ.M.resident_ctas ctas in
  let batches = M.batches_per_cta launch in
  let sim_batches = min batches 6 in
  let tr = T.flatten arch p in
  let n_warps = p.I.n_warps in
  (* Queueing pressure per memory path: with S co-resident warps feeding
     a path, an access waits on average behind half the pack's concurrent
     transfers (the full simulator keeps one shared drain per path). *)
  let path_mult_of per_warp =
    let users kind =
      let n = ref 0 in
      for w = 0 to n_warps - 1 do
        if
          Array.exists
            (fun id ->
              match tr.T.entries.(id).T.instr with
              | Some (I.Ld_global { via_tex; _ }) ->
                  if via_tex && arch.A.has_ldg then kind = `Tex
                  else kind = `Glob
              | Some (I.St_global _) -> kind = `Glob
              | Some (I.Ld_local _ | I.St_local _) -> kind = `Loc
              | Some (I.Ld_const_bank _ | I.Ld_param _) ->
                  if arch.A.has_ldg then kind = `Tex else kind = `Glob
              | _ -> false)
            per_warp.(w)
        then incr n
      done;
      let own = float_of_int !n in
      let others = cross_cta_overlap *. own *. float_of_int (resident - 1) in
      Float.max 1.0 ((own +. others) /. 2.0)
    in
    { tex_m = users `Tex; glob_m = users `Glob; loc_m = users `Loc }
  in
  (* Prologue: rendezvous over the prologue streams, plus the cold fill
     of the code both phases touch. *)
  let thrash = ccache_thrashes arch p tr in
  let agg_pro = seg_zero () in
  let pro_pm = path_mult_of tr.T.prologue in
  let pro_streams =
    Array.init n_warps (fun w ->
        items_of arch p ~ccache_thrash:false ~pm:pro_pm ~agg:agg_pro tr
          tr.T.prologue.(w))
  in
  let pro_walk = rendezvous n_warps pro_streams in
  let pro_thr =
    float_of_int resident *. snd (max_term (demand_terms arch agg_pro))
  in
  let lat = float_of_int arch.A.global_latency in
  (* Cold code fetch: on its first pass every warp misses each line of
     its own path. Straight-line code costs only the prefetcher's
     catch-up per line; once the divergent regions outnumber the
     prefetch streams, each line costs a full miss. *)
  let line_bytes = A.icache_line_bytes arch in
  let own_lines w =
    let lines = Hashtbl.create 64 in
    let add id =
      let l = tr.T.entries.(id).T.addr / line_bytes in
      if not (Hashtbl.mem lines l) then Hashtbl.add lines l ()
    in
    Array.iter add tr.T.prologue.(w);
    Array.iter add tr.T.body.(w);
    Hashtbl.length lines
  in
  let ic_cold_lines = ref 0 in
  for w = 0 to n_warps - 1 do
    ic_cold_lines := max !ic_cold_lines (own_lines w)
  done;
  let per_line_cold =
    if long_paths p.I.body > Gpusim.Caches.Icache.max_streams then
      arch.A.icache_miss_latency
    else Gpusim.Caches.Icache.prefetch_fill
  in
  let cold_fill =
    icache_cold *. float_of_int (!ic_cold_lines * per_line_cold)
  in
  (* Cold constant fills: the first batch misses once per constant line a
     warp touches (when the working set thrashes, the recurring per-access
     term below already charges every batch, the first included). *)
  let cc_cold_lines =
    if thrash then 0
    else begin
      let spl = arch.A.const_line_bytes / 8 in
      let worst = ref 0 in
      for w = 0 to n_warps - 1 do
        let lines = Hashtbl.create 64 in
        let add slot =
          let l = slot / spl in
          if not (Hashtbl.mem lines l) then Hashtbl.add lines l ()
        in
        Array.iter
          (fun id ->
            let e = tr.T.entries.(id) in
            if e.T.has_const then
              Array.iter
                (function
                  | I.Sconst slot -> add slot
                  | I.Sconst_warp base -> add (base + w)
                  | I.Sreg _ | I.Simm _ | I.Sshared _ -> ())
                e.T.srcs)
          tr.T.body.(w);
        worst := max !worst (Hashtbl.length lines)
      done;
      !worst
    end
  in
  let cold_const = ccache_cold *. float_of_int cc_cold_lines *. lat in
  let prologue_cycles =
    Float.max pro_walk pro_thr +. cold_fill +. cold_const
  in
  (* Body: critical path from walking exactly the simulated batches
     (cold barrier ramp included), steady state from differencing a
     multi-batch walk, and the per-batch demand aggregated over one
     batch of every warp. *)
  let agg_body = seg_zero () in
  let body_pm = path_mult_of tr.T.body in
  let body_streams =
    Array.init n_warps (fun w ->
        items_of arch p ~ccache_thrash:thrash ~pm:body_pm ~agg:agg_body tr
          tr.T.body.(w))
  in
  let walk k =
    if k = 0 then 0.0 else rendezvous n_warps (repeat_streams k body_streams)
  in
  let sync_sim = walk sim_batches in
  (* The steady-state per-batch critical path needs two extra multi-batch
     walks; it only matters for the [(batches - sim_batches)]
     extrapolation, so when the launch has no batches beyond the
     simulated ones (the common tuning shape) skip the walks — predict
     stays much cheaper than one simulation, which is the whole point of
     model-guided pruning. *)
  let sync_cycles =
    if batches = sim_batches then
      sync_sim /. float_of_int (max 1 sim_batches)
    else
      let t2 = if sim_batches = 2 then sync_sim else walk 2 in
      let t4 = if sim_batches = 4 then sync_sim else walk 4 in
      Float.max 0.0 ((t4 -. t2) /. 2.0)
  in
  let thr_resource, thr_batch = max_term (demand_terms arch agg_body) in
  let throughput_cycles = float_of_int resident *. thr_batch in
  (* Body-code refetch on later batches, once the united footprint
     overflows the cache. *)
  let body_lines = distinct_lines arch tr tr.T.body in
  let footprint = body_lines * line_bytes in
  let icache_cycles =
    if footprint <= arch.A.icache_bytes then 0.0
    else icache_exposure *. float_of_int (body_lines * per_line_cold)
  in
  (* Combining the two sides is asymmetric: a throughput-bound batch
     hides none of its per-warp stalls (all warps stall together between
     turns at the saturated pipe), while a latency-bound batch drains
     most of its pipe work during the stalls. *)
  let combine thr sync =
    if thr >= sync then (thr_resource, thr +. sync)
    else ("synchronization", sync +. (sync_overlap *. thr))
  in
  let binding, body_sim =
    combine (float_of_int sim_batches *. throughput_cycles) sync_sim
  in
  let body_sim =
    body_sim +. (float_of_int (sim_batches - 1) *. icache_cycles)
  in
  let _, batch_steady = combine throughput_cycles sync_cycles in
  let batch_cycles = batch_steady +. icache_cycles in
  let cycles = prologue_cycles +. body_sim in
  let floor_cycles =
    float_of_int sim_batches *. float_of_int resident *. thr_batch
  in
  if Sys.getenv_opt "SINGE_PM_DEBUG" <> None then
    Printf.eprintf
      "pm: %s res=%d batches=%d/%d thrash=%b n_const=%d loads=%d \
       chain=%.0f pro=%.0f (ic=%.0f cc=%.0f) sync_sim=%.0f sync=%.0f \
       thr=%.0f(%s)\n"
      p.I.name resident sim_batches batches thrash agg_body.n_const
      agg_body.loads agg_body.chain prologue_cycles cold_fill cold_const
      sync_sim sync_cycles throughput_cycles thr_resource;
  (* End-to-end: mirror Chip.run's extrapolation, then feed the same
     dispatcher/arbiter (Chip.schedule) with model-derived round costs
     instead of simulated ones, so predicted wall time carries the same
     tail-wave and bandwidth-contention semantics as the simulator. *)
  let cycles_full =
    cycles +. (float_of_int (batches - sim_batches) *. batch_cycles)
  in
  (* Round cost for k resident CTAs: the throughput term scales with k
     (k CTAs share the pipes), the critical-path and prologue terms do
     not. k = resident reproduces [cycles_full] exactly. *)
  let cycles_full_of k =
    let thr_b = float_of_int k *. thr_batch in
    let _, b_sim = combine (float_of_int sim_batches *. thr_b) sync_sim in
    let b_sim = b_sim +. (float_of_int (sim_batches - 1) *. icache_cycles) in
    let _, b_steady = combine thr_b sync_cycles in
    prologue_cycles +. b_sim
    +. (float_of_int (batches - sim_batches) *. (b_steady +. icache_cycles))
  in
  let n_sms = match n_sms with Some n -> n | None -> arch.A.n_sms in
  let skew = match skew with Some s -> s | None -> arch.A.sm_clock_skew in
  let spill_working_set =
    n_sms * resident * n_warps * 32 * p.I.local_doubles * 8
  in
  let spill_in_l2 =
    p.I.local_doubles > 0 && spill_working_set <= arch.A.l2_bytes
  in
  (* [agg_body] holds one batch of every warp in one CTA; spill traffic
     whose aggregate working set fits in L2 never reaches DRAM. *)
  let batch_dram_b =
    agg_body.tex_b +. agg_body.glob_b
    +. (if spill_in_l2 then 0.0 else agg_body.loc_b)
  in
  let round_cycles k =
    if k = resident then cycles_full else cycles_full_of k
  in
  let round_dram_bytes k =
    float_of_int batches *. float_of_int k *. batch_dram_b
  in
  let chip =
    C.schedule ~n_sms ~skew ~resident ~ctas ~round_cycles ~round_dram_bytes
      ~dram_peak_bpc:(A.dram_bytes_per_chip_cycle arch) ~spill_in_l2
  in
  let time_s = chip.C.makespan_cycles /. (arch.A.clock_mhz *. 1e6) in
  let points_per_sec = float_of_int total_points /. time_s in
  {
    occ;
    resident;
    batches;
    sim_batches;
    prologue_cycles;
    batch_cycles;
    throughput_cycles;
    sync_cycles;
    icache_cycles;
    binding;
    cycles;
    floor_cycles;
    chip;
    time_s;
    points_per_sec;
  }

let rel_err ~predicted ~measured =
  if measured = 0.0 then infinity
  else abs_float (predicted -. measured) /. measured
