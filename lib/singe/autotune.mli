(** Brute-force exhaustive autotuning (§4).

    The paper: "we used a brute-force exhaustive autotuning script to drive
    Singe"; the searchable dimensions are deliberately coarse (warps per
    CTA, target CTAs per SM, mapping weights, shared-memory strategy), so
    the space stays at a few hundred points. Configurations that do not
    compile or fit (register file, shared memory, barrier budget) are
    skipped, exactly as a failing [nvcc] invocation would be. *)

type candidate = {
  options : Compile.options;
  throughput : float;  (** points per second at the tuning problem size *)
  compiled : Compile.t;
  result : Compile.run_result;
}

type failure = {
  failed_options : Compile.options;
  reason : string;  (** one-line cause, e.g. the diagnostic or fault *)
  fault : Gpusim.Sm.fault_kind option;
      (** [Some _] when the candidate died in a contained simulation
          fault (deadlock, livelock, watchdog budget) *)
}

type outcome = {
  best : candidate;
  tried : int;
  skipped : int;  (** configurations that failed to compile, fit or run *)
  failures : failure list;
      (** the skipped candidates' causes, in candidate order *)
}

val default_warp_candidates :
  Chem.Mechanism.t -> Kernel_abi.kernel -> Compile.version -> int list
(** Warp counts worth trying: divisors and near-divisors of the computed
    species count for warp-specialized kernels (Fig. 9's peaks), powers of
    two for the data-parallel baseline. *)

val candidate_options :
  points:int ->
  Kernel_abi.kernel ->
  Compile.version ->
  Gpusim.Arch.t ->
  int list ->
  int list ->
  Compile.options list
(** [candidate_options ~points kernel version arch warp_candidates
    cta_targets] is the exact candidate grid {!tune} sweeps, in
    evaluation order — exposed so tests can address individual candidates
    (e.g. to poison one by index). *)

val tune :
  ?points:int ->
  ?warp_candidates:int list ->
  ?cta_targets:int list ->
  ?jobs:int ->
  ?max_cycles:int ->
  ?inject:(int -> Gpusim.Fault.t list) ->
  Chem.Mechanism.t ->
  Kernel_abi.kernel ->
  Compile.version ->
  Gpusim.Arch.t ->
  outcome
(** Exhaustively evaluates the candidate grid at the (small) tuning size
    (default 32768 points = 32^3) and returns the fastest configuration.
    Raises [Failure] if no candidate ran.

    Candidates are independent compile+simulate jobs and are evaluated on
    up to [jobs] domains ({!Sutil.Domain_pool.default_jobs} when
    omitted); [tried]/[skipped]/[failures] and the winner are folded from
    the results in candidate order, so the outcome is identical to the
    serial sweep's. Compilations go through {!Compile.compile_cached},
    so a configuration revisited across kernels/figures compiles once.

    {b Fault containment.} Every candidate runs under the simulator
    watchdog ([max_cycles], default 2e8 — far beyond any legitimate
    tuning-size simulation), and any per-candidate exception — a
    compile/fit failure, a {!Gpusim.Sm.Simulation_fault}, wrong results —
    is captured as a {!failure} and the candidate skipped, so one bad
    configuration can neither hang nor abort the sweep. [inject] maps a
    candidate's index in the grid to trace faults for its simulation
    (default none); used by the containment tests. *)
