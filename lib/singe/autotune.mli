(** Brute-force exhaustive autotuning (§4).

    The paper: "we used a brute-force exhaustive autotuning script to drive
    Singe"; the searchable dimensions are deliberately coarse (warps per
    CTA, target CTAs per SM, mapping weights, shared-memory strategy), so
    the space stays at a few hundred points. Configurations that do not
    compile or fit (register file, shared memory, barrier budget) are
    skipped, exactly as a failing [nvcc] invocation would be. *)

type candidate = {
  options : Compile.options;
  throughput : float;  (** points per second at the tuning problem size *)
  compiled : Compile.t;
  result : Compile.run_result;
}

type outcome = {
  best : candidate;
  tried : int;
  skipped : int;  (** configurations that failed to compile or fit *)
}

val default_warp_candidates :
  Chem.Mechanism.t -> Kernel_abi.kernel -> Compile.version -> int list
(** Warp counts worth trying: divisors and near-divisors of the computed
    species count for warp-specialized kernels (Fig. 9's peaks), powers of
    two for the data-parallel baseline. *)

val tune :
  ?points:int ->
  ?warp_candidates:int list ->
  ?cta_targets:int list ->
  ?jobs:int ->
  Chem.Mechanism.t ->
  Kernel_abi.kernel ->
  Compile.version ->
  Gpusim.Arch.t ->
  outcome
(** Exhaustively evaluates the candidate grid at the (small) tuning size
    (default 32768 points = 32^3) and returns the fastest configuration.
    Raises [Failure] if no candidate ran.

    Candidates are independent compile+simulate jobs and are evaluated on
    up to [jobs] domains ({!Sutil.Domain_pool.default_jobs} when
    omitted); [tried]/[skipped] and the winner are folded from the
    results in candidate order, so the outcome is identical to the
    serial sweep's. Compilations go through {!Compile.compile_cached},
    so a configuration revisited across kernels/figures compiles once. *)
