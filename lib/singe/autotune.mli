(** Brute-force exhaustive autotuning (§4), optionally pruned by the
    analytic performance model.

    The paper: "we used a brute-force exhaustive autotuning script to drive
    Singe"; the searchable dimensions are deliberately coarse (warps per
    CTA, target CTAs per SM, mapping weights, shared-memory strategy), so
    the space stays at a few hundred points. Configurations that do not
    compile or fit (register file, shared memory, barrier budget) are
    skipped, exactly as a failing [nvcc] invocation would be.

    {!Perf_model} makes a cheaper sweep possible: every candidate is
    scored analytically first (static prediction, no simulation), and in
    {!Pruned} mode only the model's top picks are actually simulated. The
    exhaustive mode stays the default and the reference. *)

type mode =
  | Exhaustive  (** simulate every candidate (the paper's sweep) *)
  | Pruned of int
      (** score the whole grid with {!Perf_model.predict}, simulate only
          the top-[k] predicted candidates ({!default_prune_keep} is the
          conventional [k]) *)

type candidate = {
  options : Compile.options;
  throughput : float;  (** points per second at the tuning problem size *)
  compiled : Compile.t;
  result : Compile.run_result;
  predicted : Perf_model.prediction;
      (** the model's static score for this configuration — recorded in
          both modes so sweeps can report predicted-vs-measured *)
}

type failure = {
  failed_options : Compile.options;
  reason : string;  (** one-line cause, e.g. the diagnostic or fault *)
  fault : Gpusim.Sm.fault_kind option;
      (** [Some _] when the candidate died in a contained simulation
          fault (deadlock, livelock, watchdog budget) *)
}

type outcome = {
  best : candidate;
  tried : int;
  skipped : int;  (** configurations that failed to compile, fit or run *)
  failures : failure list;
      (** the skipped candidates' causes, in candidate order *)
  mode : mode;  (** the mode this sweep actually ran under *)
  candidates_pruned : int;
      (** compilable candidates the model excluded from simulation
          (always 0 when exhaustive) *)
  model_rank_of_winner : int;
      (** 1-based rank {!Perf_model} gave the measured winner over the
          compilable grid (1 = the model's own first pick; 0 only if the
          winner was somehow unranked) *)
}

val classify_exn : exn -> string * Gpusim.Sm.fault_kind option
(** Render a per-candidate failure one-line ([Simulation_fault]s keep
    their structured kind); shared with {!Partition_search}'s rejection
    bookkeeping. *)

val default_prune_keep : int
(** How many model-ranked candidates a pruned sweep simulates by default
    (8) — the [--tune-mode pruned] CLI default. *)

val default_warp_candidates :
  Chem.Mechanism.t -> Kernel_abi.kernel -> Compile.version -> int list
(** Warp counts worth trying: divisors and near-divisors of the computed
    species count for warp-specialized kernels (Fig. 9's peaks), powers of
    two for the data-parallel baseline. *)

val candidate_options :
  ?synth_exchange:bool ->
  ?stencil_overlap:bool ->
  points:int ->
  Kernel_abi.kernel ->
  Compile.version ->
  Gpusim.Arch.t ->
  int list ->
  int list ->
  Compile.options list
(** [candidate_options ~points kernel version arch warp_candidates
    cta_targets] is the exact candidate grid {!tune} sweeps, in
    evaluation order — exposed so tests can address individual candidates
    (e.g. to poison one by index). [synth_exchange] forces the
    {!Shuffle_synth} exchange rewrite on or off for every candidate
    (default: each candidate keeps the per-architecture auto setting).
    [stencil_overlap] fixes the stencil tiling mode across the grid
    (default: the overlapped default; ignored by combustion kernels). *)

val tune :
  ?points:int ->
  ?warp_candidates:int list ->
  ?cta_targets:int list ->
  ?jobs:int ->
  ?max_cycles:int ->
  ?inject:(int -> Gpusim.Fault.t list) ->
  ?mode:mode ->
  ?n_sms:int ->
  ?skew:float ->
  ?synth_exchange:bool ->
  ?stencil_overlap:bool ->
  ?grid:Compile.options list ->
  Chem.Mechanism.t ->
  Kernel_abi.kernel ->
  Compile.version ->
  Gpusim.Arch.t ->
  outcome
(** Evaluates the candidate grid at the (small) tuning size (default
    32768 points = 32^3) and returns the fastest configuration. Raises
    [Failure] if no candidate ran.

    [grid] replaces the built-in warp x CTA x policy candidate grid with
    an explicit list of option records, evaluated in list order under the
    same two-phase machinery (model scoring, then simulation with fault
    containment and the index-ordered deterministic winner fold) —
    {!Partition_search} confirms its searched partitions through this.
    [warp_candidates]/[cta_targets]/[synth_exchange] are ignored when
    [grid] is given.

    [n_sms]/[skew] are forwarded to both {!Perf_model.predict} (model
    scoring) and {!Compile.run} (simulation), so a sweep tunes for the
    chip configuration it will actually run on. [synth_exchange] forces
    the exchange rewrite on or off across the whole grid (default: the
    per-architecture auto setting).

    Every candidate is first compiled ({!Compile.compile_cached}, so a
    configuration revisited across kernels/figures compiles once) and
    scored with {!Perf_model.predict}. Under [?mode] (default
    {!Exhaustive}) either the whole compilable grid or only the model's
    top-[k] picks are then simulated; [candidates_pruned] and
    [model_rank_of_winner] record what the model did either way.

    Candidates are independent jobs and are evaluated on up to [jobs]
    domains ({!Sutil.Domain_pool.default_jobs} when omitted);
    [tried]/[skipped]/[failures] and the winner are folded from the
    results in candidate order, so the outcome is identical to the serial
    sweep's. The winner tie-break is pinned: on equal measured
    throughput the lowest candidate index wins, independent of [jobs].

    {b Fault containment.} Every candidate runs under the simulator
    watchdog ([max_cycles], default 2e8 — far beyond any legitimate
    tuning-size simulation), and any per-candidate exception — a
    compile/fit failure, a {!Gpusim.Sm.Simulation_fault}, wrong results —
    is captured as a {!failure} and the candidate skipped, so one bad
    configuration can neither hang nor abort the sweep. [inject] maps a
    candidate's index in the grid to trace faults for its simulation
    (default none); used by the containment tests. *)
