type action =
  | A_op of int
  | A_send of { value : int; slot : int }
  | A_recv of { value : int; slot : int }
  | A_arrive of { bar : int; count : int }
  | A_wait of { bar : int; count : int }
  | A_cta_barrier

type t = {
  per_warp : action array array;
  stamps : int array array;
      (** global emission-order stamp of each action (overlay alignment) *)
  barriers_used : int;
  buffer_slots : int;
  n_sync_points : int;
}

(* Planned sync point. A sync may have several arrivers (producers or
   emptied-slot consumers) and several waiters; the hardware barrier count
   is their total. Exact walk-step positions of every attachment are kept:
   allocation must know a sync's full extent (for draining) and its
   waits-before-arrives exposure (for boundary placement). *)
type sync = {
  sid : int;
  count : int;
  wait_pos : int list;
  arrive_pos : int list;
  mutable bar : int;  (** -1 = converted into a CTA-barrier boundary *)
}

type emission =
  | E_wait of sync
  | E_recv of int * int  (** value, slot *)
  | E_send of int * int
  | E_arrive of sync

let shared_buffer_base (m : Mapping.t) = m.Mapping.store_slots * 32

let build ?(buffer_slots = 16) ?(group_syncs = true) ?(max_barriers = 8)
    (dfg : Dfg.t) (m : Mapping.t) =
  assert (max_barriers >= 1 && max_barriers <= 16);
  let order = Dfg.topo_order dfg in
  let n_ops = Array.length dfg.Dfg.ops in
  let step_of_op = Array.make n_ops 0 in
  Array.iteri (fun step op_id -> step_of_op.(op_id) <- step) order;
  let warp_of op_id = m.Mapping.op_warp.(op_id) in
  let attach_before = Array.make n_ops [] in
  (* After-lists are split so a send can be attached retroactively and
     still precede the arrive that covers it. *)
  let sends_after = Array.make n_ops [] in
  let arrives_after = Array.make n_ops [] in
  let add_before op e = attach_before.(op) <- e :: attach_before.(op) in
  let add_send op e = sends_after.(op) <- e :: sends_after.(op) in
  let add_arrive op e = arrives_after.(op) <- e :: arrives_after.(op) in
  (* Emissions attached right after a warp crosses a given epoch boundary:
     used when a producer's anchor op lies before the boundary, where a
     send would race with the previous epoch's slot reads. *)
  let post_boundary : (int * int, emission list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let add_post_boundary b warp e =
    match Hashtbl.find_opt post_boundary (b, warp) with
    | Some l -> l := e :: !l
    | None -> Hashtbl.add post_boundary (b, warp) (ref [ e ])
  in
  let syncs = ref [] in
  let n_syncs = ref 0 in
  let syncs_since_boundary = ref 0 in
  let new_sync ~count ~arrive_pos ~wait_pos =
    let s = { sid = !n_syncs; count; wait_pos; arrive_pos; bar = -1 } in
    incr n_syncs;
    incr syncs_since_boundary;
    syncs := s :: !syncs;
    s
  in
  (* synced.(p).(c) = the anchor op of the last sync from p observed by c
     (or -1). One barrier covers everything the producer did before its
     arrive — including sends attached retroactively before that arrive,
     which is how consecutive consumers share a single sync point. *)
  let w = m.Mapping.n_warps in
  let synced = Array.make_matrix w w (-1) in
  let last_op = Array.make w (-1) in
  let last_wrap = ref (-1) in
  (* Buffer ring state. Slot reuse is synchronized at epoch granularity:
     when the ring wraps, a CTA-barrier boundary is forced, after which
     every earlier transport has provably been received (the coarse-grain
     variant of Fig. 2's buffer-empty barrier). *)
  let slot_value = Array.make buffer_slots (-1) in
  let copies : (int * int, int option) Hashtbl.t = Hashtbl.create 64 in
  let next_slot = ref 0 in
  let used_slots = ref 0 in
  let forced_boundaries = ref [] in
  (* A forced epoch is a CTA barrier: besides resetting the transport ring,
     it makes every warp's past productions visible to everyone, so the
     synced matrix advances for all pairs at once. *)
  let force_epoch step =
    forced_boundaries := step :: !forced_boundaries;
    last_wrap := step;
    syncs_since_boundary := 0;
    Array.fill slot_value 0 buffer_slots (-1);
    Hashtbl.iter
      (fun key st ->
        match st with
        | Some _ -> Hashtbl.replace copies key None
        | None -> ())
      (Hashtbl.copy copies);
    next_slot := 0;
    for p = 0 to w - 1 do
      if last_op.(p) >= 0 then
        for cc = 0 to w - 1 do
          synced.(p).(cc) <- last_op.(p)
        done
    done
  in
  (* One planning step per op, in topological order. All of the op's
     synchronization needs collapse into at most two sync points: an
     "empty" handshake letting producers reuse buffer slots (Fig. 2's
     second barrier) and a "full" handshake covering both buffered sends
     and unsynchronized shared-store values. *)
  Array.iteri
    (fun step op_id ->
      let op = dfg.Dfg.ops.(op_id) in
      let c = warp_of op_id in
      if op.Dfg.kind = Dfg.Fence then force_epoch step
      else begin
      (* Pre-scan: how many transport slots will this op need? If the ring
         cannot supply them within the current epoch, wrap first so all of
         the op's sends land after one boundary. *)
      let n_new = ref 0 in
      Array.iter
        (fun v ->
          let p = warp_of dfg.Dfg.values.(v).Dfg.producer in
          if
            m.Mapping.value_place.(v) = Mapping.P_reg
            && p <> c
            && not (Hashtbl.mem copies (c, v))
          then incr n_new)
        op.Dfg.inputs;
      if !n_new > buffer_slots then
        Diagnostics.failf ~pass:"schedule" ~loc:dfg.Dfg.graph_name
          "op %s needs %d transports but the buffer ring has only %d slots \
           (raise buffer_slots or change the mapping strategy)"
          op.Dfg.name !n_new buffer_slots;
      let free_in_epoch = buffer_slots - !next_slot in
      (* Epoch when the ring cannot supply this op, or when sync pressure
         since the last boundary is past what the hardware barriers can
         overlap anyway (dense all-to-all phases such as initial loads). *)
      if !n_new > free_in_epoch || (group_syncs && !syncs_since_boundary >= 2 * w)
      then force_epoch step;
      let alloc_slot () =
        assert (!next_slot < buffer_slots);
        let slot = !next_slot in
        incr next_slot;
        used_slots := max !used_slots !next_slot;
        slot
      in
      let need_producers = ref [] in (* producers a new sync must cover *)
      let transports = ref [] in (* (value, producer, slot) under the new sync *)
      let add_need p = if not (List.mem p !need_producers) then need_producers := p :: !need_producers in
      Array.iter
        (fun v ->
          let value = dfg.Dfg.values.(v) in
          let p = warp_of value.Dfg.producer in
          let prod_step = step_of_op.(value.Dfg.producer) in
          let anchor = synced.(p).(c) in
          let covered =
            group_syncs && anchor >= 0 && step_of_op.(anchor) >= prod_step
          in
          match m.Mapping.value_place.(v) with
          | Mapping.P_shared -> if p <> c && not covered then add_need p
          | Mapping.P_reg ->
              if p <> c && not (Hashtbl.mem copies (c, v)) then
                if covered && step_of_op.(anchor) >= !last_wrap then begin
                  (* Ride an existing sync: the send slips in before the
                     already-planned arrive at the same anchor, which the
                     consumer has already waited on. The anchor is at or
                     after the last wrap, so the slot write is ordered
                     after the previous epoch's reads. *)
                  let slot = alloc_slot () in
                  slot_value.(slot) <- v;
                  add_send anchor (E_send (v, slot));
                  add_before op_id (E_recv (v, slot));
                  Hashtbl.replace copies (c, v) (Some slot)
                end
                else begin
                  let slot = alloc_slot () in
                  slot_value.(slot) <- v;
                  transports := (v, p, slot) :: !transports;
                  add_need p;
                  Hashtbl.replace copies (c, v) (Some slot)
                end)
        op.Dfg.inputs;
      let producers = List.rev !need_producers in
      let transports = List.rev !transports in
      (* Full handshake: producers send (if buffered) then arrive; the
         consumer waits and receives. A producer idle since the last wrap
         attaches after its boundary crossing instead of at a pre-wrap op,
         where its slot writes would race with the previous epoch. *)
      if producers <> [] then begin
        (match Sys.getenv_opt "SINGE_DEBUG_SYNC" with
        | Some _ ->
            Printf.eprintf "sync: consumer op %s (w%d, step %d) producers=[%s]\n"
              op.Dfg.name c step
              (String.concat ";"
                 (List.map
                    (fun p ->
                      Printf.sprintf "w%d@%d(%s)" p step_of_op.(last_op.(p))
                        dfg.Dfg.ops.(last_op.(p)).Dfg.name)
                    producers))
        | None -> ());
        let anchor_of p =
          if step_of_op.(last_op.(p)) >= !last_wrap then `Op last_op.(p)
          else `Boundary !last_wrap
        in
        let arrive_pos =
          List.map
            (fun p ->
              match anchor_of p with
              | `Op o -> step_of_op.(o)
              | `Boundary b -> b)
            producers
        in
        let s =
          new_sync ~count:(List.length producers + 1) ~arrive_pos
            ~wait_pos:[ step ]
        in
        List.iter
          (fun p ->
            (match anchor_of p with
            | `Op o ->
                List.iter
                  (fun (v, vp, slot) ->
                    if vp = p then add_send o (E_send (v, slot)))
                  transports;
                add_arrive o (E_arrive s)
            | `Boundary b ->
                List.iter
                  (fun (v, vp, slot) ->
                    if vp = p then add_post_boundary b p (E_send (v, slot)))
                  transports;
                add_post_boundary b p (E_arrive s));
            synced.(p).(c) <- last_op.(p))
          producers;
        add_before op_id (E_wait s);
        List.iter (fun (v, _, slot) -> add_before op_id (E_recv (v, slot))) transports
      end;
      last_op.(c) <- op_id
      end)
    order;
  (* Barrier allocation. Hardware named barriers are plain arrival
     counters: reusing an id while a previous sync could still be in
     flight lets a run-ahead warp's arrival be consumed by the wrong
     phase. An id is recycled only after a CTA-wide *boundary* past every
     attachment of its sync, at which point the counter has provably
     drained to zero. Boundaries are inserted on demand when the id budget
     runs out, and must never separate a sync's waiter (before) from
     another participant (after) — the one ordering a CTA barrier cannot
     cut without deadlock. This models the real cost of barrier pressure:
     §6.2's straggler-wait overhead. *)
  let syncs = List.rev !syncs in
  let all_pos s = s.wait_pos @ s.arrive_pos in
  let min_pos s = List.fold_left min max_int (all_pos s) in
  let max_pos s = List.fold_left max (-1) (all_pos s) in
  let min_wait s = List.fold_left min max_int s.wait_pos in
  let sorted =
    List.sort (fun a b -> compare (min_pos a, a.sid) (min_pos b, b.sid)) syncs
  in
  let epoch_boundaries = ref (List.sort_uniq compare !forced_boundaries) in
  let drain = Array.make max_barriers None in
  (* An id freed by a boundary at step B may only serve syncs whose first
     attachment is at or after B — otherwise two uses could overlap without
     an intervening boundary and pollute the arrival counter. *)
  let free_ids = ref (List.init max_barriers (fun id -> (-1, id))) in
  let drain_at boundary =
    Array.iteri
      (fun id st ->
        match st with
        | Some t when max_pos t < boundary ->
            drain.(id) <- None;
            free_ids := (boundary, id) :: !free_ids
        | Some _ | None -> ())
      drain
  in
  ignore min_wait;
  let take_id s =
    let rec go acc = function
      | [] -> None
      | (avail, id) :: rest when avail <= min_pos s ->
          free_ids := List.rev_append acc rest;
          Some id
      | entry :: rest -> go (entry :: acc) rest
    in
    go [] !free_ids
  in
  let pending_forced = ref (List.sort_uniq compare !forced_boundaries) in
  List.iter
    (fun s ->
      (* Forced boundaries (buffer-ring wraps) drain ids as they pass. *)
      let rec consume () =
        match !pending_forced with
        | b :: rest when b <= min_pos s ->
            drain_at b;
            pending_forced := rest;
            consume ()
        | _ :: _ | [] -> ()
      in
      consume ();
      (match take_id s with
      | Some id ->
          s.bar <- id;
          drain.(id) <- Some s
      | None -> (
          (* Out of usable ids: a boundary right before this sync's first
             attachment drains everything already completed (arrives always
             precede waits, so a boundary never cuts a sync badly). *)
          let boundary = min_pos s in
          epoch_boundaries := boundary :: !epoch_boundaries;
          drain_at boundary;
          match take_id s with
          | Some id ->
              s.bar <- id;
              drain.(id) <- Some s
          | None ->
              (* Convert this sync into a CTA barrier placed right before
                 its wait: the barrier subsumes the handshake (every
                 producer arrive/send precedes it). *)
              let b2 = List.fold_left min max_int s.wait_pos in
              epoch_boundaries := b2 :: !epoch_boundaries;
              drain_at b2;
              s.bar <- -1)))
    sorted;
  let epoch_boundaries = List.sort_uniq compare !epoch_boundaries in
  let barriers_used =
    List.fold_left (fun acc s -> max acc (s.bar + 1)) 0 syncs
  in
  (* Emission pass: walk the same order, appending per-warp actions. *)
  let lists = Array.make w [] in
  let stamp_lists = Array.make w [] in
  let clock = ref 0 in
  let emit warp a =
    lists.(warp) <- a :: lists.(warp);
    stamp_lists.(warp) <- !clock :: stamp_lists.(warp);
    incr clock
  in
  let emit_e warp = function
    | E_wait s when s.bar >= 0 -> emit warp (A_wait { bar = s.bar; count = s.count })
    | E_arrive s when s.bar >= 0 -> emit warp (A_arrive { bar = s.bar; count = s.count })
    | E_wait _ | E_arrive _ -> () (* subsumed by a CTA-barrier boundary *)
    | E_send (v, slot) -> emit warp (A_send { value = v; slot })
    | E_recv (v, slot) -> emit warp (A_recv { value = v; slot })
  in
  let boundaries = ref epoch_boundaries in
  Array.iteri
    (fun step op_id ->
      (match !boundaries with
      | b :: rest when step >= b ->
          (* Epoch close: every warp crosses a CTA barrier here, draining
             all named-barrier counters before ids are reused. Producers
             idle since before the boundary flush their deferred sends and
             arrives immediately after crossing. *)
          for warp = 0 to w - 1 do
            emit warp A_cta_barrier;
            match Hashtbl.find_opt post_boundary (b, warp) with
            | Some l -> List.iter (emit_e warp) (List.rev !l)
            | None -> ()
          done;
          boundaries := rest
      | _ :: _ | [] -> ());
      if dfg.Dfg.ops.(op_id).Dfg.kind <> Dfg.Fence then begin
        let warp = warp_of op_id in
        List.iter (emit_e warp) (List.rev attach_before.(op_id));
        emit warp (A_op op_id);
        List.iter (emit_e warp) (List.rev sends_after.(op_id));
        List.iter (emit_e warp) (List.rev arrives_after.(op_id))
      end)
    order;
  (* The body re-executes once per point batch; a CTA-wide barrier closes
     each batch so a fast warp cannot overwrite shared values or buffer
     slots before slower warps have read the previous batch's. *)
  if w > 1 then
    for warp = 0 to w - 1 do
      emit warp A_cta_barrier
    done;
  {
    per_warp = Array.map (fun l -> Array.of_list (List.rev l)) lists;
    stamps = Array.map (fun l -> Array.of_list (List.rev l)) stamp_lists;
    barriers_used;
    buffer_slots = !used_slots;
    n_sync_points = !n_syncs;
  }

let total_shared_doubles (m : Mapping.t) t =
  (m.Mapping.store_slots + t.buffer_slots) * 32

let well_formed t (dfg : Dfg.t) (m : Mapping.t) =
  let n_ops = Array.length dfg.Dfg.ops in
  let seen = Array.make n_ops false in
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iteri
    (fun warp actions ->
      (* Per-warp availability: a warp may execute an op only after all its
         inputs are available to it (produced locally, received, or placed
         in shared memory). *)
      let have = Hashtbl.create 32 in
      Array.iter
        (fun a ->
          match a with
          | A_op op_id ->
              let op = dfg.Dfg.ops.(op_id) in
              if m.Mapping.op_warp.(op_id) <> warp then
                err "op %s emitted on warp %d, mapped to %d" op.Dfg.name warp
                  m.Mapping.op_warp.(op_id);
              if seen.(op_id) then err "op %s emitted twice" op.Dfg.name;
              seen.(op_id) <- true;
              Array.iter
                (fun v ->
                  let local =
                    m.Mapping.op_warp.(dfg.Dfg.values.(v).Dfg.producer) = warp
                  in
                  let shared =
                    m.Mapping.value_place.(v) = Mapping.P_shared
                  in
                  if (not local) && (not shared) && not (Hashtbl.mem have v)
                  then
                    err "op %s on warp %d reads value %s without a recv"
                      op.Dfg.name warp dfg.Dfg.values.(v).Dfg.vname)
                op.Dfg.inputs
          | A_recv { value; _ } -> Hashtbl.replace have value ()
          | A_send { value; _ } ->
              let p = m.Mapping.op_warp.(dfg.Dfg.values.(value).Dfg.producer) in
              if p <> warp then err "send of value %d from non-producer" value
          | A_arrive _ | A_wait _ | A_cta_barrier -> ())
        actions)
    t.per_warp;
  Array.iteri
    (fun op_id s ->
      if (not s) && dfg.Dfg.ops.(op_id).Dfg.kind <> Dfg.Fence then
        err "op %s never emitted" dfg.Dfg.ops.(op_id).Dfg.name)
    seen;
  match !problems with
  | [] -> Ok ()
  | l -> Error (String.concat "; " l)

(* Stamp-ordered per-use named-barrier pairing. The global emission
   stamps linearize every action along the planner's topological walk —
   the same linearization the §4.4 construction proves against. Along
   it, each barrier id's stream decomposes into consecutive *uses*:
   [count - 1] arrivals followed by exactly one wait, every participant
   quoting the same count. A use may legitimately span a CTA-wide
   boundary (the allocator inserts id-pressure boundaries between a
   sync's arrivals and its wait and simply keeps the id allocated across
   them — arrivals always precede the wait, so the cut is safe), but two
   *different* uses of one id must be separated by a boundary past every
   attachment of the earlier use: that is what drains the hardware
   counter and makes recycling the id safe. Epochs (per-warp CTA-barrier
   crossing counts, identical across warps because boundaries are
   emitted on every warp) witness that separation. *)
let pairing_problems (t : t) =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let by_bar : (int, (int * int * int * bool * int) list ref) Hashtbl.t =
    (* bar -> (stamp, warp, epoch, is_wait, count) *)
    Hashtbl.create 16
  in
  let attach bar entry =
    match Hashtbl.find_opt by_bar bar with
    | Some l -> l := entry :: !l
    | None -> Hashtbl.add by_bar bar (ref [ entry ])
  in
  Array.iteri
    (fun warp actions ->
      let epoch = ref 0 in
      Array.iteri
        (fun i a ->
          match a with
          | A_cta_barrier -> incr epoch
          | A_arrive { bar; count } ->
              attach bar (t.stamps.(warp).(i), warp, !epoch, false, count)
          | A_wait { bar; count } ->
              attach bar (t.stamps.(warp).(i), warp, !epoch, true, count)
          | A_op _ | A_send _ | A_recv _ -> ())
        actions)
    t.per_warp;
  let bars = Hashtbl.fold (fun bar l acc -> (bar, !l) :: acc) by_bar [] in
  List.iter
    (fun (bar, entries) ->
      let entries = List.sort compare entries in
      let pending = ref [] in (* arrivals since the last completed use *)
      let prev_max_epoch = ref (-1) in
      List.iter
        (fun (_, warp, epoch, is_wait, count) ->
          if not is_wait then pending := (epoch, count) :: !pending
          else begin
            let arrivals = List.rev !pending in
            pending := [];
            (match
               List.sort_uniq compare
                 (count :: List.map (fun (_, c) -> c) arrivals)
             with
            | [ c ] ->
                if List.length arrivals <> c - 1 then
                  err
                    "barrier %d: the use ending at warp %d's wait has %d \
                     arrival(s), the count-%d sync needs %d"
                    bar warp (List.length arrivals) c (c - 1)
            | cs ->
                err "barrier %d: participants of warp %d's sync disagree on \
                     count (%s)"
                  bar warp
                  (String.concat "," (List.map string_of_int cs)));
            let min_epoch =
              List.fold_left (fun acc (e, _) -> min acc e) epoch arrivals
            in
            let max_epoch =
              List.fold_left (fun acc (e, _) -> max acc e) epoch arrivals
            in
            if !prev_max_epoch >= min_epoch then
              err
                "barrier %d: reused in epoch %d with no CTA-wide boundary \
                 past its previous use (last attachment in epoch %d) — the \
                 counter may not have drained"
                bar min_epoch !prev_max_epoch;
            prev_max_epoch := max_epoch
          end)
        entries;
      if !pending <> [] then
        err "barrier %d: %d arrival(s) with no subsequent wait" bar
          (List.length !pending))
    (List.sort compare bars);
  List.rev !problems

let validate ?(max_barriers = 16) t (dfg : Dfg.t) (m : Mapping.t) =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (match well_formed t dfg m with Ok () -> () | Error e -> err "%s" e);
  if t.barriers_used > max_barriers then
    err "%d named barriers used, budget is %d" t.barriers_used max_barriers;
  if t.barriers_used > 16 then
    err "%d named barriers used, hardware has 16" t.barriers_used;
  Array.iteri
    (fun warp actions ->
      let stamps = t.stamps.(warp) in
      if Array.length stamps <> Array.length actions then
        err "warp %d: %d stamps for %d actions" warp (Array.length stamps)
          (Array.length actions);
      Array.iteri
        (fun i a ->
          if i > 0 && i < Array.length stamps && stamps.(i) <= stamps.(i - 1)
          then err "warp %d: stamps not strictly increasing at action %d" warp i;
          match a with
          | A_arrive { bar; _ } | A_wait { bar; _ } ->
              if bar < 0 || bar >= t.barriers_used then
                err "warp %d: barrier id %d outside [0, %d)" warp bar
                  t.barriers_used
          | A_send { slot; _ } | A_recv { slot; _ } ->
              if slot < 0 || slot >= t.buffer_slots then
                err "warp %d: ring slot %d outside [0, %d)" warp slot
                  t.buffer_slots
          | A_op _ | A_cta_barrier -> ())
        actions)
    t.per_warp;
  List.iter (fun p -> err "%s" p) (pairing_problems t);
  match List.rev !problems with [] -> Ok () | l -> Error l

let pp_dump (dfg : Dfg.t) ppf t =
  Format.fprintf ppf
    "schedule: %d sync points, %d named barriers, %d ring slots@,"
    t.n_sync_points t.barriers_used t.buffer_slots;
  Array.iteri
    (fun warp actions ->
      Format.fprintf ppf "  warp %d:@," warp;
      Array.iteri
        (fun i a ->
          Format.fprintf ppf "    @@%-5d " t.stamps.(warp).(i);
          (match a with
          | A_op op -> Format.fprintf ppf "op %s" dfg.Dfg.ops.(op).Dfg.name
          | A_send { value; slot } ->
              Format.fprintf ppf "send %s -> slot %d"
                dfg.Dfg.values.(value).Dfg.vname slot
          | A_recv { value; slot } ->
              Format.fprintf ppf "recv %s <- slot %d"
                dfg.Dfg.values.(value).Dfg.vname slot
          | A_arrive { bar; count } ->
              Format.fprintf ppf "arrive bar%d (count %d)" bar count
          | A_wait { bar; count } ->
              Format.fprintf ppf "wait bar%d (count %d)" bar count
          | A_cta_barrier -> Format.fprintf ppf "cta-barrier");
          Format.pp_print_cut ppf ())
        actions)
    t.per_warp
