(* Shuffle-exchange superoptimizer core (DESIGN §14): swizzle language,
   symbolic lane evaluator, canonicalizer, bounded enumeration and the
   cost model. The program rewriting itself lives in Lower (it needs the
   virtual-instruction stream); this module is deliberately independent
   of the rest of the compiler so the search is testable in isolation. *)

type step = Rot of int | Bfly of int | Bcast of int

type prog = step list

(* Per-step source map: which lane feeds destination lane [l]. *)
let step_source s l =
  match s with
  | Rot d -> (l + d) land 31
  | Bfly m -> l lxor m
  | Bcast k -> k

(* The program runs left to right, so the source of dest lane [l] is
   found by pulling [l] back through the steps from last to first. *)
let source_lane p l =
  List.fold_left (fun cur s -> step_source s cur) l (List.rev p)

let signature p = Array.init 32 (source_lane p)

let apply p v =
  List.fold_left
    (fun v s -> Array.init 32 (fun l -> v.(step_source s l)))
    (Array.copy v) p

let is_identity sg =
  let ok = ref true in
  Array.iteri (fun l s -> if s <> l then ok := false) sg;
  !ok

let is_constant sg =
  let ok = ref true in
  Array.iter (fun s -> if s <> sg.(0) then ok := false) sg;
  !ok

let canonicalize p =
  let sg = signature p in
  if is_identity sg then []
  else if is_constant sg then [ Bcast sg.(0) ]
  else
    (* No broadcast survives (a Bcast anywhere makes the signature
       constant), so merge runs of the same kind and drop the zeros. *)
    let rec merge = function
      | Rot 0 :: rest | Bfly 0 :: rest -> merge rest
      | Rot a :: Rot b :: rest -> merge (Rot ((a + b) land 31) :: rest)
      | Bfly a :: Bfly b :: rest -> merge (Bfly (a lxor b) :: rest)
      | s :: rest -> s :: merge rest
      | [] -> []
    in
    (* A merge can expose a new adjacent pair (Rot 1 :: Rot 31 :: Rot 1);
       iterate to the fixed point (depth is tiny). *)
    let rec fix p =
      let p' = merge p in
      if p' = p then p else fix p'
    in
    fix p

let sig_key sg =
  String.init 32 (fun l -> Char.chr sg.(l))

(* Depth-bounded enumeration of canonical programs: the single broadcasts
   plus every alternating chain of nonzero rotations and butterflies.
   Programs are generated shortest-first and deduplicated by signature,
   so each reachable permutation keeps its cheapest representative. *)
let enumerate_raw max_depth =
  let nonzero = List.init 31 (fun i -> i + 1) in
  let chains =
    (* chains of exact length n, alternating kinds *)
    let rec extend n tail =
      if n = 0 then [ List.rev tail ]
      else
        let next =
          match tail with
          | Rot _ :: _ -> List.map (fun m -> Bfly m) nonzero
          | Bfly _ :: _ -> List.map (fun d -> Rot d) nonzero
          | _ -> assert false
        in
        List.concat_map (fun s -> extend (n - 1) (s :: tail)) next
    in
    let rec upto n acc =
      if n > max_depth then acc
      else
        let starts =
          List.map (fun d -> [ Rot d ]) nonzero
          @ List.map (fun m -> [ Bfly m ]) nonzero
        in
        let len_n =
          List.concat_map
            (fun st -> extend (n - 1) (List.rev st))
            starts
        in
        upto (n + 1) (acc @ len_n)
    in
    upto 1 []
  in
  let bcasts = List.init 32 (fun k -> [ Bcast k ]) in
  let seen = Hashtbl.create 4096 in
  let keep p =
    let key = sig_key (signature p) in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  List.filter keep (([] :: bcasts) @ chains)

let default_depth = 3

(* signature key -> cheapest program, built lazily once per process. *)
let table =
  lazy
    (let tbl = Hashtbl.create 65536 in
     List.iter
       (fun p ->
         let key = sig_key (signature p) in
         if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key p)
       (enumerate_raw default_depth);
     tbl)

let enumerate ?(max_depth = default_depth) () =
  if max_depth = default_depth then
    Hashtbl.fold (fun _ p acc -> p :: acc) (Lazy.force table) []
  else enumerate_raw max_depth

let synthesize pattern =
  if Array.length pattern <> 32 then
    invalid_arg "Shuffle_synth.synthesize: pattern must have 32 lanes";
  let in_range = Array.for_all (fun s -> s >= 0 && s < 32) pattern in
  if not in_range then None
  else
    match Hashtbl.find_opt (Lazy.force table) (sig_key pattern) with
    | None -> None
    | Some p ->
        (* Exhaustive 32-lane re-check of the table hit: the candidate is
           only returned if it provably implements the requested
           pattern. *)
        if signature p = pattern then Some p else None

let step_cycles (arch : Gpusim.Arch.t) =
  (2.0 /. arch.Gpusim.Arch.alu_issue_per_cycle)
  +. float_of_int arch.Gpusim.Arch.arith_latency

let cost arch p = float_of_int (List.length p) *. step_cycles arch

let shared_read_cost (arch : Gpusim.Arch.t) =
  let pipe =
    if arch.Gpusim.Arch.shared_operand_collector then 0.0
    else 1.0 /. arch.Gpusim.Arch.shared_issue_per_cycle
  in
  pipe +. float_of_int arch.Gpusim.Arch.shared_latency

type report = {
  sites_seen : int;
  sites_rewritten : int;
  round_trips_removed : int;
  stores_removed : int;
  shuffle_steps : int;
  shared_bytes_freed : int;
}

let empty_report =
  {
    sites_seen = 0;
    sites_rewritten = 0;
    round_trips_removed = 0;
    stores_removed = 0;
    shuffle_steps = 0;
    shared_bytes_freed = 0;
  }

let add_report a b =
  {
    sites_seen = a.sites_seen + b.sites_seen;
    sites_rewritten = a.sites_rewritten + b.sites_rewritten;
    round_trips_removed = a.round_trips_removed + b.round_trips_removed;
    stores_removed = a.stores_removed + b.stores_removed;
    shuffle_steps = a.shuffle_steps + b.shuffle_steps;
    shared_bytes_freed = a.shared_bytes_freed + b.shared_bytes_freed;
  }

let report_stats r =
  [
    ("sites", float_of_int r.sites_seen);
    ("rewritten", float_of_int r.sites_rewritten);
    ("round_trips_removed", float_of_int r.round_trips_removed);
    ("stores_removed", float_of_int r.stores_removed);
    ("shuffle_steps", float_of_int r.shuffle_steps);
    ("shared_bytes_freed", float_of_int r.shared_bytes_freed);
  ]
