(** Pass manager for the compilation pipeline (Fig. 8).

    The driver registers each stage — partitioning into the dataflow graph,
    mapping, barrier scheduling, lowering — as a named {e pass} and each
    inter-stage invariant check as a named {e validation pass}. The manager
    times every execution with a wall clock, collects per-artifact
    statistics, and produces a {!report} that the CLI ([--timings]), the
    benchmark harness (machine-readable JSON) and tests can inspect.

    A pass name may be run several times (the driver's register- and
    shared-memory fitting loops rebuild the schedule and re-lower): repeat
    runs accumulate into one record, keeping the run count, the cumulative
    wall time, and the {e last} run's artifact statistics — the artifact
    that survives into the final {!Compile.t}. *)

type stat = string * float
(** One artifact statistic, e.g. [("ops", 412.)] for a dataflow graph. *)

type kind = Transform | Validate

type record = {
  pass_name : string;
  kind : kind;
  runs : int;  (** executions merged into this record *)
  wall_ns : float;  (** cumulative wall-clock time over all runs *)
  stats : stat list;  (** artifact statistics of the last run *)
  ok : bool;  (** false only for a validation pass that found problems *)
}

type report = {
  pipeline : string;
  records : record list;  (** in first-execution order *)
  total_ns : float;  (** wall-clock of the whole pipeline so far *)
  warnings : Diagnostics.t list;
}

type t
(** A pass manager instance; one per compilation. *)

val create : string -> t
(** [create pipeline_name] starts the pipeline clock. *)

val run : t -> name:string -> ?stats:('a -> stat list) -> (unit -> 'a) -> 'a
(** Execute a transform pass: time [f ()], record the artifact statistics
    [stats] extracts from its result, and return the result. Exceptions
    propagate untouched (after the timing is recorded). *)

val validate : t -> name:string -> (unit -> (unit, string list) result) -> unit
(** Execute a validation pass. On [Error problems] the record is marked
    failed and {!Diagnostics.Fail} is raised with the pass name as
    provenance and the first problems as the message. *)

val warn : t -> ?pass:string -> string -> unit
(** Attach a warning diagnostic to the report. *)

val report : t -> report

val pp_report : Format.formatter -> report -> unit
(** Human-readable per-pass table (the CLI's [--timings] output). *)

val report_to_json : report -> string
(** Machine-readable rendering, a JSON object:
    [{"pipeline": ..., "total_ms": ...,
      "passes": [{"name", "kind", "runs", "wall_ms", "ok", "stats"}, ...],
      "warnings": [...]}]. *)
